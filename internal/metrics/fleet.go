package metrics

// Fleet-level aggregates for the heterogeneous edge-fleet simulator: the
// server-level latency aggregates of serve.go computed over the whole
// fleet stream, plus per-device utilization and goodput, the
// load-imbalance coefficient, failure-requeue and prefix-reuse counters.

import "math"

// FleetDevice is the raw telemetry of one fleet member over a run.
type FleetDevice struct {
	// Busy is the wall-clock time the device spent executing slices
	// (including partial work lost to fail-stop).
	Busy float64
	// Lifetime is the length of the device's *live* interval: from its
	// join time (0 for founding members) to its fail-stop time (stretched
	// through a final overrunning slice, so Busy never exceeds it), its
	// drain completion, or the fleet makespan — whichever ended its
	// membership.
	Lifetime float64
	// LiveStart is the fleet time the device became routable: 0 for
	// founding members, the warm-up completion time for devices the
	// control plane added from the warm pool.
	LiveStart float64
	// Served counts requests the device completed; Tokens sums their
	// useful generated output.
	Served int
	Tokens int64
	// Failed marks devices that fail-stopped during the run; Drained
	// marks devices the control plane deliberately drained out.
	Failed  bool
	Drained bool

	// KV memory-plane telemetry; all zero when the plane is disabled.
	// CacheCapacityTokens / CacheUsedTokens snapshot the device's KV
	// plane at run end; hit/miss count prompt-prefix tokens found /
	// not found resident at admission; CacheEvictedTokens counts tokens
	// LRU-evicted under pressure; ReprefillSeconds is the total
	// re-prefill latency charged for prompt misses.
	CacheCapacityTokens int64
	CacheUsedTokens     int64
	CacheHitTokens      int64
	CacheMissTokens     int64
	CacheEvictedTokens  int64
	ReprefillSeconds    float64
}

// FleetDeviceStats augments a device's telemetry with derived rates.
type FleetDeviceStats struct {
	FleetDevice
	// Utilization is Busy / Lifetime: the fraction of the device's fleet
	// membership spent computing.
	Utilization float64
	// Goodput is useful tokens per second of lifetime.
	Goodput float64
	// CacheOccupancy is CacheUsedTokens / CacheCapacityTokens at run
	// end; 0 when the memory plane is disabled.
	CacheOccupancy float64
}

// FleetStats aggregates a fleet-served request stream.
type FleetStats struct {
	// ServeStats holds the fleet-level latency/goodput aggregates over the
	// merged stream (p50/p95/p99 wall latency, queue delay, SLO
	// attainment, fleet goodput over the fleet makespan).
	ServeStats
	// Devices holds per-device utilization and goodput, indexed by device.
	Devices []FleetDeviceStats
	// ImbalanceCV is the load-imbalance coefficient: the coefficient of
	// variation (population stddev / mean) of per-device busy time. 0
	// means perfectly balanced work; it is 0 when no device did any work.
	ImbalanceCV float64
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHitRate is the fleet prompt-prefix cache hit rate in tokens:
	// hits / (hits + misses), 0 when there was no prefix traffic.
	PrefixHitRate float64
	// CacheHitTokens / CacheMissTokens / CacheEvictedTokens sum the
	// per-device KV memory-plane telemetry; all zero when the plane is
	// disabled fleet-wide.
	CacheHitTokens     int64
	CacheMissTokens    int64
	CacheEvictedTokens int64
	// CacheHitRate is CacheHitTokens / (CacheHitTokens + CacheMissTokens),
	// 0 when the plane saw no prompt traffic. Unlike PrefixHitRate (the
	// routing directory's optimistic estimate), it reflects actual
	// residency after capacity eviction.
	CacheHitRate float64
	// ReprefillSeconds is the fleet's total re-prefill latency charged
	// for prompt-cache misses.
	ReprefillSeconds float64
	// FailedDevices counts devices that fail-stopped during the run.
	FailedDevices int
	// DeviceSeconds is the fleet's capacity cost: the summed live time of
	// every member (founding, joined, drained, failed). The SLO-vs-cost
	// frontier (see Frontier) plots it against SLOAttainment.
	DeviceSeconds float64
	// Control summarizes the elastic control plane's activity; nil when
	// the run had no controller.
	Control *ControlStats
	// Attribution, when non-nil, is the latency-attribution rollup of
	// the run's span recorder (nil when tracing was off).
	Attribution *AttributionStats
}

// FleetInput bundles the inputs of SummarizeFleet.
type FleetInput struct {
	// Samples is the merged fleet stream (exact mode; nil when Serve is
	// set).
	Samples []ServeSample
	// Serve, when non-nil, is a streaming accumulator that already
	// folded the fleet stream — SummarizeFleet takes its Stats instead
	// of summarizing Samples, and the latency distribution carries the
	// sketch's SketchRelErr bound.
	Serve *ServeAccum
	// Devices is the per-device telemetry, indexed by device.
	Devices []FleetDevice
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHits / PrefixMisses count prompt-prefix tokens found / not
	// found in the serving device's radix cache directory.
	PrefixHits, PrefixMisses int64
	// SLOLatency is the wall-latency target in seconds; <= 0 disables SLO
	// accounting.
	SLOLatency float64
	// Control, when non-nil, is the controller activity summary carried
	// through to FleetStats.Control.
	Control *ControlStats
	// Attribution, when non-nil, is the span recorder's latency
	// attribution, carried through to FleetStats.Attribution.
	Attribution *AttributionStats
}

// SummarizeFleet reduces a fleet-served stream plus per-device telemetry
// to fleet-level aggregates.
func SummarizeFleet(in FleetInput) FleetStats {
	st := FleetStats{
		Requeues:    in.Requeues,
		Control:     in.Control,
		Attribution: in.Attribution,
	}
	if in.Serve != nil {
		st.ServeStats = in.Serve.Stats()
	} else {
		st.ServeStats = SummarizeServe(in.Samples, in.SLOLatency)
	}
	// The imbalance coefficient compares per-device busy time, but a
	// device the control plane added late (or drained early) was only
	// live for part of the run — its raw busy time under-reads its load,
	// not the balance of the routing. Planned-membership devices are
	// therefore time-weighted: their busy time is scaled to the longest
	// live interval in the fleet. Founding full-run devices (and
	// fail-stopped ones, whose lost capacity is real imbalance) keep raw
	// busy time, so static-membership fleets reproduce the historical
	// value bit-identically.
	ref := 0.0
	for _, d := range in.Devices {
		if d.Lifetime > ref {
			ref = d.Lifetime
		}
	}
	busy := make([]float64, 0, len(in.Devices))
	for _, d := range in.Devices {
		ds := FleetDeviceStats{FleetDevice: d}
		if d.Lifetime > 0 {
			ds.Utilization = d.Busy / d.Lifetime
			ds.Goodput = float64(d.Tokens) / d.Lifetime
		}
		if d.CacheCapacityTokens > 0 {
			ds.CacheOccupancy = float64(d.CacheUsedTokens) / float64(d.CacheCapacityTokens)
		}
		st.CacheHitTokens += d.CacheHitTokens
		st.CacheMissTokens += d.CacheMissTokens
		st.CacheEvictedTokens += d.CacheEvictedTokens
		st.ReprefillSeconds += d.ReprefillSeconds
		if d.Failed {
			st.FailedDevices++
		}
		st.Devices = append(st.Devices, ds)
		st.DeviceSeconds += d.Lifetime
		b := d.Busy
		if (d.Drained || d.LiveStart > 0) && !d.Failed && d.Lifetime > 0 && ref > 0 {
			b = d.Busy / d.Lifetime * ref
		}
		busy = append(busy, b)
	}
	st.ImbalanceCV = CoefficientOfVariation(busy)
	if total := in.PrefixHits + in.PrefixMisses; total > 0 {
		st.PrefixHitRate = float64(in.PrefixHits) / float64(total)
	}
	if total := st.CacheHitTokens + st.CacheMissTokens; total > 0 {
		st.CacheHitRate = float64(st.CacheHitTokens) / float64(total)
	}
	return st
}

// CoefficientOfVariation returns the population standard deviation of xs
// divided by its mean — the fleet's load-imbalance coefficient when xs is
// per-device busy time. It is 0 for empty input or a zero mean.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / m
}
