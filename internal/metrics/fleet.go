package metrics

// Fleet-level aggregates for the heterogeneous edge-fleet simulator: the
// server-level latency aggregates of serve.go computed over the whole
// fleet stream, plus per-device utilization and goodput, the
// load-imbalance coefficient, failure-requeue and prefix-reuse counters.

import "math"

// FleetDevice is the raw telemetry of one fleet member over a run.
type FleetDevice struct {
	// Busy is the wall-clock time the device spent executing slices
	// (including partial work lost to fail-stop).
	Busy float64
	// Lifetime is how long the device was part of the fleet: its fail-stop
	// time (stretched through a final overrunning slice, so Busy never
	// exceeds it) if it failed, otherwise the fleet makespan.
	Lifetime float64
	// Served counts requests the device completed; Tokens sums their
	// useful generated output.
	Served int
	Tokens int64
	// Failed marks devices that fail-stopped during the run.
	Failed bool
}

// FleetDeviceStats augments a device's telemetry with derived rates.
type FleetDeviceStats struct {
	FleetDevice
	// Utilization is Busy / Lifetime: the fraction of the device's fleet
	// membership spent computing.
	Utilization float64
	// Goodput is useful tokens per second of lifetime.
	Goodput float64
}

// FleetStats aggregates a fleet-served request stream.
type FleetStats struct {
	// ServeStats holds the fleet-level latency/goodput aggregates over the
	// merged stream (p50/p95/p99 wall latency, queue delay, SLO
	// attainment, fleet goodput over the fleet makespan).
	ServeStats
	// Devices holds per-device utilization and goodput, indexed by device.
	Devices []FleetDeviceStats
	// ImbalanceCV is the load-imbalance coefficient: the coefficient of
	// variation (population stddev / mean) of per-device busy time. 0
	// means perfectly balanced work; it is 0 when no device did any work.
	ImbalanceCV float64
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHitRate is the fleet prompt-prefix cache hit rate in tokens:
	// hits / (hits + misses), 0 when there was no prefix traffic.
	PrefixHitRate float64
	// FailedDevices counts devices that fail-stopped during the run.
	FailedDevices int
}

// FleetInput bundles the inputs of SummarizeFleet.
type FleetInput struct {
	// Samples is the merged fleet stream.
	Samples []ServeSample
	// Devices is the per-device telemetry, indexed by device.
	Devices []FleetDevice
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHits / PrefixMisses count prompt-prefix tokens found / not
	// found in the serving device's radix cache directory.
	PrefixHits, PrefixMisses int64
	// SLOLatency is the wall-latency target in seconds; <= 0 disables SLO
	// accounting.
	SLOLatency float64
}

// SummarizeFleet reduces a fleet-served stream plus per-device telemetry
// to fleet-level aggregates.
func SummarizeFleet(in FleetInput) FleetStats {
	st := FleetStats{
		ServeStats: SummarizeServe(in.Samples, in.SLOLatency),
		Requeues:   in.Requeues,
	}
	busy := make([]float64, 0, len(in.Devices))
	for _, d := range in.Devices {
		ds := FleetDeviceStats{FleetDevice: d}
		if d.Lifetime > 0 {
			ds.Utilization = d.Busy / d.Lifetime
			ds.Goodput = float64(d.Tokens) / d.Lifetime
		}
		if d.Failed {
			st.FailedDevices++
		}
		st.Devices = append(st.Devices, ds)
		busy = append(busy, d.Busy)
	}
	st.ImbalanceCV = CoefficientOfVariation(busy)
	if total := in.PrefixHits + in.PrefixMisses; total > 0 {
		st.PrefixHitRate = float64(in.PrefixHits) / float64(total)
	}
	return st
}

// CoefficientOfVariation returns the population standard deviation of xs
// divided by its mean — the fleet's load-imbalance coefficient when xs is
// per-device busy time. It is 0 for empty input or a zero mean.
func CoefficientOfVariation(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 || len(xs) == 0 {
		return 0
	}
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(xs))) / m
}
