package metrics

import (
	"fasttts/internal/rng"
	"math"
	"reflect"
	"testing"
)

func TestPercentile(t *testing.T) {
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
	} {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(1..100, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile([7], 99) = %v, want 7", got)
	}
	// Input order must not matter.
	if got := Percentile([]float64{3, 1, 2}, 50); got != 2 {
		t.Errorf("Percentile([3 1 2], 50) = %v, want 2", got)
	}
}

func TestSummarizeServe(t *testing.T) {
	samples := []ServeSample{
		{Arrival: 0, Start: 0, Finish: 10, Tokens: 100},
		{Arrival: 2, Start: 10, Finish: 20, Tokens: 300},
		{Arrival: 4, Start: 20, Finish: 25, Tokens: 100},
		{Arrival: 5, Rejected: true},
	}
	s := SummarizeServe(samples, 18)
	if s.Served != 3 || s.Rejected != 1 {
		t.Fatalf("served/rejected = %d/%d, want 3/1", s.Served, s.Rejected)
	}
	if s.Makespan != 25 {
		t.Errorf("makespan %v, want 25", s.Makespan)
	}
	// Queue delays: 0, 8, 16 → mean 8, max 16.
	if s.MeanQueueDelay != 8 || s.MaxQueueDelay != 16 {
		t.Errorf("queue delay mean/max = %v/%v, want 8/16", s.MeanQueueDelay, s.MaxQueueDelay)
	}
	// Wall latencies: 10, 18, 21 → p50 = 18, p99 = 21.
	if s.P50Latency != 18 || s.P99Latency != 21 {
		t.Errorf("p50/p99 = %v/%v, want 18/21", s.P50Latency, s.P99Latency)
	}
	if want := (10.0 + 18 + 21) / 3; math.Abs(s.MeanLatency-want) > 1e-12 {
		t.Errorf("mean latency %v, want %v", s.MeanLatency, want)
	}
	if want := 500.0 / 25; s.Goodput != want {
		t.Errorf("goodput %v, want %v", s.Goodput, want)
	}
	// 2 of 4 requests met the 18 s SLO (21 s missed; rejection is a miss).
	if want := 0.5; s.SLOAttainment != want {
		t.Errorf("SLO attainment %v, want %v", s.SLOAttainment, want)
	}

	if s := SummarizeServe(samples, 0); s.SLOAttainment != 1 {
		t.Errorf("no-SLO attainment %v, want 1 (metric disabled)", s.SLOAttainment)
	}
	if s := SummarizeServe(nil, 1); s.Served != 0 || s.SLOAttainment != 1 {
		t.Errorf("empty stream: %+v", s)
	}
}

// TestSummarizeServeDegenerateStreams locks the zero-value contract:
// empty and all-rejected streams produce zero-valued aggregates with
// every field finite — never NaN/Inf percentiles or rates.
func TestSummarizeServeDegenerateStreams(t *testing.T) {
	rej := func(at float64) ServeSample { return ServeSample{Arrival: at, Rejected: true} }
	cases := []struct {
		name    string
		samples []ServeSample
		slo     float64
		want    ServeStats
	}{
		{
			name: "nil stream no SLO",
			want: ServeStats{SLOAttainment: 1},
		},
		{
			name: "nil stream with SLO",
			slo:  10,
			want: ServeStats{SLOAttainment: 1}, // vacuously attained
		},
		{
			name:    "empty stream with SLO",
			samples: []ServeSample{},
			slo:     10,
			want:    ServeStats{SLOAttainment: 1},
		},
		{
			name:    "all rejected no SLO",
			samples: []ServeSample{rej(1), rej(2)},
			want:    ServeStats{Rejected: 2, SLOAttainment: 1},
		},
		{
			name:    "all rejected with SLO",
			samples: []ServeSample{rej(1), rej(2), rej(3)},
			slo:     10,
			want:    ServeStats{Rejected: 3, SLOAttainment: 0}, // shed load is missed load
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SummarizeServe(tc.samples, tc.slo)
			if got != tc.want {
				t.Errorf("got %+v\nwant %+v", got, tc.want)
			}
			assertFinite(t, got)
		})
	}
}

// assertFinite walks every float64 field and fails on NaN or Inf.
func assertFinite(t *testing.T, v any) {
	t.Helper()
	rv := reflect.ValueOf(v)
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		if f.Kind() == reflect.Float64 {
			x := f.Float()
			if math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("field %s = %v, want finite", rv.Type().Field(i).Name, x)
			}
		}
	}
}

// TestSummarizeServePercentilesBitIdentical pins the single-sort
// percentile computation to the reference spelling it replaced: three
// independent Percentile calls, each copying and re-sorting the wall
// latencies. The aggregates must agree bit-for-bit — golden traces
// record these values, so "faster" must not mean "different".
func TestSummarizeServePercentilesBitIdentical(t *testing.T) {
	r := rng.New(99)
	samples := make([]ServeSample, 257) // odd, non-power-of-two length
	var wall []float64
	for i := range samples {
		arr := float64(i) * 0.25
		dur := 0.5 + 40*r.Float64()
		rejected := i%11 == 3
		samples[i] = ServeSample{
			Arrival: arr, Start: arr + r.Float64(), Finish: arr + dur,
			Tokens: int64(i), Rejected: rejected,
		}
		if !rejected {
			wall = append(wall, samples[i].Finish-samples[i].Arrival)
		}
	}
	st := SummarizeServe(samples, 30)
	if got, want := st.P50Latency, Percentile(wall, 50); got != want {
		t.Errorf("P50 = %v, reference Percentile = %v", got, want)
	}
	if got, want := st.P95Latency, Percentile(wall, 95); got != want {
		t.Errorf("P95 = %v, reference Percentile = %v", got, want)
	}
	if got, want := st.P99Latency, Percentile(wall, 99); got != want {
		t.Errorf("P99 = %v, reference Percentile = %v", got, want)
	}
}
