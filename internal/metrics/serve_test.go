package metrics

import (
	"math"
	"testing"
)

func TestPercentile(t *testing.T) {
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100},
	} {
		if got := Percentile(xs, tc.p); got != tc.want {
			t.Errorf("Percentile(1..100, %v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile([7], 99) = %v, want 7", got)
	}
	// Input order must not matter.
	if got := Percentile([]float64{3, 1, 2}, 50); got != 2 {
		t.Errorf("Percentile([3 1 2], 50) = %v, want 2", got)
	}
}

func TestSummarizeServe(t *testing.T) {
	samples := []ServeSample{
		{Arrival: 0, Start: 0, Finish: 10, Tokens: 100},
		{Arrival: 2, Start: 10, Finish: 20, Tokens: 300},
		{Arrival: 4, Start: 20, Finish: 25, Tokens: 100},
		{Arrival: 5, Rejected: true},
	}
	s := SummarizeServe(samples, 18)
	if s.Served != 3 || s.Rejected != 1 {
		t.Fatalf("served/rejected = %d/%d, want 3/1", s.Served, s.Rejected)
	}
	if s.Makespan != 25 {
		t.Errorf("makespan %v, want 25", s.Makespan)
	}
	// Queue delays: 0, 8, 16 → mean 8, max 16.
	if s.MeanQueueDelay != 8 || s.MaxQueueDelay != 16 {
		t.Errorf("queue delay mean/max = %v/%v, want 8/16", s.MeanQueueDelay, s.MaxQueueDelay)
	}
	// Wall latencies: 10, 18, 21 → p50 = 18, p99 = 21.
	if s.P50Latency != 18 || s.P99Latency != 21 {
		t.Errorf("p50/p99 = %v/%v, want 18/21", s.P50Latency, s.P99Latency)
	}
	if want := (10.0 + 18 + 21) / 3; math.Abs(s.MeanLatency-want) > 1e-12 {
		t.Errorf("mean latency %v, want %v", s.MeanLatency, want)
	}
	if want := 500.0 / 25; s.Goodput != want {
		t.Errorf("goodput %v, want %v", s.Goodput, want)
	}
	// 2 of 4 requests met the 18 s SLO (21 s missed; rejection is a miss).
	if want := 0.5; s.SLOAttainment != want {
		t.Errorf("SLO attainment %v, want %v", s.SLOAttainment, want)
	}

	if s := SummarizeServe(samples, 0); s.SLOAttainment != 1 {
		t.Errorf("no-SLO attainment %v, want 1 (metric disabled)", s.SLOAttainment)
	}
	if s := SummarizeServe(nil, 1); s.Served != 0 || s.SLOAttainment != 1 {
		t.Errorf("empty stream: %+v", s)
	}
}
