package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"fasttts/internal/rng"
)

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		err  bool
	}{
		{"", ModeExact, false},
		{"exact", ModeExact, false},
		{"streaming", ModeStreaming, false},
		{"sketch", ModeStreaming, false},
		{"Exact", "", true},
		{"approx", "", true},
	} {
		got, err := ParseMode(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseMode(%q) = %q, %v; want %q, err=%v", tc.in, got, err, tc.want, tc.err)
		}
	}
}

// randomServeSamples draws a serve stream with rejections and a realistic
// latency mix.
func randomServeSamples(seed uint64, n int) []ServeSample {
	r := rng.New(seed).Child("streaming-test")
	out := make([]ServeSample, n)
	for i := range out {
		arr := float64(i) * 0.01
		if r.Float64() < 0.05 {
			out[i] = ServeSample{Arrival: arr, Rejected: true}
			continue
		}
		q := 2 * r.Float64()
		w := q + 0.5 + 40*r.Float64()
		out[i] = ServeSample{
			Arrival: arr, Start: arr + q, Finish: arr + w,
			Tokens: int64(50 + r.IntN(500)),
		}
	}
	return out
}

// TestSummarizeServeStreamingMatchesExact pins the streaming path to the
// exact path: every counter, max, and rate agrees exactly; the latency
// distribution (means, percentiles) agrees within SketchRelErr.
func TestSummarizeServeStreamingMatchesExact(t *testing.T) {
	samples := randomServeSamples(17, 20_000)
	const slo = 25.0
	exact := SummarizeServe(samples, slo)
	stream := SummarizeServeStreaming(samples, slo)

	if stream.Served != exact.Served || stream.Rejected != exact.Rejected || stream.NonFinite != exact.NonFinite {
		t.Errorf("counters diverge: streaming %+v exact %+v", stream, exact)
	}
	if stream.Makespan != exact.Makespan || stream.MaxQueueDelay != exact.MaxQueueDelay {
		t.Errorf("exact maxima diverge: makespan %v/%v maxQ %v/%v",
			stream.Makespan, exact.Makespan, stream.MaxQueueDelay, exact.MaxQueueDelay)
	}
	if stream.Goodput != exact.Goodput {
		t.Errorf("goodput %v, exact %v (integer token sum over same makespan must match)", stream.Goodput, exact.Goodput)
	}
	if stream.SLOAttainment != exact.SLOAttainment {
		t.Errorf("SLO attainment %v, exact %v (integer counts must match)", stream.SLOAttainment, exact.SLOAttainment)
	}
	for _, c := range []struct {
		label         string
		stream, exact float64
	}{
		{"p50", stream.P50Latency, exact.P50Latency},
		{"p95", stream.P95Latency, exact.P95Latency},
		{"p99", stream.P99Latency, exact.P99Latency},
		{"mean latency", stream.MeanLatency, exact.MeanLatency},
		{"mean queue delay", stream.MeanQueueDelay, exact.MeanQueueDelay},
	} {
		assertWithinSketchErr(t, c.label, c.stream, c.exact)
	}
}

// TestSummarizeServeNonFinite is the regression for the NaN-poisoning
// bug: non-finite telemetry used to flow into sort.Float64s and float
// sums, poisoning every percentile and mean. Both paths must now filter
// and count such samples, leaving all aggregates finite.
func TestSummarizeServeNonFinite(t *testing.T) {
	nan := math.NaN()
	samples := []ServeSample{
		{Arrival: 0, Start: 1, Finish: 11, Tokens: 100},
		{Arrival: 1, Start: nan, Finish: 12, Tokens: 100},         // NaN queue delay
		{Arrival: 2, Start: 3, Finish: nan, Tokens: 100},          // NaN wall latency
		{Arrival: 3, Start: math.Inf(1), Finish: 20, Tokens: 100}, // +Inf queue delay
		{Arrival: 4, Start: 5, Finish: math.Inf(-1), Tokens: 100}, // -Inf wall latency
		{Arrival: nan, Start: 6, Finish: 16, Tokens: 100},         // NaN arrival poisons both
		{Arrival: 5, Start: 6, Finish: 15, Tokens: 100},
		{Arrival: 6, Rejected: true},
	}
	for _, tc := range []struct {
		name string
		fn   func([]ServeSample, float64) ServeStats
	}{
		{"exact", SummarizeServe},
		{"streaming", SummarizeServeStreaming},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tc.fn(samples, 12)
			if s.Served != 2 || s.Rejected != 1 || s.NonFinite != 5 {
				t.Errorf("served/rejected/nonfinite = %d/%d/%d, want 2/1/5", s.Served, s.Rejected, s.NonFinite)
			}
			assertFinite(t, s)
			// The two clean samples: walls 11 and 10, queues 1 each.
			if s.MaxQueueDelay != 1 {
				t.Errorf("max queue delay %v, want 1 (from clean samples only)", s.MaxQueueDelay)
			}
			if s.Makespan != 15 {
				t.Errorf("makespan %v, want 15", s.Makespan)
			}
			// Non-finite samples are excluded from the SLO denominator too:
			// walls 11 (meets 12) and 10 (meets), rejection misses → 2/3.
			if want := 2.0 / 3; math.Abs(s.SLOAttainment-want) > 1e-12 {
				t.Errorf("SLO attainment %v, want %v", s.SLOAttainment, want)
			}
		})
	}
}

// TestPercentileDomain pins the documented 0 ≤ p ≤ 100 contract: out-of
// -domain p panics instead of silently returning the min or max, and
// non-finite samples are filtered before sorting.
func TestPercentileDomain(t *testing.T) {
	xs := []float64{1, 2, 3}
	for _, p := range []float64{-0.001, -5, 100.001, 200, math.NaN()} {
		p := p
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Percentile(xs, %v) did not panic", p)
				}
			}()
			Percentile(xs, p)
		}()
	}
	// Boundary values stay in-domain.
	if got := Percentile(xs, 0); got != 1 {
		t.Errorf("Percentile(xs, 0) = %v, want 1", got)
	}
	if got := Percentile(xs, 100); got != 3 {
		t.Errorf("Percentile(xs, 100) = %v, want 3", got)
	}
	// NaN samples must not poison the sort.
	if got := Percentile([]float64{3, math.NaN(), 1, math.Inf(1), 2}, 50); got != 2 {
		t.Errorf("Percentile with non-finite samples = %v, want 2", got)
	}
}

// TestServeAccumMergeBitIdentical: random streams split across random
// shard counts, merged in random order, must produce ServeStats equal
// to the unsharded accumulator — every float compared with ==.
func TestServeAccumMergeBitIdentical(t *testing.T) {
	prop := func(seed uint64, nSamples uint16, nShards uint8) bool {
		n := int(nSamples)%3000 + 1
		shards := int(nShards)%8 + 1
		const slo = 20.0
		samples := randomServeSamples(seed, n)
		whole := NewServeAccum(slo)
		parts := make([]*ServeAccum, shards)
		for i := range parts {
			parts[i] = NewServeAccum(slo)
		}
		r := rng.New(seed).Child("quick/accum-split")
		for _, sm := range samples {
			whole.Observe(sm)
			parts[r.IntN(shards)].Observe(sm)
		}
		merged := NewServeAccum(slo)
		for _, i := range r.Perm(shards) {
			merged.Merge(parts[i])
		}
		return merged.Stats() == whole.Stats()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestServeAccumMergeSLOMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Merge with mismatched SLO targets did not panic")
		}
	}()
	NewServeAccum(1).Merge(NewServeAccum(2))
}

// TestServeAccumDegenerate reuses the exact path's degenerate-stream
// contract: the streaming stats must agree field-for-field on empty and
// all-rejected streams.
func TestServeAccumDegenerate(t *testing.T) {
	rej := func(at float64) ServeSample { return ServeSample{Arrival: at, Rejected: true} }
	for _, tc := range []struct {
		name    string
		samples []ServeSample
		slo     float64
	}{
		{"nil no SLO", nil, 0},
		{"nil with SLO", nil, 10},
		{"all rejected no SLO", []ServeSample{rej(1), rej(2)}, 0},
		{"all rejected with SLO", []ServeSample{rej(1), rej(2), rej(3)}, 10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := SummarizeServeStreaming(tc.samples, tc.slo)
			want := SummarizeServe(tc.samples, tc.slo)
			if got != want {
				t.Errorf("streaming %+v, exact %+v", got, want)
			}
			assertFinite(t, got)
		})
	}
}

// TestServeAccumResetReuse pins the shard-worker reuse contract: Reset
// keeps the SLO target and bucket storage but clears every aggregate, so
// a reused accumulator is bit-identical to a fresh one.
func TestServeAccumResetReuse(t *testing.T) {
	a := NewServeAccum(15)
	for _, sm := range randomServeSamples(3, 500) {
		a.Observe(sm)
	}
	a.Reset()
	if a.Observed() != 0 {
		t.Fatalf("Observed after Reset = %d, want 0", a.Observed())
	}
	fresh := NewServeAccum(15)
	for _, sm := range randomServeSamples(4, 500) {
		a.Observe(sm)
		fresh.Observe(sm)
	}
	if a.Stats() != fresh.Stats() {
		t.Errorf("reused accumulator diverged:\n got %+v\nwant %+v", a.Stats(), fresh.Stats())
	}
	if a.StateBytes() != fresh.StateBytes() {
		t.Errorf("StateBytes diverged after reuse: %d vs %d", a.StateBytes(), fresh.StateBytes())
	}
}

func TestTickWindow(t *testing.T) {
	var w TickWindow
	if w.Completions() != 0 || w.MeanQueueDelay() != 0 || w.Attainment(5) != 1 {
		t.Fatal("zero window must be vacuous")
	}
	w.Observe(1, 4, false, 5) // hit
	w.Observe(3, 9, false, 5) // miss
	w.Observe(0, 0, true, 5)  // rejection: completion, no hit
	w.Arrivals = 7
	if w.Served != 2 || w.Rejected != 1 || w.Completions() != 3 {
		t.Errorf("served/rejected/completions = %d/%d/%d, want 2/1/3", w.Served, w.Rejected, w.Completions())
	}
	if got := w.MeanQueueDelay(); got != 2 {
		t.Errorf("mean queue delay %v, want 2", got)
	}
	if got, want := w.Attainment(5), 1.0/3; math.Abs(got-want) > 1e-12 {
		t.Errorf("attainment %v, want %v", got, want)
	}
	if got := w.Attainment(0); got != 1 {
		t.Errorf("no-target attainment %v, want 1", got)
	}
	w.Reset()
	if w != (TickWindow{}) {
		t.Errorf("Reset left state: %+v", w)
	}

	// No target at observe time: every served completion is a hit.
	var w2 TickWindow
	w2.Observe(0, 99, false, 0)
	if w2.SLOHits != 1 {
		t.Errorf("no-target observe SLOHits = %d, want 1", w2.SLOHits)
	}
}
