package metrics

// FleetAccum is a mergeable per-shard partial of SummarizeFleet's input.
// The sharded fleet engine gives every shard worker its own accumulator;
// merging them in any order and summarizing reproduces the sequential
// FleetStats exactly, because every piece of state is either an
// order-independent sum (prefix/requeue counters), keyed by a canonical
// merge position (samples), or keyed by fleet device index (telemetry).

type keyedSample struct {
	key uint64
	s   ServeSample
}

type keyedDevice struct {
	index int
	d     FleetDevice
}

// FleetAccum accumulates one shard's share of a fleet run. The zero
// value is ready to use.
type FleetAccum struct {
	// Requeues counts failure-induced migrations observed by this shard.
	Requeues int
	// PrefixHits / PrefixMisses count prompt-prefix tokens settled by
	// this shard's devices.
	PrefixHits, PrefixMisses int64

	samples []keyedSample
	devices []keyedDevice
}

// AddSample records one served-stream sample at its canonical merge key
// (the sample's position in the fleet's sequential result order, e.g.
// window<<20 | device). Keys must be strictly increasing per accumulator
// and unique across the accumulators that will be merged.
func (a *FleetAccum) AddSample(key uint64, s ServeSample) {
	a.samples = append(a.samples, keyedSample{key: key, s: s})
}

// AddDevice records one device's telemetry under its fleet index.
// Indexes must be unique across the accumulators that will be merged —
// the sharded engine guarantees this by device ownership.
func (a *FleetAccum) AddDevice(index int, d FleetDevice) {
	a.devices = append(a.devices, keyedDevice{index: index, d: d})
}

// Merge folds b into a: counters add, samples merge by key, devices
// merge by index. b is left in an unspecified state.
func (a *FleetAccum) Merge(b *FleetAccum) {
	a.Requeues += b.Requeues
	a.PrefixHits += b.PrefixHits
	a.PrefixMisses += b.PrefixMisses
	a.samples = mergeBy(a.samples, b.samples, func(x, y keyedSample) bool { return x.key < y.key })
	a.devices = mergeBy(a.devices, b.devices, func(x, y keyedDevice) bool { return x.index < y.index })
}

// Input assembles the merged accumulator into a SummarizeFleet input:
// samples in canonical key order, devices dense in index order (absent
// indexes read as zero telemetry — they never occur when every shard
// reports its devices).
func (a *FleetAccum) Input(sloLatency float64, control *ControlStats) FleetInput {
	in := FleetInput{
		Requeues:     a.Requeues,
		PrefixHits:   a.PrefixHits,
		PrefixMisses: a.PrefixMisses,
		SLOLatency:   sloLatency,
		Control:      control,
	}
	in.Samples = make([]ServeSample, len(a.samples))
	for i, ks := range a.samples {
		in.Samples[i] = ks.s
	}
	maxIdx := -1
	for _, kd := range a.devices {
		if kd.index > maxIdx {
			maxIdx = kd.index
		}
	}
	in.Devices = make([]FleetDevice, maxIdx+1)
	for _, kd := range a.devices {
		in.Devices[kd.index] = kd.d
	}
	return in
}

// Summarize reduces the merged accumulator to FleetStats — identical to
// SummarizeFleet over the sequential engine's input when the samples
// carry the sequential result order as keys.
func (a *FleetAccum) Summarize(sloLatency float64, control *ControlStats) FleetStats {
	return SummarizeFleet(a.Input(sloLatency, control))
}

// mergeBy merges two slices, each already sorted by less, into one.
func mergeBy[T any](xs, ys []T, less func(a, b T) bool) []T {
	if len(ys) == 0 {
		return xs
	}
	if len(xs) == 0 {
		return append(xs, ys...)
	}
	out := make([]T, 0, len(xs)+len(ys))
	i, j := 0, 0
	for i < len(xs) && j < len(ys) {
		if less(ys[j], xs[i]) {
			out = append(out, ys[j])
			j++
		} else {
			out = append(out, xs[i])
			i++
		}
	}
	out = append(out, xs[i:]...)
	return append(out, ys[j:]...)
}
