package metrics

// FleetAccum is a mergeable per-shard partial of SummarizeFleet's input.
// The sharded fleet engine gives every shard worker its own accumulator;
// merging them in any order and summarizing reproduces the sequential
// FleetStats exactly, because every piece of state is either an
// order-independent sum (prefix/requeue counters, streaming sketches),
// keyed by a canonical merge position (samples), or keyed by fleet
// device index (telemetry).
//
// Two aggregation modes share the type. In exact mode (the default and
// the golden-conformance path) served samples are retained keyed for a
// later exact summary. In streaming mode (EnableStreaming) samples fold
// into a constant-size ServeAccum at observation time and are never
// retained — the shape that keeps million-request fleet runs in bounded
// memory.

type keyedSample struct {
	key uint64
	s   ServeSample
}

type keyedDevice struct {
	index int
	d     FleetDevice
}

// FleetAccum accumulates one shard's share of a fleet run. The zero
// value is an exact-mode accumulator ready to use.
type FleetAccum struct {
	// Requeues counts failure-induced migrations observed by this shard.
	Requeues int
	// PrefixHits / PrefixMisses count prompt-prefix tokens settled by
	// this shard's devices.
	PrefixHits, PrefixMisses int64
	// Attr carries the latency-attribution rollup when the run had a
	// span recorder attached; the zero value means no attribution.
	Attr AttributionStats

	samples []keyedSample
	devices []keyedDevice
	serve   *ServeAccum // non-nil in streaming mode
}

// EnableStreaming switches the accumulator to streaming aggregation:
// subsequent AddSample calls fold into a ServeAccum (judging SLO
// attainment against sloLatency) instead of retaining keyed samples.
// Must be called before the first AddSample.
func (a *FleetAccum) EnableStreaming(sloLatency float64) {
	if len(a.samples) > 0 {
		panic("metrics: FleetAccum.EnableStreaming after samples were retained")
	}
	a.serve = NewServeAccum(sloLatency)
}

// Streaming reports whether the accumulator aggregates into sketches.
func (a *FleetAccum) Streaming() bool { return a.serve != nil }

// Serve exposes the streaming accumulator (nil in exact mode).
func (a *FleetAccum) Serve() *ServeAccum { return a.serve }

// AddSample records one served-stream sample. In exact mode it is
// retained at its canonical merge key (the sample's position in the
// fleet's sequential result order, e.g. window<<20 | device); keys must
// be strictly increasing per accumulator and unique across the
// accumulators that will be merged. In streaming mode the key is
// irrelevant (sketch merge is order-independent) and the sample is
// folded in immediately.
func (a *FleetAccum) AddSample(key uint64, s ServeSample) {
	if a.serve != nil {
		a.serve.Observe(s)
		return
	}
	a.samples = append(a.samples, keyedSample{key: key, s: s})
}

// AddDevice records one device's telemetry under its fleet index.
// Indexes must be unique across the accumulators that will be merged —
// the sharded engine guarantees this by device ownership.
func (a *FleetAccum) AddDevice(index int, d FleetDevice) {
	a.devices = append(a.devices, keyedDevice{index: index, d: d})
}

// Reset clears the accumulator for reuse (shard workers reset between
// passes), keeping allocated capacity and the aggregation mode.
func (a *FleetAccum) Reset() {
	a.Requeues, a.PrefixHits, a.PrefixMisses = 0, 0, 0
	a.Attr = AttributionStats{}
	a.samples = a.samples[:0]
	a.devices = a.devices[:0]
	if a.serve != nil {
		a.serve.Reset()
	}
}

// Merge folds b into a: counters add, samples merge by key, devices
// merge by index, streaming accumulators merge sketch-wise. b is left
// in an unspecified state. Pairwise folding S shards costs O(S·N)
// copying — drivers folding a whole shard set should call MergeAll.
func (a *FleetAccum) Merge(b *FleetAccum) {
	a.MergeAll(b)
}

// MergeAll folds every b into a with one k-way pass per keyed slice: a
// single output allocation sized to the final length, instead of the
// O(S·N) transient copying a pairwise fold performs. The bs are left in
// an unspecified state (their storage is never aliased, so resetting and
// reusing them is safe).
func (a *FleetAccum) MergeAll(bs ...*FleetAccum) {
	for _, b := range bs {
		a.Requeues += b.Requeues
		a.PrefixHits += b.PrefixHits
		a.PrefixMisses += b.PrefixMisses
		a.Attr.Add(b.Attr)
		if b.serve != nil {
			if a.serve == nil {
				a.serve = NewServeAccum(b.serve.SLOLatency)
			}
			a.serve.Merge(b.serve)
		}
	}
	a.samples = mergeRuns(a.samples, bs,
		func(b *FleetAccum) []keyedSample { return b.samples },
		func(x, y keyedSample) bool { return x.key < y.key })
	a.devices = mergeRuns(a.devices, bs,
		func(b *FleetAccum) []keyedDevice { return b.devices },
		func(x, y keyedDevice) bool { return x.index < y.index })
}

// Input assembles the merged accumulator into a SummarizeFleet input:
// in exact mode, samples in canonical key order; in streaming mode, the
// ServeAccum rides along instead (Samples stays nil). Devices are dense
// in index order (absent indexes read as zero telemetry — they never
// occur when every shard reports its devices).
func (a *FleetAccum) Input(sloLatency float64, control *ControlStats) FleetInput {
	in := FleetInput{
		Requeues:     a.Requeues,
		PrefixHits:   a.PrefixHits,
		PrefixMisses: a.PrefixMisses,
		SLOLatency:   sloLatency,
		Control:      control,
		Serve:        a.serve,
	}
	if a.Attr.Requests > 0 {
		attr := a.Attr
		in.Attribution = &attr
	}
	if a.serve == nil {
		in.Samples = make([]ServeSample, len(a.samples))
		for i, ks := range a.samples {
			in.Samples[i] = ks.s
		}
	}
	maxIdx := -1
	for _, kd := range a.devices {
		if kd.index > maxIdx {
			maxIdx = kd.index
		}
	}
	in.Devices = make([]FleetDevice, maxIdx+1)
	for _, kd := range a.devices {
		in.Devices[kd.index] = kd.d
	}
	return in
}

// Summarize reduces the merged accumulator to FleetStats — identical to
// SummarizeFleet over the sequential engine's input when the samples
// carry the sequential result order as keys.
func (a *FleetAccum) Summarize(sloLatency float64, control *ControlStats) FleetStats {
	return SummarizeFleet(a.Input(sloLatency, control))
}

// mergeRuns merges dst and every source run (each already sorted by
// less, keys unique across runs) into one sorted slice with a single
// output allocation. Empty runs cost nothing; when nothing but dst has
// elements, dst is returned untouched. Source storage is never aliased
// into the result.
func mergeRuns[T any](dst []T, bs []*FleetAccum, src func(*FleetAccum) []T, less func(a, b T) bool) []T {
	extra, nonEmpty := 0, 0
	for _, b := range bs {
		if r := src(b); len(r) > 0 {
			extra += len(r)
			nonEmpty++
		}
	}
	if extra == 0 {
		return dst
	}
	out := make([]T, 0, len(dst)+extra)
	heads := make([][]T, 0, nonEmpty+1)
	if len(dst) > 0 {
		heads = append(heads, dst)
	}
	for _, b := range bs {
		if r := src(b); len(r) > 0 {
			heads = append(heads, r)
		}
	}
	for len(heads) > 1 {
		m := 0
		for i := 1; i < len(heads); i++ {
			if less(heads[i][0], heads[m][0]) {
				m = i
			}
		}
		out = append(out, heads[m][0])
		if heads[m] = heads[m][1:]; len(heads[m]) == 0 {
			heads = append(heads[:m], heads[m+1:]...)
		}
	}
	return append(out, heads[0]...)
}
