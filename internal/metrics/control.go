package metrics

// Controller-level aggregates for the elastic control plane: what the
// feedback loop actually did (scaling actions, budget-tier moves), what
// the elasticity cost (device-seconds), and the SLO-vs-cost frontier
// used to compare controllers.

import "sort"

// ControlStats summarizes one controller-driven fleet run. The zero
// value describes a run without a controller.
type ControlStats struct {
	// Ticks counts control intervals the controller observed.
	Ticks int
	// ScaleUps / ScaleDowns count devices actually added from the warm
	// pool / put into drain (after clamping, not as requested).
	ScaleUps, ScaleDowns int
	// TierChanges counts applied budget-tier moves; FinalTier is the
	// tier in effect when the run ended (0 = full search budget).
	TierChanges int
	FinalTier   int
	// PeakDevices is the maximum concurrently routable device count.
	PeakDevices int
	// DegradedRequests counts requests routed while the budget tier was
	// above 0 (served with a narrowed search width).
	DegradedRequests int
}

// CostPoint is one run on the SLO-vs-cost plane: the device-seconds the
// fleet consumed against the SLO attainment it bought.
type CostPoint struct {
	// Label names the run (typically the controller name).
	Label string
	// DeviceSeconds is the summed live time of every fleet member.
	DeviceSeconds float64
	// SLOAttainment is the run's SLO attainment in [0, 1].
	SLOAttainment float64
}

// StrategyPoint is one test-time-compute strategy on the
// compute-vs-latency plane: the decode tokens a strategy spent per
// request against the tail latency it delivered, with the accuracy it
// bought — the axes along which first-finish, deadline cuts, and
// hedging trade against the full beam.
type StrategyPoint struct {
	// Strategy names the configuration (search.Strategy.Name()).
	Strategy string
	// TokensPerRequest is the mean decode tokens spent per served
	// request, including work later abandoned or cancelled.
	TokensPerRequest float64
	// P99Latency is the p99 wall latency in virtual seconds.
	P99Latency float64
	// Accuracy is the fraction of served requests whose selected path
	// answered correctly, in [0, 1].
	Accuracy float64
}

// StrategyFrontier returns the Pareto-efficient subset of the
// compute-vs-latency points — the strategies for which no other point
// spends at most the same tokens for at most the same tail latency
// while improving one of the two — sorted by ascending tokens per
// request, ties by ascending p99 then name for determinism. Accuracy
// rides along as context and does not enter dominance: the bench gate
// compares it separately at equal accounting.
func StrategyFrontier(points []StrategyPoint) []StrategyPoint {
	var out []StrategyPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			betterTokens := q.TokensPerRequest < p.TokensPerRequest
			betterTail := q.P99Latency < p.P99Latency
			noWorse := q.TokensPerRequest <= p.TokensPerRequest && q.P99Latency <= p.P99Latency
			if noWorse && (betterTokens || betterTail) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TokensPerRequest != out[j].TokensPerRequest {
			return out[i].TokensPerRequest < out[j].TokensPerRequest
		}
		if out[i].P99Latency != out[j].P99Latency {
			return out[i].P99Latency < out[j].P99Latency
		}
		return out[i].Strategy < out[j].Strategy
	})
	return out
}

// Frontier returns the Pareto-efficient subset of the SLO-vs-cost
// points — the runs for which no other run attains at least the same SLO
// fraction at lower cost (or more at the same cost) — sorted by
// ascending device-seconds, ties by label for determinism. Dominated
// controllers are exactly the ones not worth running.
func Frontier(points []CostPoint) []CostPoint {
	var out []CostPoint
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i == j {
				continue
			}
			betterCost := q.DeviceSeconds < p.DeviceSeconds
			betterSLO := q.SLOAttainment > p.SLOAttainment
			noWorse := q.DeviceSeconds <= p.DeviceSeconds && q.SLOAttainment >= p.SLOAttainment
			if noWorse && (betterCost || betterSLO) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DeviceSeconds != out[j].DeviceSeconds {
			return out[i].DeviceSeconds < out[j].DeviceSeconds
		}
		return out[i].Label < out[j].Label
	})
	return out
}
