package metrics

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"fasttts/internal/rng"
)

// sketchOf builds a sketch over the samples.
func sketchOf(xs []float64) *Sketch {
	var s Sketch
	for _, x := range xs {
		s.Add(x)
	}
	return &s
}

// exactNearestRank is the reference the sketch's Quantile approximates:
// the sorted-sample nearest-rank percentile.
func exactNearestRank(xs []float64, p float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return sortedPercentile(ys, p)
}

// assertWithinSketchErr fails unless got is within the documented sketch
// error of the exact value: SketchRelErr relative for in-range values,
// 1µs absolute below the range floor.
func assertWithinSketchErr(t *testing.T, label string, got, exact float64) {
	t.Helper()
	if exact <= 1e-6 {
		if math.Abs(got-exact) > 1e-6 {
			t.Errorf("%s: got %v, exact %v, absolute error above 1µs", label, got, exact)
		}
		return
	}
	if rel := math.Abs(got-exact) / exact; rel > SketchRelErr {
		t.Errorf("%s: got %v, exact %v, relative error %v > %v", label, got, exact, rel, SketchRelErr)
	}
}

func TestSketchBasics(t *testing.T) {
	var s Sketch
	if s.Count() != 0 || s.Quantile(50) != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatal("empty sketch must report zeros")
	}
	xs := []float64{3, 0.5, 12, 0.5, 7}
	s2 := sketchOf(xs)
	if s2.Count() != 5 {
		t.Errorf("count %d, want 5", s2.Count())
	}
	if s2.Min() != 0.5 || s2.Max() != 12 {
		t.Errorf("min/max = %v/%v, want 0.5/12", s2.Min(), s2.Max())
	}
	if got := s2.Quantile(0); got != 0.5 {
		t.Errorf("Quantile(0) = %v, want exact min 0.5", got)
	}
	if got := s2.Quantile(100); got != 12 {
		t.Errorf("Quantile(100) = %v, want exact max 12", got)
	}
	for _, p := range []float64{10, 25, 50, 75, 90, 95, 99} {
		assertWithinSketchErr(t, "Quantile", s2.Quantile(p), exactNearestRank(xs, p))
	}
	exactMean := (3 + 0.5 + 12 + 0.5 + 7) / 5.0
	assertWithinSketchErr(t, "Mean", s2.Mean(), exactMean)
}

func TestSketchOutOfRangeCollapse(t *testing.T) {
	// Below-range samples (including exact zeros) collapse into the low
	// bucket and are reported as the exact observed minimum.
	s := sketchOf([]float64{0, 1e-9, 1e-7})
	if got := s.Quantile(50); got != 0 {
		t.Errorf("all-low Quantile(50) = %v, want exact min 0", got)
	}
	if s.Mean() > 1e-6 {
		t.Errorf("all-low Mean = %v, want ≤ 1µs", s.Mean())
	}
	// Above-range samples clamp into the top bucket and are reported as
	// the exact observed maximum.
	s = sketchOf([]float64{1, 2e5, 9e9})
	if got := s.Quantile(99); got != 9e9 {
		t.Errorf("top-clamped Quantile(99) = %v, want exact max 9e9", got)
	}
	if got := s.Quantile(100); got != 9e9 {
		t.Errorf("Quantile(100) = %v, want exact max", got)
	}
}

func TestSketchAddPanics(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -1e-9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%v) did not panic", v)
				}
			}()
			new(Sketch).Add(v)
		}()
	}
	for _, p := range []float64{math.NaN(), -0.001, 100.001} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			sketchOf([]float64{1}).Quantile(p)
		}()
	}
}

func TestSketchReset(t *testing.T) {
	s := sketchOf([]float64{1, 2, 3})
	s.Reset()
	if s.Count() != 0 || s.Quantile(50) != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatalf("reset sketch not empty: %+v", s)
	}
	// Reset keeps the bucket allocation; the sketch must be reusable and
	// agree with a fresh one bit-for-bit.
	s.Add(7)
	fresh := sketchOf([]float64{7})
	if s.Quantile(50) != fresh.Quantile(50) || s.Count() != fresh.Count() {
		t.Errorf("reused sketch diverged from fresh: %v vs %v", s.Quantile(50), fresh.Quantile(50))
	}
}

func TestSketchStateBytes(t *testing.T) {
	var s Sketch
	s.Add(1)
	if got := s.StateBytes(); got < 8*sketchBuckets || got > 16*1024 {
		t.Errorf("StateBytes = %d, want ~%d (constant ~10KiB)", got, 8*sketchBuckets)
	}
}

// TestSketchMergeBitIdentical is the determinism keystone: merging
// per-shard sketches — any split, any order — must produce state
// bit-identical to one sketch that saw every sample. testing/quick
// drives random sample sets and random shard assignments.
func TestSketchMergeBitIdentical(t *testing.T) {
	prop := func(seed uint64, nSamples uint16, nShards uint8) bool {
		n := int(nSamples)%2000 + 1
		shards := int(nShards)%7 + 1
		r := rng.New(seed).Child("quick/sketch-merge")
		whole := &Sketch{}
		parts := make([]*Sketch, shards)
		for i := range parts {
			parts[i] = &Sketch{}
		}
		for i := 0; i < n; i++ {
			// Mix scales so low bucket, log range, and top clamp all see
			// traffic: 1e-9 … 1e7 seconds.
			v := math.Pow(10, -9+16*r.Float64())
			whole.Add(v)
			parts[r.IntN(shards)].Add(v)
		}
		merged := &Sketch{}
		for _, ord := range r.Perm(shards) {
			merged.Merge(parts[ord])
		}
		// Bucket storage may be nil vs allocated-but-zero depending on the
		// split; compare observable state exactly instead.
		if merged.Count() != whole.Count() || merged.Min() != whole.Min() || merged.Max() != whole.Max() {
			return false
		}
		if merged.Sum() != whole.Sum() {
			return false
		}
		for p := 0.0; p <= 100; p += 2.5 {
			if merged.Quantile(p) != whole.Quantile(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSketchAccuracyDistributions asserts the documented error bound
// across the distribution shapes serving fleets produce: uniform,
// Pareto heavy tail, and a bimodal fast/slow-path mix.
func TestSketchAccuracyDistributions(t *testing.T) {
	const n = 50_000
	gen := map[string]func(r *rng.Stream) float64{
		"uniform":    func(r *rng.Stream) float64 { return 0.5 + 59.5*r.Float64() },
		"heavy-tail": func(r *rng.Stream) float64 { return math.Min(1/math.Pow(1-r.Float64(), 1/1.3), 9e4) },
		"bimodal": func(r *rng.Stream) float64 {
			if r.Float64() < 0.7 {
				return math.Max(math.Abs(r.Norm(8, 2)), 1e-3)
			}
			return math.Max(math.Abs(r.Norm(120, 15)), 1e-3)
		},
	}
	for name, g := range gen {
		t.Run(name, func(t *testing.T) {
			r := rng.New(42).Child("accuracy/" + name)
			xs := make([]float64, n)
			s := &Sketch{}
			for i := range xs {
				xs[i] = g(r)
				s.Add(xs[i])
			}
			for _, p := range []float64{50, 95, 99} {
				assertWithinSketchErr(t, name, s.Quantile(p), exactNearestRank(xs, p))
			}
			var sum float64
			for _, x := range xs {
				sum += x
			}
			assertWithinSketchErr(t, name+" mean", s.Mean(), sum/n)
		})
	}
}

// TestSketchQuantileMatchesNearestRankRule checks the rank arithmetic
// itself: with samples spread far apart (each in its own bucket), the
// sketch must pick the same sample as sortedPercentile for every p.
func TestSketchQuantileMatchesNearestRankRule(t *testing.T) {
	xs := []float64{1, 10, 100, 1000, 10000} // ≥ γ apart: one bucket each
	s := sketchOf(xs)
	for p := 0.0; p <= 100; p += 0.5 {
		exact := exactNearestRank(xs, p)
		assertWithinSketchErr(t, "rank rule", s.Quantile(p), exact)
	}
}

func TestSketchMergeEmpty(t *testing.T) {
	a := sketchOf([]float64{1, 2, 3})
	before := *a
	a.Merge(&Sketch{})
	if !reflect.DeepEqual(*a, before) {
		t.Error("merging an empty sketch changed state")
	}
	empty := &Sketch{}
	empty.Merge(a)
	if empty.Count() != 3 || empty.Min() != 1 || empty.Max() != 3 {
		t.Errorf("empty.Merge(a) state: count=%d min=%v max=%v", empty.Count(), empty.Min(), empty.Max())
	}
}
