package metrics

// AttributionStats is the fleet rollup of the observability layer's
// per-request latency attribution (obs.Attribute): every finished
// request's wall latency decomposed into additive components, summed.
// Every field is a plain sum, so partials fold order-independently
// through FleetAccum.MergeAll; in practice the attribution pass runs
// once on the driver over the merged span stream, so sequential and
// sharded engines produce bit-identical totals.
type AttributionStats struct {
	// Requests counts attributed (finished) requests; Hedged counts how
	// many of them ran with a hedged twin.
	Requests int
	Hedged   int

	// Wall sums attributed wall latency; the five components below sum
	// back to it (per request, within 1 ulp).
	Wall       float64
	Queue      float64
	Service    float64
	Reprefill  float64
	Straggler  float64
	Preemption float64

	// HedgeWaste / LostWork are overlapping device-time side channels
	// (losing hedge copies, work lost to fail-stops) outside the serial
	// wall decomposition.
	HedgeWaste float64
	LostWork   float64

	Slices      int
	Preemptions int
	Requeues    int
}

// Add folds b into a (plain field-wise sums).
func (a *AttributionStats) Add(b AttributionStats) {
	a.Requests += b.Requests
	a.Hedged += b.Hedged
	a.Wall += b.Wall
	a.Queue += b.Queue
	a.Service += b.Service
	a.Reprefill += b.Reprefill
	a.Straggler += b.Straggler
	a.Preemption += b.Preemption
	a.HedgeWaste += b.HedgeWaste
	a.LostWork += b.LostWork
	a.Slices += b.Slices
	a.Preemptions += b.Preemptions
	a.Requeues += b.Requeues
}
