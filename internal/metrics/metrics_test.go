package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPreciseGoodput(t *testing.T) {
	paths := []PathResult{
		{Tokens: 100, CompletedAt: 10},
		{Tokens: 300, CompletedAt: 30},
	}
	// avg tokens = 200, avg completion = 20 → 10 tokens/s.
	if got := PreciseGoodput(paths); math.Abs(got-10) > 1e-12 {
		t.Errorf("goodput = %v, want 10", got)
	}
	if got := PreciseGoodput(nil); got != 0 {
		t.Errorf("empty goodput = %v", got)
	}
	if got := PreciseGoodput([]PathResult{{Tokens: 5, CompletedAt: 0}}); got != 0 {
		t.Errorf("zero-time goodput = %v", got)
	}
}

// The metric's robustness property from §6.1: duplicating every beam
// (branch copies) leaves goodput unchanged.
func TestGoodputRobustToCopies(t *testing.T) {
	f := func(tok uint8, at uint8) bool {
		p := PathResult{Tokens: int(tok) + 1, CompletedAt: float64(at) + 1}
		one := PreciseGoodput([]PathResult{p})
		many := PreciseGoodput([]PathResult{p, p, p, p})
		return math.Abs(one-many) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A single slow straggler moves the average, not the whole metric —
// unlike a max-based latency metric.
func TestGoodputStragglerRobust(t *testing.T) {
	base := []PathResult{{Tokens: 100, CompletedAt: 10}, {Tokens: 100, CompletedAt: 10}}
	withStraggler := append(append([]PathResult(nil), base...), PathResult{Tokens: 100, CompletedAt: 100})
	g1 := PreciseGoodput(base)
	g2 := PreciseGoodput(withStraggler)
	if g2 >= g1 {
		t.Errorf("straggler should lower goodput: %v -> %v", g1, g2)
	}
	if g2 < g1/5 {
		t.Errorf("single straggler collapsed the metric: %v -> %v", g1, g2)
	}
}

func TestMeanCompletionTime(t *testing.T) {
	paths := []PathResult{{CompletedAt: 10}, {CompletedAt: 30}}
	if got := MeanCompletionTime(paths); got != 20 {
		t.Errorf("mean completion = %v", got)
	}
	if got := MeanCompletionTime(nil); got != 0 {
		t.Errorf("empty mean = %v", got)
	}
}

func TestTop1MajorityWins(t *testing.T) {
	paths := []PathResult{
		{Answer: 0}, {Answer: 0}, {Answer: 0},
		{Answer: 3}, {Answer: 3}, {Answer: 7},
	}
	if !Top1Correct(paths) {
		t.Error("correct answer with most votes should win")
	}
	wrong := []PathResult{
		{Answer: 0}, {Answer: 3}, {Answer: 3},
	}
	if Top1Correct(wrong) {
		t.Error("minority correct answer should lose")
	}
	if Top1Correct(nil) {
		t.Error("empty vote should not be correct")
	}
}

func TestTop1TieBreaksByScore(t *testing.T) {
	paths := []PathResult{
		{Answer: 0, Score: 0.9}, {Answer: 0, Score: 0.8},
		{Answer: 5, Score: 0.3}, {Answer: 5, Score: 0.2},
	}
	if !Top1Correct(paths) {
		t.Error("score-weighted tie break should favor the correct answer")
	}
	paths2 := []PathResult{
		{Answer: 0, Score: 0.1}, {Answer: 0, Score: 0.1},
		{Answer: 5, Score: 0.9}, {Answer: 5, Score: 0.9},
	}
	if Top1Correct(paths2) {
		t.Error("higher-scored wrong answer should win the tie")
	}
}

func TestPassAtN(t *testing.T) {
	paths := []PathResult{
		{Answer: 4, Score: 0.9},
		{Answer: 2, Score: 0.8},
		{Answer: 0, Score: 0.5}, // correct, ranked 3rd
		{Answer: 6, Score: 0.3},
	}
	if PassAtN(paths, 2) {
		t.Error("pass@2 should miss the 3rd-ranked correct answer")
	}
	if !PassAtN(paths, 3) {
		t.Error("pass@3 should find it")
	}
	if !PassAtN(paths, 100) {
		t.Error("n beyond len should clamp")
	}
	if PassAtN(paths, 0) || PassAtN(nil, 5) {
		t.Error("degenerate inputs should fail")
	}
}

func TestPassAtNMonotone(t *testing.T) {
	f := func(raw []byte) bool {
		var paths []PathResult
		for i, b := range raw {
			paths = append(paths, PathResult{Answer: int(b % 7), Score: float64(b) / 255, Tokens: i})
		}
		prev := false
		for n := 1; n <= len(paths); n++ {
			cur := PassAtN(paths, n)
			if prev && !cur {
				return false // pass@N must be monotone in N
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]bool{true, false, true, true}); got != 75 {
		t.Errorf("accuracy = %v", got)
	}
	if got := Accuracy(nil); got != 0 {
		t.Errorf("empty accuracy = %v", got)
	}
}

func TestMeanAndGeoMean(t *testing.T) {
	if got := Mean([]float64{2, 4}); got != 3 {
		t.Errorf("mean = %v", got)
	}
	if got := GeoMean([]float64{1, 4}); got != 2 {
		t.Errorf("geomean = %v", got)
	}
	if got := GeoMean([]float64{2, -1}); got != 0 {
		t.Errorf("geomean with negative = %v", got)
	}
	if Mean(nil) != 0 || GeoMean(nil) != 0 {
		t.Error("empty means should be 0")
	}
}
