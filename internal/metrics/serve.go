package metrics

// Server-level aggregates for the multi-tenant serving engine: latency
// percentiles, queueing delay, server goodput, and SLO attainment over a
// whole served request stream.

import (
	"fmt"
	"math"
	"sort"
)

// ServeSample is the telemetry of one request as seen by the server.
type ServeSample struct {
	// Arrival, Start, and Finish are on the server clock; Start and
	// Finish are meaningless when Rejected.
	Arrival, Start, Finish float64
	// Tokens is the request's useful generated output (prompt excluded).
	Tokens int64
	// Rejected marks requests shed by admission control.
	Rejected bool
}

// ServeStats aggregates a served request stream.
type ServeStats struct {
	Served, Rejected int
	// Makespan is the finish time of the last served request.
	Makespan float64
	// MeanQueueDelay / MaxQueueDelay aggregate Start − Arrival.
	MeanQueueDelay, MaxQueueDelay float64
	// Latency here is wall latency, Finish − Arrival: what a client
	// experiences, queueing included.
	MeanLatency, P50Latency, P95Latency, P99Latency float64
	// Goodput is useful tokens per second of makespan across the stream.
	Goodput float64
	// SLOAttainment is the fraction of all submitted requests whose wall
	// latency met the target; rejected requests count as misses, since
	// shed load is not attained load. It is 1 when no target was set.
	SLOAttainment float64
	// NonFinite counts served samples dropped from every aggregate
	// because their telemetry was NaN or ±Inf — a single unfiltered NaN
	// silently poisons sort.Float64s ordering and with it every
	// percentile, so corrupt samples are counted instead of aggregated.
	NonFinite int
}

// isFinite reports whether x is an ordinary float — not NaN, not ±Inf.
func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// checkPercentile enforces the documented percentile domain. A caller
// typo (p = 0.99 meaning 99, p = 999) must not masquerade as a valid
// percentile, so out-of-domain p panics rather than clamping.
func checkPercentile(p float64) {
	if math.IsNaN(p) || p < 0 || p > 100 {
		panic(fmt.Sprintf("metrics: percentile p must be in [0, 100], got %v", p))
	}
}

// Percentile returns the p-th percentile of xs by the nearest-rank
// method, 0 for empty input. xs need not be sorted; NaN/±Inf entries are
// ignored (they have no rank). p outside [0, 100] panics.
func Percentile(xs []float64, p float64) float64 {
	checkPercentile(p)
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if isFinite(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	return sortedPercentile(sorted, p)
}

// sortedPercentile is Percentile over an already-sorted, all-finite
// slice: the nearest-rank index, no copy, no re-sort. Aggregations that
// need several percentiles of one sample sort once and index repeatedly.
func sortedPercentile(sorted []float64, p float64) float64 {
	checkPercentile(p)
	if len(sorted) == 0 {
		return 0
	}
	if p == 0 {
		return sorted[0]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// SummarizeServe reduces a served stream to server-level aggregates.
// sloLatency is the wall-latency target in seconds; <= 0 disables the
// SLO-attainment metric (reported as 1). This is the exact path — it
// buffers and sorts every wall latency, so memory grows with the
// stream; SummarizeServeStreaming is the constant-memory alternative.
//
// Empty and all-rejected streams are well-defined, never NaN/Inf: every
// aggregate is zero-valued, except SLOAttainment, which is 1 (vacuous)
// on an empty stream and 0 when load was submitted under a target but
// nothing met it. Served samples whose queue or wall latency is NaN or
// ±Inf are dropped from every aggregate and counted in NonFinite.
func SummarizeServe(samples []ServeSample, sloLatency float64) ServeStats {
	s := ServeStats{SLOAttainment: 1}
	var queued, wall []float64
	var tokens int64
	attained := 0
	for _, sm := range samples {
		if sm.Rejected {
			s.Rejected++
			continue
		}
		q := sm.Start - sm.Arrival
		w := sm.Finish - sm.Arrival
		if !isFinite(q) || !isFinite(w) {
			s.NonFinite++
			continue
		}
		s.Served++
		queued = append(queued, q)
		wall = append(wall, w)
		tokens += sm.Tokens
		if q > s.MaxQueueDelay {
			s.MaxQueueDelay = q
		}
		if sm.Finish > s.Makespan {
			s.Makespan = sm.Finish
		}
		if w <= sloLatency {
			attained++
		}
	}
	if s.Served == 0 {
		// Empty or all-rejected: no served sample exists to aggregate, so
		// every percentile, delay, and rate stays zero-valued rather than
		// risking 0/0 down the line. Rejected load under a target is still
		// all-missed load.
		if sloLatency > 0 && s.Rejected > 0 {
			s.SLOAttainment = 0
		}
		return s
	}
	s.MeanQueueDelay = Mean(queued)
	s.MeanLatency = Mean(wall) // before sorting: the sum is order-sensitive
	// One sort serves all three percentiles; wall is local, so sorting in
	// place is safe and avoids Percentile's per-call copy + re-sort.
	sort.Float64s(wall)
	s.P50Latency = sortedPercentile(wall, 50)
	s.P95Latency = sortedPercentile(wall, 95)
	s.P99Latency = sortedPercentile(wall, 99)
	if s.Makespan > 0 {
		s.Goodput = float64(tokens) / s.Makespan
	}
	if total := s.Served + s.Rejected; sloLatency > 0 {
		s.SLOAttainment = float64(attained) / float64(total)
	}
	return s
}
