package metrics

import (
	"math"
	"testing"
)

func TestCoefficientOfVariation(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"zero mean", []float64{0, 0}, 0},
		{"uniform", []float64{3, 3, 3, 3}, 0},
		// mean 2, population variance ((1)^2+(1)^2)/2 = 1 → CV 0.5.
		{"two-point", []float64{1, 3}, 0.5},
	}
	for _, c := range cases {
		if got := CoefficientOfVariation(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: CV = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestSummarizeFleet(t *testing.T) {
	in := FleetInput{
		Samples: []ServeSample{
			{Arrival: 0, Start: 0, Finish: 10, Tokens: 100},
			{Arrival: 1, Start: 2, Finish: 20, Tokens: 300},
			{Arrival: 2, Rejected: true},
		},
		Devices: []FleetDevice{
			{Busy: 9, Lifetime: 20, Served: 1, Tokens: 100},
			{Busy: 3, Lifetime: 5, Served: 1, Tokens: 300, Failed: true},
		},
		Requeues:     2,
		PrefixHits:   60,
		PrefixMisses: 40,
		SLOLatency:   15,
	}
	st := SummarizeFleet(in)

	if st.Served != 2 || st.Rejected != 1 {
		t.Errorf("served/rejected = %d/%d, want 2/1", st.Served, st.Rejected)
	}
	if st.Makespan != 20 {
		t.Errorf("makespan %v, want 20", st.Makespan)
	}
	// One of three submitted requests met the 15 s target.
	if want := 1.0 / 3; math.Abs(st.SLOAttainment-want) > 1e-12 {
		t.Errorf("SLO attainment %v, want %v", st.SLOAttainment, want)
	}
	if len(st.Devices) != 2 {
		t.Fatalf("%d device stats, want 2", len(st.Devices))
	}
	if got, want := st.Devices[0].Utilization, 0.45; math.Abs(got-want) > 1e-12 {
		t.Errorf("device 0 utilization %v, want %v", got, want)
	}
	if got, want := st.Devices[1].Goodput, 60.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("device 1 goodput %v, want %v", got, want)
	}
	if st.FailedDevices != 1 {
		t.Errorf("failed devices %d, want 1", st.FailedDevices)
	}
	if st.Requeues != 2 {
		t.Errorf("requeues %d, want 2", st.Requeues)
	}
	if want := 0.6; math.Abs(st.PrefixHitRate-want) > 1e-12 {
		t.Errorf("prefix hit rate %v, want %v", st.PrefixHitRate, want)
	}
	// Busy times 9 and 3: mean 6, population stddev 3 → CV 0.5.
	if want := 0.5; math.Abs(st.ImbalanceCV-want) > 1e-12 {
		t.Errorf("imbalance CV %v, want %v", st.ImbalanceCV, want)
	}
}

func TestSummarizeFleetNoPrefixTraffic(t *testing.T) {
	st := SummarizeFleet(FleetInput{Devices: []FleetDevice{{Busy: 1, Lifetime: 2}}})
	if st.PrefixHitRate != 0 {
		t.Errorf("hit rate %v with no prefix traffic, want 0", st.PrefixHitRate)
	}
	if st.ImbalanceCV != 0 {
		t.Errorf("imbalance CV %v for one device, want 0", st.ImbalanceCV)
	}
}

// TestSummarizeFleetDegenerate locks the fleet-level zero-value contract
// on empty and all-rejected streams, including a failed device with zero
// lifetime: all aggregates zero-valued and finite.
func TestSummarizeFleetDegenerate(t *testing.T) {
	cases := []struct {
		name string
		in   FleetInput
	}{
		{name: "zero input"},
		{name: "empty with SLO", in: FleetInput{SLOLatency: 5}},
		{
			name: "all rejected, dead zero-lifetime device",
			in: FleetInput{
				Samples:    []ServeSample{{Arrival: 1, Rejected: true}, {Arrival: 2, Rejected: true}},
				Devices:    []FleetDevice{{Failed: true}, {Lifetime: 0, Busy: 0}},
				SLOLatency: 5,
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := SummarizeFleet(tc.in)
			assertFinite(t, st.ServeStats)
			for i, d := range st.Devices {
				if d.Utilization != 0 || d.Goodput != 0 {
					t.Errorf("device %d: utilization %v goodput %v, want 0 for zero lifetime", i, d.Utilization, d.Goodput)
				}
			}
			if st.ImbalanceCV != 0 {
				t.Errorf("ImbalanceCV = %v, want 0 with no work", st.ImbalanceCV)
			}
			if st.PrefixHitRate != 0 {
				t.Errorf("PrefixHitRate = %v, want 0 with no prefix traffic", st.PrefixHitRate)
			}
			if st.Served != 0 {
				t.Errorf("Served = %d, want 0", st.Served)
			}
		})
	}
}

// TestSummarizeFleetCacheTelemetry pins the KV memory-plane aggregation:
// fleet cache counters sum across devices, the hit rate reflects actual
// residency (not the routing directory's PrefixHitRate), per-device
// occupancy derives from the end-of-run snapshot, and a zero-capacity
// device (plane disabled) contributes nothing.
func TestSummarizeFleetCacheTelemetry(t *testing.T) {
	cases := []struct {
		name          string
		devices       []FleetDevice
		wantHit       int64
		wantMiss      int64
		wantEvicted   int64
		wantReprefill float64
		wantRate      float64
		wantOcc       []float64
	}{
		{
			name: "mixed fleet",
			devices: []FleetDevice{
				{
					Busy: 4, Lifetime: 8,
					CacheCapacityTokens: 1000, CacheUsedTokens: 250,
					CacheHitTokens: 300, CacheMissTokens: 100,
					CacheEvictedTokens: 50, ReprefillSeconds: 0.5,
				},
				{
					Busy: 4, Lifetime: 8,
					CacheCapacityTokens: 2000, CacheUsedTokens: 2000,
					CacheHitTokens: 100, CacheMissTokens: 300,
					CacheEvictedTokens: 150, ReprefillSeconds: 1.5,
				},
			},
			wantHit: 400, wantMiss: 400, wantEvicted: 200,
			wantReprefill: 2, wantRate: 0.5,
			wantOcc: []float64{0.25, 1},
		},
		{
			name: "zero capacity stays silent",
			devices: []FleetDevice{
				{Busy: 3, Lifetime: 6},
				{Busy: 3, Lifetime: 6},
			},
			wantOcc: []float64{0, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := SummarizeFleet(FleetInput{Devices: tc.devices})
			if st.CacheHitTokens != tc.wantHit || st.CacheMissTokens != tc.wantMiss {
				t.Errorf("hit/miss tokens = %d/%d, want %d/%d",
					st.CacheHitTokens, st.CacheMissTokens, tc.wantHit, tc.wantMiss)
			}
			if st.CacheEvictedTokens != tc.wantEvicted {
				t.Errorf("evicted tokens = %d, want %d", st.CacheEvictedTokens, tc.wantEvicted)
			}
			if math.Abs(st.ReprefillSeconds-tc.wantReprefill) > 1e-12 {
				t.Errorf("re-prefill seconds = %v, want %v", st.ReprefillSeconds, tc.wantReprefill)
			}
			if math.Abs(st.CacheHitRate-tc.wantRate) > 1e-12 {
				t.Errorf("cache hit rate = %v, want %v", st.CacheHitRate, tc.wantRate)
			}
			for i, d := range st.Devices {
				if math.Abs(d.CacheOccupancy-tc.wantOcc[i]) > 1e-12 {
					t.Errorf("device %d occupancy = %v, want %v", i, d.CacheOccupancy, tc.wantOcc[i])
				}
			}
		})
	}
}
