package metrics

// The sharded fleet engine's metrics contract: splitting a run's samples,
// device telemetry, and counters across per-shard FleetAccums and merging
// them must reproduce the sequential SummarizeFleet bit for bit — every
// float compared with ==, not a tolerance. The tables exercise the
// order-sensitive reductions (time-weighted ImbalanceCV, DeviceSeconds,
// latency percentiles over the sample order) at shard boundaries: empty
// shards, single-device shards, interleaved device indexes, late joiners,
// drained and failed members.

import (
	"reflect"
	"testing"
)

// accumCase is one fleet run to split across shards.
type accumCase struct {
	name     string
	samples  []ServeSample
	devices  []FleetDevice
	requeues int
	hits     int64
	misses   int64
	slo      float64
	control  *ControlStats
}

func accumCases() []accumCase {
	return []accumCase{
		{
			name: "static-fleet",
			samples: []ServeSample{
				{Arrival: 0.1, Start: 0.1, Finish: 2.4, Tokens: 900},
				{Arrival: 0.5, Start: 0.9, Finish: 3.3, Tokens: 1100},
				{Arrival: 1.2, Start: 2.4, Finish: 5.0, Tokens: 800},
				{Arrival: 2.0, Start: 2.0, Finish: 2.0, Rejected: true},
				{Arrival: 2.5, Start: 3.3, Finish: 6.1, Tokens: 1250},
			},
			devices: []FleetDevice{
				{Busy: 4.8, Lifetime: 6.1, Served: 3, Tokens: 2800},
				{Busy: 2.7, Lifetime: 6.1, Served: 1, Tokens: 1250},
			},
			requeues: 0, hits: 300, misses: 700, slo: 4,
		},
		{
			// A late joiner and a drained device trigger the time-weighted
			// ImbalanceCV path (busy scaled to the longest lifetime), and a
			// failed device keeps raw busy — the mix must survive arbitrary
			// shard assignment.
			name: "elastic-churn",
			samples: []ServeSample{
				{Arrival: 0.2, Start: 0.2, Finish: 1.9, Tokens: 640},
				{Arrival: 0.8, Start: 1.9, Finish: 4.2, Tokens: 720},
				{Arrival: 1.1, Start: 1.1, Finish: 1.1, Rejected: true},
				{Arrival: 1.4, Start: 4.2, Finish: 7.7, Tokens: 1500},
				{Arrival: 3.0, Start: 3.5, Finish: 6.0, Tokens: 980},
				{Arrival: 3.2, Start: 6.0, Finish: 9.4, Tokens: 1210},
			},
			devices: []FleetDevice{
				{Busy: 5.1, Lifetime: 9.4, Served: 2, Tokens: 1360},
				{Busy: 3.0, Lifetime: 4.4, LiveStart: 2.5, Served: 2, Tokens: 2480}, // late joiner
				{Busy: 1.2, Lifetime: 3.1, Failed: true, Served: 1, Tokens: 1210},   // raw busy
				{Busy: 2.2, Lifetime: 5.0, Drained: true, Served: 1, Tokens: 980},   // scaled busy
			},
			requeues: 2, hits: 1280, misses: 320, slo: 5,
			control: &ControlStats{Ticks: 4, ScaleUps: 1, ScaleDowns: 1, PeakDevices: 4},
		},
		{
			// Zero-lifetime device (claimed from the warm pool, run ended
			// before warm-up): contributes nothing to utilization, goodput,
			// or the CV, but still occupies a device index.
			name: "zero-lifetime-member",
			samples: []ServeSample{
				{Arrival: 0.3, Start: 0.3, Finish: 2.2, Tokens: 512},
			},
			devices: []FleetDevice{
				{Busy: 1.9, Lifetime: 2.2, Served: 1, Tokens: 512},
				{Busy: 0, Lifetime: 0, LiveStart: 2.0},
			},
			requeues: 0, hits: 0, misses: 512, slo: 0,
		},
		{
			// KV memory-plane telemetry rides in FleetDevice: the cache
			// counters must fold through shard merges exactly like the core
			// fields, and a zero-capacity device (plane disabled) must stay
			// all-zero alongside enabled peers.
			name: "cache-plane",
			samples: []ServeSample{
				{Arrival: 0.1, Start: 0.1, Finish: 3.0, Tokens: 700},
				{Arrival: 0.6, Start: 0.6, Finish: 4.1, Tokens: 900},
				{Arrival: 1.3, Start: 3.0, Finish: 6.2, Tokens: 1100},
			},
			devices: []FleetDevice{
				{
					Busy: 4.0, Lifetime: 6.2, Served: 2, Tokens: 1600,
					CacheCapacityTokens: 4096, CacheUsedTokens: 3100,
					CacheHitTokens: 900, CacheMissTokens: 2200,
					CacheEvictedTokens: 500, ReprefillSeconds: 0.8,
				},
				{Busy: 2.9, Lifetime: 6.2, Served: 1, Tokens: 1100}, // plane disabled
				{
					Busy: 1.5, Lifetime: 6.2,
					CacheCapacityTokens: 2048, CacheUsedTokens: 2048,
					CacheHitTokens: 0, CacheMissTokens: 2600,
					CacheEvictedTokens: 552, ReprefillSeconds: 1.45,
				},
			},
			requeues: 1, hits: 900, misses: 4800, slo: 5,
		},
		{
			name:    "empty-run",
			samples: nil,
			devices: []FleetDevice{{Busy: 0, Lifetime: 3.5}},
		},
	}
}

// sequentialInput is the reference: the run reduced with no sharding.
func (c *accumCase) sequentialInput() FleetInput {
	return FleetInput{
		Samples:      c.samples,
		Devices:      c.devices,
		Requeues:     c.requeues,
		PrefixHits:   c.hits,
		PrefixMisses: c.misses,
		SLOLatency:   c.slo,
		Control:      c.control,
	}
}

// shardAccums splits the case across n accumulators the way the sharded
// engine does: sample i keyed by its sequential position, device d owned
// by shard d % n, counters spread round-robin.
func (c *accumCase) shardAccums(n int) []*FleetAccum {
	accs := make([]*FleetAccum, n)
	for i := range accs {
		accs[i] = &FleetAccum{}
	}
	for i, s := range c.samples {
		accs[i%n].AddSample(uint64(i), s)
	}
	for d, dev := range c.devices {
		accs[d%n].AddDevice(d, dev)
	}
	accs[0].Requeues = c.requeues
	accs[len(accs)-1].PrefixHits = c.hits
	accs[0].PrefixMisses = c.misses
	return accs
}

func TestFleetAccumMergeMatchesSequential(t *testing.T) {
	for _, c := range accumCases() {
		for _, n := range []int{1, 2, 3, 7} {
			accs := c.shardAccums(n)
			merged := accs[0]
			for _, b := range accs[1:] {
				merged.Merge(b)
			}
			want := SummarizeFleet(c.sequentialInput())
			got := merged.Summarize(c.slo, c.control)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/shards=%d: merged summary diverges\n got: %+v\nwant: %+v", c.name, n, got, want)
			}
		}
	}
}

// TestFleetAccumMergeOrderIrrelevant merges the same shards in reversed
// and rotated order: the canonical keys, not the merge order, define the
// result.
func TestFleetAccumMergeOrderIrrelevant(t *testing.T) {
	c := accumCases()[1]
	want := SummarizeFleet(c.sequentialInput())
	orders := [][]int{{2, 0, 1}, {1, 2, 0}, {2, 1, 0}}
	for _, order := range orders {
		accs := c.shardAccums(3)
		merged := &FleetAccum{}
		for _, s := range order {
			merged.Merge(accs[s])
		}
		if got := merged.Summarize(c.slo, c.control); !reflect.DeepEqual(got, want) {
			t.Errorf("merge order %v diverges from sequential summary", order)
		}
	}
}

// TestFleetAccumEmptyShards merges accumulators that saw no work — the
// common case for shards whose devices idled through a pass.
func TestFleetAccumEmptyShards(t *testing.T) {
	c := accumCases()[0]
	want := SummarizeFleet(c.sequentialInput())
	accs := c.shardAccums(2)
	merged := &FleetAccum{}
	merged.Merge(&FleetAccum{}) // empty into empty
	merged.Merge(accs[0])
	merged.Merge(&FleetAccum{}) // empty mid-sequence
	merged.Merge(accs[1])
	if got := merged.Summarize(c.slo, c.control); !reflect.DeepEqual(got, want) {
		t.Error("empty shard accumulators perturbed the merged summary")
	}
}

// TestFleetAccumMergeAllAllocs is the regression for the O(S·N) pairwise
// fold: merging S shard accumulators of N samples each must cost a small
// constant number of allocations (one output slice per keyed kind plus
// bookkeeping), not one fresh len(xs)+len(ys) slice per pairwise step.
func TestFleetAccumMergeAllAllocs(t *testing.T) {
	build := func(shards, perShard int) []*FleetAccum {
		accs := make([]*FleetAccum, shards)
		for s := range accs {
			accs[s] = &FleetAccum{}
			for i := 0; i < perShard; i++ {
				key := uint64(i*shards + s)
				accs[s].AddSample(key, ServeSample{Arrival: float64(key), Finish: float64(key) + 1})
			}
			accs[s].AddDevice(s, FleetDevice{Served: perShard})
		}
		return accs
	}
	for _, shards := range []int{4, 32} {
		accs := build(shards, 128)
		allocs := testing.AllocsPerRun(20, func() {
			root := &FleetAccum{}
			root.MergeAll(accs...)
			if len(root.samples) != shards*128 {
				t.Fatalf("merged %d samples, want %d", len(root.samples), shards*128)
			}
		})
		// root + samples out/heads + devices out/heads: constant, and —
		// the point — independent of the shard count.
		if allocs > 8 {
			t.Errorf("MergeAll(%d shards) = %v allocs/op, want a small constant ≤ 8", shards, allocs)
		}
	}
}

// TestFleetAccumAttribution pins the attribution rollup's path through
// the accumulator: plain field-wise sums fold order-independently
// through MergeAll, Input surfaces a non-nil (and aliasing-safe)
// Attribution exactly when requests were attributed, and Reset clears
// it.
func TestFleetAccumAttribution(t *testing.T) {
	mk := func(reqs int, wall float64) *FleetAccum {
		a := &FleetAccum{}
		a.Attr = AttributionStats{
			Requests: reqs, Hedged: reqs / 2,
			Wall: wall, Queue: wall / 2, Service: wall / 4,
			Reprefill: wall / 8, Straggler: wall / 16, Preemption: wall / 16,
			HedgeWaste: 1, LostWork: 2,
			Slices: 3 * reqs, Preemptions: reqs, Requeues: 1,
		}
		return a
	}
	want := AttributionStats{}
	want.Add(mk(2, 8).Attr)
	want.Add(mk(4, 16).Attr)
	want.Add(mk(8, 32).Attr)
	for _, order := range [][]float64{{8, 16, 32}, {32, 8, 16}, {16, 32, 8}} {
		merged := &FleetAccum{}
		for _, w := range order {
			merged.Merge(mk(int(w)/4, w))
		}
		if merged.Attr != want {
			t.Errorf("merge order %v: Attr = %+v, want %+v", order, merged.Attr, want)
		}
		in := merged.Input(0, nil)
		if in.Attribution == nil || *in.Attribution != want {
			t.Fatalf("Input attribution = %+v, want %+v", in.Attribution, want)
		}
		// Input copies the rollup: mutating the accumulator afterwards
		// must not reach through the pointer.
		merged.Attr.Requests++
		if in.Attribution.Requests != want.Requests {
			t.Fatal("Input.Attribution aliases the accumulator's rollup")
		}
		merged.Reset()
		if merged.Attr != (AttributionStats{}) {
			t.Fatalf("Reset left Attr = %+v", merged.Attr)
		}
		if in := merged.Input(0, nil); in.Attribution != nil {
			t.Fatal("empty rollup must surface a nil Attribution")
		}
	}
}

// TestFleetAccumInputShape pins the assembled FleetInput: samples in key
// order and devices dense in index order, regardless of which shard
// reported what.
func TestFleetAccumInputShape(t *testing.T) {
	a, b := &FleetAccum{}, &FleetAccum{}
	a.AddSample(0, ServeSample{Tokens: 1})
	b.AddSample(1, ServeSample{Tokens: 2})
	a.AddSample(2, ServeSample{Tokens: 3})
	b.AddDevice(3, FleetDevice{Served: 3})
	a.AddDevice(0, FleetDevice{Served: 1})
	a.Merge(b)
	in := a.Input(0, nil)
	if len(in.Samples) != 3 || in.Samples[0].Tokens != 1 || in.Samples[1].Tokens != 2 || in.Samples[2].Tokens != 3 {
		t.Errorf("samples out of key order: %+v", in.Samples)
	}
	if len(in.Devices) != 4 || in.Devices[0].Served != 1 || in.Devices[3].Served != 3 {
		t.Errorf("devices not dense by index: %+v", in.Devices)
	}
	if in.Devices[1] != (FleetDevice{}) || in.Devices[2] != (FleetDevice{}) {
		t.Errorf("unreported device indexes must read as zero telemetry: %+v", in.Devices)
	}
}
