// Package metrics implements the paper's evaluation metrics (§6.1) —
// Precise Goodput, completion latency, Top-1 accuracy via majority
// voting, Pass@N accuracy with verifier-score ranking — plus the
// serving-side aggregation layers built on them:
//
//   - serve.go: exact server-level aggregates over a served stream
//     (nearest-rank latency percentiles, queue delay, goodput, SLO
//     attainment); the golden-conformance path.
//   - sketch.go / streaming.go: the constant-memory streaming
//     counterpart — a deterministic mergeable quantile sketch
//     (Sketch), the ServeAccum stream accumulator, and the TickWindow
//     control-plane window. Percentiles carry the documented
//     SketchRelErr (< 1%) bound; merges are bit-identical in any
//     order.
//   - fleet.go / accum.go: fleet-level aggregates (per-device
//     utilization, imbalance, cache telemetry) and the mergeable
//     per-shard FleetAccum the sharded engine folds on the driver.
//   - control.go: elastic-control-plane summaries and the SLO-vs-cost
//     frontier.
package metrics

import (
	"math"
	"sort"
)

// PathResult is one finished reasoning path.
type PathResult struct {
	Tokens      int     // generated tokens (prompt excluded)
	CompletedAt float64 // completion time from request start, seconds
	Answer      int     // 0 = correct answer
	Score       float64 // final verifier score
}

// PreciseGoodput implements the §6.1 metric:
//
//	Precise Goodput := (average token length per beam) /
//	                   (average beam completion time)
//
// Averaging across beams makes the metric robust to a single slow path
// and to inflation from branching copies.
func PreciseGoodput(paths []PathResult) float64 {
	if len(paths) == 0 {
		return 0
	}
	var tokens, completion float64
	for _, p := range paths {
		tokens += float64(p.Tokens)
		completion += p.CompletedAt
	}
	if completion == 0 {
		return 0
	}
	return tokens / completion
}

// MeanCompletionTime is the average end-to-end time per completion.
func MeanCompletionTime(paths []PathResult) float64 {
	if len(paths) == 0 {
		return 0
	}
	total := 0.0
	for _, p := range paths {
		total += p.CompletedAt
	}
	return total / float64(len(paths))
}

// Top1Correct implements majority voting over final answers (§6.3):
// the answer with the most votes wins; ties break toward the answer with
// the higher summed verifier score. It reports whether the winning
// answer is the correct one (answer 0).
func Top1Correct(paths []PathResult) bool {
	if len(paths) == 0 {
		return false
	}
	votes := map[int]int{}
	weight := map[int]float64{}
	for _, p := range paths {
		votes[p.Answer]++
		weight[p.Answer] += p.Score
	}
	best, bestVotes, bestWeight := -1, -1, math.Inf(-1)
	var answers []int
	for a := range votes {
		answers = append(answers, a)
	}
	sort.Ints(answers) // deterministic iteration
	for _, a := range answers {
		if votes[a] > bestVotes || (votes[a] == bestVotes && weight[a] > bestWeight) {
			best, bestVotes, bestWeight = a, votes[a], weight[a]
		}
	}
	return best == 0
}

// PassAtN ranks candidates by verifier score (descending) and reports
// whether any of the top n answers is correct (§6.3).
func PassAtN(paths []PathResult, n int) bool {
	if len(paths) == 0 || n <= 0 {
		return false
	}
	ranked := append([]PathResult(nil), paths...)
	sort.SliceStable(ranked, func(i, j int) bool { return ranked[i].Score > ranked[j].Score })
	if n > len(ranked) {
		n = len(ranked)
	}
	for _, p := range ranked[:n] {
		if p.Answer == 0 {
			return true
		}
	}
	return false
}

// Accuracy aggregates a per-problem boolean outcome into a percentage.
func Accuracy(outcomes []bool) float64 {
	if len(outcomes) == 0 {
		return 0
	}
	hits := 0
	for _, ok := range outcomes {
		if ok {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(outcomes))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total / float64(len(xs))
}

// GeoMean returns the geometric mean of xs (0 for empty or non-positive
// input) — used for averaging speedup ratios across configurations.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
