package metrics

// A deterministic, mergeable quantile sketch for constant-memory
// streaming percentiles.
//
// The sketch is a fixed-boundary log-bucketed histogram (DDSketch-style,
// but with boundaries pinned at construction rather than collapsed
// dynamically): bucket i covers (min·γ^i, min·γ^(i+1)] with γ = 1.02,
// spanning 1µs to 10⁵ s in ~1.3k buckets (~10 KiB of state). Because
// the boundaries never move and every piece of state is an integer count
// or an order-independent min/max, Merge is a plain element-wise sum —
// merging per-shard sketches in ANY order or grouping yields bit-identical
// quantiles to one sketch that saw every sample. That property is what
// lets the sharded fleet engine accumulate latency distributions on
// parallel workers without perturbing results.
//
// Error contract (see SketchRelErr):
//
//   - samples in [1µs, 10⁵ s] are reported with relative error at most
//     √γ − 1 < 1% (each bucket's representative is its geometric
//     midpoint, and a quantile's true value shares its bucket);
//   - samples below 1µs collapse into a dedicated low bucket reported as
//     the exact observed minimum: absolute error ≤ 1µs;
//   - samples above 10⁵ s clamp into the top bucket and are reported as
//     the exact observed maximum (the tail beyond ~28 hours of wall
//     latency carries no operational distinction).
//
// Quantiles use the same nearest-rank rule as sortedPercentile, so a
// sketch quantile is the representative of the bucket holding the exact
// nearest-rank sample — never an interpolation.

import (
	"fmt"
	"math"
)

const (
	// sketchMin / sketchMax bound the sketch's relative-accuracy range:
	// 1µs to 10⁵ seconds. Wall and queue latencies of a serving fleet
	// live comfortably inside it.
	sketchMin = 1e-6
	sketchMax = 1e5
	// sketchGamma is the bucket growth factor. √γ − 1 ≈ 0.995% is the
	// worst-case relative error of a bucket's geometric midpoint.
	sketchGamma = 1.02

	// SketchRelErr is the documented worst-case relative error of
	// Sketch.Quantile and Sketch.Mean for samples within
	// [1µs, 10⁵ s]: √1.02 − 1 ≈ 0.00995, published as 1%. The
	// bench-metrics sweep and the property tests assert against it.
	SketchRelErr = 0.01
)

// Derived bucket geometry, computed once. sketchBuckets is
// ceil(ln(max/min)/ln γ) + 1 ≈ 1281.
var (
	sketchLogGamma    = math.Log(sketchGamma)
	sketchInvLogGamma = 1 / sketchLogGamma
	sketchBuckets     = int(math.Ceil(math.Log(sketchMax/sketchMin)*sketchInvLogGamma)) + 1
)

// Sketch is a mergeable quantile sketch over non-negative finite
// samples. The zero value is an empty sketch ready to use; bucket
// storage is allocated lazily on the first in-range Add. Sketch is not
// safe for concurrent use — shard workers own private sketches and the
// driver merges them.
type Sketch struct {
	n    uint64   // total samples
	low  uint64   // samples ≤ sketchMin (including exact zeros)
	bkts []uint64 // log buckets, nil until first in-range sample
	// min / max are tracked exactly (order-independent) and clamp every
	// reported representative, making Quantile(0)/Quantile(100) exact
	// and bounding the low/top collapse error.
	min, max float64
}

// Add records one sample. Samples must be finite and non-negative;
// non-finite or negative values panic — callers that may see dirty
// telemetry (ServeAccum) filter and count them instead.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		panic(fmt.Sprintf("metrics: Sketch.Add(%v): samples must be finite and non-negative", v))
	}
	if s.n == 0 || v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.n++
	if v <= sketchMin {
		s.low++
		return
	}
	if s.bkts == nil {
		s.bkts = make([]uint64, sketchBuckets)
	}
	i := int(math.Floor(math.Log(v/sketchMin) * sketchInvLogGamma))
	if i < 0 {
		i = 0
	}
	if i >= sketchBuckets {
		i = sketchBuckets - 1
	}
	s.bkts[i]++
}

// Merge folds b into s. Every piece of state is an integer sum or an
// order-independent min/max, so any merge order or grouping of shard
// sketches produces bit-identical state. b is unchanged.
func (s *Sketch) Merge(b *Sketch) {
	if b.n == 0 {
		return
	}
	if s.n == 0 || b.min < s.min {
		s.min = b.min
	}
	if b.max > s.max {
		s.max = b.max
	}
	s.n += b.n
	s.low += b.low
	if b.bkts != nil {
		if s.bkts == nil {
			s.bkts = make([]uint64, sketchBuckets)
		}
		for i, c := range b.bkts {
			s.bkts[i] += c
		}
	}
}

// Reset empties the sketch in place, keeping allocated bucket storage
// so reuse (shard workers between passes) stays allocation-free.
func (s *Sketch) Reset() {
	s.n, s.low = 0, 0
	s.min, s.max = 0, 0
	for i := range s.bkts {
		s.bkts[i] = 0
	}
}

// Count reports the number of samples recorded.
func (s *Sketch) Count() uint64 { return s.n }

// Min and Max report the exact observed extremes (0 for an empty sketch).
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// rep is bucket i's representative: the geometric midpoint of its
// boundaries, clamped into the exact observed [min, max]. The last
// bucket is the overflow bucket — its lower boundary already exceeds
// sketchMax, so it holds only above-range samples, which the error
// contract reports as the exact observed maximum.
func (s *Sketch) rep(i int) float64 {
	if i == sketchBuckets-1 {
		return s.max
	}
	v := sketchMin * math.Exp((float64(i)+0.5)*sketchLogGamma)
	if v < s.min {
		v = s.min
	}
	if v > s.max {
		v = s.max
	}
	return v
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) by the
// nearest-rank rule, 0 for an empty sketch. Out-of-domain p panics,
// matching Percentile's contract. The result is within SketchRelErr of
// the exact nearest-rank sample (see the package comment for the
// low/top collapse bounds).
func (s *Sketch) Quantile(p float64) float64 {
	checkPercentile(p)
	if s.n == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p / 100 * float64(s.n)))
	if rank <= s.low || rank == 0 {
		// The rank-th sample sits in the low bucket (or p = 0): the exact
		// minimum is the best deterministic representative.
		return s.min
	}
	cum := s.low
	for i, c := range s.bkts {
		cum += c
		if cum >= rank {
			return s.rep(i)
		}
	}
	return s.max
}

// Sum estimates the sum of all samples from bucket representatives,
// iterating buckets in fixed index order — deterministic and
// merge-order-independent, within SketchRelErr relatively (low-bucket
// samples contribute the exact minimum each: ≤ 1µs absolute apiece).
func (s *Sketch) Sum() float64 {
	if s.n == 0 {
		return 0
	}
	total := float64(s.low) * s.min
	for i, c := range s.bkts {
		if c != 0 {
			total += float64(c) * s.rep(i)
		}
	}
	return total
}

// Mean estimates the arithmetic mean (0 for an empty sketch), within
// SketchRelErr of the exact mean for in-range samples.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Sum() / float64(s.n)
}

// StateBytes reports the sketch's heap footprint — the constant that
// replaces the O(requests) sample buffer.
func (s *Sketch) StateBytes() int {
	return 8 * (len(s.bkts) + 6)
}
