package metrics

// Streaming (constant-memory) counterparts of the exact summary path.
//
// SummarizeServe buffers and sorts every wall latency, so its memory
// grows O(requests) — the real ceiling on million-user runs. ServeAccum
// replaces the sample buffers with two Sketches (~10 KiB each) plus a
// handful of counters, all of it order-independent: integer counts,
// exact min/max, and sums of integers. Merging per-shard accumulators in
// any order yields bit-identical ServeStats, including the means, which
// are derived from sketch buckets in fixed index order rather than from
// sample-order float sums (a float sum over shard-ordered samples would
// not be bit-identical across shard counts).
//
// Exact mode remains the default everywhere: the committed golden traces
// record exact percentiles, and conformance must stay bit-identical
// release over release. Streaming mode is the opt-in for runs whose
// request count makes O(requests) retention unacceptable; its error
// contract is SketchRelErr.

import "fmt"

// Mode selects how serve/fleet summaries aggregate latency
// distributions.
type Mode string

const (
	// ModeExact buffers and sorts every sample: exact nearest-rank
	// percentiles, O(requests) memory. The default, and the golden-trace
	// conformance path.
	ModeExact Mode = "exact"
	// ModeStreaming accumulates mergeable quantile sketches: constant
	// memory, percentiles within SketchRelErr of exact.
	ModeStreaming Mode = "streaming"
)

// ParseMode maps a config string to a Mode. Empty means ModeExact.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", string(ModeExact):
		return ModeExact, nil
	case string(ModeStreaming), "sketch":
		return ModeStreaming, nil
	default:
		return "", fmt.Errorf("metrics: unknown metrics mode %q (want %q or %q)", s, ModeExact, ModeStreaming)
	}
}

// ServeAccum accumulates a served request stream into constant state:
// the streaming counterpart of SummarizeServe. The zero value is not
// ready to use — construct with NewServeAccum so the SLO target is
// pinned (attainment must be judged at observe time; samples are not
// retained).
type ServeAccum struct {
	// SLOLatency is the wall-latency target in seconds (<= 0 disables
	// SLO accounting), fixed at construction.
	SLOLatency float64

	served    int
	rejected  int
	nonFinite int
	attained  int
	tokens    int64
	makespan  float64
	maxQueue  float64
	wall      Sketch
	queue     Sketch
}

// NewServeAccum returns an empty accumulator judging SLO attainment
// against sloLatency.
func NewServeAccum(sloLatency float64) *ServeAccum {
	return &ServeAccum{SLOLatency: sloLatency}
}

// Observe folds one sample in. Samples whose queue or wall latency is
// NaN or ±Inf are counted in NonFinite and otherwise ignored, matching
// the exact path's filter. Causally valid samples (Start ≥ Arrival,
// Finish ≥ Arrival) are required — negative latencies panic in the
// sketch.
func (a *ServeAccum) Observe(sm ServeSample) {
	if sm.Rejected {
		a.rejected++
		return
	}
	q := sm.Start - sm.Arrival
	w := sm.Finish - sm.Arrival
	if !isFinite(q) || !isFinite(w) {
		a.nonFinite++
		return
	}
	a.served++
	a.tokens += sm.Tokens
	if q > a.maxQueue {
		a.maxQueue = q
	}
	if sm.Finish > a.makespan {
		a.makespan = sm.Finish
	}
	if w <= a.SLOLatency {
		a.attained++
	}
	a.queue.Add(q)
	a.wall.Add(w)
}

// Merge folds b into a. Both sides must share the SLO target —
// attainment was already counted against it. Every field is an integer
// sum, sketch merge, or order-independent max, so any merge order or
// grouping of shard accumulators yields bit-identical Stats. b is
// unchanged.
func (a *ServeAccum) Merge(b *ServeAccum) {
	if a.SLOLatency != b.SLOLatency {
		panic(fmt.Sprintf("metrics: ServeAccum.Merge: SLO targets differ (%v vs %v)", a.SLOLatency, b.SLOLatency))
	}
	a.served += b.served
	a.rejected += b.rejected
	a.nonFinite += b.nonFinite
	a.attained += b.attained
	a.tokens += b.tokens
	if b.makespan > a.makespan {
		a.makespan = b.makespan
	}
	if b.maxQueue > a.maxQueue {
		a.maxQueue = b.maxQueue
	}
	a.wall.Merge(&b.wall)
	a.queue.Merge(&b.queue)
}

// Reset empties the accumulator in place, keeping the SLO target and
// any allocated sketch buckets (shard workers reset between passes).
func (a *ServeAccum) Reset() {
	a.served, a.rejected, a.nonFinite, a.attained = 0, 0, 0, 0
	a.tokens = 0
	a.makespan, a.maxQueue = 0, 0
	a.wall.Reset()
	a.queue.Reset()
}

// Observed reports how many samples were folded in (served + rejected +
// non-finite).
func (a *ServeAccum) Observed() int { return a.served + a.rejected + a.nonFinite }

// StateBytes reports the accumulator's heap footprint — the constant
// that replaces the exact path's O(requests) sample buffers.
func (a *ServeAccum) StateBytes() int {
	return a.wall.StateBytes() + a.queue.StateBytes() + 8*8
}

// Stats materializes the accumulated aggregates. The contract matches
// SummarizeServe exactly — same zero-value rules for empty and
// all-rejected streams, same SLO semantics — except that the latency
// distribution (means and percentiles) carries the sketch's SketchRelErr
// error bound.
func (a *ServeAccum) Stats() ServeStats {
	s := ServeStats{
		SLOAttainment: 1,
		Served:        a.served,
		Rejected:      a.rejected,
		NonFinite:     a.nonFinite,
	}
	if a.served == 0 {
		if a.SLOLatency > 0 && a.rejected > 0 {
			s.SLOAttainment = 0
		}
		return s
	}
	s.Makespan = a.makespan
	s.MaxQueueDelay = a.maxQueue
	s.MeanQueueDelay = a.queue.Mean()
	s.MeanLatency = a.wall.Mean()
	s.P50Latency = a.wall.Quantile(50)
	s.P95Latency = a.wall.Quantile(95)
	s.P99Latency = a.wall.Quantile(99)
	if s.Makespan > 0 {
		s.Goodput = float64(a.tokens) / s.Makespan
	}
	if total := a.served + a.rejected; a.SLOLatency > 0 {
		s.SLOAttainment = float64(a.attained) / float64(total)
	}
	return s
}

// SummarizeServeStreaming is SummarizeServe through the streaming
// accumulator: one pass, constant aggregation state, percentiles within
// SketchRelErr of the exact path.
func SummarizeServeStreaming(samples []ServeSample, sloLatency float64) ServeStats {
	a := NewServeAccum(sloLatency)
	for _, sm := range samples {
		a.Observe(sm)
	}
	return a.Stats()
}

// TickWindow accumulates one control-plane window's completion signals
// incrementally — the per-tick counterpart of ServeAccum, shared with
// the fleet's elastic controller so window signals never re-scan served
// results. All state is counters plus one float sum accumulated in
// observation order, so the sequential and sharded engines (which
// observe completions in the same canonical order) produce bit-identical
// signals.
type TickWindow struct {
	// Served / Rejected count completions in the window; Arrivals counts
	// routed requests.
	Served, Rejected, Arrivals int
	// SLOHits counts served completions whose wall latency met the
	// target (every completion when no target is set).
	SLOHits int
	// QueueDelaySum sums served completions' queue delay.
	QueueDelaySum float64
}

// Observe folds one completion into the window.
func (w *TickWindow) Observe(queueDelay, wallLatency float64, rejected bool, sloLatency float64) {
	if rejected {
		w.Rejected++
		return
	}
	w.Served++
	w.QueueDelaySum += queueDelay
	if sloLatency <= 0 || wallLatency <= sloLatency {
		w.SLOHits++
	}
}

// Completions reports served + rejected in the window.
func (w *TickWindow) Completions() int { return w.Served + w.Rejected }

// MeanQueueDelay is the window's mean served queue delay, 0 when
// nothing was served.
func (w *TickWindow) MeanQueueDelay() float64 {
	if w.Served == 0 {
		return 0
	}
	return w.QueueDelaySum / float64(w.Served)
}

// Attainment is the window's SLO attainment: hits over completions, 1
// (vacuous) when nothing completed or no target is set.
func (w *TickWindow) Attainment(sloLatency float64) float64 {
	done := w.Completions()
	if done == 0 || sloLatency <= 0 {
		return 1
	}
	return float64(w.SLOHits) / float64(done)
}

// Reset clears the window for the next tick.
func (w *TickWindow) Reset() { *w = TickWindow{} }
