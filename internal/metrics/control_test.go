package metrics

import (
	"reflect"
	"testing"
)

func TestFrontier(t *testing.T) {
	pts := []CostPoint{
		{Label: "static", DeviceSeconds: 300, SLOAttainment: 0.95},
		{Label: "threshold", DeviceSeconds: 210, SLOAttainment: 0.95}, // dominates static
		{Label: "budget", DeviceSeconds: 180, SLOAttainment: 0.80},
		{Label: "bad", DeviceSeconds: 250, SLOAttainment: 0.70}, // dominated twice over
	}
	got := Frontier(pts)
	want := []CostPoint{
		{Label: "budget", DeviceSeconds: 180, SLOAttainment: 0.80},
		{Label: "threshold", DeviceSeconds: 210, SLOAttainment: 0.95},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Frontier = %+v, want %+v", got, want)
	}
}

func TestFrontierDegenerate(t *testing.T) {
	if got := Frontier(nil); len(got) != 0 {
		t.Errorf("Frontier(nil) = %v", got)
	}
	one := []CostPoint{{Label: "only", DeviceSeconds: 10, SLOAttainment: 0.5}}
	if got := Frontier(one); !reflect.DeepEqual(got, one) {
		t.Errorf("single point dropped: %v", got)
	}
	// Exact duplicates are not mutually dominating: both survive.
	dup := []CostPoint{
		{Label: "a", DeviceSeconds: 10, SLOAttainment: 0.5},
		{Label: "b", DeviceSeconds: 10, SLOAttainment: 0.5},
	}
	if got := Frontier(dup); len(got) != 2 {
		t.Errorf("duplicate points: got %v, want both", got)
	}
}

func TestStrategyFrontier(t *testing.T) {
	pts := []StrategyPoint{
		{Strategy: "full-beam", TokensPerRequest: 9000, P99Latency: 40, Accuracy: 0.80},
		{Strategy: "first-finish", TokensPerRequest: 4000, P99Latency: 22, Accuracy: 0.78}, // dominates full-beam
		{Strategy: "hedged", TokensPerRequest: 16000, P99Latency: 18, Accuracy: 0.80},      // buys tail with tokens
		{Strategy: "deadline", TokensPerRequest: 5000, P99Latency: 30, Accuracy: 0.75},     // dominated by first-finish
	}
	got := StrategyFrontier(pts)
	want := []StrategyPoint{
		{Strategy: "first-finish", TokensPerRequest: 4000, P99Latency: 22, Accuracy: 0.78},
		{Strategy: "hedged", TokensPerRequest: 16000, P99Latency: 18, Accuracy: 0.80},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("StrategyFrontier = %+v, want %+v", got, want)
	}
}

func TestStrategyFrontierDegenerate(t *testing.T) {
	if got := StrategyFrontier(nil); len(got) != 0 {
		t.Errorf("StrategyFrontier(nil) = %v", got)
	}
	one := []StrategyPoint{{Strategy: "only", TokensPerRequest: 10, P99Latency: 5}}
	if got := StrategyFrontier(one); !reflect.DeepEqual(got, one) {
		t.Errorf("single point dropped: %v", got)
	}
	// Accuracy never enters dominance: a strictly less accurate but
	// cheaper, faster point still wins the plane.
	acc := []StrategyPoint{
		{Strategy: "fast", TokensPerRequest: 10, P99Latency: 5, Accuracy: 0.1},
		{Strategy: "slow", TokensPerRequest: 20, P99Latency: 9, Accuracy: 0.9},
	}
	if got := StrategyFrontier(acc); len(got) != 1 || got[0].Strategy != "fast" {
		t.Errorf("accuracy leaked into dominance: %+v", got)
	}
}

// TestSummarizeFleetDeviceSeconds pins the capacity-cost aggregate: the
// sum of live intervals, whatever ended them.
func TestSummarizeFleetDeviceSeconds(t *testing.T) {
	st := SummarizeFleet(FleetInput{
		Devices: []FleetDevice{
			{Busy: 50, Lifetime: 100},
			{Busy: 20, Lifetime: 40, LiveStart: 60},         // joined late
			{Busy: 10, Lifetime: 30, Drained: true},         // drained early
			{Busy: 5, Lifetime: 20, Failed: true},           // fail-stopped
			{Busy: 0, Lifetime: 0, LiveStart: 0, Served: 0}, // never joined
		},
	})
	if want := 100.0 + 40 + 30 + 20; st.DeviceSeconds != want {
		t.Errorf("DeviceSeconds = %v, want %v", st.DeviceSeconds, want)
	}
}

// TestImbalanceStaticBitIdentity is the satellite contract: with static
// membership (every device live for the whole run, fail-stop included),
// the imbalance coefficient is bit-identical to the raw busy-time CV the
// pre-control-plane code computed — the committed golden traces depend
// on this.
func TestImbalanceStaticBitIdentity(t *testing.T) {
	devs := []FleetDevice{
		{Busy: 37.25, Lifetime: 100},
		{Busy: 81.125, Lifetime: 100},
		{Busy: 12.0625, Lifetime: 100},
		{Busy: 7.5, Lifetime: 31.5, Failed: true}, // fail-stop keeps raw busy
	}
	st := SummarizeFleet(FleetInput{Devices: devs})
	raw := []float64{37.25, 81.125, 12.0625, 7.5}
	if want := CoefficientOfVariation(raw); st.ImbalanceCV != want {
		t.Errorf("static-membership ImbalanceCV = %v, want raw busy CV %v (bitwise)", st.ImbalanceCV, want)
	}
}

// TestImbalanceTimeWeighted: a late joiner carrying a proportional share
// of load should not read as imbalance — its busy time is scaled to the
// fleet's longest live interval.
func TestImbalanceTimeWeighted(t *testing.T) {
	// Founding device busy 50% of 100s; joiner busy 50% of its 20s.
	weighted := SummarizeFleet(FleetInput{Devices: []FleetDevice{
		{Busy: 50, Lifetime: 100},
		{Busy: 10, Lifetime: 20, LiveStart: 80},
	}})
	if weighted.ImbalanceCV != 0 {
		t.Errorf("proportionally loaded joiner read as imbalance: CV = %v", weighted.ImbalanceCV)
	}
	// The same run accounted naively (pre-fix) reads as heavy imbalance.
	if naive := CoefficientOfVariation([]float64{50, 10}); naive == 0 {
		t.Fatal("test premise broken: raw busy CV should be nonzero")
	}
	// Drained devices are weighted the same way.
	drained := SummarizeFleet(FleetInput{Devices: []FleetDevice{
		{Busy: 50, Lifetime: 100},
		{Busy: 25, Lifetime: 50, Drained: true},
	}})
	if drained.ImbalanceCV != 0 {
		t.Errorf("proportionally loaded drained device read as imbalance: CV = %v", drained.ImbalanceCV)
	}
}

func TestControlStatsPassthrough(t *testing.T) {
	cs := &ControlStats{Ticks: 5, ScaleUps: 2, FinalTier: 1}
	st := SummarizeFleet(FleetInput{Control: cs})
	if st.Control != cs {
		t.Errorf("Control not carried through: %v", st.Control)
	}
	if st2 := SummarizeFleet(FleetInput{}); st2.Control != nil {
		t.Errorf("controller-less run carries ControlStats: %+v", st2.Control)
	}
}
