package bench

import (
	"strconv"
	"strings"
	"testing"
)

// quick returns fast RunOpts for shape tests.
func quick() RunOpts { return RunOpts{Problems: 3, Seed: 42, MaxN: 128} }

func cell(t *testing.T, r *Report, row int, col string) string {
	t.Helper()
	for i, h := range r.Header {
		if h == col {
			return r.Rows[row][i]
		}
	}
	t.Fatalf("column %q not in %v", col, r.Header)
	return ""
}

func cellF(t *testing.T, r *Report, row int, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell(t, r, row, col), 64)
	if err != nil {
		t.Fatalf("cell %d/%s = %q not a number", row, col, cell(t, r, row, col))
	}
	return v
}

func TestAllFiguresRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range All() {
		if f.ID == "" || f.Title == "" || f.Run == nil {
			t.Errorf("malformed figure %+v", f)
		}
		if ids[f.ID] {
			t.Errorf("duplicate figure ID %s", f.ID)
		}
		ids[f.ID] = true
	}
	// Every evaluation figure of the paper must be present.
	for _, want := range []string{"1a", "1b", "3l", "3r", "4", "5l", "5r", "6",
		"10", "11", "12", "13", "14a", "14b", "15", "16", "17l", "17r", "18l", "18r"} {
		if !ids[want] {
			t.Errorf("figure %s missing", want)
		}
	}
	if _, err := ByID("12"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("99"); err == nil {
		t.Error("unknown figure ID accepted")
	}
}

func TestReportTSV(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"n"}}
	tsv := r.TSV()
	for _, want := range []string{"# Figure x: T", "a\tb", "1\t2", "# n"} {
		if !strings.Contains(tsv, want) {
			t.Errorf("TSV missing %q:\n%s", want, tsv)
		}
	}
}

func TestFig1aShape(t *testing.T) {
	r, err := Fig1aMemory(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// The edge pair fits; every cloud model does not.
	if cell(t, r, 1, "fits_24gb") != "yes" {
		t.Error("edge TTS pair should fit a 4090")
	}
	for i := 2; i < 5; i++ {
		if cell(t, r, i, "fits_24gb") != "no" {
			t.Errorf("cloud model row %d should not fit", i)
		}
	}
}

func TestFig1bShape(t *testing.T) {
	r, err := Fig1bLatencyFrontier(quick())
	if err != nil {
		t.Fatal(err)
	}
	base := cellF(t, r, 0, "latency_s")
	fast := cellF(t, r, 1, "latency_s")
	cloud := cellF(t, r, 2, "latency_s")
	if !(fast < base) {
		t.Errorf("FastTTS %v not faster than baseline %v", fast, base)
	}
	if !(fast < cloud) {
		t.Errorf("FastTTS %v should beat the cloud reference %v (paper Fig 1b)", fast, cloud)
	}
}

func TestFig3RightHeavyTail(t *testing.T) {
	r, err := Fig3RightStepTokens(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for i := range r.Rows {
		avg := cellF(t, r, i, "avg_tokens")
		maxTok := cellF(t, r, i, "max_tokens")
		if maxTok < 3*avg {
			t.Errorf("step %d: max %v not >> avg %v (straggler disparity lost)", i+1, maxTok, avg)
		}
	}
}

func TestFig4UtilizationDecays(t *testing.T) {
	r, err := Fig4UtilPhases(quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("empty series")
	}
	// The note carries the early/late summary; re-derive from the series:
	// peak generation utilization must exceed the late-phase tail by 3x.
	var peak, tail float64
	for i := range r.Rows {
		u := cellF(t, r, i, "util_generate")
		if u > peak {
			peak = u
		}
	}
	tail = cellF(t, r, len(r.Rows)-1, "util_generate")
	if peak < 3*tail+0.01 {
		t.Errorf("generation utilization does not decay: peak %v tail %v", peak, tail)
	}
}

func TestFig5LeftSharingDominates(t *testing.T) {
	r, err := Fig5LeftPrefixMemory(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		bs := cellF(t, r, i, "beam_search_w_prefix")
		wo := cellF(t, r, i, "wo_prefix")
		if bs < 4*wo {
			t.Errorf("iter %d: prefix sharing fits %v beams vs %v unshared — gap too small", i+1, bs, wo)
		}
	}
}

func TestFig5RightOrderingGap(t *testing.T) {
	r, err := Fig5RightHeatmap(quick())
	if err != nil {
		t.Fatal(err)
	}
	naive := cellF(t, r, 0, "adjacent_share_sum")
	grouped := cellF(t, r, 1, "adjacent_share_sum")
	if grouped <= naive {
		t.Errorf("prefix-aware order share %v not above naive %v", grouped, naive)
	}
}

func TestFig6PrefillSaturatesFirst(t *testing.T) {
	r, err := Fig6ThroughputVsKV(quick())
	if err != nil {
		t.Fatal(err)
	}
	// At 0.5 GiB, prefill must be essentially saturated while decode is
	// far from it (the asymmetry that motivates §4.3).
	for i := range r.Rows {
		if cell(t, r, i, "kv_gib") == "0.500" {
			if cellF(t, r, i, "prefill_640") < 0.9 {
				t.Error("prefill not saturated at 0.5 GiB")
			}
			if cellF(t, r, i, "decode_1024") > 0.6 {
				t.Error("decode saturated too early at 0.5 GiB")
			}
			return
		}
	}
	t.Fatal("0.5 GiB row missing")
}

func TestFig10DecodeBatchGrows(t *testing.T) {
	r, err := Fig10RooflineAlloc(quick())
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, r, 0, "opt_decode_batch")
	last := cellF(t, r, len(r.Rows)-1, "opt_decode_batch")
	if last <= first {
		t.Errorf("optimal decode batch does not grow with memory: %v -> %v", first, last)
	}
	if tput := cellF(t, r, len(r.Rows)-1, "norm_throughput"); tput < 0.9 {
		t.Errorf("throughput at max memory = %v, want near 1", tput)
	}
}

func TestFig11AllVariantsSpeedUp(t *testing.T) {
	o := quick()
	o.MaxN = 64
	r, err := Fig11SearchVariants(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		if sp := cellF(t, r, i, "speedup"); sp < 1.0 {
			t.Errorf("row %d (%s n=%s): speedup %v < 1",
				i, cell(t, r, i, "method"), cell(t, r, i, "n"), sp)
		}
	}
}

func TestFig12SpeedupGrowsWithN(t *testing.T) {
	o := quick()
	o.MaxN = 128
	r, err := Fig12Goodput(o)
	if err != nil {
		t.Fatal(err)
	}
	// Group rows by (dataset, config); speedup at the largest n must
	// exceed the speedup at the smallest n.
	type key struct{ ds, cfg string }
	firstSp := map[key]float64{}
	lastSp := map[key]float64{}
	for i := range r.Rows {
		k := key{cell(t, r, i, "dataset"), cell(t, r, i, "config")}
		sp := cellF(t, r, i, "speedup")
		if sp < 1.0 {
			t.Errorf("row %d: speedup %v < 1", i, sp)
		}
		if _, ok := firstSp[k]; !ok {
			firstSp[k] = sp
		}
		lastSp[k] = sp
	}
	for k := range firstSp {
		if lastSp[k] <= firstSp[k] {
			t.Errorf("%v: speedup at large n (%v) not above small n (%v)", k, lastSp[k], firstSp[k])
		}
	}
}

func TestFig13LatencyCut(t *testing.T) {
	o := quick()
	o.MaxN = 64
	r, err := Fig13Latency(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		if cut := cellF(t, r, i, "latency_cut_pct"); cut <= 0 {
			t.Errorf("row %d: latency cut %v%% not positive", i, cut)
		}
		bt := cellF(t, r, i, "base_total_s")
		bg := cellF(t, r, i, "base_gen_s")
		bv := cellF(t, r, i, "base_ver_s")
		if bg+bv > bt*1.01 {
			t.Errorf("row %d: breakdown %v+%v exceeds total %v", i, bg, bv, bt)
		}
	}
}

func TestFig14aEquivalence(t *testing.T) {
	o := quick()
	o.MaxN = 64
	o.Problems = 6
	r, err := Fig14aTop1(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		ba := cellF(t, r, i, "baseline_acc_pct")
		fa := cellF(t, r, i, "fasttts_acc_pct")
		if ba != fa {
			t.Errorf("row %d: accuracy diverged %v vs %v (equivalence)", i, ba, fa)
		}
	}
}

func TestFig14bMonotoneInN(t *testing.T) {
	o := quick()
	o.MaxN = 128
	o.Problems = 8
	r, err := Fig14bPassN(o)
	if err != nil {
		t.Fatal(err)
	}
	prevDS, prev := "", -1.0
	for i := range r.Rows {
		ds := cell(t, r, i, "dataset")
		v := cellF(t, r, i, "fasttts_pct")
		if ds == prevDS && v < prev {
			t.Errorf("row %d: pass@N decreased with N (%v -> %v)", i, prev, v)
		}
		prevDS, prev = ds, v
	}
}

func TestFig15AllPanelsSpeedUp(t *testing.T) {
	o := quick()
	o.MaxN = 32
	r, err := Fig15ConstrainedHW(o)
	if err != nil {
		t.Fatal(err)
	}
	panels := map[string]bool{}
	for i := range r.Rows {
		panels[cell(t, r, i, "panel")] = true
		if sp := cellF(t, r, i, "speedup"); sp < 1.0 {
			t.Errorf("row %d (%s): speedup %v < 1", i, cell(t, r, i, "panel"), sp)
		}
	}
	if len(panels) != 3 {
		t.Errorf("panels = %v, want 3", panels)
	}
}

func TestFig16LadderMonotone(t *testing.T) {
	o := quick()
	o.MaxN = 32
	r, err := Fig16Ablation(o)
	if err != nil {
		t.Fatal(err)
	}
	// Within each (config, n) block of 4 variants, the final +P+M+S gain
	// must exceed the baseline (0) and the ladder must not regress badly.
	for i := 0; i+3 < len(r.Rows); i += 4 {
		final := cellF(t, r, i+3, "gain_vs_baseline_pct")
		if final <= 0 {
			t.Errorf("block at row %d: full-system gain %v <= 0", i, final)
		}
	}
}

func TestFig17RightR85Wins(t *testing.T) {
	o := quick()
	o.MaxN = 64
	r, err := Fig17RightTruncation(o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		base := cellF(t, r, i, "baseline")
		r0 := cellF(t, r, i, "fasttts_R0.00")
		r85 := cellF(t, r, i, "fasttts_R0.85")
		if r0 <= base {
			t.Errorf("row %d: R=0 goodput %v not above baseline %v", i, r0, base)
		}
		if r85 < r0*0.97 {
			t.Errorf("row %d: R=0.85 (%v) clearly below R=0 (%v)", i, r85, r0)
		}
	}
}

func TestFig17LeftFastTTSHigherUtil(t *testing.T) {
	r, err := Fig17LeftUtil(quick())
	if err != nil {
		t.Fatal(err)
	}
	vllmLate := cellF(t, r, 0, "late_quarter_util")
	fastLate := cellF(t, r, 1, "late_quarter_util")
	if fastLate <= vllmLate {
		t.Errorf("FastTTS late-phase util %v not above vLLM %v", fastLate, vllmLate)
	}
	vllmEarly := cellF(t, r, 0, "early_quarter_util")
	fastEarly := cellF(t, r, 1, "early_quarter_util")
	if fastEarly <= vllmEarly {
		t.Errorf("FastTTS early util %v not above vLLM %v", fastEarly, vllmEarly)
	}
}

func TestFig18LeftOrderingGap(t *testing.T) {
	r, err := Fig18LeftSchedulers(quick())
	if err != nil {
		t.Fatal(err)
	}
	for i := range r.Rows {
		pa := cellF(t, r, i, "prefix_aware_gib")
		rnd := cellF(t, r, i, "random_gib")
		wc := cellF(t, r, i, "worst_case_gib")
		if pa > rnd*1.001 || pa > wc*1.001 {
			t.Errorf("row %d: prefix-aware grows fastest: pa=%v rnd=%v wc=%v", i, pa, rnd, wc)
		}
		// The max-growth adversary dominates random everywhere until the
		// curves converge on the shared total.
		if rnd > wc*1.001 {
			t.Errorf("row %d: random (%v) above worst-case (%v)", i, rnd, wc)
		}
	}
}

func TestFig18RightGainsConcentrateLowMemory(t *testing.T) {
	// This figure's effect needs the real search width (n=256): memory
	// pressure is the phenomenon under test.
	o := RunOpts{Problems: 4, Seed: 42, MaxN: 256}
	r, err := Fig18RightMemoryGain(o)
	if err != nil {
		t.Fatal(err)
	}
	lowMP := cellF(t, r, 0, "gain_MP_pct")
	highMP := cellF(t, r, len(r.Rows)-1, "gain_MP_pct")
	if lowMP <= highMP {
		t.Errorf("M+P gain at low memory (%v%%) not above high memory (%v%%)", lowMP, highMP)
	}
	if lowMP < 10 {
		t.Errorf("M+P gain at 1.5 GiB = %v%%, want substantial", lowMP)
	}
}

func TestExtensionsRegistered(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range Extensions() {
		if f.ID == "" || f.Run == nil {
			t.Errorf("malformed extension %+v", f)
		}
		ids[f.ID] = true
	}
	for _, want := range []string{"a1", "a2", "a3", "a4", "a5", "s1"} {
		if !ids[want] {
			t.Errorf("extension %s missing", want)
		}
	}
	if _, err := ByID("a5"); err != nil {
		t.Error("ByID should resolve extensions")
	}
}

func TestAblationTruncationMonotone(t *testing.T) {
	o := quick()
	r, err := AblationTruncationSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	first := cellF(t, r, 0, "goodput_tok_s")
	last := cellF(t, r, len(r.Rows)-1, "goodput_tok_s")
	if last <= first*0.98 {
		t.Errorf("R=1 goodput %v not above R=0 %v", last, first)
	}
	prev := -1.0
	for i := range r.Rows {
		ret := cellF(t, r, i, "spec_retained_tokens")
		// Near-monotone: more retention means fewer decode rounds and thus
		// fewer speculation opportunities, so allow small dips.
		if ret < prev*0.93 {
			t.Errorf("retained tokens dropped sharply in R at row %d (%v -> %v)", i, prev, ret)
		}
		prev = ret
	}
}

func TestAblationQuantizationHelps(t *testing.T) {
	o := quick()
	r, err := AblationQuantization(o)
	if err != nil {
		t.Fatal(err)
	}
	fp16 := cellF(t, r, 0, "goodput_tok_s")
	int4 := cellF(t, r, 2, "goodput_tok_s")
	if int4 <= fp16 {
		t.Errorf("int4 goodput %v not above fp16 %v", int4, fp16)
	}
	if cellF(t, r, 2, "kv_budget_gib") <= cellF(t, r, 0, "kv_budget_gib") {
		t.Error("quantization did not free KV budget")
	}
}

func TestAblationBlockSizeFragmentation(t *testing.T) {
	r, err := AblationBlockSize(quick())
	if err != nil {
		t.Fatal(err)
	}
	prevFrag := -1.0
	for i := range r.Rows {
		frag := cellF(t, r, i, "frag_overhead_pct")
		if frag < prevFrag {
			t.Errorf("fragmentation not monotone in block size at row %d", i)
		}
		prevFrag = frag
	}
	if cellF(t, r, 0, "frag_overhead_pct") != 0 {
		t.Error("token-granular allocation should have zero fragmentation")
	}
	first := cellF(t, r, 0, "resident_beams")
	last := cellF(t, r, len(r.Rows)-1, "resident_beams")
	if last > first {
		t.Error("larger blocks should never fit more beams")
	}
}

func TestServingLoadPreemption(t *testing.T) {
	o := quick()
	o.Problems = 4
	r, err := ExtServingLoad(o)
	if err != nil {
		t.Fatal(err)
	}
	// FastTTS rows: speculation grows as arrivals spread out.
	var fastSpec []float64
	for i := range r.Rows {
		if cell(t, r, i, "system") == "fasttts" {
			fastSpec = append(fastSpec, cellF(t, r, i, "spec_tokens"))
			// FastTTS must beat the baseline row above it.
			fl := cellF(t, r, i, "mean_latency_s")
			bl := cellF(t, r, i-1, "mean_latency_s")
			if fl >= bl {
				t.Errorf("row %d: fasttts latency %v not below baseline %v", i, fl, bl)
			}
		} else if got := cellF(t, r, i, "spec_tokens"); got != 0 {
			t.Errorf("baseline speculated %v tokens", got)
		}
	}
	if len(fastSpec) < 2 || fastSpec[len(fastSpec)-1] <= fastSpec[0] {
		t.Errorf("speculation should grow with inter-arrival gap: %v", fastSpec)
	}
}

func TestAblationSplitRatioCompetitive(t *testing.T) {
	o := quick()
	r, err := AblationSplitRatio(o)
	if err != nil {
		t.Fatal(err)
	}
	best := 0.0
	for i := 0; i < len(r.Rows)-1; i++ {
		if v := cellF(t, r, i, "goodput_tok_s"); v > best {
			best = v
		}
	}
	roofline := cellF(t, r, len(r.Rows)-1, "goodput_tok_s")
	if roofline < best*0.9 {
		t.Errorf("roofline allocation %v more than 10%% behind best static %v", roofline, best)
	}
}

func TestReportJSONL(t *testing.T) {
	r := &Report{ID: "x", Title: "T", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}, {"3", "4"}}}
	out := r.JSONL()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3 (meta + 2 rows)", len(lines))
	}
	if !strings.Contains(lines[0], `"figure":"x"`) {
		t.Errorf("meta line = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"a":"1"`) || !strings.Contains(lines[1], `"b":"2"`) {
		t.Errorf("row line = %s", lines[1])
	}
}

func TestMCTSComparisonShape(t *testing.T) {
	o := quick()
	o.Problems = 4
	r, err := ExtMCTSComparison(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// §2.2's exclusion rationale: MCTS must not beat beam search's
	// latency (lookahead adds overhead).
	beam := cellF(t, r, 0, "latency_s")
	mctsLat := cellF(t, r, 2, "latency_s")
	if mctsLat < beam*0.95 {
		t.Errorf("MCTS latency %v clearly below beam search %v — contradicts §2.2", mctsLat, beam)
	}
}
