package bench

import (
	"fmt"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// Extensions returns the ablation experiments beyond the paper's figures
// (DESIGN.md §5): design-choice studies the paper motivates but does not
// plot.
func Extensions() []Figure {
	return []Figure{
		{ID: "a1", Title: "Ablation: truncation ratio R full sweep", Run: AblationTruncationSweep},
		{ID: "a2", Title: "Ablation: speculative score-bin count", Run: AblationSpecBins},
		{ID: "a3", Title: "Ablation: weight quantization", Run: AblationQuantization},
		{ID: "a4", Title: "Ablation: static split ratio vs roofline allocation", Run: AblationSplitRatio},
		{ID: "a5", Title: "Ablation: paged-KV block size", Run: AblationBlockSize},
		{ID: "a6", Title: "Extension: MCTS vs beam-search family", Run: ExtMCTSComparison},
		{ID: "s1", Title: "Extension: two-phase serving under load", Run: ExtServingLoad},
	}
}

// AblationTruncationSweep extends Fig 17 (right) to a full R grid.
func AblationTruncationSweep(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(128, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	r := &Report{
		ID:     "a1",
		Title:  "Goodput vs truncation ratio R (AIME, 1.5B+1.5B, n=128)",
		Header: []string{"R", "goodput_tok_s", "spec_retained_tokens"},
	}
	for _, ratio := range []float64{0, 0.25, 0.5, 0.75, 0.85, 1.0} {
		opts := core.FastTTSOptions()
		opts.TruncationRatio = ratio
		rs, err := solveSet(deployment(hw.RTX4090, pc, pol, opts, o.Seed, nil), workload.AIME24, o)
		if err != nil {
			return nil, err
		}
		var retained int64
		for _, res := range rs {
			retained += res.SpecRetained
		}
		r.Rows = append(r.Rows, []string{f2(ratio), f2(meanGoodput(rs)), i64(retained)})
	}
	r.Notes = append(r.Notes,
		"higher R retains more speculative work on duplicates; goodput rises with R (paper evaluated R=0 and R=0.85)")
	return r, nil
}

// AblationSpecBins studies the §4.1.1 score-bin count B used by
// speculative candidate selection: 1 bin treats all beams equally;
// more bins concentrate speculation on likely survivors.
func AblationSpecBins(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(128, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	r := &Report{
		ID:     "a2",
		Title:  "Speculation utility vs score-bin count (AIME, n=128)",
		Header: []string{"bins", "goodput_tok_s", "retained_frac"},
	}
	for _, bins := range []int{1, 2, 4, 8} {
		opts := core.FastTTSOptions()
		opts.SpecBins = bins
		rs, err := solveSet(deployment(hw.RTX4090, pc, pol, opts, o.Seed, nil), workload.AIME24, o)
		if err != nil {
			return nil, err
		}
		var spec, retained int64
		for _, res := range rs {
			spec += res.SpecTokens
			retained += res.SpecRetained
		}
		frac := 0.0
		if spec > 0 {
			frac = float64(retained) / float64(spec)
		}
		r.Rows = append(r.Rows, []string{itoa(bins), f2(meanGoodput(rs)), f3(frac)})
	}
	r.Notes = append(r.Notes,
		"more bins hand top-scored beams extra parallel branches; the extras serve duplicates and survive only after truncation, so the retained fraction falls while goodput peaks at a moderate bin count")
	return r, nil
}

// AblationQuantization studies weight quantization (Fig 9 mentions the
// quantization config as a memory knob; the paper calls it orthogonal).
// Smaller weights leave more KV budget AND speed up bandwidth-bound
// decode.
func AblationQuantization(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(128, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "a3",
		Title:  "Weight quantization (7B generator, RTX 4090, FastTTS)",
		Header: []string{"quant", "weights_gib", "kv_budget_gib", "goodput_tok_s", "latency_s"},
	}
	for _, q := range []model.Quantization{model.FP16, model.INT8, model.INT4} {
		pc := pair715()
		pc.gen = pc.gen.WithQuant(q)
		cfg := deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil)
		budget, err := cfg.KVBudget()
		if err != nil {
			return nil, err
		}
		rs, err := solveSet(cfg, workload.AIME24, o)
		if err != nil {
			return nil, err
		}
		lat, _, _ := meanLatency(rs)
		r.Rows = append(r.Rows, []string{
			q.String(),
			f2(float64(pc.gen.WeightBytes()) / (1 << 30)),
			f2(float64(budget) / (1 << 30)),
			f2(meanGoodput(rs)), f1(lat),
		})
	}
	r.Notes = append(r.Notes,
		"quantization is orthogonal to FastTTS (§6.4): smaller weights free KV memory and cut weight-streaming time, compounding the gains")
	return r, nil
}

// AblationSplitRatio compares fixed verifier/generator split ratios
// against the roofline-guided allocation on the verifier-heavy config.
func AblationSplitRatio(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(128, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair157() // 7B verifier: the split matters most here
	r := &Report{
		ID:     "a4",
		Title:  "Static split ratios vs roofline allocation (1.5B+7B, AIME, n=128)",
		Header: []string{"policy", "goodput_tok_s"},
	}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		opts := core.FastTTSOptions()
		opts.AsymmetricMemory = false
		opts.StaticVerifierFrac = frac
		rs, err := solveSet(deployment(hw.RTX4090, pc, pol, opts, o.Seed, nil), workload.AIME24, o)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{fmt.Sprintf("static %.0f%% verifier", frac*100), f2(meanGoodput(rs))})
	}
	rs, err := solveSet(deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil), workload.AIME24, o)
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows, []string{"roofline-guided (M)", f2(meanGoodput(rs))})
	r.Notes = append(r.Notes,
		"the roofline allocation lands within a few percent of the best static ratio with no per-config tuning; static ratios must be re-tuned per model pair (§4.3.1)")
	return r, nil
}
