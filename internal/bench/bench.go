// Package bench regenerates every figure of the paper's evaluation
// (§6, Figs 1, 3–6, 10–18) from the simulated serving stack. Each figure
// is a Figure value whose Run method produces a Report: a TSV table of
// the same series the paper plots, plus notes comparing the measured
// shape to the paper's. The cmd/fastttsbench binary and the repository's
// bench_test.go both drive this package.
package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/model"
	"fasttts/internal/search"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// RunOpts scales an experiment.
type RunOpts struct {
	// Problems per dataset (default 6; the paper uses full test sets —
	// raise via cmd flag for tighter confidence).
	Problems int
	// Seed drives all randomness.
	Seed uint64
	// MaxN caps the beam sweep (default 512).
	MaxN int
}

func (o RunOpts) withDefaults() RunOpts {
	if o.Problems <= 0 {
		o.Problems = 6
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.MaxN <= 0 {
		o.MaxN = 512
	}
	return o
}

// Report is one regenerated figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// TSV renders the report as tab-separated values.
func (r *Report) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Figure %s: %s\n", r.ID, r.Title)
	b.WriteString(strings.Join(r.Header, "\t"))
	b.WriteByte('\n')
	for _, row := range r.Rows {
		b.WriteString(strings.Join(row, "\t"))
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// JSONL renders the report as JSON Lines (one object per row, keyed by
// the header), mirroring the paper artifact's JSONL logs (Appendix B).
func (r *Report) JSONL() string {
	var b strings.Builder
	meta, _ := json.Marshal(map[string]string{"figure": r.ID, "title": r.Title})
	b.Write(meta)
	b.WriteByte('\n')
	for _, row := range r.Rows {
		obj := make(map[string]string, len(r.Header))
		for i, h := range r.Header {
			if i < len(row) {
				obj[h] = row[i]
			}
		}
		line, err := json.Marshal(obj)
		if err != nil {
			continue
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure is one regenerable experiment.
type Figure struct {
	ID    string
	Title string
	Run   func(RunOpts) (*Report, error)
}

// All returns every figure in paper order.
func All() []Figure {
	return []Figure{
		{ID: "1a", Title: "Memory cost across models", Run: Fig1aMemory},
		{ID: "1b", Title: "Latency: edge baseline vs FastTTS vs cloud", Run: Fig1bLatencyFrontier},
		{ID: "3l", Title: "Accuracy vs latency across TTS methods (MATH500)", Run: Fig3LeftAccuracyLatency},
		{ID: "3r", Title: "Tokens per generation step (AIME)", Run: Fig3RightStepTokens},
		{ID: "4", Title: "GPU utilization: generate vs verify phase", Run: Fig4UtilPhases},
		{ID: "5l", Title: "Beams in memory with/without prefix cache", Run: Fig5LeftPrefixMemory},
		{ID: "5r", Title: "Prefix-sharing heatmap under naive scheduling", Run: Fig5RightHeatmap},
		{ID: "6", Title: "Normalized throughput vs KV cache size", Run: Fig6ThroughputVsKV},
		{ID: "10", Title: "Roofline-guided KV allocation", Run: Fig10RooflineAlloc},
		{ID: "11", Title: "Goodput across search-algorithm variants (AIME)", Run: Fig11SearchVariants},
		{ID: "12", Title: "Goodput: 3 configs x AIME/AMC", Run: Fig12Goodput},
		{ID: "13", Title: "Completion latency with gen/verify breakdown", Run: Fig13Latency},
		{ID: "14a", Title: "Top-1 accuracy (n=512)", Run: Fig14aTop1},
		{ID: "14b", Title: "Pass@N accuracy", Run: Fig14bPassN},
		{ID: "15", Title: "Constrained hardware + HumanEval", Run: Fig15ConstrainedHW},
		{ID: "16", Title: "Ablation: cumulative P/M/S goodput gains", Run: Fig16Ablation},
		{ID: "17l", Title: "Compute utilization within one iteration", Run: Fig17LeftUtil},
		{ID: "17r", Title: "Truncation ratio R vs goodput", Run: Fig17RightTruncation},
		{ID: "18l", Title: "KV growth by scheduling order", Run: Fig18LeftSchedulers},
		{ID: "18r", Title: "Goodput gain vs available KV memory", Run: Fig18RightMemoryGain},
	}
}

// ByID returns the figure (or extension ablation) with the given ID.
func ByID(id string) (Figure, error) {
	for _, f := range append(All(), Extensions()...) {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("bench: unknown figure %q", id)
}

// --- shared deployment plumbing ---

// pairConfig is one of the paper's generator+verifier deployments (§6.1).
type pairConfig struct {
	name     string
	gen      model.Config
	genSkill workload.GeneratorSkill
	ver      model.Config
	verSkill workload.VerifierSkill
	memFrac  float64
}

func pair1515() pairConfig {
	return pairConfig{
		name: "1.5B+1.5B",
		gen:  model.Qwen25Math1_5B, genSkill: workload.SkillQwen1_5B,
		ver: model.SkyworkPRM1_5B, verSkill: workload.SkillSkywork1_5B,
		memFrac: 0.4,
	}
}

func pair157() pairConfig {
	return pairConfig{
		name: "1.5B+7B",
		gen:  model.Qwen25Math1_5B, genSkill: workload.SkillQwen1_5B,
		ver: model.ShepherdPRM7B, verSkill: workload.SkillShepherd7B,
		memFrac: 0.9,
	}
}

func pair715() pairConfig {
	return pairConfig{
		name: "7B+1.5B",
		gen:  model.Qwen25Math7B, genSkill: workload.SkillQwen7B,
		ver: model.SkyworkPRM1_5B, verSkill: workload.SkillSkywork1_5B,
		memFrac: 0.9,
	}
}

func allPairs() []pairConfig {
	return []pairConfig{pair1515(), pair157(), pair715()}
}

// deployment builds a core.Config for one experiment cell.
func deployment(g hw.GPU, pc pairConfig, pol search.Policy, opts core.Options, seed uint64, rec *trace.Recorder) core.Config {
	return core.Config{
		GPU:            g,
		Generator:      pc.gen,
		GenSkill:       pc.genSkill,
		Verifier:       pc.ver,
		VerSkill:       pc.verSkill,
		MemoryFraction: pc.memFrac,
		Policy:         pol,
		Opts:           opts,
		Recorder:       rec,
		Seed:           seed,
	}
}

// solveSet solves the first opts.Problems problems of a dataset under the
// given configuration and returns all results.
func solveSet(cfg core.Config, spec workload.DatasetSpec, o RunOpts) ([]*core.Result, error) {
	runner, err := core.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	ds := workload.NewDataset(spec, rngFor(o.Seed))
	var out []*core.Result
	for _, p := range ds.Subset(o.Problems) {
		res, err := runner.Solve(p)
		if err != nil {
			return nil, fmt.Errorf("bench: %s/%d: %w", spec.Name, p.Index, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func meanGoodput(rs []*core.Result) float64 {
	if len(rs) == 0 {
		return 0
	}
	total := 0.0
	for _, r := range rs {
		total += r.Goodput
	}
	return total / float64(len(rs))
}

func meanLatency(rs []*core.Result) (total, gen, ver float64) {
	if len(rs) == 0 {
		return 0, 0, 0
	}
	for _, r := range rs {
		total += r.Latency
		gen += r.GenTime
		ver += r.VerTime
	}
	n := float64(len(rs))
	return total / n, gen / n, ver / n
}

// topCorrect applies majority voting to one result.
func topCorrect(res *core.Result) bool {
	return metrics.Top1Correct(res.PathResults())
}

// accuracy folds per-problem outcomes into a percentage.
func accuracy(oks []bool) float64 { return metrics.Accuracy(oks) }

// nSweep returns the paper's beam-count grid capped at max.
func nSweep(max int, values ...int) []int {
	var out []int
	for _, v := range values {
		if v <= max {
			out = append(out, v)
		}
	}
	return out
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func itoa(v int) string   { return fmt.Sprintf("%d", v) }
func i64(v int64) string  { return fmt.Sprintf("%d", v) }
