package bench

import (
	"fmt"

	"fasttts/internal/alloc"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/model"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// Fig10RooflineAlloc reproduces Fig 10: the optimal prefill/decode batch
// sizes and normalized throughput the roofline-guided allocator picks as
// the available KV memory grows.
func Fig10RooflineAlloc(o RunOpts) (*Report, error) {
	r := &Report{
		ID:     "10",
		Title:  "Roofline-guided KV allocation (1.5B+1.5B, N=512, S=1024)",
		Header: []string{"kv_gib", "opt_prefill_batch", "opt_decode_batch", "norm_throughput"},
	}
	in := alloc.Input{
		GPU:         hw.RTX4090,
		Generator:   model.Qwen25Math1_5B,
		Verifier:    model.SkyworkPRM1_5B,
		N:           512,
		SeqVerifier: 1024,
		SeqDecode:   1024,
	}
	type point struct {
		gib        float64
		bPre, bDec int
		tput       float64
	}
	var pts []point
	best := 0.0
	for _, mib := range []int64{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384} {
		in.BudgetBytes = mib << 20
		plan, err := alloc.Optimize(in)
		if err != nil {
			continue
		}
		tput := float64(in.N) * float64(in.SeqDecode) / plan.TotalTime
		if tput > best {
			best = tput
		}
		pts = append(pts, point{float64(mib) / 1024, plan.BPre, plan.BDec, tput})
	}
	for _, p := range pts {
		r.Rows = append(r.Rows, []string{
			f3(p.gib), itoa(p.bPre), itoa(p.bDec), f3(p.tput / best),
		})
	}
	r.Notes = append(r.Notes,
		"paper: the decode batch grows with memory while the prefill batch stays small; throughput saturates once decode batching is ample")
	return r, nil
}

// Fig11SearchVariants reproduces Fig 11: goodput of baseline vs FastTTS
// across the four verifier-guided search variants on AIME (1.5B+1.5B).
func Fig11SearchVariants(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "11",
		Title:  "Goodput across search variants, AIME, 1.5B+1.5B",
		Header: []string{"method", "n", "baseline_tok_s", "fasttts_tok_s", "speedup"},
	}
	pc := pair1515()
	for _, alg := range []search.Algorithm{
		search.BeamSearch, search.DVTS, search.DynamicBranching, search.VaryingGranularity,
	} {
		for _, n := range nSweep(o.MaxN, 8, 16, 32, 64, 128, 256, 512) {
			pol, err := search.New(alg, n, 4)
			if err != nil {
				return nil, err
			}
			base, err := solveSet(deployment(hw.RTX4090, pc, pol, core.BaselineOptions(), o.Seed, nil), workload.AIME24, o)
			if err != nil {
				return nil, err
			}
			fast, err := solveSet(deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil), workload.AIME24, o)
			if err != nil {
				return nil, err
			}
			bg, fg := meanGoodput(base), meanGoodput(fast)
			r.Rows = append(r.Rows, []string{pol.Name(), itoa(n), f2(bg), f2(fg), f2(fg / bg)})
		}
	}
	r.Notes = append(r.Notes,
		"paper: FastTTS improves goodput 1.2x-3.9x across all four variants, growing with n")
	return r, nil
}

// Fig12Goodput reproduces Fig 12: goodput of baseline vs FastTTS for all
// three model configurations on AIME and AMC.
func Fig12Goodput(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "12",
		Title:  "Precise Goodput, 3 configs x {AIME, AMC}",
		Header: []string{"dataset", "config", "n", "baseline_tok_s", "fasttts_tok_s", "speedup"},
	}
	var speedups []float64
	for _, spec := range []workload.DatasetSpec{workload.AIME24, workload.AMC23} {
		for _, pc := range allPairs() {
			for _, n := range nSweep(o.MaxN, 8, 32, 128, 512) {
				pol, err := search.New(search.BeamSearch, n, 4)
				if err != nil {
					return nil, err
				}
				base, err := solveSet(deployment(hw.RTX4090, pc, pol, core.BaselineOptions(), o.Seed, nil), spec, o)
				if err != nil {
					return nil, err
				}
				fast, err := solveSet(deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil), spec, o)
				if err != nil {
					return nil, err
				}
				bg, fg := meanGoodput(base), meanGoodput(fast)
				speedups = append(speedups, fg/bg)
				r.Rows = append(r.Rows, []string{spec.Name, pc.name, itoa(n), f2(bg), f2(fg), f2(fg / bg)})
			}
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("measured: mean speedup %.2fx (geo %.2fx) across the grid", metrics.Mean(speedups), metrics.GeoMean(speedups)),
		"paper: average 2.2x, range 1.2x-5.4x, peaking at 7B+1.5B n=512 on AIME")
	return r, nil
}

// Fig13Latency reproduces Fig 13: end-to-end completion latency with the
// generator/verifier breakdown.
func Fig13Latency(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:    "13",
		Title: "Completion latency with generator/verifier breakdown",
		Header: []string{"dataset", "config", "n", "base_total_s", "base_gen_s", "base_ver_s",
			"fast_total_s", "fast_gen_s", "fast_ver_s", "latency_cut_pct"},
	}
	var cuts, verCuts, genCuts []float64
	for _, spec := range []workload.DatasetSpec{workload.AIME24, workload.AMC23} {
		for _, pc := range allPairs() {
			for _, n := range nSweep(o.MaxN, 8, 16, 32, 64, 128, 256, 512) {
				pol, err := search.New(search.BeamSearch, n, 4)
				if err != nil {
					return nil, err
				}
				base, err := solveSet(deployment(hw.RTX4090, pc, pol, core.BaselineOptions(), o.Seed, nil), spec, o)
				if err != nil {
					return nil, err
				}
				fast, err := solveSet(deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil), spec, o)
				if err != nil {
					return nil, err
				}
				bt, bgen, bver := meanLatency(base)
				ft, fgen, fver := meanLatency(fast)
				cut := 100 * (1 - ft/bt)
				cuts = append(cuts, cut)
				if bver > 0 {
					verCuts = append(verCuts, 100*(1-fver/bver))
				}
				if bgen > 0 {
					genCuts = append(genCuts, 100*(1-fgen/bgen))
				}
				r.Rows = append(r.Rows, []string{
					spec.Name, pc.name, itoa(n),
					f1(bt), f1(bgen), f1(bver),
					f1(ft), f1(fgen), f1(fver), f1(cut),
				})
			}
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("measured: latency cut %.0f%% on average (verifier %.0f%%, generator %.0f%%)",
			metrics.Mean(cuts), metrics.Mean(verCuts), metrics.Mean(genCuts)),
		"paper: 38-68%% end-to-end latency reduction; verifier latency cut 75-85%%, generator 36-66%%")
	return r, nil
}

// Fig14aTop1 reproduces Fig 14a: Top-1 accuracy (majority voting) at
// n=512 for baseline vs FastTTS on AIME and AMC.
func Fig14aTop1(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	if o.Problems < 12 {
		o.Problems = 12
	}
	n := min(512, o.MaxN)
	r := &Report{
		ID:     "14a",
		Title:  fmt.Sprintf("Top-1 accuracy via majority voting (n=%d)", n),
		Header: []string{"dataset", "config", "baseline_acc_pct", "fasttts_acc_pct"},
	}
	for _, spec := range []workload.DatasetSpec{workload.AIME24, workload.AMC23} {
		for _, pc := range allPairs() {
			pol, err := search.New(search.BeamSearch, n, 4)
			if err != nil {
				return nil, err
			}
			accOf := func(opts core.Options) (float64, error) {
				rs, err := solveSet(deployment(hw.RTX4090, pc, pol, opts, o.Seed, nil), spec, o)
				if err != nil {
					return 0, err
				}
				var oks []bool
				for _, res := range rs {
					oks = append(oks, metrics.Top1Correct(res.PathResults()))
				}
				return metrics.Accuracy(oks), nil
			}
			ba, err := accOf(core.BaselineOptions())
			if err != nil {
				return nil, err
			}
			fa, err := accOf(core.FastTTSOptions())
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{spec.Name, pc.name, f1(ba), f1(fa)})
		}
	}
	r.Notes = append(r.Notes,
		"FastTTS guarantees algorithmic equivalence, so accuracies are identical (the paper reports 'highly competitive' with small scheduling-order jitter)",
		"paper: AIME ~5-25%, AMC ~60-80% across configs")
	return r, nil
}

// Fig14bPassN reproduces Fig 14b: Pass@N accuracy with verifier-score
// ranking, baseline vs FastTTS.
func Fig14bPassN(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	if o.Problems < 12 {
		o.Problems = 12
	}
	width := min(512, o.MaxN)
	pol, err := search.New(search.BeamSearch, width, 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	r := &Report{
		ID:     "14b",
		Title:  fmt.Sprintf("Pass@N accuracy (beam width %d, 1.5B+1.5B)", width),
		Header: []string{"dataset", "N", "baseline_pct", "fasttts_pct"},
	}
	for _, spec := range []workload.DatasetSpec{workload.AIME24, workload.AMC23} {
		base, err := solveSet(deployment(hw.RTX4090, pc, pol, core.BaselineOptions(), o.Seed, nil), spec, o)
		if err != nil {
			return nil, err
		}
		fast, err := solveSet(deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil), spec, o)
		if err != nil {
			return nil, err
		}
		for _, N := range nSweep(width, 8, 32, 128, 512) {
			passOf := func(rs []*core.Result) float64 {
				var oks []bool
				for _, res := range rs {
					oks = append(oks, metrics.PassAtN(res.PathResults(), N))
				}
				return metrics.Accuracy(oks)
			}
			r.Rows = append(r.Rows, []string{spec.Name, itoa(N), f1(passOf(base)), f1(passOf(fast))})
		}
	}
	r.Notes = append(r.Notes,
		"paper: Pass@N rises with N (AIME ~20->50%, AMC ~60->95%); FastTTS matches at large N")
	return r, nil
}

// Fig15ConstrainedHW reproduces Fig 15: goodput on the 8 GB RTX 3070 Ti
// (with offloading) and 12 GB RTX 4070 Ti on AIME, plus HumanEval code
// generation on the 4090.
func Fig15ConstrainedHW(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "15",
		Title:  "Constrained hardware and coding workloads",
		Header: []string{"panel", "n", "baseline_tok_s", "fasttts_tok_s", "speedup"},
	}
	panels := []struct {
		name    string
		gpu     hw.GPU
		spec    workload.DatasetSpec
		offload bool
		memFrac float64
	}{
		{"AIME(3070Ti)", hw.RTX3070Ti, workload.AIME24, true, 0.95},
		{"AIME(4070Ti)", hw.RTX4070Ti, workload.AIME24, false, 0.9},
		{"HumanEval(4090)", hw.RTX4090, workload.HumanEval, false, 0.4},
	}
	for _, panel := range panels {
		pc := pair1515()
		pc.memFrac = panel.memFrac
		for _, n := range nSweep(min(256, o.MaxN), 8, 16, 32, 64, 128, 256) {
			pol, err := search.New(search.BeamSearch, n, 4)
			if err != nil {
				return nil, err
			}
			baseOpts := core.BaselineOptions()
			fastOpts := core.FastTTSOptions()
			baseOpts.AllowOffload = panel.offload
			fastOpts.AllowOffload = panel.offload
			mkCfg := func(opts core.Options) core.Config {
				cfg := deployment(panel.gpu, pc, pol, opts, o.Seed, nil)
				if panel.offload {
					cfg.ReservedBytes = 256 << 20
				}
				return cfg
			}
			base, err := solveSet(mkCfg(baseOpts), panel.spec, o)
			if err != nil {
				return nil, err
			}
			fast, err := solveSet(mkCfg(fastOpts), panel.spec, o)
			if err != nil {
				return nil, err
			}
			bg, fg := meanGoodput(base), meanGoodput(fast)
			r.Rows = append(r.Rows, []string{panel.name, itoa(n), f2(bg), f2(fg), f2(fg / bg)})
		}
	}
	r.Notes = append(r.Notes,
		"paper: 1.4-1.6x on 3070Ti/4070Ti (3070Ti absolute goodput lower due to offloading); 1.3-1.8x on HumanEval")
	return r, nil
}
