package bench

import (
	"fmt"

	"fasttts/internal/alloc"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// Fig3LeftAccuracyLatency reproduces Fig 3 (left): accuracy vs latency of
// Best-of-N, Beam Search, and DVTS on MATH-500.
func Fig3LeftAccuracyLatency(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	if o.Problems < 60 {
		o.Problems = 60 // accuracy needs a reasonable sample
	}
	pc := pair1515()
	r := &Report{
		ID:     "3l",
		Title:  "Accuracy vs latency, MATH500, 1.5B+1.5B, n=64",
		Header: []string{"method", "latency_s", "top1_acc_pct"},
	}
	for _, alg := range []search.Algorithm{search.BestOfN, search.BeamSearch, search.DVTS} {
		pol, err := search.New(alg, min(64, o.MaxN), 4)
		if err != nil {
			return nil, err
		}
		rs, err := solveSet(deployment(hw.RTX4090, pc, pol, core.BaselineOptions(), o.Seed, nil), workload.MATH500, o)
		if err != nil {
			return nil, err
		}
		var top1 []bool
		for _, res := range rs {
			top1 = append(top1, metrics.Top1Correct(res.PathResults()))
		}
		lat, _, _ := meanLatency(rs)
		r.Rows = append(r.Rows, []string{pol.Name(), f1(lat), f1(metrics.Accuracy(top1))})
	}
	r.Notes = append(r.Notes,
		"paper: BoN 179.5s/50.0%, Beam 207.0s/54.5%, DVTS 291.5s/56.5% — latency and accuracy both increase down the list")
	return r, nil
}

// Fig3RightStepTokens reproduces Fig 3 (right): average and maximum token
// count per generation step of the 1.5B generator on AIME.
func Fig3RightStepTokens(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
	r := &Report{
		ID:     "3r",
		Title:  "Tokens per generation step, Qwen2.5-Math-1.5B on AIME",
		Header: []string{"step", "avg_tokens", "max_tokens"},
	}
	const beams = 256
	stream := rngFor(o.Seed).Child("fig3r")
	for step := 1; step <= 10; step++ {
		sum, maxTok, count := 0.0, 0, 0
		for pi, p := range ds.Subset(o.Problems) {
			for b := 0; b < beams; b++ {
				st := &workload.PathState{Steps: step - 1}
				s := workload.SampleStep(p, st, workload.SkillQwen1_5B, search.DefaultStepBudget,
					stream.Child(fmt.Sprintf("%d/%d/%d", pi, b, step)))
				sum += float64(s.Tokens)
				count++
				if s.Tokens > maxTok {
					maxTok = s.Tokens
				}
			}
		}
		r.Rows = append(r.Rows, []string{itoa(step), f1(sum / float64(count)), itoa(maxTok)})
	}
	r.Notes = append(r.Notes,
		"paper: avg ~200 tokens/step with outliers beyond 1000 at every step — the straggler disparity persists across steps")
	return r, nil
}

// Fig4UtilPhases reproduces Fig 4: the baseline's GPU compute utilization
// decays through the generation phase (stragglers) but stays high and
// steady during verification.
func Fig4UtilPhases(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	rec := &trace.Recorder{}
	pol, err := search.New(search.BeamSearch, min(64, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	cfg := deployment(hw.RTX4090, pair1515(), pol, core.BaselineOptions(), o.Seed, rec)
	runner, err := core.NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
	if _, err := runner.Solve(ds.Problems[0]); err != nil {
		return nil, err
	}
	r := &Report{
		ID:     "4",
		Title:  "GPU compute utilization over time (baseline, n=64, AIME)",
		Header: []string{"time_s", "util_generate", "util_verify"},
	}
	gen := rec.UtilSeries(0.25, trace.PhaseGenerate)
	ver := rec.UtilSeries(0.25, trace.PhaseVerify)
	for i := range gen {
		vu := 0.0
		if i < len(ver) {
			vu = ver[i].Util
		}
		r.Rows = append(r.Rows, []string{f2(gen[i].Time), f3(gen[i].Util), f3(vu)})
	}
	gStart, gEnd := phaseEdges(gen)
	r.Notes = append(r.Notes,
		fmt.Sprintf("generation-phase utilization decays from %.2f (early) to %.2f (late) as beams finish", gStart, gEnd),
		"paper: generation peaks early then plummets while waiting for the straggler; verification stays uniformly high")
	return r, nil
}

// phaseEdges returns mean utilization over the first and last active
// quarter of a series.
func phaseEdges(pts []trace.Point) (early, late float64) {
	var active []trace.Point
	for _, p := range pts {
		if p.Util > 0 {
			active = append(active, p)
		}
	}
	if len(active) < 4 {
		return 0, 0
	}
	q := len(active) / 4
	var a, b float64
	for _, p := range active[:q] {
		a += p.Util
	}
	for _, p := range active[len(active)-q:] {
		b += p.Util
	}
	return a / float64(q), b / float64(q)
}

// Fig5LeftPrefixMemory reproduces Fig 5 (left): the number of beams whose
// KV state fits in memory, with and without prefix-cache sharing, as the
// reasoning tree grows.
func Fig5LeftPrefixMemory(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "5l",
		Title:  "Beams resident in a fixed KV budget across iterations",
		Header: []string{"iteration", "beam_search_w_prefix", "dvts_w_prefix", "wo_prefix"},
	}
	const budgetTokens = 120_000 // ~3.4 GB of 1.5B-generator KV
	stream := rngFor(o.Seed).Child("fig5l")
	ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
	p := ds.Problems[0]
	beamTree := growTree(p, stream.Child("beam"), 4096, 4, false)
	dvtsTree := growTree(p, stream.Child("dvts"), 4096, 4, true)
	for it := 0; it < len(beamTree); it++ {
		bs := fitCount(beamTree[it], budgetTokens, true)
		dv := fitCount(dvtsTree[it], budgetTokens, true)
		wo := fitCount(beamTree[it], budgetTokens, false)
		r.Rows = append(r.Rows, []string{itoa(it + 1), itoa(bs), itoa(dv), itoa(wo)})
	}
	r.Notes = append(r.Notes,
		"paper: prefix sharing keeps thousands of beams resident where unshared storage saturates early; DVTS shares slightly less (independent subtrees)")
	return r, nil
}

// growTree simulates per-iteration snapshots of a width-n reasoning tree:
// entry t holds the active paths after iteration t+1. diverse confines
// branching to independent subtrees (DVTS-style).
func growTree(p *workload.Problem, stream *rng.Stream, n, b int, diverse bool) [][]sched.Path {
	type pathState struct {
		lineage []sched.NodeRef
		subtree int
	}
	nextNode := 1
	paths := make([]pathState, n)
	for i := range paths {
		paths[i] = pathState{
			lineage: []sched.NodeRef{{Node: 0, Tokens: p.PromptTokens}},
			subtree: i / b,
		}
	}
	var snaps [][]sched.Path
	for it := 0; it < 10; it++ {
		for i := range paths {
			st := &workload.PathState{Steps: it}
			step := workload.SampleStep(p, st, workload.SkillQwen1_5B, search.DefaultStepBudget,
				stream.Child(fmt.Sprintf("s/%d/%d", it, i)))
			paths[i].lineage = append(append([]sched.NodeRef(nil), paths[i].lineage...),
				sched.NodeRef{Node: nextNode, Tokens: step.Tokens})
			nextNode++
		}
		var next []pathState
		if diverse {
			bySub := map[int][]pathState{}
			var order []int
			for _, ps := range paths {
				if _, ok := bySub[ps.subtree]; !ok {
					order = append(order, ps.subtree)
				}
				bySub[ps.subtree] = append(bySub[ps.subtree], ps)
			}
			for _, subtree := range order {
				winner := bySub[subtree][0]
				for c := 0; c < b; c++ {
					next = append(next, pathState{
						lineage: append([]sched.NodeRef(nil), winner.lineage...),
						subtree: winner.subtree,
					})
				}
			}
		} else {
			keep := len(paths) / b
			if keep < 1 {
				keep = 1
			}
			for k := 0; k < keep; k++ {
				for c := 0; c < b; c++ {
					next = append(next, pathState{
						lineage: append([]sched.NodeRef(nil), paths[k].lineage...),
						subtree: paths[k].subtree,
					})
				}
			}
		}
		paths = next
		snap := make([]sched.Path, len(paths))
		for i, ps := range paths {
			snap[i] = sched.Path{ID: i, Lineage: ps.lineage}
		}
		snaps = append(snaps, snap)
	}
	return snaps
}

// fitCount returns how many of the (prefix-aware-ordered) paths fit in
// budget tokens, with or without prefix sharing.
func fitCount(paths []sched.Path, budget int, shared bool) int {
	ordered := sched.PrefixAwareOrder(paths)
	if shared {
		cum := sched.CumulativeUniqueTokens(ordered)
		for i, c := range cum {
			if c > budget {
				return i
			}
		}
		return len(cum)
	}
	total := 0
	for i, p := range ordered {
		total += p.TotalTokens()
		if total > budget {
			return i
		}
	}
	return len(ordered)
}

// Fig5RightHeatmap reproduces Fig 5 (right): pairwise shared-prefix
// structure under the baseline's arbitrary scheduling order — similar
// beams are not grouped together.
func Fig5RightHeatmap(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	stream := rngFor(o.Seed).Child("fig5r")
	ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
	p := ds.Problems[0]
	snaps := growTree(p, stream.Child("tree"), 128, 4, false)
	paths := snaps[4] // a mid-search snapshot
	naive := sched.RandomOrder(paths, stream.Child("shuffle"))
	grouped := sched.PrefixAwareOrder(paths)
	r := &Report{
		ID:     "5r",
		Title:  "Adjacent shared-prefix tokens: naive vs prefix-aware order (n=128)",
		Header: []string{"order", "adjacent_share_sum", "mean_adjacent_share"},
	}
	for _, row := range []struct {
		name  string
		order []sched.Path
	}{{"naive(random)", naive}, {"prefix-aware", grouped}} {
		score := sched.ScheduleScore(row.order)
		r.Rows = append(r.Rows, []string{
			row.name, itoa(score), f1(float64(score) / float64(len(row.order)-1)),
		})
	}
	// Emit the heatmap itself (downsampled 16x16) for plotting.
	m := sched.PairwiseShared(naive)
	step := len(m) / 16
	for i := 0; i < 16; i++ {
		row := []string{fmt.Sprintf("heat_row_%d", i)}
		for j := 0; j < 16; j++ {
			row = append(row, itoa(m[i*step][j*step]))
		}
		r.Rows = append(r.Rows, row)
	}
	r.Notes = append(r.Notes,
		"paper: under naive scheduling, high-sharing pairs are scattered off-diagonal — similar beams are not adjacent")
	return r, nil
}

// Fig6ThroughputVsKV reproduces Fig 6: normalized throughput versus KV
// cache size for the prefill and decoding stages — prefill saturates with
// far less memory.
func Fig6ThroughputVsKV(o RunOpts) (*Report, error) {
	g := hw.RTX4090
	m := model.Qwen25Math1_5B
	r := &Report{
		ID:     "6",
		Title:  "Normalized throughput vs KV cache size (Qwen2.5-1.5B, RTX 4090)",
		Header: []string{"kv_gib", "prefill_640", "prefill_1152", "decode_512", "decode_1024"},
	}
	peak := func(f func(int64) float64) float64 { return f(64 << 30) }
	pre640 := func(kv int64) float64 { return alloc.PrefillThroughput(g, m, 640, kv) }
	pre1152 := func(kv int64) float64 { return alloc.PrefillThroughput(g, m, 1152, kv) }
	dec512 := func(kv int64) float64 { return alloc.DecodeThroughput(g, m, 512, kv) }
	dec1024 := func(kv int64) float64 { return alloc.DecodeThroughput(g, m, 1024, kv) }
	p640, p1152, d512, d1024 := peak(pre640), peak(pre1152), peak(dec512), peak(dec1024)
	var at80Pre, at80Dec float64
	for kv := int64(32 << 20); kv <= 16<<30; kv *= 2 {
		r.Rows = append(r.Rows, []string{
			f3(float64(kv) / (1 << 30)),
			f3(pre640(kv) / p640), f3(pre1152(kv) / p1152),
			f3(dec512(kv) / d512), f3(dec1024(kv) / d1024),
		})
		if at80Pre == 0 && pre640(kv) >= 0.8*p640 {
			at80Pre = float64(kv) / (1 << 30)
		}
		if at80Dec == 0 && dec1024(kv) >= 0.8*d1024 {
			at80Dec = float64(kv) / (1 << 30)
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("measured: prefill reaches 80%% of peak at ~%.2f GiB; decode needs ~%.2f GiB (%.0fx more)",
			at80Pre, at80Dec, at80Dec/at80Pre),
		"paper: prefill saturates at 0.39-0.98 GB; decode needs 3.06-5.18 GB (5-10x more)")
	return r, nil
}
