package bench

import (
	"fmt"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/kvcache"
	"fasttts/internal/model"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// AblationBlockSize studies the paged-KV block granularity (DESIGN.md §5):
// large blocks waste capacity at node boundaries of the reasoning tree
// (internal fragmentation), shrinking the number of beams a fixed budget
// holds.
func AblationBlockSize(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	stream := rngFor(o.Seed).Child("a5")
	ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
	p := ds.Problems[0]
	snaps := growTree(p, stream.Child("tree"), 512, 4, false)
	paths := snaps[len(snaps)-1]
	kvPerToken := model.Qwen25Math1_5B.KVBytesPerToken()
	const budget = (int64(5) << 30) / 4 // 1.25 GiB
	r := &Report{
		ID:     "a5",
		Title:  "Paged-KV block size: fragmentation vs resident beams (1.25 GiB budget)",
		Header: []string{"block_tokens", "resident_beams", "allocated_gib", "frag_overhead_pct"},
	}
	for _, block := range []int{1, 16, 64, 256} {
		cache := kvcache.NewBlocked(budget, kvPerToken, block)
		resident := 0
		for _, path := range paths {
			var tokens []kvcache.Token
			for _, ref := range path.Lineage {
				for j := 0; j < ref.Tokens; j++ {
					tokens = append(tokens, kvcache.Token(ref.Node<<12|minInt(j, 4095)))
				}
			}
			if _, _, _, err := cache.Acquire(tokens); err != nil {
				break
			}
			resident++
		}
		// Exact usage of the same content for the fragmentation ratio.
		exact := kvcache.New(64<<30, kvPerToken)
		for i := 0; i < resident; i++ {
			var tokens []kvcache.Token
			for _, ref := range paths[i].Lineage {
				for j := 0; j < ref.Tokens; j++ {
					tokens = append(tokens, kvcache.Token(ref.Node<<12|minInt(j, 4095)))
				}
			}
			exact.Acquire(tokens)
		}
		frag := 0.0
		if exact.UsedTokens() > 0 {
			frag = 100 * (float64(cache.UsedTokens())/float64(exact.UsedTokens()) - 1)
		}
		r.Rows = append(r.Rows, []string{
			itoa(block), itoa(resident),
			f3(float64(cache.UsedBytes()) / (1 << 30)), f1(frag),
		})
	}
	r.Notes = append(r.Notes,
		"token-granular allocation is the upper bound; 16-64-token blocks cost a few percent; very large blocks meaningfully cut resident beams")
	return r, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// ExtServingLoad measures the two-phase scheduler (§4.1.2) under an
// arrival stream: per-request latency and queueing with speculation
// preempted whenever the queue is non-empty, against a server that never
// speculates.
func ExtServingLoad(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(64, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	ds := workload.NewDataset(workload.AMC23, rngFor(o.Seed))
	probs := ds.Subset(max(o.Problems, 6))
	r := &Report{
		ID:     "s1",
		Title:  "Two-phase serving under load (AMC, n=64)",
		Header: []string{"inter_arrival_s", "system", "mean_latency_s", "mean_queue_s", "spec_tokens"},
	}
	for _, gap := range []float64{5, 30, 120} {
		for _, sys := range []struct {
			name string
			opts core.Options
		}{
			{"baseline", core.BaselineOptions()},
			{"fasttts", core.FastTTSOptions()},
		} {
			srv, err := core.NewServer(deployment(hw.RTX4090, pc, pol, sys.opts, o.Seed, nil))
			if err != nil {
				return nil, err
			}
			var reqs []core.Request
			for i, p := range probs {
				reqs = append(reqs, core.Request{Problem: p, Arrival: float64(i) * gap})
			}
			served, err := srv.Run(reqs)
			if err != nil {
				return nil, err
			}
			var lat, queue float64
			var spec int64
			for _, sv := range served {
				lat += sv.Result.Latency
				queue += sv.QueueDelay
				spec += sv.SpecTokens
			}
			n := float64(len(served))
			r.Rows = append(r.Rows, []string{
				fmt.Sprintf("%.0f", gap), sys.name,
				f1(lat / n), f1(queue / n), i64(spec),
			})
		}
	}
	r.Notes = append(r.Notes,
		"under tight arrivals FastTTS suspends speculation (two-phase preemption) yet still wins on latency via P+M; idle gaps re-enable speculation")
	return r, nil
}

// ExtMCTSComparison checks the paper's §2.2 claim that multi-step
// lookahead methods like MCTS "introduce significant sampling and latency
// overhead with inferior accuracy" compared to the beam-search family —
// the reason FastTTS's common pattern excludes them.
func ExtMCTSComparison(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	if o.Problems < 12 {
		o.Problems = 12
	}
	pc := pair1515()
	r := &Report{
		ID:     "a6",
		Title:  "MCTS vs the beam-search family (AIME, n=64, FastTTS serving)",
		Header: []string{"method", "latency_s", "goodput_tok_s", "top1_acc_pct"},
	}
	for _, alg := range []search.Algorithm{search.BeamSearch, search.DVTS, search.MCTS} {
		pol, err := search.New(alg, min(64, o.MaxN), 4)
		if err != nil {
			return nil, err
		}
		rs, err := solveSet(deployment(hw.RTX4090, pc, pol, core.FastTTSOptions(), o.Seed, nil), workload.AIME24, o)
		if err != nil {
			return nil, err
		}
		var top1 []bool
		for _, res := range rs {
			top1 = append(top1, topCorrect(res))
		}
		lat, _, _ := meanLatency(rs)
		r.Rows = append(r.Rows, []string{pol.Name(), f1(lat), f2(meanGoodput(rs)), f1(accuracy(top1))})
	}
	r.Notes = append(r.Notes,
		"paper §2.2: MCTS-style lookahead adds sampling overhead without an accuracy edge; it is implemented here so the exclusion is checkable")
	return r, nil
}
