package bench

import (
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

func rngFor(seed uint64) *rng.Stream { return rng.New(seed) }

// Fig1aMemory reproduces Fig 1a: the memory footprint of edge models, the
// edge TTS pair, and cloud reasoning models against a 4090's VRAM.
func Fig1aMemory(o RunOpts) (*Report, error) {
	r := &Report{
		ID:     "1a",
		Title:  "Memory cost across models (GiB)",
		Header: []string{"model", "total_gib", "activated_gib", "fits_24gb"},
	}
	add := func(name string, total, act int64) {
		fits := "yes"
		if act > hw.RTX4090.VRAMBytes {
			fits = "no"
		}
		r.Rows = append(r.Rows, []string{
			name, f1(float64(total) / (1 << 30)), f1(float64(act) / (1 << 30)), fits,
		})
	}
	q := model.Qwen25Math1_5B.WeightBytes()
	s := model.SkyworkPRM1_5B.WeightBytes()
	add("Qwen2.5-1.5B", q, q)
	add("Qwen2.5-1.5B + Skywork-1.5B (TTS)", q+s, q+s)
	for _, c := range model.CloudModels {
		add(c.Name, c.TotalBytes, c.ActivatedBytes)
	}
	r.Notes = append(r.Notes,
		"paper: edge pair ~6 GB fits a 24 GB 4090; every cloud model's activated footprint exceeds it")
	return r, nil
}

// Fig1bLatencyFrontier reproduces Fig 1b: the vLLM baseline needs ~2x the
// cloud model's first-answer latency to match cloud accuracy; FastTTS
// pushes the edge point below cloud latency.
func Fig1bLatencyFrontier(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	// Cloud reference: first-answer latency of GPT-o3-pro / GPT-5 class
	// thinking models (paper cites artificialanalysis.ai; ~100 s).
	const cloudLatency = 105.0
	pol, err := search.New(search.BeamSearch, min(256, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	r := &Report{
		ID:     "1b",
		Title:  "Edge TTS latency vs cloud first-answer latency (AIME, beam search)",
		Header: []string{"system", "latency_s", "vs_cloud"},
	}
	for _, sys := range []struct {
		name string
		opts core.Options
	}{
		{"vLLM baseline (edge)", core.BaselineOptions()},
		{"FastTTS (edge)", core.FastTTSOptions()},
	} {
		rs, err := solveSet(deployment(hw.RTX4090, pc, pol, sys.opts, o.Seed, nil), workload.AIME24, o)
		if err != nil {
			return nil, err
		}
		lat, _, _ := meanLatency(rs)
		r.Rows = append(r.Rows, []string{sys.name, f1(lat), f2(lat / cloudLatency)})
	}
	r.Rows = append(r.Rows, []string{"cloud thinking model (reference)", f1(cloudLatency), "1.00"})
	r.Notes = append(r.Notes,
		"paper: baseline ~200 s (~2x cloud); FastTTS brings edge TTS at or below cloud latency")
	return r, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
