package bench

import (
	"fmt"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// ablationLadder returns the cumulative option sets of Fig 16:
// baseline → +P → +P+M → +P+M+S.
func ablationLadder() []struct {
	name string
	opts core.Options
} {
	p := core.Options{
		PrefixAware:          true,
		GeneratorPrefixCache: true,
		VerifierPrefixCache:  true,
		StaticVerifierFrac:   0.5,
	}
	pm := p
	pm.AsymmetricMemory = true
	return []struct {
		name string
		opts core.Options
	}{
		{"baseline", core.BaselineOptions()},
		{"+P", p},
		{"+P+M", pm},
		{"+P+M+S", core.FastTTSOptions()},
	}
}

// Fig16Ablation reproduces Fig 16: the cumulative goodput gain from
// Dynamic Prefix-Aware Scheduling (P), Asymmetric Multi-Model Memory
// Allocation (M), and Speculative Beam Extension (S).
func Fig16Ablation(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "16",
		Title:  "Cumulative goodput gain from P, M, S (AIME)",
		Header: []string{"config", "n", "variant", "goodput_tok_s", "gain_vs_baseline_pct"},
	}
	for _, pc := range allPairs() {
		for _, n := range nSweep(o.MaxN, 8, 32, 128, 512) {
			pol, err := search.New(search.BeamSearch, n, 4)
			if err != nil {
				return nil, err
			}
			baseGP := 0.0
			for _, step := range ablationLadder() {
				rs, err := solveSet(deployment(hw.RTX4090, pc, pol, step.opts, o.Seed, nil), workload.AIME24, o)
				if err != nil {
					return nil, err
				}
				gp := meanGoodput(rs)
				if step.name == "baseline" {
					baseGP = gp
				}
				r.Rows = append(r.Rows, []string{
					pc.name, itoa(n), step.name, f2(gp), f1(100 * (gp/baseGP - 1)),
				})
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper: P strongest in the memory-constrained 1.5B+7B setup; M adds most at large n; S is often the largest single contributor")
	return r, nil
}

// Fig17LeftUtil reproduces Fig 17 (left): compute utilization across one
// generation iteration, baseline vs FastTTS — speculation keeps the batch
// full so utilization stays flat instead of decaying.
func Fig17LeftUtil(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(64, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	r := &Report{
		ID:     "17l",
		Title:  "Compute utilization within the generation phase (n=64, AIME)",
		Header: []string{"system", "early_quarter_util", "late_quarter_util", "decay"},
	}
	for _, sys := range []struct {
		name string
		opts core.Options
	}{
		{"vLLM", core.BaselineOptions()},
		{"FastTTS", core.FastTTSOptions()},
	} {
		rec := &trace.Recorder{}
		cfg := deployment(hw.RTX4090, pc, pol, sys.opts, o.Seed, rec)
		runner, err := core.NewRunner(cfg)
		if err != nil {
			return nil, err
		}
		ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
		if _, err := runner.Solve(ds.Problems[0]); err != nil {
			return nil, err
		}
		early, late := firstIterationEdges(rec)
		r.Rows = append(r.Rows, []string{sys.name, f3(early), f3(late), f3(early - late)})
	}
	r.Notes = append(r.Notes,
		"paper: vLLM's utilization decays across the iteration; FastTTS stays high and consistent by speculating in freed slots")
	return r, nil
}

// firstIterationEdges isolates the first generation iteration (the first
// contiguous run of generate-phase kernels) and returns its early- and
// late-quarter mean utilization.
func firstIterationEdges(rec *trace.Recorder) (early, late float64) {
	var segment []trace.Sample
	var lastEnd float64
	for _, s := range rec.Samples {
		if s.Phase != trace.PhaseGenerate && s.Phase != trace.PhaseRecompute {
			if len(segment) > 0 {
				break // first iteration ended (verification started)
			}
			continue
		}
		if s.Phase != trace.PhaseGenerate {
			continue
		}
		if len(segment) > 0 && s.Start-lastEnd > 1.0 {
			break
		}
		segment = append(segment, s)
		lastEnd = s.End
	}
	if len(segment) < 8 {
		return 0, 0
	}
	q := len(segment) / 4
	weigh := func(ss []trace.Sample) float64 {
		var busy, span float64
		for _, s := range ss {
			busy += s.Util * (s.End - s.Start)
			span += s.End - s.Start
		}
		if span == 0 {
			return 0
		}
		return busy / span
	}
	return weigh(segment[:q]), weigh(segment[len(segment)-q:])
}

// Fig17RightTruncation reproduces Fig 17 (right): the impact of the
// speculative truncation ratio R on goodput (R=0.85 retains speculative
// work aggressively and wins).
func Fig17RightTruncation(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	r := &Report{
		ID:     "17r",
		Title:  "Truncation ratio R vs goodput (1.5B+1.5B)",
		Header: []string{"dataset", "n", "baseline", "fasttts_R0.00", "fasttts_R0.85"},
	}
	pc := pair1515()
	for _, spec := range []workload.DatasetSpec{workload.AIME24, workload.AMC23} {
		for _, n := range nSweep(o.MaxN, 64, 128, 256, 512) {
			pol, err := search.New(search.BeamSearch, n, 4)
			if err != nil {
				return nil, err
			}
			run := func(opts core.Options) (float64, error) {
				rs, err := solveSet(deployment(hw.RTX4090, pc, pol, opts, o.Seed, nil), spec, o)
				if err != nil {
					return 0, err
				}
				return meanGoodput(rs), nil
			}
			base, err := run(core.BaselineOptions())
			if err != nil {
				return nil, err
			}
			r0opts := core.FastTTSOptions()
			r0opts.TruncationRatio = 0
			r0, err := run(r0opts)
			if err != nil {
				return nil, err
			}
			r85, err := run(core.FastTTSOptions())
			if err != nil {
				return nil, err
			}
			r.Rows = append(r.Rows, []string{spec.Name, itoa(n), f2(base), f2(r0), f2(r85)})
		}
	}
	r.Notes = append(r.Notes,
		"paper: R=0.85 (aggressively retaining speculative work) yields more goodput than R=0.0; both beat the baseline")
	return r, nil
}

// Fig18LeftSchedulers reproduces Fig 18 (left): KV footprint growth as
// the batch is assembled under prefix-aware, random, and worst-case
// scheduling, on a final-iteration trace.
func Fig18LeftSchedulers(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	stream := rngFor(o.Seed).Child("fig18l")
	ds := workload.NewDataset(workload.AIME24, rngFor(o.Seed))
	p := ds.Problems[0]
	snaps := growTree(p, stream.Child("tree"), 512, 4, false)
	paths := snaps[len(snaps)-1] // final TTS iteration
	kvPerToken := float64(28672) // 1.5B generator KV bytes/token
	orders := []struct {
		name  string
		paths []sched.Path
	}{
		{"prefix_aware", sched.PrefixAwareOrder(paths)},
		{"random", sched.RandomOrder(paths, stream.Child("shuffle"))},
		{"worst_case", sched.MaxGrowthOrder(paths)},
	}
	r := &Report{
		ID:     "18l",
		Title:  "KV cache growth by scheduling order (final iteration, n=512)",
		Header: []string{"batch_size", "prefix_aware_gib", "random_gib", "worst_case_gib"},
	}
	cums := make([][]int, len(orders))
	for i, ord := range orders {
		cums[i] = sched.CumulativeUniqueTokens(ord.paths)
	}
	for k := 31; k < len(paths); k += 32 {
		row := []string{itoa(k + 1)}
		for i := range orders {
			row = append(row, f3(float64(cums[i][k])*kvPerToken/(1<<30)))
		}
		r.Rows = append(r.Rows, row)
	}
	// Fixed-budget batch capacity comparison (the figure's second claim).
	const budget = 1 << 30
	caps := make([]int, len(orders))
	for i := range orders {
		for k, c := range cums[i] {
			if float64(c)*kvPerToken > budget {
				break
			}
			caps[i] = k + 1
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("at a 1 GiB budget the schedulers fit %d (prefix-aware) vs %d (random) vs %d (worst-case) beams",
			caps[0], caps[1], caps[2]),
		"paper: prefix-aware KV grows much more slowly with batch size, supporting substantially larger batches for a fixed budget")
	return r, nil
}

// Fig18RightMemoryGain reproduces Fig 18 (right): the goodput gain of P
// and M+P over the baseline under varying available KV memory — gains
// concentrate in memory-constrained regimes.
func Fig18RightMemoryGain(o RunOpts) (*Report, error) {
	o = o.withDefaults()
	pol, err := search.New(search.BeamSearch, min(256, o.MaxN), 4)
	if err != nil {
		return nil, err
	}
	pc := pair1515()
	r := &Report{
		ID:     "18r",
		Title:  "Goodput gain vs available KV memory (AIME, 1.5B+1.5B)",
		Header: []string{"kv_gib", "gain_P_pct", "gain_MP_pct"},
	}
	// Isolate the scheduling-order effect: the baseline here caches KV
	// but schedules randomly with a static split (the Fig 18 caption's
	// "vLLM baseline uses random scheduling").
	cacheOnBase := core.Options{
		GeneratorPrefixCache: true,
		VerifierPrefixCache:  true,
		StaticVerifierFrac:   0.5,
	}
	pOpts := cacheOnBase
	pOpts.PrefixAware = true
	mpOpts := pOpts
	mpOpts.AsymmetricMemory = true
	for _, gib := range []float64{1.5, 2, 4, 14} {
		budget := int64(gib * (1 << 30))
		run := func(opts core.Options) (float64, error) {
			cfg := deployment(hw.RTX4090, pc, pol, opts, o.Seed, nil)
			cfg.KVBudgetOverride = budget
			rs, err := solveSet(cfg, workload.AIME24, o)
			if err != nil {
				return 0, err
			}
			return meanGoodput(rs), nil
		}
		base, err := run(cacheOnBase)
		if err != nil {
			return nil, err
		}
		pOnly, err := run(pOpts)
		if err != nil {
			return nil, err
		}
		mp, err := run(mpOpts)
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows, []string{
			f1(gib), f1(100 * (pOnly/base - 1)), f1(100 * (mp/base - 1)),
		})
	}
	r.Notes = append(r.Notes,
		"paper: at 1.5 GB the gains are 58% (P) and 145% (M+P); at 14 GB they shrink to ~5% — optimization value concentrates under memory pressure")
	return r, nil
}
