// Package cluster simulates a heterogeneous edge fleet serving TTS
// traffic: N per-device serving engines (each its own GPU, model pair,
// straggler factor, and admission/ordering policy) composed behind a
// pluggable Router, with fail-stop fault injection and fleet-level
// metrics.
//
// The fleet runs on the same discrete virtual time as the per-device
// engines. Devices execute concurrently — each core.Loop owns an
// independent clock — and the fleet advances them between global events
// (request arrivals and device failures) with an event-heap core: a
// stable min-heap of pending arrivals, a pre-sorted fail-stop schedule,
// and an indexed min-heap of per-device wake times, so each event steps
// only the devices it concerns and dispatch is O(log devices) instead of
// an O(devices) re-scan per event. Router load signals (device clock,
// pending population, outstanding work) are read from the loops' O(1)
// incremental indexes and cached in views refreshed only for touched
// devices, which keeps work-aware routing (least-work, JSQ, P2C, prefix
// fallback) cheap at fleet scale.
//
// A request is routed once, at its arrival instant, using the routers'
// view of live device state; when a device fail-stops, its unfinished
// requests are requeued to the surviving devices (partial work lost),
// extending the serving engine's determinism guarantee: equal seeds give
// bit-identical fleet-served streams under every router.
package cluster

import (
	"container/heap"
	"fmt"
	"sort"

	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/workload"
)

// Device describes one fleet member.
type Device struct {
	// Config is the device's deployment (GPU, model pair, search policy,
	// memory budget, seed).
	Config core.Config
	// Policy is the device's admission/ordering discipline; nil = FCFS.
	Policy sched.ServePolicy
	// Slowdown is the straggler factor: wall-clock stretch of every
	// device slice. Values below 1 (including 0) mean no slowdown.
	Slowdown float64
	// FailAt, when positive, fail-stops the device at that fleet time:
	// it finishes its in-progress slice, then every unfinished request is
	// requeued to the surviving devices and the device serves nothing
	// further.
	FailAt float64
}

// Config configures a fleet.
type Config struct {
	Devices []Device
	// Router assigns requests to devices; nil = round-robin.
	Router Router
	// Seed drives the router's private random stream (power-of-two
	// choices); device engines draw from their own Config seeds.
	Seed uint64
}

// Result is one fleet-served request: the device-level telemetry plus
// which device produced it and how often failures migrated it.
type Result struct {
	core.ServedResult
	// Device is the fleet index of the serving (or rejecting) device; -1
	// for requests lost because no device survived to serve them (they
	// come back Rejected).
	Device int
	// Requeues counts how many fail-stops displaced this request before
	// this outcome.
	Requeues int
}

// Outcome is everything a fleet run produced.
type Outcome struct {
	// Results holds per-request outcomes in fleet event order: each
	// device's completions stay in completion order, interleaved at
	// global event granularity.
	Results []Result
	// Devices is the per-device telemetry, indexed by fleet device.
	Devices []metrics.FleetDevice
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHits / PrefixMisses count prompt-prefix tokens that were /
	// were not resident in the serving device's radix cache directory.
	// Only requests a device actually served are counted — a request shed
	// by admission control prefills nothing.
	PrefixHits, PrefixMisses int64
}

// Stats reduces the outcome to fleet-level aggregates. sloLatency is the
// wall-latency target in seconds (<= 0: none).
func (o *Outcome) Stats(sloLatency float64) metrics.FleetStats {
	samples := make([]metrics.ServeSample, len(o.Results))
	for i, r := range o.Results {
		samples[i] = metrics.ServeSample{
			Arrival: r.Arrival, Start: r.Start, Finish: r.Finish,
			Tokens: r.UsefulTokens, Rejected: r.Rejected,
		}
	}
	return metrics.SummarizeFleet(metrics.FleetInput{
		Samples:      samples,
		Devices:      o.Devices,
		Requeues:     o.Requeues,
		PrefixHits:   o.PrefixHits,
		PrefixMisses: o.PrefixMisses,
		SLOLatency:   sloLatency,
	})
}

// Fleet is a configured fleet simulator. A Fleet is single-run: routers
// and device engines carry state, so build a fresh Fleet per request
// stream (the public API layer does this on every call).
type Fleet struct {
	cfg  Config
	srvs []*core.Server
	used bool
}

// New validates the configuration and builds the fleet.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one device")
	}
	if cfg.Router == nil {
		cfg.Router = &RoundRobin{}
	}
	srvs := make([]*core.Server, len(cfg.Devices))
	for i, d := range cfg.Devices {
		srv, err := core.NewServerWithPolicy(d.Config, d.Policy)
		if err != nil {
			return nil, fmt.Errorf("cluster: device %d: %w", i, err)
		}
		srvs[i] = srv
	}
	return &Fleet{cfg: cfg, srvs: srvs}, nil
}

// device is the runtime state of one fleet member.
type device struct {
	spec     Device
	loop     *core.Loop
	speed    float64
	alive    bool
	failedAt float64
	prefixes map[string]bool // prompt-prefix directory of the radix cache
	marker   map[string]int  // prefix -> tag that marked it, until confirmed
	served   int
	tokens   int64
}

// prefixAcct is the deferred hit/miss accounting of one routed request:
// counters move only once the device actually serves it — a request shed
// by admission control prefills nothing.
type prefixAcct struct {
	dev    int
	key    string
	tokens int64
	hit    bool
}

// pendingReq is one request awaiting routing. seq preserves insertion
// order among equal arrival times (stream order, then requeue order).
type pendingReq struct {
	req      core.Request
	requeues int
	seq      int
}

// Run serves the open-loop request stream and returns the fleet outcome.
// Request Tags identify requests across requeues and must be unique
// (callers typically tag by stream index); Run rejects streams with
// duplicate tags, which would silently corrupt requeue telemetry and
// prefix accounting.
//
// Run is the fleet's event loop. Global events — request arrivals and
// device fail-stops — are dispatched from heaps: a stable min-heap of
// pending arrivals, a pre-sorted fail-stop schedule, and an indexed
// min-heap of per-device wake times (the earliest horizon at which each
// device's loop would make progress). At each event only the devices
// whose wake time falls inside the event window are stepped, and the
// router's device views are refreshed incrementally for exactly the
// devices an event touched — O(events·log devices) overall instead of
// the O(events·devices) full re-scan per event.
func (f *Fleet) Run(reqs []core.Request) (*Outcome, error) {
	if f.used {
		return nil, fmt.Errorf("cluster: Fleet is single-run; build a new Fleet per stream")
	}
	f.used = true

	devs := make([]*device, len(f.cfg.Devices))
	for i, spec := range f.cfg.Devices {
		slow := spec.Slowdown
		if slow < 1 {
			slow = 1
		}
		loop := f.srvs[i].NewLoop(nil)
		loop.SetScale(slow)
		devs[i] = &device{
			spec:     spec,
			loop:     loop,
			speed:    spec.Config.GPU.MemBW * spec.Config.GPU.MemEff / slow,
			alive:    true,
			prefixes: make(map[string]bool),
			marker:   make(map[string]int),
		}
	}

	// The submitted stream is sorted once and consumed by index; only
	// failure requeues — rare, unsorted insertions — go through a heap.
	// The next arrival event is the smaller of the two heads, stream
	// first on ties (its seq is always lower).
	stream := make([]pendingReq, len(reqs))
	origArrival := make(map[int]float64, len(reqs)) // request tag -> submission time
	for i, rq := range reqs {
		if _, dup := origArrival[rq.Tag]; dup {
			return nil, fmt.Errorf(
				"cluster: duplicate request tag %d: tags identify requests across failure requeues and must be unique (tag by stream index)",
				rq.Tag)
		}
		stream[i] = pendingReq{req: rq, seq: i}
		origArrival[rq.Tag] = rq.Arrival
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].req.Arrival < stream[j].req.Arrival })
	sp := 0
	var requeued arrivalHeap
	nextSeq := len(reqs)
	// streamFirst reports whether the stream head is the next arrival
	// (shared by peek and pop so the head-selection rule cannot diverge).
	streamFirst := func() bool {
		return sp < len(stream) && (requeued.Len() == 0 || stream[sp].req.Arrival <= requeued[0].req.Arrival)
	}
	// nextArrival peeks the earliest pending arrival; popArrival removes
	// and returns it.
	nextArrival := func() (pendingReq, bool) {
		switch {
		case streamFirst():
			return stream[sp], true
		case requeued.Len() > 0:
			return requeued[0], true
		}
		return pendingReq{}, false
	}
	popArrival := func() pendingReq {
		if streamFirst() {
			pr := stream[sp]
			sp++
			return pr
		}
		return heap.Pop(&requeued).(pendingReq)
	}

	out := &Outcome{}
	routeRand := rng.New(f.cfg.Seed).Child("cluster/router")
	requeues := make(map[int]int)    // request tag -> displacement count
	acct := make(map[int]prefixAcct) // request tag -> pending prefix accounting

	// settlePrefix resolves a result's deferred prefix accounting: counts
	// the hit/miss when the device served the request, refunds the
	// optimistic directory mark when admission shed it before prefill.
	settlePrefix := func(sv core.ServedResult, dev int) {
		a, ok := acct[sv.Tag]
		if !ok || a.dev != dev {
			return
		}
		delete(acct, sv.Tag)
		d := devs[dev]
		switch {
		case !sv.Rejected && a.hit:
			out.PrefixHits += a.tokens
		case !sv.Rejected:
			out.PrefixMisses += a.tokens
			if d.marker[a.key] == sv.Tag {
				delete(d.marker, a.key) // residency confirmed
			}
		case !a.hit && d.marker[a.key] == sv.Tag:
			delete(d.prefixes, a.key) // shed before prefill: refund
			delete(d.marker, a.key)
		}
	}

	needWork := false
	if wa, ok := f.cfg.Router.(WorkAware); ok {
		needWork = wa.NeedsOutstandingWork()
	}

	// The router's device views are maintained incrementally: vs holds
	// one view per alive device in index order, posInVs maps a device
	// index to its position in vs (-1 once failed). refreshView is O(1)
	// and called only for devices an event actually touched.
	vs := make([]DeviceView, len(devs))
	posInVs := make([]int, len(devs))
	for i, d := range devs {
		vs[i] = DeviceView{Index: i, Speed: d.speed}
		posInVs[i] = i
	}
	refreshView := func(dev int) {
		p := posInVs[dev]
		if p < 0 {
			return
		}
		v := &vs[p]
		d := devs[dev]
		v.Now = d.loop.Now()
		v.Pending = d.loop.Pending()
		if needWork {
			v.OutstandingWork = d.loop.OutstandingWork()
		}
	}
	dropView := func(dev int) {
		p := posInVs[dev]
		if p < 0 {
			return
		}
		copy(vs[p:], vs[p+1:])
		vs = vs[:len(vs)-1]
		posInVs[dev] = -1
		for q := p; q < len(vs); q++ {
			posInVs[vs[q].Index] = q
		}
	}

	// wake tracks, per device, the earliest horizon at which its loop
	// would make progress; devices with nothing to do are absent and cost
	// nothing per event.
	wake := newWakeHeap(len(devs))
	updateWake := func(dev int) {
		if at, ok := devs[dev].loop.Wake(); ok {
			wake.update(dev, at)
		} else {
			wake.remove(dev)
		}
	}

	// collect steps the devices whose wake time falls within the horizon,
	// in device-index order, gathering completions. Untouched devices are
	// provably no-ops: their loops would neither run a slice, admit, nor
	// jump the clock, so their state and views are already current. A
	// requeued request keeps its original submission time in the
	// client-facing telemetry: the wait on its failed device still
	// happened.
	var dueBuf []int
	collect := func(horizon float64) error {
		dueBuf = wake.popDue(horizon, dueBuf[:0])
		for _, i := range dueBuf {
			d := devs[i]
			served, err := d.loop.StepTo(horizon)
			if err != nil {
				return fmt.Errorf("cluster: device %d: %w", i, err)
			}
			for _, sv := range served {
				settlePrefix(sv, i)
				if requeues[sv.Tag] > 0 {
					sv.Arrival = origArrival[sv.Tag]
					if !sv.Rejected {
						sv.QueueDelay = sv.Start - sv.Arrival
						sv.WallLatency = sv.Finish - sv.Arrival
					}
				}
				out.Results = append(out.Results, Result{
					ServedResult: sv, Device: i, Requeues: requeues[sv.Tag],
				})
				if !sv.Rejected {
					d.served++
					d.tokens += sv.UsefulTokens
				}
			}
			updateWake(i)
			refreshView(i)
		}
		return nil
	}

	fails := failSchedule(devs)
	fp := 0
	for {
		haveFail := fp < len(fails)
		head, haveArrival := nextArrival()
		if !haveFail && !haveArrival {
			break
		}

		// Failures at an instant take effect before arrivals at the same
		// instant: a request landing exactly at the fail time is routed to
		// the survivors.
		if haveFail && (!haveArrival || fails[fp].at <= head.req.Arrival) {
			ft, fi := fails[fp].at, fails[fp].dev
			fp++
			if err := collect(ft); err != nil {
				return nil, err
			}
			d := devs[fi]
			d.alive = false
			d.failedAt = ft
			wake.remove(fi)
			dropView(fi)
			for _, rq := range d.loop.Fail() {
				rq.Arrival = ft
				requeues[rq.Tag]++
				out.Requeues++
				heap.Push(&requeued, pendingReq{req: rq, requeues: requeues[rq.Tag], seq: nextSeq})
				nextSeq++
			}
			continue
		}

		pr := popArrival()
		at := pr.req.Arrival
		if err := collect(at); err != nil {
			return nil, err
		}
		if len(vs) == 0 {
			// Lost capacity: the whole fleet is dead. Shed the request at
			// this instant, reported against its original submission time.
			delete(acct, pr.req.Tag)
			out.Results = append(out.Results, Result{
				ServedResult: core.ServedResult{
					Arrival: origArrival[pr.req.Tag], Start: at, Finish: at,
					Rejected: true, Tag: pr.req.Tag,
				},
				Device:   -1,
				Requeues: pr.requeues,
			})
			continue
		}
		rv := RequestView{
			Tag:       pr.req.Tag,
			Arrival:   at,
			PrefixKey: prefixKey(pr.req.Problem),
			Requeued:  pr.requeues > 0,
		}
		pick := f.cfg.Router.Route(rv, vs, routeRand)
		if pick < 0 || pick >= len(vs) {
			return nil, fmt.Errorf("cluster: router %s picked %d of %d alive devices",
				f.cfg.Router.Name(), pick, len(vs))
		}
		di := vs[pick].Index
		d := devs[di]
		// Mark the directory optimistically (concurrent repeats of this
		// prompt should route as hits) but defer the counters until the
		// device actually serves the request.
		resident := d.prefixes[rv.PrefixKey]
		if !resident {
			d.prefixes[rv.PrefixKey] = true
			d.marker[rv.PrefixKey] = pr.req.Tag
		}
		acct[pr.req.Tag] = prefixAcct{
			dev: di, key: rv.PrefixKey,
			tokens: int64(pr.req.Problem.PromptTokens), hit: resident,
		}
		d.loop.Push(pr.req)
		updateWake(di)
		refreshView(di)
	}

	// No more global events: run every surviving device to completion.
	if err := collect(core.NoHorizon); err != nil {
		return nil, err
	}

	makespan := 0.0
	for _, r := range out.Results {
		if !r.Rejected && r.Finish > makespan {
			makespan = r.Finish
		}
	}
	out.Devices = make([]metrics.FleetDevice, len(devs))
	for i, d := range devs {
		life := makespan
		if !d.alive {
			if d.failedAt < life {
				life = d.failedAt
			}
			// Fail-stop is slice-granular: a final slice may overrun the
			// fail time, so the device's effective lifetime stretches to
			// its last clock tick (keeping Busy ≤ Lifetime).
			if n := d.loop.Now(); n > life {
				life = n
			}
		}
		out.Devices[i] = metrics.FleetDevice{
			Busy:     d.loop.Busy(),
			Lifetime: life,
			Served:   d.served,
			Tokens:   d.tokens,
			Failed:   !d.alive,
		}
	}
	return out, nil
}

// prefixKey identifies a request's shared prompt prefix: requests for the
// same problem share the prompt's radix-cache path.
func prefixKey(p *workload.Problem) string {
	return fmt.Sprintf("%s/%d", p.Dataset, p.Index)
}
