// Package cluster simulates a heterogeneous edge fleet serving TTS
// traffic: N per-device serving engines (each its own GPU, model pair,
// straggler factor, and admission/ordering policy) composed behind a
// pluggable Router, with fail-stop fault injection, fleet-level metrics,
// and an optional elastic control plane (internal/control) that scales
// the fleet and the per-request compute budget from observed load.
//
// The fleet runs on the same discrete virtual time as the per-device
// engines. Devices execute concurrently — each core.Loop owns an
// independent clock — and the fleet advances them between global events
// (request arrivals, device failures, warm-pool joins, and control
// ticks) with an event-heap core: a stable min-heap of pending arrivals,
// a pre-sorted fail-stop schedule, and an indexed min-heap of per-device
// wake times, so each event steps only the devices it concerns and
// dispatch is O(log devices) instead of an O(devices) re-scan per event.
// Router load signals (device clock, pending population, outstanding
// work) are read from the loops' O(1) incremental indexes and cached in
// views refreshed only for touched devices, which keeps work-aware
// routing (least-work, JSQ, P2C, prefix fallback) cheap at fleet scale.
//
// A request is routed once, at its arrival instant, using the routers'
// view of live device state; when a device fail-stops, its unfinished
// requests are requeued to the surviving devices (partial work lost),
// extending the serving engine's determinism guarantee: equal seeds give
// bit-identical fleet-served streams under every router — and, with a
// controller attached, bit-identical controller action logs.
//
// The fleet has two execution engines behind one contract. The default
// sequential event loop processes global events one at a time. With
// Config.Shards >= 2 the sharded engine (shard.go) partitions devices
// into per-shard wake heaps and advances them on parallel workers
// between cross-shard events, merging completions in the sequential
// engine's canonical order — outputs are bit-identical byte for byte,
// at any GOMAXPROCS, for every router and controller. See
// docs/ARCHITECTURE.md for the barrier protocol.
package cluster

import (
	"container/heap"
	"fmt"
	"math"
	"runtime"
	"sort"

	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/obs"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// Device describes one fleet member.
type Device struct {
	// Config is the device's deployment (GPU, model pair, search policy,
	// memory budget, seed).
	Config core.Config
	// Policy is the device's admission/ordering discipline; nil = FCFS.
	Policy sched.ServePolicy
	// Slowdown is the straggler factor: wall-clock stretch of every
	// device slice. Values below 1 (including 0) mean no slowdown.
	Slowdown float64
	// FailAt, when positive, fail-stops the device at that fleet time:
	// it finishes its in-progress slice, then every unfinished request is
	// requeued to the surviving devices and the device serves nothing
	// further.
	FailAt float64
}

// Config configures a fleet.
type Config struct {
	Devices []Device
	// Router assigns requests to devices; nil = round-robin.
	Router Router
	// Seed drives the router's private random stream (power-of-two
	// choices) and the controller's; device engines draw from their own
	// Config seeds.
	Seed uint64
	// Control, when non-nil, attaches the elastic control plane: a
	// feedback controller observing the fleet at a fixed interval and
	// actuating warm-pool joins, drains, and compute-budget tiers.
	Control *ControlConfig
	// Shards selects the execution engine: 0 or 1 runs the sequential
	// event loop, >= 2 runs the deterministic sharded engine with that
	// many device shards (worker goroutines), and any negative value
	// uses runtime.GOMAXPROCS(0) shards. Every setting produces
	// bit-identical outcomes; Shards trades wall-clock time only.
	Shards int
	// Metrics selects the latency-aggregation mode. ModeExact (the
	// default, and the golden-conformance path) retains every sample and
	// sorts once at Stats time. ModeStreaming folds completions into
	// mergeable quantile sketches as they finish — constant aggregation
	// state, percentiles within metrics.SketchRelErr of exact, and
	// bit-identical across engines and shard counts (sketch merges are
	// integer sums).
	Metrics metrics.Mode
	// SLOLatency is the wall-latency target streaming-mode SLO
	// attainment is counted against (<= 0: no target). Streaming
	// aggregation judges attainment at completion time because samples
	// are not retained, so Outcome.Stats must later be called with the
	// same target; exact mode ignores this field and uses the Stats
	// argument. The deadline strategy also derives per-request deadlines
	// from this target.
	SLOLatency float64
	// Strategy is the fleet-wide test-time-compute strategy
	// (search.ParseStrategy): full-beam and first-finish shape each
	// device's solver, deadline early-terminates requests whose SLO is
	// blown mid-solve, and hedged replicates every fresh arrival to a
	// second device and cancels the loser the instant the first copy
	// completes. nil (the default) disables strategies — behavior is
	// bit-identical to pre-strategy builds.
	Strategy search.Strategy
	// Obs, when non-nil, attaches the request-lifecycle span flight
	// recorder fleet-wide: every device's loop emits lifecycle spans
	// onto its own track (device i on Device(i), warm-pool joins
	// included), and the fleet driver emits routing decisions, requeue
	// hops, hedge placements, and control actions onto the control
	// track. nil (the default) is strictly off — no allocations, no
	// behavioral difference. Both engines emit identical per-track
	// sequences, so sequential-vs-sharded traces are bit-identical at
	// every shard count.
	Obs *obs.Recorder
}

// Result is one fleet-served request: the device-level telemetry plus
// which device produced it and how often failures migrated it.
type Result struct {
	core.ServedResult
	// Device is the fleet index of the serving (or rejecting) device; -1
	// for requests lost because no device survived to serve them (they
	// come back Rejected).
	Device int
	// Requeues counts how many fail-stops displaced this request before
	// this outcome.
	Requeues int
}

// Outcome is everything a fleet run produced.
type Outcome struct {
	// Results holds per-request outcomes in fleet event order: each
	// device's completions stay in completion order, interleaved at
	// global event granularity.
	Results []Result
	// Devices is the per-device telemetry, indexed by fleet device
	// (founding devices first, then warm-pool joins in join order).
	Devices []metrics.FleetDevice
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHits / PrefixMisses count prompt-prefix tokens that were /
	// were not resident in the serving device's radix cache directory.
	// Only requests a device actually served are counted — a request shed
	// by admission control prefills nothing.
	PrefixHits, PrefixMisses int64
	// Actions is the controller's applied-action log in decision order;
	// nil without a controller. Equal seeds give bit-identical logs.
	Actions []ActionRecord
	// Control summarizes the controller's activity; nil without one.
	Control *metrics.ControlStats
	// Serve is the streaming aggregation of the served stream; nil in
	// exact mode. It already folded every completion (against
	// Config.SLOLatency), so Stats can summarize without rescanning
	// Results.
	Serve *metrics.ServeAccum
	// Attribution is the latency-attribution rollup of the run's span
	// recorder (obs.Attribute over the merged trace); nil when the run
	// had no recorder attached.
	Attribution *metrics.AttributionStats
}

// Stats reduces the outcome to fleet-level aggregates. sloLatency is the
// wall-latency target in seconds (<= 0: none). A streaming-mode run
// whose Serve accumulator was built against the same target summarizes
// from the sketches; otherwise (exact mode, or a different target than
// the run was configured with) the Results are rescanned exactly.
func (o *Outcome) Stats(sloLatency float64) metrics.FleetStats {
	in := metrics.FleetInput{
		Devices:      o.Devices,
		Requeues:     o.Requeues,
		PrefixHits:   o.PrefixHits,
		PrefixMisses: o.PrefixMisses,
		SLOLatency:   sloLatency,
		Control:      o.Control,
		Attribution:  o.Attribution,
	}
	if o.Serve != nil && o.Serve.SLOLatency == sloLatency {
		in.Serve = o.Serve
		return metrics.SummarizeFleet(in)
	}
	in.Samples = make([]metrics.ServeSample, len(o.Results))
	for i, r := range o.Results {
		in.Samples[i] = serveSample(r)
	}
	return metrics.SummarizeFleet(in)
}

// serveSample projects one fleet result onto the metrics layer's sample.
func serveSample(r Result) metrics.ServeSample {
	return metrics.ServeSample{
		Arrival: r.Arrival, Start: r.Start, Finish: r.Finish,
		Tokens: r.UsefulTokens, Rejected: r.Rejected,
	}
}

// Fleet is a configured fleet simulator. A Fleet is single-run: routers
// and device engines carry state, so build a fresh Fleet per request
// stream (the public API layer does this on every call).
type Fleet struct {
	cfg      Config
	srvs     []*core.Server
	warmSrvs []*core.Server // one per warm-pool template (stateless, shared by instances)
	used     bool
}

// New validates the configuration and builds the fleet.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Devices) == 0 {
		return nil, fmt.Errorf("cluster: fleet needs at least one device")
	}
	mode, err := metrics.ParseMode(string(cfg.Metrics))
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	cfg.Metrics = mode
	if cfg.Router == nil {
		cfg.Router = &RoundRobin{}
	}
	if cfg.Strategy != nil && cfg.Strategy.Hedged() && len(cfg.Devices) < 2 {
		return nil, fmt.Errorf("cluster: hedged strategy needs at least 2 devices to replicate across, got %d",
			len(cfg.Devices))
	}
	srvs := make([]*core.Server, len(cfg.Devices))
	for i, d := range cfg.Devices {
		srv, err := core.NewServerWithPolicy(d.Config, d.Policy)
		if err != nil {
			return nil, fmt.Errorf("cluster: device %d: %w", i, err)
		}
		srvs[i] = srv
	}
	f := &Fleet{cfg: cfg, srvs: srvs}
	if cfg.Control != nil {
		warm, err := cfg.Control.validate(len(cfg.Devices))
		if err != nil {
			return nil, err
		}
		f.warmSrvs = warm
	}
	return f, nil
}

// device is the runtime state of one fleet member.
type device struct {
	spec     Device
	loop     *core.Loop
	speed    float64
	alive    bool            // has not fail-stopped
	failedAt float64         // fail-stop time (alive == false)
	joinAt   float64         // fleet time the device became routable (0 for founding members)
	warming  bool            // created from the warm pool, warm-up delay not yet elapsed
	dynamic  bool            // instantiated from the warm pool by the controller
	draining bool            // control plane is draining it: no new routes
	drained  bool            // drain finished: all accepted work served
	drainAt  float64         // drain decision time
	drainEnd float64         // drain completion time (last accepted work finished)
	lastBusy float64         // busy-time snapshot at the previous control tick
	prefixes map[string]bool // prompt-prefix directory of the radix cache
	marker   map[string]int  // prefix -> tag that marked it, until confirmed
	acct     map[int]prefixAcct
	served   int
	tokens   int64
}

// prefixAcct is the deferred hit/miss accounting of one routed request:
// counters move only once the device actually serves it — a request shed
// by admission control prefills nothing. Entries live in the routed
// device's own acct map (shard-owned state); a fail-stop strands its
// entries harmlessly, since a failed device never settles.
type prefixAcct struct {
	key    string
	tokens int64
	hit    bool
}

// pendingReq is one request awaiting routing. seq preserves insertion
// order among equal arrival times (stream order, then requeue order).
type pendingReq struct {
	req      core.Request
	requeues int
	seq      int
}

// run is the mutable state of one fleet event loop: the device set (which
// may grow as the control plane claims warm-pool instances), the arrival
// and failure event sources, the router's incrementally maintained device
// views, the per-device wake heap, and — when a controller is attached —
// the elastic control-plane state.
type run struct {
	f    *Fleet
	devs []*device
	out  *Outcome

	// Arrival sources: the pre-sorted submitted stream consumed by index,
	// plus a min-heap for failure requeues.
	stream      []pendingReq
	sp          int
	requeued    arrivalHeap
	nextSeq     int
	origArrival map[int]float64 // request tag -> submission time
	requeues    map[int]int     // request tag -> displacement count

	fails []failEvent
	fp    int

	routeRand *rng.Stream
	needWork  bool

	// Router device views: vs holds one view per routable device in index
	// order, posInVs maps a device index to its position in vs (-1 while
	// warming, draining, or failed).
	vs      []DeviceView
	posInVs []int

	wake   *wakeHeap // sequential engine's wake index; nil when sharded
	dueBuf []int

	sh  *shardSet          // sharded engine's state; nil when sequential
	acc metrics.FleetAccum // prefix hit/miss counters, folded into out by finish

	// Hedging state (nil / empty unless the fleet strategy hedges):
	// hedges maps an original request tag to its pair state, cancels is
	// the pending-cancellation queue consumed FIFO through cp.
	hedges  map[int]*hedgePair
	cancels []cancelEvent
	cp      int

	el *elastic // nil without a controller

	// Observability state (all nil/false without a recorder): obs is the
	// fleet recorder, ctl its control-plane track, candSpans whether
	// routing emits scored-candidate spans — only for view-reading
	// routers, whose arrivals are event barriers in both engines (the
	// sharded span fast path intentionally routes view-oblivious
	// arrivals against stale views, so candidate loads there would
	// diverge between engines; the decisions themselves never read them).
	obs       *obs.Recorder
	ctl       *obs.Track
	candSpans bool
}

// hedgePair tracks one hedged request's two copies. dev holds the fleet
// index of the device serving each slot (0 = primary, 1 = twin), -1 once
// that copy is resolved — finished, rejected, cancelled, or withdrawn by
// a fail-stop. done flips when a copy produces the request's outcome.
type hedgePair struct {
	dev  [2]int
	done bool
}

// hedging reports whether this run replicates fresh arrivals.
func (r *run) hedging() bool {
	return r.f.cfg.Strategy != nil && r.f.cfg.Strategy.Hedged()
}

// hedgeOrig resolves a (possibly twin) tag to its original client tag
// and pair slot. Twin copies run under the bit-complement tag ^tag —
// negative, reversible, and disjoint from the non-negative client space.
func hedgeOrig(tag int) (orig, slot int) {
	if tag < 0 {
		return ^tag, 1
	}
	return tag, 0
}

func (f *Fleet) newRun(reqs []core.Request) (*run, error) {
	devs := make([]*device, len(f.cfg.Devices))
	for i, spec := range f.cfg.Devices {
		devs[i] = newDevice(spec, f.srvs[i], 0)
	}

	stream := make([]pendingReq, len(reqs))
	origArrival := make(map[int]float64, len(reqs))
	for i, rq := range reqs {
		if _, dup := origArrival[rq.Tag]; dup {
			return nil, fmt.Errorf(
				"cluster: duplicate request tag %d: tags identify requests across failure requeues and must be unique (tag by stream index)",
				rq.Tag)
		}
		if rq.Tag < 0 && f.cfg.Strategy != nil && f.cfg.Strategy.Hedged() {
			return nil, fmt.Errorf(
				"cluster: hedged strategy reserves negative tags for twin copies; request tag %d must be >= 0",
				rq.Tag)
		}
		stream[i] = pendingReq{req: rq, seq: i}
		origArrival[rq.Tag] = rq.Arrival
	}
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].req.Arrival < stream[j].req.Arrival })

	r := &run{
		f:           f,
		devs:        devs,
		out:         &Outcome{},
		stream:      stream,
		nextSeq:     len(reqs),
		origArrival: origArrival,
		requeues:    make(map[int]int),
		fails:       failSchedule(devs),
		routeRand:   rng.New(f.cfg.Seed).Child("cluster/router"),
	}
	if wa, ok := f.cfg.Router.(WorkAware); ok {
		r.needWork = wa.NeedsOutstandingWork()
	}
	if f.cfg.Obs != nil {
		r.obs = f.cfg.Obs
		r.ctl = f.cfg.Obs.Control()
		vo, ok := f.cfg.Router.(ViewOblivious)
		r.candSpans = !ok || !vo.RouteViewOblivious()
		for i, d := range devs {
			d.loop.SetObs(f.cfg.Obs.Device(i))
		}
	}
	if f.cfg.Metrics == metrics.ModeStreaming {
		r.acc.EnableStreaming(f.cfg.SLOLatency)
	}
	r.vs = make([]DeviceView, len(devs))
	r.posInVs = make([]int, len(devs))
	for i, d := range devs {
		r.vs[i] = DeviceView{Index: i, Speed: d.speed, Mem: d.loop.Plane()}
		r.posInVs[i] = i
	}
	r.wake = newWakeHeap(len(devs))
	if r.hedging() {
		r.hedges = make(map[int]*hedgePair)
	}
	if f.cfg.Control != nil {
		r.el = newElastic(f, len(devs))
	}
	return r, nil
}

// newDevice builds the runtime state of one fleet member around a fresh
// serving loop.
func newDevice(spec Device, srv *core.Server, joinAt float64) *device {
	slow := spec.Slowdown
	if slow < 1 {
		slow = 1
	}
	loop := srv.NewLoop(nil)
	loop.SetScale(slow)
	return &device{
		spec:     spec,
		loop:     loop,
		speed:    spec.Config.GPU.MemBW * spec.Config.GPU.MemEff / slow,
		alive:    true,
		joinAt:   joinAt,
		prefixes: make(map[string]bool),
		marker:   make(map[string]int),
		acct:     make(map[int]prefixAcct),
	}
}

// streamFirst reports whether the stream head is the next arrival
// (shared by peek and pop so the head-selection rule cannot diverge).
func (r *run) streamFirst() bool {
	return r.sp < len(r.stream) && (r.requeued.Len() == 0 || r.stream[r.sp].req.Arrival <= r.requeued[0].req.Arrival)
}

// nextArrival peeks the earliest pending arrival; popArrival removes and
// returns it.
func (r *run) nextArrival() (pendingReq, bool) {
	switch {
	case r.streamFirst():
		return r.stream[r.sp], true
	case r.requeued.Len() > 0:
		return r.requeued[0], true
	}
	return pendingReq{}, false
}

func (r *run) popArrival() pendingReq {
	if r.streamFirst() {
		pr := r.stream[r.sp]
		r.sp++
		return pr
	}
	return heap.Pop(&r.requeued).(pendingReq)
}

// settlePrefix resolves a result's deferred prefix accounting: counts
// the hit/miss when the device served the request, refunds the
// optimistic directory mark when admission shed it before prefill. It
// touches only the device's own maps and the caller's accumulator, so
// shard workers settle their devices' results without coordination.
func (d *device) settlePrefix(sv core.ServedResult, acc *metrics.FleetAccum) {
	a, ok := d.acct[sv.Tag]
	if !ok {
		return
	}
	delete(d.acct, sv.Tag)
	switch {
	case !sv.Rejected && a.hit:
		acc.PrefixHits += a.tokens
	case !sv.Rejected:
		acc.PrefixMisses += a.tokens
		if d.marker[a.key] == sv.Tag {
			delete(d.marker, a.key) // residency confirmed
		}
	case !a.hit && d.marker[a.key] == sv.Tag:
		delete(d.prefixes, a.key) // shed before prefill: refund
		delete(d.marker, a.key)
	}
}

// buildResult turns one device completion into a fleet Result. A
// requeued request keeps its original submission time in the
// client-facing telemetry: the wait on its failed device still
// happened. Safe on shard workers: requeue maps are read-only between
// structural events.
func (r *run) buildResult(sv core.ServedResult, dev int) Result {
	if rq := r.requeues[sv.Tag]; rq > 0 {
		sv.Arrival = r.origArrival[sv.Tag]
		if !sv.Rejected {
			sv.QueueDelay = sv.Start - sv.Arrival
			sv.WallLatency = sv.Finish - sv.Arrival
		}
	}
	return Result{ServedResult: sv, Device: dev, Requeues: r.requeues[sv.Tag]}
}

// refreshView is O(1) and called only for devices an event actually
// touched.
func (r *run) refreshView(dev int) {
	p := r.posInVs[dev]
	if p < 0 {
		return
	}
	v := &r.vs[p]
	d := r.devs[dev]
	v.Now = d.loop.Now()
	v.Pending = d.loop.Pending()
	if r.needWork {
		v.OutstandingWork = d.loop.OutstandingWork()
	}
	if v.Mem != nil {
		v.CacheOccupancy = v.Mem.OccupiedFraction()
	}
}

func (r *run) dropView(dev int) {
	p := r.posInVs[dev]
	if p < 0 {
		return
	}
	copy(r.vs[p:], r.vs[p+1:])
	r.vs = r.vs[:len(r.vs)-1]
	r.posInVs[dev] = -1
	for q := p; q < len(r.vs); q++ {
		r.posInVs[r.vs[q].Index] = q
	}
}

// updateWake, wakeRemove, wakeGrow, and wakeLen address whichever wake
// index drives this run: the sequential engine's single heap or the
// sharded engine's per-shard heaps.
func (r *run) updateWake(dev int) {
	if r.sh != nil {
		r.sh.updateWakeLocal(r, r.sh.shardOf(dev), dev)
		return
	}
	if at, ok := r.devs[dev].loop.Wake(); ok {
		r.wake.update(dev, at)
	} else {
		r.wake.remove(dev)
	}
}

func (r *run) wakeRemove(dev int) {
	if r.sh != nil {
		r.sh.wakeRemove(dev)
		return
	}
	r.wake.remove(dev)
}

func (r *run) wakeGrow(n int) {
	if r.sh != nil {
		r.sh.wakeGrow(n)
		return
	}
	r.wake.grow(n)
}

func (r *run) wakeLen() int {
	if r.sh != nil {
		return r.sh.wakeLen()
	}
	return r.wake.Len()
}

// collect steps the devices whose wake time falls within the horizon, in
// device-index order, gathering completions. Untouched devices are
// provably no-ops: their loops would neither run a slice, admit, nor
// jump the clock, so their state and views are already current. A
// requeued request keeps its original submission time in the
// client-facing telemetry: the wait on its failed device still happened.
func (r *run) collect(horizon float64) error {
	r.dueBuf = r.wake.popDue(horizon, r.dueBuf[:0])
	for _, i := range r.dueBuf {
		d := r.devs[i]
		served, err := d.loop.StepTo(horizon)
		if err != nil {
			return fmt.Errorf("cluster: device %d: %w", i, err)
		}
		for _, sv := range served {
			r.deliver(i, sv)
		}
		if d.draining && !d.drained && d.loop.Idle() {
			// All accepted work served: the drain completes and the device
			// leaves the fleet.
			d.drained = true
			d.drainEnd = math.Max(d.drainAt, d.loop.Now())
		}
		r.updateWake(i)
		r.refreshView(i)
	}
	return nil
}

// deliver settles and publishes one device completion. Under a hedged
// strategy the result first passes the hedge filter: the first copy to
// complete wins the request (scheduling a cancellation for its twin),
// later copies are swallowed. Losers still settle their deferred prefix
// accounting — the device work was real — but never count as served.
// Both engines call deliver in the canonical completion-merge order, so
// hedge resolution is bit-identical across engines and shard counts.
func (r *run) deliver(dev int, sv core.ServedResult) {
	d := r.devs[dev]
	d.settlePrefix(sv, &r.acc)
	if r.hedging() {
		out, ok := r.filterHedge(sv)
		if !ok {
			return
		}
		sv = out
	}
	res := r.buildResult(sv, dev)
	r.out.Results = append(r.out.Results, res)
	if r.acc.Streaming() {
		r.acc.AddSample(0, serveSample(res))
	}
	if !sv.Rejected {
		d.served++
		d.tokens += sv.UsefulTokens
	}
	if r.el != nil {
		// Observe the settled result (requeue-adjusted arrival and
		// latencies), not the raw device completion: the control window
		// must see the client-perceived telemetry, and the sharded
		// engine already observes the built result — feeding the raw
		// one here would let the engines' control signals drift apart
		// on requeued requests.
		r.el.observe(res.ServedResult, d)
	}
}

// filterHedge resolves one completion against the hedge state. The
// returned result carries the original client tag; ok=false swallows
// the completion (a losing or redundant copy). The first completion
// wins; a rejection only resolves the request once both copies are
// lost, so one device shedding a copy never rejects a request its twin
// can still serve.
func (r *run) filterHedge(sv core.ServedResult) (core.ServedResult, bool) {
	orig, slot := hedgeOrig(sv.Tag)
	pair, ok := r.hedges[orig]
	if !ok {
		// Never replicated: a requeued request, or one routed while the
		// fleet had a single survivor. Passes through untouched.
		return sv, true
	}
	if sv.Rejected {
		pair.dev[slot] = -1
		if pair.done || pair.dev[1-slot] >= 0 {
			return sv, false // the other copy answered, or still may
		}
		pair.done = true
		sv.Tag = orig
		return sv, true
	}
	if pair.done {
		// The twin already answered; this copy ran to completion before
		// its cancellation landed (cancels apply at event granularity).
		pair.dev[slot] = -1
		return sv, false
	}
	pair.done = true
	winDev := pair.dev[slot]
	pair.dev[slot] = -1
	// Record which copy the fleet actually delivered: within one event
	// window completions merge in device-index order, so the winner is
	// not always the earliest finish instant — the attribution pass
	// needs the resolution, not a guess.
	r.ctl.Emit(obs.Span{Kind: obs.KindHedgeWin, Tag: sv.Tag,
		Start: sv.Finish, End: sv.Finish, V1: float64(winDev)})
	if od := pair.dev[1-slot]; od >= 0 {
		pair.dev[1-slot] = -1
		loserTag := orig
		if slot == 0 {
			loserTag = ^orig
		}
		r.cancels = append(r.cancels, cancelEvent{at: sv.Finish, dev: od, tag: loserTag})
	}
	sv.Tag = orig
	return sv, true
}

// cancelAt is the time of the next pending cancellation (meaningful
// only while cp is in range).
func (r *run) cancelAt() float64 {
	if r.cp < len(r.cancels) {
		return r.cancels[r.cp].at
	}
	return 0
}

// applyCancel releases a hedge loser: the device's loop drops the
// tagged work — queued or mid-flight, along with its session, in-flight
// slot, load-index contribution, and memory-plane decode state — the
// deferred prefix accounting is unwound (a cancelled copy never counts
// as served), and the freed capacity becomes visible to the router and
// controller immediately.
func (r *run) applyCancel(ce cancelEvent) {
	d := r.devs[ce.dev]
	if !d.alive {
		return // the fail-stop already withdrew the work
	}
	started, ok := d.loop.Cancel(ce.tag)
	if !ok {
		return // the copy already completed (and was swallowed)
	}
	if r.ctl != nil {
		r.ctl.Emit(obs.Span{Kind: obs.KindCancelReq, Tag: ce.tag, Start: ce.at, End: ce.at,
			V1: float64(ce.dev), Flag: started})
	}
	if a, found := d.acct[ce.tag]; found {
		delete(d.acct, ce.tag)
		if d.marker[a.key] == ce.tag {
			if started {
				delete(d.marker, a.key) // prefill happened: residency confirmed
			} else {
				delete(d.prefixes, a.key) // never prefilled: refund the mark
				delete(d.marker, a.key)
			}
		}
	}
	if d.draining && !d.drained && d.loop.Idle() {
		d.drained = true
		d.drainEnd = math.Max(d.drainAt, d.loop.Now())
	}
	r.updateWake(ce.dev)
	r.refreshView(ce.dev)
}

// failDevice applies one fail-stop: the device leaves the routable set
// and its unfinished requests requeue to the survivors. Withdrawn
// hedge copies requeue only when they were the last copy standing of an
// unanswered request — and then exactly once, under the original tag.
func (r *run) failDevice(ft float64, fi int) {
	d := r.devs[fi]
	d.alive = false
	d.failedAt = ft
	r.wakeRemove(fi)
	r.dropView(fi)
	requeued := 0
	for _, rq := range d.loop.Fail() {
		if r.hedging() {
			orig, slot := hedgeOrig(rq.Tag)
			if r.dropHedgedCopy(orig, slot) {
				continue
			}
			rq.Tag = orig
		}
		rq.Arrival = ft
		r.requeues[rq.Tag]++
		r.out.Requeues++
		heap.Push(&r.requeued, pendingReq{req: rq, requeues: r.requeues[rq.Tag], seq: r.nextSeq})
		r.nextSeq++
		requeued++
		if r.ctl != nil {
			r.ctl.Emit(obs.Span{Kind: obs.KindRequeue, Tag: rq.Tag, Start: ft, End: ft, V1: float64(fi)})
		}
	}
	if r.ctl != nil {
		r.ctl.Emit(obs.Span{Kind: obs.KindFailDev, Start: ft, End: ft, V1: float64(fi), N: requeued})
	}
}

// dropHedgedCopy records that a fail-stop withdrew one copy of a hedged
// request. It reports true when the copy is simply dropped — the
// request was already answered, or its twin is still serving — and
// false when the withdrawn copy was the last one standing of an
// unanswered request, which must then requeue under its original tag.
// In the requeue case the pair is retired so the requeued run passes
// the hedge filter untouched.
func (r *run) dropHedgedCopy(orig, slot int) bool {
	pair, ok := r.hedges[orig]
	if !ok {
		return false // never hedged (e.g. already a requeue): requeue normally
	}
	pair.dev[slot] = -1
	if pair.done || pair.dev[1-slot] >= 0 {
		return true
	}
	delete(r.hedges, orig)
	return false
}

// routeArrival routes one pending request at its arrival instant.
func (r *run) routeArrival(pr pendingReq) error {
	at := pr.req.Arrival
	if len(r.vs) == 0 {
		// Lost capacity: no routable device (all failed or drained). Shed
		// the request at this instant, reported against its original
		// submission time. (Any stale acct entry for a requeued request
		// is stranded on its failed device and never settles.)
		res := Result{
			ServedResult: core.ServedResult{
				Arrival: r.origArrival[pr.req.Tag], Start: at, Finish: at,
				Rejected: true, Tag: pr.req.Tag,
			},
			Device:   -1,
			Requeues: pr.requeues,
		}
		r.out.Results = append(r.out.Results, res)
		if r.acc.Streaming() {
			r.acc.AddSample(0, serveSample(res))
		}
		if r.el != nil {
			r.el.win.Rejected++
		}
		if r.ctl != nil {
			r.ctl.Emit(obs.Span{Kind: obs.KindShed, Tag: pr.req.Tag, Start: at, End: at, N: pr.requeues})
		}
		return nil
	}
	rv := RequestView{
		Tag:          pr.req.Tag,
		Arrival:      at,
		PrefixKey:    prefixKey(pr.req.Problem),
		PromptTokens: pr.req.Problem.PromptTokens,
		Requeued:     pr.requeues > 0,
	}
	pick := r.f.cfg.Router.Route(rv, r.vs, r.routeRand)
	if pick < 0 || pick >= len(r.vs) {
		return fmt.Errorf("cluster: router %s picked %d of %d alive devices",
			r.f.cfg.Router.Name(), pick, len(r.vs))
	}
	di := r.vs[pick].Index
	r.emitRoute(rv.Tag, at, di)
	r.applyStrategy(&pr.req, di)
	r.pushTo(di, pr.req, rv.PrefixKey)
	if r.hedging() && pr.requeues == 0 && len(r.vs) >= 2 {
		return r.routeTwin(pr.req, rv, pick)
	}
	return nil
}

// emitRoute records one routing decision on the control track: the
// scored candidates (view-reading routers only, whose arrivals are
// event barriers in both engines — see run.candSpans), then the pick.
// Shared by the sequential route path and the sharded span pre-route so
// both engines emit the identical control-track sequence.
func (r *run) emitRoute(tag int, at float64, di int) {
	if r.ctl == nil {
		return
	}
	if r.candSpans {
		for _, v := range r.vs {
			r.ctl.Emit(obs.Span{Kind: obs.KindRouteCand, Tag: tag, Start: at, End: at,
				N: v.Index, V1: v.OutstandingWork, V2: float64(v.Pending)})
		}
	}
	r.ctl.Emit(obs.Span{Kind: obs.KindRoute, Tag: tag, Start: at, End: at,
		V1: float64(di), N: len(r.vs)})
}

// applyStrategy stamps the request's effective strategy at routing: the
// fleet strategy, re-derived on every routing (requeues included) so a
// budget-governor degradation is never sticky across a fail-stop
// migration, then handed to the governor, which may degrade both the
// width and the strategy at its current tier. The deadline strategy
// derives the request's deadline from the fleet SLO, measured from the
// original submission so a requeued request's deadline does not reset.
// Shared verbatim by the sequential route path and the sharded span
// pre-route so both engines stamp identical requests.
func (r *run) applyStrategy(rq *core.Request, di int) {
	if st := r.f.cfg.Strategy; st != nil {
		rq.Strategy = st
	}
	if r.el != nil {
		r.el.budget(rq, r.devs[di])
	}
	if st := rq.Strategy; st != nil && st.CutAtDeadline() && rq.Deadline == 0 && r.f.cfg.SLOLatency > 0 {
		rq.Deadline = r.origArrival[rq.Tag] + r.f.cfg.SLOLatency
	}
}

// pushTo marks the device's prefix directory optimistically (concurrent
// repeats of this prompt should route as hits), defers the hit/miss
// counters until the device actually serves the request, and hands the
// request to the device's loop.
func (r *run) pushTo(di int, rq core.Request, key string) {
	d := r.devs[di]
	resident := d.prefixes[key]
	if !resident {
		d.prefixes[key] = true
		d.marker[key] = rq.Tag
	}
	d.acct[rq.Tag] = prefixAcct{
		key:    key,
		tokens: int64(rq.Problem.PromptTokens), hit: resident,
	}
	d.loop.Push(rq)
	r.updateWake(di)
	r.refreshView(di)
}

// routeTwin replicates a hedged request to a second device: the router
// picks again over the alive view with the primary excluded, and the
// copy runs under the bit-complement twin tag. The twin inherits the
// primary's budgeted width, strategy, and deadline, so the two copies
// run the identical solve and only placement differs.
func (r *run) routeTwin(rq core.Request, rv RequestView, primaryPick int) error {
	twinVs := make([]DeviceView, 0, len(r.vs)-1)
	twinVs = append(twinVs, r.vs[:primaryPick]...)
	twinVs = append(twinVs, r.vs[primaryPick+1:]...)
	orig := rq.Tag
	rq.Tag = ^orig
	rv.Tag = rq.Tag
	pick := r.f.cfg.Router.Route(rv, twinVs, r.routeRand)
	if pick < 0 || pick >= len(twinVs) {
		return fmt.Errorf("cluster: router %s picked %d of %d alive devices",
			r.f.cfg.Router.Name(), pick, len(twinVs))
	}
	ti := twinVs[pick].Index
	if r.ctl != nil {
		if r.candSpans {
			for _, v := range twinVs {
				r.ctl.Emit(obs.Span{Kind: obs.KindRouteCand, Tag: rq.Tag, Start: rv.Arrival, End: rv.Arrival,
					N: v.Index, V1: v.OutstandingWork, V2: float64(v.Pending)})
			}
		}
		r.ctl.Emit(obs.Span{Kind: obs.KindRoute, Tag: rq.Tag, Start: rv.Arrival, End: rv.Arrival,
			V1: float64(ti), N: len(twinVs)})
		r.ctl.Emit(obs.Span{Kind: obs.KindHedge, Tag: orig, Start: rv.Arrival, End: rv.Arrival,
			V1: float64(r.vs[primaryPick].Index), V2: float64(ti)})
	}
	r.hedges[orig] = &hedgePair{dev: [2]int{r.vs[primaryPick].Index, ti}}
	r.pushTo(ti, rq, rv.PrefixKey)
	return nil
}

// Run serves the open-loop request stream and returns the fleet outcome.
// Request Tags identify requests across requeues and must be unique
// (callers typically tag by stream index); Run rejects streams with
// duplicate tags, which would silently corrupt requeue telemetry and
// prefix accounting.
//
// Run is the fleet's event loop. Global events — request arrivals,
// device fail-stops, warm-pool joins, and control ticks — are dispatched
// from heaps: a stable min-heap of pending arrivals, a pre-sorted
// fail-stop schedule, and an indexed min-heap of per-device wake times
// (the earliest horizon at which each device's loop would make
// progress). At each event only the devices whose wake time falls inside
// the event window are stepped, and the router's device views are
// refreshed incrementally for exactly the devices an event touched —
// O(events·log devices) overall instead of the O(events·devices) full
// re-scan per event.
//
// With Config.Shards >= 2, Run dispatches to the sharded engine
// (shard.go), which produces bit-identical outcomes while advancing
// device shards on parallel workers between cross-shard events.
func (f *Fleet) Run(reqs []core.Request) (*Outcome, error) {
	if f.used {
		return nil, fmt.Errorf("cluster: Fleet is single-run; build a new Fleet per stream")
	}
	f.used = true
	r, err := f.newRun(reqs)
	if err != nil {
		return nil, err
	}
	if ns := f.shards(); ns > 1 {
		// Swap the wake index before any device has an entry: the sharded
		// engine owns per-shard heaps instead of the single heap.
		r.wake = nil
		r.sh = newShardSet(r, ns)
		return f.runSharded(r)
	}

	for {
		head, haveArrival := r.nextArrival()
		bestAt, bestKind := 0.0, -1
		consider := func(at float64, kind int, have bool) {
			if have && (bestKind < 0 || at < bestAt || (at == bestAt && kind < bestKind)) {
				bestAt, bestKind = at, kind
			}
		}
		if r.el != nil {
			consider(r.el.nextJoin())
			consider(r.el.nextTickEvent(r, haveArrival))
		}
		consider(r.failAt(), evFail, r.fp < len(r.fails))
		consider(r.cancelAt(), evCancel, r.cp < len(r.cancels))
		consider(head.req.Arrival, evArrival, haveArrival)
		if bestKind < 0 {
			break
		}
		if err := r.collect(bestAt); err != nil {
			return nil, err
		}
		switch bestKind {
		case evJoin:
			r.el.completeJoin(r)
		case evFail:
			ft, fi := r.fails[r.fp].at, r.fails[r.fp].dev
			r.fp++
			r.failDevice(ft, fi)
		case evCancel:
			r.applyCancel(r.cancels[r.cp])
			r.cp++
		case evTick:
			r.el.tick(r, bestAt)
		case evArrival:
			if err := r.routeArrival(r.popArrival()); err != nil {
				return nil, err
			}
		}
	}

	// No more global events: run every surviving device to completion.
	if err := r.drain(); err != nil {
		return nil, err
	}
	r.finish()
	return r.out, nil
}

// drain runs every surviving device to completion after the last global
// event. Without hedging a single unbounded collect suffices; with
// hedging the tail advances one wake at a time, applying the pending
// cancellations between steps, so a winner completing in the drain
// still releases its loser at slice granularity instead of letting it
// run to the end.
func (r *run) drain() error {
	if !r.hedging() {
		if r.sh != nil {
			return r.sh.collect(r, core.NoHorizon)
		}
		return r.collect(core.NoHorizon)
	}
	for {
		for r.cp < len(r.cancels) {
			r.applyCancel(r.cancels[r.cp])
			r.cp++
		}
		at, ok := r.nextWake()
		if !ok {
			return nil
		}
		// A busy loop's wake time is its current clock, and StepTo is a
		// no-op at a horizon equal to the clock — nudge the horizon one
		// ulp past the earliest wake so every round advances at least one
		// atomic slice (the slice in progress finishes past the horizon
		// by the StepTo contract).
		horizon := math.Nextafter(at, math.Inf(1))
		if r.sh != nil {
			if err := r.sh.collect(r, horizon); err != nil {
				return err
			}
		} else if err := r.collect(horizon); err != nil {
			return err
		}
	}
}

// nextWake is the earliest pending device wake across whichever wake
// index drives this run.
func (r *run) nextWake() (float64, bool) {
	if r.sh != nil {
		return r.sh.wakeMin()
	}
	return r.wake.min()
}

// shards resolves Config.Shards: <0 means one shard per available core,
// 0 and 1 select the sequential engine.
func (f *Fleet) shards() int {
	if f.cfg.Shards < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return f.cfg.Shards
}

// failAt is the time of the next scheduled fail-stop (meaningful only
// while fp is in range).
func (r *run) failAt() float64 {
	if r.fp < len(r.fails) {
		return r.fails[r.fp].at
	}
	return 0
}

// finish assembles the per-device telemetry: each device's live interval
// runs from its join time to its fail-stop, drain completion, or the
// fleet makespan.
func (r *run) finish() {
	makespan := 0.0
	for _, res := range r.out.Results {
		if !res.Rejected && res.Finish > makespan {
			makespan = res.Finish
		}
	}
	r.out.Devices = make([]metrics.FleetDevice, len(r.devs))
	for i, d := range r.devs {
		end := makespan
		switch {
		case !d.alive:
			if d.failedAt < end {
				end = d.failedAt
			}
			// Fail-stop is slice-granular: a final slice may overrun the
			// fail time, so the device's effective lifetime stretches to
			// its last clock tick (keeping Busy ≤ Lifetime).
			if n := d.loop.Now(); n > end {
				end = n
			}
		case d.drained:
			end = d.drainEnd
		case d.warming:
			// Claimed from the warm pool but the run ended before its
			// warm-up elapsed: it never served and never cost live time.
			end = d.joinAt
		}
		life := end - d.joinAt
		if life < 0 {
			life = 0
		}
		ps := d.loop.PlaneStats()
		r.out.Devices[i] = metrics.FleetDevice{
			Busy:      d.loop.Busy(),
			Lifetime:  life,
			LiveStart: d.joinAt,
			Served:    d.served,
			Tokens:    d.tokens,
			Failed:    !d.alive,
			Drained:   d.drained,

			CacheCapacityTokens: ps.CapacityTokens,
			CacheUsedTokens:     ps.UsedTokens,
			CacheHitTokens:      ps.HitTokens,
			CacheMissTokens:     ps.MissTokens,
			CacheEvictedTokens:  ps.EvictedTokens,
			ReprefillSeconds:    ps.ReprefillSeconds,
		}
	}
	r.out.PrefixHits = r.acc.PrefixHits
	r.out.PrefixMisses = r.acc.PrefixMisses
	r.out.Serve = r.acc.Serve()
	if r.el != nil {
		r.el.finish(r.out)
	}
	if r.obs != nil {
		// Latency attribution runs once, on the driver, over the merged
		// span stream — after every worker has joined, so the read is
		// ordered by the barrier protocol.
		st := obs.Summarize(obs.Attribute(r.obs.Spans()))
		r.acc.Attr = st
		r.out.Attribution = &st
	}
}

// prefixKey identifies a request's shared prompt prefix: requests for the
// same problem share the prompt's radix-cache path.
func prefixKey(p *workload.Problem) string {
	return fmt.Sprintf("%s/%d", p.Dataset, p.Index)
}
