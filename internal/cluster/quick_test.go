package cluster

import (
	"flag"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// The fleet property tests are randomized. Override the seed from the
// command line to reproduce a failure:
//
//	go test ./internal/cluster -quick.seed=12345
var quickSeed = flag.Int("quick.seed", int(time.Now().UnixNano())%100000, "seed for fleet property tests")

// qc builds the testing/quick configuration from -quick.seed.
func qc(t *testing.T, maxCount int) *quick.Config {
	t.Helper()
	t.Logf("quick.seed=%d", *quickSeed)
	return &quick.Config{
		MaxCount: maxCount,
		Rand:     rand.New(rand.NewSource(int64(*quickSeed))),
	}
}

// fleetCase is one randomized fleet scenario: a heterogeneous device set
// with optional stragglers and fail-stops, a random request stream, and a
// random router.
type fleetCase struct {
	GPUs      []int     // device GPU picks (index into the device table)
	Slowdowns []float64 // per-device straggler factors
	FailAts   []float64 // per-device fail times (0 = never)
	Probs     []int     // request problem picks
	Arrivals  []float64 // request arrival times (non-decreasing)
	Router    int       // index into RouterNames()
}

func (fleetCase) Generate(r *rand.Rand, _ int) reflect.Value {
	gpus := []hw.GPU{hw.RTX4090, hw.RTX4070Ti, hw.RTX3070Ti}
	nd := 1 + r.Intn(3)
	c := fleetCase{Router: r.Intn(len(RouterNames()))}
	for i := 0; i < nd; i++ {
		c.GPUs = append(c.GPUs, r.Intn(len(gpus)))
		slow := 1.0
		if r.Intn(3) == 0 {
			slow = 1 + 2*r.Float64()
		}
		c.Slowdowns = append(c.Slowdowns, slow)
		fail := 0.0
		if r.Intn(3) == 0 {
			fail = 1 + 30*r.Float64() // early enough to interrupt work
		}
		c.FailAts = append(c.FailAts, fail)
	}
	nr := 1 + r.Intn(8)
	at := 0.0
	for i := 0; i < nr; i++ {
		c.Probs = append(c.Probs, r.Intn(6))
		at += 6 * r.Float64()
		c.Arrivals = append(c.Arrivals, at)
	}
	return reflect.ValueOf(c)
}

// TestEveryRouterPreservesRequestMultiset is the fleet's conservation
// law: under random arrivals, stragglers, fail-stops, and requeues, no
// router loses or duplicates a request — every submitted request comes
// back exactly once, served or rejected, and its telemetry is sane.
func TestEveryRouterPreservesRequestMultiset(t *testing.T) {
	gpus := []hw.GPU{hw.RTX4090, hw.RTX4070Ti, hw.RTX3070Ti}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	prop := func(c fleetCase) bool {
		var devices []Device
		for i := range c.GPUs {
			devices = append(devices, Device{
				Config:   devConfig(t, gpus[c.GPUs[i]], 4, uint64(40+i)),
				Slowdown: c.Slowdowns[i],
				FailAt:   c.FailAts[i],
			})
		}
		reqs := make([]core.Request, len(c.Probs))
		for i, pi := range c.Probs {
			reqs[i] = core.Request{Problem: ds.Problems[pi], Arrival: c.Arrivals[i], Tag: i}
		}
		router, err := RouterByName(RouterNames()[c.Router])
		if err != nil {
			t.Log(err)
			return false
		}
		f, err := New(Config{Devices: devices, Router: router, Seed: 3})
		if err != nil {
			t.Log(err)
			return false
		}
		out, err := f.Run(reqs)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(out.Results) != len(reqs) {
			t.Logf("router %s: %d results for %d requests", router.Name(), len(out.Results), len(reqs))
			return false
		}
		seen := make(map[int]int)
		for _, r := range out.Results {
			seen[r.Tag]++
			switch {
			case r.Rejected && r.Result != nil:
				t.Logf("router %s: rejected request %d carries a Result", router.Name(), r.Tag)
				return false
			case !r.Rejected && r.Result == nil:
				t.Logf("router %s: served request %d missing its Result", router.Name(), r.Tag)
				return false
			case !r.Rejected && (r.Start < r.Arrival || r.Finish < r.Start):
				t.Logf("router %s: request %d times out of order: %v %v %v",
					router.Name(), r.Tag, r.Arrival, r.Start, r.Finish)
				return false
			case !r.Rejected && (r.Device < 0 || r.Device >= len(devices)):
				t.Logf("router %s: request %d served by device %d of %d",
					router.Name(), r.Tag, r.Device, len(devices))
				return false
			case r.Requeues < 0 || (r.Requeues > 0 && out.Requeues == 0):
				t.Logf("router %s: request %d requeue count %d inconsistent with total %d",
					router.Name(), r.Tag, r.Requeues, out.Requeues)
				return false
			}
		}
		for i := range reqs {
			if seen[i] != 1 {
				t.Logf("router %s: request %d reported %d times", router.Name(), i, seen[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t, 60)); err != nil {
		t.Error(err)
	}
}

// hedgedCase extends fleetCase with the picks the hedged strategy
// needs: a GPU for the extra device that guarantees the >= 2-device
// replication floor, and whether the quiet-by-construction stream gets
// compressed arrivals (more in-flight overlap, more live cancels).
type hedgedCase struct {
	Fleet    fleetCase
	Extra    int  // GPU pick for the replication-floor device
	Compress bool // halve arrival gaps to force overlapping twins
}

func (hedgedCase) Generate(r *rand.Rand, size int) reflect.Value {
	fc := fleetCase{}.Generate(r, size).Interface().(fleetCase)
	return reflect.ValueOf(hedgedCase{Fleet: fc, Extra: r.Intn(3), Compress: r.Intn(2) == 0})
}

// TestHedgedCancellationPreservesRequestMultiset extends the
// conservation law to the hedged strategy: every arrival is replicated
// to a twin device and the loser is cancelled mid-flight, composed with
// random stragglers, fail-stops (which requeue or withdraw hedge
// copies), and every router. The served stream must still carry each
// submitted tag exactly once, under the original (non-negative) tag,
// with sane telemetry — no lost winners, duplicated twins, or leaked
// internal twin tags.
func TestHedgedCancellationPreservesRequestMultiset(t *testing.T) {
	gpus := []hw.GPU{hw.RTX4090, hw.RTX4070Ti, hw.RTX3070Ti}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	prop := func(hc hedgedCase) bool {
		c := hc.Fleet
		var devices []Device
		for i := range c.GPUs {
			devices = append(devices, Device{
				Config:   devConfig(t, gpus[c.GPUs[i]], 4, uint64(40+i)),
				Slowdown: c.Slowdowns[i],
				FailAt:   c.FailAts[i],
			})
		}
		if len(devices) < 2 {
			// Hedging validates a >= 2-device fleet; keep the extra device
			// fault-free so at least one replica target always exists.
			devices = append(devices, Device{Config: devConfig(t, gpus[hc.Extra], 4, uint64(60))})
		}
		reqs := make([]core.Request, len(c.Probs))
		for i, pi := range c.Probs {
			at := c.Arrivals[i]
			if hc.Compress {
				at /= 2
			}
			reqs[i] = core.Request{Problem: ds.Problems[pi], Arrival: at, Tag: i}
		}
		router, err := RouterByName(RouterNames()[c.Router])
		if err != nil {
			t.Log(err)
			return false
		}
		f, err := New(Config{Devices: devices, Router: router, Seed: 3, Strategy: search.Hedged{}})
		if err != nil {
			t.Log(err)
			return false
		}
		out, err := f.Run(reqs)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(out.Results) != len(reqs) {
			t.Logf("router %s: %d results for %d hedged requests", router.Name(), len(out.Results), len(reqs))
			return false
		}
		seen := make(map[int]int)
		for _, r := range out.Results {
			seen[r.Tag]++
			switch {
			case r.Tag < 0:
				t.Logf("router %s: internal twin tag %d leaked into the served stream", router.Name(), r.Tag)
				return false
			case r.Rejected && r.Result != nil:
				t.Logf("router %s: rejected request %d carries a Result", router.Name(), r.Tag)
				return false
			case !r.Rejected && r.Result == nil:
				t.Logf("router %s: served request %d missing its Result", router.Name(), r.Tag)
				return false
			case !r.Rejected && (r.Start < r.Arrival || r.Finish < r.Start):
				t.Logf("router %s: request %d times out of order: %v %v %v",
					router.Name(), r.Tag, r.Arrival, r.Start, r.Finish)
				return false
			case !r.Rejected && (r.Device < 0 || r.Device >= len(devices)):
				t.Logf("router %s: request %d served by device %d of %d",
					router.Name(), r.Tag, r.Device, len(devices))
				return false
			}
		}
		for i := range reqs {
			if seen[i] != 1 {
				t.Logf("router %s: hedged request %d reported %d times", router.Name(), i, seen[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t, 60)); err != nil {
		t.Error(err)
	}
}

// elasticCase extends fleetCase with a randomized controller schedule:
// a random policy, control interval, warm-pool size, and warm-up delay.
type elasticCase struct {
	Fleet      fleetCase
	Controller int     // index into control.Names()
	Interval   float64 // control period
	WarmCount  int     // warm-pool templates
	Warmup     float64 // join warm-up delay
	MaxTier    int
}

func (elasticCase) Generate(r *rand.Rand, size int) reflect.Value {
	fc := fleetCase{}.Generate(r, size).Interface().(fleetCase)
	return reflect.ValueOf(elasticCase{
		Fleet:      fc,
		Controller: r.Intn(len(control.Names())),
		Interval:   0.5 + 10*r.Float64(),
		WarmCount:  r.Intn(3),
		Warmup:     3 * r.Float64(),
		MaxTier:    r.Intn(3),
	})
}

// TestDynamicMembershipPreservesRequestMultiset extends the conservation
// law to the elastic control plane: under randomized controller
// schedules — joins mid-stream, drains, budget-tier moves — composed
// with random stragglers and fail-stops, no admitted request is ever
// lost or duplicated, and drained devices never serve requests routed
// after their drain.
func TestDynamicMembershipPreservesRequestMultiset(t *testing.T) {
	gpus := []hw.GPU{hw.RTX4090, hw.RTX4070Ti, hw.RTX3070Ti}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	prop := func(ec elasticCase) bool {
		c := ec.Fleet
		var devices []Device
		for i := range c.GPUs {
			devices = append(devices, Device{
				Config:   devConfig(t, gpus[c.GPUs[i]], 4, uint64(40+i)),
				Slowdown: c.Slowdowns[i],
				FailAt:   c.FailAts[i],
			})
		}
		var warm []Device
		for i := 0; i < ec.WarmCount; i++ {
			warm = append(warm, Device{Config: devConfig(t, gpus[i%len(gpus)], 4, uint64(70+i))})
		}
		reqs := make([]core.Request, len(c.Probs))
		for i, pi := range c.Probs {
			reqs[i] = core.Request{Problem: ds.Problems[pi], Arrival: c.Arrivals[i], Tag: i}
		}
		router, err := RouterByName(RouterNames()[c.Router])
		if err != nil {
			t.Log(err)
			return false
		}
		ctl, err := control.ByName(control.Names()[ec.Controller])
		if err != nil {
			t.Log(err)
			return false
		}
		f, err := New(Config{Devices: devices, Router: router, Seed: 3, Control: &ControlConfig{
			Controller:  ctl,
			Interval:    ec.Interval,
			Warm:        warm,
			WarmupDelay: ec.Warmup,
			MaxTier:     ec.MaxTier,
			SLOLatency:  60,
		}})
		if err != nil {
			t.Log(err)
			return false
		}
		out, err := f.Run(reqs)
		if err != nil {
			t.Log(err)
			return false
		}
		if len(out.Results) != len(reqs) {
			t.Logf("%s/%s: %d results for %d requests", router.Name(), ctl.Name(), len(out.Results), len(reqs))
			return false
		}
		seen := make(map[int]int)
		for _, r := range out.Results {
			seen[r.Tag]++
			switch {
			case r.Rejected && r.Result != nil:
				t.Logf("rejected request %d carries a Result", r.Tag)
				return false
			case !r.Rejected && r.Result == nil:
				t.Logf("served request %d missing its Result", r.Tag)
				return false
			case !r.Rejected && (r.Device < 0 || r.Device >= len(out.Devices)):
				t.Logf("request %d served by device %d of %d", r.Tag, r.Device, len(out.Devices))
				return false
			case !r.Rejected && r.Device >= len(devices) && r.Start < out.Devices[r.Device].LiveStart:
				t.Logf("warm device %d started request %d at %v before joining at %v",
					r.Device, r.Tag, r.Start, out.Devices[r.Device].LiveStart)
				return false
			}
		}
		for i := range reqs {
			if seen[i] != 1 {
				t.Logf("%s/%s: request %d reported %d times", router.Name(), ctl.Name(), i, seen[i])
				return false
			}
		}
		// Device telemetry stays sane under dynamic membership.
		for i, d := range out.Devices {
			if d.Lifetime < 0 || d.Busy > d.Lifetime+1e-9 {
				t.Logf("device %d busy %v exceeds live interval %v", i, d.Busy, d.Lifetime)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t, 40)); err != nil {
		t.Error(err)
	}
}
