package cluster

// The shard layer: a deterministic parallel driver for Fleet.Run.
//
// Devices are partitioned into shards by index (dev % shards), each shard
// owning its devices' runtime state and an indexed wake heap. Shard
// workers advance their devices concurrently between *cross-shard*
// events — routing decisions that read fleet state, fail-stops, control
// ticks, warm-pool joins — which act as conservative barriers: no worker
// ever steps past the next event that could couple two shards.
//
// Bit-identity with the sequential engine is by construction, not by
// tolerance. Three properties make it work:
//
//  1. Device independence inside a window. Between global events, device
//     loops share no mutable state (each core.Loop owns its clock, queue,
//     solver, and rng streams), so steps commute across devices and only
//     the *merge order* of their completions matters.
//  2. Replayed horizons. core.Loop.StepTo is horizon-sensitive (the
//     speculation probe uses the horizon as its pending boundary), so
//     workers replay each device against the exact per-event horizon grid
//     the sequential loop would have used — never a coarser fast-forward.
//  3. Canonical merge. Per-shard completions are merged in the sequential
//     append order — (event window, step-before-route, device index) —
//     and all order-sensitive accumulation (controller window floats)
//     happens during that sequential merge.
//
// Routers split the dispatch strategy in two:
//
//   - ViewOblivious routers (single, rr) never read device load, so every
//     routing decision between two structural events (fail / tick / join
//     / end of stream) can be made up front. The engine pre-routes the
//     whole *span* of arrivals centrally, hands each shard its devices'
//     push lists, and workers replay the span with zero intermediate
//     barriers — the scalable path.
//   - View-reading routers (least-work, jsq, p2c, prefix) make every
//     arrival a cross-shard event: spans degrade to single windows and
//     only the devices due inside one window are stepped in parallel.
//     Sparse windows run inline (below spawnThreshold) to avoid paying
//     synchronization for one or two devices; dense windows — control
//     ticks, drain phases, the terminal drain — still fan out wide.
//
// Worker scheduling never influences results: each worker touches only
// its shard's devices and heap, results carry canonical keys, and the
// merge is single-threaded. GOMAXPROCS therefore changes wall time only.
// The one intentional divergence: on *error* runs (router misbehavior,
// solver faults) the outcome is discarded in both engines and only the
// error surfaces, but which of several concurrent faults is reported may
// differ from the sequential engine's event order.

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/obs"
)

// spawnThreshold is the minimum number of per-pass device tasks worth
// fanning out to shard workers; below it the same code path runs inline
// on the driver goroutine (identical results, no goroutine round-trip).
const spawnThreshold = 4

// spanPush is one pre-routed request a shard worker must push to its
// device at a span window.
type spanPush struct {
	win int    // window index in the span's horizon grid
	key string // prefix key (computed centrally at route time)
	pr  pendingReq
}

// resGroup is the completions one device produced at one window, in
// completion order — the unit of the canonical merge.
type resGroup struct {
	win     int
	dev     int
	results []Result
	// raw holds the undelivered completions when the run hedges: hedge
	// resolution (first copy wins, loser cancelled) is order-sensitive,
	// so the driver's merge feeds them through run.deliver in canonical
	// order instead of the worker building Results locally.
	raw []core.ServedResult
}

// shardOut is one shard worker's output for a span or collect pass.
type shardOut struct {
	groups []resGroup
	acc    metrics.FleetAccum // order-independent counters (prefix hits/misses)
	err    error
	errWin int
	errDev int
}

func (o *shardOut) reset() {
	o.groups = o.groups[:0]
	o.acc.Reset() // keeps capacity and the streaming mode across passes
	o.err = nil
}

func (o *shardOut) setErr(win, dev int, err error) {
	if o.err == nil {
		o.err, o.errWin, o.errDev = err, win, dev
	}
}

// shardSet is the parallel engine's runtime state: per-shard wake heaps
// plus reusable scratch for spans, collect passes, and merges.
type shardSet struct {
	n         int
	heaps     []*wakeHeap
	oblivious bool

	// Scratch, reused across passes.
	dueBufs [][]int
	outs    []shardOut
	accs    []*metrics.FleetAccum // &outs[s].acc, for the driver's k-way fold
	tasks   [][]int
	pushes  [][]spanPush // indexed by device; non-empty only mid-span
	touched []int        // devices with pushes in the current span
	times   []float64
	shedWin []int
	shedRes []Result
	heads   []int // merge cursors
}

func newShardSet(r *run, n int) *shardSet {
	nd := len(r.devs)
	ss := &shardSet{
		n:       n,
		heaps:   make([]*wakeHeap, n),
		dueBufs: make([][]int, n),
		outs:    make([]shardOut, n),
		tasks:   make([][]int, n),
		pushes:  make([][]spanPush, nd),
		heads:   make([]int, n),
	}
	ss.accs = make([]*metrics.FleetAccum, n)
	for s := range ss.heaps {
		ss.heaps[s] = newWakeHeap(nd)
		ss.accs[s] = &ss.outs[s].acc
		if r.acc.Streaming() {
			// Shard workers stream into private sketches; the driver's
			// MergeAll folds them as integer sums, so shard count cannot
			// perturb the aggregates.
			ss.outs[s].acc.EnableStreaming(r.f.cfg.SLOLatency)
		}
	}
	if vo, ok := r.f.cfg.Router.(ViewOblivious); ok {
		ss.oblivious = vo.RouteViewOblivious()
	}
	if r.hedging() {
		// Hedge resolution is order-sensitive (the first copy to complete
		// wins and cancels its cross-shard twin), so every completion must
		// pass the driver's canonical merge before the next routing
		// decision: arrival spans collapse to single barrier windows.
		ss.oblivious = false
	}
	return ss
}

// wakeMin returns the earliest wake time across the shard heaps.
func (ss *shardSet) wakeMin() (float64, bool) {
	best, ok := 0.0, false
	for _, h := range ss.heaps {
		if at, has := h.min(); has && (!ok || at < best) {
			best, ok = at, true
		}
	}
	return best, ok
}

func (ss *shardSet) shardOf(dev int) int { return dev % ss.n }

// wakeLen, wakeUpdate, wakeRemove, and wakeGrow mirror the sequential
// engine's single wake heap across the per-shard heaps.
func (ss *shardSet) wakeLen() int {
	total := 0
	for _, h := range ss.heaps {
		total += h.Len()
	}
	return total
}

func (ss *shardSet) wakeUpdate(dev int, at float64) { ss.heaps[ss.shardOf(dev)].update(dev, at) }
func (ss *shardSet) wakeRemove(dev int)             { ss.heaps[ss.shardOf(dev)].remove(dev) }

func (ss *shardSet) wakeGrow(k int) {
	for _, h := range ss.heaps {
		h.grow(k)
	}
	for i := 0; i < k; i++ {
		ss.pushes = append(ss.pushes, nil)
	}
}

// stepDevice advances one device to the horizon and appends its
// completions as a result group. It runs on the device's shard worker:
// everything it touches — the loop, the device's prefix directory and
// accounting, the worker-local counters — is shard-owned.
func (ss *shardSet) stepDevice(r *run, dev, win int, horizon float64, out *shardOut) error {
	d := r.devs[dev]
	served, err := d.loop.StepTo(horizon)
	if err != nil {
		return fmt.Errorf("cluster: device %d: %w", dev, err)
	}
	if len(served) > 0 && r.hedging() {
		// Defer everything to the driver's merge: hedge filtering must see
		// completions in the canonical cross-shard order.
		out.groups = append(out.groups, resGroup{
			win: win, dev: dev, raw: append([]core.ServedResult(nil), served...),
		})
	} else if len(served) > 0 {
		g := resGroup{win: win, dev: dev, results: make([]Result, 0, len(served))}
		for _, sv := range served {
			d.settlePrefix(sv, &out.acc)
			res := r.buildResult(sv, dev)
			g.results = append(g.results, res)
			if out.acc.Streaming() {
				out.acc.AddSample(0, serveSample(res))
			}
			if !sv.Rejected {
				d.served++
				d.tokens += sv.UsefulTokens
			}
		}
		out.groups = append(out.groups, g)
	}
	if d.draining && !d.drained && d.loop.Idle() {
		d.drained = true
		d.drainEnd = math.Max(d.drainAt, d.loop.Now())
	}
	return nil
}

// collect is the parallel analogue of run.collect: pop the devices due
// within the horizon from every shard heap, step them (fanning out to
// shard workers when the due population is dense), and merge completions
// in device-index order.
func (ss *shardSet) collect(r *run, horizon float64) error {
	total := 0
	for s, h := range ss.heaps {
		ss.dueBufs[s] = h.popDue(horizon, ss.dueBufs[s][:0])
		total += len(ss.dueBufs[s])
	}
	if total == 0 {
		return nil
	}
	worker := func(s int) {
		out := &ss.outs[s]
		for _, dev := range ss.dueBufs[s] {
			if err := ss.stepDevice(r, dev, 0, horizon, out); err != nil {
				out.setErr(0, dev, err)
				return
			}
			ss.updateWakeLocal(r, s, dev)
			r.refreshView(dev)
		}
	}
	ss.runWorkers(total, worker)
	return ss.merge(r, nil, nil)
}

// runSpan drives the view-oblivious fast path: pop and pre-route every
// arrival strictly before the next structural event (or all remaining
// arrivals when none is pending), then let each shard replay its devices
// across the whole span without barriers.
func (ss *shardSet) runSpan(r *run, structAt float64, bounded bool) error {
	times := ss.times[:0]
	shedWin, shedRes := ss.shedWin[:0], ss.shedRes[:0]
	touched := ss.touched[:0]
	router := r.f.cfg.Router

	for {
		head, ok := r.nextArrival()
		if !ok || (bounded && head.req.Arrival >= structAt) {
			break
		}
		pr := r.popArrival()
		w := len(times)
		times = append(times, pr.req.Arrival)
		if len(r.vs) == 0 {
			// Lost capacity: shed at this instant against the original
			// submission time (routable membership only changes at
			// structural events, so the whole span sheds).
			shedWin = append(shedWin, w)
			shedRes = append(shedRes, Result{
				ServedResult: core.ServedResult{
					Arrival: r.origArrival[pr.req.Tag], Start: pr.req.Arrival, Finish: pr.req.Arrival,
					Rejected: true, Tag: pr.req.Tag,
				},
				Device:   -1,
				Requeues: pr.requeues,
			})
			if r.ctl != nil {
				r.ctl.Emit(obs.Span{Kind: obs.KindShed, Tag: pr.req.Tag,
					Start: pr.req.Arrival, End: pr.req.Arrival, N: pr.requeues})
			}
			continue
		}
		rv := RequestView{
			Tag:          pr.req.Tag,
			Arrival:      pr.req.Arrival,
			PrefixKey:    prefixKey(pr.req.Problem),
			PromptTokens: pr.req.Problem.PromptTokens,
			Requeued:     pr.requeues > 0,
		}
		pick := router.Route(rv, r.vs, r.routeRand)
		if pick < 0 || pick >= len(r.vs) {
			ss.times, ss.shedWin, ss.shedRes, ss.touched = times, shedWin, shedRes, touched
			return fmt.Errorf("cluster: router %s picked %d of %d alive devices",
				router.Name(), pick, len(r.vs))
		}
		di := r.vs[pick].Index
		r.emitRoute(rv.Tag, pr.req.Arrival, di)
		r.applyStrategy(&pr.req, di)
		if len(ss.pushes[di]) == 0 {
			touched = append(touched, di)
		}
		ss.pushes[di] = append(ss.pushes[di], spanPush{win: w, key: rv.PrefixKey, pr: pr})
	}
	ss.times, ss.shedWin, ss.shedRes, ss.touched = times, shedWin, shedRes, touched
	if len(times) == 0 {
		return nil
	}

	// Task set per shard: devices due anywhere inside the span, plus the
	// push targets. Everything else provably idles through the span.
	tLast := times[len(times)-1]
	total := 0
	for s, h := range ss.heaps {
		ss.tasks[s] = h.popDue(tLast, ss.tasks[s][:0])
	}
	for _, dev := range touched {
		ss.tasks[ss.shardOf(dev)] = append(ss.tasks[ss.shardOf(dev)], dev)
	}
	for s := range ss.tasks {
		ss.tasks[s] = sortedUnique(ss.tasks[s])
		total += len(ss.tasks[s])
	}

	worker := func(s int) {
		out := &ss.outs[s]
		for _, dev := range ss.tasks[s] {
			if !ss.replayDevice(r, s, dev, times, out) {
				return
			}
		}
		sort.Slice(out.groups, func(i, j int) bool {
			if out.groups[i].win != out.groups[j].win {
				return out.groups[i].win < out.groups[j].win
			}
			return out.groups[i].dev < out.groups[j].dev
		})
	}
	ss.runWorkers(total, worker)

	for _, dev := range touched {
		ss.pushes[dev] = ss.pushes[dev][:0]
	}
	return ss.merge(r, shedWin, shedRes)
}

// replayDevice replays one device's exact sequential timeline across the
// span's horizon grid: it steps at every window the device would have
// been due at (its wake time is a pure function of its own state between
// structural events) and interleaves its pre-routed pushes, each at its
// own window, step before push. Returns false on error.
func (ss *shardSet) replayDevice(r *run, s, dev int, times []float64, out *shardOut) bool {
	d := r.devs[dev]
	pushes := ss.pushes[dev]
	last, pi := -1, 0
	for {
		stepJ := len(times)
		if at, ok := d.loop.Wake(); ok {
			stepJ = last + 1 + sort.SearchFloat64s(times[last+1:], at)
		}
		pushJ := len(times)
		if pi < len(pushes) {
			pushJ = pushes[pi].win
		}
		j := stepJ
		if pushJ < j {
			j = pushJ
		}
		if j >= len(times) {
			break
		}
		if stepJ == j {
			if err := ss.stepDevice(r, dev, j, times[j], out); err != nil {
				out.setErr(j, dev, err)
				return false
			}
		}
		if pushJ == j {
			p := pushes[pi]
			pi++
			resident := d.prefixes[p.key]
			if !resident {
				d.prefixes[p.key] = true
				d.marker[p.key] = p.pr.req.Tag
			}
			d.acct[p.pr.req.Tag] = prefixAcct{
				key: p.key, tokens: int64(p.pr.req.Problem.PromptTokens), hit: resident,
			}
			d.loop.Push(p.pr.req)
		}
		last = j
	}
	ss.updateWakeLocal(r, s, dev)
	return true
}

// updateWakeLocal refreshes one device's entry in its shard's heap; it
// must run on that shard's worker (or the driver when inline).
func (ss *shardSet) updateWakeLocal(r *run, s, dev int) {
	if at, ok := r.devs[dev].loop.Wake(); ok {
		ss.heaps[s].update(dev, at)
	} else {
		ss.heaps[s].remove(dev)
	}
}

// runWorkers executes worker(s) for every shard — concurrently when the
// pass is dense enough to amortize the fan-out, inline otherwise. Both
// paths run identical code against disjoint state, so the choice affects
// wall time only.
func (ss *shardSet) runWorkers(total int, worker func(s int)) {
	for s := range ss.outs {
		ss.outs[s].reset()
	}
	if total < spawnThreshold || ss.n == 1 {
		for s := 0; s < ss.n; s++ {
			worker(s)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(ss.n)
	for s := 0; s < ss.n; s++ {
		go func(s int) {
			defer wg.Done()
			worker(s)
		}(s)
	}
	wg.Wait()
}

// merge folds the shard workers' outputs into the run in canonical
// sequential order: (window, step results before the window's routing
// shed, device index). Controller window accumulation — the one
// order-sensitive float path — happens here, on the driver goroutine.
func (ss *shardSet) merge(r *run, shedWin []int, shedRes []Result) error {
	var err error
	ew, ed := 0, 0
	for s := range ss.outs {
		o := &ss.outs[s]
		if o.err != nil && (err == nil || o.errWin < ew || (o.errWin == ew && o.errDev < ed)) {
			err, ew, ed = o.err, o.errWin, o.errDev
		}
	}
	if err != nil {
		return err
	}
	for s := range ss.heads {
		ss.heads[s] = 0
	}
	sp := 0
	for {
		bs, bw, bd := -1, 0, 0
		for s := range ss.outs {
			if ss.heads[s] < len(ss.outs[s].groups) {
				g := &ss.outs[s].groups[ss.heads[s]]
				if bs < 0 || g.win < bw || (g.win == bw && g.dev < bd) {
					bs, bw, bd = s, g.win, g.dev
				}
			}
		}
		if sp < len(shedWin) && (bs < 0 || shedWin[sp] < bw) {
			r.out.Results = append(r.out.Results, shedRes[sp])
			if r.acc.Streaming() {
				r.acc.AddSample(0, serveSample(shedRes[sp]))
			}
			if r.el != nil {
				r.el.win.Rejected++
			}
			sp++
			continue
		}
		if bs < 0 {
			break
		}
		g := &ss.outs[bs].groups[ss.heads[bs]]
		ss.heads[bs]++
		for _, sv := range g.raw {
			r.deliver(g.dev, sv)
		}
		for _, res := range g.results {
			r.out.Results = append(r.out.Results, res)
			if r.el != nil {
				r.el.observe(res.ServedResult, r.devs[g.dev])
			}
		}
	}
	// One k-way fold per pass: a pairwise Merge loop would copy the
	// driver accumulator's keyed state once per shard.
	r.acc.MergeAll(ss.accs...)
	return nil
}

// runSharded is the sharded engine's event loop: identical event
// selection and handlers to the sequential Fleet.Run, with collect
// passes fanned out across shards and — for view-oblivious routers —
// whole arrival spans between structural events executed barrier-free.
func (f *Fleet) runSharded(r *run) (*Outcome, error) {
	ss := r.sh
	for {
		head, haveArrival := r.nextArrival()
		bestAt, bestKind := 0.0, -1
		consider := func(at float64, kind int, have bool) {
			if have && (bestKind < 0 || at < bestAt || (at == bestAt && kind < bestKind)) {
				bestAt, bestKind = at, kind
			}
		}
		if r.el != nil {
			consider(r.el.nextJoin())
			consider(r.el.nextTickEvent(r, haveArrival))
		}
		consider(r.failAt(), evFail, r.fp < len(r.fails))
		consider(r.cancelAt(), evCancel, r.cp < len(r.cancels))
		// Arrivals strictly before the next structural event couple shards
		// only through the router; when the router is view-oblivious the
		// whole span is safe to pre-route and replay in parallel.
		if ss.oblivious && haveArrival && (bestKind < 0 || head.req.Arrival < bestAt) {
			if err := ss.runSpan(r, bestAt, bestKind >= 0); err != nil {
				return nil, err
			}
			continue
		}
		consider(head.req.Arrival, evArrival, haveArrival)
		if bestKind < 0 {
			break
		}
		if err := ss.collect(r, bestAt); err != nil {
			return nil, err
		}
		switch bestKind {
		case evJoin:
			r.el.completeJoin(r)
		case evFail:
			ft, fi := r.fails[r.fp].at, r.fails[r.fp].dev
			r.fp++
			r.failDevice(ft, fi)
		case evCancel:
			r.applyCancel(r.cancels[r.cp])
			r.cp++
		case evTick:
			r.el.tick(r, bestAt)
		case evArrival:
			if err := r.routeArrival(r.popArrival()); err != nil {
				return nil, err
			}
		}
	}

	if err := r.drain(); err != nil {
		return nil, err
	}
	r.finish()
	return r.out, nil
}

// sortedUnique sorts xs ascending and drops adjacent duplicates in place.
func sortedUnique(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}
