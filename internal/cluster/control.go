package cluster

// The fleet side of the elastic control plane: ControlConfig wires an
// internal/control Controller into the fleet event loop. At every
// control tick the fleet gathers Signals (window queue delay,
// utilization, SLO attainment, outstanding work), asks the controller to
// decide, and actuates:
//
//   - scale-up: claim a warm-pool template, instantiate a fresh device,
//     and make it routable after the warm-up delay (model load + prefill
//     of the serving stack) as a join event;
//   - scale-down: pick a drain victim (warm-pool instances first, then
//     founding devices, highest index first), remove it from the
//     routable set immediately, and let its accepted work finish — the
//     drain completes when its loop idles;
//   - set-tier: move the compute-budget governor; every request routed
//     while the tier is above 0 carries a narrowed effective search
//     width (core.Request.Width), halved once per tier.
//
// All of it is deterministic: the controller draws only from its private
// seeded stream, victims and templates are chosen by fixed rules, and
// the applied-action log is part of the run's reproducible outcome.

import (
	"fmt"
	"math"

	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/obs"
	"fasttts/internal/rng"
	"fasttts/internal/search"
)

// ControlConfig attaches the elastic control plane to a fleet.
type ControlConfig struct {
	// Controller decides scaling and budget actions; nil means static
	// (ticks observe, nothing actuates).
	Controller control.Controller
	// Interval is the control period in fleet seconds; required > 0.
	Interval float64
	// Warm holds the warm-pool device templates. Scale-ups instantiate
	// them round-robin; at most len(Warm) controller-added instances are
	// live at once (a drain returns its slot). Templates must not carry
	// FailAt — fault injection belongs to founding members.
	Warm []Device
	// WarmupDelay is how long after a scale-up decision the new device
	// becomes routable (model load and cache prefill); 0 joins instantly.
	WarmupDelay float64
	// MinDevices floors the routable device count drains may reach
	// (default 1); MaxDevices caps routable+warming devices (default
	// founding + len(Warm)).
	MinDevices, MaxDevices int
	// MaxTier is the deepest compute-budget degradation tier the
	// governor may set; each tier halves the effective search width.
	MaxTier int
	// SLOLatency is the wall-latency target the SLO-attainment signal is
	// computed against (<= 0: no target, attainment reads 1).
	SLOLatency float64
}

// validate checks the control configuration and builds the (stateless)
// per-template servers the warm pool instantiates from.
func (cc *ControlConfig) validate(founding int) ([]*core.Server, error) {
	if cc.Interval <= 0 || math.IsNaN(cc.Interval) {
		return nil, fmt.Errorf("cluster: control interval must be positive, got %v", cc.Interval)
	}
	if cc.WarmupDelay < 0 || math.IsNaN(cc.WarmupDelay) {
		return nil, fmt.Errorf("cluster: warm-up delay must be non-negative, got %v", cc.WarmupDelay)
	}
	if cc.MinDevices < 0 || cc.MaxTier < 0 {
		return nil, fmt.Errorf("cluster: MinDevices and MaxTier must be non-negative")
	}
	warm := make([]*core.Server, len(cc.Warm))
	for i, d := range cc.Warm {
		if d.FailAt > 0 {
			return nil, fmt.Errorf("cluster: warm-pool template %d carries FailAt=%v; fault injection belongs to founding devices", i, d.FailAt)
		}
		srv, err := core.NewServerWithPolicy(d.Config, d.Policy)
		if err != nil {
			return nil, fmt.Errorf("cluster: warm-pool template %d: %w", i, err)
		}
		warm[i] = srv
	}
	if cc.MaxDevices <= 0 {
		cc.MaxDevices = founding + len(cc.Warm)
	}
	if cc.MinDevices == 0 {
		cc.MinDevices = 1
	}
	return warm, nil
}

// ActionRecord is one applied controller action (see control.Record).
type ActionRecord = control.Record

// joinEvent is one scheduled warm-pool join: device dev becomes routable
// at time at. Scale-up decisions arrive in tick order and the warm-up
// delay is constant, so joins are consumed FIFO.
type joinEvent struct {
	at  float64
	dev int
}

// elastic is the per-run state of the control plane.
type elastic struct {
	cfg  *ControlConfig
	ctl  control.Controller
	rand *rng.Stream

	tier      int
	warmFree  int // warm-pool slots not claimed by a live instance
	joinCount int // total instantiations (template cycling)
	joins     []joinEvent
	jp        int
	nextTick  float64

	stats   metrics.ControlStats
	actions []ActionRecord

	// win accumulates the tick window incrementally (completions,
	// arrivals, SLO hits, queue-delay sum) — the shared metrics-layer
	// window primitive, reset every tick. Both engines observe
	// completions in the same canonical order, so its one float sum is
	// bit-identical between them.
	win metrics.TickWindow
}

func newElastic(f *Fleet, founding int) *elastic {
	el := &elastic{
		cfg:      f.cfg.Control,
		ctl:      f.cfg.Control.Controller,
		rand:     rng.New(f.cfg.Seed).Child("cluster/control"),
		warmFree: len(f.cfg.Control.Warm),
		nextTick: f.cfg.Control.Interval,
	}
	if el.ctl == nil {
		el.ctl = control.Static{}
	}
	el.stats.PeakDevices = founding
	return el
}

// nextJoin exposes the pending-join head to the event selector.
func (el *elastic) nextJoin() (float64, int, bool) {
	if el.jp < len(el.joins) {
		return el.joins[el.jp].at, evJoin, true
	}
	return 0, evJoin, false
}

// nextTickEvent exposes the next control tick. Ticks continue while any
// future work could still be observed or actuated: pending arrivals,
// devices with work on the wake heap, or joins in flight. Once all three
// are exhausted the controller has nothing left to influence and the
// tick stream ends (the run then drains to completion).
func (el *elastic) nextTickEvent(r *run, haveArrival bool) (float64, int, bool) {
	if !haveArrival && r.wakeLen() == 0 && el.jp >= len(el.joins) {
		return 0, evTick, false
	}
	return el.nextTick, evTick, true
}

// observe accumulates one finished result into the tick window and the
// degraded-service counter. A request counts as degraded only when it
// was actually served at a width below its device's configured budget —
// requeues, admission rejections, and overrides the algorithm's
// ClampWidth floor restored to full width all don't.
func (el *elastic) observe(sv core.ServedResult, d *device) {
	el.win.Observe(sv.QueueDelay, sv.WallLatency, sv.Rejected, el.cfg.SLOLatency)
	if sv.Rejected {
		return
	}
	if sv.Width > 0 && sv.Width < d.spec.Config.Policy.Width() {
		el.stats.DegradedRequests++
	}
}

// budget applies the current compute-budget tier to a request being
// routed to device d: tier k halves the device's configured search
// width k times, and — when the fleet runs a test-time-compute strategy
// — degrades the request's strategy to first-finish, the governor's
// third vertical knob beside width and fleet size. Tier 0 restores the
// full budget (also for requeued requests that were degraded on their
// first routing; the route path re-stamps the fleet strategy before
// calling budget, so strategy degradation is likewise not sticky).
func (el *elastic) budget(rq *core.Request, d *device) {
	el.win.Arrivals++
	if el.tier <= 0 {
		rq.Width = 0
		return
	}
	rq.Width = search.DegradedWidth(d.spec.Config.Policy.Width(), el.tier)
	if ds := search.DegradedStrategy(rq.Strategy, el.tier); ds != nil {
		rq.Strategy = ds
	}
}

// routableStats counts the fleet populations the controller observes.
func (el *elastic) counts(r *run) (routable, warming int) {
	return len(r.vs), len(el.joins) - el.jp
}

// signals gathers the controller's observation at tick time now.
func (el *elastic) signals(r *run, now float64) control.Signals {
	routable, warming := el.counts(r)
	sig := control.Signals{
		Now:           now,
		Interval:      el.cfg.Interval,
		Routable:      routable,
		Warming:       warming,
		WarmAvailable: el.warmFree,
		MinDevices:    el.cfg.MinDevices,
		MaxDevices:    el.cfg.MaxDevices,
		Arrivals:      el.win.Arrivals,
		Completions:   el.win.Completions(),
		Tier:          el.tier,
		MaxTier:       el.cfg.MaxTier,
		SLOAttainment: 1,
	}
	// Only routable devices are walked (and re-snapshotted): drained and
	// failed members never become routable again, and a device joining
	// mid-window carries lastBusy 0 from creation — so the tick stays
	// O(routable devices) no matter how many instances a long run's
	// scale cycles have retired.
	var busyDelta float64
	for _, v := range r.vs {
		d := r.devs[v.Index]
		sig.Pending += d.loop.Pending()
		sig.OutstandingWork += d.loop.OutstandingWork()
		busyDelta += d.loop.Busy() - d.lastBusy
		d.lastBusy = d.loop.Busy()
	}
	if routable > 0 && el.cfg.Interval > 0 {
		sig.Utilization = busyDelta / (el.cfg.Interval * float64(routable))
		if sig.Utilization > 1 {
			sig.Utilization = 1
		}
	}
	sig.QueueDelay = el.win.MeanQueueDelay()
	sig.SLOAttainment = el.win.Attainment(el.cfg.SLOLatency)
	return sig
}

// tick runs one control interval: observe, decide, actuate, and reset
// the window.
func (el *elastic) tick(r *run, now float64) {
	sig := el.signals(r, now)
	el.stats.Ticks++
	if r.ctl != nil {
		r.ctl.Emit(obs.Span{Kind: obs.KindTick, Start: now, End: now,
			N: sig.Routable, V1: sig.Utilization, V2: sig.QueueDelay})
	}
	for _, a := range el.ctl.Decide(sig, el.rand) {
		var rec ActionRecord
		switch a.Verb {
		case control.ScaleUp:
			rec = el.scaleUp(r, now, a.N)
		case control.ScaleDown:
			rec = el.scaleDown(r, now, a.N)
		case control.SetTier:
			rec = el.setTier(now, a.N)
		default:
			continue
		}
		el.actions = append(el.actions, rec)
	}
	el.win.Reset()
	el.nextTick = now + el.cfg.Interval
}

// scaleUp claims up to n warm-pool slots: each instantiates the next
// template (round-robin) as a fresh fleet member that becomes routable
// after the warm-up delay.
func (el *elastic) scaleUp(r *run, now float64, n int) ActionRecord {
	rec := ActionRecord{Time: now, Verb: control.ScaleUp, N: n}
	for i := 0; i < n; i++ {
		routable, warming := el.counts(r)
		if el.warmFree <= 0 || routable+warming >= el.cfg.MaxDevices {
			break
		}
		el.warmFree--
		tmpl := el.joinCount % len(el.cfg.Warm)
		el.joinCount++
		dev := newDevice(el.cfg.Warm[tmpl], r.f.warmSrvs[tmpl], now+el.cfg.WarmupDelay)
		dev.warming = true
		dev.dynamic = true
		idx := len(r.devs)
		r.devs = append(r.devs, dev)
		r.posInVs = append(r.posInVs, -1)
		r.wakeGrow(1)
		if r.obs != nil {
			dev.loop.SetObs(r.obs.Device(idx))
		}
		el.joins = append(el.joins, joinEvent{at: dev.joinAt, dev: idx})
		rec.Devices = append(rec.Devices, idx)
		rec.Applied++
		el.stats.ScaleUps++
	}
	return rec
}

// completeJoin makes the head warm-pool join routable. New instances
// always carry the largest fleet index so far, so appending to the view
// slice keeps it sorted by index.
func (el *elastic) completeJoin(r *run) {
	j := el.joins[el.jp]
	el.jp++
	d := r.devs[j.dev]
	d.warming = false
	r.posInVs[j.dev] = len(r.vs)
	r.vs = append(r.vs, DeviceView{Index: j.dev, Speed: d.speed, Mem: d.loop.Plane()})
	r.refreshView(j.dev)
	if n := len(r.vs); n > el.stats.PeakDevices {
		el.stats.PeakDevices = n
	}
	if r.ctl != nil {
		r.ctl.Emit(obs.Span{Kind: obs.KindJoin, Start: j.at, End: j.at, V1: float64(j.dev)})
	}
}

// scaleDown drains up to n devices: warm-pool instances before founding
// members, highest fleet index first, never leaving fewer than
// MinDevices routable. A drained device stops receiving requests
// immediately and leaves the fleet once its accepted work finishes; its
// warm-pool slot (if it was one) frees at the decision.
func (el *elastic) scaleDown(r *run, now float64, n int) ActionRecord {
	rec := ActionRecord{Time: now, Verb: control.ScaleDown, N: n}
	for i := 0; i < n && len(r.vs) > el.cfg.MinDevices; i++ {
		victim := -1
		for pass := 0; pass < 2 && victim < 0; pass++ {
			for q := len(r.vs) - 1; q >= 0; q-- {
				d := r.devs[r.vs[q].Index]
				if pass == 0 && !d.dynamic {
					continue // prefer draining warm-pool instances
				}
				victim = r.vs[q].Index
				break
			}
		}
		if victim < 0 {
			break
		}
		d := r.devs[victim]
		r.dropView(victim)
		d.draining = true
		d.drainAt = now
		if d.dynamic {
			el.warmFree++
		}
		if d.loop.Idle() {
			d.drained = true
			d.drainEnd = now
		}
		rec.Devices = append(rec.Devices, victim)
		rec.Applied++
		el.stats.ScaleDowns++
		if r.ctl != nil {
			r.ctl.Emit(obs.Span{Kind: obs.KindDrain, Start: now, End: now, V1: float64(victim)})
		}
	}
	return rec
}

// setTier moves the compute-budget governor, clamped to [0, MaxTier].
// The record keeps the controller's raw request in N so clamping is
// visible in the action log, matching the scaling verbs.
func (el *elastic) setTier(now float64, tier int) ActionRecord {
	requested := tier
	if tier < 0 {
		tier = 0
	}
	if tier > el.cfg.MaxTier {
		tier = el.cfg.MaxTier
	}
	if tier != el.tier {
		el.tier = tier
		el.stats.TierChanges++
	}
	return ActionRecord{Time: now, Verb: control.SetTier, N: requested, Applied: el.tier}
}

// finish publishes the controller's log and summary into the outcome.
func (el *elastic) finish(out *Outcome) {
	el.stats.FinalTier = el.tier
	out.Actions = el.actions
	st := el.stats
	out.Control = &st
}
