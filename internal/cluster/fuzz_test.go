package cluster

import (
	"strings"
	"testing"
	"testing/quick"
)

// FuzzRouterByName asserts the lookup is total: any input yields a
// router or an error, never a panic, and the two outcomes are mutually
// exclusive.
func FuzzRouterByName(f *testing.F) {
	for _, name := range append(RouterNames(),
		"", "round-robin", "shortest-queue", "power-of-two", "lw", "prefix-affinity",
		"RR", " p2c", "nope", "jsq\x00", "single,") {
		f.Add(name)
	}
	f.Fuzz(func(t *testing.T, name string) {
		r, err := RouterByName(name)
		if (r == nil) == (err == nil) {
			t.Errorf("RouterByName(%q) = (%v, %v): want exactly one of router/error", name, r, err)
		}
		if err == nil && r.Name() == "" {
			t.Errorf("RouterByName(%q) returned an unnamed router", name)
		}
	})
}

// TestRouterByNameQuick drives the lookup with arbitrary generated
// strings: unknown names must come back as errors naming the input, and
// every catalog name (plus case variants) must resolve to a fresh
// router.
func TestRouterByNameQuick(t *testing.T) {
	total := func(name string) bool {
		r, err := RouterByName(name)
		if err != nil {
			return r == nil && strings.Contains(err.Error(), "unknown router")
		}
		return r != nil
	}
	if err := quick.Check(total, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, name := range append(RouterNames(), "SINGLE", "Rr", "Least-Work", "JSQ", "P2C", "Prefix") {
		r, err := RouterByName(name)
		if err != nil {
			t.Errorf("router name %q did not resolve: %v", name, err)
			continue
		}
		// Stateful routers must come back fresh per call, not shared.
		if r2, _ := RouterByName(name); r2 == r && strings.HasPrefix(r.Name(), "rr") {
			t.Errorf("RouterByName(%q) returned a shared stateful router", name)
		}
	}
}
