package cluster

// Trace determinism: the span flight recorder extends the engines'
// bit-identity contract to observability. The sequential and sharded
// engines must produce byte-for-byte identical merged span streams —
// reflect.DeepEqual over []obs.Span, every float exact — for every
// router, strategy, fault schedule, and shard count, and attaching a
// recorder must not perturb the outcome it observes.

import (
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"testing/quick"

	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/obs"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// runTraced serves the stream with a fresh recorder attached and
// returns the outcome plus the canonically merged span stream.
func runTraced(t testing.TB, mk func() Config, reqs []core.Request, shards int) (*Outcome, []obs.Span) {
	t.Helper()
	cfg := mk()
	cfg.Obs = obs.NewRecorder()
	cfg.Shards = shards
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out, cfg.Obs.Spans()
}

// diffSpans reports the first span divergence in a reviewable form.
func diffSpans(t *testing.T, label string, seq, sh []obs.Span) {
	t.Helper()
	if reflect.DeepEqual(seq, sh) {
		return
	}
	if len(seq) != len(sh) {
		t.Errorf("%s: %d sequential spans vs %d sharded", label, len(seq), len(sh))
		return
	}
	for i := range seq {
		if seq[i] != sh[i] {
			t.Errorf("%s: span %d diverges:\n  seq: %+v\n  shd: %+v", label, i, seq[i], sh[i])
			return
		}
	}
}

// checkTrace runs the full span-stream validity suite on one trace.
func checkTrace(t *testing.T, label string, out *Outcome, spans []obs.Span) {
	t.Helper()
	if len(spans) == 0 {
		t.Errorf("%s: recorder captured nothing", label)
		return
	}
	if err := obs.Verify(spans); err != nil {
		t.Errorf("%s: lifecycle invariants violated: %v", label, err)
	}
	attrs := obs.Attribute(spans)
	if err := obs.CheckSums(attrs); err != nil {
		t.Errorf("%s: attribution components do not sum to wall: %v", label, err)
	}
	if out.Attribution == nil {
		t.Errorf("%s: traced outcome missing Attribution", label)
	} else if got := obs.Summarize(attrs); *out.Attribution != got {
		t.Errorf("%s: outcome attribution %+v != recomputed %+v", label, *out.Attribution, got)
	}
}

// TestTraceEngineEquivalence is the headline trace-determinism test:
// for every router, at shard counts below, at, and above the device
// count, over a fleet with a straggler and a mid-run fail-stop, the two
// engines produce bit-identical span streams — and identical outcomes
// to an untraced run.
func TestTraceEngineEquivalence(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 40, 5), 2.0, 11)
	for _, router := range RouterNames() {
		mk := func() Config {
			rt, err := RouterByName(router)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Devices: equivFleet(t), Router: rt, Seed: 3}
		}
		plain, err := New(mk())
		if err != nil {
			t.Fatal(err)
		}
		untraced, err := plain.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		seqOut, seqSpans := runTraced(t, mk, reqs, 0)
		checkTrace(t, router+"/seq", seqOut, seqSpans)

		// Tracing must not perturb what it observes: the traced outcome
		// differs from the untraced one only by the attribution report.
		redacted := *seqOut
		redacted.Attribution = nil
		if !reflect.DeepEqual(&redacted, untraced) {
			t.Errorf("%s: attaching a recorder perturbed the outcome", router)
		}

		for _, shards := range []int{2, 3, 8} {
			label := router + "/shards=" + strconv.Itoa(shards)
			shOut, shSpans := runTraced(t, mk, reqs, shards)
			diffOutcomes(t, label, seqOut, shOut)
			diffSpans(t, label, seqSpans, shSpans)
		}
	}
}

// TestTraceHedgedEngineEquivalence adds cross-device hedging: twin
// placements, loser cancellations, and hedge-waste attribution must
// trace identically on both engines.
func TestTraceHedgedEngineEquivalence(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 40, 5), 3.0, 17)
	for _, router := range RouterNames() {
		mk := func() Config {
			rt, err := RouterByName(router)
			if err != nil {
				t.Fatal(err)
			}
			return Config{Devices: equivFleet(t), Router: rt, Seed: 3, Strategy: search.Hedged{}}
		}
		seqOut, seqSpans := runTraced(t, mk, reqs, 0)
		checkTrace(t, router+"/hedged/seq", seqOut, seqSpans)
		hedges := 0
		for _, s := range seqSpans {
			if s.Kind == obs.KindHedge {
				hedges++
			}
		}
		if hedges == 0 {
			t.Errorf("%s: hedged run traced no hedge placements", router)
		}
		for _, shards := range []int{2, 4} {
			label := router + "/hedged/shards=" + strconv.Itoa(shards)
			shOut, shSpans := runTraced(t, mk, reqs, shards)
			diffOutcomes(t, label, seqOut, shOut)
			diffSpans(t, label, seqSpans, shSpans)
		}
	}
}

// TestTraceElasticEngineEquivalence adds the control plane: ticks,
// warm-pool joins, and drain decisions become control-track spans that
// must also trace identically.
func TestTraceElasticEngineEquivalence(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 60, 5), 4.0, 13)
	warm := []Device{
		{Config: devConfig(t, hw.RTX4090, 4, 70)},
		{Config: devConfig(t, hw.RTX4070Ti, 4, 71)},
	}
	for _, router := range []string{"rr", "least-work", "prefix"} {
		for _, ctlName := range control.Names() {
			mk := func() Config {
				rt, err := RouterByName(router)
				if err != nil {
					t.Fatal(err)
				}
				ctl, err := control.ByName(ctlName)
				if err != nil {
					t.Fatal(err)
				}
				return Config{Devices: equivFleet(t), Router: rt, Seed: 3, Control: &ControlConfig{
					Controller:  ctl,
					Interval:    2.5,
					Warm:        warm,
					WarmupDelay: 1.0,
					MaxTier:     2,
					SLOLatency:  30,
				}}
			}
			label := router + "/" + ctlName
			seqOut, seqSpans := runTraced(t, mk, reqs, 0)
			checkTrace(t, label, seqOut, seqSpans)
			ticks := 0
			for _, s := range seqSpans {
				if s.Kind == obs.KindTick {
					ticks++
				}
			}
			if ticks == 0 {
				t.Errorf("%s: elastic run traced no control ticks", label)
			}
			shOut, shSpans := runTraced(t, mk, reqs, 4)
			diffOutcomes(t, label, seqOut, shOut)
			diffSpans(t, label, seqSpans, shSpans)
		}
	}
}

// traceCase is one randomized trace-determinism scenario: a fleetCase
// (random fleet, stragglers, fail-stops, stream, router) plus a random
// strategy pick and shard count.
type traceCase struct {
	Hedged hedgedCase
	Hedge  bool // attach the hedged strategy
	Shards int
}

func (traceCase) Generate(r *rand.Rand, size int) reflect.Value {
	hc := hedgedCase{}.Generate(r, size).Interface().(hedgedCase)
	return reflect.ValueOf(traceCase{Hedged: hc, Hedge: r.Intn(2) == 0, Shards: 1 + r.Intn(6)})
}

// TestTraceLifecycleProperty is the randomized conservation law for the
// flight recorder: across random router × strategy × fail-stop
// schedules, every span opened is closed exactly once, device slice
// intervals never overlap, attribution components sum to wall latency,
// and the sequential and sharded engines emit bit-identical streams.
func TestTraceLifecycleProperty(t *testing.T) {
	gpus := []hw.GPU{hw.RTX4090, hw.RTX4070Ti, hw.RTX3070Ti}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	prop := func(tc traceCase) bool {
		c := tc.Hedged.Fleet
		var devices []Device
		for i := range c.GPUs {
			devices = append(devices, Device{
				Config:   devConfig(t, gpus[c.GPUs[i]], 4, uint64(40+i)),
				Slowdown: c.Slowdowns[i],
				FailAt:   c.FailAts[i],
			})
		}
		if tc.Hedge && len(devices) < 2 {
			devices = append(devices, Device{Config: devConfig(t, gpus[tc.Hedged.Extra], 4, uint64(60))})
		}
		reqs := make([]core.Request, len(c.Probs))
		for i, pi := range c.Probs {
			reqs[i] = core.Request{Problem: ds.Problems[pi], Arrival: c.Arrivals[i], Tag: i}
		}
		mk := func() Config {
			router, err := RouterByName(RouterNames()[c.Router])
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Devices: devices, Router: router, Seed: 3}
			if tc.Hedge {
				cfg.Strategy = search.Hedged{}
			}
			return cfg
		}
		seqOut, seqSpans := runTraced(t, mk, reqs, 0)
		if err := obs.Verify(seqSpans); err != nil {
			t.Logf("case %+v: %v", tc, err)
			return false
		}
		if err := obs.CheckSums(obs.Attribute(seqSpans)); err != nil {
			t.Logf("case %+v: %v", tc, err)
			return false
		}
		shOut, shSpans := runTraced(t, mk, reqs, tc.Shards)
		if !reflect.DeepEqual(seqOut, shOut) {
			t.Logf("case %+v: outcomes diverge across engines", tc)
			return false
		}
		if !reflect.DeepEqual(seqSpans, shSpans) {
			t.Logf("case %+v: %d seq spans vs %d sharded, or payload divergence",
				tc, len(seqSpans), len(shSpans))
			return false
		}
		return true
	}
	if err := quick.Check(prop, qc(t, 40)); err != nil {
		t.Error(err)
	}
}
