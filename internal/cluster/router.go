package cluster

// Pluggable request routing for the heterogeneous edge fleet. A Router
// assigns each arriving (or failure-requeued) request to one alive
// device. Routers may keep internal state (round-robin counters, the
// prefix-affinity directory) but must be deterministic functions of the
// call sequence and their private random stream — the fleet guarantees
// bit-identical served streams for equal seeds, and a router that
// consults wall clocks or map iteration order breaks that.

import (
	"fmt"
	"strings"

	"fasttts/internal/memplane"
	"fasttts/internal/rng"
)

// RequestView is a router's read-only view of one arriving request.
type RequestView struct {
	// Tag is the request's stream identity (stable across requeues).
	Tag int
	// Arrival is the fleet time of this routing decision.
	Arrival float64
	// PrefixKey identifies the request's shared prompt prefix: requests
	// with equal keys re-use each other's prompt KV on the same device.
	PrefixKey string
	// PromptTokens is the request's prompt length — the tokens a device
	// without the prefix resident would have to re-prefill.
	PromptTokens int
	// Requeued marks failure-induced re-routing (the original device
	// fail-stopped with this request unfinished).
	Requeued bool
}

// DeviceView is a router's read-only view of one alive device.
type DeviceView struct {
	// Index is the device's fleet index (stable across failures of other
	// devices); the Route result is a position in the alive slice, not an
	// Index.
	Index int
	// Now is the device's virtual clock.
	Now float64
	// Pending is the device's outstanding population: admitted unfinished
	// requests plus queued arrivals.
	Pending int
	// OutstandingWork is the estimated remaining service demand in token
	// units (see sched.EstimateDemand).
	OutstandingWork float64
	// Speed is the device's relative service speed: decode-bandwidth
	// share scaled down by the straggler factor. Units are arbitrary but
	// consistent across devices.
	Speed float64
	// Mem is the device's KV memory plane; nil when the plane is
	// disabled. Routers may probe it (prefix residency, occupancy) only
	// inside Route — the fleet quiesces every device at the arrival's
	// event barrier before routing, on both execution engines.
	Mem *memplane.Plane
	// CacheOccupancy is the plane's used/capacity fraction as of the
	// device's last refresh; 0 when the plane is disabled.
	CacheOccupancy float64
}

// Router assigns requests to fleet devices.
type Router interface {
	// Name identifies the router ("rr", "p2c", ...).
	Name() string
	// Route returns the position in devices (non-empty, alive fleet
	// members sorted by Index) of the device that receives the request.
	// r is the router's private deterministic random stream.
	Route(rq RequestView, devices []DeviceView, r *rng.Stream) int
}

// ViewOblivious marks routers whose decisions never read device *load*
// — DeviceView.Now, Pending, or OutstandingWork — only the routable
// set's size and order plus private state. The sharded engine
// (Config.Shards >= 2) can pre-route whole arrival spans for such
// routers and replay devices barrier-free; view-reading routers make
// every arrival a cross-shard synchronization point. A router that
// reads load but implements this interface returning true breaks the
// engines' bit-identity contract.
type ViewOblivious interface {
	RouteViewOblivious() bool
}

// Single routes every request to the first alive device: the
// pass-through router. A 1-device fleet under Single reproduces the
// single-Server results of the serving engine exactly.
type Single struct{}

func (Single) Name() string                                     { return "single" }
func (Single) Route(RequestView, []DeviceView, *rng.Stream) int { return 0 }
func (Single) RouteViewOblivious() bool                         { return true }

// RoundRobin cycles through the alive devices in index order,
// oblivious to load and heterogeneity — the fleet baseline.
type RoundRobin struct{ n int }

func (*RoundRobin) Name() string { return "rr" }
func (rr *RoundRobin) Route(_ RequestView, devices []DeviceView, _ *rng.Stream) int {
	i := rr.n % len(devices)
	rr.n++
	return i
}
func (*RoundRobin) RouteViewOblivious() bool { return true }

// WorkAware marks routers whose decisions read
// DeviceView.OutstandingWork; the fleet computes that load signal —
// O(in-flight + queued) remaining-work estimations per device — only
// for routers that declare the need.
type WorkAware interface {
	NeedsOutstandingWork() bool
}

// LeastWork routes to the device with the smallest expected drain time:
// estimated outstanding work divided by device speed (ties by pending
// count, then index — the shared better() ordering). It is the
// fleet-level analogue of the SJF serve policy — both consume
// sched.EstimateDemand — and the strongest signal for heterogeneous
// fleets, at the cost of full fleet-state inspection per request.
type LeastWork struct{}

func (LeastWork) Name() string               { return "least-work" }
func (LeastWork) NeedsOutstandingWork() bool { return true }
func (LeastWork) Route(_ RequestView, devices []DeviceView, _ *rng.Stream) int {
	best := 0
	for i := 1; i < len(devices); i++ {
		if better(devices[i], devices[best]) {
			best = i
		}
	}
	return best
}

func drainTime(d DeviceView) float64 {
	if d.Speed <= 0 {
		return d.OutstandingWork
	}
	return d.OutstandingWork / d.Speed
}

// JSQ joins the shortest queue: the device with the fewest outstanding
// requests, ties to the lower index.
type JSQ struct{}

func (JSQ) Name() string { return "jsq" }
func (JSQ) Route(_ RequestView, devices []DeviceView, _ *rng.Stream) int {
	best := 0
	for i := 1; i < len(devices); i++ {
		if devices[i].Pending < devices[best].Pending {
			best = i
		}
	}
	return best
}

// PowerOfTwo samples two distinct candidate devices uniformly and joins
// the one with the smaller expected drain time — the classic
// power-of-two-choices load balancer, which gets most of JSQ's balance
// while inspecting only two devices per request.
type PowerOfTwo struct{}

func (PowerOfTwo) Name() string               { return "p2c" }
func (PowerOfTwo) NeedsOutstandingWork() bool { return true }
func (PowerOfTwo) Route(_ RequestView, devices []DeviceView, r *rng.Stream) int {
	if len(devices) == 1 {
		return 0
	}
	i := r.IntN(len(devices))
	j := r.IntN(len(devices) - 1)
	if j >= i {
		j++
	}
	if better(devices[j], devices[i]) {
		return j
	}
	return i
}

// better orders devices by expected drain time, then pending count, then
// index — the shared load comparison of the state-aware routers.
func better(a, b DeviceView) bool {
	da, db := drainTime(a), drainTime(b)
	if da != db {
		return da < db
	}
	if a.Pending != b.Pending {
		return a.Pending < b.Pending
	}
	return a.Index < b.Index
}

// CacheAware routes by effective drain time including the memory cost of
// a cold prompt: (outstanding work + prompt tokens not resident in the
// device's KV plane) / speed. Both terms are in token units — outstanding
// work is estimated demand in tokens, and a non-resident prompt token is
// a token the device must re-prefill before serving. On fleets without a
// memory plane every device misses the full prompt equally and the router
// degenerates to least-work. Unlike PrefixAffinity's home directory, the
// residency signal is the device's *actual* cache content, so eviction
// under pressure automatically redirects traffic.
type CacheAware struct{}

func (CacheAware) Name() string               { return "cache-aware" }
func (CacheAware) NeedsOutstandingWork() bool { return true }
func (CacheAware) Route(rq RequestView, devices []DeviceView, _ *rng.Stream) int {
	best, bestCost := 0, cacheCost(rq, devices[0])
	for i := 1; i < len(devices); i++ {
		c := cacheCost(rq, devices[i])
		d, b := devices[i], devices[best]
		if c < bestCost ||
			(c == bestCost && (d.Pending < b.Pending ||
				(d.Pending == b.Pending && d.Index < b.Index))) {
			best, bestCost = i, c
		}
	}
	return best
}

// cacheCost is a device's expected time to absorb the request: current
// drain time plus the re-prefill debt of the non-resident prompt tokens.
func cacheCost(rq RequestView, d DeviceView) float64 {
	miss := rq.PromptTokens
	if d.Mem != nil {
		miss -= d.Mem.ResidentPromptTokens(rq.PrefixKey, rq.PromptTokens)
	}
	work := d.OutstandingWork + float64(miss)
	if d.Speed <= 0 {
		return work
	}
	return work / d.Speed
}

// PrefixAffinity extends the paper's §4.2 prefix-aware scheduling from
// intra-device to inter-device: requests sharing a prompt prefix are
// routed to the device whose radix KV cache already holds it, so the
// prompt prefill is served from cache instead of being recomputed. When
// the affine device's backlog exceeds the fleet minimum by more than
// LoadSlack requests (or the device failed), the router falls back to
// the load-based Fallback and re-homes the prefix there — cache locality
// must not create hotspots.
type PrefixAffinity struct {
	// Fallback routes prefix misses and overloaded hits; nil means
	// LeastWork.
	Fallback Router
	// LoadSlack is how many requests beyond the least-loaded device's
	// backlog the affine device may hold before affinity is abandoned;
	// 0 means 4.
	LoadSlack int
	// MaxPrefixes bounds the affinity directory: when a new prefix would
	// exceed it, the oldest-homed prefix is forgotten (deterministic FIFO
	// on first-homing order). 0 means 4096; negative means unbounded.
	// Without a bound the directory grows with every distinct prefix ever
	// routed — a leak on long multi-tenant streams.
	MaxPrefixes int
	home        map[string]int // prefix key -> device Index
	order       []string       // home keys in first-homing order (FIFO eviction)
}

func (p *PrefixAffinity) Name() string { return "prefix" }

func (p *PrefixAffinity) NeedsOutstandingWork() bool {
	if p.Fallback == nil {
		return true // the default fallback is LeastWork
	}
	wa, ok := p.Fallback.(WorkAware)
	return ok && wa.NeedsOutstandingWork()
}

func (p *PrefixAffinity) Route(rq RequestView, devices []DeviceView, r *rng.Stream) int {
	if p.home == nil {
		p.home = make(map[string]int)
	}
	fallback := p.Fallback
	if fallback == nil {
		fallback = LeastWork{}
	}
	slack := p.LoadSlack
	if slack == 0 {
		slack = 4
	}
	minPending := devices[0].Pending
	for _, d := range devices[1:] {
		if d.Pending < minPending {
			minPending = d.Pending
		}
	}
	if home, ok := p.home[rq.PrefixKey]; ok {
		for i, d := range devices {
			if d.Index == home {
				if d.Pending <= minPending+slack {
					return i
				}
				break // alive but overloaded: re-home
			}
		}
	}
	i := fallback.Route(rq, devices, r)
	if _, homed := p.home[rq.PrefixKey]; !homed {
		limit := p.MaxPrefixes
		if limit == 0 {
			limit = 4096
		}
		if limit > 0 && len(p.home) >= limit {
			oldest := p.order[0]
			p.order = p.order[1:]
			delete(p.home, oldest)
		}
		p.order = append(p.order, rq.PrefixKey)
	}
	p.home[rq.PrefixKey] = devices[i].Index
	return i
}

// RouterByName resolves a fresh router from its CLI/config name:
// "single", "rr", "least-work", "jsq", "p2c", "prefix", or
// "cache-aware".
func RouterByName(name string) (Router, error) {
	switch strings.ToLower(name) {
	case "single", "passthrough":
		return Single{}, nil
	case "", "rr", "round-robin":
		return &RoundRobin{}, nil
	case "least-work", "lw":
		return LeastWork{}, nil
	case "jsq", "shortest-queue":
		return JSQ{}, nil
	case "p2c", "power-of-two":
		return PowerOfTwo{}, nil
	case "prefix", "prefix-affinity":
		return &PrefixAffinity{}, nil
	case "cache-aware", "cache":
		return CacheAware{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown router %q (want single, rr, least-work, jsq, p2c, prefix, or cache-aware)", name)
}

// RouterNames lists the built-in router names in display order.
func RouterNames() []string {
	return []string{"single", "rr", "least-work", "jsq", "p2c", "prefix", "cache-aware"}
}
