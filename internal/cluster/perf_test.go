package cluster

// Tag-uniqueness validation and fleet-scale micro-benchmarks for the
// event-heap core.

import (
	"strings"
	"testing"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// TestDuplicateTagsRejected: Run keys requeue telemetry and deferred
// prefix accounting by request Tag. Before validation existed, a stream
// with colliding tags was served silently while the collided requests
// shared one origArrival/requeue/accounting slot — a fail-stop that
// displaced one of them bumped the requeue count and rewrote the arrival
// telemetry of both, and their prefix hits landed on whichever device
// settled last. Now the collision is rejected up front with a
// descriptive error instead of corrupting the outcome.
func TestDuplicateTagsRejected(t *testing.T) {
	devices := []Device{
		{Config: devConfig(t, hw.RTX4090, 4, 42), FailAt: 5},
		{Config: devConfig(t, hw.RTX4070Ti, 4, 43)},
	}
	probs := repeatedProblems(t, 4, 2)
	reqs := taggedStream(t, probs, 0.5, 11)
	reqs[2].Tag = reqs[0].Tag // collide two distinct requests

	f, err := New(Config{Devices: devices, Router: &RoundRobin{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Run(reqs)
	if err == nil {
		t.Fatal("Run accepted a stream with duplicate tags; the old behavior silently corrupted requeue and prefix telemetry")
	}
	if !strings.Contains(err.Error(), "duplicate request tag") {
		t.Fatalf("want a descriptive duplicate-tag error, got: %v", err)
	}

	// The same stream with unique tags runs, and its telemetry is
	// coherent: every request accounted for exactly once.
	reqs = taggedStream(t, probs, 0.5, 11)
	out := runFleet(t, devices, &RoundRobin{}, 1, reqs)
	if len(out.Results) != len(reqs) {
		t.Fatalf("served %d results for %d unique-tag requests", len(out.Results), len(reqs))
	}
	seen := map[int]bool{}
	for _, r := range out.Results {
		if seen[r.Tag] {
			t.Fatalf("tag %d reported twice", r.Tag)
		}
		seen[r.Tag] = true
	}
}

// benchSpec mirrors the fastttsbench -perf workload: tiny prompts and
// chains so the fleet core, not token arithmetic, dominates.
var benchSpec = workload.DatasetSpec{
	Name: "BENCH", Problems: 64,
	DiffLo: 0.30, DiffHi: 0.70,
	StepLogMu: 2.3, StepLogSigma: 0.4, MinStepTokens: 4,
	MaxSteps: 2, TypicalSteps: 1.3,
	PromptLo: 8, PromptHi: 16,
	AnswerSpace: 10, QualityDriftScale: 1.0,
}

func benchFleet(b *testing.B, n int) ([]Device, []core.Request) {
	b.Helper()
	pol, err := search.New(search.SingleCoT, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	devs := make([]Device, n)
	for i := range devs {
		devs[i] = Device{
			Config: core.Config{
				GPU:       hw.RTX4090,
				Generator: model.Qwen25Math1_5B,
				Verifier:  model.Qwen25Math1_5B,
				Policy:    pol,
				Opts:      core.BaselineOptions(),
				Seed:      42 + uint64(i),
			},
			Policy: sched.AdmissionLimit{Inner: sched.FCFS{}, MaxInFlight: 32},
		}
	}
	root := rng.New(42)
	ds := workload.NewDataset(benchSpec, root)
	const requests = 2000
	times := workload.PoissonArrivals(requests, 30*float64(n), root.Child("bench/arrivals"))
	reqs := make([]core.Request, requests)
	for i := range reqs {
		reqs[i] = core.Request{Problem: ds.Problems[i%len(ds.Problems)], Arrival: times[i], Tag: i}
	}
	return devs, reqs
}

func benchmarkFleetRun(b *testing.B, devices int, router string) {
	devs, reqs := benchFleet(b, devices)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := RouterByName(router)
		if err != nil {
			b.Fatal(err)
		}
		f, err := New(Config{Devices: devs, Router: r, Seed: 42})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Run(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFleetRun64LeastWork(b *testing.B)  { benchmarkFleetRun(b, 64, "least-work") }
func BenchmarkFleetRun64RoundRobin(b *testing.B) { benchmarkFleetRun(b, 64, "rr") }
func BenchmarkFleetRun256LeastWork(b *testing.B) { benchmarkFleetRun(b, 256, "least-work") }
func BenchmarkFleetRun256P2C(b *testing.B)       { benchmarkFleetRun(b, 256, "p2c") }
