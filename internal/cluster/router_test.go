package cluster

// Unit tests for the memory-plane-aware routing additions: the
// cache-aware router's residency-vs-load trade, its least-work
// degeneration on plane-less fleets, and the bounded prefix-affinity
// directory (deterministic FIFO eviction of the oldest-homed prefix).

import (
	"fmt"
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/memplane"
	"fasttts/internal/model"
	"fasttts/internal/rng"
)

// residentPlane builds a memory plane with the given prompt key fully
// resident (admitted once and finished, so the prompt prefix stays
// cached for reuse).
func residentPlane(t *testing.T, key string, promptTokens int) *memplane.Plane {
	t.Helper()
	p := memplane.New(memplane.Config{CapacityBytes: 1 << 30}, hw.RTX4090, model.Qwen25Math1_5B)
	s, _ := p.Admit(key, promptTokens)
	p.Finish(s)
	if got := p.ResidentPromptTokens(key, promptTokens); got != promptTokens {
		t.Fatalf("plane setup: %d resident tokens, want %d", got, promptTokens)
	}
	return p
}

func TestCacheAwarePrefersResidentDevice(t *testing.T) {
	rq := RequestView{PrefixKey: "amc23/3", PromptTokens: 400}
	devices := []DeviceView{
		// Idle but cold: must re-prefill the whole prompt (cost 400).
		{Index: 0, Speed: 1, OutstandingWork: 0},
		// Busier but warm: the resident prefix outweighs 300 tokens of
		// backlog (cost 300 < 400).
		{Index: 1, Speed: 1, OutstandingWork: 300, Mem: residentPlane(t, "amc23/3", 400)},
	}
	if got := (CacheAware{}).Route(rq, devices, rng.New(1).Child("router")); got != 1 {
		t.Errorf("routed to device %d, want warm device 1", got)
	}
	// Past the break-even point the backlog dominates and the router
	// abandons locality — cache affinity must not create hotspots.
	devices[1].OutstandingWork = 500
	if got := (CacheAware{}).Route(rq, devices, rng.New(1).Child("router")); got != 0 {
		t.Errorf("routed to device %d, want idle cold device 0", got)
	}
}

func TestCacheAwareWeighsMissBySpeed(t *testing.T) {
	rq := RequestView{PrefixKey: "amc23/0", PromptTokens: 600}
	// Both cold, equal work: the faster device absorbs the re-prefill
	// debt sooner.
	devices := []DeviceView{
		{Index: 0, Speed: 1, OutstandingWork: 100},
		{Index: 1, Speed: 4, OutstandingWork: 100},
	}
	if got := (CacheAware{}).Route(rq, devices, rng.New(2).Child("router")); got != 1 {
		t.Errorf("routed to device %d, want fast device 1", got)
	}
}

// TestCacheAwareDegeneratesWithoutPlane: with no memory plane every
// device misses the full prompt equally, so the decision reduces to
// drain time with pending/index tie-breaks — LeastWork's ordering.
func TestCacheAwareDegeneratesWithoutPlane(t *testing.T) {
	rq := RequestView{PrefixKey: "k", PromptTokens: 128}
	cases := []struct {
		name    string
		devices []DeviceView
		want    int
	}{
		{
			name: "least drain wins",
			devices: []DeviceView{
				{Index: 0, Speed: 1, OutstandingWork: 50},
				{Index: 1, Speed: 1, OutstandingWork: 20},
			},
			want: 1,
		},
		{
			name: "drain tie broken by pending",
			devices: []DeviceView{
				{Index: 0, Speed: 1, OutstandingWork: 30, Pending: 3},
				{Index: 1, Speed: 1, OutstandingWork: 30, Pending: 1},
			},
			want: 1,
		},
		{
			name: "full tie broken by index",
			devices: []DeviceView{
				{Index: 0, Speed: 1, OutstandingWork: 30, Pending: 2},
				{Index: 1, Speed: 1, OutstandingWork: 30, Pending: 2},
			},
			want: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (CacheAware{}).Route(rq, tc.devices, rng.New(3).Child("router")); got != tc.want {
				t.Errorf("routed to device %d, want %d", got, tc.want)
			}
		})
	}
}

// TestPrefixAffinityDirectoryBounded: with MaxPrefixes set, homing a new
// prefix beyond the cap evicts the oldest-homed one (FIFO), so the
// directory cannot grow without bound on long multi-tenant streams.
func TestPrefixAffinityDirectoryBounded(t *testing.T) {
	p := &PrefixAffinity{MaxPrefixes: 2}
	devices := []DeviceView{
		{Index: 0, Speed: 1},
		{Index: 1, Speed: 1},
	}
	r := rng.New(4).Child("router")
	route := func(key string) int {
		return p.Route(RequestView{PrefixKey: key}, devices, r)
	}
	route("a")
	route("b")
	if len(p.home) != 2 {
		t.Fatalf("directory holds %d prefixes, want 2", len(p.home))
	}
	// Homing "c" must evict "a", the oldest entry.
	route("c")
	if len(p.home) != 2 {
		t.Errorf("directory holds %d prefixes after eviction, want 2", len(p.home))
	}
	if _, ok := p.home["a"]; ok {
		t.Error("oldest prefix \"a\" still homed after capacity eviction")
	}
	for _, key := range []string{"b", "c"} {
		if _, ok := p.home[key]; !ok {
			t.Errorf("prefix %q missing from bounded directory", key)
		}
	}
	// Re-homing an existing prefix must not evict anything: only first
	// homings consume capacity.
	route("b")
	if len(p.home) != 2 {
		t.Errorf("re-homing grew the directory to %d entries", len(p.home))
	}
	if _, ok := p.home["c"]; !ok {
		t.Error("re-homing an existing prefix evicted another entry")
	}
}

// TestPrefixAffinityDirectoryDefaults pins the MaxPrefixes contract: 0
// means the 4096 default, negative disables the bound entirely.
func TestPrefixAffinityDirectoryDefaults(t *testing.T) {
	devices := []DeviceView{{Index: 0, Speed: 1}}
	const n = 5000 // beyond the 4096 default cap
	for _, tc := range []struct {
		name string
		max  int
		want int
	}{
		{"zero means 4096", 0, 4096},
		{"negative means unbounded", -1, n},
	} {
		t.Run(tc.name, func(t *testing.T) {
			p := &PrefixAffinity{MaxPrefixes: tc.max}
			r := rng.New(5).Child("router")
			for i := 0; i < n; i++ {
				p.Route(RequestView{PrefixKey: fmt.Sprintf("tenant/%d", i)}, devices, r)
			}
			if len(p.home) != tc.want {
				t.Errorf("directory holds %d prefixes, want %d", len(p.home), tc.want)
			}
		})
	}
}

// planeFleet is hetero4 with the KV memory plane enabled at a tight
// capacity, so admission, LRU eviction, and re-prefill penalties all
// fire during a short run.
func planeFleet(t *testing.T, capacity int64) []Device {
	t.Helper()
	devs := hetero4(t)
	for i := range devs {
		devs[i].Config.KVPlane = memplane.Config{CapacityBytes: capacity}
	}
	return devs
}

// TestFleetCacheTelemetryFlows: with the memory plane enabled, the
// fleet's stats carry per-device capacity/occupancy and fleet-level
// hit/miss/eviction counters; with the plane disabled (the default),
// every cache field stays zero.
func TestFleetCacheTelemetryFlows(t *testing.T) {
	probs := repeatedProblems(t, 24, 3)
	reqs := taggedStream(t, probs, 0.5, 11)

	st := runFleet(t, planeFleet(t, 64<<20), CacheAware{}, 9, reqs).Stats(0)
	if st.CacheHitTokens+st.CacheMissTokens == 0 {
		t.Fatal("memory plane enabled but no cache traffic recorded")
	}
	if st.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %.3f on 8× repeated prompts, want > 0", st.CacheHitRate)
	}
	for i, d := range st.Devices {
		if d.CacheCapacityTokens <= 0 {
			t.Errorf("device %d: capacity %d tokens, want > 0", i, d.CacheCapacityTokens)
		}
	}

	off := runFleet(t, hetero4(t), CacheAware{}, 9, reqs).Stats(0)
	if off.CacheHitTokens != 0 || off.CacheMissTokens != 0 || off.ReprefillSeconds != 0 {
		t.Errorf("plane disabled but telemetry nonzero: %d/%d hit/miss, %.3f s re-prefill",
			off.CacheHitTokens, off.CacheMissTokens, off.ReprefillSeconds)
	}
	for i, d := range off.Devices {
		if d.CacheCapacityTokens != 0 || d.CacheOccupancy != 0 {
			t.Errorf("device %d: cache fields nonzero with plane disabled", i)
		}
	}
}
