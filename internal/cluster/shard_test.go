package cluster

// Sequential-vs-sharded equivalence: the sharded engine's contract is
// bit-identical outcomes — not statistically close, not "equal within
// epsilon" — for every router, controller, fault schedule, and shard
// count, at any GOMAXPROCS. These tests compare full Outcome values
// (every float compared exactly via reflect.DeepEqual) between the two
// engines across fixed scenario tables and a randomized -quick.seed
// property sweep.

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"strconv"
	"testing"
	"testing/quick"

	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/rng"
	"fasttts/internal/workload"
)

// equivFleet builds a small heterogeneous fleet: a fast founder, a
// straggler, a mid-run fail-stop, and a fourth plain member.
func equivFleet(t testing.TB) []Device {
	t.Helper()
	return []Device{
		{Config: devConfig(t, hw.RTX4090, 4, 40)},
		{Config: devConfig(t, hw.RTX4070Ti, 4, 41), Slowdown: 2.5},
		{Config: devConfig(t, hw.RTX3070Ti, 4, 42), FailAt: 12},
		{Config: devConfig(t, hw.RTX4070Ti, 4, 43)},
	}
}

// runEngines serves the same stream on the sequential engine and on the
// sharded engine at the given shard count, and returns both outcomes.
// mk must build a fresh Config per call: routers and controllers carry
// state (round-robin counters, prefix homes, PID integrals), so the two
// engines cannot share instances.
func runEngines(t testing.TB, mk func() Config, reqs []core.Request, shards int) (*Outcome, *Outcome) {
	t.Helper()
	run := func(shards int) *Outcome {
		cfg := mk()
		cfg.Shards = shards
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	return run(0), run(shards)
}

// diffOutcomes reports the first divergence between two outcomes in a
// reviewable form.
func diffOutcomes(t *testing.T, label string, seq, sh *Outcome) {
	t.Helper()
	if reflect.DeepEqual(seq, sh) {
		return
	}
	if len(seq.Results) != len(sh.Results) {
		t.Errorf("%s: %d sequential results vs %d sharded", label, len(seq.Results), len(sh.Results))
		return
	}
	for i := range seq.Results {
		if !reflect.DeepEqual(seq.Results[i], sh.Results[i]) {
			t.Errorf("%s: result %d diverges:\n  seq: %+v\n  shd: %+v", label, i, seq.Results[i], sh.Results[i])
			return
		}
	}
	if !reflect.DeepEqual(seq.Devices, sh.Devices) {
		t.Errorf("%s: device telemetry diverges:\n  seq: %+v\n  shd: %+v", label, seq.Devices, sh.Devices)
		return
	}
	if !reflect.DeepEqual(seq.Actions, sh.Actions) {
		t.Errorf("%s: controller actions diverge:\n  seq: %+v\n  shd: %+v", label, seq.Actions, sh.Actions)
		return
	}
	t.Errorf("%s: outcomes diverge (requeues %d/%d, prefix %d+%d / %d+%d)",
		label, seq.Requeues, sh.Requeues,
		seq.PrefixHits, seq.PrefixMisses, sh.PrefixHits, sh.PrefixMisses)
}

// TestShardedEquivalence compares the engines for every router over a
// fleet with a straggler and a mid-run fail-stop (requeues included), at
// shard counts below, at, and above the device count.
func TestShardedEquivalence(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 60, 5), 2.0, 11)
	for _, router := range RouterNames() {
		for _, shards := range []int{2, 3, 8} {
			mk := func() Config {
				rt, err := RouterByName(router)
				if err != nil {
					t.Fatal(err)
				}
				return Config{Devices: equivFleet(t), Router: rt, Seed: 3}
			}
			seq, sh := runEngines(t, mk, reqs, shards)
			diffOutcomes(t, router+"/shards="+strconv.Itoa(shards), seq, sh)
		}
	}
}

// TestShardedEquivalenceElastic adds the control plane: a threshold
// controller with a warm pool actually scaling up and down mid-stream,
// plus budget tiers — ticks, joins, and drains all become barriers the
// sharded engine must respect.
func TestShardedEquivalenceElastic(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 80, 5), 4.0, 13)
	warm := []Device{
		{Config: devConfig(t, hw.RTX4090, 4, 70)},
		{Config: devConfig(t, hw.RTX4070Ti, 4, 71)},
	}
	for _, router := range []string{"rr", "least-work", "prefix"} {
		for _, ctlName := range control.Names() {
			mk := func() Config {
				rt, err := RouterByName(router)
				if err != nil {
					t.Fatal(err)
				}
				ctl, err := control.ByName(ctlName)
				if err != nil {
					t.Fatal(err)
				}
				return Config{Devices: equivFleet(t), Router: rt, Seed: 3, Control: &ControlConfig{
					Controller:  ctl,
					Interval:    2.5,
					Warm:        warm,
					WarmupDelay: 1.0,
					MaxTier:     2,
					SLOLatency:  30,
				}}
			}
			seq, sh := runEngines(t, mk, reqs, 4)
			diffOutcomes(t, router+"/"+ctlName, seq, sh)
		}
	}
}

// shardedCase pairs a random fleet scenario with a random shard count.
type shardedCase struct {
	Fleet  fleetCase
	Shards int
}

func (shardedCase) Generate(r *rand.Rand, size int) reflect.Value {
	fc := fleetCase{}.Generate(r, size).Interface().(fleetCase)
	return reflect.ValueOf(shardedCase{Fleet: fc, Shards: 2 + r.Intn(7)})
}

// TestShardedEquivalenceQuick is the randomized equivalence property:
// under -quick.seed-driven fleets (random routers, stragglers,
// fail-stops, streams) and shard counts, both engines produce identical
// outcomes.
func TestShardedEquivalenceQuick(t *testing.T) {
	gpus := []hw.GPU{hw.RTX4090, hw.RTX4070Ti, hw.RTX3070Ti}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	prop := func(sc shardedCase) bool {
		c := sc.Fleet
		var devices []Device
		for i := range c.GPUs {
			devices = append(devices, Device{
				Config:   devConfig(t, gpus[c.GPUs[i]], 4, uint64(40+i)),
				Slowdown: c.Slowdowns[i],
				FailAt:   c.FailAts[i],
			})
		}
		reqs := make([]core.Request, len(c.Probs))
		for i, pi := range c.Probs {
			reqs[i] = core.Request{Problem: ds.Problems[pi], Arrival: c.Arrivals[i], Tag: i}
		}
		mk := func() Config {
			router, err := RouterByName(RouterNames()[c.Router])
			if err != nil {
				t.Fatal(err)
			}
			return Config{Devices: devices, Router: router, Seed: 3}
		}
		seq, sh := runEngines(t, mk, reqs, sc.Shards)
		if !reflect.DeepEqual(seq, sh) {
			t.Logf("router %s shards %d: outcomes diverge", RouterNames()[c.Router], sc.Shards)
			return false
		}
		return true
	}
	if err := quick.Check(prop, qc(t, 40)); err != nil {
		t.Error(err)
	}
}

// TestShardedGOMAXPROCSIndependent proves worker scheduling cannot leak
// into results: the same sharded run at GOMAXPROCS 1 and 8 is
// bit-identical (on any host — the property holds even when the host
// has a single core, since it is enforced by construction, not timing).
func TestShardedGOMAXPROCSIndependent(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 60, 5), 2.0, 11)
	outs := make([]*Outcome, 0, 2)
	for _, procs := range []int{1, 8} {
		prev := runtime.GOMAXPROCS(procs)
		rt, err := RouterByName("rr")
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatal(err)
		}
		f, err := New(Config{Devices: equivFleet(t), Router: rt, Seed: 3, Shards: 8})
		if err != nil {
			runtime.GOMAXPROCS(prev)
			t.Fatal(err)
		}
		out, err := f.Run(reqs)
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, out)
	}
	if !reflect.DeepEqual(outs[0], outs[1]) {
		t.Error("GOMAXPROCS=1 and GOMAXPROCS=8 sharded runs diverge")
	}
}

// TestNegativeShardsUsesCores checks the auto knob: Shards < 0 resolves
// to GOMAXPROCS-many shards and still matches the sequential engine.
func TestNegativeShardsUsesCores(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 30, 4), 2.0, 17)
	mk := func() Config {
		rt, err := RouterByName("least-work")
		if err != nil {
			t.Fatal(err)
		}
		return Config{Devices: equivFleet(t), Router: rt, Seed: 3}
	}
	seq, sh := runEngines(t, mk, reqs, -1)
	diffOutcomes(t, "auto-shards", seq, sh)
}

// TestShardedEquivalenceStreaming runs both engines in streaming-metrics
// mode: per-shard ServeAccums merged on the driver must leave the
// Outcome — including the accumulated sketch state — bit-identical to
// the sequential engine at every shard count, and the materialized
// FleetStats must agree float-for-float.
func TestShardedEquivalenceStreaming(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 60, 5), 2.0, 11)
	const slo = 30.0
	for _, router := range []string{"rr", "least-work", "prefix"} {
		for _, shards := range []int{2, 3, 8, -1} {
			mk := func() Config {
				rt, err := RouterByName(router)
				if err != nil {
					t.Fatal(err)
				}
				return Config{
					Devices: equivFleet(t), Router: rt, Seed: 3,
					Metrics: metrics.ModeStreaming, SLOLatency: slo,
				}
			}
			label := router + "/streaming/shards=" + strconv.Itoa(shards)
			seq, sh := runEngines(t, mk, reqs, shards)
			diffOutcomes(t, label, seq, sh)
			if seq.Serve == nil || sh.Serve == nil {
				t.Fatalf("%s: streaming run did not carry a ServeAccum", label)
			}
			if seq.Serve.Stats() != sh.Serve.Stats() {
				t.Errorf("%s: merged streaming stats diverge:\n  seq: %+v\n  shd: %+v",
					label, seq.Serve.Stats(), sh.Serve.Stats())
			}
			if !reflect.DeepEqual(seq.Stats(slo), sh.Stats(slo)) {
				t.Errorf("%s: fleet stats diverge", label)
			}
		}
	}
}

// TestStreamingStatsNearExact compares a streaming run's fleet stats to
// the same run in exact mode: counters and maxima identical, latency
// distribution within the sketch's documented error.
func TestStreamingStatsNearExact(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 80, 5), 2.0, 13)
	const slo = 30.0
	run := func(mode metrics.Mode) metrics.FleetStats {
		rt, err := RouterByName("least-work")
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(Config{Devices: equivFleet(t), Router: rt, Seed: 3, Metrics: mode, SLOLatency: slo})
		if err != nil {
			t.Fatal(err)
		}
		out, err := f.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		return out.Stats(slo)
	}
	exact := run(metrics.ModeExact)
	stream := run(metrics.ModeStreaming)
	if stream.Served != exact.Served || stream.Rejected != exact.Rejected ||
		stream.Makespan != exact.Makespan || stream.Goodput != exact.Goodput ||
		stream.SLOAttainment != exact.SLOAttainment {
		t.Errorf("exact-agreement fields diverge:\n  stream: %+v\n  exact: %+v", stream, exact)
	}
	for _, c := range []struct {
		label         string
		stream, exact float64
	}{
		{"p50", stream.P50Latency, exact.P50Latency},
		{"p95", stream.P95Latency, exact.P95Latency},
		{"p99", stream.P99Latency, exact.P99Latency},
		{"mean latency", stream.MeanLatency, exact.MeanLatency},
	} {
		if c.exact == 0 {
			continue
		}
		if rel := math.Abs(c.stream-c.exact) / c.exact; rel > metrics.SketchRelErr {
			t.Errorf("%s: streaming %v vs exact %v, relative error %v > %v",
				c.label, c.stream, c.exact, rel, metrics.SketchRelErr)
		}
	}
}

// TestShardedEquivalenceKVPlane enables the KV memory plane at a tight
// capacity — admission, LRU eviction, and re-prefill penalties all fire
// — and compares the engines for the plane-sensitive routers. The
// cache-aware router probes device planes inside Route, so every
// arrival is a cross-shard barrier; the outcomes must still match the
// sequential engine bit for bit.
func TestShardedEquivalenceKVPlane(t *testing.T) {
	reqs := taggedStream(t, repeatedProblems(t, 60, 5), 2.0, 11)
	for _, router := range []string{"cache-aware", "prefix", "least-work", "rr"} {
		for _, shards := range []int{2, 8} {
			mk := func() Config {
				rt, err := RouterByName(router)
				if err != nil {
					t.Fatal(err)
				}
				return Config{Devices: planeFleet(t, 16<<20), Router: rt, Seed: 3}
			}
			seq, sh := runEngines(t, mk, reqs, shards)
			diffOutcomes(t, router+"+kvplane/shards="+strconv.Itoa(shards), seq, sh)
		}
	}
}
