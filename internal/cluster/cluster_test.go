package cluster

import (
	"math"
	"reflect"
	"testing"

	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// devConfig builds a small, fast per-device deployment.
func devConfig(t testing.TB, gpu hw.GPU, beams int, seed uint64) core.Config {
	t.Helper()
	pol, err := search.New(search.BeamSearch, beams, 4)
	if err != nil {
		t.Fatal(err)
	}
	frac := 0.9
	if gpu.Name == hw.RTX4090.Name {
		frac = 0.4
	}
	return core.Config{
		GPU:            gpu,
		Generator:      model.Qwen25Math1_5B,
		GenSkill:       workload.SkillQwen1_5B,
		Verifier:       model.SkyworkPRM1_5B,
		VerSkill:       workload.SkillSkywork1_5B,
		MemoryFraction: frac,
		Policy:         pol,
		Opts:           core.FastTTSOptions(),
		Seed:           seed,
	}
}

// hetero4 is the seeded heterogeneous 4-device fleet of the acceptance
// tests: two fast 4090s (one straggling), a mid-range 4070 Ti, and a
// low-end 3070 Ti.
func hetero4(t testing.TB) []Device {
	t.Helper()
	return []Device{
		{Config: devConfig(t, hw.RTX4090, 8, 42)},
		{Config: devConfig(t, hw.RTX4090, 8, 43), Slowdown: 4},
		{Config: devConfig(t, hw.RTX4070Ti, 8, 44)},
		{Config: devConfig(t, hw.RTX3070Ti, 8, 45)},
	}
}

// taggedStream builds an open-loop Poisson request stream over the given
// problems, tagged by stream index.
func taggedStream(t testing.TB, probs []*workload.Problem, rate float64, seed uint64) []core.Request {
	t.Helper()
	times := workload.PoissonArrivals(len(probs), rate, rng.New(seed).Child("arrivals"))
	reqs := make([]core.Request, len(probs))
	for i, p := range probs {
		reqs[i] = core.Request{Problem: p, Arrival: times[i], Tag: i}
	}
	return reqs
}

// repeatedProblems returns n requests cycling over k distinct problems —
// the prefix-heavy traffic pattern affinity routing exploits.
func repeatedProblems(t testing.TB, n, k int) []*workload.Problem {
	t.Helper()
	ds := workload.NewDataset(workload.AMC23, rng.New(7))
	out := make([]*workload.Problem, n)
	for i := range out {
		out[i] = ds.Problems[i%k]
	}
	return out
}

func runFleet(t testing.TB, devices []Device, router Router, seed uint64, reqs []core.Request) *Outcome {
	t.Helper()
	f, err := New(Config{Devices: devices, Router: router, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSingleDevicePassThroughMatchesServer: a 1-device fleet under the
// pass-through router must reproduce the single-Server served stream
// bit-identically — the cluster layer adds no simulation artifacts.
func TestSingleDevicePassThroughMatchesServer(t *testing.T) {
	cfg := devConfig(t, hw.RTX4090, 8, 42)
	probs := repeatedProblems(t, 8, 8)
	reqs := taggedStream(t, probs, 0.5, 11)

	srv, err := core.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}

	out := runFleet(t, []Device{{Config: cfg}}, Single{}, 1, reqs)
	if len(out.Results) != len(want) {
		t.Fatalf("fleet served %d results, server %d", len(out.Results), len(want))
	}
	for i, r := range out.Results {
		if r.Device != 0 || r.Requeues != 0 {
			t.Errorf("result %d: device %d requeues %d, want 0 and 0", i, r.Device, r.Requeues)
		}
		if !reflect.DeepEqual(r.ServedResult, want[i]) {
			t.Errorf("result %d differs from single-server stream:\n got %+v\nwant %+v",
				i, r.ServedResult, want[i])
		}
	}
}

// TestFleetDeterminism: equal seeds give bit-identical fleet outcomes for
// every router, including under straggler and fail-stop injection.
func TestFleetDeterminism(t *testing.T) {
	probs := repeatedProblems(t, 10, 3)
	reqs := taggedStream(t, probs, 0.3, 11)
	for _, name := range RouterNames() {
		t.Run(name, func(t *testing.T) {
			run := func() *Outcome {
				devices := []Device{
					{Config: devConfig(t, hw.RTX4090, 8, 42)},
					{Config: devConfig(t, hw.RTX4070Ti, 8, 43), Slowdown: 2},
					{Config: devConfig(t, hw.RTX3070Ti, 8, 44), FailAt: 120},
				}
				r, err := RouterByName(name)
				if err != nil {
					t.Fatal(err)
				}
				return runFleet(t, devices, r, 9, reqs)
			}
			a, b := run(), run()
			if !reflect.DeepEqual(a, b) {
				t.Errorf("router %s: repeated fleet runs differ", name)
			}
		})
	}
}

// TestPrefixAffinityBeatsRoundRobinHitRate: on prefix-heavy traffic over
// a heterogeneous 4-device fleet, affinity routing achieves a strictly
// higher fleet KV-cache hit rate than round-robin, which scatters each
// prompt's repeats across devices.
func TestPrefixAffinityBeatsRoundRobinHitRate(t *testing.T) {
	probs := repeatedProblems(t, 24, 3) // 3 prompts × 8 repeats
	reqs := taggedStream(t, probs, 0.5, 11)

	rr := runFleet(t, hetero4(t), &RoundRobin{}, 9, reqs).Stats(0)
	aff := runFleet(t, hetero4(t), &PrefixAffinity{}, 9, reqs).Stats(0)

	if aff.PrefixHitRate <= rr.PrefixHitRate {
		t.Errorf("prefix-affinity hit rate %.3f not strictly above round-robin %.3f",
			aff.PrefixHitRate, rr.PrefixHitRate)
	}
	if aff.Served != 24 || rr.Served != 24 {
		t.Errorf("served %d/%d of 24 requests", aff.Served, rr.Served)
	}
}

// TestPowerOfTwoBeatsRoundRobinImbalance: on the same heterogeneous
// fleet, load-aware power-of-two-choices routing yields a strictly lower
// load-imbalance coefficient than round-robin, which assigns the 4×
// straggler as much work as the fast devices.
func TestPowerOfTwoBeatsRoundRobinImbalance(t *testing.T) {
	probs := repeatedProblems(t, 24, 24)
	reqs := taggedStream(t, probs, 0.5, 11)

	rr := runFleet(t, hetero4(t), &RoundRobin{}, 9, reqs).Stats(0)
	p2c := runFleet(t, hetero4(t), PowerOfTwo{}, 9, reqs).Stats(0)

	if p2c.ImbalanceCV >= rr.ImbalanceCV {
		t.Errorf("p2c imbalance CV %.3f not strictly below round-robin %.3f",
			p2c.ImbalanceCV, rr.ImbalanceCV)
	}
}

// TestFailStopRequeuesToSurvivors: when a device fail-stops mid-run, its
// unfinished requests migrate to the survivors and every request is still
// reported exactly once.
func TestFailStopRequeuesToSurvivors(t *testing.T) {
	const failAt = 20.0
	devices := []Device{
		{Config: devConfig(t, hw.RTX4090, 8, 42), FailAt: failAt},
		{Config: devConfig(t, hw.RTX4090, 8, 43)},
	}
	probs := repeatedProblems(t, 10, 10)
	reqs := taggedStream(t, probs, 0.5, 11)
	out := runFleet(t, devices, &RoundRobin{}, 9, reqs)

	if out.Requeues == 0 {
		t.Fatal("no requeues despite a mid-run fail-stop")
	}
	seen := map[int]int{}
	for _, r := range out.Results {
		seen[r.Tag]++
		if r.Rejected {
			t.Errorf("request %d rejected; survivors had capacity", r.Tag)
		}
		if r.Device == 0 {
			if r.Start >= failAt {
				t.Errorf("request %d started on the failed device at %v, after its fail-stop at %v",
					r.Tag, r.Start, failAt)
			}
		}
		if r.Requeues > 0 && r.Device != 1 {
			t.Errorf("requeued request %d completed on device %d, want survivor 1", r.Tag, r.Device)
		}
		// Client-facing telemetry survives the migration: the arrival is
		// the original submission time, not the requeue instant.
		if r.Arrival != reqs[r.Tag].Arrival {
			t.Errorf("request %d arrival %v, want submission time %v",
				r.Tag, r.Arrival, reqs[r.Tag].Arrival)
		}
		if got := r.Finish - r.Arrival; math.Abs(r.WallLatency-got) > 1e-12 {
			t.Errorf("request %d WallLatency %v != Finish-Arrival %v", r.Tag, r.WallLatency, got)
		}
		if r.Requeues > 0 && r.Start < failAt {
			t.Errorf("requeued request %d started at %v, before the fail-stop at %v freed it",
				r.Tag, r.Start, failAt)
		}
	}
	for i := range reqs {
		if seen[i] != 1 {
			t.Errorf("request %d reported %d times, want exactly once", i, seen[i])
		}
	}
	st := out.Stats(0)
	if st.FailedDevices != 1 {
		t.Errorf("failed devices %d, want 1", st.FailedDevices)
	}
	if st.Requeues != out.Requeues {
		t.Errorf("stats requeues %d != outcome %d", st.Requeues, out.Requeues)
	}
	if !out.Devices[0].Failed || out.Devices[1].Failed {
		t.Errorf("device failure flags %v/%v, want true/false",
			out.Devices[0].Failed, out.Devices[1].Failed)
	}
	// The failed device's lifetime starts at the fail time and stretches
	// at most through its final overrunning slice, keeping utilization
	// within [0, 1].
	if lt := out.Devices[0].Lifetime; lt < failAt {
		t.Errorf("failed device lifetime %v below fail time %v", lt, failAt)
	}
	for i, ds := range st.Devices {
		if ds.Utilization < 0 || ds.Utilization > 1 {
			t.Errorf("device %d utilization %v outside [0,1]", i, ds.Utilization)
		}
	}
}

// TestWholeFleetFailureShedsRemainingLoad: once every device has
// fail-stopped, undeliverable requests come back Rejected with Device -1
// rather than disappearing.
func TestWholeFleetFailureShedsRemainingLoad(t *testing.T) {
	devices := []Device{{Config: devConfig(t, hw.RTX4090, 8, 42), FailAt: 30}}
	probs := repeatedProblems(t, 6, 6)
	reqs := taggedStream(t, probs, 0.2, 11) // stream extends well past the failure
	out := runFleet(t, devices, Single{}, 9, reqs)

	if len(out.Results) != len(reqs) {
		t.Fatalf("reported %d of %d requests", len(out.Results), len(reqs))
	}
	shed := 0
	for _, r := range out.Results {
		if r.Rejected {
			shed++
			if r.Device != -1 {
				t.Errorf("lost-capacity rejection on device %d, want -1", r.Device)
			}
			if r.Result != nil {
				t.Error("rejected request carries a Result")
			}
		}
	}
	if shed == 0 {
		t.Error("no shed requests despite whole-fleet failure at t=30")
	}
}

// TestPrefixAccountingSkipsShedRequests: requests shed by a device's
// admission control prefill nothing, so they must not move the fleet
// prefix hit/miss counters.
func TestPrefixAccountingSkipsShedRequests(t *testing.T) {
	devices := []Device{{
		Config: devConfig(t, hw.RTX4090, 8, 42),
		Policy: sched.AdmissionLimit{Inner: sched.FCFS{}, MaxInFlight: 1},
	}}
	// Four copies of one prompt in a simultaneous burst: one is admitted
	// (a miss), three are shed before any prefill.
	probs := repeatedProblems(t, 4, 1)
	reqs := make([]core.Request, len(probs))
	for i, p := range probs {
		reqs[i] = core.Request{Problem: p, Tag: i}
	}
	out := runFleet(t, devices, Single{}, 9, reqs)

	served, shed := 0, 0
	for _, r := range out.Results {
		if r.Rejected {
			shed++
		} else {
			served++
		}
	}
	if served != 1 || shed != 3 {
		t.Fatalf("served %d shed %d of a 4-burst with MaxInFlight=1, want 1 and 3", served, shed)
	}
	if out.PrefixHits != 0 {
		t.Errorf("prefix hits %d from shed requests, want 0", out.PrefixHits)
	}
	if want := int64(probs[0].PromptTokens); out.PrefixMisses != want {
		t.Errorf("prefix misses %d, want the one served prefill (%d)", out.PrefixMisses, want)
	}
}

// TestStragglerStretchesWallClock: a slowdown factor stretches a device's
// served wall latency relative to its nominal service time.
func TestStragglerStretchesWallClock(t *testing.T) {
	cfg := devConfig(t, hw.RTX4090, 8, 42)
	probs := repeatedProblems(t, 1, 1)
	reqs := []core.Request{{Problem: probs[0], Tag: 0}}

	fast := runFleet(t, []Device{{Config: cfg}}, Single{}, 1, reqs)
	slow := runFleet(t, []Device{{Config: cfg, Slowdown: 3}}, Single{}, 1, reqs)

	ff, sf := fast.Results[0], slow.Results[0]
	if want := 3 * ff.Finish; math.Abs(sf.Finish-want) > 1e-9*want {
		t.Errorf("straggler finish %v, want 3× nominal %v", sf.Finish, ff.Finish)
	}
	if sf.Latency != ff.Latency {
		t.Errorf("nominal service time changed under slowdown: %v vs %v", sf.Latency, ff.Latency)
	}
}

// TestRouterByName covers the name table and the error path.
func TestRouterByName(t *testing.T) {
	for name, want := range map[string]string{
		"":               "rr",
		"rr":             "rr",
		"round-robin":    "rr",
		"single":         "single",
		"passthrough":    "single",
		"least-work":     "least-work",
		"lw":             "least-work",
		"jsq":            "jsq",
		"shortest-queue": "jsq",
		"P2C":            "p2c",
		"power-of-two":   "p2c",
		"prefix":         "prefix",
		"cache-aware":    "cache-aware",
		"cache":          "cache-aware",
	} {
		r, err := RouterByName(name)
		if err != nil {
			t.Errorf("RouterByName(%q): %v", name, err)
			continue
		}
		if r.Name() != want {
			t.Errorf("RouterByName(%q) = %s, want %s", name, r.Name(), want)
		}
	}
	if _, err := RouterByName("random"); err == nil {
		t.Error("RouterByName(random) did not fail")
	}
}

// TestFleetSingleRun: a Fleet refuses a second Run — routers and engines
// carry state.
func TestFleetSingleRun(t *testing.T) {
	f, err := New(Config{Devices: []Device{{Config: devConfig(t, hw.RTX4090, 8, 42)}}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(nil); err == nil {
		t.Error("second Run did not fail")
	}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty fleet")
	}
	bad := devConfig(t, hw.RTX4090, 8, 42)
	bad.GPU = hw.GPU{}
	if _, err := New(Config{Devices: []Device{{Config: bad}}}); err == nil {
		t.Error("New accepted an invalid device config")
	}
}
