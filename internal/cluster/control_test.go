package cluster

import (
	"reflect"
	"testing"

	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/rng"
	"fasttts/internal/workload"
)

// ctlStream builds a MATH500 request stream with the given arrivals.
func ctlStream(t testing.TB, arrivals []float64) []core.Request {
	t.Helper()
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	reqs := make([]core.Request, len(arrivals))
	for i, at := range arrivals {
		reqs[i] = core.Request{Problem: ds.Problems[i%len(ds.Problems)], Arrival: at, Tag: i}
	}
	return reqs
}

// burstyArrivals is a two-phase load: a dense burst that overloads a
// small fleet, then a long sparse tail that underloads it — exactly the
// shape a scale-up-then-scale-down controller should track.
func burstyArrivals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		if i < n*2/3 {
			out[i] = float64(i) * 1.5 // dense burst
		} else {
			out[i] = float64(n*2/3)*1.5 + float64(i-n*2/3)*120 // sparse tail
		}
	}
	return out
}

// elasticConfig is a 2-founder fleet with a 2-template warm pool.
func elasticConfig(t testing.TB, ctl control.Controller, interval float64) Config {
	t.Helper()
	return Config{
		Devices: []Device{
			{Config: devConfig(t, hw.RTX4090, 8, 42)},
			{Config: devConfig(t, hw.RTX4070Ti, 8, 43)},
		},
		Router: LeastWork{},
		Seed:   5,
		Control: &ControlConfig{
			Controller:  ctl,
			Interval:    interval,
			Warm:        []Device{{Config: devConfig(t, hw.RTX4090, 8, 60)}, {Config: devConfig(t, hw.RTX3070Ti, 8, 61)}},
			WarmupDelay: 5,
			SLOLatency:  200,
			MaxTier:     2,
		},
	}
}

func mustRun(t testing.TB, cfg Config, reqs []core.Request) *Outcome {
	t.Helper()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := f.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestElasticJoinAndDrainLifecycle drives the threshold controller
// through a burst-then-tail load and checks the full lifecycle: warm
// devices join only after the warm-up delay, drained devices keep their
// accepted work, telemetry records live intervals, and no request is
// lost.
func TestElasticJoinAndDrainLifecycle(t *testing.T) {
	reqs := ctlStream(t, burstyArrivals(30))
	cfg := elasticConfig(t, control.NewThreshold(), 15)
	out := mustRun(t, cfg, reqs)

	if out.Control == nil {
		t.Fatal("controller run missing ControlStats")
	}
	if out.Control.Ticks == 0 {
		t.Fatal("no control ticks observed")
	}
	if out.Control.ScaleUps == 0 {
		t.Fatal("threshold controller never scaled up under a 1.5s-spacing burst on 2 devices")
	}
	if out.Control.ScaleDowns == 0 {
		t.Fatal("threshold controller never scaled down through the sparse tail")
	}
	if len(out.Devices) <= 2 {
		t.Fatalf("no warm-pool instances materialized: %d devices", len(out.Devices))
	}

	// Conservation: every request exactly once.
	seen := make(map[int]int)
	for _, r := range out.Results {
		seen[r.Tag]++
	}
	for i := range reqs {
		if seen[i] != 1 {
			t.Errorf("request %d reported %d times", i, seen[i])
		}
	}

	// Joined devices: live interval starts at join, and nothing they
	// served started before they were routable.
	joinAt := make(map[int]float64)
	for _, rec := range out.Actions {
		if rec.Verb == control.ScaleUp {
			for _, di := range rec.Devices {
				joinAt[di] = rec.Time + cfg.Control.WarmupDelay
			}
		}
	}
	if len(joinAt) == 0 {
		t.Fatal("no scale-up action in the log")
	}
	for di, at := range joinAt {
		d := out.Devices[di]
		if d.LiveStart != at {
			t.Errorf("device %d LiveStart = %v, want join time %v", di, d.LiveStart, at)
		}
		for _, r := range out.Results {
			if r.Device == di && !r.Rejected && r.Start < at {
				t.Errorf("device %d started request %d at %v, before its join at %v", di, r.Tag, r.Start, at)
			}
		}
	}

	// Drained devices: marked, live interval ends at drain completion,
	// and nothing routed to them after the drain decision.
	drainAt := make(map[int]float64)
	for _, rec := range out.Actions {
		if rec.Verb == control.ScaleDown {
			for _, di := range rec.Devices {
				drainAt[di] = rec.Time
			}
		}
	}
	if len(drainAt) == 0 {
		t.Fatal("no scale-down action in the log")
	}
	for di, at := range drainAt {
		d := out.Devices[di]
		if !d.Drained {
			t.Errorf("device %d drained at t=%v but not marked Drained", di, at)
		}
		if d.LiveStart+d.Lifetime < at {
			t.Errorf("device %d live interval ends %v, before its drain decision %v", di, d.LiveStart+d.Lifetime, at)
		}
		for _, r := range out.Results {
			if r.Device == di && !r.Rejected && r.Arrival > at && r.Requeues == 0 {
				t.Errorf("device %d served request %d arriving at %v, after drain at %v", di, r.Tag, r.Arrival, at)
			}
		}
	}
}

// TestElasticActionLogDeterministic is the regression-harness property:
// equal seeds give bit-identical action logs, results, and stats.
func TestElasticActionLogDeterministic(t *testing.T) {
	reqs := ctlStream(t, burstyArrivals(24))
	for _, name := range control.Names() {
		runOnce := func() *Outcome {
			ctl, err := control.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			return mustRun(t, elasticConfig(t, ctl, 12), reqs)
		}
		a, b := runOnce(), runOnce()
		if !reflect.DeepEqual(a.Actions, b.Actions) {
			t.Errorf("%s: action logs diverge:\n%v\nvs\n%v", name, a.Actions, b.Actions)
		}
		if !reflect.DeepEqual(a.Results, b.Results) {
			t.Errorf("%s: served results diverge", name)
		}
		if !reflect.DeepEqual(a.Control, b.Control) {
			t.Errorf("%s: control stats diverge: %+v vs %+v", name, a.Control, b.Control)
		}
	}
}

// TestBudgetGovernorDegradesWidth: under a storm the budget controller
// raises the tier and requests are served at a narrowed width; once load
// clears the tier restores.
func TestBudgetGovernorDegradesWidth(t *testing.T) {
	// Three phases: a synchronized burst at t=0 saturates both devices,
	// mid-storm arrivals land while completions are reporting long queue
	// delays (these get degraded), and a sparse far tail arrives after
	// the quiet period has restored the full budget.
	arrivals := make([]float64, 24)
	for i := 12; i < 20; i++ {
		arrivals[i] = 22 + float64(i-12)*5 // mid-storm: routed under a raised tier
	}
	for i := 20; i < 24; i++ {
		arrivals[i] = 800 + float64(i-20)*200 // far tail: budget restored
	}
	reqs := ctlStream(t, arrivals)
	out := mustRun(t, elasticConfig(t, control.NewBudget(), 10), reqs)

	if out.Control.TierChanges == 0 {
		t.Fatal("budget governor never moved the tier under a 12-request burst")
	}
	if out.Control.DegradedRequests == 0 {
		t.Fatal("no request was served degraded")
	}
	sawNarrow := false
	for _, r := range out.Results {
		if r.Rejected {
			continue
		}
		if r.Width < 8 {
			sawNarrow = true
			if r.Width < 2 {
				t.Errorf("request %d served at width %d, below tier-%d floor", r.Tag, r.Width, out.Control.FinalTier)
			}
		}
	}
	if !sawNarrow {
		t.Fatal("no served result carries a narrowed width")
	}
	if out.Control.FinalTier != 0 {
		t.Errorf("tier not restored after load cleared: final tier %d", out.Control.FinalTier)
	}
	// The governor never touches membership.
	if out.Control.ScaleUps != 0 || out.Control.ScaleDowns != 0 {
		t.Errorf("budget governor changed membership: %+v", out.Control)
	}
	if len(out.Devices) != 2 {
		t.Errorf("budget run grew the fleet to %d devices", len(out.Devices))
	}
}

// TestStaticControllerMatchesNoController pins the control plane's
// zero-cost property: a fleet under the static controller serves the
// stream bit-identically to the same fleet with no controller at all.
// (Control ticks bound device step horizons, which §4.1.2 speculation
// preemption can observe, so this holds because ticks without actions
// are pure observations — the assertion proves the observation path has
// no side effects on the served stream.)
func TestStaticControllerMatchesNoController(t *testing.T) {
	reqs := ctlStream(t, burstyArrivals(16))
	base := Config{
		Devices: []Device{
			{Config: devConfig(t, hw.RTX4090, 8, 42)},
			{Config: devConfig(t, hw.RTX4070Ti, 8, 43)},
		},
		Router: LeastWork{},
		Seed:   5,
	}
	plain := mustRun(t, base, reqs)

	withCtl := base
	withCtl.Control = &ControlConfig{Controller: control.Static{}, Interval: 1e6}
	ctl := mustRun(t, withCtl, reqs)

	if len(plain.Results) != len(ctl.Results) {
		t.Fatalf("%d vs %d results", len(plain.Results), len(ctl.Results))
	}
	for i := range plain.Results {
		a, b := plain.Results[i], ctl.Results[i]
		if a.Tag != b.Tag || a.Start != b.Start || a.Finish != b.Finish || a.UsefulTokens != b.UsefulTokens {
			t.Fatalf("result %d diverges under static controller: %+v vs %+v", i, a.ServedResult, b.ServedResult)
		}
	}
	if len(ctl.Actions) != 0 {
		t.Errorf("static controller logged actions: %v", ctl.Actions)
	}
}

// TestStaticMembershipLifetimeBitIdentity is the satellite contract at
// the fleet level: without joins or drains, every non-failed device's
// Lifetime is exactly the makespan (LiveStart 0) and the imbalance
// coefficient equals the raw busy-time CV bit-for-bit.
func TestStaticMembershipLifetimeBitIdentity(t *testing.T) {
	reqs := ctlStream(t, burstyArrivals(12))
	out := mustRun(t, Config{Devices: hetero4(t), Router: &RoundRobin{}, Seed: 3}, reqs)
	makespan := 0.0
	for _, r := range out.Results {
		if !r.Rejected && r.Finish > makespan {
			makespan = r.Finish
		}
	}
	var busy []float64
	for i, d := range out.Devices {
		if d.LiveStart != 0 || d.Drained {
			t.Errorf("static device %d carries dynamic-membership telemetry: %+v", i, d)
		}
		if !d.Failed && d.Lifetime != makespan {
			t.Errorf("device %d Lifetime = %v, want makespan %v", i, d.Lifetime, makespan)
		}
		busy = append(busy, d.Busy)
	}
	st := out.Stats(0)
	if want := metrics.CoefficientOfVariation(busy); st.ImbalanceCV != want {
		t.Errorf("static ImbalanceCV = %v, want raw busy CV %v (bitwise)", st.ImbalanceCV, want)
	}
	if st.DeviceSeconds == 0 {
		t.Error("DeviceSeconds not accounted")
	}
}

// TestControlConfigValidation covers the fail-fast paths.
func TestControlConfigValidation(t *testing.T) {
	dev := Device{Config: devConfig(t, hw.RTX4090, 8, 42)}
	cases := []struct {
		name string
		cc   ControlConfig
	}{
		{"zero interval", ControlConfig{Interval: 0}},
		{"negative interval", ControlConfig{Interval: -1}},
		{"negative warmup", ControlConfig{Interval: 10, WarmupDelay: -2}},
		{"failat in warm pool", ControlConfig{Interval: 10, Warm: []Device{{Config: dev.Config, FailAt: 50}}}},
		{"negative min devices", ControlConfig{Interval: 10, MinDevices: -1}},
	}
	for _, tc := range cases {
		cc := tc.cc
		_, err := New(Config{Devices: []Device{dev}, Control: &cc})
		if err == nil {
			t.Errorf("%s: New accepted %+v", tc.name, tc.cc)
		}
	}
	// Defaults fill in.
	cc := ControlConfig{Interval: 10, Warm: []Device{dev}}
	if _, err := New(Config{Devices: []Device{dev}, Control: &cc}); err != nil {
		t.Fatalf("valid control config rejected: %v", err)
	}
	if cc.MinDevices != 1 || cc.MaxDevices != 2 {
		t.Errorf("defaults not applied: MinDevices=%d MaxDevices=%d", cc.MinDevices, cc.MaxDevices)
	}
}

// TestElasticScaleToFit is the headline acceptance criterion: on a
// diurnal (sinusoidal-rate) workload, the threshold controller attains
// at least the statically peak-provisioned fleet's SLO attainment while
// consuming measurably fewer device-seconds.
func TestElasticScaleToFit(t *testing.T) {
	r := rng.New(11).Child("test/diurnal")
	arrivals := workload.SinusoidalArrivals(36, 0.09, 1, 240, r)
	reqs := ctlStream(t, arrivals)

	founders := []Device{
		{Config: devConfig(t, hw.RTX4090, 8, 42)},
		{Config: devConfig(t, hw.RTX4070Ti, 8, 43)},
	}
	warm := []Device{
		{Config: devConfig(t, hw.RTX4090, 8, 60)},
		{Config: devConfig(t, hw.RTX4090, 8, 61)},
	}
	const slo = 300.0

	// Static baseline: provisioned for the peak — founders plus the whole
	// warm pool live from t=0.
	static := mustRun(t, Config{
		Devices: append(append([]Device{}, founders...), warm...),
		Router:  LeastWork{},
		Seed:    5,
	}, reqs)

	thr := control.NewThreshold()
	thr.HighDelay = 20
	elastic := mustRun(t, Config{
		Devices: founders,
		Router:  LeastWork{},
		Seed:    5,
		Control: &ControlConfig{
			Controller:  thr,
			Interval:    30,
			Warm:        warm,
			WarmupDelay: 10,
			SLOLatency:  slo,
		},
	}, reqs)

	ss, es := static.Stats(slo), elastic.Stats(slo)
	t.Logf("static:  SLO %.3f, device-seconds %.0f", ss.SLOAttainment, ss.DeviceSeconds)
	t.Logf("elastic: SLO %.3f, device-seconds %.0f (ups %d, downs %d)",
		es.SLOAttainment, es.DeviceSeconds, elastic.Control.ScaleUps, elastic.Control.ScaleDowns)
	if es.SLOAttainment < ss.SLOAttainment {
		t.Errorf("elastic SLO attainment %.3f below static %.3f", es.SLOAttainment, ss.SLOAttainment)
	}
	if es.DeviceSeconds > 0.9*ss.DeviceSeconds {
		t.Errorf("elastic device-seconds %.0f not measurably below static %.0f",
			es.DeviceSeconds, ss.DeviceSeconds)
	}
}
