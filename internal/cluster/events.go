package cluster

// Event plumbing of the fleet core: the global event-kind ordering, a
// stable min-heap of pending arrivals, a pre-sorted fail-stop schedule,
// the hedge-cancellation queue, and an indexed min-heap of device wake
// times. Together they let the fleet loop touch only the devices an
// event concerns — O(log n) dispatch per event — instead of re-scanning
// and re-stepping all n devices per event.

import (
	"container/heap"
	"sort"
)

// Event kinds at one instant resolve in a fixed priority — the shared
// ordering contract of both execution engines:
//
//	join < fail < cancel < tick < arrival
//
// A join makes the device routable before anything else sees the fleet;
// failures beat cancellations (cancelling work on a failed device is a
// no-op — the fail-stop already withdrew it); hedge cancellations free
// capacity before control ticks observe load and before same-instant
// arrivals route; and control ticks observe and actuate before the
// arrivals of the same instant are routed.
const (
	evJoin = iota
	evFail
	evCancel
	evTick
	evArrival
)

// cancelEvent is one scheduled fleet-level cancellation: at the instant
// a hedged request's first copy completed, the losing copy (tag) on dev
// is released. Cancels are consumed in insertion order — the canonical
// completion-merge order shared by both engines — so equal seeds give
// bit-identical cancellation sequences.
type cancelEvent struct {
	at  float64
	dev int
	tag int
}

// arrivalHeap orders pending requests by arrival time, breaking ties by
// insertion sequence so equal-time arrivals pop in insertion order —
// exactly the stable order of the sorted-slice queue it replaces.
type arrivalHeap []pendingReq

func (h arrivalHeap) Len() int { return len(h) }
func (h arrivalHeap) Less(i, j int) bool {
	if h[i].req.Arrival != h[j].req.Arrival {
		return h[i].req.Arrival < h[j].req.Arrival
	}
	return h[i].seq < h[j].seq
}
func (h arrivalHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *arrivalHeap) Push(x any)   { *h = append(*h, x.(pendingReq)) }
func (h *arrivalHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// failEvent is one scheduled device fail-stop.
type failEvent struct {
	at  float64
	dev int
}

// failSchedule returns the fleet's fail-stop events ordered by time,
// ties by device index — the order the old per-event O(n) scan produced,
// computed once.
func failSchedule(devs []*device) []failEvent {
	var out []failEvent
	for i, d := range devs {
		if d.spec.FailAt > 0 {
			out = append(out, failEvent{at: d.spec.FailAt, dev: i})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].at != out[j].at {
			return out[i].at < out[j].at
		}
		return out[i].dev < out[j].dev
	})
	return out
}

// wakeHeap is an indexed min-heap of device wake times: the earliest
// horizon at which each device's loop would make progress. Devices with
// nothing to do are absent. pos tracks each device's heap position so
// updates are O(log n).
type wakeHeap struct {
	items []wakeItem
	pos   []int // device index -> heap position, -1 when absent
}

type wakeItem struct {
	dev int
	at  float64
}

func newWakeHeap(n int) *wakeHeap {
	w := &wakeHeap{pos: make([]int, n)}
	for i := range w.pos {
		w.pos[i] = -1
	}
	return w
}

func (w *wakeHeap) Len() int { return len(w.items) }
func (w *wakeHeap) Less(i, j int) bool {
	if w.items[i].at != w.items[j].at {
		return w.items[i].at < w.items[j].at
	}
	return w.items[i].dev < w.items[j].dev
}
func (w *wakeHeap) Swap(i, j int) {
	w.items[i], w.items[j] = w.items[j], w.items[i]
	w.pos[w.items[i].dev] = i
	w.pos[w.items[j].dev] = j
}
func (w *wakeHeap) Push(x any) {
	it := x.(wakeItem)
	w.pos[it.dev] = len(w.items)
	w.items = append(w.items, it)
}
func (w *wakeHeap) Pop() any {
	it := w.items[len(w.items)-1]
	w.items = w.items[:len(w.items)-1]
	w.pos[it.dev] = -1
	return it
}

// grow extends the heap's device-index space by n devices (warm-pool
// joins): the new devices start absent.
func (w *wakeHeap) grow(n int) {
	for i := 0; i < n; i++ {
		w.pos = append(w.pos, -1)
	}
}

// update sets (or inserts) the device's wake time.
func (w *wakeHeap) update(dev int, at float64) {
	if p := w.pos[dev]; p >= 0 {
		if w.items[p].at == at {
			return
		}
		w.items[p].at = at
		heap.Fix(w, p)
		return
	}
	heap.Push(w, wakeItem{dev: dev, at: at})
}

// remove deletes the device from the heap if present.
func (w *wakeHeap) remove(dev int) {
	if p := w.pos[dev]; p >= 0 {
		heap.Remove(w, p)
	}
}

// min returns the earliest wake time in the heap.
func (w *wakeHeap) min() (float64, bool) {
	if len(w.items) == 0 {
		return 0, false
	}
	return w.items[0].at, true
}

// popDue appends to buf the indices of every device whose wake time is
// within the horizon (horizon < 0 means no bound, i.e. all devices in
// the heap), removing them from the heap, and returns buf sorted by
// device index — the deterministic stepping order of a collect pass.
func (w *wakeHeap) popDue(horizon float64, buf []int) []int {
	for w.Len() > 0 && (horizon < 0 || w.items[0].at <= horizon) {
		buf = append(buf, heap.Pop(w).(wakeItem).dev)
	}
	sort.Ints(buf)
	return buf
}
