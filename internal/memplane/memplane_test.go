package memplane

import (
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/model"
)

func newTestPlane(capacityTokens int64) *Plane {
	bpt := model.Qwen25Math1_5B.KVBytesPerToken()
	return New(Config{CapacityBytes: capacityTokens * bpt}, hw.RTX4090, model.Qwen25Math1_5B)
}

func TestAdmitMissThenHit(t *testing.T) {
	p := newTestPlane(10000)
	s1, pen1 := p.Admit("gsm8k/1", 200)
	if pen1 <= 0 {
		t.Fatalf("cold admit penalty = %v, want > 0", pen1)
	}
	p.Finish(s1)
	s2, pen2 := p.Admit("gsm8k/1", 200)
	if pen2 != 0 {
		t.Fatalf("warm admit penalty = %v, want 0 (full prefix hit)", pen2)
	}
	p.Finish(s2)
	st := p.Stats()
	if st.HitTokens != 200 || st.MissTokens != 200 {
		t.Errorf("hit/miss = %d/%d, want 200/200", st.HitTokens, st.MissTokens)
	}
	if st.ReprefillSeconds != pen1 {
		t.Errorf("ReprefillSeconds = %v, want %v", st.ReprefillSeconds, pen1)
	}
}

func TestDistinctKeysNeverShare(t *testing.T) {
	p := newTestPlane(10000)
	s1, _ := p.Admit("gsm8k/1", 100)
	s2, pen := p.Admit("gsm8k/2", 100)
	if pen <= 0 {
		t.Error("distinct key admitted with zero penalty (prefix aliasing)")
	}
	if got := p.Stats().HitTokens; got != 0 {
		t.Errorf("HitTokens = %d across distinct keys, want 0", got)
	}
	p.Finish(s1)
	p.Finish(s2)
}

func TestEvictionUnderPressure(t *testing.T) {
	p := newTestPlane(250)
	for i, key := range []string{"a/0", "b/0", "c/0"} {
		s, _ := p.Admit(key, 100)
		p.Finish(s)
		_ = i
	}
	st := p.Stats()
	if st.EvictedTokens == 0 {
		t.Error("no eviction despite 300 tokens through a 250-token cache")
	}
	if st.UsedTokens > st.CapacityTokens {
		t.Errorf("used %d > capacity %d", st.UsedTokens, st.CapacityTokens)
	}
	// The oldest prefix must be gone, the newest resident.
	if got := p.ResidentPromptTokens("a/0", 100); got != 0 {
		t.Errorf("LRU prefix still resident: %d tokens", got)
	}
	if got := p.ResidentPromptTokens("c/0", 100); got != 100 {
		t.Errorf("MRU prefix resident = %d, want 100", got)
	}
}

func TestDecodeGrowShrinkDrop(t *testing.T) {
	p := newTestPlane(10000)
	s, _ := p.Admit("gsm8k/1", 100)
	base := p.Stats().UsedTokens
	p.SyncDecode(s, 50)
	if got := p.Stats().UsedTokens; got != base+50 {
		t.Fatalf("used = %d after grow, want %d", got, base+50)
	}
	p.SyncDecode(s, 80)
	if got := p.Stats().UsedTokens; got != base+80 {
		t.Fatalf("used = %d after second grow, want %d", got, base+80)
	}
	p.SyncDecode(s, 30) // narrow: suffix becomes evictable garbage, dropped
	if got := p.Stats().UsedTokens; got != base+30 {
		t.Fatalf("used = %d after shrink, want %d", got, base+30)
	}
	p.SyncDecode(s, 60) // regrow after shrink must stay consistent
	if got := p.Stats().UsedTokens; got != base+60 {
		t.Fatalf("used = %d after regrow, want %d", got, base+60)
	}
	p.Finish(s)
	// Decode garbage evicted, prompt stays resident for reuse.
	if got := p.Stats().UsedTokens; got != base {
		t.Errorf("used = %d after finish, want %d (prompt only)", got, base)
	}
	if got := p.ResidentPromptTokens("gsm8k/1", 100); got != 100 {
		t.Errorf("prompt resident = %d after finish, want 100", got)
	}
}

func TestDecodePrivacy(t *testing.T) {
	// Two sessions on the same prompt must not share decode state.
	p := newTestPlane(10000)
	a, _ := p.Admit("gsm8k/1", 50)
	b, _ := p.Admit("gsm8k/1", 50)
	p.SyncDecode(a, 40)
	p.SyncDecode(b, 40)
	if got := p.Stats().UsedTokens; got != 50+80 {
		t.Errorf("used = %d, want 130 (shared prompt + 2 private chains)", got)
	}
	p.Finish(a)
	p.Finish(b)
}

func TestUncachablePromptRunsUnresident(t *testing.T) {
	p := newTestPlane(100)
	s, pen := p.Admit("big/0", 500) // exceeds capacity outright
	if pen <= 0 {
		t.Error("uncachable prompt should still be charged a full re-prefill")
	}
	if p.Stats().MissTokens != 500 {
		t.Errorf("MissTokens = %d, want 500", p.Stats().MissTokens)
	}
	if got := p.ResidentPromptTokens("big/0", 500); got != 0 {
		t.Errorf("uncachable prompt reads resident: %d", got)
	}
	p.SyncDecode(s, 10) // decode chain without a prompt root still works
	if got := p.Stats().UsedTokens; got != 10 {
		t.Errorf("used = %d, want 10", got)
	}
	p.Finish(s)
	if got := p.Stats().UsedTokens; got != 0 {
		t.Errorf("used = %d after finish, want 0", got)
	}
}

func TestFinishIdempotentAndOccupancy(t *testing.T) {
	p := newTestPlane(1000)
	s, _ := p.Admit("k/0", 500)
	if f := p.OccupiedFraction(); f != 0.5 {
		t.Errorf("OccupiedFraction = %v, want 0.5", f)
	}
	p.Finish(s)
	p.Finish(s)
	p.SyncDecode(s, 100) // no-op on finished session
	if got := p.Stats().UsedTokens; got != 500 {
		t.Errorf("used = %d, want 500", got)
	}
}

func TestReprefillCostScalesWithMiss(t *testing.T) {
	p := newTestPlane(100000)
	_, penSmall := p.Admit("a/0", 100)
	_, penLarge := p.Admit("b/0", 2000)
	if penLarge <= penSmall {
		t.Errorf("penalty not increasing in miss size: %v <= %v", penLarge, penSmall)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() Stats {
		p := newTestPlane(300)
		keys := []string{"a/0", "b/0", "a/0", "c/0", "b/0", "a/0"}
		var live []*Session
		for i, k := range keys {
			s, _ := p.Admit(k, 80)
			p.SyncDecode(s, 20+i)
			live = append(live, s)
			if i%2 == 1 {
				p.Finish(live[i-1])
			}
		}
		for _, s := range live {
			p.Finish(s)
		}
		return p.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"zero value", Config{}, true},
		{"enabled", Config{CapacityBytes: 1 << 20}, true},
		{"negative capacity", Config{CapacityBytes: -1}, false},
		{"negative bytes per token", Config{CapacityBytes: 1, BytesPerToken: -2}, false},
		{"negative block", Config{CapacityBytes: 1, BlockTokens: -1}, false},
	}
	for _, tc := range cases {
		if err := tc.cfg.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}
