// Package memplane is the per-device KV-cache memory plane: it gives a
// serving device a finite KV budget (sized from its hw.GPU tier), charges
// every admitted request for its prompt prefix plus its live per-beam
// decode state, evicts under pressure with LRU, and converts prompt-prefix
// cache misses into deterministic re-prefill latency through the roofline
// model — so a prefix hit and a prefix miss have genuinely different
// costs, which is what makes prefix-aware routing a real trade-off rather
// than a free heuristic (EdgeReasoning, arXiv 2511.01866; paper §4.2).
//
// Memory model. Each device owns one kvcache.Cache (the radix-tree prefix
// cache) holding entries of BytesPerToken bytes — by default the
// generator's KV footprint per token, 2·Layers·KVHeads·HeadDim·2 bytes
// (K and V vectors, FP16). The plane's capacity is the device's KV budget:
// usable VRAM minus generator+verifier weights minus the workspace
// reservation (core.Config.KVBudget), or an explicit byte override.
//
// Determinism contract. The plane is driven only from its device's
// goroutine-confined core.Loop at virtual-time order points (admission,
// slice boundaries, completion), and every cache operation is a pure
// function of the operation sequence — token identities derive from
// prefix keys and per-device admission ordinals, never from map iteration,
// wall clocks, or randomness. A zero-capacity plane is never constructed
// (the loop carries a nil plane), so the disabled configuration is
// bit-identical to builds without the plane. Cross-device reads (the
// router probes below) happen only at fleet event barriers, when every
// device loop is quiesced at the event's horizon.
package memplane

import (
	"fmt"

	"fasttts/internal/hw"
	"fasttts/internal/kvcache"
	"fasttts/internal/model"
)

// Config sizes one device's memory plane. The zero value disables the
// plane entirely (today's no-memory-model behavior).
type Config struct {
	// CapacityBytes is the KV budget the plane manages; <= 0 disables the
	// plane.
	CapacityBytes int64
	// BytesPerToken is the KV footprint of one cached token; 0 derives it
	// from the generator architecture (model.Config.KVBytesPerToken).
	BytesPerToken int64
	// BlockTokens is the paged-allocator block size in tokens; 0 means 1
	// (exact token-granular allocation).
	BlockTokens int
}

// Enabled reports whether this configuration instantiates a plane.
func (c Config) Enabled() bool { return c.CapacityBytes > 0 }

// Validate fail-fasts on nonsensical inputs. The zero value is valid.
func (c Config) Validate() error {
	if c.CapacityBytes < 0 {
		return fmt.Errorf("memplane: negative capacity %d bytes", c.CapacityBytes)
	}
	if c.BytesPerToken < 0 {
		return fmt.Errorf("memplane: negative bytes-per-token %d", c.BytesPerToken)
	}
	if c.BlockTokens < 0 {
		return fmt.Errorf("memplane: negative block size %d tokens", c.BlockTokens)
	}
	return nil
}

// Token-identity layout. Prompt streams are numbered in first-use order
// per device; prompt token j of stream s is s<<16 | j, so requests with
// equal prefix keys share cache paths and distinct keys never collide
// (prompts are clamped to 64Ki tokens, far above any modeled workload).
// Decode tokens are private per admitted session: ordinal o's token j is
// 1<<31 | (o mod 8Ki)<<18 | j. Ordinals wrap after 8192 live admissions
// per device; a wrap could only alias against long-dropped garbage and is
// deterministic either way.
const (
	promptTokenBits = 16
	decodeTokenBits = 18
	decodeStreamTag = 1 << 31
	decodeStreamCap = 1 << 13
)

// Stats is the plane's cumulative telemetry. Hit/miss counters are
// prompt-level (admission-time prefix residency); evictions cover all
// cache content, decode state included.
type Stats struct {
	// CapacityTokens and UsedTokens snapshot occupancy at read time.
	CapacityTokens, UsedTokens int64
	// HitTokens / MissTokens count prompt-prefix tokens found / not found
	// resident at admission. Misses are the tokens whose re-prefill the
	// plane charged.
	HitTokens, MissTokens int64
	// EvictedTokens counts tokens LRU-evicted under capacity pressure
	// (explicit decode-garbage drops included).
	EvictedTokens int64
	// ReprefillSeconds is the total re-prefill latency charged for prompt
	// misses, in device-nominal seconds.
	ReprefillSeconds float64
}

// Session is one admitted request's memory footprint: a pinned prompt
// prefix plus a private decode chain that grows and shrinks with the
// solver's live beam state.
type Session struct {
	prompt     *kvcache.Seq // nil when the prompt could not be cached
	promptToks []kvcache.Token
	dec        *kvcache.Seq
	decToks    []kvcache.Token // full decode token stream ever generated
	decLen     int             // currently resident decode tokens
	ordinal    uint64
	finished   bool
}

// Plane is one device's KV memory plane. It is confined to the device's
// loop goroutine for mutations; the router probes (ResidentPromptTokens,
// OccupiedFraction) are read-only and called only at fleet barriers.
type Plane struct {
	cache   *kvcache.Cache
	gpu     hw.GPU
	gen     model.Config
	streams map[string]uint32 // prefix key -> prompt stream id
	nextStr uint32
	nextOrd uint64

	hitTokens, missTokens int64
	reprefill             float64
}

// New builds a plane over cfg. The caller must ensure cfg.Enabled(); the
// generator architecture supplies the default per-token byte cost and the
// re-prefill roofline inputs.
func New(cfg Config, gpu hw.GPU, gen model.Config) *Plane {
	bpt := cfg.BytesPerToken
	if bpt == 0 {
		bpt = gen.KVBytesPerToken()
	}
	block := cfg.BlockTokens
	if block < 1 {
		block = 1
	}
	return &Plane{
		cache:   kvcache.NewBlocked(cfg.CapacityBytes, bpt, block),
		gpu:     gpu,
		gen:     gen,
		streams: map[string]uint32{},
	}
}

// promptTokens materializes the synthetic token sequence for a prefix
// key, assigning the key's stream id on first use.
func (p *Plane) promptTokens(key string, n int) []kvcache.Token {
	if n > 1<<promptTokenBits {
		n = 1 << promptTokenBits
	}
	id, ok := p.streams[key]
	if !ok {
		id = p.nextStr
		p.nextStr++
		p.streams[key] = id
	}
	toks := make([]kvcache.Token, n)
	base := kvcache.Token(id) << promptTokenBits
	for j := range toks {
		toks[j] = base | kvcache.Token(j)
	}
	return toks
}

// Admit charges an arriving request's prompt prefix against the cache and
// returns its session plus the re-prefill penalty, in device-nominal
// seconds, for the prompt tokens that were not resident. A prompt the
// cache cannot hold at all (pinned-full or over capacity) is served
// uncached: the full prompt is charged as a miss and the session carries
// no resident prefix.
func (p *Plane) Admit(key string, promptTokens int) (*Session, float64) {
	s := &Session{ordinal: p.nextOrd}
	p.nextOrd++
	if promptTokens <= 0 {
		return s, 0
	}
	s.promptToks = p.promptTokens(key, promptTokens)
	seq, hit, miss, err := p.cache.Acquire(s.promptToks)
	if err != nil {
		// ErrTooLarge / ErrPinned: run without residency.
		hit, miss = 0, promptTokens
	} else {
		s.prompt = seq
	}
	p.hitTokens += int64(hit)
	p.missTokens += int64(miss)
	pen := p.reprefillCost(miss, promptTokens)
	p.reprefill += pen
	return s, pen
}

// reprefillCost is the roofline latency of prefilling miss tokens whose
// attention spans a contextLen-token prompt — the concrete cost a prefix
// hit avoids (paper §4.2: recomputation is what Dynamic Prefix-Aware
// Scheduling minimizes).
func (p *Plane) reprefillCost(miss, contextLen int) float64 {
	if miss <= 0 {
		return 0
	}
	return p.gpu.Roofline(p.gen.PrefillFLOPs(miss, contextLen), p.gen.PrefillBytes(miss))
}

// decodeToken returns the session's j'th private decode token.
func (s *Session) decodeToken(j int) kvcache.Token {
	ord := kvcache.Token(s.ordinal % decodeStreamCap)
	return decodeStreamTag | ord<<decodeTokenBits | kvcache.Token(j)
}

// fullPath returns the session's resident path at decode length n.
func (s *Session) fullPath(n int) []kvcache.Token {
	return append(append([]kvcache.Token(nil), s.promptToks...), s.decToks[:n]...)
}

// SyncDecode reconciles the session's resident decode footprint with the
// solver's live KV usage beyond the prompt (per-beam decode state, which
// widens and narrows with the search). Growth that the cache cannot hold
// (pinned-full) is skipped — modeled as offloaded state with no resident
// footprint; shrink releases the abandoned suffix for LRU eviction.
func (p *Plane) SyncDecode(s *Session, want int) {
	if s.finished {
		return
	}
	if lim := 1 << decodeTokenBits; want > lim {
		want = lim
	}
	if want < 0 {
		want = 0
	}
	switch {
	case want > s.decLen:
		add := make([]kvcache.Token, 0, want-s.decLen)
		for j := s.decLen; j < want; j++ {
			add = append(add, s.decodeToken(j))
		}
		if s.dec == nil {
			var err error
			if s.prompt != nil {
				var fork *kvcache.Seq
				if fork, err = p.cache.Fork(s.prompt); err == nil {
					if _, _, err = p.cache.Extend(fork, add); err != nil {
						p.cache.Drop(fork)
					} else {
						s.dec = fork
					}
				}
			} else if s.dec, _, _, err = p.cache.Acquire(add); err != nil {
				s.dec = nil
			}
			if s.dec == nil {
				return // pinned-full or over capacity: stay unresident
			}
		} else if _, _, err := p.cache.Extend(s.dec, add); err != nil {
			return // growth skipped, footprint stays at decLen
		}
		s.decToks = append(s.decToks[:s.decLen], add...)
		s.decLen = want
	case want < s.decLen:
		old := s.dec
		s.dec = nil
		if want > 0 {
			var path []kvcache.Token
			if s.prompt != nil {
				path = s.fullPath(want)
			} else {
				path = append([]kvcache.Token(nil), s.decToks[:want]...)
			}
			// The shorter path is fully resident (still pinned by old), so
			// this acquire inserts nothing and cannot fail.
			if seq, _, _, err := p.cache.Acquire(path); err == nil {
				s.dec = seq
			}
		}
		p.cache.Drop(old) // evicts the abandoned, now-unshared suffix
		s.decLen = want
	}
}

// Finish ends a session: its decode chain is garbage (dropped and
// evicted), while its prompt prefix is released but stays resident for
// future admissions to hit until LRU pressure reclaims it.
func (p *Plane) Finish(s *Session) {
	if s == nil || s.finished {
		return
	}
	s.finished = true
	if s.dec != nil {
		p.cache.Drop(s.dec)
		s.dec = nil
	}
	if s.prompt != nil {
		p.cache.Release(s.prompt)
		s.prompt = nil
	}
}

// ResidentPromptTokens reports how many leading prompt tokens of the
// given prefix key are resident on this device — the cache-aware router's
// affinity signal. A key this device has never admitted reads as zero.
func (p *Plane) ResidentPromptTokens(key string, promptTokens int) int {
	if promptTokens <= 0 {
		return 0
	}
	id, ok := p.streams[key]
	if !ok {
		return 0
	}
	if promptTokens > 1<<promptTokenBits {
		promptTokens = 1 << promptTokenBits
	}
	toks := make([]kvcache.Token, promptTokens)
	base := kvcache.Token(id) << promptTokenBits
	for j := range toks {
		toks[j] = base | kvcache.Token(j)
	}
	return p.cache.LongestCachedPrefix(toks)
}

// OccupiedFraction returns used/capacity in [0,1].
func (p *Plane) OccupiedFraction() float64 {
	capTok := p.cache.CapacityTokens()
	if capTok <= 0 {
		return 0
	}
	f := float64(p.cache.UsedTokens()) / float64(capTok)
	if f > 1 {
		f = 1
	}
	return f
}

// Stats snapshots the plane's telemetry.
func (p *Plane) Stats() Stats {
	cs := p.cache.Stats()
	return Stats{
		CapacityTokens:   p.cache.CapacityTokens(),
		UsedTokens:       p.cache.UsedTokens(),
		HitTokens:        p.hitTokens,
		MissTokens:       p.missTokens,
		EvictedTokens:    cs.EvictedTokens,
		ReprefillSeconds: p.reprefill,
	}
}
