package alloc

import (
	"testing"
	"testing/quick"
	"time"

	"fasttts/internal/hw"
	"fasttts/internal/model"
)

func baseInput() Input {
	return Input{
		GPU:         hw.RTX4090,
		Generator:   model.Qwen25Math1_5B,
		Verifier:    model.SkyworkPRM1_5B,
		N:           64,
		SeqVerifier: 1024,
		SeqDecode:   1024,
		BudgetBytes: 4 << 30,
	}
}

func TestOptimizeSatisfiesBudget(t *testing.T) {
	in := baseInput()
	p, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.PreBytes+p.DecBytes > in.BudgetBytes {
		t.Errorf("plan exceeds budget: %d + %d > %d", p.PreBytes, p.DecBytes, in.BudgetBytes)
	}
	if p.BPre < 1 || p.BDec < 1 {
		t.Errorf("degenerate batches: %+v", p)
	}
}

func TestOptimizeMatchesBruteForce(t *testing.T) {
	in := baseInput()
	in.N = 24
	in.BudgetBytes = 1 << 30
	p, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	// Brute force over the full (B_pre, B_dec) grid, not just Eq. 1
	// boundary points: the boundary point must still win (stage latency
	// is non-increasing in batch memory, so the optimum is on the
	// boundary — the paper's key insight).
	kvPre := in.Verifier.KVBytes(1, in.SeqVerifier)
	kvDec := in.Generator.KVBytes(1, in.SeqDecode)
	best := -1.0
	for bp := 1; bp <= in.N; bp++ {
		for bd := 1; bd <= in.N; bd++ {
			if int64(bp)*kvPre+int64(bd)*kvDec > in.BudgetBytes {
				continue
			}
			tt := cycleTime(in, bp, bd)
			if best < 0 || tt < best {
				best = tt
			}
		}
	}
	if best < 0 {
		t.Fatal("brute force found nothing feasible")
	}
	if p.TotalTime > best*(1+1e-9) {
		t.Errorf("linear search total %.6f worse than brute force %.6f", p.TotalTime, best)
	}
}

func TestMoreMemoryNeverHurts(t *testing.T) {
	in := baseInput()
	prev := -1.0
	for _, gbytes := range []int64{1 << 29, 1 << 30, 2 << 30, 4 << 30, 8 << 30} {
		in.BudgetBytes = gbytes
		p, err := Optimize(in)
		if err != nil {
			t.Fatalf("budget %d: %v", gbytes, err)
		}
		if prev >= 0 && p.TotalTime > prev*(1+1e-9) {
			t.Errorf("budget %d: time %.4f worse than smaller budget %.4f", gbytes, p.TotalTime, prev)
		}
		prev = p.TotalTime
	}
}

func TestInfeasibleBudget(t *testing.T) {
	in := baseInput()
	in.BudgetBytes = 1 << 10 // 1 KiB: nothing fits
	if _, err := Optimize(in); err == nil {
		t.Error("expected ErrInfeasible")
	}
	if _, err := StaticSplit(in, 0.5); err == nil {
		t.Error("expected StaticSplit to fail too")
	}
}

func TestInvalidN(t *testing.T) {
	in := baseInput()
	in.N = 0
	if _, err := Optimize(in); err == nil {
		t.Error("expected error for N=0")
	}
}

func TestOptimizeBeatsStaticSplit(t *testing.T) {
	// The whole point of §4.3: the asymmetric split should never lose to
	// a fixed 50/50 split, and should win clearly in the verifier-heavy
	// config where 50/50 starves the generator.
	in := baseInput()
	in.Verifier = model.ShepherdPRM7B // 128 KiB/token KV
	in.BudgetBytes = 3 << 30
	opt, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	static, err := StaticSplit(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if opt.TotalTime > static.TotalTime*(1+1e-9) {
		t.Errorf("optimized %.4f slower than static %.4f", opt.TotalTime, static.TotalTime)
	}
	if opt.TotalTime > 0.9*static.TotalTime {
		t.Logf("note: optimized %.4f vs static %.4f (modest gain)", opt.TotalTime, static.TotalTime)
	}
}

func TestDecodeGetsMoreMemoryThanPrefill(t *testing.T) {
	// Fig 6: prefill saturates with far less memory than decode, so the
	// optimizer should hand most of the budget to the generator. Use a
	// budget that cannot satisfy both stages at full batch, so the two
	// stages actually compete.
	in := baseInput()
	in.BudgetBytes = 1536 << 20
	p, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.DecBytes <= p.PreBytes {
		t.Errorf("decode bytes %d <= prefill bytes %d; expected asymmetry toward decode",
			p.DecBytes, p.PreBytes)
	}
}

func TestOffloadChosenOnlyWhenBetter(t *testing.T) {
	// Tight budget on a small GPU: offloading should win because neither
	// stage can batch meaningfully when sharing.
	in := Input{
		GPU:          hw.RTX3070Ti,
		Generator:    model.Qwen25Math1_5B,
		Verifier:     model.ShepherdPRM7B,
		N:            64,
		SeqVerifier:  1024,
		SeqDecode:    1024,
		BudgetBytes:  512 << 20,
		AllowOffload: true,
	}
	with, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	in.AllowOffload = false
	without, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if with.TotalTime > without.TotalTime*(1+1e-9) {
		t.Errorf("offload-enabled plan %.4f worse than partition-only %.4f",
			with.TotalTime, without.TotalTime)
	}
	if with.Offload && with.OffloadOverhead <= 0 {
		t.Error("offload plan must carry a positive transfer overhead")
	}
	// Abundant memory: offload must NOT be chosen (partition is free).
	in.AllowOffload = true
	in.BudgetBytes = 16 << 30
	rich, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if rich.Offload {
		t.Error("offload chosen despite abundant memory")
	}
}

func TestPrefillSaturatesEarlierThanDecode(t *testing.T) {
	// Fig 6's claim: prefill reaches 80% of peak throughput with much
	// less KV memory than decode needs.
	g := hw.RTX4090
	m := model.Qwen25Math1_5B
	seqPre, seqDec := 640, 1024
	peakPre := PrefillThroughput(g, m, seqPre, 32<<30)
	peakDec := DecodeThroughput(g, m, seqDec, 32<<30)
	at80 := func(f func(int64) float64, peak float64) int64 {
		for kv := int64(8 << 20); kv <= 32<<30; kv *= 2 {
			if f(kv) >= 0.8*peak {
				return kv
			}
		}
		return 32 << 30
	}
	kvPre := at80(func(kv int64) float64 { return PrefillThroughput(g, m, seqPre, kv) }, peakPre)
	kvDec := at80(func(kv int64) float64 { return DecodeThroughput(g, m, seqDec, kv) }, peakDec)
	if kvPre*2 > kvDec {
		t.Errorf("prefill saturation %d not clearly earlier than decode %d", kvPre, kvDec)
	}
}

func TestThroughputMonotoneInMemory(t *testing.T) {
	g := hw.RTX4090
	m := model.Qwen25Math1_5B
	f := func(shift uint8) bool {
		kv := int64(1) << (20 + shift%12)
		return DecodeThroughput(g, m, 1024, 2*kv) >= DecodeThroughput(g, m, 1024, kv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeFast(t *testing.T) {
	// §4.3.1 claims the search averages <1ms; allow generous slack but
	// catch accidental quadratic blowups.
	in := baseInput()
	in.N = 512
	in.BudgetBytes = 20 << 30
	done := make(chan struct{})
	go func() {
		for i := 0; i < 50; i++ {
			Optimize(in)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("50 Optimize calls took longer than 5s")
	}
}

func TestTieBreakPrefersLargerDecodeBatch(t *testing.T) {
	// With N=1 every candidate has the same T_tot contribution from
	// batching (single batch each); the tie-break must pick the largest
	// feasible B_dec=1 plan with minimal prefill reservation... simply
	// assert BDec is the max the remaining budget allows.
	in := baseInput()
	in.N = 1
	p, err := Optimize(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.BPre != 1 || p.BDec != 1 {
		t.Errorf("N=1 plan = %+v, want 1/1", p)
	}
}
