// Package alloc implements Asymmetric Multi-Model Memory Allocation
// (paper §4.3): the roofline-guided search that splits the KV-cache budget
// between the verifier's prefill stage and the generator's decode stage,
// and the offloading extension for extremely constrained devices.
//
// The optimizer minimizes
//
//	T_tot = ceil(N/B_pre)·T_roof_pre(B_pre, S)
//	      + ceil(N/B_dec)·S_dec·T_roof_dec(B_dec, S̄_cache)
//
// subject to B_pre·KVBytes(1,S) + B_dec·KVBytes(1,S_dec) ≤ M, via the
// paper's exhaustive linear search over feasible integer B_pre (Eq. 1),
// resolving ties toward the larger decode batch.
package alloc

import (
	"errors"
	"fmt"

	"fasttts/internal/hw"
	"fasttts/internal/model"
)

// Input describes one allocation problem.
type Input struct {
	GPU       hw.GPU
	Generator model.Config
	Verifier  model.Config
	// N is the number of sequences each stage must process per iteration
	// (the search width).
	N int
	// SeqVerifier is S: the verifier's input length per request.
	SeqVerifier int
	// SeqDecode is S_dec: the generator's decode horizon per request.
	SeqDecode int
	// BudgetBytes is M: the KV memory budget shared by both models
	// (device memory minus weights and reserved space).
	BudgetBytes int64
	// AllowOffload enables the §4.3.2 extended search space.
	AllowOffload bool
}

// Plan is the chosen allocation.
type Plan struct {
	BPre, BDec int
	// PreBytes/DecBytes are the KV reservations for each stage.
	PreBytes, DecBytes int64
	// TotalTime is the modeled execution time of one full
	// generate+verify cycle over N requests.
	TotalTime float64
	// Offload reports whether the inactive model's KV is offloaded to
	// host memory (§4.3.2); OffloadOverhead is the per-cycle PCIe cost.
	Offload         bool
	OffloadOverhead float64
}

// ErrInfeasible is returned when not even a batch of one fits.
var ErrInfeasible = errors.New("alloc: memory budget cannot fit a single sequence per stage")

// PrefillTime models T_roof of one verifier prefill batch (B sequences of
// length S each).
func PrefillTime(g hw.GPU, m model.Config, batch, seq int) float64 {
	if batch <= 0 {
		return 0
	}
	flops := float64(batch) * m.PrefillFLOPs(seq, seq)
	bytes := m.PrefillBytes(batch * seq)
	return g.Roofline(flops, bytes)
}

// DecodeTime models T_roof of one decode step for a batch whose average
// cached context is cacheLen tokens.
func DecodeTime(g hw.GPU, m model.Config, batch, cacheLen int) float64 {
	if batch <= 0 {
		return 0
	}
	flops := float64(batch) * m.DecodeFLOPsPerToken(cacheLen)
	bytes := m.DecodeBytesPerStep(batch, int64(batch)*int64(cacheLen))
	return g.Roofline(flops, bytes)
}

// cycleTime evaluates T_tot for a candidate batch pair.
func cycleTime(in Input, bPre, bDec int) float64 {
	nPreBatches := ceilDiv(in.N, bPre)
	nDecBatches := ceilDiv(in.N, bDec)
	avgCache := in.SeqDecode / 2 // S̄_cache ≈ S_dec/2 (paper §4.3.1)
	tPre := float64(nPreBatches) * PrefillTime(in.GPU, in.Verifier, bPre, in.SeqVerifier)
	tDec := float64(nDecBatches) * float64(in.SeqDecode) * DecodeTime(in.GPU, in.Generator, bDec, avgCache)
	return tPre + tDec
}

// Optimize runs the roofline-guided linear search. The search space is
// every feasible integer B_pre (capped at N — larger batches cannot help);
// for each, B_dec is the largest batch satisfying the budget (Eq. 1).
// When AllowOffload is set, the relaxed dual-constraint strategy is also
// evaluated and the cheaper plan wins.
func Optimize(in Input) (Plan, error) {
	if in.N <= 0 {
		return Plan{}, fmt.Errorf("alloc: N must be positive, got %d", in.N)
	}
	kvPre := in.Verifier.KVBytes(1, in.SeqVerifier)
	kvDec := in.Generator.KVBytes(1, in.SeqDecode)

	best := Plan{TotalTime: -1}
	maxPre := int(in.BudgetBytes / kvPre)
	if maxPre > in.N {
		maxPre = in.N
	}
	for bPre := 1; bPre <= maxPre; bPre++ {
		rem := in.BudgetBytes - int64(bPre)*kvPre
		bDec := int(rem / kvDec) // Eq. 1
		if bDec > in.N {
			bDec = in.N
		}
		if bDec < 1 {
			continue
		}
		t := cycleTime(in, bPre, bDec)
		// Ties resolve in favor of the larger decode batch (§4.3.1).
		if best.TotalTime < 0 || t < best.TotalTime ||
			(t == best.TotalTime && bDec > best.BDec) {
			best = Plan{
				BPre: bPre, BDec: bDec,
				PreBytes: int64(bPre) * kvPre, DecBytes: int64(bDec) * kvDec,
				TotalTime: t,
			}
		}
	}

	if in.AllowOffload {
		// §4.3.2: each model gets the whole budget while active; the
		// inactive model's KV lives in host memory. Two swaps per cycle.
		bPre := int(in.BudgetBytes / kvPre)
		bDec := int(in.BudgetBytes / kvDec)
		if bPre > in.N {
			bPre = in.N
		}
		if bDec > in.N {
			bDec = in.N
		}
		if bPre >= 1 && bDec >= 1 {
			moved := float64(int64(bPre)*kvPre + int64(bDec)*kvDec)
			overhead := in.GPU.TransferTime(moved)
			t := cycleTime(in, bPre, bDec) + overhead
			if best.TotalTime < 0 || t < best.TotalTime {
				best = Plan{
					BPre: bPre, BDec: bDec,
					PreBytes: int64(bPre) * kvPre, DecBytes: int64(bDec) * kvDec,
					TotalTime: t, Offload: true, OffloadOverhead: overhead,
				}
			}
		}
	}

	if best.TotalTime < 0 {
		return Plan{}, ErrInfeasible
	}
	return best, nil
}

// StaticSplit returns the naive baseline plan: the budget is divided in
// fixed proportion preFrac to the verifier and the rest to the generator
// (the vLLM-baseline behaviour of running two instances with fixed
// gpu_memory_utilization each).
func StaticSplit(in Input, preFrac float64) (Plan, error) {
	kvPre := in.Verifier.KVBytes(1, in.SeqVerifier)
	kvDec := in.Generator.KVBytes(1, in.SeqDecode)
	preBudget := int64(float64(in.BudgetBytes) * preFrac)
	decBudget := in.BudgetBytes - preBudget
	bPre := int(preBudget / kvPre)
	bDec := int(decBudget / kvDec)
	if bPre > in.N {
		bPre = in.N
	}
	if bDec > in.N {
		bDec = in.N
	}
	if bPre < 1 || bDec < 1 {
		return Plan{}, ErrInfeasible
	}
	return Plan{
		BPre: bPre, BDec: bDec,
		PreBytes: int64(bPre) * kvPre, DecBytes: int64(bDec) * kvDec,
		TotalTime: cycleTime(in, bPre, bDec),
	}, nil
}

// Throughput helpers for Fig 6 / Fig 10.

// PrefillThroughput returns tokens/s of the verifier's prefill stage when
// given kvBytes of cache (batch size = kvBytes / KVBytes(1, seq)).
func PrefillThroughput(g hw.GPU, m model.Config, seq int, kvBytes int64) float64 {
	b := int(kvBytes / m.KVBytes(1, seq))
	if b < 1 {
		return 0
	}
	return float64(b*seq) / PrefillTime(g, m, b, seq)
}

// DecodeThroughput returns tokens/s of the generator's decode stage when
// given kvBytes of cache.
func DecodeThroughput(g hw.GPU, m model.Config, seq int, kvBytes int64) float64 {
	b := int(kvBytes / m.KVBytes(1, seq))
	if b < 1 {
		return 0
	}
	return float64(b) / DecodeTime(g, m, b, seq/2)
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
