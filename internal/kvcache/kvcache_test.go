package kvcache

import (
	"errors"
	"testing"
	"testing/quick"

	"fasttts/internal/rng"
)

func toks(vals ...int) []Token {
	out := make([]Token, len(vals))
	for i, v := range vals {
		out[i] = Token(v)
	}
	return out
}

func seqTokens(prefix []Token, n int, salt Token) []Token {
	out := append([]Token(nil), prefix...)
	for i := 0; i < n; i++ {
		out = append(out, salt*1000+Token(i))
	}
	return out
}

func mustAcquire(t *testing.T, c *Cache, tk []Token) (*Seq, int, int) {
	t.Helper()
	s, hit, miss, err := c.Acquire(tk)
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return s, hit, miss
}

func TestAcquireMissThenHit(t *testing.T) {
	c := New(1<<20, 16)
	tk := toks(1, 2, 3, 4, 5)
	s1, hit, miss := mustAcquire(t, c, tk)
	if hit != 0 || miss != 5 {
		t.Fatalf("first acquire hit=%d miss=%d, want 0/5", hit, miss)
	}
	_, hit, miss = mustAcquire(t, c, tk)
	if hit != 5 || miss != 0 {
		t.Fatalf("second acquire hit=%d miss=%d, want 5/0", hit, miss)
	}
	if s1.Len() != 5 {
		t.Errorf("Len = %d", s1.Len())
	}
}

func TestPrefixSharingUsesUniqueTokens(t *testing.T) {
	c := New(1<<20, 16)
	mustAcquire(t, c, toks(1, 2, 3, 4))
	_, hit, miss := mustAcquire(t, c, toks(1, 2, 3, 9, 10))
	if hit != 3 || miss != 2 {
		t.Fatalf("hit=%d miss=%d, want 3/2", hit, miss)
	}
	if got := c.UsedTokens(); got != 6 {
		t.Errorf("UsedTokens = %d, want 6 (4 + 2 unique)", got)
	}
}

func TestSplitPreservesLookups(t *testing.T) {
	c := New(1<<20, 16)
	mustAcquire(t, c, toks(1, 2, 3, 4, 5, 6))
	// Acquiring a strict prefix forces a split.
	_, hit, miss := mustAcquire(t, c, toks(1, 2, 3))
	if hit != 3 || miss != 0 {
		t.Fatalf("prefix acquire hit=%d miss=%d, want 3/0", hit, miss)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 3, 4, 5, 6)); got != 6 {
		t.Errorf("full sequence prefix after split = %d, want 6", got)
	}
	if got := c.UsedTokens(); got != 6 {
		t.Errorf("UsedTokens = %d, want 6", got)
	}
}

func TestDivergenceMidSpan(t *testing.T) {
	c := New(1<<20, 16)
	mustAcquire(t, c, toks(1, 2, 3, 4))
	_, hit, miss := mustAcquire(t, c, toks(1, 2, 9))
	if hit != 2 || miss != 1 {
		t.Fatalf("hit=%d miss=%d, want 2/1", hit, miss)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 3, 4)); got != 4 {
		t.Errorf("original sequence damaged by split: prefix=%d", got)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 9)); got != 3 {
		t.Errorf("diverged sequence prefix=%d", got)
	}
}

func TestExtendInPlace(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1, 2))
	if _, _, err := c.Extend(s, toks(3, 4)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Errorf("Len = %d, want 4", s.Len())
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 3, 4)); got != 4 {
		t.Errorf("prefix after extend = %d", got)
	}
}

func TestExtendAfterForkCreatesChild(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1, 2))
	f, err := c.Fork(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Extend(s, toks(3)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Extend(f, toks(7)); err != nil {
		t.Fatal(err)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 3)); got != 3 {
		t.Errorf("branch A prefix = %d", got)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 7)); got != 3 {
		t.Errorf("branch B prefix = %d", got)
	}
	if got := c.UsedTokens(); got != 4 {
		t.Errorf("UsedTokens = %d, want 4 (2 shared + 1 + 1)", got)
	}
}

func TestForkSharesMemory(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1, 2, 3))
	before := c.UsedTokens()
	f, err := c.Fork(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.UsedTokens() != before {
		t.Errorf("fork changed usage: %d -> %d", before, c.UsedTokens())
	}
	if f.Len() != 3 {
		t.Errorf("fork Len = %d", f.Len())
	}
}

func TestEvictionFreesUnpinnedLRU(t *testing.T) {
	// Capacity for 10 tokens.
	c := New(10*16, 16)
	a, _, _ := mustAcquire(t, c, seqTokens(nil, 5, 1))
	c.Release(a)
	b, _, _ := mustAcquire(t, c, seqTokens(nil, 5, 2))
	_ = b
	// Third sequence forces eviction of the released first one.
	_, _, miss := mustAcquire(t, c, seqTokens(nil, 5, 3))
	if miss != 5 {
		t.Fatalf("miss = %d", miss)
	}
	if got := c.LongestCachedPrefix(seqTokens(nil, 5, 1)); got != 0 {
		t.Errorf("evicted sequence still cached: prefix=%d", got)
	}
	if c.Stats().EvictedTokens != 5 {
		t.Errorf("EvictedTokens = %d, want 5", c.Stats().EvictedTokens)
	}
}

func TestPinnedNeverEvicted(t *testing.T) {
	c := New(10*16, 16)
	mustAcquire(t, c, seqTokens(nil, 6, 1)) // pinned, never released
	_, _, _, err := c.Acquire(seqTokens(nil, 6, 2))
	if err == nil {
		t.Fatal("expected failure: pinned entries should not be evicted")
	}
	if got := c.LongestCachedPrefix(seqTokens(nil, 6, 1)); got != 6 {
		t.Errorf("pinned sequence evicted: prefix=%d", got)
	}
}

func TestSequenceLargerThanCapacity(t *testing.T) {
	c := New(4*16, 16)
	_, _, _, err := c.Acquire(seqTokens(nil, 5, 1))
	if err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
	s, _, _ := mustAcquire(t, c, seqTokens(nil, 2, 1))
	if _, _, err := c.Extend(s, seqTokens(nil, 3, 9)); err != ErrTooLarge {
		t.Fatalf("Extend err = %v, want ErrTooLarge", err)
	}
}

func TestLRUOrder(t *testing.T) {
	c := New(12*16, 16)
	a, _, _ := mustAcquire(t, c, seqTokens(nil, 4, 1))
	b, _, _ := mustAcquire(t, c, seqTokens(nil, 4, 2))
	c.Release(a)
	c.Release(b)
	// Touch a by re-acquiring and releasing: b becomes LRU.
	a2, hit, _ := mustAcquire(t, c, seqTokens(nil, 4, 1))
	if hit != 4 {
		t.Fatalf("re-acquire hit=%d", hit)
	}
	c.Release(a2)
	mustAcquire(t, c, seqTokens(nil, 8, 3)) // needs 8, evicts exactly one seq
	if got := c.LongestCachedPrefix(seqTokens(nil, 4, 2)); got != 0 {
		t.Errorf("LRU (b) not evicted: prefix=%d", got)
	}
	if got := c.LongestCachedPrefix(seqTokens(nil, 4, 1)); got != 4 {
		t.Errorf("MRU (a) evicted: prefix=%d", got)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1, 2))
	c.Release(s)
	c.Release(s) // second release must not underflow refcounts
	if _, _, _, err := c.Acquire(toks(1, 2)); err != nil {
		t.Fatalf("cache corrupted after double release: %v", err)
	}
}

func TestExtendReleasedFails(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1))
	c.Release(s)
	if _, _, err := c.Extend(s, toks(2)); err == nil {
		t.Error("Extend on released sequence should fail")
	}
	if _, err := c.Fork(s); err == nil {
		t.Error("Fork of released sequence should fail")
	}
}

func TestEvictAll(t *testing.T) {
	c := New(1<<20, 16)
	a, _, _ := mustAcquire(t, c, seqTokens(nil, 5, 1))
	mustAcquire(t, c, seqTokens(nil, 3, 2)) // stays pinned
	c.Release(a)
	dropped := c.EvictAll()
	if dropped != 5 {
		t.Errorf("EvictAll dropped %d, want 5", dropped)
	}
	if c.UsedTokens() != 3 {
		t.Errorf("UsedTokens = %d, want 3", c.UsedTokens())
	}
}

func TestResizeShrinkEvicts(t *testing.T) {
	c := New(1<<20, 16)
	a, _, _ := mustAcquire(t, c, seqTokens(nil, 10, 1))
	c.Release(a)
	if err := c.Resize(5 * 16); err != nil {
		t.Fatal(err)
	}
	if c.UsedTokens() > 5 {
		t.Errorf("UsedTokens = %d after shrink to 5", c.UsedTokens())
	}
	// Shrinking below pinned content fails.
	b, _, _ := mustAcquire(t, c, seqTokens(nil, 4, 2))
	_ = b
	if err := c.Resize(2 * 16); err == nil {
		t.Error("Resize below pinned size should fail")
	}
}

func TestNodeCount(t *testing.T) {
	c := New(1<<20, 16)
	if c.NodeCount() != 0 {
		t.Fatalf("empty NodeCount = %d", c.NodeCount())
	}
	s, _, _ := mustAcquire(t, c, toks(1, 2, 3))
	if c.NodeCount() != 1 {
		t.Errorf("one-seq NodeCount = %d, want 1", c.NodeCount())
	}
	f, _ := c.Fork(s)
	if _, _, err := c.Extend(s, toks(4)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Extend(f, toks(5)); err != nil {
		t.Fatal(err)
	}
	if c.NodeCount() != 3 {
		t.Errorf("branched NodeCount = %d, want 3", c.NodeCount())
	}
}

func TestStatsAccumulate(t *testing.T) {
	c := New(1<<20, 16)
	mustAcquire(t, c, toks(1, 2, 3))
	mustAcquire(t, c, toks(1, 2, 3, 4))
	st := c.Stats()
	if st.HitTokens != 3 || st.MissTokens != 4 {
		t.Errorf("stats = %+v", st)
	}
}

// Property: for any interleaving of acquires/releases over a genealogy of
// sequences, invariants hold: used tokens never exceed capacity, acquired
// sequences are always fully resident, and hit+miss == len(seq).
func TestPropertyInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(200*16, 16)
		type live struct {
			seq *Seq
			tk  []Token
		}
		var lives []live
		genealogies := [][]Token{seqTokens(nil, 3, 1), seqTokens(nil, 3, 2)}
		for op := 0; op < 120; op++ {
			switch r.IntN(4) {
			case 0: // acquire an existing genealogy or an extension of one
				base := genealogies[r.IntN(len(genealogies))]
				tk := seqTokens(base, r.IntN(5), Token(r.IntN(40)+3))
				if len(tk) > 200 {
					continue
				}
				s, hit, miss, err := c.Acquire(tk)
				if errors.Is(err, ErrPinned) {
					continue // legitimate: live sequences hold all memory
				}
				if err != nil {
					return false
				}
				if hit+miss != len(tk) {
					return false
				}
				if c.LongestCachedPrefix(tk) != len(tk) {
					return false
				}
				lives = append(lives, live{s, tk})
				if len(genealogies) < 24 {
					genealogies = append(genealogies, tk)
				}
			case 1: // release
				if len(lives) == 0 {
					continue
				}
				i := r.IntN(len(lives))
				c.Release(lives[i].seq)
				lives = append(lives[:i], lives[i+1:]...)
			case 2: // extend a live seq
				if len(lives) == 0 {
					continue
				}
				i := r.IntN(len(lives))
				add := seqTokens(nil, r.IntN(4)+1, Token(r.IntN(1000)+50))
				if lives[i].seq.Len()+len(add) > 200 {
					continue
				}
				if _, _, err := c.Extend(lives[i].seq, add); err != nil {
					if errors.Is(err, ErrPinned) {
						continue
					}
					return false
				}
				lives[i].tk = append(lives[i].tk, add...)
			case 3: // fork a live seq
				if len(lives) == 0 {
					continue
				}
				i := r.IntN(len(lives))
				fk, err := c.Fork(lives[i].seq)
				if err != nil {
					return false
				}
				lives = append(lives, live{fk, append([]Token(nil), lives[i].tk...)})
			}
			if c.UsedTokens() > c.CapacityTokens() {
				return false
			}
			// Every live sequence must remain fully resident.
			for _, l := range lives {
				if c.LongestCachedPrefix(l.tk) != len(l.tk) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: total used tokens equals the number of unique tokens across
// all resident sequences (perfect prefix dedup).
func TestPropertyDedup(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := New(1<<30, 16)
		// Build a random genealogy tree of sequences.
		paths := [][]Token{seqTokens(nil, 4, 1)}
		if _, _, _, err := c.Acquire(paths[0]); err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			parent := paths[r.IntN(len(paths))]
			child := seqTokens(parent, r.IntN(6)+1, Token(i+10))
			if _, _, _, err := c.Acquire(child); err != nil {
				return false
			}
			paths = append(paths, child)
		}
		// Count unique tokens via a prefix set.
		unique := map[string]bool{}
		for _, p := range paths {
			for i := range p {
				key := ""
				for _, tk := range p[:i+1] {
					key += string(rune(tk)) + ","
				}
				unique[key] = true
			}
		}
		return c.UsedTokens() == int64(len(unique))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAcquireSharedPrefix(b *testing.B) {
	c := New(1<<30, 16)
	base := seqTokens(nil, 512, 1)
	c.Acquire(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk := seqTokens(base, 8, Token(i%1000)+2)
		s, _, _, err := c.Acquire(tk)
		if err != nil {
			b.Fatal(err)
		}
		c.Release(s)
	}
}

func TestBlockedAllocationRoundsUp(t *testing.T) {
	c := NewBlocked(1<<20, 16, 16)
	mustAcquire(t, c, seqTokens(nil, 5, 1)) // 5 tokens -> 1 block of 16
	if got := c.UsedTokens(); got != 16 {
		t.Errorf("UsedTokens = %d, want 16 (one block)", got)
	}
	mustAcquire(t, c, seqTokens(nil, 17, 2)) // 17 tokens -> 2 blocks
	if got := c.UsedTokens(); got != 16+32 {
		t.Errorf("UsedTokens = %d, want 48", got)
	}
}

func TestBlockedExtendInPlaceDelta(t *testing.T) {
	c := NewBlocked(1<<20, 16, 16)
	s, _, _ := mustAcquire(t, c, seqTokens(nil, 10, 1))
	if got := c.UsedTokens(); got != 16 {
		t.Fatalf("UsedTokens = %d", got)
	}
	// Extending 10 -> 14 stays within the first block.
	if _, _, err := c.Extend(s, seqTokens(nil, 4, 9)); err != nil {
		t.Fatal(err)
	}
	if got := c.UsedTokens(); got != 16 {
		t.Errorf("UsedTokens = %d after in-block extend, want 16", got)
	}
	// Crossing the boundary allocates another block.
	if _, _, err := c.Extend(s, seqTokens(nil, 4, 8)); err != nil {
		t.Fatal(err)
	}
	if got := c.UsedTokens(); got != 32 {
		t.Errorf("UsedTokens = %d after boundary cross, want 32", got)
	}
}

func TestBlockedSplitFragmentation(t *testing.T) {
	c := NewBlocked(1<<20, 16, 16)
	mustAcquire(t, c, seqTokens(nil, 16, 1)) // exactly 1 block
	before := c.UsedTokens()
	// Acquiring a strict 5-token prefix splits the node into 5 + 11,
	// occupying two blocks.
	mustAcquire(t, c, seqTokens(nil, 5, 1))
	if got := c.UsedTokens(); got != before+16 {
		t.Errorf("UsedTokens = %d after split, want %d", got, before+16)
	}
}

func TestBlockedCapacityPressure(t *testing.T) {
	// Capacity of 4 blocks; each tiny sequence wastes most of a block,
	// so only 4 fit despite the logical tokens being far fewer.
	c := NewBlocked(4*16*16, 16, 16)
	for i := 0; i < 4; i++ {
		s, _, _ := mustAcquire(t, c, seqTokens(nil, 2, Token(i+1)))
		_ = s
	}
	if _, _, _, err := c.Acquire(seqTokens(nil, 2, 99)); err == nil {
		t.Error("5th tiny sequence should not fit in 4 fragmented blocks")
	}
}

func TestBlockedVsExactFragmentation(t *testing.T) {
	// Property: for the same content, block-rounded usage >= exact usage,
	// within one block per node.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		exact := New(1<<30, 16)
		blocked := NewBlocked(1<<30, 16, 64)
		paths := [][]Token{seqTokens(nil, 4, 1)}
		for i := 0; i < 20; i++ {
			parent := paths[r.IntN(len(paths))]
			child := seqTokens(parent, r.IntN(80)+1, Token(i+10))
			if _, _, _, err := exact.Acquire(child); err != nil {
				return false
			}
			if _, _, _, err := blocked.Acquire(child); err != nil {
				return false
			}
			paths = append(paths, child)
		}
		if blocked.UsedTokens() < exact.UsedTokens() {
			return false
		}
		// Fragmentation bounded by one block per node.
		limit := exact.UsedTokens() + int64(blocked.NodeCount())*64
		return blocked.UsedTokens() <= limit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// LongestCachedPrefix is a pure read: probing with a query that diverges
// mid-span must not split nodes or otherwise mutate the tree.
func TestLongestCachedPrefixDoesNotMutate(t *testing.T) {
	c := New(1<<20, 16)
	mustAcquire(t, c, toks(1, 2, 3, 4, 5, 6))
	nodes := c.NodeCount()
	used := c.UsedTokens()
	if got := c.LongestCachedPrefix(toks(1, 2, 3)); got != 3 {
		t.Fatalf("prefix = %d", got)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 9)); got != 2 {
		t.Fatalf("diverging prefix = %d", got)
	}
	if c.NodeCount() != nodes || c.UsedTokens() != used {
		t.Errorf("read-only lookup mutated the tree: nodes %d->%d used %d->%d",
			nodes, c.NodeCount(), used, c.UsedTokens())
	}
}

func TestFreeTokens(t *testing.T) {
	c := New(10*16, 16)
	if got := c.FreeTokens(); got != 10 {
		t.Fatalf("FreeTokens = %d", got)
	}
	mustAcquire(t, c, seqTokens(nil, 4, 1))
	if got := c.FreeTokens(); got != 6 {
		t.Errorf("FreeTokens = %d, want 6", got)
	}
}

func TestPinnedTokens(t *testing.T) {
	c := New(1<<20, 16)
	a, _, _ := mustAcquire(t, c, seqTokens(nil, 5, 1))
	mustAcquire(t, c, seqTokens(nil, 3, 2))
	if got := c.PinnedTokens(); got != 8 {
		t.Errorf("PinnedTokens = %d, want 8", got)
	}
	c.Release(a)
	if got := c.PinnedTokens(); got != 3 {
		t.Errorf("PinnedTokens after release = %d, want 3", got)
	}
}
