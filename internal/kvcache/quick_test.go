package kvcache

import (
	"errors"
	"testing"
	"testing/quick"

	"fasttts/internal/rng"
)

func TestDropEvictsUnsharedTail(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1, 2, 3))
	if _, _, err := c.Extend(s, toks(4, 5)); err != nil {
		t.Fatal(err)
	}
	c.Drop(s)
	if got := c.UsedTokens(); got != 0 {
		t.Errorf("UsedTokens = %d after Drop of sole sequence, want 0", got)
	}
	if got := c.LongestCachedPrefix(toks(1, 2, 3, 4, 5)); got != 0 {
		t.Errorf("dropped sequence still resident: prefix=%d", got)
	}
}

func TestDropKeepsSharedAncestors(t *testing.T) {
	c := New(1<<20, 16)
	prompt, _, _ := mustAcquire(t, c, toks(1, 2, 3))
	decode, err := c.Fork(prompt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Extend(decode, toks(8, 9)); err != nil {
		t.Fatal(err)
	}
	c.Drop(decode)
	// The decode suffix is gone, the prompt path (still pinned) is intact.
	if got := c.LongestCachedPrefix(toks(1, 2, 3, 8, 9)); got != 3 {
		t.Errorf("prefix after Drop = %d, want 3 (suffix evicted)", got)
	}
	if got := c.UsedTokens(); got != 3 {
		t.Errorf("UsedTokens = %d, want 3", got)
	}
	// Dropping again is a no-op, and the prompt handle still works.
	c.Drop(decode)
	if _, _, err := c.Extend(prompt, toks(4)); err != nil {
		t.Fatal(err)
	}
}

func TestDropKeepsBranchedChildren(t *testing.T) {
	c := New(1<<20, 16)
	s, _, _ := mustAcquire(t, c, toks(1, 2))
	other, _, _ := mustAcquire(t, c, toks(1, 2, 7))
	c.Release(other)
	// s's leaf path (1,2) has a child (7): Drop must stop at the branch.
	c.Drop(s)
	if got := c.LongestCachedPrefix(toks(1, 2, 7)); got != 3 {
		t.Errorf("sibling branch evicted by Drop: prefix=%d", got)
	}
}

// Property sweep (satellite): under randomized acquire / extend / fork /
// release / drop / evict-pressure sequences at token-granular allocation,
//
//  1. conservation — every token ever inserted is either still resident
//     or was counted evicted: UsedTokens == MissTokens - EvictedTokens;
//  2. pinning safety — live (unreleased) sequences stay fully resident,
//     so neither eviction pressure, EvictAll, nor Drop of other handles
//     ever touches a pinned path;
//  3. ref-count safety — once every handle is released, EvictAll drains
//     the cache to exactly zero used tokens (no leaked pins, no
//     double-free under Drop/Release interleavings).
func TestPropertyConservationAndPinning(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		// Small capacity so eviction pressure is constant.
		c := New(64*16, 16)
		type live struct {
			seq *Seq
			tk  []Token
		}
		var lives []live
		check := func() bool {
			if c.UsedTokens() != c.stats.MissTokens-c.stats.EvictedTokens {
				return false
			}
			if c.UsedTokens() > c.CapacityTokens() || c.UsedTokens() < 0 {
				return false
			}
			for _, l := range lives {
				if c.LongestCachedPrefix(l.tk) != len(l.tk) {
					return false
				}
			}
			return true
		}
		for op := 0; op < 150; op++ {
			switch r.IntN(6) {
			case 0: // acquire
				tk := seqTokens(nil, r.IntN(20)+1, Token(r.IntN(8)+1))
				s, hit, miss, err := c.Acquire(tk)
				if errors.Is(err, ErrPinned) {
					continue
				}
				if err != nil {
					return false
				}
				if hit+miss != len(tk) {
					return false
				}
				lives = append(lives, live{s, tk})
			case 1: // extend
				if len(lives) == 0 {
					continue
				}
				i := r.IntN(len(lives))
				add := seqTokens(nil, r.IntN(6)+1, Token(r.IntN(500)+100))
				if lives[i].seq.Len()+len(add) > 60 {
					continue
				}
				if _, _, err := c.Extend(lives[i].seq, add); err != nil {
					if errors.Is(err, ErrPinned) || errors.Is(err, ErrTooLarge) {
						continue
					}
					return false
				}
				lives[i].tk = append(lives[i].tk, add...)
			case 2: // fork
				if len(lives) == 0 || len(lives) > 16 {
					continue
				}
				i := r.IntN(len(lives))
				fk, err := c.Fork(lives[i].seq)
				if err != nil {
					return false
				}
				lives = append(lives, live{fk, append([]Token(nil), lives[i].tk...)})
			case 3: // release (leaves content resident but evictable)
				if len(lives) == 0 {
					continue
				}
				i := r.IntN(len(lives))
				c.Release(lives[i].seq)
				lives = append(lives[:i], lives[i+1:]...)
			case 4: // drop (release + evict the unshared tail)
				if len(lives) == 0 {
					continue
				}
				i := r.IntN(len(lives))
				c.Drop(lives[i].seq)
				lives = append(lives[:i], lives[i+1:]...)
			case 5: // external eviction pressure
				c.EvictAll()
			}
			if !check() {
				return false
			}
		}
		for _, l := range lives {
			c.Release(l.seq)
		}
		lives = nil
		c.EvictAll()
		return check() && c.UsedTokens() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
