// Package kvcache implements a paged KV cache with a radix-tree prefix
// index, reference counting, and LRU eviction — the memory substrate the
// paper's serving engines run on (paper §2.3, §3.2.2, Fig 8).
//
// Sequences that share a token prefix (beams spawned from the same parent)
// share the corresponding tree nodes physically, so the capacity cost of a
// reasoning tree is the number of *unique* tokens, not the sum of path
// lengths. Eviction removes least-recently-used unreferenced subtrees;
// a sequence whose cached prefix was evicted must be recomputed (re-
// prefilled), which is exactly the cost Dynamic Prefix-Aware Scheduling
// minimizes.
package kvcache

import (
	"container/heap"
	"errors"
	"fmt"
)

// Token is a synthetic token identifier. The simulator derives token
// values deterministically from beam genealogy, so equal prefixes imply
// equal token sequences.
type Token uint32

// Stats accumulates cache activity counters.
type Stats struct {
	HitTokens     int64 // tokens found cached on acquire/extend
	MissTokens    int64 // tokens newly inserted
	EvictedTokens int64 // tokens evicted under pressure
	Evictions     int64 // eviction operations (nodes removed)
}

type node struct {
	parent   *node
	children map[Token]*node
	tokens   []Token
	refs     int // live sequences whose pinned path passes through here
	owners   map[*Seq]struct{}
	lastUsed uint64 // LRU clock value
	heapIdx  int    // index in the eviction heap, -1 if absent
}

func (n *node) evictable() bool {
	return n.refs == 0 && len(n.children) == 0 && n.parent != nil
}

// Seq is a handle to an acquired sequence. While held, the sequence's
// entire path is pinned in cache. Release the handle to make it evictable.
type Seq struct {
	leaf     *node
	length   int // tokens along the path
	released bool
}

// Len returns the number of tokens the sequence currently spans.
func (s *Seq) Len() int { return s.length }

// Cache is a prefix-sharing KV cache with a fixed byte capacity.
//
// Storage is allocated in blocks of blockTokens tokens (1 = exact
// token-granular allocation): every tree node occupies
// ceil(len/blockTokens)·blockTokens token slots, modeling the paged
// allocator's internal fragmentation. Larger blocks reduce allocator
// metadata in a real system but waste capacity at node boundaries —
// the trade-off the block-size ablation measures.
type Cache struct {
	bytesPerToken int64
	capacity      int64
	blockTokens   int
	root          *node
	usedTokens    int64 // allocated token slots (block-rounded)
	clock         uint64
	evictHeap     evictHeap
	stats         Stats
}

// ErrTooLarge is returned when a single sequence cannot fit in the cache
// even after evicting everything else.
var ErrTooLarge = errors.New("kvcache: sequence exceeds cache capacity")

// ErrPinned is returned when an operation needs memory but every resident
// entry is pinned by live sequences.
var ErrPinned = errors.New("kvcache: insufficient memory, all entries pinned")

// New returns a cache that stores KV entries of bytesPerToken bytes each
// within capacityBytes of device memory, with exact (token-granular)
// allocation.
func New(capacityBytes, bytesPerToken int64) *Cache {
	return NewBlocked(capacityBytes, bytesPerToken, 1)
}

// NewBlocked returns a cache whose storage is allocated in blocks of
// blockTokens tokens (vLLM-style paging).
func NewBlocked(capacityBytes, bytesPerToken int64, blockTokens int) *Cache {
	if bytesPerToken <= 0 {
		panic("kvcache: bytesPerToken must be positive")
	}
	if blockTokens < 1 {
		panic("kvcache: blockTokens must be >= 1")
	}
	return &Cache{
		bytesPerToken: bytesPerToken,
		capacity:      capacityBytes,
		blockTokens:   blockTokens,
		root:          &node{children: map[Token]*node{}, heapIdx: -1},
	}
}

// blockCost returns the allocated token slots for n logical tokens.
func (c *Cache) blockCost(n int) int64 {
	b := int64(c.blockTokens)
	return (int64(n) + b - 1) / b * b
}

// CapacityTokens returns the maximum number of tokens the cache can hold.
func (c *Cache) CapacityTokens() int64 { return c.capacity / c.bytesPerToken }

// UsedBytes returns the bytes currently occupied.
func (c *Cache) UsedBytes() int64 { return c.usedTokens * c.bytesPerToken }

// UsedTokens returns the tokens currently resident.
func (c *Cache) UsedTokens() int64 { return c.usedTokens }

// FreeTokens returns capacity not currently occupied (ignoring what could
// be evicted). Opportunistic writers (speculative KV) use this to avoid
// evicting useful entries.
func (c *Cache) FreeTokens() int64 { return c.CapacityTokens() - c.usedTokens }

// PinnedTokens returns the tokens pinned by live sequences.
func (c *Cache) PinnedTokens() int64 {
	var pinned int64
	var walk func(*node)
	walk = func(n *node) {
		if n.refs > 0 && n.parent != nil {
			pinned += int64(len(n.tokens))
		}
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(c.root)
	return pinned
}

// Stats returns a snapshot of the activity counters.
func (c *Cache) Stats() Stats { return c.stats }

// NodeCount returns the number of radix-tree nodes (excluding the root).
// This is the "Nodes(T)" quantity in the paper's eviction cost model §4.2.
func (c *Cache) NodeCount() int {
	count := -1 // exclude root
	var walk func(*node)
	walk = func(n *node) {
		count++
		for _, ch := range n.children {
			walk(ch)
		}
	}
	walk(c.root)
	return count
}

// Fits reports whether a sequence of n tokens could ever reside fully in
// the cache.
func (c *Cache) Fits(n int) bool { return int64(n) <= c.CapacityTokens() }

// walk descends from start matching tokens, splitting a node if the match
// ends mid-span, and returns the deepest fully matched node together with
// the number of matched tokens. It never allocates capacity.
func (c *Cache) walk(start *node, tokens []Token) (*node, int) {
	n := start
	matched := 0
	for matched < len(tokens) {
		child, ok := n.children[tokens[matched]]
		if !ok {
			break
		}
		span := child.tokens
		k := 0
		for k < len(span) && matched+k < len(tokens) && span[k] == tokens[matched+k] {
			k++
		}
		if k < len(span) {
			// Query exhausted mid-span or diverged: split so the matched
			// part becomes its own node boundary.
			c.split(child, k)
		}
		n = child
		matched += k
		if k < len(span) {
			break
		}
	}
	return n, matched
}

// Acquire pins the given token sequence in the cache, inserting any suffix
// not already present and evicting unreferenced entries if needed. It
// returns the handle plus the number of tokens that were already cached
// (hit) and newly inserted (miss — these must be recomputed/prefilled by
// the engine). Acquire fails with ErrTooLarge if the sequence alone
// exceeds capacity, or ErrPinned if live sequences occupy all memory.
func (c *Cache) Acquire(tokens []Token) (seq *Seq, hit, miss int, err error) {
	if !c.Fits(len(tokens)) {
		return nil, 0, 0, ErrTooLarge
	}
	c.clock++
	n, matched := c.walk(c.root, tokens)
	hit = matched
	miss = len(tokens) - matched
	// Pin the matched path before evicting so eviction cannot free it.
	c.pinSegment(n, nil)
	if miss > 0 {
		if err := c.ensure(c.blockCost(miss)); err != nil {
			c.unpinSegment(n, nil)
			return nil, 0, 0, err
		}
		n = c.attachChild(n, tokens[matched:])
	}
	s := &Seq{leaf: n, length: len(tokens)}
	c.addOwner(n, s)
	c.stats.HitTokens += int64(hit)
	c.stats.MissTokens += int64(miss)
	return s, hit, miss, nil
}

// Extend appends tokens to an acquired sequence. Tokens already cached
// below the sequence's current leaf (another beam may have decoded the
// same continuation) count as hits; the remainder is inserted.
func (c *Cache) Extend(s *Seq, tokens []Token) (hit, miss int, err error) {
	if s.released {
		return 0, 0, errors.New("kvcache: extend on released sequence")
	}
	if len(tokens) == 0 {
		return 0, 0, nil
	}
	if !c.Fits(s.length + len(tokens)) {
		return 0, 0, ErrTooLarge
	}
	c.clock++
	start := s.leaf
	// Fast path: sole owner of a childless leaf extends in place.
	if start.refs == 1 && len(start.children) == 0 && start.parent != nil {
		delta := c.blockCost(len(start.tokens)+len(tokens)) - c.blockCost(len(start.tokens))
		if err := c.ensure(delta); err != nil {
			return 0, 0, err
		}
		start.tokens = append(start.tokens, tokens...)
		start.lastUsed = c.clock
		c.usedTokens += delta
		c.stats.MissTokens += int64(len(tokens))
		s.length += len(tokens)
		return 0, len(tokens), nil
	}
	n, matched := c.walk(start, tokens)
	hit = matched
	miss = len(tokens) - matched
	c.pinSegment(n, start)
	if miss > 0 {
		if err := c.ensure(c.blockCost(miss)); err != nil {
			c.unpinSegment(n, start)
			return 0, 0, err
		}
		n = c.attachChild(n, tokens[matched:])
	}
	c.removeOwner(start, s)
	s.leaf = n
	s.length += len(tokens)
	c.addOwner(n, s)
	c.stats.HitTokens += int64(hit)
	c.stats.MissTokens += int64(miss)
	return hit, miss, nil
}

// Fork returns a second pinned handle to the same sequence path. Beam
// branching uses this: the duplicate shares every cached token with the
// original at zero memory cost.
func (c *Cache) Fork(s *Seq) (*Seq, error) {
	if s.released {
		return nil, errors.New("kvcache: fork of released sequence")
	}
	c.clock++
	c.pinSegment(s.leaf, nil)
	f := &Seq{leaf: s.leaf, length: s.length}
	c.addOwner(s.leaf, f)
	return f, nil
}

// Release unpins a sequence. Its nodes stay cached until evicted.
func (c *Cache) Release(s *Seq) {
	if s.released {
		return
	}
	s.released = true
	c.removeOwner(s.leaf, s)
	c.unpinSegment(s.leaf, nil)
}

// Drop releases a sequence and immediately evicts the now-unreferenced
// tail of its path — the nodes no other sequence pins and no child
// extends. Unlike Release (which leaves the path resident for future
// prefix hits), Drop is for state known to be garbage, e.g. per-beam
// decode suffixes after a request completes: keeping them would only
// displace reusable prompt prefixes. Shared ancestors (pinned by other
// sequences or carrying other children) stay cached.
func (c *Cache) Drop(s *Seq) {
	if s.released {
		return
	}
	leaf := s.leaf
	c.Release(s)
	for n := leaf; n != nil && n.evictable(); {
		parent := n.parent
		c.unqueue(n)
		c.evict(n)
		n = parent
	}
}

// LongestCachedPrefix returns how many leading tokens of the given
// sequence are currently resident (pinned or not). It never mutates the
// tree.
func (c *Cache) LongestCachedPrefix(tokens []Token) int {
	n := c.root
	matched := 0
	for matched < len(tokens) {
		child, ok := n.children[tokens[matched]]
		if !ok {
			return matched
		}
		span := child.tokens
		k := 0
		for k < len(span) && matched+k < len(tokens) && span[k] == tokens[matched+k] {
			k++
		}
		matched += k
		if k < len(span) {
			return matched
		}
		n = child
	}
	return matched
}

// EvictAll drops every unreferenced node (used when a model's cache is
// offloaded to host memory, §4.3.2). It returns the number of tokens
// dropped.
func (c *Cache) EvictAll() int64 {
	var dropped int64
	for {
		leaf := c.popEvictable()
		if leaf == nil {
			return dropped
		}
		dropped += int64(len(leaf.tokens))
		c.evict(leaf)
	}
}

// Resize changes the capacity. Shrinking evicts unreferenced entries as
// needed and fails if pinned sequences exceed the new capacity.
func (c *Cache) Resize(capacityBytes int64) error {
	old := c.capacity
	c.capacity = capacityBytes
	if err := c.ensure(0); err != nil {
		c.capacity = old
		return err
	}
	return nil
}

// --- internals ---

// attachChild creates a pinned (refs=1) child of n holding tokens.
func (c *Cache) attachChild(n *node, tokens []Token) *node {
	child := &node{
		parent:   n,
		children: map[Token]*node{},
		tokens:   append([]Token(nil), tokens...),
		refs:     1,
		lastUsed: c.clock,
		heapIdx:  -1,
	}
	n.children[tokens[0]] = child
	c.unqueue(n) // n gained a child; no longer an evictable leaf
	c.usedTokens += c.blockCost(len(tokens))
	return child
}

// pinSegment increments refs from n up to (but excluding) stop. A nil
// stop pins through the root.
func (c *Cache) pinSegment(n, stop *node) {
	for p := n; p != nil && p != stop; p = p.parent {
		p.refs++
		p.lastUsed = c.clock
		c.unqueue(p)
	}
}

// unpinSegment decrements refs from n up to (but excluding) stop.
func (c *Cache) unpinSegment(n, stop *node) {
	for p := n; p != nil && p != stop; p = p.parent {
		p.refs--
		if p.evictable() {
			c.enqueue(p)
		}
	}
}

func (c *Cache) addOwner(n *node, s *Seq) {
	if n.owners == nil {
		n.owners = map[*Seq]struct{}{}
	}
	n.owners[s] = struct{}{}
}

func (c *Cache) removeOwner(n *node, s *Seq) {
	delete(n.owners, s)
}

// split divides n's token span at k: n keeps tokens[:k] and a new child
// inherits tokens[k:], n's children, refs, and — crucially — n's owner
// handles. Every live sequence whose path covered n's full span must now
// terminate at (or pass through) the suffix node. No live path can end
// strictly inside a span: node boundaries are created at every historical
// acquire point and nodes are never merged.
func (c *Cache) split(n *node, k int) {
	if k <= 0 || k >= len(n.tokens) {
		return
	}
	suffix := &node{
		parent:   n,
		children: n.children,
		tokens:   append([]Token(nil), n.tokens[k:]...),
		refs:     n.refs,
		owners:   n.owners,
		lastUsed: n.lastUsed,
		heapIdx:  -1,
	}
	for _, ch := range suffix.children {
		ch.parent = suffix
	}
	for s := range suffix.owners {
		s.leaf = suffix
	}
	whole := c.blockCost(len(n.tokens))
	n.tokens = append([]Token(nil), n.tokens[:k]...)
	n.children = map[Token]*node{suffix.tokens[0]: suffix}
	n.owners = nil
	// Block rounding: two nodes may occupy more slots than one did.
	c.usedTokens += c.blockCost(k) + c.blockCost(len(suffix.tokens)) - whole
	c.unqueue(n) // n now has a child; cannot be an evictable leaf
	if suffix.evictable() {
		c.enqueue(suffix)
	}
}

// ensure evicts unreferenced LRU leaves until needTokens more tokens fit.
func (c *Cache) ensure(needTokens int64) error {
	capTok := c.CapacityTokens()
	for c.usedTokens+needTokens > capTok {
		leaf := c.popEvictable()
		if leaf == nil {
			return fmt.Errorf("%w: need %d tokens, used %d of %d",
				ErrPinned, needTokens, c.usedTokens, capTok)
		}
		c.evict(leaf)
	}
	return nil
}

// evict removes a single evictable leaf from the tree.
func (c *Cache) evict(n *node) {
	parent := n.parent
	delete(parent.children, n.tokens[0])
	c.usedTokens -= c.blockCost(len(n.tokens))
	c.stats.EvictedTokens += int64(len(n.tokens))
	c.stats.Evictions++
	n.parent = nil
	if parent.evictable() {
		c.enqueue(parent)
	}
}

// --- eviction heap (min-heap by lastUsed, lazy removal) ---

type evictHeap []*node

func (h evictHeap) Len() int           { return len(h) }
func (h evictHeap) Less(i, j int) bool { return h[i].lastUsed < h[j].lastUsed }
func (h evictHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i]; h[i].heapIdx = i; h[j].heapIdx = j }
func (h *evictHeap) Push(x any)        { n := x.(*node); n.heapIdx = len(*h); *h = append(*h, n) }
func (h *evictHeap) Pop() any {
	old := *h
	n := old[len(old)-1]
	old[len(old)-1] = nil
	n.heapIdx = -1
	*h = old[:len(old)-1]
	return n
}

func (c *Cache) enqueue(n *node) {
	if n.heapIdx >= 0 || !n.evictable() {
		return
	}
	heap.Push(&c.evictHeap, n)
}

func (c *Cache) unqueue(n *node) {
	if n.heapIdx < 0 {
		return
	}
	heap.Remove(&c.evictHeap, n.heapIdx)
}

func (c *Cache) popEvictable() *node {
	for c.evictHeap.Len() > 0 {
		n := heap.Pop(&c.evictHeap).(*node)
		if n.evictable() && n.parent != nil {
			return n
		}
	}
	return nil
}
