// Package sim provides the discrete virtual clock the serving simulation
// runs on. All latencies in the system are charged to a Clock; nothing
// ever sleeps, so experiments that model minutes of GPU time run in
// milliseconds and are perfectly reproducible.
package sim

import "fmt"

// Clock is a monotonically advancing virtual clock. The zero value is a
// clock at time zero, ready to use.
type Clock struct {
	now float64
}

// Now returns the current virtual time in seconds.
func (c *Clock) Now() float64 { return c.now }

// Advance moves the clock forward by dt seconds and returns the new time.
// It panics on negative dt — time never flows backwards in the simulator,
// and a negative charge always indicates a cost-model bug.
func (c *Clock) Advance(dt float64) float64 {
	if dt < 0 {
		panic(fmt.Sprintf("sim: negative time advance %g", dt))
	}
	c.now += dt
	return c.now
}

// Reset rewinds the clock to zero (between independent experiments).
func (c *Clock) Reset() { c.now = 0 }
