package sim

import "testing"

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	if got := c.Advance(1.5); got != 1.5 {
		t.Errorf("Advance returned %v", got)
	}
	c.Advance(0.5)
	if c.Now() != 2.0 {
		t.Errorf("Now = %v, want 2.0", c.Now())
	}
}

func TestClockZeroAdvance(t *testing.T) {
	var c Clock
	c.Advance(0)
	if c.Now() != 0 {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative advance")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Now after reset = %v", c.Now())
	}
}

// TestClockTable exercises advance sequences as data: cumulative sums,
// fractional steps, resets mid-sequence.
func TestClockTable(t *testing.T) {
	cases := []struct {
		name     string
		steps    []float64
		resetAt  int // index before which Reset is called; -1 = never
		wantNow  float64
		wantRets []float64
	}{
		{name: "single step", steps: []float64{2.5}, resetAt: -1, wantNow: 2.5, wantRets: []float64{2.5}},
		{name: "accumulates", steps: []float64{1, 2, 3}, resetAt: -1, wantNow: 6, wantRets: []float64{1, 3, 6}},
		{name: "fractional", steps: []float64{0.1, 0.2}, resetAt: -1, wantNow: 0.30000000000000004, wantRets: []float64{0.1, 0.30000000000000004}},
		{name: "zero steps ok", steps: []float64{0, 0, 5}, resetAt: -1, wantNow: 5, wantRets: []float64{0, 0, 5}},
		{name: "reset restarts", steps: []float64{4, 1}, resetAt: 1, wantNow: 1, wantRets: []float64{4, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var c Clock
			for i, dt := range tc.steps {
				if i == tc.resetAt {
					c.Reset()
				}
				if got := c.Advance(dt); got != tc.wantRets[i] {
					t.Fatalf("Advance #%d returned %v, want %v", i, got, tc.wantRets[i])
				}
			}
			if c.Now() != tc.wantNow {
				t.Errorf("Now = %v, want %v", c.Now(), tc.wantNow)
			}
		})
	}
}

// TestClockNegativePanicsTable covers the panic guard across magnitudes.
func TestClockNegativePanicsTable(t *testing.T) {
	for _, dt := range []float64{-1e-12, -0.5, -1e9} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Advance(%v) did not panic", dt)
				}
			}()
			var c Clock
			c.Advance(dt)
		}()
	}
}
