package sim

import "testing"

func TestClockAdvances(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("zero clock at %v", c.Now())
	}
	if got := c.Advance(1.5); got != 1.5 {
		t.Errorf("Advance returned %v", got)
	}
	c.Advance(0.5)
	if c.Now() != 2.0 {
		t.Errorf("Now = %v, want 2.0", c.Now())
	}
}

func TestClockZeroAdvance(t *testing.T) {
	var c Clock
	c.Advance(0)
	if c.Now() != 0 {
		t.Errorf("Now = %v", c.Now())
	}
}

func TestClockPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative advance")
		}
	}()
	var c Clock
	c.Advance(-1)
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Advance(10)
	c.Reset()
	if c.Now() != 0 {
		t.Errorf("Now after reset = %v", c.Now())
	}
}
