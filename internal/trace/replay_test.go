package trace

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleTrace() *RunTrace {
	return &RunTrace{
		Scenario: "diurnal",
		Target:   "cluster",
		Seed:     42,
		Requests: 3,
		Records: []Record{
			{ID: 0, Arrival: 0.5, Start: 0.5, Finish: 12.25, Queue: 0, Wall: 11.75, Slices: 9, Tokens: 4210, Device: 0},
			{ID: 2, Arrival: 1.75, Start: 1.75, Finish: 1.75, Rejected: true, Device: 1},
			{ID: 1, Arrival: 1.5, Start: 12.25, Finish: 30, Queue: 10.75, Wall: 28.5, Slices: 14, Tokens: 9000, Device: 0, Requeues: 1},
		},
		Stats: RunStats{
			Served: 2, Rejected: 1, Makespan: 30,
			MeanQueueDelay: 5.375, MaxQueueDelay: 10.75,
			MeanLatency: 20.125, P50Latency: 11.75, P95Latency: 28.5, P99Latency: 28.5,
			Goodput: 440.3333333333333, SLOAttainment: 1.0 / 3,
			ImbalanceCV: 0.2, Requeues: 1, PrefixHitRate: 0.5, FailedDevices: 1,
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	data, err := tr.EncodeJSONL()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSONL(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Fatalf("round trip changed the trace:\n got %+v\nwant %+v", back, tr)
	}
	if err := Diff(back, tr); err != nil {
		t.Fatalf("Diff on round-tripped trace: %v", err)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := sampleTrace().EncodeJSONL()
	if err != nil {
		t.Fatal(err)
	}
	b, err := sampleTrace().EncodeJSONL()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("equal traces encoded to unequal bytes")
	}
}

func TestEncodeLayout(t *testing.T) {
	data, err := sampleTrace().EncodeJSONL()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) != 5 { // header + 3 records + stats
		t.Fatalf("encoded %d lines, want 5:\n%s", len(lines), data)
	}
	if !strings.Contains(lines[0], `"schema":"`+Schema+`"`) {
		t.Errorf("header line %q lacks the schema tag", lines[0])
	}
	if !strings.HasPrefix(lines[len(lines)-1], `{"stats":`) {
		t.Errorf("last line %q is not the stats block", lines[len(lines)-1])
	}
}

func TestWriteJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTrace().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	data, _ := sampleTrace().EncodeJSONL()
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("WriteJSONL bytes differ from EncodeJSONL")
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, _ := sampleTrace().EncodeJSONL()
	lines := strings.SplitAfter(string(good), "\n")
	cases := map[string]string{
		"empty":              "",
		"bad header":         "not json\n",
		"wrong schema":       `{"schema":"fasttts-trace/v0"}` + "\n",
		"missing stats":      strings.Join(lines[:len(lines)-2], ""),
		"record after stats": string(good) + lines[1],
		"garbage record":     lines[0] + "{{{\n" + lines[len(lines)-2],
	}
	for name, data := range cases {
		if _, err := DecodeJSONL([]byte(data)); err == nil {
			t.Errorf("%s: decode did not error", name)
		}
	}
}

func TestDecodeSkipsBlankLines(t *testing.T) {
	good, _ := sampleTrace().EncodeJSONL()
	padded := strings.ReplaceAll(string(good), "\n", "\n\n")
	back, err := DecodeJSONL([]byte(padded))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Records) != 3 {
		t.Fatalf("decoded %d records from padded trace, want 3", len(back.Records))
	}
}

func TestDiffReportsFirstDivergence(t *testing.T) {
	base := sampleTrace()
	cases := []struct {
		name   string
		mutate func(*RunTrace)
		want   string
	}{
		{"scenario", func(t *RunTrace) { t.Scenario = "steady" }, "scenario"},
		{"target", func(t *RunTrace) { t.Target = "server" }, "target"},
		{"seed", func(t *RunTrace) { t.Seed = 7 }, "seed"},
		{"length", func(t *RunTrace) { t.Records = t.Records[:1] }, "records"},
		{"record float", func(t *RunTrace) { t.Records[1].Wall += 1e-9 }, "Wall"},
		{"record flag", func(t *RunTrace) { t.Records[1].Rejected = false }, "Rejected"},
		{"stats", func(t *RunTrace) { t.Stats.Goodput *= 1.0000001 }, "Goodput"},
	}
	for _, tc := range cases {
		got := sampleTrace()
		tc.mutate(got)
		err := Diff(got, base)
		if err == nil {
			t.Errorf("%s: Diff found no divergence", tc.name)
			continue
		}
		if !strings.Contains(strings.ToLower(err.Error()), strings.ToLower(tc.want)) {
			t.Errorf("%s: Diff error %q does not name %q", tc.name, err, tc.want)
		}
	}
	if err := Diff(sampleTrace(), base); err != nil {
		t.Errorf("identical traces diff: %v", err)
	}
}

func TestDiffTreatsNaNPairsAsEqual(t *testing.T) {
	a, b := sampleTrace(), sampleTrace()
	a.Stats.Goodput = math.NaN()
	b.Stats.Goodput = math.NaN()
	b.Stats.FailedDevices = 2
	err := Diff(a, b)
	if err == nil {
		t.Fatal("expected divergence on FailedDevices")
	}
	if !strings.Contains(err.Error(), "FailedDevices") {
		t.Errorf("Diff stopped at the NaN pair instead of the real divergence: %v", err)
	}
}
