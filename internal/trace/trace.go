// Package trace records per-kernel time series from the simulated engines:
// compute utilization, batch occupancy, and KV usage over virtual time.
// It regenerates the paper's Nsight-style utilization plots (Fig 4,
// Fig 17 left) and the KV occupancy curves (Fig 5 left).
//
// A nil *Recorder is valid and records nothing, so hot paths can call it
// unconditionally.
package trace

import "sort"

// Phase labels what the device was doing during a sample.
type Phase string

const (
	PhaseGenerate  Phase = "generate"
	PhaseSpeculate Phase = "speculate"
	PhaseVerify    Phase = "verify"
	PhaseRecompute Phase = "recompute"
	PhaseTransfer  Phase = "transfer"
)

// Sample is one recorded kernel interval.
type Sample struct {
	Start, End float64
	Phase      Phase
	Util       float64 // achieved compute utilization in [0,1]
	Batch      int     // sequences in the batch
	KVBytes    int64   // cache bytes resident after the kernel
}

// Recorder accumulates samples.
type Recorder struct {
	Samples []Sample
}

// Record appends a sample. Safe on a nil receiver.
func (r *Recorder) Record(s Sample) {
	if r == nil {
		return
	}
	r.Samples = append(r.Samples, s)
}

// Reset drops all samples. Safe on a nil receiver.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.Samples = r.Samples[:0]
}

// PhaseTime returns the total recorded time spent in the given phase.
func (r *Recorder) PhaseTime(p Phase) float64 {
	if r == nil {
		return 0
	}
	total := 0.0
	for _, s := range r.Samples {
		if s.Phase == p {
			total += s.End - s.Start
		}
	}
	return total
}

// Span returns the [min Start, max End] of all samples.
func (r *Recorder) Span() (start, end float64) {
	if r == nil || len(r.Samples) == 0 {
		return 0, 0
	}
	start, end = r.Samples[0].Start, r.Samples[0].End
	for _, s := range r.Samples {
		if s.Start < start {
			start = s.Start
		}
		if s.End > end {
			end = s.End
		}
	}
	return start, end
}

// Point is one resampled time-series point.
type Point struct {
	Time float64
	Util float64
	KV   int64
}

// UtilSeries resamples utilization onto a fixed dt grid (time-weighted
// average within each bin; gaps count as zero utilization), optionally
// filtered to a single phase ("" = all phases). This mirrors how Nsight
// downsamples tensor-core activity for Fig 4.
func (r *Recorder) UtilSeries(dt float64, phase Phase) []Point {
	if r == nil || len(r.Samples) == 0 || dt <= 0 {
		return nil
	}
	start, end := r.Span()
	nBins := int((end-start)/dt) + 1
	busy := make([]float64, nBins) // Σ util·overlap per bin
	kv := make([]int64, nBins)     // last KV value seen per bin
	kvSeen := make([]bool, nBins)
	samples := append([]Sample(nil), r.Samples...)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Start < samples[j].Start })
	for _, s := range samples {
		if phase != "" && s.Phase != phase {
			continue
		}
		b0 := int((s.Start - start) / dt)
		b1 := int((s.End - start) / dt)
		for b := b0; b <= b1 && b < nBins; b++ {
			lo := start + float64(b)*dt
			hi := lo + dt
			ov := overlap(s.Start, s.End, lo, hi)
			if ov > 0 {
				busy[b] += s.Util * ov
				kv[b] = s.KVBytes
				kvSeen[b] = true
			}
		}
	}
	out := make([]Point, nBins)
	var lastKV int64
	for b := range out {
		if kvSeen[b] {
			lastKV = kv[b]
		}
		out[b] = Point{Time: start + (float64(b)+0.5)*dt, Util: busy[b] / dt, KV: lastKV}
		if out[b].Util > 1 {
			out[b].Util = 1
		}
	}
	return out
}

func overlap(a0, a1, b0, b1 float64) float64 {
	lo, hi := a0, a1
	if b0 > lo {
		lo = b0
	}
	if b1 < hi {
		hi = b1
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}
