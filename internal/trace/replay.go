package trace

// Record/replay for whole served streams: a RunTrace captures every
// request's queueing telemetry plus the run's aggregate metrics in a
// canonical JSONL form. Because the serving stack is a deterministic
// simulation, replaying a scenario must reproduce its RunTrace
// bit-identically — encoded bytes and all — which is the contract the
// golden-regression harness (testdata/golden, make golden) enforces.
//
// The JSONL layout is one header object (schema, scenario, target, seed,
// stream length), one object per served request in result order, and one
// trailing {"stats": ...} object. Every float is written by Go's
// shortest-round-trip formatter, so equal runs give equal bytes.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
)

// Schema identifies the canonical trace layout; bump on any change to
// the Record/RunStats wire shape.
const Schema = "fasttts-trace/v1"

// Record is the canonical telemetry of one served request.
type Record struct {
	// ID is the request's position in the submitted stream.
	ID int `json:"id"`
	// Arrival, Start, and Finish are on the serving clock; Queue and Wall
	// are the derived queueing delay and wall latency.
	Arrival float64 `json:"arrival"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
	Queue   float64 `json:"queue"`
	Wall    float64 `json:"wall"`
	// Slices counts device slices; Tokens is the useful generated output.
	Slices int   `json:"slices"`
	Tokens int64 `json:"tokens"`
	// Rejected marks requests shed by admission control (or lost capacity).
	Rejected bool `json:"rejected"`
	// Device is the fleet index of the serving device (0 on a single
	// server, -1 for fleet-wide lost capacity); Requeues counts
	// failure-induced migrations.
	Device   int `json:"device"`
	Requeues int `json:"requeues"`
}

// RunStats is the canonical aggregate block of a trace: the server-level
// aggregates, plus the fleet-only fields (zero on single-server runs).
type RunStats struct {
	Served         int     `json:"served"`
	Rejected       int     `json:"rejected"`
	Makespan       float64 `json:"makespan"`
	MeanQueueDelay float64 `json:"mean_queue_delay"`
	MaxQueueDelay  float64 `json:"max_queue_delay"`
	MeanLatency    float64 `json:"mean_latency"`
	P50Latency     float64 `json:"p50_latency"`
	P95Latency     float64 `json:"p95_latency"`
	P99Latency     float64 `json:"p99_latency"`
	Goodput        float64 `json:"goodput"`
	SLOAttainment  float64 `json:"slo_attainment"`
	ImbalanceCV    float64 `json:"imbalance_cv"`
	Requeues       int     `json:"requeues"`
	PrefixHitRate  float64 `json:"prefix_hit_rate"`
	FailedDevices  int     `json:"failed_devices"`
}

// RunTrace is one captured served stream.
type RunTrace struct {
	// Scenario and Target name the run ("diurnal", "server"/"cluster");
	// Seed and Requests pin its parameters.
	Scenario string
	Target   string
	Seed     uint64
	Requests int
	Records  []Record
	Stats    RunStats
}

// header is the first JSONL line.
type header struct {
	Schema   string `json:"schema"`
	Scenario string `json:"scenario"`
	Target   string `json:"target"`
	Seed     uint64 `json:"seed"`
	Requests int    `json:"requests"`
}

// statsLine is the last JSONL line.
type statsLine struct {
	Stats *RunStats `json:"stats"`
}

// EncodeJSONL renders the trace in canonical JSONL. Equal traces encode
// to equal bytes.
func (t *RunTrace) EncodeJSONL() ([]byte, error) {
	var b bytes.Buffer
	enc := json.NewEncoder(&b)
	if err := enc.Encode(header{
		Schema: Schema, Scenario: t.Scenario, Target: t.Target,
		Seed: t.Seed, Requests: t.Requests,
	}); err != nil {
		return nil, fmt.Errorf("trace: encoding header: %w", err)
	}
	for i := range t.Records {
		if err := enc.Encode(&t.Records[i]); err != nil {
			return nil, fmt.Errorf("trace: encoding record %d: %w", i, err)
		}
	}
	stats := t.Stats
	if err := enc.Encode(statsLine{Stats: &stats}); err != nil {
		return nil, fmt.Errorf("trace: encoding stats: %w", err)
	}
	return b.Bytes(), nil
}

// WriteJSONL writes the canonical encoding to w.
func (t *RunTrace) WriteJSONL(w io.Writer) error {
	data, err := t.EncodeJSONL()
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// DecodeJSONL parses a canonical JSONL trace.
func DecodeJSONL(data []byte) (*RunTrace, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty trace")
	}
	var h header
	if err := json.Unmarshal(sc.Bytes(), &h); err != nil {
		return nil, fmt.Errorf("trace: parsing header: %w", err)
	}
	if h.Schema != Schema {
		return nil, fmt.Errorf("trace: schema %q, want %q", h.Schema, Schema)
	}
	t := &RunTrace{Scenario: h.Scenario, Target: h.Target, Seed: h.Seed, Requests: h.Requests}
	sawStats := false
	for line := 2; sc.Scan(); line++ {
		raw := sc.Bytes()
		if len(bytes.TrimSpace(raw)) == 0 {
			continue
		}
		if sawStats {
			return nil, fmt.Errorf("trace: line %d: content after the stats line", line)
		}
		var sl statsLine
		if err := json.Unmarshal(raw, &sl); err == nil && sl.Stats != nil {
			t.Stats = *sl.Stats
			sawStats = true
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: reading trace: %w", err)
	}
	if !sawStats {
		return nil, fmt.Errorf("trace: missing stats line")
	}
	return t, nil
}

// Conform is the golden-trace verdict shared by the conformance tests
// and the bench regression runner: byte equality is the contract; on
// divergence both sides are decoded so the detail names the first
// divergent field rather than a byte offset.
func Conform(got, want []byte) (ok bool, detail string) {
	if bytes.Equal(got, want) {
		return true, ""
	}
	gotTr, gerr := DecodeJSONL(got)
	wantTr, werr := DecodeJSONL(want)
	if gerr != nil || werr != nil {
		return false, fmt.Sprintf("bytes diverge (decode got: %v, want: %v)", gerr, werr)
	}
	if err := Diff(gotTr, wantTr); err != nil {
		return false, err.Error()
	}
	return false, "field-identical but bytes differ (non-canonical encoding)"
}

// Diff compares two traces field-by-field (floats exactly — the sim is
// deterministic, so exact match is the contract) and returns a
// description of the first divergence, or nil when identical.
func Diff(got, want *RunTrace) error {
	switch {
	case got.Scenario != want.Scenario:
		return fmt.Errorf("scenario %q, want %q", got.Scenario, want.Scenario)
	case got.Target != want.Target:
		return fmt.Errorf("target %q, want %q", got.Target, want.Target)
	case got.Seed != want.Seed:
		return fmt.Errorf("seed %d, want %d", got.Seed, want.Seed)
	case got.Requests != want.Requests:
		return fmt.Errorf("stream length %d, want %d", got.Requests, want.Requests)
	case len(got.Records) != len(want.Records):
		return fmt.Errorf("%d records, want %d", len(got.Records), len(want.Records))
	}
	for i := range got.Records {
		if err := diffStruct(got.Records[i], want.Records[i]); err != nil {
			return fmt.Errorf("record %d (request %d): %w", i, want.Records[i].ID, err)
		}
	}
	if err := diffStruct(got.Stats, want.Stats); err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	return nil
}

// diffStruct reports the first differing exported field of two equal-type
// structs, by name — a structured alternative to reflect.DeepEqual's
// bare false.
func diffStruct(got, want any) error {
	gv, wv := reflect.ValueOf(got), reflect.ValueOf(want)
	for i := 0; i < gv.NumField(); i++ {
		g, w := gv.Field(i).Interface(), wv.Field(i).Interface()
		if g != w && !bothNaN(g, w) {
			return fmt.Errorf("%s = %v, want %v", gv.Type().Field(i).Name, g, w)
		}
	}
	return nil
}

// bothNaN treats two NaNs as equal so a corrupted-but-stable golden
// still diffs on the first *divergent* field rather than on NaN != NaN.
func bothNaN(a, b any) bool {
	af, aok := a.(float64)
	bf, bok := b.(float64)
	return aok && bok && math.IsNaN(af) && math.IsNaN(bf)
}
