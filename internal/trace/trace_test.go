package trace

import (
	"math"
	"testing"
)

func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Record(Sample{Start: 0, End: 1})
	r.Reset()
	if got := r.PhaseTime(PhaseGenerate); got != 0 {
		t.Errorf("nil PhaseTime = %v", got)
	}
	if s, e := r.Span(); s != 0 || e != 0 {
		t.Errorf("nil Span = %v,%v", s, e)
	}
	if pts := r.UtilSeries(0.1, ""); pts != nil {
		t.Errorf("nil UtilSeries = %v", pts)
	}
}

func TestPhaseTime(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Start: 0, End: 2, Phase: PhaseGenerate, Util: 0.5})
	r.Record(Sample{Start: 2, End: 3, Phase: PhaseVerify, Util: 0.9})
	r.Record(Sample{Start: 3, End: 5, Phase: PhaseGenerate, Util: 0.2})
	if got := r.PhaseTime(PhaseGenerate); math.Abs(got-4) > 1e-12 {
		t.Errorf("generate time = %v, want 4", got)
	}
	if got := r.PhaseTime(PhaseVerify); math.Abs(got-1) > 1e-12 {
		t.Errorf("verify time = %v, want 1", got)
	}
}

func TestSpan(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Start: 1, End: 2})
	r.Record(Sample{Start: 0.5, End: 3})
	s, e := r.Span()
	if s != 0.5 || e != 3 {
		t.Errorf("span = %v,%v", s, e)
	}
}

func TestUtilSeriesConstantKernel(t *testing.T) {
	r := &Recorder{}
	// One kernel [0,1) at util 0.6: every bin inside should read 0.6.
	r.Record(Sample{Start: 0, End: 1, Phase: PhaseGenerate, Util: 0.6, KVBytes: 42})
	pts := r.UtilSeries(0.1, "")
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	for _, p := range pts[:9] {
		if math.Abs(p.Util-0.6) > 1e-9 {
			t.Errorf("t=%.2f util=%v, want 0.6", p.Time, p.Util)
		}
		if p.KV != 42 {
			t.Errorf("KV = %d", p.KV)
		}
	}
}

func TestUtilSeriesGapIsZero(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Start: 0, End: 1, Util: 1})
	r.Record(Sample{Start: 2, End: 3, Util: 1})
	pts := r.UtilSeries(0.5, "")
	// Bin covering [1.0,1.5) is a gap.
	var gap *Point
	for i := range pts {
		if pts[i].Time > 1.0 && pts[i].Time < 1.5 {
			gap = &pts[i]
		}
	}
	if gap == nil {
		t.Fatal("no gap bin found")
	}
	if gap.Util != 0 {
		t.Errorf("gap util = %v, want 0", gap.Util)
	}
}

func TestUtilSeriesPhaseFilter(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Start: 0, End: 1, Phase: PhaseGenerate, Util: 1})
	r.Record(Sample{Start: 1, End: 2, Phase: PhaseVerify, Util: 1})
	pts := r.UtilSeries(1.0, PhaseVerify)
	if len(pts) < 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Util != 0 || pts[1].Util != 1 {
		t.Errorf("filtered series = %+v", pts)
	}
}

func TestReset(t *testing.T) {
	r := &Recorder{}
	r.Record(Sample{Start: 0, End: 1})
	r.Reset()
	if len(r.Samples) != 0 {
		t.Errorf("samples after reset: %d", len(r.Samples))
	}
}
