package model

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{
		"Qwen2.5-Math-1.5B", "Qwen2.5-Math-7B",
		"Math-Shepherd-Mistral-7B", "Skywork-o1-Open-PRM-1.5B",
	} {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name != name {
			t.Errorf("got %q", c.Name)
		}
	}
	if _, err := ByName("GPT-5"); err == nil {
		t.Error("expected error for unknown model")
	}
}

func TestWeightBytesFP16(t *testing.T) {
	c := Qwen25Math1_5B
	want := int64(2 * 1_540_000_000)
	if got := c.WeightBytes(); got != want {
		t.Errorf("WeightBytes = %d, want %d", got, want)
	}
}

func TestQuantizationShrinksWeights(t *testing.T) {
	fp16 := Qwen25Math7B.WeightBytes()
	int8 := Qwen25Math7B.WithQuant(INT8).WeightBytes()
	int4 := Qwen25Math7B.WithQuant(INT4).WeightBytes()
	if !(int4 < int8 && int8 < fp16) {
		t.Errorf("quantization ordering wrong: fp16=%d int8=%d int4=%d", fp16, int8, int4)
	}
	if int8 != fp16/2 || int4 != fp16/4 {
		t.Errorf("quantization ratios wrong: fp16=%d int8=%d int4=%d", fp16, int8, int4)
	}
}

func TestKVBytesPerTokenMatchesArchitecture(t *testing.T) {
	// Qwen 1.5B: 2 (K,V) * 28 layers * 2 kv-heads * 128 dim * 2 bytes = 28672.
	if got := Qwen25Math1_5B.KVBytesPerToken(); got != 28672 {
		t.Errorf("Qwen1.5B KV/token = %d, want 28672", got)
	}
	// Mistral-7B PRM: 2 * 32 * 8 * 128 * 2 = 131072 (128 KiB/token).
	if got := ShepherdPRM7B.KVBytesPerToken(); got != 131072 {
		t.Errorf("Shepherd KV/token = %d, want 131072", got)
	}
}

func TestKVBytesLinear(t *testing.T) {
	f := func(b, s uint8) bool {
		batch, seq := int(b%32)+1, int(s)+1
		c := Qwen25Math1_5B
		return c.KVBytes(batch, seq) == int64(batch)*int64(seq)*c.KVBytesPerToken()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVerifierKVHeavierThanGenerator(t *testing.T) {
	// The 1.5B+7B config is "verifier-heavy" (§6.1): the 7B Mistral PRM
	// has >4x the KV footprint per token of the 1.5B generator.
	g := Qwen25Math1_5B.KVBytesPerToken()
	v := ShepherdPRM7B.KVBytesPerToken()
	if v <= 4*g {
		t.Errorf("expected verifier KV (%d) > 4x generator KV (%d)", v, g)
	}
}

func TestDecodeFLOPsGrowWithContext(t *testing.T) {
	c := Qwen25Math7B
	if !(c.DecodeFLOPsPerToken(2048) > c.DecodeFLOPsPerToken(128)) {
		t.Error("decode FLOPs should grow with context")
	}
	// MLP term dominates at short context: roughly 2*params.
	got := c.DecodeFLOPsPerToken(0)
	want := 2 * float64(c.Params)
	if got != want {
		t.Errorf("zero-context decode FLOPs = %g, want %g", got, want)
	}
}

func TestPrefillFLOPsSuperlinearInTokens(t *testing.T) {
	c := Qwen25Math1_5B
	f1 := c.PrefillFLOPs(512, 512)
	f2 := c.PrefillFLOPs(1024, 1024)
	if f2 <= 2*f1 {
		t.Error("prefill FLOPs should be superlinear (attention is quadratic)")
	}
}

func TestDecodeBytesDominatedByWeightsAtSmallBatch(t *testing.T) {
	c := Qwen25Math1_5B
	b1 := c.DecodeBytesPerStep(1, 256)
	weights := float64(c.WeightBytes())
	if b1 < weights || b1 > 1.2*weights {
		t.Errorf("single-seq decode bytes %g should be ~weights %g", b1, weights)
	}
	// Large batch with long contexts: KV reads dominate.
	bBig := c.DecodeBytesPerStep(512, 512*2000)
	if bBig < 2*weights {
		t.Error("large-batch decode bytes should exceed weight reads substantially")
	}
}

func TestPrefillBytesGrowWithTokens(t *testing.T) {
	c := Qwen25Math1_5B
	if !(c.PrefillBytes(4096) > c.PrefillBytes(16)) {
		t.Error("prefill bytes should grow with token count")
	}
}

func TestCloudModelsInventory(t *testing.T) {
	if len(CloudModels) != 3 {
		t.Fatalf("CloudModels = %d entries, want 3", len(CloudModels))
	}
	for _, m := range CloudModels {
		if m.ActivatedBytes > m.TotalBytes {
			t.Errorf("%s: activated %d > total %d", m.Name, m.ActivatedBytes, m.TotalBytes)
		}
		// Every cloud model is far beyond a 24 GB edge GPU (Fig 1a).
		if m.ActivatedBytes <= 24<<30 {
			t.Errorf("%s: activated %d unexpectedly fits on a 4090", m.Name, m.ActivatedBytes)
		}
	}
}

func TestEdgePairFitsOn4090(t *testing.T) {
	// Fig 1a: Qwen2.5-1.5B + Skywork-1.5B TTS pair = ~6 GB, fits in 24 GB.
	pair := Qwen25Math1_5B.WeightBytes() + SkyworkPRM1_5B.WeightBytes()
	if pair >= 24<<30 {
		t.Errorf("1.5B+1.5B pair (%d bytes) should fit on a 4090", pair)
	}
}

func TestStringMentionsQuant(t *testing.T) {
	s := Qwen25Math1_5B.WithQuant(INT4).String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
