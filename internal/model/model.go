// Package model describes the LLM architectures the paper serves and the
// arithmetic/memory cost of running them (paper §6.1, Fig 1a, Fig 9).
//
// The serving system never needs weights — only sizes and FLOP counts,
// which are fully determined by the architecture: weight bytes bound what
// fits on the device, KV bytes per token drive cache pressure, and
// FLOPs/bytes per token feed the roofline model in package hw.
package model

import "fmt"

// Quantization selects the on-device numeric format of the weights
// (paper Fig 9: "Weights Memory: decided by model parameters &
// quantization config"). KV cache entries stay FP16 in all configs,
// matching the paper's setup.
type Quantization int

const (
	FP16 Quantization = iota
	INT8
	INT4
)

// BytesPerParam returns the storage cost of one parameter.
func (q Quantization) BytesPerParam() float64 {
	switch q {
	case INT8:
		return 1
	case INT4:
		return 0.5
	default:
		return 2
	}
}

func (q Quantization) String() string {
	switch q {
	case INT8:
		return "int8"
	case INT4:
		return "int4"
	default:
		return "fp16"
	}
}

// Config describes a transformer architecture.
type Config struct {
	Name    string
	Params  int64 // total parameter count
	Layers  int
	Hidden  int // model (embedding) dimension
	Heads   int // attention query heads
	KVHeads int // grouped-query KV heads
	HeadDim int
	Quant   Quantization
	// Role hints for documentation; the engine does not branch on these.
	IsVerifier bool
}

// The model zoo from the paper's evaluation (§6.1) plus the cloud
// reference points from Fig 1a.
var (
	// Qwen25Math1_5B is the 1.5B generator (and, with Skywork weights,
	// the 1.5B verifier shares this architecture).
	Qwen25Math1_5B = Config{
		Name:   "Qwen2.5-Math-1.5B",
		Params: 1_540_000_000,
		Layers: 28, Hidden: 1536, Heads: 12, KVHeads: 2, HeadDim: 128,
	}
	// Qwen25Math7B is the 7B generator.
	Qwen25Math7B = Config{
		Name:   "Qwen2.5-Math-7B",
		Params: 7_620_000_000,
		Layers: 28, Hidden: 3584, Heads: 28, KVHeads: 4, HeadDim: 128,
	}
	// ShepherdPRM7B is the Math-Shepherd-Mistral-7B discriminative PRM.
	ShepherdPRM7B = Config{
		Name:   "Math-Shepherd-Mistral-7B",
		Params: 7_240_000_000,
		Layers: 32, Hidden: 4096, Heads: 32, KVHeads: 8, HeadDim: 128,
		IsVerifier: true,
	}
	// SkyworkPRM1_5B is the Skywork-o1-Open-PRM-Qwen-2.5-1.5B verifier.
	SkyworkPRM1_5B = Config{
		Name:   "Skywork-o1-Open-PRM-1.5B",
		Params: 1_540_000_000,
		Layers: 28, Hidden: 1536, Heads: 12, KVHeads: 2, HeadDim: 128,
		IsVerifier: true,
	}
)

// CloudReference is a memory-inventory entry for Fig 1a (cloud models are
// never executed here; they exist only for the memory-cost figure).
type CloudReference struct {
	Name           string
	TotalBytes     int64
	ActivatedBytes int64 // for MoE models; equals TotalBytes for dense
}

// CloudModels reproduces the Fig 1a inventory.
var CloudModels = []CloudReference{
	{Name: "O1-Preview (est.)", TotalBytes: 559 << 30, ActivatedBytes: 559 << 30},
	{Name: "Qwen3-235B", TotalBytes: 438 << 30, ActivatedBytes: 41 << 30},
	{Name: "DeepSeek R1", TotalBytes: 1276 << 30, ActivatedBytes: 69 << 30},
}

// ByName returns the config with the given name.
func ByName(name string) (Config, error) {
	for _, c := range []Config{Qwen25Math1_5B, Qwen25Math7B, ShepherdPRM7B, SkyworkPRM1_5B} {
		if c.Name == name {
			return c, nil
		}
	}
	return Config{}, fmt.Errorf("model: unknown model %q", name)
}

// WithQuant returns a copy of the config using the given weight format.
func (c Config) WithQuant(q Quantization) Config {
	c.Quant = q
	return c
}

// WeightBytes returns the device memory occupied by the weights.
func (c Config) WeightBytes() int64 {
	return int64(float64(c.Params) * c.Quant.BytesPerParam())
}

// KVBytesPerToken returns the KV-cache footprint of one token: K and V
// vectors for every layer, FP16.
func (c Config) KVBytesPerToken() int64 {
	return int64(2 /*K+V*/ * c.Layers * c.KVHeads * c.HeadDim * 2 /*fp16*/)
}

// KVBytes returns the KV footprint of a batch of batch sequences of
// seqLen tokens each (paper Eq. 1 uses KVBytes(1, S)).
func (c Config) KVBytes(batch, seqLen int) int64 {
	return int64(batch) * int64(seqLen) * c.KVBytesPerToken()
}

// DecodeFLOPsPerToken returns the FLOPs to decode one token for one
// sequence: 2 FLOPs per parameter (the MAC through every weight) plus
// attention over the cached context.
func (c Config) DecodeFLOPsPerToken(contextLen int) float64 {
	mlp := 2 * float64(c.Params)
	// Attention: q·K and attn·V over the context for every layer.
	attn := 4 * float64(c.Layers) * float64(c.Heads*c.HeadDim) * float64(contextLen)
	return mlp + attn
}

// PrefillFLOPs returns the FLOPs to prefill n new tokens whose attention
// spans contextLen total tokens.
func (c Config) PrefillFLOPs(nTokens, contextLen int) float64 {
	mlp := 2 * float64(c.Params) * float64(nTokens)
	attn := 4 * float64(c.Layers) * float64(c.Heads*c.HeadDim) * float64(nTokens) * float64(contextLen) / 2
	return mlp + attn
}

// DecodeBytesPerStep returns device bytes moved to decode one token for a
// batch: the full weights are streamed once per step (this is what makes
// small-batch decode bandwidth-bound and why a shrunken straggler batch
// runs no faster — the GPU idles, paper §3.2.1), plus the KV cache read
// for each sequence.
func (c Config) DecodeBytesPerStep(batch int, totalContextTokens int64) float64 {
	weights := float64(c.WeightBytes())
	kv := float64(totalContextTokens) * float64(c.KVBytesPerToken())
	act := float64(batch) * float64(c.Hidden) * 2 * float64(c.Layers)
	return weights + kv + act
}

// PrefillBytes returns device bytes moved to prefill nTokens tokens.
func (c Config) PrefillBytes(nTokens int) float64 {
	weights := float64(c.WeightBytes())
	act := float64(nTokens) * float64(c.Hidden) * 2 * float64(c.Layers) * 4
	kvWrite := float64(nTokens) * float64(c.KVBytesPerToken())
	return weights + act + kvWrite
}

func (c Config) String() string {
	return fmt.Sprintf("%s (%.2fB params, %s, %d layers, kv %dB/token)",
		c.Name, float64(c.Params)/1e9, c.Quant, c.Layers, c.KVBytesPerToken())
}
