package core

// Regression tests for the loop's incrementally maintained load indexes
// and the de-allocated StepTo hot path: OutstandingWork and Pending must
// be O(1) reads (no per-call scans, no allocations), the incremental
// index must track the explicit scan it replaced, and a no-op StepTo
// must not allocate.

import (
	"math"
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// cotConfig is a minimal chain-of-thought deployment: single-slice
// requests keep index-tracking tests fast.
func cotConfig(t testing.TB, seed uint64) Config {
	t.Helper()
	pol, err := search.New(search.SingleCoT, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		GPU:            hw.RTX4090,
		Generator:      model.Qwen25Math1_5B,
		GenSkill:       workload.SkillQwen1_5B,
		Verifier:       model.Qwen25Math1_5B,
		VerSkill:       workload.SkillSkywork1_5B,
		MemoryFraction: 0.4,
		Policy:         pol,
		Opts:           BaselineOptions(),
		Seed:           seed,
	}
}

// scanOutstandingWork recomputes the load signal the way the pre-index
// implementation did: an explicit pass over live sessions and the
// unadmitted queue.
func scanOutstandingWork(l *Loop) float64 {
	var w float64
	for _, c := range l.sessions {
		if !c.done {
			w += l.s.viewOf(c).RemainingWork
		}
	}
	for _, rq := range l.queue[l.next:] {
		w += l.s.estimateWork(rq)
	}
	return w
}

// steppedLoop builds a loop mid-run: half the stream admitted and
// partially executed, half still queued in the future.
func steppedLoop(t testing.TB, n int) *Loop {
	t.Helper()
	srv, err := NewServer(cotConfig(t, 42))
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Problem: ds.Problems[i%len(ds.Problems)], Arrival: float64(i), Tag: i}
	}
	l := srv.NewLoop(reqs)
	if _, err := l.StepTo(float64(n) / 2); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestOutstandingWorkTracksScan(t *testing.T) {
	l := steppedLoop(t, 24)
	for {
		got, want := l.OutstandingWork(), scanOutstandingWork(l)
		tol := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(got-want) > tol {
			t.Fatalf("OutstandingWork = %v, scan = %v (diff %v beyond tolerance)", got, want, got-want)
		}
		if l.Idle() {
			break
		}
		if _, err := l.StepTo(l.Now() + 3); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.OutstandingWork(); got != 0 {
		t.Fatalf("drained loop OutstandingWork = %v, want exactly 0", got)
	}
	if got := l.Pending(); got != 0 {
		t.Fatalf("drained loop Pending = %d, want 0", got)
	}
}

func TestLoadIndexReadsAllocFree(t *testing.T) {
	l := steppedLoop(t, 24)
	if l.Pending() == 0 {
		t.Fatal("test loop should have outstanding population")
	}
	var sink float64
	var sinkN int
	if avg := testing.AllocsPerRun(100, func() { sink = l.OutstandingWork() }); avg != 0 {
		t.Errorf("OutstandingWork allocates %.1f objects per call, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { sinkN = l.Pending() }); avg != 0 {
		t.Errorf("Pending allocates %.1f objects per call, want 0", avg)
	}
	_, _ = sink, sinkN
}

// TestStepToNoOpAllocFree pins the de-allocated hot path: stepping a busy
// loop to a horizon it has already reached must do nothing and allocate
// nothing — the fleet event core relies on no-op steps being free (and
// the event heap makes most of them unnecessary altogether).
func TestStepToNoOpAllocFree(t *testing.T) {
	l := steppedLoop(t, 24)
	if l.InFlight() == 0 {
		t.Fatal("test loop should be busy")
	}
	horizon := l.Now() // already reached: StepTo must be a no-op
	if avg := testing.AllocsPerRun(100, func() {
		if _, err := l.StepTo(horizon); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Errorf("no-op StepTo allocates %.1f objects per call, want 0", avg)
	}
}

func BenchmarkLoopStepTo(b *testing.B) {
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	reqs := make([]Request, 256)
	times := workload.PoissonArrivals(len(reqs), 4, rng.New(11).Child("arrivals"))
	for i := range reqs {
		reqs[i] = Request{Problem: ds.Problems[i%len(ds.Problems)], Arrival: times[i], Tag: i}
	}
	cfg := cotConfig(b, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := NewServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.NewLoop(reqs).StepTo(NoHorizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOutstandingWork(b *testing.B) {
	l := steppedLoop(b, 64)
	if l.Pending() == 0 {
		b.Fatal("bench loop should have outstanding population")
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink = l.OutstandingWork()
	}
	_ = sink
}
