package core

import (
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// Offloading must engage — and charge PCIe transfer time — when the
// verifier's KV appetite dwarfs a tiny shared budget (§4.3.2).
func TestOffloadEngagesAndChargesTransfers(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 32, 4)
	opts := FastTTSOptions()
	opts.AllowOffload = true
	cfg := Config{
		GPU:              hw.RTX4090,
		Generator:        model.Qwen25Math1_5B,
		GenSkill:         workload.SkillQwen1_5B,
		Verifier:         model.ShepherdPRM7B, // 128 KiB/token KV
		VerSkill:         workload.SkillShepherd7B,
		MemoryFraction:   0.9,
		KVBudgetOverride: 384 << 20, // 384 MiB shared budget
		Policy:           pol,
		Opts:             opts,
		Seed:             42,
	}
	res := solveOne(t, cfg, aimeProblem(t, 0))
	if res.TransferTime == 0 {
		t.Skip("allocator found partitioning cheaper at this budget; offload not exercised")
	}
	if res.TransferTime <= 0 || res.TransferTime >= res.Latency {
		t.Errorf("transfer time %v outside (0, latency %v)", res.TransferTime, res.Latency)
	}
}

// The generator prefix cache is what lets FastTTS avoid re-prefilling
// full paths: baseline recompute must dwarf FastTTS recompute.
func TestPrefixCacheCutsRecompute(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 64, 4)
	p := aimeProblem(t, 2)
	base := solveOne(t, testConfig(t, pol, BaselineOptions()), p)
	fast := solveOne(t, testConfig(t, pol, FastTTSOptions()), p)
	if base.RecomputedTokens < 10*fast.RecomputedTokens {
		t.Errorf("baseline recompute %d not >> FastTTS %d",
			base.RecomputedTokens, fast.RecomputedTokens)
	}
}

// Verifier-side prefix-aware ordering: with a tight verifier cache,
// grouping siblings adjacently should cut verifier time versus random
// order, holding everything else fixed.
func TestVerifierOrderingEffect(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 128, 4)
	p := aimeProblem(t, 0)
	base := Options{
		GeneratorPrefixCache: true,
		VerifierPrefixCache:  true,
		StaticVerifierFrac:   0.1, // starve the verifier cache
	}
	ordered := base
	ordered.PrefixAware = true
	cfgRandom := testConfig(t, pol, base)
	cfgOrdered := testConfig(t, pol, ordered)
	r1 := solveOne(t, cfgRandom, p)
	r2 := solveOne(t, cfgOrdered, p)
	if r2.VerTime >= r1.VerTime {
		t.Errorf("prefix-aware verifier time %v not below random %v",
			r2.VerTime, r1.VerTime)
	}
}

// Per-path goodput decays as the search widens (more beams share the
// same hardware), in both systems — the denominator of every Fig 12
// panel.
func TestGoodputDecaysWithN(t *testing.T) {
	p := aimeProblem(t, 0)
	for _, opts := range []Options{BaselineOptions(), FastTTSOptions()} {
		prev := 1e18
		for _, n := range []int{8, 32, 128} {
			pol, _ := search.New(search.BeamSearch, n, 4)
			res := solveOne(t, testConfig(t, pol, opts), p)
			if res.Goodput >= prev {
				t.Errorf("goodput did not decay at n=%d: %v -> %v", n, prev, res.Goodput)
			}
			prev = res.Goodput
		}
	}
}

// MCTS runs end-to-end through the same runtime and preserves
// baseline/FastTTS equivalence.
func TestMCTSEndToEnd(t *testing.T) {
	pol, err := search.New(search.MCTS, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := aimeProblem(t, 3)
	base := solveOne(t, testConfig(t, pol, BaselineOptions()), p)
	// A fresh policy instance for the second run: MCTS keeps UCT state,
	// so sharing one instance across runs would leak statistics.
	pol2, _ := search.New(search.MCTS, 16, 4)
	cfg := testConfig(t, pol2, FastTTSOptions())
	fast := solveOne(t, cfg, p)
	if len(base.Finished) == 0 || len(base.Finished) != len(fast.Finished) {
		t.Fatalf("finished %d vs %d", len(base.Finished), len(fast.Finished))
	}
	for i := range base.Finished {
		if base.Finished[i].Answer != fast.Finished[i].Answer ||
			base.Finished[i].Tokens != fast.Finished[i].Tokens {
			t.Fatalf("MCTS equivalence broken at path %d", i)
		}
	}
}

// The serving loop is FCFS and deterministic.
func TestServerDeterministicFCFS(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	cfg := testConfig(t, pol, FastTTSOptions())
	mk := func() []ServedResult {
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := srv.Run([]Request{
			{Problem: aimeProblem(t, 0), Arrival: 10},
			{Problem: aimeProblem(t, 1), Arrival: 0},
			{Problem: aimeProblem(t, 2), Arrival: 5},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a := mk()
	b := mk()
	if len(a) != 3 {
		t.Fatalf("served %d", len(a))
	}
	// Sorted by arrival: problems 1, 2, 0.
	if a[0].Problem.Index != aimeProblem(t, 1).Index {
		t.Errorf("first served = problem %d, want the earliest arrival", a[0].Problem.Index)
	}
	for i := range a {
		if a[i].Finish != b[i].Finish || a[i].Result.Goodput != b[i].Result.Goodput {
			t.Errorf("server run not deterministic at %d", i)
		}
		if i > 0 && a[i].Start < a[i-1].Finish {
			t.Errorf("request %d started before predecessor finished", i)
		}
	}
}

// Speculation volume is bounded: the spec context guard and one-chain-
// per-beam policy keep speculative decode within a small multiple of
// useful work, even at large n.
func TestSpeculationBounded(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 256, 4)
	res := solveOne(t, testConfig(t, pol, FastTTSOptions()), aimeProblem(t, 1))
	if res.SpecTokens == 0 {
		t.Skip("no speculation at this scale (memory pressure)")
	}
	useful := res.TokensDecoded - res.SpecTokens
	if res.SpecTokens > useful {
		t.Errorf("speculative tokens %d exceed useful decode %d", res.SpecTokens, useful)
	}
	if res.SpecRetained*4 < res.SpecTokens {
		t.Errorf("retention %d/%d below 25%%: speculation poorly targeted",
			res.SpecRetained, res.SpecTokens)
	}
}

// The dynamic allocator adapts across iterations: under FastTTS the
// verifier batch (and cache) follow the growing request lengths without
// ever breaking the budget. Indirect check: runs complete across a range
// of overridden budgets without error and latency is monotone.
func TestDynamicAllocationAcrossBudgets(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 64, 4)
	p := aimeProblem(t, 0)
	prev := -1.0
	for _, budget := range []int64{1 << 30, 2 << 30, 6 << 30} {
		cfg := testConfig(t, pol, FastTTSOptions())
		cfg.KVBudgetOverride = budget
		res := solveOne(t, cfg, p)
		if prev > 0 && res.Latency > prev*1.02 {
			t.Errorf("budget %d: latency %v regressed vs smaller budget %v", budget, res.Latency, prev)
		}
		prev = res.Latency
	}
}
