package core

// Edge-case coverage for Loop.Cancel — the fleet layer's hedge-loser
// withdrawal primitive. Cancel's (started, ok) contract:
//
//	unknown / already-completed tag -> (false, false), a no-op;
//	queued, never admitted         -> (false, true);
//	admitted, executing            -> (true, true).
//
// And its conservation law: after cancelling everything outstanding, the
// loop's load indexes and the KV memory plane's decode state settle to
// exactly the state a naturally drained loop reaches.

import (
	"testing"

	"fasttts/internal/memplane"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// cancelLoop builds a single-slice (SingleCoT) loop over n MATH500
// requests arriving one per virtual second, tags 0..n-1.
func cancelLoop(t *testing.T, n int, kv memplane.Config) *Loop {
	t.Helper()
	cfg := cotConfig(t, 42)
	cfg.KVPlane = kv
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Problem: ds.Problems[i%len(ds.Problems)], Arrival: float64(i), Tag: i}
	}
	return srv.NewLoop(reqs)
}

func TestCancelUnknownTag(t *testing.T) {
	l := cancelLoop(t, 4, memplane.Config{})
	if started, ok := l.Cancel(999); started || ok {
		t.Fatalf("Cancel(unknown) = (%v, %v), want (false, false)", started, ok)
	}
	// A no-op: the full stream still drains.
	res, err := l.StepTo(NoHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 4 {
		t.Fatalf("drained %d results after no-op cancel, want 4", len(res))
	}
}

func TestCancelBeforeFirstAdmission(t *testing.T) {
	l := cancelLoop(t, 4, memplane.Config{})
	// The loop has not stepped: every request is queued, none admitted.
	if l.InFlight() != 0 || l.Queued() != 4 {
		t.Fatalf("fresh loop inFlight/queued = %d/%d, want 0/4", l.InFlight(), l.Queued())
	}
	before := l.OutstandingWork()
	started, ok := l.Cancel(2)
	if started || !ok {
		t.Fatalf("Cancel(queued) = (%v, %v), want (false, true)", started, ok)
	}
	if l.Queued() != 3 {
		t.Fatalf("queued after cancel = %d, want 3", l.Queued())
	}
	if after := l.OutstandingWork(); after >= before {
		t.Fatalf("OutstandingWork did not shrink: %v -> %v", before, after)
	}
	// The cancelled tag must not surface as a result.
	res, err := l.StepTo(NoHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("drained %d results, want 3", len(res))
	}
	for _, r := range res {
		if r.Tag == 2 {
			t.Fatal("cancelled tag 2 still produced a result")
		}
	}
}

// TestCancelAtFinalSliceInstant pins the completion/cancellation race:
// a cancel arriving at the exact virtual instant the request's final
// slice completed is too late — slices are atomic, the produced result
// stands, and Cancel reports the tag unknown.
func TestCancelAtFinalSliceInstant(t *testing.T) {
	l := cancelLoop(t, 2, memplane.Config{})
	// Step until the first completion and stop the clock exactly there.
	var first *ServedResult
	for first == nil {
		res, err := l.StepTo(l.Now() + 0.25)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if first == nil || res[i].Finish < first.Finish {
				first = &res[i]
			}
		}
		if l.Idle() && first == nil {
			t.Fatal("loop drained without completing anything")
		}
	}
	if first.Finish > l.Now() {
		t.Fatalf("completion at %v is past the loop clock %v", first.Finish, l.Now())
	}
	started, ok := l.Cancel(first.Tag)
	if started || ok {
		t.Fatalf("Cancel(completed tag %d at t=%v) = (%v, %v), want (false, false)",
			first.Tag, l.Now(), started, ok)
	}
	// The remaining request is unaffected.
	rest, err := l.StepTo(NoHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 || rest[0].Tag == first.Tag {
		t.Fatalf("remaining drain produced %d results (first tag %d)", len(rest), first.Tag)
	}
}

func TestCancelLiveSession(t *testing.T) {
	// Multi-slice requests (beam search under time-slicing), so a session
	// can be mid-execution — started but unfinished — at a step boundary.
	pol, err := search.New(search.BeamSearch, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(testConfig(t, pol, FastTTSOptions()))
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	reqs := make([]Request, 3)
	for i := range reqs {
		reqs[i] = Request{Problem: ds.Problems[i], Arrival: float64(i), Tag: i}
	}
	l := srv.NewLoop(reqs)
	var live *session
	for live == nil {
		if l.Idle() {
			t.Fatal("loop drained before exposing a started live session")
		}
		if _, err := l.StepTo(l.Now() + 1); err != nil {
			t.Fatal(err)
		}
		for _, c := range l.sessions {
			if !c.done && c.started {
				live = c
				break
			}
		}
	}
	started, ok := l.Cancel(live.req.Tag)
	if !started || !ok {
		t.Fatalf("Cancel(live started tag %d) = (%v, %v), want (true, true)", live.req.Tag, started, ok)
	}
	if started, ok := l.Cancel(live.req.Tag); started || ok {
		t.Fatalf("second Cancel = (%v, %v), want (false, false)", started, ok)
	}
}

// TestCancelAccountingSettles cancels every outstanding request mid-run
// (live and queued) and checks the books: load indexes at exactly zero,
// no stray results, and — with the KV memory plane enabled — decode
// state fully released, leaving the plane in the same prompt-only
// occupancy a naturally drained twin loop reaches.
func TestCancelAccountingSettles(t *testing.T) {
	kv := memplane.Config{CapacityBytes: 8 << 30} // ample: no eviction pressure
	n := 6

	l := cancelLoop(t, n, kv)
	if _, err := l.StepTo(2.5); err != nil {
		t.Fatal(err)
	}
	if l.InFlight() == 0 && l.Queued() == 0 {
		t.Fatal("mid-run loop should have outstanding requests")
	}
	for tag := 0; tag < n; tag++ {
		l.Cancel(tag) // completed tags report (false, false); that's fine
	}
	if l.InFlight() != 0 || l.Queued() != 0 || l.Pending() != 0 {
		t.Fatalf("after cancel-all: inFlight/queued/pending = %d/%d/%d, want 0/0/0",
			l.InFlight(), l.Queued(), l.Pending())
	}
	if w := l.OutstandingWork(); w != 0 {
		t.Fatalf("after cancel-all: OutstandingWork = %v, want exactly 0", w)
	}
	res, err := l.StepTo(NoHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("cancelled loop still produced %d results", len(res))
	}

	// Plane conservation: cancellation releases every session's decode
	// state immediately, so what remains resident is exactly the admitted
	// prompt prefixes (which stay cached by design — that is the cache's
	// job). Any surplus over the prompt-resident sum would be leaked
	// decode tokens.
	got := l.PlaneStats()
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	promptResident := int64(0)
	for i := 0; i < n; i++ {
		p := ds.Problems[i%len(ds.Problems)]
		promptResident += int64(l.Plane().ResidentPromptTokens(planeKey(p), p.PromptTokens))
	}
	if got.UsedTokens != promptResident {
		t.Fatalf("cancelled plane holds %d tokens but only %d prompt tokens are resident — decode state leaked",
			got.UsedTokens, promptResident)
	}
	if got.UsedTokens == 0 {
		t.Fatal("plane should retain resident prompt prefixes")
	}
	if got.EvictedTokens != 0 {
		t.Fatalf("unexpected eviction pressure (%d evicted tokens)", got.EvictedTokens)
	}
}
