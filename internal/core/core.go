// Package core implements the FastTTS runtime (paper §4, §5): the common
// two-stage generation/verification loop that all verifier-guided TTS
// methods share (§3.1), executed on the simulated serving substrate with
// the paper's three optimizations —
//
//   - Speculative Beam Extension (§4.1, Algorithm 1), including
//     score-binned speculative candidate selection (§4.1.1), the
//     two-phase preemptible scheduler (§4.1.2), and LookAhead
//     Verification (§4.1.3);
//   - Dynamic Prefix-Aware Scheduling (§4.2);
//   - Asymmetric Multi-Model Memory Allocation (§4.3), with offloading.
//
// Disabling every optimization yields the vLLM-style baseline the paper
// compares against (§6.1): random path ordering, a static 50/50 KV split,
// a verifier pipeline without prefix reuse, and no speculation.
package core

import (
	"fmt"

	"fasttts/internal/hw"
	"fasttts/internal/kvcache"
	"fasttts/internal/memplane"
	"fasttts/internal/metrics"
	"fasttts/internal/model"
	"fasttts/internal/obs"
	"fasttts/internal/search"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// Options toggles the FastTTS optimizations (the ablation axes of Fig 16).
type Options struct {
	// Speculative enables Speculative Beam Extension (S).
	Speculative bool
	// PrefixAware enables Dynamic Prefix-Aware Scheduling (P) for both
	// generator tries and verifier request order.
	PrefixAware bool
	// AsymmetricMemory enables the roofline-guided KV allocation (M);
	// otherwise the KV budget is split per StaticVerifierFrac.
	AsymmetricMemory bool
	// LookAhead enables LookAhead Verification (part of S in the paper's
	// ablation; exposed separately for finer studies).
	LookAhead bool
	// VerifierPrefixCache lets the verifier reuse KV across requests and
	// iterations. The baseline PRM pipeline recomputes every request.
	VerifierPrefixCache bool
	// GeneratorPrefixCache lets generator beams share and reuse KV via
	// the radix cache. The vLLM baseline (search-and-learn on vLLM
	// v0.9.2, automatic prefix caching off by default) submits each
	// beam's full path as a fresh prompt every iteration and re-prefills
	// it from scratch.
	GeneratorPrefixCache bool
	// TruncationRatio is R: the mean fraction of speculative tokens a
	// duplicate beam retains at branching (§4.1, Fig 17 right).
	TruncationRatio float64
	// SpecBins overrides the number of score bins B used by speculative
	// candidate selection; 0 means the policy's branch factor (§4.1.1).
	SpecBins int
	// AllowOffload enables the §4.3.2 extended search space.
	AllowOffload bool
	// StaticVerifierFrac is the baseline's fixed verifier share of the
	// KV budget (default 0.5).
	StaticVerifierFrac float64
}

// FastTTSOptions returns the full FastTTS configuration.
func FastTTSOptions() Options {
	return Options{
		Speculative:          true,
		PrefixAware:          true,
		AsymmetricMemory:     true,
		LookAhead:            true,
		VerifierPrefixCache:  true,
		GeneratorPrefixCache: true,
		TruncationRatio:      0.85,
	}
}

// BaselineOptions returns the vLLM-baseline configuration.
func BaselineOptions() Options {
	return Options{StaticVerifierFrac: 0.5}
}

// Config assembles one serving deployment: hardware, the generator /
// verifier pair, memory policy, and the search algorithm.
type Config struct {
	GPU       hw.GPU
	Generator model.Config
	GenSkill  workload.GeneratorSkill
	Verifier  model.Config
	VerSkill  workload.VerifierSkill
	// MemoryFraction is the share of VRAM the deployment may use
	// (0.9 for the throughput configs, 0.4 for the memory-constrained
	// 1.5B+1.5B config, §6.1).
	MemoryFraction float64
	// ReservedBytes models CUDA graphs and activation workspace (Fig 9).
	ReservedBytes int64
	// KVBudgetOverride, when positive, fixes the KV budget directly
	// (used by the Fig 18-right memory sweep).
	KVBudgetOverride int64
	// KVPlane configures the per-device KV-cache memory plane: a finite
	// prefix cache charged for prompt prefixes and live decode state,
	// with LRU eviction and roofline re-prefill penalties on prompt
	// misses. The zero value (capacity 0) disables the plane — behavior
	// is then bit-identical to builds without it.
	KVPlane memplane.Config
	Policy  search.Policy
	// Strategy is the test-time-compute strategy the solver honors
	// (first-finish early termination, deadline cuts). nil runs the full
	// beam — the legacy semantics, bit-identical to pre-strategy builds.
	Strategy search.Strategy
	Opts     Options
	Recorder *trace.Recorder
	// Obs, when non-nil, attaches the request-lifecycle span flight
	// recorder: the loop emits admission, queue, slice, and completion
	// spans onto the recorder's device-0 track. nil (the default) is
	// strictly off — every emission site short-circuits on a nil track,
	// adding zero allocations and zero behavioral difference. Tracing
	// observes scheduling; it never perturbs it.
	Obs  *obs.Recorder
	Seed uint64
}

// KVBudget returns the KV memory available after weights and reservation.
func (c Config) KVBudget() (int64, error) {
	if c.KVBudgetOverride > 0 {
		return c.KVBudgetOverride, nil
	}
	frac := c.MemoryFraction
	if frac <= 0 {
		frac = 0.9
	}
	reserved := c.ReservedBytes
	if reserved == 0 {
		reserved = 768 << 20
	}
	budget := int64(float64(c.GPU.VRAMBytes)*frac) -
		c.Generator.WeightBytes() - c.Verifier.WeightBytes() - reserved
	if budget <= 0 {
		return 0, fmt.Errorf("core: no KV memory left on %s: %.1f GiB usable, %.1f GiB weights",
			c.GPU.Name,
			float64(c.GPU.VRAMBytes)*frac/(1<<30),
			float64(c.Generator.WeightBytes()+c.Verifier.WeightBytes())/(1<<30))
	}
	return budget, nil
}

// FinalPath is one collected reasoning path.
type FinalPath struct {
	BeamID      int
	Steps       int
	Tokens      int // generated tokens, prompt excluded
	Answer      int // 0 = correct
	Score       float64
	CompletedAt float64
}

// Result reports one solved problem.
type Result struct {
	Problem  *workload.Problem
	Finished []FinalPath

	// Latency is end-to-end virtual seconds.
	Latency float64
	// GenTime / VerTime split the latency between the generator and
	// verifier engines (Fig 13's breakdown); TransferTime is offload
	// PCIe time.
	GenTime, VerTime, TransferTime float64
	// Goodput is the §6.1 Precise Goodput in tokens/s.
	Goodput float64

	Iterations int
	// Abandoned counts active beams the strategy discarded at early
	// termination (first-finish satisfaction or a deadline cut); 0 under
	// full-beam.
	Abandoned int
	// TokensDecoded counts all generator decode work, including
	// speculative tokens; SpecTokens of those were speculative and
	// SpecRetained were adopted by surviving beams.
	TokensDecoded int64
	SpecTokens    int64
	SpecRetained  int64
	// RecomputedTokens counts evicted-prefix re-prefills on the
	// generator (the cost Dynamic Prefix-Aware Scheduling minimizes).
	RecomputedTokens int64

	GenCache, VerCache kvcache.Stats
}

// PathResults adapts the finished paths for package metrics.
func (r *Result) PathResults() []metrics.PathResult {
	out := make([]metrics.PathResult, len(r.Finished))
	for i, p := range r.Finished {
		out[i] = metrics.PathResult{
			Tokens:      p.Tokens,
			CompletedAt: p.CompletedAt,
			Answer:      p.Answer,
			Score:       p.Score,
		}
	}
	return out
}

// validate fills defaults and sanity-checks the configuration.
func (c *Config) validate() error {
	if c.Policy == nil {
		return fmt.Errorf("core: nil search policy")
	}
	if c.GPU.Name == "" {
		return fmt.Errorf("core: missing GPU")
	}
	if c.GPU.VRAMBytes < 0 {
		return fmt.Errorf("core: GPU %s has negative VRAM %d bytes", c.GPU.Name, c.GPU.VRAMBytes)
	}
	if err := c.KVPlane.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.GenSkill.Name == "" {
		c.GenSkill = workload.SkillQwen1_5B
	}
	if c.VerSkill.Name == "" {
		c.VerSkill = workload.SkillSkywork1_5B
	}
	if c.Opts.TruncationRatio < 0 || c.Opts.TruncationRatio > 1 {
		return fmt.Errorf("core: truncation ratio %v outside [0,1]", c.Opts.TruncationRatio)
	}
	if c.Opts.StaticVerifierFrac <= 0 || c.Opts.StaticVerifierFrac >= 1 {
		c.Opts.StaticVerifierFrac = 0.5
	}
	if _, err := c.KVBudget(); err != nil {
		return err
	}
	return nil
}
