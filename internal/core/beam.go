package core

import (
	"fasttts/internal/kvcache"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/workload"
)

// Token materialization: every reasoning-tree node (prompt, thinking step,
// speculative branch) gets a unique node ID, and token j of node k has the
// value k<<tokenShift | j. Children copy their parent's token values, so
// equal genealogy prefixes are bit-equal token sequences and the radix
// caches share them physically.
const tokenShift = 12 // up to 4096 tokens per node, 2^20 nodes per solve

func nodeTokens(node, count int) []kvcache.Token {
	out := make([]kvcache.Token, count)
	base := kvcache.Token(node) << tokenShift
	for j := range out {
		out[j] = base | kvcache.Token(j)
	}
	return out
}

// specBranch is one speculative continuation generated for a finished
// beam during the current iteration (§4.1.1).
type specBranch struct {
	node   int
	count  int // tokens decoded so far
	cap    int // token budget: the pre-sampled next step's length
	ctxLen int // context length when the branch started (for ctx sums)
}

// beam is one active reasoning path.
type beam struct {
	id      int
	subtree int
	state   workload.PathState

	// tokens is the committed sequence: prompt + all thinking steps,
	// including the step being generated this iteration (token values
	// are known upfront; decode rounds only account for the time).
	tokens  []kvcache.Token
	lineage []sched.NodeRef

	// pending are speculative tokens retained from previous iterations
	// that have not been committed into a step yet (the beam's "head
	// start"); pendingLin tracks their node structure.
	pending    []kvcache.Token
	pendingLin []sched.NodeRef

	// Per-iteration working state.
	stepTokens   int  // sampled step length
	stepTerminal bool // step concludes the path
	rem          int  // decode rounds still needed this iteration
	specs        []specBranch
	specEligible int // M_i: remaining speculative branches allowed

	// nextSteps is the queue of pre-sampled upcoming thinking steps
	// (drawn as speculation advances, §4.1.3); commitStep consumes them
	// in order. Pre-sampling preserves algorithmic equivalence because
	// each stream serves a single purpose, so per-stream draw order is
	// identical with and without speculation.
	nextSteps []workload.Step

	score    float64 // latest verifier score
	hasScore bool
	// verifiedLen is the PRM high-water mark: committed+speculative
	// tokens already run through the verifier (LookAhead Verification
	// lets fully covered beams skip engine work next iteration, §4.1.3).
	verifiedLen int
	// coVerified is how many uncommitted tokens the last LookAhead pass
	// covered (diagnostics).
	coVerified int
	seq        *kvcache.Seq // generator-cache handle while resident
	r          *rng.Stream  // step-sampling stream
	obsR       *rng.Stream  // verifier-score and answer stream
	specR      *rng.Stream  // speculation-only stream (truncation draws)
	answer     int
}

// schedPath adapts the beam for the prefix-aware scheduler.
func (b *beam) schedPath() sched.Path {
	return sched.Path{ID: b.id, Lineage: b.lineage}
}

// takePending consumes up to n pending tokens into the committed
// sequence, returning how many were consumed.
func (b *beam) takePending(n int) int {
	if n > len(b.pending) {
		n = len(b.pending)
	}
	if n == 0 {
		return 0
	}
	b.tokens = append(b.tokens, b.pending[:n]...)
	b.pending = b.pending[n:]
	// Move lineage refs across, splitting the last node if needed.
	remaining := n
	for remaining > 0 {
		ref := b.pendingLin[0]
		if ref.Tokens <= remaining {
			b.lineage = append(b.lineage, ref)
			remaining -= ref.Tokens
			b.pendingLin = b.pendingLin[1:]
		} else {
			b.lineage = append(b.lineage, sched.NodeRef{Node: ref.Node, Tokens: remaining})
			b.pendingLin[0] = sched.NodeRef{Node: ref.Node, Tokens: ref.Tokens - remaining}
			remaining = 0
		}
	}
	return n
}

// child clones the beam into a new successor sharing the committed
// sequence (branching). The caller sets pending/streams afterwards.
func (b *beam) child(id int, r, obsR, specR *rng.Stream) *beam {
	return &beam{
		id:       id,
		subtree:  b.subtree,
		state:    b.state,
		tokens:   append([]kvcache.Token(nil), b.tokens...),
		lineage:  append([]sched.NodeRef(nil), b.lineage...),
		score:    b.score,
		hasScore: b.hasScore,
		r:        r,
		obsR:     obsR,
		specR:    specR,
	}
}

// specChain returns all currently known speculative tokens for the
// beam: leftover pending plus the primary (first) spec branch, in decode
// order. Used by LookAhead Verification and by branching.
func (b *beam) specChain(materialize func(specBranch) []kvcache.Token) ([]kvcache.Token, []sched.NodeRef) {
	tokens := append([]kvcache.Token(nil), b.pending...)
	lin := append([]sched.NodeRef(nil), b.pendingLin...)
	if len(b.specs) > 0 && b.specs[0].count > 0 {
		tokens = append(tokens, materialize(b.specs[0])...)
		lin = append(lin, sched.NodeRef{Node: b.specs[0].node, Tokens: b.specs[0].count})
	}
	return tokens, lin
}
