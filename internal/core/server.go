package core

import (
	"fmt"
	"sort"

	"fasttts/internal/memplane"
	"fasttts/internal/metrics"
	"fasttts/internal/obs"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// Request is one queued TTS query for the serving engine.
type Request struct {
	Problem *workload.Problem
	// Arrival is the request's arrival time on the server clock.
	Arrival float64
	// Priority orders requests under the priority policy; larger first.
	Priority int
	// Deadline is the absolute SLO deadline on the server clock used by
	// the deadline policy; 0 means none.
	Deadline float64
	// Tag is an opaque client correlation tag carried through unchanged to
	// the ServedResult. The cluster layer uses it to track a request's
	// identity across failure-induced requeues.
	Tag int
	// Width, when positive and below the server policy's configured
	// width, narrows this request's effective search budget to Width
	// parallel paths (clamped up to the algorithm's constructible
	// minimum). Zero means the full configured budget. The elastic
	// control plane's compute-budget governor sets it per request under
	// load; both the admission-time demand estimate
	// (sched.EstimateDemand) and the solver the request runs on honor it.
	Width int
	// Strategy, when non-nil, overrides the deployment's configured
	// test-time-compute strategy for this request. The elastic control
	// plane's budget governor sets it per request under load (the third
	// vertical knob beside Width); nil inherits Config.Strategy.
	Strategy search.Strategy
}

// ServedResult augments a solve result with queueing telemetry. Result is
// nil (and only then) for requests shed by admission control.
type ServedResult struct {
	*Result
	// Arrival, Start, and Finish are on the server clock. The embedded
	// Result's Latency is the request's device (service) time; under
	// time-slicing Finish − Start additionally includes slices spent on
	// other tenants.
	Arrival, Start, Finish float64
	// QueueDelay = Start − Arrival.
	QueueDelay float64
	// WallLatency = Finish − Arrival: what the client experiences.
	WallLatency float64
	// Slices counts the device slices the request ran in.
	Slices int
	// UsefulTokens is the request's useful generated output: all decoded
	// tokens minus speculative ones, plus the speculative tokens that
	// surviving beams adopted. Server-level goodput sums this.
	UsefulTokens int64
	// Width is the effective search width the request was served at
	// (the configured policy width unless the request carried a narrower
	// budget override); 0 for rejected requests.
	Width int
	// Rejected marks requests shed by admission control.
	Rejected bool
	// Tag echoes the request's correlation tag.
	Tag int
}

// Server is the multi-tenant serving engine. It generalizes the paper's
// §4.1.2 two-phase preemptible scheduler to many in-flight requests: an
// event-driven virtual clock time-slices the device between admitted
// requests at search-iteration granularity, a pluggable sched.ServePolicy
// decides admission and which request owns each slice, and speculative
// execution (Phase 2) runs only while no other request is waiting — the
// moment one is, speculation is preempted, exactly as in the paper. With
// the FCFS policy the engine degenerates to run-to-completion in arrival
// order and reproduces the sequential scheduler bit-identically.
type Server struct {
	cfg Config
	pol sched.ServePolicy
}

// session tracks one admitted request through its slices.
type session struct {
	req     Request
	id      int // position in the submitted stream
	solver  *solver
	started bool
	start   float64
	work    float64 // device seconds consumed
	est     float64 // estimated total service demand, token units
	lastRem float64 // remaining-work estimate as of the last slice (load index term)
	slices  int
	width   int // effective search width, resolved at service start
	done    bool

	// mem is the request's footprint on the device's KV memory plane
	// (nil when the plane is disabled); penalty is the admission-time
	// re-prefill charge, paid into the session's first slice.
	mem     *memplane.Session
	penalty float64
}

// NewServer returns an FCFS server executing requests under the given
// deployment configuration (the seed-equivalent special case).
func NewServer(cfg Config) (*Server, error) {
	return NewServerWithPolicy(cfg, sched.FCFS{})
}

// NewServerWithPolicy returns a server using the given admission/ordering
// policy. A nil policy means FCFS.
func NewServerWithPolicy(cfg Config, pol sched.ServePolicy) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		pol = sched.FCFS{}
	}
	return &Server{cfg: cfg, pol: pol}, nil
}

// Policy returns the server's admission/ordering policy.
func (s *Server) Policy() sched.ServePolicy { return s.pol }

// Run serves an open-loop request stream and returns per-request results
// in completion order (rejected requests appear at their rejection time).
func (s *Server) Run(reqs []Request) ([]ServedResult, error) {
	return s.NewLoop(reqs).StepTo(NoHorizon)
}

// RunClosedLoop serves the problems under a fixed-concurrency closed
// loop: cl.Concurrency clients each keep one request outstanding and
// issue their next request cl.Think seconds after the previous finishes.
func (s *Server) RunClosedLoop(probs []*workload.Problem, cl workload.ClosedLoop) ([]ServedResult, error) {
	conc := cl.Concurrency
	if conc < 1 {
		conc = 1
	}
	n := min(conc, len(probs))
	queue := make([]Request, n)
	for i := 0; i < n; i++ {
		queue[i] = Request{Problem: probs[i], Tag: i}
	}
	next := n
	feeder := func(finish float64) (Request, bool) {
		if next >= len(probs) {
			return Request{}, false
		}
		rq := Request{Problem: probs[next], Arrival: finish + cl.Think, Tag: next}
		next++
		return rq, true
	}
	l := &Loop{s: s, queue: queue, feeder: feeder, scale: 1, plane: s.newPlane(), obs: s.cfg.Obs.Device(0)}
	for _, rq := range queue {
		l.queuedWork += s.estimateWork(rq)
	}
	return l.StepTo(NoHorizon)
}

// NoHorizon makes Loop.StepTo run until the loop is out of work.
const NoHorizon = -1.0

// Loop is one steppable instance of the serving event loop: the device's
// virtual clock, its arrival queue, and its in-flight sessions. Server's
// Run and RunClosedLoop drive a Loop to completion in one call; the
// cluster fleet simulator drives N loops event-by-event with bounded
// horizons, pushing arrivals as its routers assign them and withdrawing
// work on fail-stop.
//
// Concurrency contract: a Loop is goroutine-confined — all calls on one
// Loop must come from a single goroutine (or be externally ordered), but
// distinct Loops share no mutable state even when built from one Server
// (the Server is read-only after construction; each Loop owns its clock,
// queue, sessions, solver, and rng streams), so any number of Loops may
// be stepped concurrently. The sharded fleet engine relies on exactly
// this: each shard worker steps only the Loops of the devices it owns.
//
// Determinism contract: StepTo is horizon-sensitive. The horizon is not
// just a stopping time — it feeds the speculation-preemption probe as a
// pending boundary, so StepTo(t1) followed by StepTo(t2) may slice work
// differently than StepTo(t2) alone. Drivers that must reproduce each
// other bit-for-bit (the sequential and sharded fleet engines) must
// therefore present each Loop with the identical sequence of horizons,
// not just the same final time.
type Loop struct {
	s        *Server
	queue    []Request
	feeder   func(finish float64) (Request, bool)
	sessions []*session // live (admitted, unfinished) sessions in admission order
	now      float64
	next     int // next queue index to admit
	inFlight int
	nextID   int
	scale    float64 // wall seconds per nominal device second (straggler factor)
	busy     float64 // wall seconds spent executing slices (lost work included)
	failed   bool

	// plane is the device's KV memory plane; nil when the configured
	// capacity is zero, in which case the loop's behavior is bit-identical
	// to builds without the plane.
	plane *memplane.Plane

	// Incrementally maintained load indexes: liveWork is the summed
	// remaining-work estimate of the live sessions, queuedWork the summed
	// demand estimate of the unadmitted arrivals. Updated on push, admit,
	// slice, finish, and fail, so OutstandingWork is O(1) instead of an
	// O(in-flight + queued) scan per call.
	liveWork   float64
	queuedWork float64

	// probe is the per-slice speculation-preemption state read by probeFn,
	// a single closure reused across slices so the hot path allocates
	// nothing per slice.
	probe   preemptProbe
	probeFn func(local float64) bool

	candBuf []sched.ServeRequest // reused policy-view buffer (per-slice)

	// obs is the loop's span flight-recorder track; nil (the default)
	// disables every emission site at the cost of one pointer check.
	obs *obs.Track
}

// preemptProbe is the §4.1.2 preemption condition of the slice in
// progress: speculation stops when another request is runnable or when
// the pending boundary (next arrival or fleet event horizon) lands
// mid-slice.
type preemptProbe struct {
	othersWaiting bool
	pending       float64 // earliest pending boundary; < 0 means none
	sliceStart    float64 // loop clock at slice start
	localStart    float64 // solver clock at slice start
	scale         float64 // straggler factor of the slice
	hit           bool    // probe fired during the slice (observability only)
}

// NewLoop returns a steppable loop over the given open-loop requests
// (sorted by arrival internally). More arrivals may be added with Push.
func (s *Server) NewLoop(reqs []Request) *Loop {
	queue := append([]Request(nil), reqs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })
	l := &Loop{s: s, queue: queue, scale: 1, plane: s.newPlane(), obs: s.cfg.Obs.Device(0)}
	for _, rq := range queue {
		l.queuedWork += s.estimateWork(rq)
	}
	return l
}

// newPlane instantiates the deployment's KV memory plane, or nil when the
// configured capacity is zero (the plane is off by default).
func (s *Server) newPlane() *memplane.Plane {
	if !s.cfg.KVPlane.Enabled() {
		return nil
	}
	return memplane.New(s.cfg.KVPlane, s.cfg.GPU, s.cfg.Generator)
}

// Plane returns the loop's KV memory plane; nil when disabled. The fleet
// layer attaches it to the device's routing view so cache-aware routers
// can probe prefix residency at event barriers.
func (l *Loop) Plane() *memplane.Plane { return l.plane }

// PlaneStats returns the memory plane's cumulative telemetry; the zero
// value when the plane is disabled.
func (l *Loop) PlaneStats() memplane.Stats {
	if l.plane == nil {
		return memplane.Stats{}
	}
	return l.plane.Stats()
}

// planeKey is the prompt-prefix identity the memory plane caches under —
// the same dataset/index key the fleet's prefix-affinity directory uses.
func planeKey(p *workload.Problem) string {
	return fmt.Sprintf("%s/%d", p.Dataset, p.Index)
}

// SetObs attaches a span flight-recorder track to the loop; the fleet
// layer assigns each device its own track on the shared recorder. A nil
// track (the default) disables every emission site. Call before the
// first StepTo.
func (l *Loop) SetObs(t *obs.Track) { l.obs = t }

// SetScale sets the loop's straggler factor: every device slice consumes
// scale× its nominal duration of wall-clock time (thermal throttling,
// background load). Factors below 1 are clamped to 1. Call before the
// first StepTo; the embedded Result.Latency remains nominal service time.
func (l *Loop) SetScale(f float64) {
	if f < 1 {
		f = 1
	}
	l.scale = f
}

// Push inserts one future arrival into the loop's queue. An arrival not
// later than the loop's clock is admitted on the next StepTo.
func (l *Loop) Push(rq Request) {
	l.queue = insertByArrival(l.queue, l.next, rq)
	l.queuedWork += l.s.estimateWork(rq)
	l.reanchorWork()
}

// Now returns the loop's virtual clock. It advances only while slices
// execute or the clock jumps to a queued arrival.
func (l *Loop) Now() float64 { return l.now }

// Busy returns the wall-clock time the device has spent executing slices,
// including work later lost to fail-stop.
func (l *Loop) Busy() float64 { return l.busy }

// InFlight returns the number of admitted, unfinished requests.
func (l *Loop) InFlight() int { return l.inFlight }

// Queued returns the number of queued, not-yet-admitted arrivals.
func (l *Loop) Queued() int { return len(l.queue) - l.next }

// Pending returns the device's total outstanding population: admitted
// unfinished requests plus queued arrivals (join-shortest-queue's load
// signal).
func (l *Loop) Pending() int { return l.inFlight + l.Queued() }

// OutstandingWork returns the estimated remaining service demand of the
// device in token units: the remaining-work estimates of in-flight
// sessions plus the full demand estimate of every queued arrival — the
// least-outstanding-work router's load signal. It reads the loop's
// incrementally maintained load indexes, so it is O(1) — no per-call
// scan of sessions or queue.
func (l *Loop) OutstandingWork() float64 {
	w := l.liveWork + l.queuedWork
	if w < 0 {
		return 0 // guard against accumulated float cancellation near empty
	}
	return w
}

// reanchorWork pins the load indexes back to exact values at the cheap
// anchor states (zero or one term), shedding the float drift that
// incremental add/remove accumulates. Called after every index update.
func (l *Loop) reanchorWork() {
	switch {
	case l.inFlight == 0:
		l.liveWork = 0
	case l.inFlight == 1 && len(l.sessions) == 1:
		l.liveWork = l.sessions[0].lastRem
	}
	switch qn := len(l.queue) - l.next; {
	case qn == 0:
		l.queuedWork = 0
	case qn == 1:
		l.queuedWork = l.s.estimateWork(l.queue[l.next])
	}
}

// Failed reports whether Fail has been called.
func (l *Loop) Failed() bool { return l.failed }

// Idle reports whether the loop has no runnable session and no queued
// arrival: StepTo would return immediately.
func (l *Loop) Idle() bool {
	return l.failed || (l.inFlight == 0 && l.next >= len(l.queue))
}

// Fail marks the device fail-stopped and withdraws every unfinished
// request: admitted in-flight sessions (their partial work is lost) in
// admission order, then queued arrivals in arrival order. The caller
// requeues them elsewhere; the loop executes nothing afterwards. Failure
// takes effect at slice granularity — a slice in progress when the fleet
// declared the failure has already completed (results produced by earlier
// StepTo calls stand).
func (l *Loop) Fail() []Request {
	l.failed = true
	var out []Request
	for _, c := range l.sessions {
		if !c.done {
			c.done = true
			l.inFlight--
			out = append(out, c.req)
			if c.mem != nil {
				l.plane.Finish(c.mem)
			}
			if l.obs != nil {
				l.obs.Emit(obs.Span{Kind: obs.KindWithdraw, Tag: c.req.Tag, Start: l.now, End: l.now, Flag: c.started})
			}
		}
	}
	if l.obs != nil {
		for _, rq := range l.queue[l.next:] {
			l.obs.Emit(obs.Span{Kind: obs.KindWithdraw, Tag: rq.Tag, Start: l.now, End: l.now})
		}
	}
	out = append(out, l.queue[l.next:]...)
	l.queue = l.queue[:l.next]
	l.liveWork, l.queuedWork = 0, 0
	if l.obs != nil {
		l.obs.Emit(obs.Span{Kind: obs.KindFailStop, Start: l.now, End: l.now, N: len(out)})
	}
	return out
}

// Cancel deterministically withdraws the request with the given tag
// mid-flight, releasing everything it holds: a queued arrival leaves the
// queue and its demand leaves the queued-work load index; a live session
// is dropped like a completion that produces no result — its load-index
// contribution is released, its memory-plane decode state is finished
// (the prompt prefix stays resident), and its partial device work stays
// in Busy as lost work, exactly like fail-stop. The fleet layer uses it
// to cancel the losing copy of a hedged request. It returns whether the
// request had started executing and whether it was found at all; a tag
// that already completed (or was never routed here) is a no-op.
func (l *Loop) Cancel(tag int) (started, ok bool) {
	if l.failed {
		return false, false
	}
	for i := l.next; i < len(l.queue); i++ {
		if l.queue[i].Tag == tag {
			l.queuedWork -= l.s.estimateWork(l.queue[i])
			l.queue = append(l.queue[:i], l.queue[i+1:]...)
			l.reanchorWork()
			if l.obs != nil {
				l.obs.Emit(obs.Span{Kind: obs.KindCancel, Tag: tag, Start: l.now, End: l.now})
			}
			return false, true
		}
	}
	for _, c := range l.sessions {
		if c.req.Tag == tag && !c.done {
			c.done = true
			l.inFlight--
			l.dropSession(c)
			l.liveWork -= c.lastRem
			l.reanchorWork()
			if c.mem != nil {
				l.plane.Finish(c.mem)
			}
			if l.obs != nil {
				l.obs.Emit(obs.Span{Kind: obs.KindCancel, Tag: tag, Start: l.now, End: l.now, Flag: c.started})
			}
			return c.started, true
		}
	}
	return false, false
}

// Wake returns the earliest horizon at which StepTo would make progress
// (execute a slice, admit an arrival, or jump the clock to one), and
// false when the loop is drained or failed — the fleet event heap's
// per-device key.
func (l *Loop) Wake() (float64, bool) {
	if l.failed {
		return 0, false
	}
	hasArrival := l.next < len(l.queue)
	if l.inFlight > 0 {
		if hasArrival && l.queue[l.next].Arrival < l.now {
			return l.queue[l.next].Arrival, true
		}
		return l.now, true
	}
	if hasArrival {
		return l.queue[l.next].Arrival, true
	}
	return 0, false
}

// StepTo advances the loop until its clock reaches the horizon or it runs
// out of work, returning the results produced (completions in completion
// order, rejections at admission time). Horizon NoHorizon (or any
// negative value) means run to completion. Slices are atomic: the slice
// in progress when the clock crosses the horizon finishes, so the clock
// may end slightly past it. The horizon also acts as a pending-arrival
// bound for §4.1.2 speculation preemption: the fleet simulator steps
// device loops to the next global event, and a slice about to cross that
// event boundary stops speculating — exactly as a single device stops
// speculating as its next arrival lands mid-slice.
func (l *Loop) StepTo(horizon float64) ([]ServedResult, error) {
	var out []ServedResult
	feed := func(at float64) {
		if l.feeder == nil {
			return
		}
		if rq, ok := l.feeder(at); ok {
			l.queue = insertByArrival(l.queue, l.next, rq)
			l.queuedWork += l.s.estimateWork(rq)
			l.reanchorWork()
		}
	}
	if l.probeFn == nil {
		l.probeFn = func(local float64) bool {
			p := &l.probe
			if p.othersWaiting {
				p.hit = true
				return true
			}
			if p.pending >= 0 && p.sliceStart+(local-p.localStart)*p.scale >= p.pending {
				p.hit = true
				return true
			}
			return false
		}
	}
	for !l.failed {
		// Admit everything that has arrived by now.
		for l.next < len(l.queue) && l.queue[l.next].Arrival <= l.now {
			rq := l.queue[l.next]
			l.next++
			est := l.s.estimateWork(rq)
			l.queuedWork -= est
			c := &session{req: rq, id: l.nextID, est: est}
			l.nextID++
			if !l.s.pol.Admit(l.s.viewOf(c), l.now, l.inFlight) {
				l.reanchorWork()
				out = append(out, ServedResult{
					Arrival: rq.Arrival, Start: rq.Arrival, Finish: rq.Arrival,
					Rejected: true, Tag: rq.Tag,
				})
				if l.obs != nil {
					l.obs.Emit(obs.Span{Kind: obs.KindReject, Tag: rq.Tag, Start: rq.Arrival, End: rq.Arrival})
				}
				feed(rq.Arrival)
				continue
			}
			l.sessions = append(l.sessions, c)
			l.inFlight++
			c.lastRem = l.s.remainingWork(c)
			l.liveWork += c.lastRem
			l.reanchorWork()
			if l.plane != nil {
				// Charge the prompt prefix against the memory plane; the
				// re-prefill penalty for non-resident tokens lands in the
				// session's first slice.
				c.mem, c.penalty = l.plane.Admit(planeKey(rq.Problem), rq.Problem.PromptTokens)
			}
			if l.obs != nil {
				l.obs.Emit(obs.Span{Kind: obs.KindAdmit, Tag: rq.Tag, Start: rq.Arrival, End: l.now, V1: c.penalty, V2: est})
			}
		}
		// Every session is live (completed ones are dropped eagerly), so
		// the session list itself is the runnable set — no per-slice copy.
		live := l.sessions
		if len(live) == 0 {
			if l.next < len(l.queue) {
				na := l.queue[l.next].Arrival
				if horizon >= 0 && na > horizon {
					return out, nil // next work lies beyond the horizon
				}
				// Device idle: jump the virtual clock to the next arrival.
				l.now = na
				continue
			}
			return out, nil
		}
		if horizon >= 0 && l.now >= horizon {
			return out, nil
		}

		// Policy picks the slice owner among the runnable requests. The
		// candidate views live in a buffer reused across slices.
		if cap(l.candBuf) < len(live) {
			l.candBuf = make([]sched.ServeRequest, 0, max(len(live), 2*cap(l.candBuf)))
		}
		cands := l.candBuf[:len(live)]
		for i, c := range live {
			cands[i] = l.s.viewOf(c)
		}
		pick := l.s.pol.Pick(cands, l.now)
		if pick < 0 || pick >= len(live) {
			return out, fmt.Errorf("core: policy %s picked index %d of %d runnable requests",
				l.s.pol.Name(), pick, len(live))
		}
		c := live[pick]
		if !c.started {
			cfg := l.s.cfg
			cfg.Strategy = l.s.effectiveStrategy(c.req)
			w := l.s.effectiveWidth(c.req)
			c.width = w
			if w != cfg.Policy.Width() {
				// Budget-degraded request: run the same algorithm at the
				// narrowed width (the §4.1 search semantics are unchanged,
				// only n shrinks).
				pol, err := search.WithWidth(cfg.Policy, w)
				if err != nil {
					return out, fmt.Errorf("core: narrowing %s to width %d: %w", cfg.Policy.Name(), w, err)
				}
				cfg.Policy = pol
			}
			sv, err := newSolver(cfg, c.req.Problem, nil)
			if err != nil {
				return out, fmt.Errorf("core: serving %s/%d: %w", c.req.Problem.Dataset, c.req.Problem.Index, err)
			}
			c.solver = sv
			c.started = true
			c.start = l.now
			if l.obs != nil {
				l.obs.Emit(obs.Span{Kind: obs.KindQueue, Tag: c.req.Tag, Start: c.req.Arrival, End: l.now})
			}
		}

		// Phase 2 precondition (§4.1.2): speculation only while the waiting
		// queue is empty. In multi-tenant terms the queue is non-empty when
		// another request is runnable, or when the next unadmitted arrival
		// (or the fleet's next event boundary) lands mid-slice.
		pending := -1.0
		if l.next < len(l.queue) {
			pending = l.queue[l.next].Arrival
		}
		if horizon >= 0 && (pending < 0 || horizon < pending) {
			pending = horizon
		}
		l.probe = preemptProbe{
			othersWaiting: len(live) > 1,
			pending:       pending,
			sliceStart:    l.now,
			localStart:    c.solver.clk.Now(),
			scale:         l.scale,
		}
		c.solver.preempt = l.probeFn
		if !c.solver.begun {
			c.solver.begin() // prompt prefill charges into the first slice
		}

		if err := c.solver.stepOnce(); err != nil {
			return out, fmt.Errorf("core: serving %s/%d: %w", c.req.Problem.Dataset, c.req.Problem.Index, err)
		}
		sliceStart := l.now
		nom := c.solver.clk.Now() - l.probe.localStart
		paid := 0.0
		delta := nom * l.scale
		if c.penalty > 0 {
			// First slice: pay the admission-time re-prefill charge for the
			// prompt tokens that were not resident on the memory plane.
			paid = c.penalty
			delta += c.penalty * l.scale
			c.penalty = 0
		}
		l.now += delta
		l.busy += delta
		c.work += delta
		c.slices++
		if c.mem != nil {
			// Reconcile the session's resident footprint with the solver's
			// live KV usage beyond the prompt — per-beam decode state that
			// widens and narrows as the search proceeds.
			l.plane.SyncDecode(c.mem, int(c.solver.gen.Cache.UsedTokens())-c.req.Problem.PromptTokens)
		}
		if l.obs != nil {
			l.obs.Emit(obs.Span{Kind: obs.KindSlice, Tag: c.req.Tag, Start: sliceStart, End: l.now,
				V1: nom, V2: paid, N: c.width, Flag: l.probe.hit})
		}

		// Deadline strategy: a request whose deadline passed mid-solve is
		// finalized early with the best path found so far. The cut lands at
		// slice granularity — the slice that crossed the deadline completes
		// first, mirroring how fail-stop and preemption are observed.
		if !c.solver.done() && c.req.Deadline > 0 && l.now >= c.req.Deadline {
			if st := l.s.effectiveStrategy(c.req); st != nil && st.CutAtDeadline() {
				c.solver.cutDeadline()
			}
		}

		if c.solver.done() {
			res, err := c.solver.result()
			if err != nil {
				return out, fmt.Errorf("core: serving %s/%d: %w", c.req.Problem.Dataset, c.req.Problem.Index, err)
			}
			c.done = true
			l.inFlight--
			l.dropSession(c)
			l.liveWork -= c.lastRem
			l.reanchorWork()
			if c.mem != nil {
				// Decode state is garbage now; the prompt prefix stays
				// resident for future admissions to hit.
				l.plane.Finish(c.mem)
			}
			out = append(out, ServedResult{
				Result:  res,
				Arrival: c.req.Arrival, Start: c.start, Finish: l.now,
				QueueDelay:   c.start - c.req.Arrival,
				WallLatency:  l.now - c.req.Arrival,
				Slices:       c.slices,
				UsefulTokens: res.TokensDecoded - res.SpecTokens + res.SpecRetained,
				Width:        l.s.effectiveWidth(c.req),
				Tag:          c.req.Tag,
			})
			if l.obs != nil {
				l.obs.Emit(obs.Span{Kind: obs.KindFinish, Tag: c.req.Tag, Start: l.now, End: l.now, N: c.slices})
			}
			feed(l.now)
		} else {
			rem := l.s.remainingWork(c)
			l.liveWork += rem - c.lastRem
			c.lastRem = rem
			l.reanchorWork()
		}
	}
	return out, nil
}

// dropSession prunes a completed session so the runnable and
// outstanding-work scans stay proportional to the live population.
func (l *Loop) dropSession(c *session) {
	for i, s := range l.sessions {
		if s == c {
			l.sessions = append(l.sessions[:i], l.sessions[i+1:]...)
			return
		}
	}
}

// insertByArrival inserts rq into the unadmitted tail queue[from:] at its
// arrival-sorted position (after equal arrivals, preserving feed order).
// The position is found by binary search, so pushing a large routed
// stream is O(n log n) instead of the quadratic backward scan.
func insertByArrival(queue []Request, from int, rq Request) []Request {
	pos := from + sort.Search(len(queue)-from, func(i int) bool {
		return queue[from+i].Arrival > rq.Arrival
	})
	queue = append(queue, Request{})
	copy(queue[pos+1:], queue[pos:])
	queue[pos] = rq
	return queue
}

// remainingWork is a session's remaining-demand estimate: the admission
// estimate minus decoded tokens, floored so a started request always has
// some residual demand (SJF never starves it behind an estimate gone
// negative). Single source of truth for the policy views and the loop's
// incremental load index.
func (s *Server) remainingWork(c *session) float64 {
	remaining := c.est
	if c.solver != nil {
		remaining -= float64(c.solver.gen.DecodedTokens)
	}
	if floor := c.est * 0.02; remaining < floor {
		remaining = floor
	}
	return remaining
}

// viewOf projects a session into the policy's read-only view.
func (s *Server) viewOf(c *session) sched.ServeRequest {
	return sched.ServeRequest{
		ID:            c.id,
		Arrival:       c.req.Arrival,
		Priority:      c.req.Priority,
		Deadline:      c.req.Deadline,
		Started:       c.started,
		Start:         c.start,
		WorkDone:      c.work,
		RemainingWork: s.remainingWork(c),
	}
}

// estimateWork predicts a request's total service demand in token units
// for shortest-job ordering (see sched.EstimateDemand), at the request's
// effective search width — a budget-degraded request costs less, and the
// SJF policy and least-work router see that.
func (s *Server) estimateWork(rq Request) float64 {
	return sched.EstimateDemand(rq.Problem, s.effectiveWidth(rq))
}

// effectiveStrategy resolves a request's test-time-compute strategy:
// the per-request override when one is set, else the deployment's
// configured strategy (nil means full-beam legacy semantics).
func (s *Server) effectiveStrategy(rq Request) search.Strategy {
	if rq.Strategy != nil {
		return rq.Strategy
	}
	return s.cfg.Strategy
}

// effectiveWidth resolves a request's effective search width: the
// configured policy width, narrowed by the request's budget override
// when one is set. Overrides never widen the search beyond the
// deployment's configured budget.
func (s *Server) effectiveWidth(rq Request) int {
	base := s.cfg.Policy.Width()
	if rq.Width <= 0 || rq.Width >= base {
		return base
	}
	return search.ClampWidth(s.cfg.Policy, rq.Width)
}

// Stats reduces served results to the server-level aggregates of package
// metrics. sloLatency is the wall-latency target in seconds (<= 0: none).
func Stats(served []ServedResult, sloLatency float64) metrics.ServeStats {
	samples := make([]metrics.ServeSample, len(served))
	for i, sv := range served {
		samples[i] = metrics.ServeSample{
			Arrival: sv.Arrival, Start: sv.Start, Finish: sv.Finish,
			Tokens: sv.UsefulTokens, Rejected: sv.Rejected,
		}
	}
	return metrics.SummarizeServe(samples, sloLatency)
}
