package core

import (
	"fmt"
	"math"
	"sort"

	"fasttts/internal/metrics"
	"fasttts/internal/sched"
	"fasttts/internal/workload"
)

// Request is one queued TTS query for the serving engine.
type Request struct {
	Problem *workload.Problem
	// Arrival is the request's arrival time on the server clock.
	Arrival float64
	// Priority orders requests under the priority policy; larger first.
	Priority int
	// Deadline is the absolute SLO deadline on the server clock used by
	// the deadline policy; 0 means none.
	Deadline float64
}

// ServedResult augments a solve result with queueing telemetry. Result is
// nil (and only then) for requests shed by admission control.
type ServedResult struct {
	*Result
	// Arrival, Start, and Finish are on the server clock. The embedded
	// Result's Latency is the request's device (service) time; under
	// time-slicing Finish − Start additionally includes slices spent on
	// other tenants.
	Arrival, Start, Finish float64
	// QueueDelay = Start − Arrival.
	QueueDelay float64
	// WallLatency = Finish − Arrival: what the client experiences.
	WallLatency float64
	// Slices counts the device slices the request ran in.
	Slices int
	// UsefulTokens is the request's useful generated output: all decoded
	// tokens minus speculative ones, plus the speculative tokens that
	// surviving beams adopted. Server-level goodput sums this.
	UsefulTokens int64
	// Rejected marks requests shed by admission control.
	Rejected bool
}

// Server is the multi-tenant serving engine. It generalizes the paper's
// §4.1.2 two-phase preemptible scheduler to many in-flight requests: an
// event-driven virtual clock time-slices the device between admitted
// requests at search-iteration granularity, a pluggable sched.ServePolicy
// decides admission and which request owns each slice, and speculative
// execution (Phase 2) runs only while no other request is waiting — the
// moment one is, speculation is preempted, exactly as in the paper. With
// the FCFS policy the engine degenerates to run-to-completion in arrival
// order and reproduces the sequential scheduler bit-identically.
type Server struct {
	cfg Config
	pol sched.ServePolicy
}

// session tracks one admitted request through its slices.
type session struct {
	req     Request
	id      int // position in the submitted stream
	solver  *solver
	started bool
	start   float64
	work    float64 // device seconds consumed
	est     float64 // estimated total service demand, token units
	slices  int
	done    bool
}

// NewServer returns an FCFS server executing requests under the given
// deployment configuration (the seed-equivalent special case).
func NewServer(cfg Config) (*Server, error) {
	return NewServerWithPolicy(cfg, sched.FCFS{})
}

// NewServerWithPolicy returns a server using the given admission/ordering
// policy. A nil policy means FCFS.
func NewServerWithPolicy(cfg Config, pol sched.ServePolicy) (*Server, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		pol = sched.FCFS{}
	}
	return &Server{cfg: cfg, pol: pol}, nil
}

// Policy returns the server's admission/ordering policy.
func (s *Server) Policy() sched.ServePolicy { return s.pol }

// Run serves an open-loop request stream and returns per-request results
// in completion order (rejected requests appear at their rejection time).
func (s *Server) Run(reqs []Request) ([]ServedResult, error) {
	queue := append([]Request(nil), reqs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })
	return s.serve(queue, nil)
}

// RunClosedLoop serves the problems under a fixed-concurrency closed
// loop: cl.Concurrency clients each keep one request outstanding and
// issue their next request cl.Think seconds after the previous finishes.
func (s *Server) RunClosedLoop(probs []*workload.Problem, cl workload.ClosedLoop) ([]ServedResult, error) {
	conc := cl.Concurrency
	if conc < 1 {
		conc = 1
	}
	n := min(conc, len(probs))
	queue := make([]Request, n)
	for i := 0; i < n; i++ {
		queue[i] = Request{Problem: probs[i]}
	}
	next := n
	feeder := func(finish float64) (Request, bool) {
		if next >= len(probs) {
			return Request{}, false
		}
		rq := Request{Problem: probs[next], Arrival: finish + cl.Think}
		next++
		return rq, true
	}
	return s.serve(queue, feeder)
}

// serve is the event loop. queue must be sorted by arrival; feeder, when
// non-nil, is asked for one follow-up request after every completion or
// rejection — the closed-loop client issues its next request either way,
// so admission control cannot silently retire a client slot.
func (s *Server) serve(queue []Request, feeder func(finish float64) (Request, bool)) ([]ServedResult, error) {
	var (
		out      []ServedResult
		sessions []*session
		now      float64
		next     int // next queue index to admit
		inFlight int
		nextID   int
	)
	feed := func(at float64) {
		if feeder == nil {
			return
		}
		if rq, ok := feeder(at); ok {
			queue = insertByArrival(queue, next, rq)
		}
	}
	runnable := func() []*session {
		live := make([]*session, 0, len(sessions))
		for _, c := range sessions {
			if !c.done {
				live = append(live, c)
			}
		}
		return live
	}
	for {
		// Admit everything that has arrived by now.
		for next < len(queue) && queue[next].Arrival <= now {
			rq := queue[next]
			next++
			c := &session{req: rq, id: nextID, est: s.estimateWork(rq.Problem)}
			nextID++
			if !s.pol.Admit(s.viewOf(c), now, inFlight) {
				out = append(out, ServedResult{
					Arrival: rq.Arrival, Start: rq.Arrival, Finish: rq.Arrival,
					Rejected: true,
				})
				feed(rq.Arrival)
				continue
			}
			sessions = append(sessions, c)
			inFlight++
		}
		live := runnable()
		if len(live) == 0 {
			if next < len(queue) {
				// Device idle: jump the virtual clock to the next arrival.
				now = queue[next].Arrival
				continue
			}
			break
		}

		// Policy picks the slice owner among the runnable requests.
		cands := make([]sched.ServeRequest, len(live))
		for i, c := range live {
			cands[i] = s.viewOf(c)
		}
		pick := s.pol.Pick(cands, now)
		if pick < 0 || pick >= len(live) {
			return nil, fmt.Errorf("core: policy %s picked index %d of %d runnable requests",
				s.pol.Name(), pick, len(live))
		}
		c := live[pick]
		if !c.started {
			sv, err := newSolver(s.cfg, c.req.Problem, nil)
			if err != nil {
				return nil, fmt.Errorf("core: serving %s/%d: %w", c.req.Problem.Dataset, c.req.Problem.Index, err)
			}
			c.solver = sv
			c.started = true
			c.start = now
		}

		// Phase 2 precondition (§4.1.2): speculation only while the waiting
		// queue is empty. In multi-tenant terms the queue is non-empty when
		// another request is runnable, or when the next unadmitted arrival
		// lands mid-slice.
		othersWaiting := len(live) > 1
		nextArrival := -1.0
		if next < len(queue) {
			nextArrival = queue[next].Arrival
		}
		sliceStart, localStart := now, c.solver.clk.Now()
		c.solver.preempt = func(local float64) bool {
			if othersWaiting {
				return true
			}
			return nextArrival >= 0 && sliceStart+(local-localStart) >= nextArrival
		}
		if !c.solver.begun {
			c.solver.begin() // prompt prefill charges into the first slice
		}

		if err := c.solver.stepOnce(); err != nil {
			return nil, fmt.Errorf("core: serving %s/%d: %w", c.req.Problem.Dataset, c.req.Problem.Index, err)
		}
		delta := c.solver.clk.Now() - localStart
		now += delta
		c.work += delta
		c.slices++

		if c.solver.done() {
			res, err := c.solver.result()
			if err != nil {
				return nil, fmt.Errorf("core: serving %s/%d: %w", c.req.Problem.Dataset, c.req.Problem.Index, err)
			}
			c.done = true
			inFlight--
			out = append(out, ServedResult{
				Result:  res,
				Arrival: c.req.Arrival, Start: c.start, Finish: now,
				QueueDelay:   c.start - c.req.Arrival,
				WallLatency:  now - c.req.Arrival,
				Slices:       c.slices,
				UsefulTokens: res.TokensDecoded - res.SpecTokens + res.SpecRetained,
			})
			feed(now)
		}
	}
	return out, nil
}

// insertByArrival inserts rq into the unadmitted tail queue[from:] at its
// arrival-sorted position (after equal arrivals, preserving feed order).
func insertByArrival(queue []Request, from int, rq Request) []Request {
	pos := len(queue)
	for pos > from && queue[pos-1].Arrival > rq.Arrival {
		pos--
	}
	queue = append(queue, Request{})
	copy(queue[pos+1:], queue[pos:])
	queue[pos] = rq
	return queue
}

// viewOf projects a session into the policy's read-only view.
func (s *Server) viewOf(c *session) sched.ServeRequest {
	remaining := c.est
	if c.solver != nil {
		remaining -= float64(c.solver.gen.DecodedTokens)
	}
	// Floor: a started request always has some residual demand, so SJF
	// never starves it behind an estimate gone negative.
	if floor := c.est * 0.02; remaining < floor {
		remaining = floor
	}
	return sched.ServeRequest{
		ID:            c.id,
		Arrival:       c.req.Arrival,
		Priority:      c.req.Priority,
		Deadline:      c.req.Deadline,
		Started:       c.started,
		Start:         c.start,
		WorkDone:      c.work,
		RemainingWork: remaining,
	}
}

// estimateWork predicts a request's total service demand in token units
// for shortest-job ordering: prompt prefill plus the expected decode work
// of the full search. Harder problems hold quality down, which delays the
// termination logistic, so expected depth rises with difficulty.
func (s *Server) estimateWork(p *workload.Problem) float64 {
	spec := p.Spec()
	meanStep := math.Exp(spec.StepLogMu + spec.StepLogSigma*spec.StepLogSigma/2)
	steps := spec.TypicalSteps + 3*(p.Difficulty-0.5)
	if steps < 1 {
		steps = 1
	}
	if m := float64(spec.MaxSteps); steps > m {
		steps = m
	}
	width := float64(s.cfg.Policy.Width())
	return float64(p.PromptTokens) + width*steps*meanStep
}

// Stats reduces served results to the server-level aggregates of package
// metrics. sloLatency is the wall-latency target in seconds (<= 0: none).
func Stats(served []ServedResult, sloLatency float64) metrics.ServeStats {
	samples := make([]metrics.ServeSample, len(served))
	for i, sv := range served {
		samples[i] = metrics.ServeSample{
			Arrival: sv.Arrival, Start: sv.Start, Finish: sv.Finish,
			Tokens: sv.UsefulTokens, Rejected: sv.Rejected,
		}
	}
	return metrics.SummarizeServe(samples, sloLatency)
}
