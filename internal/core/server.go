package core

import (
	"fmt"
	"sort"

	"fasttts/internal/workload"
)

// Request is one queued TTS query for the serving loop.
type Request struct {
	Problem *workload.Problem
	// Arrival is the request's arrival time on the server clock.
	Arrival float64
}

// ServedResult augments a solve result with queueing telemetry.
type ServedResult struct {
	*Result
	// Arrival, Start, and Finish are on the server clock.
	Arrival, Start, Finish float64
	// QueueDelay = Start − Arrival.
	QueueDelay float64
}

// Server runs the two-phase preemptible scheduling policy of §4.1.2 over
// a stream of requests:
//
//   - Phase 1 (Continuous Beam Batching): the active request's reasoning
//     paths are batched continuously.
//   - Phase 2 (Speculative Execution): only while the waiting queue is
//     empty; the moment a new request arrives, all speculative work is
//     preempted so the system stays responsive.
type Server struct {
	runner *Runner
}

// NewServer returns a server executing requests under the given
// deployment configuration.
func NewServer(cfg Config) (*Server, error) {
	r, err := NewRunner(cfg)
	if err != nil {
		return nil, err
	}
	return &Server{runner: r}, nil
}

// Run serves the requests FCFS and returns per-request results in
// completion order. Speculation within a request is preempted whenever
// another request is already waiting.
func (s *Server) Run(reqs []Request) ([]ServedResult, error) {
	queue := append([]Request(nil), reqs...)
	sort.SliceStable(queue, func(i, j int) bool { return queue[i].Arrival < queue[j].Arrival })
	var out []ServedResult
	now := 0.0
	for i, rq := range queue {
		start := now
		if rq.Arrival > start {
			start = rq.Arrival
		}
		// Speculation is allowed only while no later request has already
		// arrived (Phase 2 precondition: empty waiting queue).
		nextArrival := -1.0
		if i+1 < len(queue) {
			nextArrival = queue[i+1].Arrival
		}
		preempt := func(local float64) bool {
			return nextArrival >= 0 && start+local >= nextArrival
		}
		res, err := s.runner.SolveWithPreemption(rq.Problem, preempt)
		if err != nil {
			return nil, fmt.Errorf("core: serving %s/%d: %w", rq.Problem.Dataset, rq.Problem.Index, err)
		}
		finish := start + res.Latency
		out = append(out, ServedResult{
			Result:  res,
			Arrival: rq.Arrival, Start: start, Finish: finish,
			QueueDelay: start - rq.Arrival,
		})
		now = finish
	}
	return out, nil
}
