package core

import (
	"testing"

	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// TestFirstFinishTerminatesEarly: first-finish must stop at the first
// completed path, strictly before full-beam finishes the same problem,
// abandoning the still-active beams.
func TestFirstFinishTerminatesEarly(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	p := aimeProblem(t, 0)

	full := solveOne(t, testConfig(t, pol, FastTTSOptions()), p)
	cfg := testConfig(t, pol, FastTTSOptions())
	cfg.Strategy = search.FirstFinish{}
	ff := solveOne(t, cfg, p)

	if ff.Abandoned == 0 {
		t.Errorf("first-finish abandoned no beams (finished=%d)", len(ff.Finished))
	}
	if full.Abandoned != 0 {
		t.Errorf("full-beam abandoned %d beams", full.Abandoned)
	}
	if len(ff.Finished) == 0 {
		t.Fatal("first-finish returned no finished path")
	}
	if ff.Latency >= full.Latency {
		t.Errorf("first-finish latency %v not below full-beam %v", ff.Latency, full.Latency)
	}
	if ff.TokensDecoded >= full.TokensDecoded {
		t.Errorf("first-finish decoded %d tokens, full-beam %d — early termination saved nothing",
			ff.TokensDecoded, full.TokensDecoded)
	}
}

// TestFirstFinishChainCap: first-finish:k launches at most k chains.
func TestFirstFinishChainCap(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	cfg := testConfig(t, pol, FastTTSOptions())
	cfg.Strategy = search.FirstFinish{K: 4}
	s, err := newSolver(cfg, aimeProblem(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if w := s.cfg.Policy.Width(); w != 4 {
		t.Errorf("first-finish:4 launched %d chains, want 4", w)
	}
}

// TestFullBeamStrategyIsIdentity: an explicit full-beam strategy must
// reproduce the nil-strategy (legacy) run bit-identically.
func TestFullBeamStrategyIsIdentity(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	p := aimeProblem(t, 1)
	legacy := solveOne(t, testConfig(t, pol, FastTTSOptions()), p)
	cfg := testConfig(t, pol, FastTTSOptions())
	cfg.Strategy = search.FullBeam{}
	explicit := solveOne(t, cfg, p)
	if legacy.Latency != explicit.Latency || legacy.TokensDecoded != explicit.TokensDecoded ||
		len(legacy.Finished) != len(explicit.Finished) {
		t.Errorf("full-beam diverged from legacy: latency %v vs %v, tokens %d vs %d, paths %d vs %d",
			legacy.Latency, explicit.Latency, legacy.TokensDecoded, explicit.TokensDecoded,
			len(legacy.Finished), len(explicit.Finished))
	}
}

// TestDeadlineStrategyCutsMidSolve: under the deadline strategy a
// request whose deadline passes mid-solve finishes early with a
// degraded answer instead of running its full beam.
func TestDeadlineStrategyCutsMidSolve(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	p := aimeProblem(t, 0)

	base := testConfig(t, pol, FastTTSOptions())
	srv, err := NewServer(base)
	if err != nil {
		t.Fatal(err)
	}
	full, err := srv.Run([]Request{{Problem: p, Tag: 0}})
	if err != nil {
		t.Fatal(err)
	}

	cut := testConfig(t, pol, FastTTSOptions())
	cut.Strategy = search.DeadlineCut{}
	srv2, err := NewServer(cut)
	if err != nil {
		t.Fatal(err)
	}
	deadline := full[0].WallLatency / 2
	out, err := srv2.Run([]Request{{Problem: p, Deadline: deadline, Tag: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Result == nil {
		t.Fatalf("deadline run produced %d results", len(out))
	}
	if out[0].Result.Abandoned == 0 {
		t.Error("deadline cut abandoned no beams")
	}
	if out[0].WallLatency >= full[0].WallLatency {
		t.Errorf("deadline cut latency %v not below full %v", out[0].WallLatency, full[0].WallLatency)
	}
	if len(out[0].Result.Finished) == 0 {
		t.Error("deadline cut returned no path")
	}
}

// TestCancelReleasesSession: cancelling a live session releases its
// in-flight slot and load-index contribution; cancelling a queued
// arrival removes it before admission; unknown tags are no-ops.
func TestCancelReleasesSession(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 8, 4)
	srv, err := NewServer(testConfig(t, pol, FastTTSOptions()))
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.NewDataset(workload.MATH500, rng.New(11))
	l := srv.NewLoop([]Request{
		{Problem: ds.Problems[0], Arrival: 0, Tag: 0},
		{Problem: ds.Problems[1], Arrival: 1000, Tag: 1},
	})

	// Step until the first request is mid-flight.
	if _, err := l.StepTo(0.5); err != nil {
		t.Fatal(err)
	}
	if l.InFlight() != 1 {
		t.Fatalf("in-flight = %d, want 1", l.InFlight())
	}
	started, ok := l.Cancel(0)
	if !ok || !started {
		t.Fatalf("Cancel(0) = (%v, %v), want started live session", started, ok)
	}
	if l.InFlight() != 0 {
		t.Errorf("in-flight after cancel = %d", l.InFlight())
	}

	// The queued arrival cancels before admission.
	started, ok = l.Cancel(1)
	if !ok || started {
		t.Fatalf("Cancel(1) = (%v, %v), want unstarted queued arrival", started, ok)
	}
	if l.OutstandingWork() != 0 {
		t.Errorf("outstanding work after cancelling everything = %v", l.OutstandingWork())
	}

	// Unknown and already-cancelled tags are no-ops.
	if _, ok := l.Cancel(0); ok {
		t.Error("Cancel(0) found an already-cancelled request")
	}
	if _, ok := l.Cancel(99); ok {
		t.Error("Cancel(99) found a request that was never pushed")
	}

	// The loop drains with nothing left to serve.
	out, err := l.StepTo(NoHorizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("cancelled requests still produced %d results", len(out))
	}
	if !l.Idle() {
		t.Error("loop not idle after cancelling all work")
	}
}
