package core

import (
	"container/heap"
	"errors"
	"fmt"
	"math"

	"fasttts/internal/alloc"
	"fasttts/internal/engine"
	"fasttts/internal/kvcache"
	"fasttts/internal/metrics"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/sim"
	"fasttts/internal/trace"
	"fasttts/internal/verify"
	"fasttts/internal/workload"
)

// Runner executes TTS searches for a fixed deployment configuration.
// Each Solve call runs on a fresh virtual serving stack, so Runners are
// reusable across problems.
type Runner struct {
	cfg Config
}

// NewRunner validates the configuration and returns a Runner.
func NewRunner(cfg Config) (*Runner, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Runner{cfg: cfg}, nil
}

// Solve runs the configured TTS search for one problem.
func (r *Runner) Solve(p *workload.Problem) (*Result, error) {
	s, err := newSolver(r.cfg, p, nil)
	if err != nil {
		return nil, err
	}
	return s.run()
}

// SolveWithPreemption is Solve with a preemption probe: while the probe
// returns true, speculative execution is suspended (two-phase scheduling,
// §4.1.2). The server uses this to keep responsiveness under new
// arrivals.
func (r *Runner) SolveWithPreemption(p *workload.Problem, preempt func(now float64) bool) (*Result, error) {
	s, err := newSolver(r.cfg, p, preempt)
	if err != nil {
		return nil, err
	}
	return s.run()
}

const promptNode = 0

type solver struct {
	cfg Config
	p   *workload.Problem

	clk *sim.Clock
	gen *engine.Engine
	ver *verify.Verifier

	root      *rng.Stream
	orderRand *rng.Stream
	selRand   *rng.Stream

	kvBudget int64
	offload  bool
	meanStep int

	nextNode  int
	nextBeam  int
	active    []*beam
	finished  []FinalPath
	iter      int
	abandoned int

	specTok      int64
	specRetained int64
	recomputed   int64

	maxIters int
	begun    bool

	// preempt is probed during decode rounds; while it returns true,
	// speculative execution is suspended (§4.1.2). The multi-tenant server
	// swaps it per device slice.
	preempt func(now float64) bool
}

func newSolver(cfg Config, p *workload.Problem, preempt func(float64) bool) (*solver, error) {
	budget, err := cfg.KVBudget()
	if err != nil {
		return nil, err
	}
	clk := &sim.Clock{}
	genEng, err := engine.New("generator", cfg.Generator, cfg.GPU, budget/2, clk, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	verEng, err := engine.New("verifier", cfg.Verifier, cfg.GPU, budget/2, clk, cfg.Recorder)
	if err != nil {
		return nil, err
	}
	// The strategy's launch cap (first-finish's k chains) narrows the
	// policy exactly like the elastic governor's width knob, so algorithm
	// invariants (n >= b) hold by construction.
	if cfg.Strategy != nil {
		if w := cfg.Strategy.ChainWidth(cfg.Policy.Width()); w != cfg.Policy.Width() {
			pol, err := search.WithWidth(cfg.Policy, w)
			if err != nil {
				return nil, err
			}
			cfg.Policy = pol
		}
	}
	root := rng.New(cfg.Seed).ChildN(p.Dataset, p.Index)
	spec := p.Spec()
	s := &solver{
		cfg:       cfg,
		p:         p,
		clk:       clk,
		gen:       genEng,
		root:      root,
		orderRand: root.Child("order"),
		selRand:   root.Child("select"),
		kvBudget:  budget,
		meanStep:  meanStepTokens(spec),
		nextNode:  promptNode + 1,
		preempt:   preempt,
	}
	s.ver = &verify.Verifier{
		Eng:         verEng,
		Skill:       cfg.VerSkill,
		BatchSize:   1,
		PrefixCache: cfg.Opts.VerifierPrefixCache,
		LookAhead:   cfg.Opts.LookAhead && cfg.Opts.Speculative,
	}
	return s, nil
}

func meanStepTokens(spec workload.DatasetSpec) int {
	// E[lognormal] = exp(mu + sigma^2/2).
	return int(math.Exp(spec.StepLogMu + spec.StepLogSigma*spec.StepLogSigma/2))
}

func (s *solver) run() (*Result, error) {
	s.begin()
	for !s.done() {
		if err := s.stepOnce(); err != nil {
			return nil, err
		}
	}
	return s.result()
}

// begin charges the prompt prefill and seeds the root beams. It is the
// prologue of run, split out so the serving engine can fold it into a
// request's first device slice.
func (s *solver) begin() {
	pol := s.cfg.Policy
	// Root beams share the prompt.
	prompt := nodeTokens(promptNode, s.p.PromptTokens)
	s.gen.PrefillBatch([]engine.PrefillItem{
		{NewTokens: s.p.PromptTokens, CtxTokens: s.p.PromptTokens},
	}, trace.PhaseGenerate)
	if seq, _, _, err := s.gen.Cache.Acquire(prompt); err == nil {
		s.gen.Cache.Release(seq) // stays resident, unreferenced
	}
	for i := 0; i < pol.Width(); i++ {
		id := s.nextBeam
		s.nextBeam++
		s.active = append(s.active, &beam{
			id:      id,
			subtree: pol.InitialSubtree(i),
			tokens:  append([]kvcache.Token(nil), prompt...),
			lineage: []sched.NodeRef{{Node: promptNode, Tokens: s.p.PromptTokens}},
			r:       s.root.ChildN("beam", id),
			obsR:    s.root.ChildN("obs", id),
			specR:   s.root.ChildN("spec", id),
		})
	}
	s.maxIters = s.p.Spec().MaxSteps + 4
	s.begun = true
}

// stepOnce runs one search iteration (allocate → generate → verify →
// select). Each call is one preemptible device slice for the serving
// engine; the solver's clock advances only inside it.
func (s *solver) stepOnce() error {
	if s.cfg.Opts.AsymmetricMemory || s.iter == 0 {
		if err := s.allocate(); err != nil {
			return err
		}
	}
	ordered, err := s.generationPhase()
	if err != nil {
		return err
	}
	s.verificationPhase(ordered)
	s.selectAndBranch()
	s.iter++
	return nil
}

// done reports whether the search loop has terminated: all paths
// collected, the iteration cap reached, or the strategy satisfied early
// (first-finish stops at the first completed path).
func (s *solver) done() bool {
	if !s.begun {
		return false
	}
	if len(s.active) == 0 || s.iter >= s.maxIters {
		return true
	}
	return s.strategySatisfied()
}

// strategySatisfied reports whether the configured strategy allows
// stopping with beams still active.
func (s *solver) strategySatisfied() bool {
	return s.cfg.Strategy != nil && len(s.finished) > 0 &&
		s.cfg.Strategy.Satisfied(len(s.finished), len(s.active))
}

// cutDeadline finalizes the search early at a deadline cut: the serving
// loop invokes it (at slice granularity) when the request's deadline
// passes mid-solve under the "deadline" strategy. If no path finished
// yet, the best active beam (score descending, ID ascending) is
// collected as a degraded answer — Answer 1, honest accounting that the
// cut traded accuracy for latency. All remaining beams are abandoned.
func (s *solver) cutDeadline() {
	if len(s.active) == 0 {
		return
	}
	if len(s.finished) == 0 {
		best := s.active[0]
		for _, b := range s.active[1:] {
			if b.score > best.score || (b.score == best.score && b.id < best.id) {
				best = b
			}
		}
		s.finished = append(s.finished, FinalPath{
			BeamID:      best.id,
			Steps:       best.state.Steps,
			Tokens:      best.state.Tokens,
			Answer:      1,
			Score:       best.score,
			CompletedAt: s.clk.Now(),
		})
	}
	s.abandoned += len(s.active)
	s.active = s.active[:0]
}

// result assembles the final Result; it errors if the search ran out of
// iterations with beams still active. Beams still active because the
// strategy terminated early are abandoned, not errors.
func (s *solver) result() (*Result, error) {
	if len(s.active) > 0 {
		if !s.strategySatisfied() {
			return nil, fmt.Errorf("core: search did not converge after %d iterations", s.maxIters)
		}
		s.abandoned += len(s.active)
		s.active = s.active[:0]
	}

	res := &Result{
		Problem:          s.p,
		Finished:         s.finished,
		Latency:          s.clk.Now(),
		GenTime:          s.gen.BusyTime - s.gen.TransferTime,
		VerTime:          s.ver.Eng.BusyTime - s.ver.Eng.TransferTime,
		TransferTime:     s.gen.TransferTime + s.ver.Eng.TransferTime,
		Iterations:       s.iter,
		Abandoned:        s.abandoned,
		TokensDecoded:    s.gen.DecodedTokens,
		SpecTokens:       s.specTok,
		SpecRetained:     s.specRetained,
		RecomputedTokens: s.recomputed,
		GenCache:         s.gen.Cache.Stats(),
		VerCache:         s.ver.Eng.Cache.Stats(),
	}
	res.Goodput = metrics.PreciseGoodput(res.PathResults())
	return res, nil
}

// allocate re-partitions the KV budget between verifier and generator
// (§4.3). FastTTS re-invokes it every iteration as system state changes;
// the baseline splits statically once.
func (s *solver) allocate() error {
	n := len(s.active)
	if n == 0 {
		return nil
	}
	avgLen := 0
	for _, b := range s.active {
		avgLen += len(b.tokens)
	}
	avgLen /= n
	if avgLen < 16 {
		avgLen = 16
	}
	in := alloc.Input{
		GPU:          s.cfg.GPU,
		Generator:    s.cfg.Generator,
		Verifier:     s.cfg.Verifier,
		N:            n,
		SeqVerifier:  avgLen,
		SeqDecode:    max(s.meanStep, 16),
		BudgetBytes:  s.kvBudget,
		AllowOffload: s.cfg.Opts.AllowOffload,
	}
	var plan alloc.Plan
	var err error
	if s.cfg.Opts.AsymmetricMemory {
		plan, err = alloc.Optimize(in)
	} else {
		plan, err = alloc.StaticSplit(in, s.cfg.Opts.StaticVerifierFrac)
	}
	if err != nil {
		if errors.Is(err, alloc.ErrInfeasible) && s.cfg.Opts.AllowOffload {
			// Force offload: each model gets the whole budget.
			plan = alloc.Plan{BPre: 1, BDec: 1, Offload: true}
		} else {
			return fmt.Errorf("core: allocation failed: %w", err)
		}
	}
	s.offload = plan.Offload
	var genBytes, verBytes int64
	if plan.Offload {
		genBytes, verBytes = s.kvBudget, s.kvBudget
	} else if s.cfg.Opts.AsymmetricMemory {
		// Verifier gets its batch reservation; the generator absorbs the
		// remaining budget (decode is the memory-hungry stage, Fig 6) —
		// but not beyond its working set: surplus flows back to the
		// verifier, where it buys cross-iteration prefix retention.
		verBytes = plan.PreBytes
		genBytes = s.kvBudget - verBytes
		genNeed := s.generatorWorkingSetBytes()
		if genBytes > genNeed {
			verBytes = s.kvBudget - genNeed
			genBytes = genNeed
		}
	} else {
		verBytes = int64(float64(s.kvBudget) * s.cfg.Opts.StaticVerifierFrac)
		genBytes = s.kvBudget - verBytes
	}
	if verBytes < s.cfg.Verifier.KVBytesPerToken()*64 {
		verBytes = s.cfg.Verifier.KVBytesPerToken() * 64
		if !plan.Offload {
			genBytes = s.kvBudget - verBytes
		}
	}
	if genBytes < s.cfg.Generator.KVBytesPerToken()*64 {
		return fmt.Errorf("core: generator KV budget too small (%d bytes)", genBytes)
	}
	if err := s.gen.ResizeCache(genBytes); err != nil {
		return err
	}
	if err := s.ver.Eng.ResizeCache(verBytes); err != nil {
		return err
	}
	s.ver.BatchSize = max(plan.BPre, 1)
	return nil
}

// generatorWorkingSetBytes estimates the KV footprint the generator can
// productively use this iteration: the unique tokens of the active
// reasoning tree plus one expected step (and speculation headroom) per
// beam, with slack.
func (s *solver) generatorWorkingSetBytes() int64 {
	seen := map[int]bool{}
	unique := 0
	for _, b := range s.active {
		for _, ref := range b.lineage {
			if !seen[ref.Node] {
				seen[ref.Node] = true
				unique += ref.Tokens
			}
		}
	}
	perBeam := 3 * s.meanStep // current step + speculative headroom
	if !s.cfg.Policy.UsesVerifier() {
		// Best-of-N / CoT chains run to completion in one iteration.
		perBeam = s.p.Spec().MaxSteps * s.meanStep
	}
	tokens := int64(unique + len(s.active)*perBeam)
	return tokens * s.cfg.Generator.KVBytesPerToken() * 3 / 2
}

// generationPhase samples and commits one thinking step per active beam,
// then executes the decode work trie by trie. It returns the scheduling
// order used (reused by verification).
func (s *solver) generationPhase() ([]*beam, error) {
	for _, b := range s.active {
		s.commitStep(b)
	}
	s.assignSpecEligibility()

	ordered := s.orderBeams()
	paths := make([]sched.Path, len(ordered))
	byID := make(map[int]*beam, len(ordered))
	for i, b := range ordered {
		paths[i] = b.schedPath()
		byID[b.id] = b
	}
	capacity := int(s.gen.Cache.CapacityTokens())
	var groups [][]*beam
	if s.cfg.Opts.GeneratorPrefixCache {
		// Tries share prefixes physically: capacity counts unique tokens.
		for _, tr := range sched.PackTries(paths, capacity) {
			group := make([]*beam, len(tr.Paths))
			for i, p := range tr.Paths {
				group[i] = byID[p.ID]
			}
			groups = append(groups, group)
		}
	} else {
		// Without prefix reuse every beam occupies its full length.
		var cur []*beam
		used := 0
		for _, p := range paths {
			n := p.TotalTokens()
			if len(cur) > 0 && used+n > capacity {
				groups = append(groups, cur)
				cur, used = nil, 0
			}
			cur = append(cur, byID[p.ID])
			used += n
		}
		if len(cur) > 0 {
			groups = append(groups, cur)
		}
	}

	if s.offload {
		s.swapForGeneration()
	}
	for _, group := range groups {
		s.execTrie(group)
	}
	return ordered, nil
}

// commitStep samples the beam's next thinking step (or, for policies
// without intermediate verification, the whole remaining chain) and
// commits its tokens. Retained speculative tokens cover the head of the
// step; only the remainder needs decode rounds.
func (s *solver) commitStep(b *beam) {
	pol := s.cfg.Policy
	total := 0
	if pol.UsesVerifier() {
		var step workload.Step
		if len(b.nextSteps) > 0 {
			// Speculation pre-sampled this step (§4.1.3); consuming the
			// stored draw keeps the step stream aligned with a
			// speculation-free run.
			step = b.nextSteps[0]
			b.nextSteps = b.nextSteps[1:]
		} else {
			step = workload.SampleStep(s.p, &b.state, s.cfg.GenSkill, pol.StepBudget(b.state.Steps), b.r)
		}
		workload.ApplyStep(&b.state, step)
		b.stepTerminal = step.Terminal
		total = step.Tokens
	} else {
		// Best-of-N / CoT: the chain runs to termination without
		// verification barriers — one mega-step.
		for !b.state.Terminated {
			step := workload.SampleStep(s.p, &b.state, s.cfg.GenSkill, pol.StepBudget(b.state.Steps), b.r)
			workload.ApplyStep(&b.state, step)
			total += step.Tokens
		}
		b.stepTerminal = true
	}
	b.stepTokens = total
	used := b.takePending(total)
	fresh := total - used
	if fresh > 0 {
		node := s.newNode()
		b.tokens = append(b.tokens, nodeTokens(node, fresh)...)
		b.lineage = append(b.lineage, sched.NodeRef{Node: node, Tokens: fresh})
	}
	b.rem = fresh
}

// assignSpecEligibility computes M_i for every beam by binning the
// previous iteration's verifier scores into B bins (§4.1.1):
// s_i ∈ C_j ⇒ M_i = B − j + 1, with C_1 the highest bin.
func (s *solver) assignSpecEligibility() {
	bins := s.cfg.Opts.SpecBins
	if bins <= 0 {
		bins = s.cfg.Policy.BranchFactor()
	}
	if bins < 1 {
		bins = 1
	}
	lo, hi := 0.0, 0.0
	any := false
	for _, b := range s.active {
		if !b.hasScore {
			continue
		}
		if !any || b.score < lo {
			lo = b.score
		}
		if !any || b.score > hi {
			hi = b.score
		}
		any = true
	}
	for _, b := range s.active {
		switch {
		case !b.hasScore || !any:
			b.specEligible = 1
		case hi == lo:
			b.specEligible = bins
		default:
			// Bin index from the top: j=1 for the highest scores.
			frac := (hi - b.score) / (hi - lo)
			j := int(frac*float64(bins)) + 1
			if j > bins {
				j = bins
			}
			b.specEligible = bins - j + 1
		}
	}
}

// orderBeams applies Dynamic Prefix-Aware Scheduling (or the baseline's
// arbitrary order, which vLLM's preemption and queueing induce).
func (s *solver) orderBeams() []*beam {
	paths := make([]sched.Path, len(s.active))
	for i, b := range s.active {
		paths[i] = b.schedPath()
	}
	var ordered []sched.Path
	if s.cfg.Opts.PrefixAware {
		ordered = sched.PrefixAwareOrder(paths)
	} else {
		ordered = sched.RandomOrder(paths, s.orderRand)
	}
	byID := make(map[int]*beam, len(s.active))
	for _, b := range s.active {
		byID[b.id] = b
	}
	out := make([]*beam, len(ordered))
	for i, p := range ordered {
		out[i] = byID[p.ID]
	}
	return out
}

// execTrie runs one memory-resident group: acquire KV (charging recompute
// prefill for evicted prefixes), then the decode round loop with
// Speculative Beam Extension, then speculative KV writes.
func (s *solver) execTrie(group []*beam) {
	// Acquire committed prefixes; extend with this step's fresh tokens.
	// Without a generator prefix cache (the vLLM baseline), every beam's
	// full path is re-prefilled as a fresh prompt each iteration.
	var recomp []engine.PrefillItem
	for _, b := range group {
		prevLen := len(b.tokens) - b.rem
		if !s.cfg.Opts.GeneratorPrefixCache {
			recomp = append(recomp, engine.PrefillItem{NewTokens: prevLen, CtxTokens: prevLen})
			s.recomputed += int64(prevLen)
			continue
		}
		seq, _, miss, err := s.gen.Cache.Acquire(b.tokens[:prevLen])
		if err != nil {
			// Pinned-full or oversized path: stream uncached.
			miss = prevLen
			seq = nil
		}
		if miss > 0 {
			recomp = append(recomp, engine.PrefillItem{NewTokens: miss, CtxTokens: prevLen})
			s.recomputed += int64(miss)
		}
		if seq != nil && b.rem > 0 {
			if _, _, err := s.gen.Cache.Extend(seq, b.tokens[prevLen:]); err != nil {
				s.gen.Cache.Release(seq)
				seq = nil
			}
		}
		b.seq = seq
	}
	if len(recomp) > 0 {
		s.gen.PrefillBatch(recomp, trace.PhaseRecompute)
	}

	s.decodeRounds(group)

	// Materialize speculative branches into the cache so retained spec
	// survives to the next iteration (dropped silently under pressure —
	// speculation is opportunistic).
	for _, b := range group {
		if b.seq == nil {
			continue
		}
		for _, sp := range b.specs {
			if sp.count == 0 {
				continue
			}
			need := int64(len(b.pending) + sp.count)
			if s.gen.Cache.FreeTokens() < need {
				// Opportunistic: never evict committed prefixes to keep
				// speculative KV. The token content survives in the beam
				// (recompute-on-adopt handles residency).
				continue
			}
			fork, err := s.gen.Cache.Fork(b.seq)
			if err != nil {
				continue
			}
			ext := append(append([]kvcache.Token(nil), b.pending...), nodeTokens(sp.node, sp.count)...)
			s.gen.Cache.Extend(fork, ext)
			s.gen.Cache.Release(fork)
		}
	}
	for _, b := range group {
		if b.seq != nil {
			s.gen.Cache.Release(b.seq)
			b.seq = nil
		}
	}
}

// specCandidate orders the speculative fill queue: highest remaining
// eligibility first, then score, then ID (§4.1.1).
type specCandidate struct {
	b        *beam
	priority int
}

type specHeap []specCandidate

func (h specHeap) Len() int { return len(h) }
func (h specHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	if h[i].b.score != h[j].b.score {
		return h[i].b.score > h[j].b.score
	}
	return h[i].b.id < h[j].b.id
}
func (h specHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *specHeap) Push(x any)   { *h = append(*h, x.(specCandidate)) }
func (h *specHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}

// decodeRounds is the generation while-loop of Algorithm 1: one token per
// round for every unfinished beam, with completed beams' slots lazily
// filled by speculative branches until the last straggler finishes. A
// speculative branch generates at most one entire future CoT step (the
// LookAhead case, §4.1.3); its length comes from pre-sampling the beam's
// next step, which preserves per-stream draw order and therefore
// algorithmic equivalence.
func (s *solver) decodeRounds(group []*beam) {
	maxRem := 0
	for _, b := range group {
		if b.rem > maxRem {
			maxRem = b.rem
		}
	}
	buckets := make([][]*beam, maxRem+1)
	active := 0
	var ctx int64
	for _, b := range group {
		if b.rem > 0 {
			active++
			buckets[b.rem] = append(buckets[b.rem], b)
			ctx += int64(len(b.tokens) - b.rem)
		}
	}
	speculating := s.cfg.Opts.Speculative && s.cfg.Policy.UsesVerifier()
	var cand specHeap
	pushCand := func(b *beam) {
		if !speculating || b.stepTerminal {
			return // terminal paths have no future step to speculate
		}
		if b.specEligible > len(b.specs) {
			heap.Push(&cand, specCandidate{b: b, priority: b.specEligible - len(b.specs)})
		}
	}
	if speculating {
		for _, b := range group {
			if b.rem == 0 {
				pushCand(b)
			}
		}
	}
	slots := len(group)
	type slot struct {
		b   *beam
		idx int // index into b.specs
	}
	var specActive []slot
	// Speculative context budget: spec slots add KV reads to every round,
	// so their total context is capped at a fraction of the weight-read
	// cost, keeping speculation effectively free under the roofline.
	var specCtx int64
	specCtxBudget := s.cfg.Generator.WeightBytes() / s.cfg.Generator.KVBytesPerToken() / 6
	if free := s.gen.Cache.FreeTokens(); specCtxBudget > free {
		// Under memory pressure, speculative KV would thrash committed
		// prefixes; shrink the speculation envelope to what fits.
		specCtxBudget = free
	}
	fill := func() {
		if !speculating || s.isPreempted() {
			return
		}
		for active+len(specActive) < slots && cand.Len() > 0 {
			c := heap.Pop(&cand).(specCandidate)
			b := c.b
			if len(b.nextSteps) == 0 {
				st := workload.SampleStep(s.p, &b.state, s.cfg.GenSkill,
					s.cfg.Policy.StepBudget(b.state.Steps), b.r)
				b.nextSteps = append(b.nextSteps, st)
			}
			capTok := b.nextSteps[0].Tokens - len(b.pending)
			if capTok <= 0 {
				continue // next step already fully covered
			}
			base := int64(len(b.tokens) + len(b.pending))
			if specCtx+base > specCtxBudget {
				continue // spec reads would slow the round measurably
			}
			node := s.newNode()
			b.specs = append(b.specs, specBranch{
				node: node, cap: capTok,
				ctxLen: len(b.tokens) + len(b.pending),
			})
			specActive = append(specActive, slot{b: b, idx: len(b.specs) - 1})
			ctx += base
			specCtx += base
			pushCand(b) // re-queue with reduced priority if still eligible
		}
	}
	fill()
	for r := 1; active > 0; r++ {
		if s.isPreempted() && len(specActive) > 0 {
			// Preemption: stop all speculative execution immediately
			// (§4.1.2); accumulated tokens are kept.
			for _, sl := range specActive {
				ctx -= int64(sl.b.specs[sl.idx].ctxLen + sl.b.specs[sl.idx].count)
				specCtx -= int64(sl.b.specs[sl.idx].ctxLen + sl.b.specs[sl.idx].count)
			}
			specActive = nil
		}
		batch := active + len(specActive)
		s.gen.DecodeRound(batch, ctx, trace.PhaseGenerate)
		ctx += int64(batch)
		keep := specActive[:0]
		for _, sl := range specActive {
			br := &sl.b.specs[sl.idx]
			br.count++
			s.specTok++
			specCtx++
			if br.count >= br.cap {
				if sl.idx == 0 && s.chainSpec(sl.b, br) {
					// The primary branch rolls into the following future
					// step (deep lookahead) and keeps its slot.
					keep = append(keep, sl)
					continue
				}
				// Branch completed its future step: free the slot.
				ctx -= int64(br.ctxLen + br.count)
				specCtx -= int64(br.ctxLen + br.count)
			} else {
				keep = append(keep, sl)
			}
		}
		specActive = keep
		if r < len(buckets) {
			for _, b := range buckets[r] {
				active--
				ctx -= int64(len(b.tokens))
				pushCand(b)
			}
		}
		fill()
	}
}

// maxSpecDepth bounds how many future steps the primary speculative
// branch may chain through.
const maxSpecDepth = 2

// chainSpec extends the primary speculative branch of b into the next
// future step, pre-sampling it. It reports whether the branch continues.
func (s *solver) chainSpec(b *beam, br *specBranch) bool {
	if len(b.nextSteps) >= maxSpecDepth {
		return false
	}
	last := b.nextSteps[len(b.nextSteps)-1]
	if last.Terminal {
		return false // the chain reached the end of the path
	}
	// The pre-sample sees the state as it will be at that commit: steps
	// advanced by the queued steps. Quality deltas are folded lazily at
	// commit; SampleStep's dependence is through Steps and Quality — use
	// the projected values.
	proj := b.state
	for _, st := range b.nextSteps {
		workload.ApplyStep(&proj, st)
	}
	st := workload.SampleStep(s.p, &proj, s.cfg.GenSkill,
		s.cfg.Policy.StepBudget(proj.Steps), b.r)
	b.nextSteps = append(b.nextSteps, st)
	br.cap += st.Tokens
	return true
}

func (s *solver) isPreempted() bool {
	if s.preempt == nil {
		return false
	}
	return s.preempt(s.clk.Now())
}

// verificationPhase scores every beam's committed path (plus retained
// speculative tokens under LookAhead Verification) in scheduling order.
func (s *solver) verificationPhase(ordered []*beam) {
	if len(ordered) == 0 {
		return
	}
	if s.offload {
		s.swapForVerification()
	}
	bins := s.cfg.Opts.SpecBins
	if bins <= 0 {
		bins = s.cfg.Policy.BranchFactor()
	}
	reqs := make([]verify.Request, len(ordered))
	for i, b := range ordered {
		var spec []kvcache.Token
		// Co-verify speculative chains only for top-bin beams — the ones
		// most likely to survive selection (§4.1.1's priority heuristic
		// applied to verification spend).
		if s.ver.LookAhead && !b.stepTerminal && b.specEligible >= bins {
			spec, _ = b.specChain(s.materializeSpec)
		}
		reqs[i] = verify.Request{
			Tokens:     b.tokens,
			SpecTokens: spec,
			Covered:    b.verifiedLen,
			State:      &b.state,
			R:          b.obsR,
		}
	}
	scores := s.ver.ScoreAll(reqs)
	for i, b := range ordered {
		b.score = scores[i]
		b.hasScore = true
		total := len(reqs[i].Tokens) + len(reqs[i].SpecTokens)
		if total > b.verifiedLen {
			b.verifiedLen = total
		}
		if cv := b.verifiedLen - len(b.tokens); cv > 0 {
			b.coVerified = cv
		} else {
			b.coVerified = 0
		}
	}
}

func (s *solver) materializeSpec(sp specBranch) []kvcache.Token {
	return nodeTokens(sp.node, sp.count)
}

// selectAndBranch collects terminated paths, applies the policy's
// selection to the rest, and branches the survivors — originals keep
// their speculative chain intact, duplicates retain a truncated prefix
// (truncation ratio R, §4.1).
func (s *solver) selectAndBranch() {
	now := s.clk.Now()
	var continuing []*beam
	for _, b := range s.active {
		if b.stepTerminal {
			b.answer = workload.Answer(s.p, &b.state, b.obsR)
			s.finished = append(s.finished, FinalPath{
				BeamID:      b.id,
				Steps:       b.state.Steps,
				Tokens:      b.state.Tokens,
				Answer:      b.answer,
				Score:       b.score,
				CompletedAt: now,
			})
			continue
		}
		continuing = append(continuing, b)
	}
	if len(continuing) == 0 {
		s.active = nil
		return
	}
	pol := s.cfg.Policy
	if !pol.UsesVerifier() {
		s.active = continuing
		return
	}
	cands := make([]search.Candidate, len(continuing))
	byID := make(map[int]*beam, len(continuing))
	for i, b := range continuing {
		cands[i] = search.Candidate{ID: b.id, Subtree: b.subtree, Score: b.score}
		byID[b.id] = b
	}
	branches := pol.Select(cands, s.selRand)
	var next []*beam
	for _, br := range branches {
		b := byID[br.ID]
		// Original adopts its full speculative chain as pending tokens.
		chainTok, chainLin := b.specChain(s.materializeSpec)
		if len(b.specs) > 0 {
			s.specRetained += int64(b.specs[0].count)
		}
		next = append(next, b)
		for c := 1; c < br.Children; c++ {
			id := s.nextBeam
			s.nextBeam++
			child := b.child(id,
				s.root.ChildN("beam", id),
				s.root.ChildN("obs", id),
				s.root.ChildN("spec", id))
			child.verifiedLen = len(child.tokens)
			if s.cfg.Opts.Speculative {
				s.seedChildPending(b, child, c)
			}
			next = append(next, child)
		}
		b.pending = chainTok
		b.pendingLin = chainLin
		b.specs = nil
	}
	s.active = next
}

// seedChildPending gives duplicate c of beam b a truncated speculative
// head start: the tokens of spec branch min(c, last), truncated by a
// Normal(R, 0.1) retention fraction drawn from the child's private
// speculation stream (§4.1: "only its duplicates have speculative tokens
// truncated ... the truncation length is drawn from a normal distribution
// with mean R").
func (s *solver) seedChildPending(b, child *beam, c int) {
	branchIdx := c
	if branchIdx >= len(b.specs) {
		branchIdx = len(b.specs) - 1
	}
	var tokens []kvcache.Token
	var lin []sched.NodeRef
	if branchIdx >= 0 && b.specs[branchIdx].count > 0 {
		tokens = nodeTokens(b.specs[branchIdx].node, b.specs[branchIdx].count)
		lin = []sched.NodeRef{{Node: b.specs[branchIdx].node, Tokens: b.specs[branchIdx].count}}
	}
	if len(tokens) == 0 {
		return
	}
	f := child.specR.NormClamped(s.cfg.Opts.TruncationRatio, 0.1, 0, 1)
	keep := int(f * float64(len(tokens)))
	if keep <= 0 {
		return
	}
	child.pending = tokens[:keep]
	child.pendingLin = []sched.NodeRef{{Node: lin[0].Node, Tokens: keep}}
	s.specRetained += int64(keep)
}

func (s *solver) newNode() int {
	n := s.nextNode
	s.nextNode++
	return n
}

// swapForGeneration / swapForVerification charge the §4.3.2 offload
// transfers: the inactive model's KV moves to host memory and the active
// model's KV returns.
func (s *solver) swapForGeneration() {
	moved := s.gen.Cache.UsedBytes() + s.ver.Eng.Cache.UsedBytes()
	s.gen.SwapTransfer(moved)
}

func (s *solver) swapForVerification() {
	moved := s.gen.Cache.UsedBytes() + s.ver.Eng.Cache.UsedBytes()
	s.ver.Eng.SwapTransfer(moved)
}
