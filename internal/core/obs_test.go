package core

// The flight recorder's core-level contract: attaching a recorder
// changes nothing about the served stream (tracing observes scheduling,
// never perturbs it), and the spans it captures satisfy the lifecycle
// conservation laws checked by obs.Verify.

import (
	"reflect"
	"testing"

	"fasttts/internal/memplane"
	"fasttts/internal/obs"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

func TestLoopTraceParity(t *testing.T) {
	pol, err := search.New(search.BeamSearch, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	ds := workload.NewDataset(workload.MATH500, rng.New(7))
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Problem: ds.Problems[i], Arrival: float64(i) * 1.5, Tag: i}
	}

	run := func(rec *obs.Recorder) []ServedResult {
		cfg := testConfig(t, pol, FastTTSOptions())
		cfg.KVPlane = memplane.Config{CapacityBytes: 2 << 30}
		cfg.Obs = rec
		srv, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.NewLoop(reqs).StepTo(NoHorizon)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(nil)
	rec := obs.NewRecorder()
	traced := run(rec)
	if !reflect.DeepEqual(plain, traced) {
		t.Fatal("attaching a recorder perturbed the served stream")
	}

	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("recorder captured nothing")
	}
	if err := obs.Verify(spans); err != nil {
		t.Fatalf("span lifecycle invariants violated: %v", err)
	}
	// One admission, one queue span, one finish, >= 1 slice per request;
	// admissions carry the memory plane's re-prefill penalty.
	counts := map[obs.Kind]int{}
	for _, s := range spans {
		counts[s.Kind]++
	}
	n := len(reqs)
	if counts[obs.KindAdmit] != n || counts[obs.KindQueue] != n || counts[obs.KindFinish] != n {
		t.Fatalf("admit/queue/finish = %d/%d/%d, want %d each",
			counts[obs.KindAdmit], counts[obs.KindQueue], counts[obs.KindFinish], n)
	}
	if counts[obs.KindSlice] < n {
		t.Fatalf("only %d slices for %d requests", counts[obs.KindSlice], n)
	}

	// The attribution pass must reconstruct the served wall latencies
	// exactly from the spans alone.
	attrs := obs.Attribute(spans)
	if len(attrs) != n {
		t.Fatalf("attributed %d requests, want %d", len(attrs), n)
	}
	if err := obs.CheckSums(attrs); err != nil {
		t.Fatal(err)
	}
	for i, a := range attrs {
		r := traced[i]
		if a.Tag != r.Tag || a.Wall != r.WallLatency || a.Finish != r.Finish {
			t.Fatalf("attribution %d: tag/wall/finish %d/%v/%v vs served %d/%v/%v",
				i, a.Tag, a.Wall, a.Finish, r.Tag, r.WallLatency, r.Finish)
		}
	}
}
