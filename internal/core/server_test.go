package core

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/sched"
	"fasttts/internal/search"
	"fasttts/internal/workload"
)

// serveConfig is a small, fast deployment for serving tests.
func serveConfig(t *testing.T) Config {
	t.Helper()
	pol, err := search.New(search.BeamSearch, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	return testConfig(t, pol, FastTTSOptions())
}

// mixedProblems interleaves long AIME24 and short MATH500 requests: the
// heterogeneous service demands shortest-job scheduling exploits.
func mixedProblems(t *testing.T, n int) []*workload.Problem {
	t.Helper()
	aime := workload.NewDataset(workload.AIME24, rng.New(7))
	short := workload.NewDataset(workload.MATH500, rng.New(7))
	var out []*workload.Problem
	for i := 0; len(out) < n; i++ {
		out = append(out, aime.Problems[i%len(aime.Problems)])
		if len(out) < n {
			out = append(out, short.Problems[i])
		}
	}
	return out
}

func poissonRequests(t *testing.T, probs []*workload.Problem, rate float64, seed uint64) []Request {
	t.Helper()
	times := workload.PoissonArrivals(len(probs), rate, rng.New(seed).Child("arrivals"))
	reqs := make([]Request, len(probs))
	for i, p := range probs {
		reqs[i] = Request{Problem: p, Arrival: times[i]}
	}
	return reqs
}

func runServer(t *testing.T, cfg Config, pol sched.ServePolicy, reqs []Request) []ServedResult {
	t.Helper()
	srv, err := NewServerWithPolicy(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	served, err := srv.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return served
}

// TestServerFCFSMatchesSolveSingleRequest: on a single-request stream the
// multi-tenant engine must reproduce the sequential solver bit-for-bit.
func TestServerFCFSMatchesSolveSingleRequest(t *testing.T) {
	cfg := serveConfig(t)
	p := aimeProblem(t, 0)

	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	served := runServer(t, cfg, sched.FCFS{}, []Request{{Problem: p, Arrival: 3.5}})
	if len(served) != 1 {
		t.Fatalf("served %d results, want 1", len(served))
	}
	sv := served[0]
	if !reflect.DeepEqual(sv.Result, want) {
		t.Errorf("served result differs from sequential solve:\n got %+v\nwant %+v", sv.Result, want)
	}
	if sv.Start != 3.5 || sv.QueueDelay != 0 {
		t.Errorf("start %v queue delay %v, want 3.5 and 0", sv.Start, sv.QueueDelay)
	}
	if got, want := sv.Finish, 3.5+want.Latency; math.Abs(got-want) > 1e-12 {
		t.Errorf("finish %v, want %v", got, want)
	}
	if sv.Slices != want.Iterations {
		t.Errorf("slices %d, want one per iteration (%d)", sv.Slices, want.Iterations)
	}
}

// TestServerFCFSMatchesSequentialStream: FCFS over a multi-request stream
// must equal the seed's strictly sequential loop (run each request to
// completion in arrival order, preempting speculation once the next
// request has arrived).
func TestServerFCFSMatchesSequentialStream(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 4)
	reqs := []Request{
		{Problem: probs[0], Arrival: 0},
		{Problem: probs[1], Arrival: 2},
		{Problem: probs[2], Arrival: 2.5},
		{Problem: probs[3], Arrival: 400},
	}

	// The sequential reference, verbatim from the pre-multi-tenant server.
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var want []ServedResult
	now := 0.0
	for i, rq := range reqs {
		start := now
		if rq.Arrival > start {
			start = rq.Arrival
		}
		nextArrival := -1.0
		if i+1 < len(reqs) {
			nextArrival = reqs[i+1].Arrival
		}
		res, err := r.SolveWithPreemption(rq.Problem, func(local float64) bool {
			return nextArrival >= 0 && start+local >= nextArrival
		})
		if err != nil {
			t.Fatal(err)
		}
		finish := start + res.Latency
		want = append(want, ServedResult{
			Result:  res,
			Arrival: rq.Arrival, Start: start, Finish: finish,
			QueueDelay: start - rq.Arrival,
		})
		now = finish
	}

	got := runServer(t, cfg, sched.FCFS{}, reqs)
	if len(got) != len(want) {
		t.Fatalf("served %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i].Result, want[i].Result) {
			t.Errorf("request %d: result differs from sequential reference", i)
		}
		if got[i].Start != want[i].Start || math.Abs(got[i].Finish-want[i].Finish) > 1e-9 {
			t.Errorf("request %d: start/finish (%v, %v), want (%v, %v)",
				i, got[i].Start, got[i].Finish, want[i].Start, want[i].Finish)
		}
		if got[i].QueueDelay != want[i].QueueDelay {
			t.Errorf("request %d: queue delay %v, want %v", i, got[i].QueueDelay, want[i].QueueDelay)
		}
	}
}

// TestServeTelemetryInvariants checks the queueing-telemetry invariants
// for every policy: Start ≥ Arrival, QueueDelay = Start − Arrival,
// WallLatency = Finish − Arrival, Finish monotone in completion order
// (the device is serial), and service time fits inside [Start, Finish].
func TestServeTelemetryInvariants(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 12)
	reqs := poissonRequests(t, probs, 0.5, 11)
	for i := range reqs {
		reqs[i].Priority = i % 3
		if i%2 == 0 {
			reqs[i].Deadline = reqs[i].Arrival + 60
		}
	}
	for _, pol := range []sched.ServePolicy{sched.FCFS{}, sched.SJF{}, sched.Priority{}, sched.Deadline{}} {
		t.Run(pol.Name(), func(t *testing.T) {
			served := runServer(t, cfg, pol, reqs)
			if len(served) != len(reqs) {
				t.Fatalf("served %d of %d requests", len(served), len(reqs))
			}
			prevFinish := 0.0
			for i, sv := range served {
				if sv.Rejected {
					t.Fatalf("request %d rejected under accept-all policy", i)
				}
				if sv.Start < sv.Arrival {
					t.Errorf("request %d: Start %v < Arrival %v", i, sv.Start, sv.Arrival)
				}
				if got := sv.Start - sv.Arrival; sv.QueueDelay != got {
					t.Errorf("request %d: QueueDelay %v != Start-Arrival %v", i, sv.QueueDelay, got)
				}
				if got := sv.Finish - sv.Arrival; math.Abs(sv.WallLatency-got) > 1e-12 {
					t.Errorf("request %d: WallLatency %v != Finish-Arrival %v", i, sv.WallLatency, got)
				}
				if sv.Finish < prevFinish {
					t.Errorf("request %d: Finish %v not monotone (prev %v)", i, sv.Finish, prevFinish)
				}
				prevFinish = sv.Finish
				if span := sv.Finish - sv.Start; span < sv.Latency-1e-9 {
					t.Errorf("request %d: service time %v exceeds residency span %v", i, sv.Latency, span)
				}
				if sv.Slices < 1 {
					t.Errorf("request %d: %d slices", i, sv.Slices)
				}
			}
		})
	}
}

// TestSJFLowerMeanQueueDelay is the headline property: on a 32-request
// Poisson open-loop stream with heterogeneous service demands, shortest-
// job-first achieves strictly lower mean queue delay than FCFS.
func TestSJFLowerMeanQueueDelay(t *testing.T) {
	cfg := serveConfig(t)
	reqs := poissonRequests(t, mixedProblems(t, 32), 0.5, 11)

	fcfs := Stats(runServer(t, cfg, sched.FCFS{}, reqs), 0)
	sjf := Stats(runServer(t, cfg, sched.SJF{}, reqs), 0)
	if sjf.MeanQueueDelay >= fcfs.MeanQueueDelay {
		t.Errorf("SJF mean queue delay %.3f not strictly below FCFS %.3f",
			sjf.MeanQueueDelay, fcfs.MeanQueueDelay)
	}
}

// TestPriorityPolicyServesHighFirst: in a simultaneous burst, strictly
// higher priorities start (and finish) first.
func TestPriorityPolicyServesHighFirst(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 4)
	reqs := make([]Request, len(probs))
	for i, p := range probs {
		reqs[i] = Request{Problem: p, Priority: i} // later requests more urgent
	}
	served := runServer(t, cfg, sched.Priority{}, reqs)
	// Completion order must be descending priority: 3, 2, 1, 0.
	for i, sv := range served {
		wantIdx := len(reqs) - 1 - i
		if sv.Result.Problem != probs[wantIdx] {
			t.Errorf("completion %d served problem %s/%d, want input index %d",
				i, sv.Result.Problem.Dataset, sv.Result.Problem.Index, wantIdx)
		}
	}
}

// TestDeadlinePolicyEDF: with arrivals in a burst, earlier deadlines are
// served first and no-deadline requests run last.
func TestDeadlinePolicyEDF(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 4)
	reqs := []Request{
		{Problem: probs[0]},                // no deadline: runs last
		{Problem: probs[1], Deadline: 300}, // third
		{Problem: probs[2], Deadline: 100}, // first
		{Problem: probs[3], Deadline: 200}, // second
	}
	served := runServer(t, cfg, sched.Deadline{}, reqs)
	wantOrder := []int{2, 3, 1, 0}
	for i, sv := range served {
		if sv.Result.Problem != probs[wantOrder[i]] {
			t.Errorf("completion %d served problem index %d of input, want %d",
				i, indexOf(probs, sv.Result.Problem), wantOrder[i])
		}
	}
}

func indexOf(probs []*workload.Problem, p *workload.Problem) int {
	for i := range probs {
		if probs[i] == p {
			return i
		}
	}
	return -1
}

// TestAdmissionLimitShedsLoad: a burst beyond MaxInFlight is rejected and
// reported, and shed requests carry no Result.
func TestAdmissionLimitShedsLoad(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 6)
	reqs := make([]Request, len(probs))
	for i, p := range probs {
		reqs[i] = Request{Problem: p} // all arrive at t=0
	}
	pol := sched.AdmissionLimit{Inner: sched.FCFS{}, MaxInFlight: 2}
	served := runServer(t, cfg, pol, reqs)
	if len(served) != len(reqs) {
		t.Fatalf("got %d results, want %d", len(served), len(reqs))
	}
	rejected := 0
	for _, sv := range served {
		if sv.Rejected {
			rejected++
			if sv.Result != nil {
				t.Error("rejected request carries a Result")
			}
		} else if sv.Result == nil {
			t.Error("served request missing its Result")
		}
	}
	if rejected != 4 {
		t.Errorf("rejected %d of a 6-burst with MaxInFlight=2, want 4", rejected)
	}
}

// TestClosedLoopGatesArrivals: under a fixed-concurrency closed loop,
// request k (beyond the initial window) arrives exactly think seconds
// after the (k−C)-th completion.
func TestClosedLoopGatesArrivals(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 6)
	const conc, think = 2, 1.5
	srv, err := NewServerWithPolicy(cfg, sched.FCFS{})
	if err != nil {
		t.Fatal(err)
	}
	served, err := srv.RunClosedLoop(probs, workload.ClosedLoop{Concurrency: conc, Think: think})
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(probs) {
		t.Fatalf("served %d of %d closed-loop requests", len(served), len(probs))
	}
	finishes := make([]float64, len(served)) // completion order
	for i, sv := range served {
		finishes[i] = sv.Finish
	}
	arrivals := make([]float64, len(served))
	for i, sv := range served {
		arrivals[i] = sv.Arrival
	}
	sort.Float64s(arrivals)
	for k := 0; k < len(arrivals); k++ {
		if k < conc {
			if arrivals[k] != 0 {
				t.Errorf("initial request %d arrives at %v, want 0", k, arrivals[k])
			}
			continue
		}
		want := finishes[k-conc] + think
		if math.Abs(arrivals[k]-want) > 1e-9 {
			t.Errorf("request %d arrives at %v, want completion %d + think = %v",
				k, arrivals[k], k-conc, want)
		}
	}
}

// TestClosedLoopSurvivesAdmissionRejection: a rejection must not retire
// a closed-loop client slot — the client issues its next request after
// its think time, so every problem in the stream is eventually reported
// (served or rejected) even when MaxInFlight < Concurrency.
func TestClosedLoopSurvivesAdmissionRejection(t *testing.T) {
	cfg := serveConfig(t)
	probs := mixedProblems(t, 6)
	pol := sched.AdmissionLimit{Inner: sched.FCFS{}, MaxInFlight: 2}
	srv, err := NewServerWithPolicy(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	// Think must exceed typical service time so capacity frees up between
	// a client's rejection and its next attempt.
	served, err := srv.RunClosedLoop(probs, workload.ClosedLoop{Concurrency: 3, Think: 25})
	if err != nil {
		t.Fatal(err)
	}
	if len(served) != len(probs) {
		t.Fatalf("reported %d of %d requests (rejected clients must keep issuing)", len(served), len(probs))
	}
	servedN, rejectedN := 0, 0
	for _, sv := range served {
		if sv.Rejected {
			rejectedN++
		} else {
			servedN++
		}
	}
	if rejectedN == 0 {
		t.Error("expected at least one rejection with MaxInFlight 2 < Concurrency 3")
	}
	if servedN < 3 {
		t.Errorf("served only %d requests; freed capacity should re-admit fed requests", servedN)
	}
}

// TestServerDeterminism: equal seeds give bit-identical served streams,
// for every policy.
func TestServerDeterminism(t *testing.T) {
	cfg := serveConfig(t)
	reqs := poissonRequests(t, mixedProblems(t, 8), 0.5, 11)
	for _, mk := range []func() sched.ServePolicy{
		func() sched.ServePolicy { return sched.FCFS{} },
		func() sched.ServePolicy { return sched.SJF{} },
	} {
		a := runServer(t, cfg, mk(), reqs)
		b := runServer(t, cfg, mk(), reqs)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("policy %s: repeated runs differ", mk().Name())
		}
	}
}

func BenchmarkServePoisson(b *testing.B) {
	pol, err := search.New(search.BeamSearch, 8, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := Config{
		GPU:            hw.RTX4090,
		Generator:      model.Qwen25Math1_5B,
		GenSkill:       workload.SkillQwen1_5B,
		Verifier:       model.SkyworkPRM1_5B,
		VerSkill:       workload.SkillSkywork1_5B,
		MemoryFraction: 0.4,
		Policy:         pol,
		Opts:           FastTTSOptions(),
		Seed:           42,
	}
	aime := workload.NewDataset(workload.AIME24, rng.New(7))
	times := workload.PoissonArrivals(8, 0.5, rng.New(11).Child("arrivals"))
	reqs := make([]Request, 8)
	for i := range reqs {
		reqs[i] = Request{Problem: aime.Problems[i], Arrival: times[i]}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := NewServerWithPolicy(cfg, sched.SJF{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := srv.Run(reqs); err != nil {
			b.Fatal(err)
		}
	}
}

// TestStatsDegenerateStreams locks the engine-level zero-value contract:
// empty and all-rejected served streams reduce to zero-valued, finite
// aggregates (the public Server.Stats and FleetRun.Stats contracts build
// on this one).
func TestStatsDegenerateStreams(t *testing.T) {
	rej := func(at float64) ServedResult {
		return ServedResult{Arrival: at, Start: at, Finish: at, Rejected: true}
	}
	cases := []struct {
		name   string
		served []ServedResult
		slo    float64
		want   metrics.ServeStats
	}{
		{name: "nil no SLO", want: metrics.ServeStats{SLOAttainment: 1}},
		{name: "nil with SLO", slo: 5, want: metrics.ServeStats{SLOAttainment: 1}},
		{
			name:   "all rejected with SLO",
			served: []ServedResult{rej(0), rej(1)},
			slo:    5,
			want:   metrics.ServeStats{Rejected: 2, SLOAttainment: 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Stats(tc.served, tc.slo)
			if got != tc.want {
				t.Errorf("got %+v\nwant %+v", got, tc.want)
			}
			v := reflect.ValueOf(got)
			for i := 0; i < v.NumField(); i++ {
				if v.Field(i).Kind() == reflect.Float64 {
					if x := v.Field(i).Float(); math.IsNaN(x) || math.IsInf(x, 0) {
						t.Errorf("field %s = %v, want finite", v.Type().Field(i).Name, x)
					}
				}
			}
		})
	}
}
