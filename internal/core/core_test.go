package core

import (
	"math"
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/metrics"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/search"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// testConfig returns the memory-constrained 1.5B+1.5B deployment (§6.1).
func testConfig(t *testing.T, pol search.Policy, opts Options) Config {
	t.Helper()
	return Config{
		GPU:            hw.RTX4090,
		Generator:      model.Qwen25Math1_5B,
		GenSkill:       workload.SkillQwen1_5B,
		Verifier:       model.SkyworkPRM1_5B,
		VerSkill:       workload.SkillSkywork1_5B,
		MemoryFraction: 0.4,
		Policy:         pol,
		Opts:           opts,
		Seed:           42,
	}
}

func aimeProblem(t *testing.T, idx int) *workload.Problem {
	t.Helper()
	return workload.NewDataset(workload.AIME24, rng.New(7)).Problems[idx]
}

func solveOne(t *testing.T, cfg Config, p *workload.Problem) *Result {
	t.Helper()
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSolveSmoke(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	res := solveOne(t, testConfig(t, pol, FastTTSOptions()), aimeProblem(t, 0))
	if len(res.Finished) == 0 {
		t.Fatal("no finished paths")
	}
	if res.Latency <= 0 || res.Goodput <= 0 {
		t.Errorf("latency=%v goodput=%v", res.Latency, res.Goodput)
	}
	if res.Iterations < 1 {
		t.Errorf("iterations = %d", res.Iterations)
	}
	for _, f := range res.Finished {
		if f.Tokens <= 0 || f.Steps <= 0 {
			t.Errorf("degenerate path %+v", f)
		}
		if f.CompletedAt <= 0 || f.CompletedAt > res.Latency {
			t.Errorf("completion time %v outside (0, %v]", f.CompletedAt, res.Latency)
		}
	}
}

func TestLatencyBreakdownSums(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 32, 4)
	for _, opts := range []Options{BaselineOptions(), FastTTSOptions()} {
		res := solveOne(t, testConfig(t, pol, opts), aimeProblem(t, 1))
		sum := res.GenTime + res.VerTime + res.TransferTime
		if math.Abs(sum-res.Latency) > 1e-6*res.Latency {
			t.Errorf("breakdown %v + %v + %v = %v != latency %v",
				res.GenTime, res.VerTime, res.TransferTime, sum, res.Latency)
		}
	}
}

func TestDeterminism(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	cfg := testConfig(t, pol, FastTTSOptions())
	p := aimeProblem(t, 2)
	a := solveOne(t, cfg, p)
	b := solveOne(t, cfg, p)
	if a.Latency != b.Latency || a.Goodput != b.Goodput {
		t.Errorf("non-deterministic timing: %v vs %v", a.Latency, b.Latency)
	}
	if len(a.Finished) != len(b.Finished) {
		t.Fatalf("finished counts differ: %d vs %d", len(a.Finished), len(b.Finished))
	}
	for i := range a.Finished {
		if a.Finished[i] != b.Finished[i] {
			t.Fatalf("path %d differs: %+v vs %+v", i, a.Finished[i], b.Finished[i])
		}
	}
}

// The central §4.1 guarantee: FastTTS's optimizations change timing only.
// The search trajectory — every path's steps, token counts, answers, and
// scores — is identical with all optimizations on or off.
func TestAlgorithmicEquivalence(t *testing.T) {
	for _, alg := range []search.Algorithm{
		search.BeamSearch, search.DVTS, search.DynamicBranching,
		search.VaryingGranularity, search.BestOfN,
	} {
		pol, err := search.New(alg, 16, 4)
		if err != nil {
			t.Fatal(err)
		}
		p := aimeProblem(t, 3)
		base := solveOne(t, testConfig(t, pol, BaselineOptions()), p)
		fast := solveOne(t, testConfig(t, pol, FastTTSOptions()), p)
		if len(base.Finished) != len(fast.Finished) {
			t.Fatalf("%s: finished %d vs %d", alg, len(base.Finished), len(fast.Finished))
		}
		for i := range base.Finished {
			bp, fp := base.Finished[i], fast.Finished[i]
			if bp.BeamID != fp.BeamID || bp.Steps != fp.Steps ||
				bp.Tokens != fp.Tokens || bp.Answer != fp.Answer ||
				bp.Score != fp.Score {
				t.Fatalf("%s: path %d diverged:\nbase %+v\nfast %+v", alg, i, bp, fp)
			}
		}
		if fast.Latency >= base.Latency {
			t.Errorf("%s: FastTTS latency %v not below baseline %v", alg, fast.Latency, base.Latency)
		}
	}
}

func TestFastTTSBeatsBaseline(t *testing.T) {
	// The headline result (Fig 12): goodput improves at every n, more at
	// larger n.
	p := aimeProblem(t, 0)
	prevGain := 0.0
	for _, n := range []int{8, 64, 256} {
		pol, _ := search.New(search.BeamSearch, n, 4)
		base := solveOne(t, testConfig(t, pol, BaselineOptions()), p)
		fast := solveOne(t, testConfig(t, pol, FastTTSOptions()), p)
		gain := fast.Goodput / base.Goodput
		if gain < 1.05 {
			t.Errorf("n=%d: goodput gain %.2fx below threshold", n, gain)
		}
		cut := 1 - fast.Latency/base.Latency
		if cut < 0.05 {
			t.Errorf("n=%d: latency cut %.0f%% too small", n, 100*cut)
		}
		_ = prevGain
		prevGain = gain
	}
}

func TestAblationMonotonicity(t *testing.T) {
	// Fig 16: enabling P, then M, then S improves goodput cumulatively.
	p := aimeProblem(t, 1)
	pol, _ := search.New(search.BeamSearch, 128, 4)
	opts := []Options{
		BaselineOptions(),
		{PrefixAware: true, GeneratorPrefixCache: true, VerifierPrefixCache: true, StaticVerifierFrac: 0.5},
		{PrefixAware: true, GeneratorPrefixCache: true, VerifierPrefixCache: true, AsymmetricMemory: true, StaticVerifierFrac: 0.5},
		FastTTSOptions(),
	}
	var goodputs []float64
	for _, o := range opts {
		res := solveOne(t, testConfig(t, pol, o), p)
		goodputs = append(goodputs, res.Goodput)
	}
	for i := 1; i < len(goodputs); i++ {
		if goodputs[i] < goodputs[i-1]*0.98 { // small tolerance for noise
			t.Errorf("ablation step %d regressed: %.2f -> %.2f (all: %v)",
				i, goodputs[i-1], goodputs[i], goodputs)
		}
	}
	if goodputs[len(goodputs)-1] <= goodputs[0] {
		t.Errorf("full FastTTS %.2f not above baseline %.2f", goodputs[3], goodputs[0])
	}
}

func TestSpeculationStats(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 32, 4)
	fast := solveOne(t, testConfig(t, pol, FastTTSOptions()), aimeProblem(t, 4))
	if fast.SpecTokens == 0 {
		t.Error("no speculative tokens decoded")
	}
	if fast.SpecRetained > fast.SpecTokens {
		t.Errorf("retained %d > decoded %d", fast.SpecRetained, fast.SpecTokens)
	}
	if fast.SpecRetained == 0 {
		t.Error("no speculative tokens retained: speculation is useless")
	}
	base := solveOne(t, testConfig(t, pol, BaselineOptions()), aimeProblem(t, 4))
	if base.SpecTokens != 0 {
		t.Errorf("baseline decoded %d speculative tokens", base.SpecTokens)
	}
}

func TestPreemptionStopsSpeculation(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 32, 4)
	cfg := testConfig(t, pol, FastTTSOptions())
	r, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.SolveWithPreemption(aimeProblem(t, 4), func(float64) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecTokens != 0 {
		t.Errorf("speculation ran despite permanent preemption: %d tokens", res.SpecTokens)
	}
	// Preemption from t=5s onward: some speculation happens before.
	res2, err := r.SolveWithPreemption(aimeProblem(t, 4), func(now float64) bool { return now > 5 })
	if err != nil {
		t.Fatal(err)
	}
	if res2.SpecTokens == 0 {
		t.Error("no speculation before the preemption point")
	}
}

func TestBestOfNSingleIteration(t *testing.T) {
	pol, _ := search.New(search.BestOfN, 16, 1)
	res := solveOne(t, testConfig(t, pol, BaselineOptions()), aimeProblem(t, 0))
	if res.Iterations != 1 {
		t.Errorf("BoN iterations = %d, want 1", res.Iterations)
	}
	if len(res.Finished) != 16 {
		t.Errorf("BoN finished = %d, want 16", len(res.Finished))
	}
}

func TestBeamSearchPathConservation(t *testing.T) {
	// Beam search's working width decays into the finished pool: the
	// total collected paths stay near n.
	for _, n := range []int{16, 64} {
		pol, _ := search.New(search.BeamSearch, n, 4)
		res := solveOne(t, testConfig(t, pol, FastTTSOptions()), aimeProblem(t, 5))
		if len(res.Finished) < n*9/10 || len(res.Finished) > n*2 {
			t.Errorf("n=%d: finished %d outside [0.9n, 2n]", n, len(res.Finished))
		}
	}
}

func TestVerifierHeavyConfig(t *testing.T) {
	// 1.5B+7B (§6.1): the 7B verifier dominates latency at larger n on
	// the baseline, and FastTTS cuts verifier time hard (Fig 13).
	pol, _ := search.New(search.BeamSearch, 64, 4)
	cfg := Config{
		GPU:            hw.RTX4090,
		Generator:      model.Qwen25Math1_5B,
		GenSkill:       workload.SkillQwen1_5B,
		Verifier:       model.ShepherdPRM7B,
		VerSkill:       workload.SkillShepherd7B,
		MemoryFraction: 0.9,
		Policy:         pol,
		Seed:           42,
	}
	cfg.Opts = BaselineOptions()
	rb, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	base, err := rb.Solve(aimeProblem(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Opts = FastTTSOptions()
	rf, err := NewRunner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := rf.Solve(aimeProblem(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if base.VerTime < base.GenTime {
		t.Logf("note: baseline verifier %v < generator %v at n=64", base.VerTime, base.GenTime)
	}
	verCut := 1 - fast.VerTime/base.VerTime
	if verCut < 0.4 {
		t.Errorf("verifier latency cut %.0f%%, want >= 40%% (paper: 75-85%%)", 100*verCut)
	}
}

func TestOffloadOn8GBGPU(t *testing.T) {
	// RTX 3070 Ti + 1.5B pair: weights alone eat most of 8 GB; the
	// offload path must engage and still complete (Fig 15).
	pol, _ := search.New(search.BeamSearch, 16, 4)
	opts := FastTTSOptions()
	opts.AllowOffload = true
	cfg := Config{
		GPU:            hw.RTX3070Ti,
		Generator:      model.Qwen25Math1_5B,
		GenSkill:       workload.SkillQwen1_5B,
		Verifier:       model.SkyworkPRM1_5B,
		VerSkill:       workload.SkillSkywork1_5B,
		MemoryFraction: 0.95,
		ReservedBytes:  256 << 20,
		Policy:         pol,
		Opts:           opts,
		Seed:           42,
	}
	res := solveOne(t, cfg, aimeProblem(t, 0))
	if len(res.Finished) == 0 {
		t.Fatal("no finished paths on constrained GPU")
	}
}

func TestMemoryBudgetValidation(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 8, 4)
	cfg := Config{
		GPU:            hw.RTX3070Ti,
		Generator:      model.Qwen25Math7B, // 15.2 GB weights > 8 GB VRAM
		Verifier:       model.SkyworkPRM1_5B,
		MemoryFraction: 0.9,
		Policy:         pol,
		Opts:           BaselineOptions(),
	}
	if _, err := NewRunner(cfg); err == nil {
		t.Error("expected error: weights exceed VRAM")
	}
	cfg2 := testConfig(t, nil, BaselineOptions())
	if _, err := NewRunner(cfg2); err == nil {
		t.Error("expected error: nil policy")
	}
}

func TestTruncationRatioValidation(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 8, 4)
	opts := FastTTSOptions()
	opts.TruncationRatio = 1.5
	cfg := testConfig(t, pol, opts)
	if _, err := NewRunner(cfg); err == nil {
		t.Error("expected error for R > 1")
	}
}

func TestTruncationRatioAffectsGoodput(t *testing.T) {
	// Fig 17 right: R=0.85 retains more speculative work than R=0 and
	// yields higher goodput.
	pol, _ := search.New(search.BeamSearch, 128, 4)
	p := aimeProblem(t, 0)
	r0 := FastTTSOptions()
	r0.TruncationRatio = 0
	r85 := FastTTSOptions()
	res0 := solveOne(t, testConfig(t, pol, r0), p)
	res85 := solveOne(t, testConfig(t, pol, r85), p)
	if res85.SpecRetained <= res0.SpecRetained {
		t.Errorf("R=0.85 retained %d <= R=0 retained %d",
			res85.SpecRetained, res0.SpecRetained)
	}
	if res85.Goodput < res0.Goodput*0.95 {
		t.Errorf("R=0.85 goodput %.2f well below R=0 %.2f", res85.Goodput, res0.Goodput)
	}
}

func TestKVBudgetOverride(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 32, 4)
	cfg := testConfig(t, pol, FastTTSOptions())
	cfg.KVBudgetOverride = 1 << 30
	small := solveOne(t, cfg, aimeProblem(t, 0))
	cfg.KVBudgetOverride = 8 << 30
	big := solveOne(t, cfg, aimeProblem(t, 0))
	if big.Latency > small.Latency*1.02 {
		t.Errorf("more KV memory increased latency: %v -> %v", small.Latency, big.Latency)
	}
}

func TestRecorderPhases(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	rec := &trace.Recorder{}
	cfg := testConfig(t, pol, BaselineOptions())
	cfg.Recorder = rec
	solveOne(t, cfg, aimeProblem(t, 0))
	if rec.PhaseTime(trace.PhaseGenerate) <= 0 {
		t.Error("no generate-phase samples recorded")
	}
	if rec.PhaseTime(trace.PhaseVerify) <= 0 {
		t.Error("no verify-phase samples recorded")
	}
}

func TestGoodputMatchesMetricsPackage(t *testing.T) {
	pol, _ := search.New(search.BeamSearch, 16, 4)
	res := solveOne(t, testConfig(t, pol, FastTTSOptions()), aimeProblem(t, 0))
	want := metrics.PreciseGoodput(res.PathResults())
	if math.Abs(res.Goodput-want) > 1e-12 {
		t.Errorf("goodput %v != metrics %v", res.Goodput, want)
	}
}

func TestDVTSAndDynamicBranchingComplete(t *testing.T) {
	for _, alg := range []search.Algorithm{search.DVTS, search.DynamicBranching, search.VaryingGranularity} {
		pol, err := search.New(alg, 32, 4)
		if err != nil {
			t.Fatal(err)
		}
		res := solveOne(t, testConfig(t, pol, FastTTSOptions()), aimeProblem(t, 6))
		if len(res.Finished) == 0 {
			t.Errorf("%s: no finished paths", alg)
		}
	}
}

func TestVaryingGranularityFineEarlySteps(t *testing.T) {
	// VG's 64-token caps make early steps non-terminal (a capped thought
	// continues), so no path can finish before step 4 and the search
	// needs at least 4 iterations.
	vg, _ := search.New(search.VaryingGranularity, 16, 4)
	res := solveOne(t, testConfig(t, vg, FastTTSOptions()), aimeProblem(t, 0))
	if res.Iterations < 4 {
		t.Errorf("VG iterations = %d, want >= 4", res.Iterations)
	}
	// Most paths need several fine-grained steps; short sampled thoughts
	// (<64 tokens) may still terminate early, so check the median.
	early := 0
	for _, f := range res.Finished {
		if f.Steps < 4 {
			early++
		}
	}
	if early > len(res.Finished)/2 {
		t.Errorf("%d/%d paths finished before step 4", early, len(res.Finished))
	}
}
