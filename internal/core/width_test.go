package core

import (
	"testing"

	"fasttts/internal/sched"
	"fasttts/internal/search"
)

// configWithWidth is serveConfig with an explicit beam width.
func configWithWidth(t *testing.T, n int) Config {
	t.Helper()
	pol, err := search.New(search.BeamSearch, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return testConfig(t, pol, FastTTSOptions())
}

// TestWidthOverrideMatchesNarrowDeployment is the budget governor's
// correctness anchor: serving a request at Width w on a width-W server
// must be bit-identical to serving it on a server deployed at width w —
// the override changes only n, nothing else about the search.
func TestWidthOverrideMatchesNarrowDeployment(t *testing.T) {
	probs := mixedProblems(t, 6)
	reqs := poissonRequests(t, probs, 0.4, 11)
	for i := range reqs {
		reqs[i].Tag = i
		reqs[i].Width = 4
	}
	overridden := runServer(t, configWithWidth(t, 8), sched.FCFS{}, reqs)

	narrow := make([]Request, len(reqs))
	copy(narrow, reqs)
	for i := range narrow {
		narrow[i].Width = 0
	}
	native := runServer(t, configWithWidth(t, 4), sched.FCFS{}, narrow)

	if len(overridden) != len(native) {
		t.Fatalf("%d vs %d results", len(overridden), len(native))
	}
	for i := range overridden {
		a, b := overridden[i], native[i]
		if a.Width != 4 {
			t.Errorf("result %d served at width %d, want 4", i, a.Width)
		}
		if a.Finish != b.Finish || a.Start != b.Start || a.UsefulTokens != b.UsefulTokens ||
			a.Slices != b.Slices || a.Tag != b.Tag {
			t.Errorf("result %d diverges: override %+v vs native %+v", i,
				servedSummary(a), servedSummary(b))
		}
	}
}

// servedSummary flattens the comparable telemetry for test failure
// output.
func servedSummary(sv ServedResult) map[string]any {
	return map[string]any{
		"start": sv.Start, "finish": sv.Finish, "tokens": sv.UsefulTokens,
		"slices": sv.Slices, "width": sv.Width, "tag": sv.Tag,
	}
}

// TestWidthOverrideSemantics pins the clamping rules: zero and oversize
// overrides are no-ops, and estimates shrink with the width.
func TestWidthOverrideSemantics(t *testing.T) {
	cfg := configWithWidth(t, 8)
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := mixedProblems(t, 1)[0]
	full := srv.estimateWork(Request{Problem: p})
	if got := srv.estimateWork(Request{Problem: p, Width: 16}); got != full {
		t.Errorf("oversize override changed the estimate: %v vs %v", got, full)
	}
	halved := srv.estimateWork(Request{Problem: p, Width: 4})
	if halved >= full {
		t.Errorf("width 4 estimate %v not below width 8 estimate %v", halved, full)
	}
	if want := sched.EstimateDemand(p, 4); halved != want {
		t.Errorf("estimate %v, want EstimateDemand at width 4 = %v", halved, want)
	}
	if got := srv.effectiveWidth(Request{Problem: p, Width: -3}); got != 8 {
		t.Errorf("negative override gave width %d, want 8", got)
	}
}

// TestWidthOverrideZeroIsIdentical asserts the zero value is inert: a
// stream with Width 0 everywhere reproduces the pre-override engine
// bit-identically (the golden-trace safety property).
func TestWidthOverrideZeroIsIdentical(t *testing.T) {
	probs := mixedProblems(t, 4)
	reqs := poissonRequests(t, probs, 0.5, 3)
	a := runServer(t, serveConfig(t), sched.SJF{}, reqs)
	b := runServer(t, serveConfig(t), sched.SJF{}, reqs)
	for i := range a {
		if a[i].Start != b[i].Start || a[i].Finish != b[i].Finish || a[i].UsefulTokens != b[i].UsefulTokens {
			t.Fatalf("result %d not reproducible", i)
		}
		if !a[i].Rejected && a[i].Width != serveConfig(t).Policy.Width() {
			t.Errorf("result %d Width = %d, want policy width", i, a[i].Width)
		}
	}
}

// TestWithWidthClamps covers the search-side constructor used by the
// governor.
func TestWithWidthClamps(t *testing.T) {
	for _, alg := range []search.Algorithm{search.BeamSearch, search.DVTS, search.BestOfN} {
		pol, err := search.New(alg, 8, 4)
		if err != nil {
			t.Fatal(err)
		}
		narrowed, err := search.WithWidth(pol, 2)
		if err != nil {
			t.Fatalf("%s: %v", alg, err)
		}
		want := 2
		if alg == search.DVTS {
			want = 4 // clamped to the branch factor
		}
		if narrowed.Width() != want {
			t.Errorf("%s narrowed to %d, want %d", alg, narrowed.Width(), want)
		}
		if narrowed.Name() != pol.Name() || narrowed.BranchFactor() != pol.BranchFactor() {
			t.Errorf("%s: narrowing changed the algorithm", alg)
		}
		same, err := search.WithWidth(pol, 8)
		if err != nil || same != pol {
			t.Errorf("%s: same-width narrowing did not return the policy unchanged", alg)
		}
	}
	if got := search.DegradedWidth(16, 0); got != 16 {
		t.Errorf("DegradedWidth(16, 0) = %d", got)
	}
	if got := search.DegradedWidth(16, 2); got != 4 {
		t.Errorf("DegradedWidth(16, 2) = %d", got)
	}
	if got := search.DegradedWidth(2, 5); got != 1 {
		t.Errorf("DegradedWidth(2, 5) = %d", got)
	}
}
