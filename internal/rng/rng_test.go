package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42).Child("x").Child("y")
	b := New(42).Child("x").Child("y")
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestChildIndependentOfParentConsumption(t *testing.T) {
	p1 := New(7)
	p2 := New(7)
	for i := 0; i < 50; i++ {
		p2.Float64() // consume from one parent only
	}
	c1 := p1.Child("leaf")
	c2 := p2.Child("leaf")
	for i := 0; i < 20; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("child stream depends on parent consumption")
		}
	}
}

func TestDistinctLabelsDistinctStreams(t *testing.T) {
	root := New(1)
	a := root.Child("a")
	b := root.Child("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for distinct labels look identical (%d/64 collisions)", same)
	}
}

func TestDistinctSeedsDistinctStreams(t *testing.T) {
	if New(1).Uint64() == New(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMoments(t *testing.T) {
	s := New(3)
	const n = 20000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.Norm(5, 2)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("mean = %.3f, want ~5", mean)
	}
	if math.Abs(std-2) > 0.1 {
		t.Errorf("std = %.3f, want ~2", std)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(4)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(3, 1); v <= 0 {
			t.Fatalf("lognormal sample %v not positive", v)
		}
	}
}

func TestNormClamped(t *testing.T) {
	s := New(5)
	for i := 0; i < 1000; i++ {
		v := s.NormClamped(0.5, 10, 0, 1)
		if v < 0 || v > 1 {
			t.Fatalf("clamped value %v outside [0,1]", v)
		}
	}
}

func TestZipfBounds(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(seed)
		for n := 1; n <= 10; n++ {
			k := s.Zipf(n, 1.2)
			if k < 0 || k >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkewsLow(t *testing.T) {
	s := New(6)
	counts := make([]int, 8)
	for i := 0; i < 8000; i++ {
		counts[s.Zipf(8, 1.5)]++
	}
	if counts[0] <= counts[7] {
		t.Errorf("zipf not skewed: counts[0]=%d counts[7]=%d", counts[0], counts[7])
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestBoolProbability(t *testing.T) {
	s := New(9)
	hits := 0
	for i := 0; i < 10000; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / 10000
	if p < 0.27 || p > 0.33 {
		t.Errorf("Bool(0.3) frequency %.3f", p)
	}
}

func TestPathLabel(t *testing.T) {
	s := New(1).Child("a").Child("b")
	if got := s.Path(); got != "/a/b" {
		t.Errorf("Path() = %q, want %q", got, "/a/b")
	}
}
