// Package rng provides deterministic, splittable random number streams.
//
// Every stochastic component of the simulator draws from a Stream derived
// from a single root seed and a label path (for example
// "problem/aime24/7/beam/3"). Two runs with the same root seed therefore
// produce bit-identical results, and changing the sampling order in one
// component cannot perturb another — a property the algorithmic-equivalence
// tests rely on.
//
// A Stream is single-owner mutable state: it is not safe for concurrent
// use, and its outputs depend on the call sequence. Components that run
// on parallel workers (the sharded fleet engine's device loops) each own
// their private streams, derived once at construction; fleet-global
// streams (the router's, the controller's) live on the driver goroutine
// and are advanced only by the deterministic event order — which is how
// parallel execution reproduces sequential runs bit for bit.
package rng

import (
	"math"
	"math/rand/v2"
	"strconv"
)

// FNV-1a 64-bit constants (hash/fnv), inlined so stream derivation needs
// no hasher allocation and no materialized path strings: because FNV-1a
// consumes bytes sequentially, each stream carries its hash state and a
// child extends it with just the separator and label bytes — the exact
// hash the old full-path rehash produced, at O(label) cost.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return h
}

// Stream is a deterministic random stream. The zero value is not usable;
// construct streams with New or Stream.Child.
type Stream struct {
	seed  uint64
	hash  uint64  // FNV-1a state over seed bytes + label path
	label string  // this stream's own path segment ("" for the root)
	up    *Stream // parent, for lazy Path reconstruction
	pcg   rand.PCG
	rand  *rand.Rand
}

// New returns the root stream for the given seed.
func New(seed uint64) *Stream {
	h := uint64(fnvOffset64)
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(seed>>(8*i)))
	}
	return fromState(seed, h, "", nil)
}

// fromState finishes a derivation: h is the FNV-1a state over the seed
// bytes and full label path. A second, independent word is drawn for the
// PCG state by extending the hash with a fixed suffix.
func fromState(seed, h uint64, label string, up *Stream) *Stream {
	s1 := h
	s2 := fnvByte(fnvByte(fnvByte(fnvByte(h, 0x9e), 0x37), 0x79), 0xb9)
	s := &Stream{seed: seed, hash: h, label: label, up: up}
	s.pcg = *rand.NewPCG(s1, s2)
	s.rand = rand.New(&s.pcg)
	return s
}

// Child derives an independent stream for the given label. Children with
// distinct labels are statistically independent; the same label always
// yields the same stream regardless of how many values the parent has
// consumed.
func (s *Stream) Child(label string) *Stream {
	return fromState(s.seed, fnvString(fnvByte(s.hash, '/'), label), label, s)
}

// ChildN is Child(label + "/" + decimal n) without building the label
// string — the allocation-free spelling of the hot indexed derivations
// (per-problem, per-beam, per-request streams).
func (s *Stream) ChildN(label string, n int) *Stream {
	h := fnvString(fnvByte(s.hash, '/'), label)
	h = fnvByte(h, '/')
	var buf [20]byte
	for _, b := range strconv.AppendInt(buf[:0], int64(n), 10) {
		h = fnvByte(h, b)
	}
	return fromState(s.seed, h, label, s)
}

// Path returns the label path of the stream (for diagnostics). It is
// reconstructed lazily from the parent chain; indexed segments from
// ChildN omit the index.
func (s *Stream) Path() string {
	if s.up == nil {
		return s.label
	}
	return s.up.Path() + "/" + s.label
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.rand.Float64() }

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (s *Stream) IntN(n int) int { return s.rand.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.rand.Uint64() }

// Norm returns a normally distributed value with the given mean and
// standard deviation.
func (s *Stream) Norm(mean, stddev float64) float64 {
	return mean + stddev*s.rand.NormFloat64()
}

// LogNormal returns a lognormally distributed value: exp(N(mu, sigma)).
// mu and sigma are the parameters of the underlying normal.
func (s *Stream) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Norm(mu, sigma))
}

// NormClamped returns a normal sample clamped into [lo, hi].
func (s *Stream) NormClamped(mean, stddev, lo, hi float64) float64 {
	v := s.Norm(mean, stddev)
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}

// Exp returns an exponentially distributed value with the given rate
// (mean 1/rate). It panics if rate <= 0.
func (s *Stream) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: non-positive exponential rate")
	}
	return -math.Log(1-s.rand.Float64()) / rate
}

// Bool returns true with probability p.
func (s *Stream) Bool(p float64) bool { return s.rand.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.rand.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.rand.Shuffle(n, swap) }

// Zipf returns a Zipf-ish sample over [0, n): index k is drawn with
// probability proportional to 1/(k+1)^a. Used to scatter wrong answers so
// that majority voting is meaningful.
func (s *Stream) Zipf(n int, a float64) int {
	if n <= 1 {
		return 0
	}
	// Inverse-CDF over the (small) discrete support.
	total := 0.0
	for k := 0; k < n; k++ {
		total += 1 / math.Pow(float64(k+1), a)
	}
	u := s.Float64() * total
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1 / math.Pow(float64(k+1), a)
		if u < acc {
			return k
		}
	}
	return n - 1
}
