package search

import (
	"math"
	"sort"

	"fasttts/internal/rng"
)

// MCTS is the Monte-Carlo-tree-search-style method of Fig 2's taxonomy.
// The paper excludes it from FastTTS's target pattern because multi-step
// lookahead "introduces significant sampling and latency overhead with
// inferior accuracy" (§2.2); it is implemented here as a comparison
// baseline so that claim is checkable.
const MCTS Algorithm = "MCTS"

// mcts runs a UCT-flavoured selection over root subtrees: each iteration
// the candidate pool is scored, per-subtree value statistics are updated,
// and the branching budget is allocated to subtrees by upper-confidence
// bound — so unlike beam search, under-explored subtrees keep receiving
// budget even when their current scores lag.
type mcts struct {
	n, b int
	// exploration constant of the UCB term.
	c float64
	// per-subtree statistics, accumulated across Select calls.
	visits map[int]int
	value  map[int]float64
	total  int
}

func newMCTS(n, b int) *mcts {
	return &mcts{
		n: n, b: b, c: 1.0,
		visits: map[int]int{},
		value:  map[int]float64{},
	}
}

func (p *mcts) Name() string             { return string(MCTS) }
func (p *mcts) Width() int               { return p.n }
func (p *mcts) BranchFactor() int        { return p.b }
func (p *mcts) StepBudget(int) int       { return DefaultStepBudget }
func (p *mcts) UsesVerifier() bool       { return true }
func (p *mcts) InitialSubtree(i int) int { return i / p.b }

// ucb returns the upper confidence bound of a subtree.
func (p *mcts) ucb(subtree int) float64 {
	v := p.visits[subtree]
	if v == 0 {
		return math.Inf(1)
	}
	mean := p.value[subtree] / float64(v)
	return mean + p.c*math.Sqrt(math.Log(float64(p.total+1))/float64(v))
}

// Select backs up the candidates' scores into their subtrees, then
// allocates the next width across subtrees by UCB: the winning subtree's
// best candidate branches wider.
func (p *mcts) Select(cands []Candidate, _ *rng.Stream) []Branch {
	if len(cands) == 0 {
		return nil
	}
	// Backpropagation: fold this round's scores into subtree statistics.
	bySubtree := map[int][]Candidate{}
	var subtrees []int
	for _, c := range cands {
		if _, ok := bySubtree[c.Subtree]; !ok {
			subtrees = append(subtrees, c.Subtree)
		}
		bySubtree[c.Subtree] = append(bySubtree[c.Subtree], c)
		p.visits[c.Subtree]++
		p.value[c.Subtree] += c.Score
		p.total++
	}
	sort.Ints(subtrees)
	// Allocation: rank live subtrees by UCB; each keeps its local best
	// candidate, and branching budget is distributed front-loaded so
	// high-UCB subtrees expand more.
	sort.SliceStable(subtrees, func(i, j int) bool {
		ui, uj := p.ucb(subtrees[i]), p.ucb(subtrees[j])
		if ui != uj {
			return ui > uj
		}
		return subtrees[i] < subtrees[j]
	})
	budget := len(cands)
	out := make([]Branch, 0, len(subtrees))
	remaining := budget
	for idx, st := range subtrees {
		group := bySubtree[st]
		best := group[0]
		for _, c := range group[1:] {
			if c.Score > best.Score || (c.Score == best.Score && c.ID < best.ID) {
				best = c
			}
		}
		// Front-loaded budget: the top-ranked subtree gets up to 2B
		// children, the tail at least 1, never exceeding the budget.
		share := p.b
		if idx == 0 {
			share = 2 * p.b
		}
		left := len(subtrees) - idx - 1
		if share > remaining-left {
			share = remaining - left
		}
		if share < 1 {
			share = 1
		}
		out = append(out, Branch{ID: best.ID, Children: share})
		remaining -= share
	}
	// Any leftover budget tops up the best subtree.
	if remaining > 0 && len(out) > 0 {
		out[0].Children += remaining
	}
	return out
}
