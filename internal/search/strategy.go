package search

// Test-time-compute strategies: the layer above the search Policy that
// decides *when the search is allowed to stop* and *how the serving
// stack may replicate it*. A Policy shapes the beam tree (width, branch
// factor, selection); a Strategy shapes the latency/compute tradeoff of
// running it:
//
//	full-beam     run the policy's beam to normal termination — the
//	              legacy semantics and the default
//	first-finish  launch k parallel chains and return on the first
//	              completed one ("First Finish Search", arXiv 2505.18149)
//	deadline      cut the solve when the request's deadline passes
//	              mid-flight, returning the best path found so far
//	hedged        replicate the request to a second device and cancel
//	              the loser on first completion (fleet-level; the solver
//	              semantics are full-beam)
//
// Strategies are selected by name like routers, policies, and
// controllers, and are deliberately pure: every hook is a deterministic
// function of counts the solver already tracks, so enabling one never
// perturbs the virtual-time simulation's reproducibility.

import (
	"fmt"
	"strconv"
	"strings"
)

// Strategy is one test-time-compute strategy. Implementations are
// immutable values shared across requests.
type Strategy interface {
	// Name is the CLI/config name ("full-beam", "first-finish", ...);
	// parameterized strategies render their parameters ("first-finish:4").
	Name() string
	// Satisfied reports whether the search may stop early with the given
	// finished-path and active-beam counts. The solver consults it after
	// every selection round; full-beam always answers false (normal
	// termination only).
	Satisfied(finished, active int) bool
	// ChainWidth maps the configured search width to the width this
	// strategy actually launches (first-finish caps it at k chains).
	ChainWidth(base int) int
	// CutAtDeadline reports whether the serving loop should finalize the
	// solve early once the request's deadline passes mid-flight.
	CutAtDeadline() bool
	// Hedged reports whether the fleet should replicate the request to a
	// second device and cancel the loser on first completion. Outside a
	// fleet (single-server target) a hedged strategy degrades to
	// full-beam solver semantics.
	Hedged() bool
}

// FullBeam is the default strategy: run the policy's beam to normal
// termination. It reproduces the pre-strategy semantics bit-identically.
type FullBeam struct{}

func (FullBeam) Name() string            { return "full-beam" }
func (FullBeam) Satisfied(_, _ int) bool { return false }
func (FullBeam) ChainWidth(base int) int { return base }
func (FullBeam) CutAtDeadline() bool     { return false }
func (FullBeam) Hedged() bool            { return false }

// FirstFinish launches K parallel chains and returns on the first
// completed one. K == 0 launches the policy's configured width; K > 0
// caps the launch width at K.
type FirstFinish struct{ K int }

func (s FirstFinish) Name() string {
	if s.K > 0 {
		return "first-finish:" + strconv.Itoa(s.K)
	}
	return "first-finish"
}
func (s FirstFinish) Satisfied(finished, _ int) bool { return finished >= 1 }
func (s FirstFinish) ChainWidth(base int) int {
	if s.K > 0 && s.K < base {
		return s.K
	}
	return base
}
func (FirstFinish) CutAtDeadline() bool { return false }
func (FirstFinish) Hedged() bool        { return false }

// DeadlineCut runs the full beam but finalizes early when the request's
// deadline passes mid-solve, returning the best path found so far (a
// degraded answer if nothing finished).
type DeadlineCut struct{}

func (DeadlineCut) Name() string            { return "deadline" }
func (DeadlineCut) Satisfied(_, _ int) bool { return false }
func (DeadlineCut) ChainWidth(base int) int { return base }
func (DeadlineCut) CutAtDeadline() bool     { return true }
func (DeadlineCut) Hedged() bool            { return false }

// Hedged replicates the request to a second device and cancels the
// loser on first completion. The solver-level semantics are full-beam;
// the replication and cancellation live in the fleet layer.
type Hedged struct{}

func (Hedged) Name() string            { return "hedged" }
func (Hedged) Satisfied(_, _ int) bool { return false }
func (Hedged) ChainWidth(base int) int { return base }
func (Hedged) CutAtDeadline() bool     { return false }
func (Hedged) Hedged() bool            { return true }

// ParseStrategy resolves a strategy from its CLI/config spec: "" (nil —
// strategies off, the legacy path), "full-beam", "first-finish",
// "first-finish:k" (k >= 1 chains), "deadline", or "hedged". It returns
// an error — never panics — on unknown names or invalid parameters.
func ParseStrategy(spec string) (Strategy, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	name = strings.ToLower(strings.TrimSpace(name))
	if arg != "" && name != "first-finish" {
		return nil, fmt.Errorf("search: strategy %q takes no parameter (got %q)", name, arg)
	}
	switch name {
	case "":
		return nil, nil
	case "full-beam":
		return FullBeam{}, nil
	case "first-finish":
		if arg == "" {
			return FirstFinish{}, nil
		}
		k, err := strconv.Atoi(strings.TrimSpace(arg))
		if err != nil {
			return nil, fmt.Errorf("search: first-finish chain count %q is not an integer", arg)
		}
		if k < 1 {
			return nil, fmt.Errorf("search: first-finish needs k >= 1 chains, got %d", k)
		}
		return FirstFinish{K: k}, nil
	case "deadline":
		return DeadlineCut{}, nil
	case "hedged":
		return Hedged{}, nil
	}
	return nil, fmt.Errorf("search: unknown strategy %q (want %s)", spec, strings.Join(StrategyNames(), ", "))
}

// StrategyNames lists the built-in strategy names in display order.
func StrategyNames() []string {
	return []string{"full-beam", "first-finish", "deadline", "hedged"}
}

// DegradedStrategy maps a compute-budget tier to the strategy the fleet's
// vertical governor actuates: tier 0 keeps the deployment's configured
// strategy, and any deeper tier swaps it for first-finish — stop at the
// first completed chain, the cheapest way to keep answering under load.
// The knob is gated on strategies being enabled: with no base strategy
// configured (nil) every tier returns nil, so deployments that never
// opted into strategies reproduce their pre-strategy runs bit-identically.
func DegradedStrategy(base Strategy, tier int) Strategy {
	if base == nil || tier <= 0 {
		return nil
	}
	return FirstFinish{}
}
