package search

import (
	"testing"
	"testing/quick"

	"fasttts/internal/rng"
)

func mkCands(scores ...float64) []Candidate {
	out := make([]Candidate, len(scores))
	for i, s := range scores {
		out[i] = Candidate{ID: i, Subtree: i / 4, Score: s}
	}
	return out
}

func totalChildren(bs []Branch) int {
	total := 0
	for _, b := range bs {
		total += b.Children
	}
	return total
}

func TestNewValidation(t *testing.T) {
	for _, alg := range []Algorithm{BestOfN, BeamSearch, DVTS, DynamicBranching, VaryingGranularity, SingleCoT} {
		p, err := New(alg, 16, 4)
		if err != nil {
			t.Fatalf("New(%s): %v", alg, err)
		}
		if p.Name() == "" {
			t.Errorf("%s: empty name", alg)
		}
	}
	if _, err := New("MCTS-9000", 16, 4); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := New(BeamSearch, 0, 4); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := New(BeamSearch, 16, 0); err == nil {
		t.Error("zero branch factor accepted")
	}
	if _, err := New(DVTS, 2, 4); err == nil {
		t.Error("DVTS with n < b accepted")
	}
}

func TestBestOfNKeepsAll(t *testing.T) {
	p, _ := New(BestOfN, 8, 4)
	if p.UsesVerifier() {
		t.Error("BoN must not use intermediate verification")
	}
	bs := p.Select(mkCands(0.1, 0.9, 0.5), rng.New(1))
	if len(bs) != 3 || totalChildren(bs) != 3 {
		t.Errorf("BoN select = %v", bs)
	}
	for _, b := range bs {
		if b.Children != 1 {
			t.Errorf("BoN branched: %v", b)
		}
	}
}

func TestBeamSearchKeepsTopAndRestoresWidth(t *testing.T) {
	p, _ := New(BeamSearch, 8, 4)
	cands := mkCands(0.1, 0.9, 0.5, 0.8, 0.2, 0.7, 0.3, 0.6)
	bs := p.Select(cands, rng.New(1))
	if len(bs) != 2 { // 8/4
		t.Fatalf("kept %d, want 2", len(bs))
	}
	if bs[0].ID != 1 || bs[1].ID != 3 {
		t.Errorf("kept wrong beams: %v (want IDs 1 and 3)", bs)
	}
	if totalChildren(bs) != 8 {
		t.Errorf("width not restored: %d", totalChildren(bs))
	}
}

func TestBeamSearchShrinkingPool(t *testing.T) {
	p, _ := New(BeamSearch, 8, 4)
	// Only 2 candidates left: keep max(1, 2/4)=1, branch 4 ways.
	bs := p.Select(mkCands(0.3, 0.6), rng.New(1))
	if len(bs) != 1 || bs[0].ID != 1 || bs[0].Children != 4 {
		t.Errorf("select = %v", bs)
	}
	if out := p.Select(nil, rng.New(1)); out != nil {
		t.Errorf("empty select = %v", out)
	}
}

func TestBeamSearchDeterministicTieBreak(t *testing.T) {
	p, _ := New(BeamSearch, 4, 4)
	bs := p.Select(mkCands(0.5, 0.5, 0.5, 0.5), rng.New(1))
	if len(bs) != 1 || bs[0].ID != 0 {
		t.Errorf("tie break = %v, want lowest ID", bs)
	}
}

func TestDVTSOnePerSubtree(t *testing.T) {
	p, _ := New(DVTS, 16, 4)
	// Subtrees of 4 beams each (ID/4).
	cands := mkCands(0.1, 0.9, 0.5, 0.8, 0.2, 0.7, 0.3, 0.6)
	bs := p.Select(cands, rng.New(1))
	if len(bs) != 2 {
		t.Fatalf("kept %d, want one per subtree (2)", len(bs))
	}
	if bs[0].ID != 1 || bs[1].ID != 5 {
		t.Errorf("subtree winners = %v, want IDs 1 and 5", bs)
	}
	for _, b := range bs {
		if b.Children != 4 {
			t.Errorf("branch = %v, want 4 children", b)
		}
	}
}

func TestDVTSSubtreeIndependence(t *testing.T) {
	// Even when one subtree dominates globally, every subtree keeps its
	// local best: diversity by construction.
	p, _ := New(DVTS, 8, 4)
	cands := []Candidate{
		{ID: 0, Subtree: 0, Score: 0.99},
		{ID: 1, Subtree: 0, Score: 0.98},
		{ID: 2, Subtree: 1, Score: 0.01},
		{ID: 3, Subtree: 1, Score: 0.02},
	}
	bs := p.Select(cands, rng.New(1))
	if len(bs) != 2 {
		t.Fatalf("kept %d subtrees, want 2", len(bs))
	}
	if bs[0].ID != 0 || bs[1].ID != 3 {
		t.Errorf("winners = %v, want 0 and 3", bs)
	}
}

func TestDynamicBranchingProportional(t *testing.T) {
	p, _ := New(DynamicBranching, 8, 4)
	cands := mkCands(0.0, 0.9, 0.0, 0.3, 0.0, 0.0, 0.0, 0.0)
	bs := p.Select(cands, rng.New(1))
	if totalChildren(bs) != 8 {
		t.Fatalf("children = %d, want 8 (width preserved)", totalChildren(bs))
	}
	// Beam 1 (score 0.9) must get more children than beam 3 (0.3).
	byID := map[int]int{}
	for _, b := range bs {
		byID[b.ID] = b.Children
	}
	if byID[1] <= byID[3] {
		t.Errorf("children not proportional to score: %v", byID)
	}
}

func TestDynamicBranchingZeroScores(t *testing.T) {
	p, _ := New(DynamicBranching, 8, 4)
	bs := p.Select(mkCands(0, 0, 0, 0), rng.New(1))
	if totalChildren(bs) != 4 {
		t.Errorf("children = %d, want 4", totalChildren(bs))
	}
}

func TestVaryingGranularityBudgets(t *testing.T) {
	p, _ := New(VaryingGranularity, 8, 4)
	for step, want := range map[int]int{0: 64, 1: 64, 2: 64, 3: 2048, 7: 2048} {
		if got := p.StepBudget(step); got != want {
			t.Errorf("StepBudget(%d) = %d, want %d", step, got, want)
		}
	}
	if p.Name() != string(VaryingGranularity) {
		t.Errorf("name = %q", p.Name())
	}
}

func TestSingleCoT(t *testing.T) {
	p, _ := New(SingleCoT, 99, 7) // width/branch are fixed to 1
	if p.Width() != 1 || p.BranchFactor() != 1 || p.UsesVerifier() {
		t.Errorf("CoT policy misconfigured: w=%d b=%d", p.Width(), p.BranchFactor())
	}
}

// Property: for every verifier-guided policy and any candidate set, the
// selected IDs exist in the input, children are positive, and no ID is
// selected twice.
func TestPropertySelectWellFormed(t *testing.T) {
	algs := []Algorithm{BestOfN, BeamSearch, DVTS, DynamicBranching, VaryingGranularity}
	f := func(seed uint64, raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		cands := make([]Candidate, len(raw))
		for i, b := range raw {
			cands[i] = Candidate{ID: i, Subtree: i / 4, Score: float64(b) / 255}
		}
		r := rng.New(seed)
		for _, alg := range algs {
			p, err := New(alg, 64, 4)
			if err != nil {
				return false
			}
			seen := map[int]bool{}
			for _, br := range p.Select(cands, r) {
				if br.ID < 0 || br.ID >= len(cands) {
					return false
				}
				if br.Children < 1 {
					return false
				}
				if seen[br.ID] {
					return false
				}
				seen[br.ID] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: beam search and DVTS preserve total width (children sum equals
// a stable working width) when the candidate pool is a multiple of B.
func TestPropertyWidthPreservation(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := (r.IntN(8) + 1) * 4 // multiple of 4
		cands := make([]Candidate, n)
		for i := range cands {
			cands[i] = Candidate{ID: i, Subtree: i / 4, Score: r.Float64()}
		}
		bp, _ := New(BeamSearch, n, 4)
		dp, _ := New(DVTS, n, 4)
		db, _ := New(DynamicBranching, n, 4)
		return totalChildren(bp.Select(cands, r)) == n &&
			totalChildren(dp.Select(cands, r)) == n &&
			totalChildren(db.Select(cands, r)) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestInitialSubtreeAssignment(t *testing.T) {
	p, _ := New(DVTS, 16, 4)
	// Beams 0..3 → subtree 0, 4..7 → subtree 1, ...
	for i := 0; i < 16; i++ {
		if got := p.InitialSubtree(i); got != i/4 {
			t.Errorf("InitialSubtree(%d) = %d, want %d", i, got, i/4)
		}
	}
}

func TestMCTSWellFormed(t *testing.T) {
	p, err := New(MCTS, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsesVerifier() || p.Width() != 16 || p.BranchFactor() != 4 {
		t.Fatalf("MCTS policy misconfigured")
	}
	cands := mkCands(0.1, 0.9, 0.5, 0.8, 0.2, 0.7, 0.3, 0.6)
	bs := p.Select(cands, rng.New(1))
	if totalChildren(bs) != len(cands) {
		t.Errorf("children = %d, want %d (width preserved)", totalChildren(bs), len(cands))
	}
	seen := map[int]bool{}
	for _, b := range bs {
		if b.Children < 1 || seen[b.ID] {
			t.Errorf("malformed branch %+v", b)
		}
		seen[b.ID] = true
	}
}

func TestMCTSExploresLaggingSubtrees(t *testing.T) {
	// A subtree with consistently mediocre scores must keep receiving
	// budget early on (UCB exploration) rather than being starved the
	// way pure beam search would starve it.
	p, _ := New(MCTS, 8, 4)
	cands := []Candidate{
		{ID: 0, Subtree: 0, Score: 0.9},
		{ID: 1, Subtree: 0, Score: 0.9},
		{ID: 2, Subtree: 1, Score: 0.3},
		{ID: 3, Subtree: 1, Score: 0.3},
	}
	bs := p.Select(cands, rng.New(1))
	got := map[int]int{}
	for _, b := range bs {
		got[b.ID] = b.Children
	}
	if got[2]+got[3] == 0 {
		t.Error("lagging subtree starved on the first round")
	}
}

func TestMCTSStatePersistsAcrossRounds(t *testing.T) {
	p, _ := New(MCTS, 8, 4)
	cands := mkCands(0.9, 0.8, 0.2, 0.1)
	first := p.Select(cands, rng.New(1))
	second := p.Select(cands, rng.New(1))
	if totalChildren(first) != totalChildren(second) {
		t.Errorf("budget drifted: %d vs %d", totalChildren(first), totalChildren(second))
	}
}

func TestMCTSValidation(t *testing.T) {
	if _, err := New(MCTS, 2, 4); err == nil {
		t.Error("MCTS with n < b accepted")
	}
}
