package search

import (
	"strings"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	cases := []struct {
		spec    string
		want    string // expected Name(); "" means nil strategy
		wantErr string // substring of the expected error; "" means success
	}{
		{spec: "", want: ""},
		{spec: "full-beam", want: "full-beam"},
		{spec: "FULL-BEAM", want: "full-beam"},
		{spec: " first-finish ", want: "first-finish"},
		{spec: "first-finish:4", want: "first-finish:4"},
		{spec: "first-finish:1", want: "first-finish:1"},
		{spec: "deadline", want: "deadline"},
		{spec: "hedged", want: "hedged"},
		{spec: "first-finish:0", wantErr: "k >= 1"},
		{spec: "first-finish:-3", wantErr: "k >= 1"},
		{spec: "first-finish:x", wantErr: "not an integer"},
		{spec: "hedged:2", wantErr: "takes no parameter"},
		{spec: "deadline:5", wantErr: "takes no parameter"},
		{spec: "warp-speed", wantErr: "unknown strategy"},
	}
	for _, c := range cases {
		s, err := ParseStrategy(c.spec)
		if c.wantErr != "" {
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("ParseStrategy(%q) error = %v, want substring %q", c.spec, err, c.wantErr)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseStrategy(%q): %v", c.spec, err)
			continue
		}
		if c.want == "" {
			if s != nil {
				t.Errorf("ParseStrategy(%q) = %v, want nil (strategies off)", c.spec, s)
			}
			continue
		}
		if s == nil || s.Name() != c.want {
			t.Errorf("ParseStrategy(%q) = %v, want %q", c.spec, s, c.want)
		}
	}
}

func TestStrategyHooks(t *testing.T) {
	if (FullBeam{}).Satisfied(3, 1) || (FullBeam{}).CutAtDeadline() || (FullBeam{}).Hedged() {
		t.Error("full-beam must never stop early, cut, or hedge")
	}
	if (FullBeam{}).ChainWidth(8) != 8 {
		t.Error("full-beam must keep the configured width")
	}

	ff := FirstFinish{}
	if ff.Satisfied(0, 4) {
		t.Error("first-finish with no finished path must not be satisfied")
	}
	if !ff.Satisfied(1, 7) {
		t.Error("first-finish must stop on the first finished path")
	}
	if ff.ChainWidth(8) != 8 {
		t.Error("first-finish with K=0 must launch the configured width")
	}
	if (FirstFinish{K: 4}).ChainWidth(8) != 4 {
		t.Error("first-finish:4 must cap the launch width at 4 chains")
	}
	if (FirstFinish{K: 16}).ChainWidth(8) != 8 {
		t.Error("first-finish must never widen the search beyond the policy")
	}

	if !(DeadlineCut{}).CutAtDeadline() || (DeadlineCut{}).Hedged() {
		t.Error("deadline must cut at the deadline and not hedge")
	}
	if !(Hedged{}).Hedged() || (Hedged{}).Satisfied(1, 1) || (Hedged{}).CutAtDeadline() {
		t.Error("hedged must replicate at the fleet level with full-beam solver semantics")
	}
}

func TestStrategyNamesRoundTrip(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := ParseStrategy(name)
		if err != nil {
			t.Fatalf("ParseStrategy(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("ParseStrategy(%q).Name() = %q", name, s.Name())
		}
	}
}

func TestDegradedStrategy(t *testing.T) {
	if DegradedStrategy(nil, 2) != nil {
		t.Error("the strategy knob must stay off when no base strategy is configured")
	}
	if DegradedStrategy(FullBeam{}, 0) != nil {
		t.Error("tier 0 must restore the configured strategy (no override)")
	}
	if got := DegradedStrategy(FullBeam{}, 1); got == nil || got.Name() != "first-finish" {
		t.Errorf("tier 1 must degrade to first-finish, got %v", got)
	}
	if got := DegradedStrategy(Hedged{}, 2); got == nil || got.Name() != "first-finish" {
		t.Errorf("deep tiers must degrade hedging to first-finish, got %v", got)
	}
}
