// Package search implements the TTS search algorithms the paper abstracts
// in §3.1 and evaluates in Fig 11: Best-of-N, Beam Search, DVTS (diverse
// verifier tree search), Dynamic Branching, and Varying Granularity, plus
// plain single-chain CoT. Every algorithm is expressed as a Policy: the
// algorithm-specific heuristics plugged into the common two-stage
// generation/verification loop that internal/core executes.
//
// Selection is deliberately pure and deterministic (scores in, branches
// out) — this is what lets the runtime guarantee algorithmic equivalence
// between baseline and FastTTS execution (§4.1).
package search

import (
	"fmt"
	"sort"

	"fasttts/internal/rng"
)

// Algorithm names a search method.
type Algorithm string

const (
	BestOfN            Algorithm = "Best-of-N"
	BeamSearch         Algorithm = "Beam Search"
	DVTS               Algorithm = "DVTS"
	DynamicBranching   Algorithm = "Dynamic Branching"
	VaryingGranularity Algorithm = "Varying Granularity"
	SingleCoT          Algorithm = "CoT"
)

// Candidate is a non-terminated beam presented for selection.
type Candidate struct {
	ID      int
	Subtree int // root subtree (used by DVTS)
	Score   float64
}

// Branch is a selection outcome: beam ID continues with Children
// successors (1 = continue unbranched; 0 never appears — unselected beams
// are simply absent).
type Branch struct {
	ID       int
	Children int
}

// Policy is one search algorithm's heuristics.
type Policy interface {
	// Name returns the figure label of the algorithm.
	Name() string
	// Width is n: the initial number of parallel reasoning paths.
	Width() int
	// BranchFactor is B: the branching factor (and the number of score
	// bins used by speculative candidate selection, §4.1.1).
	BranchFactor() int
	// StepBudget caps the token count of thinking step stepIdx
	// (0-based); 0 means unlimited.
	StepBudget(stepIdx int) int
	// UsesVerifier reports whether intermediate steps are scored; when
	// false (Best-of-N, CoT) only terminal solutions are scored.
	UsesVerifier() bool
	// InitialSubtree assigns root beam i to a subtree.
	InitialSubtree(i int) int
	// Select maps the current candidates to the next set of branches.
	Select(cands []Candidate, r *rng.Stream) []Branch
}

// DefaultStepBudget is the per-step token cap used by all policies unless
// overridden (matches the paper's 2048-token step limit).
const DefaultStepBudget = 2048

// New constructs the named policy with width n and branch factor b.
func New(alg Algorithm, n, b int) (Policy, error) {
	if n < 1 {
		return nil, fmt.Errorf("search: width %d < 1", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("search: branch factor %d < 1", b)
	}
	switch alg {
	case BestOfN:
		return bestOfN{n: n}, nil
	case BeamSearch:
		return beamSearch{n: n, b: b}, nil
	case DVTS:
		if n < b {
			return nil, fmt.Errorf("search: DVTS needs n >= b (got n=%d b=%d)", n, b)
		}
		return dvts{n: n, b: b}, nil
	case DynamicBranching:
		return dynamicBranching{n: n, b: b}, nil
	case VaryingGranularity:
		return varyingGranularity{beamSearch{n: n, b: b}}, nil
	case SingleCoT:
		return singleCoT{}, nil
	case MCTS:
		if n < b {
			return nil, fmt.Errorf("search: MCTS needs n >= b (got n=%d b=%d)", n, b)
		}
		return newMCTS(n, b), nil
	}
	return nil, fmt.Errorf("search: unknown algorithm %q", alg)
}

// WithWidth re-derives the policy's algorithm at a different search
// width n, preserving the branch factor — the vertical knob of the
// elastic control plane's compute-budget governor. The width is clamped
// to stay constructible: at least 1, and at least the branch factor for
// the algorithms that require n >= b (DVTS, MCTS). Asking for the
// policy's current width returns the policy unchanged.
func WithWidth(p Policy, n int) (Policy, error) {
	n = ClampWidth(p, n)
	if n == p.Width() {
		return p, nil
	}
	return New(Algorithm(p.Name()), n, p.BranchFactor())
}

// ClampWidth returns the nearest width to n that p's algorithm can be
// constructed with: at least 1, and at least the branch factor for the
// algorithms that require n >= b. Demand estimators use it so the
// estimate and the actual narrowed policy agree on the width.
func ClampWidth(p Policy, n int) int {
	if n < 1 {
		n = 1
	}
	alg := Algorithm(p.Name())
	if b := p.BranchFactor(); (alg == DVTS || alg == MCTS) && n < b {
		n = b
	}
	return n
}

// DegradedWidth maps a compute-budget tier to an effective search width:
// tier 0 is the full width, and every deeper tier halves it (floored at
// the branch factor via WithWidth's clamping, and at 1). This is the
// budget schedule the fleet's vertical governor actuates.
func DegradedWidth(width, tier int) int {
	for ; tier > 0 && width > 1; tier-- {
		width /= 2
	}
	if width < 1 {
		return 1
	}
	return width
}

// sortByScore orders candidates by descending score, breaking ties by
// ascending ID for determinism.
func sortByScore(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// --- Best-of-N ---

type bestOfN struct{ n int }

func (p bestOfN) Name() string             { return string(BestOfN) }
func (p bestOfN) Width() int               { return p.n }
func (p bestOfN) BranchFactor() int        { return 1 }
func (p bestOfN) StepBudget(int) int       { return DefaultStepBudget }
func (p bestOfN) UsesVerifier() bool       { return false }
func (p bestOfN) InitialSubtree(i int) int { return i }

// Select keeps every chain: BoN provides no intermediate guidance (§2.2).
func (p bestOfN) Select(cands []Candidate, _ *rng.Stream) []Branch {
	out := make([]Branch, len(cands))
	for i, c := range cands {
		out[i] = Branch{ID: c.ID, Children: 1}
	}
	return out
}

// --- Beam Search ---

type beamSearch struct{ n, b int }

func (p beamSearch) Name() string             { return string(BeamSearch) }
func (p beamSearch) Width() int               { return p.n }
func (p beamSearch) BranchFactor() int        { return p.b }
func (p beamSearch) StepBudget(int) int       { return DefaultStepBudget }
func (p beamSearch) UsesVerifier() bool       { return true }
func (p beamSearch) InitialSubtree(i int) int { return i / p.b }

// Select keeps the global top len(cands)/B candidates and branches each
// B ways, restoring the working width (§3.1).
func (p beamSearch) Select(cands []Candidate, _ *rng.Stream) []Branch {
	if len(cands) == 0 {
		return nil
	}
	keep := len(cands) / p.b
	if keep < 1 {
		keep = 1
	}
	sorted := sortByScore(cands)
	out := make([]Branch, 0, keep)
	for _, c := range sorted[:keep] {
		out = append(out, Branch{ID: c.ID, Children: p.b})
	}
	return out
}

// --- DVTS (diverse selection) ---

type dvts struct{ n, b int }

func (p dvts) Name() string             { return string(DVTS) }
func (p dvts) Width() int               { return p.n }
func (p dvts) BranchFactor() int        { return p.b }
func (p dvts) StepBudget(int) int       { return DefaultStepBudget }
func (p dvts) UsesVerifier() bool       { return true }
func (p dvts) InitialSubtree(i int) int { return i / p.b }

// Select keeps the best candidate of every live subtree and branches it
// B ways: diversity by construction (§3.1, "Diverse Selection").
func (p dvts) Select(cands []Candidate, _ *rng.Stream) []Branch {
	bySubtree := map[int]Candidate{}
	var order []int
	for _, c := range cands {
		best, ok := bySubtree[c.Subtree]
		if !ok {
			order = append(order, c.Subtree)
			bySubtree[c.Subtree] = c
			continue
		}
		if c.Score > best.Score || (c.Score == best.Score && c.ID < best.ID) {
			bySubtree[c.Subtree] = c
		}
	}
	sort.Ints(order)
	out := make([]Branch, 0, len(order))
	for _, st := range order {
		out = append(out, Branch{ID: bySubtree[st].ID, Children: p.b})
	}
	return out
}

// --- Dynamic Branching ---

type dynamicBranching struct{ n, b int }

func (p dynamicBranching) Name() string             { return string(DynamicBranching) }
func (p dynamicBranching) Width() int               { return p.n }
func (p dynamicBranching) BranchFactor() int        { return p.b }
func (p dynamicBranching) StepBudget(int) int       { return DefaultStepBudget }
func (p dynamicBranching) UsesVerifier() bool       { return true }
func (p dynamicBranching) InitialSubtree(i int) int { return i / p.b }

// Select keeps the top len/B candidates and distributes len(cands)
// children proportionally to verifier scores (largest-remainder rounding)
// — the paper's "each beam branches proportionally to its verifier score"
// (Fig 11 caption). Beams rounded to zero children are pruned.
func (p dynamicBranching) Select(cands []Candidate, _ *rng.Stream) []Branch {
	if len(cands) == 0 {
		return nil
	}
	keep := len(cands) / p.b
	if keep < 1 {
		keep = 1
	}
	sorted := sortByScore(cands)[:keep]
	budget := len(cands)
	var total float64
	for _, c := range sorted {
		total += c.Score
	}
	type alloc struct {
		idx  int
		base int
		frac float64
	}
	allocs := make([]alloc, len(sorted))
	assigned := 0
	for i, c := range sorted {
		share := float64(budget) / float64(len(sorted))
		if total > 0 {
			share = c.Score / total * float64(budget)
		}
		base := int(share)
		allocs[i] = alloc{idx: i, base: base, frac: share - float64(base)}
		assigned += base
	}
	// Largest remainder for the leftover children.
	sort.SliceStable(allocs, func(i, j int) bool { return allocs[i].frac > allocs[j].frac })
	for k := 0; assigned < budget && k < len(allocs); k++ {
		allocs[k].base++
		assigned++
	}
	sort.SliceStable(allocs, func(i, j int) bool { return allocs[i].idx < allocs[j].idx })
	out := make([]Branch, 0, len(sorted))
	for i, a := range allocs {
		if a.base > 0 {
			out = append(out, Branch{ID: sorted[i].ID, Children: a.base})
		}
	}
	if len(out) == 0 { // degenerate all-zero scores: keep the best
		out = append(out, Branch{ID: sorted[0].ID, Children: budget})
	}
	return out
}

// --- Varying Granularity (VG-Search) ---

type varyingGranularity struct{ beamSearch }

func (p varyingGranularity) Name() string { return string(VaryingGranularity) }

// StepBudget uses short steps early (fine-grained verification) and long
// steps later: 64 tokens for the first 3 steps, 2048 after (Fig 11
// caption).
func (p varyingGranularity) StepBudget(stepIdx int) int {
	if stepIdx < 3 {
		return 64
	}
	return 2048
}

// --- Single chain CoT ---

type singleCoT struct{}

func (p singleCoT) Name() string             { return string(SingleCoT) }
func (p singleCoT) Width() int               { return 1 }
func (p singleCoT) BranchFactor() int        { return 1 }
func (p singleCoT) StepBudget(int) int       { return DefaultStepBudget }
func (p singleCoT) UsesVerifier() bool       { return false }
func (p singleCoT) InitialSubtree(i int) int { return i }
func (p singleCoT) Select(cands []Candidate, _ *rng.Stream) []Branch {
	out := make([]Branch, len(cands))
	for i, c := range cands {
		out[i] = Branch{ID: c.ID, Children: 1}
	}
	return out
}
