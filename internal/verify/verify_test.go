package verify

import (
	"testing"

	"fasttts/internal/engine"
	"fasttts/internal/hw"
	"fasttts/internal/kvcache"
	"fasttts/internal/model"
	"fasttts/internal/rng"
	"fasttts/internal/sim"
	"fasttts/internal/workload"
)

func newVerifier(t *testing.T, prefixCache, lookahead bool, kvBytes int64) (*Verifier, *sim.Clock) {
	t.Helper()
	clk := &sim.Clock{}
	eng, err := engine.New("verifier", model.SkyworkPRM1_5B, hw.RTX4090, kvBytes, clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &Verifier{
		Eng:         eng,
		Skill:       workload.SkillSkywork1_5B,
		BatchSize:   8,
		PrefixCache: prefixCache,
		LookAhead:   lookahead,
	}, clk
}

func seqTok(node, n int) []kvcache.Token {
	out := make([]kvcache.Token, n)
	for i := range out {
		out[i] = kvcache.Token(node<<12 | i)
	}
	return out
}

func req(tokens []kvcache.Token, st *workload.PathState, r *rng.Stream) Request {
	return Request{Tokens: tokens, State: st, R: r}
}

func TestScoreAllReturnsAlignedScores(t *testing.T) {
	v, _ := newVerifier(t, true, false, 1<<30)
	r := rng.New(1)
	good := &workload.PathState{Quality: 2}
	bad := &workload.PathState{Quality: -2}
	scores := v.ScoreAll([]Request{
		req(seqTok(1, 100), good, r.Child("a")),
		req(seqTok(2, 100), bad, r.Child("b")),
	})
	if len(scores) != 2 {
		t.Fatalf("scores = %d", len(scores))
	}
	if scores[0] <= scores[1] {
		t.Errorf("good path scored %v <= bad path %v", scores[0], scores[1])
	}
	if v.Scored != 2 {
		t.Errorf("Scored = %d", v.Scored)
	}
}

func TestPrefixCacheSavesRepeatScoring(t *testing.T) {
	// Scoring the same growing path twice: the second pass should cost
	// far less time with the cache than without.
	run := func(prefixCache bool) float64 {
		v, clk := newVerifier(t, prefixCache, false, 1<<30)
		r := rng.New(2)
		st := &workload.PathState{}
		base := seqTok(1, 500)
		v.ScoreAll([]Request{req(base, st, r)})
		t1 := clk.Now()
		longer := append(append([]kvcache.Token(nil), base...), seqTok(2, 100)...)
		v.ScoreAll([]Request{req(longer, st, r)})
		return clk.Now() - t1
	}
	cached := run(true)
	uncached := run(false)
	if cached >= uncached {
		t.Errorf("cached second pass %.2e not cheaper than uncached %.2e", cached, uncached)
	}
}

func TestSiblingSharingWithinBatch(t *testing.T) {
	// Two siblings share a 500-token parent prefix; with the cache the
	// second sibling only pays its 50-token suffix.
	v, clk := newVerifier(t, true, false, 1<<30)
	r := rng.New(3)
	parent := seqTok(1, 500)
	a := append(append([]kvcache.Token(nil), parent...), seqTok(2, 50)...)
	b := append(append([]kvcache.Token(nil), parent...), seqTok(3, 50)...)
	st := &workload.PathState{}
	v.ScoreAll([]Request{req(a, st, r)})
	t1 := clk.Now()
	v.ScoreAll([]Request{req(b, st, r)})
	dt := clk.Now() - t1
	// An uncached verifier would prefill all 550 tokens.
	v2, clk2 := newVerifier(t, false, false, 1<<30)
	v2.ScoreAll([]Request{req(a, st, rng.New(3))})
	t2 := clk2.Now()
	v2.ScoreAll([]Request{req(b, st, rng.New(3))})
	dtUncached := clk2.Now() - t2
	if dt >= dtUncached {
		t.Errorf("sibling scoring with cache %.2e not cheaper than without %.2e", dt, dtUncached)
	}
}

func TestLookAheadCoVerifiesSpec(t *testing.T) {
	v, clkLA := newVerifier(t, true, true, 1<<30)
	r := rng.New(4)
	st := &workload.PathState{}
	tk := seqTok(1, 200)
	spec := seqTok(2, 100)
	v.ScoreAll([]Request{{Tokens: tk, SpecTokens: spec, State: st, R: r}})
	withSpec := clkLA.Now()
	v2, clk2 := newVerifier(t, true, true, 1<<30)
	v2.ScoreAll([]Request{{Tokens: tk, State: st, R: rng.New(4)}})
	withoutSpec := clk2.Now()
	if withSpec <= withoutSpec {
		t.Errorf("co-verification %.2e should cost more than plain %.2e", withSpec, withoutSpec)
	}
	// With LookAhead disabled, spec tokens are ignored.
	v3, clk3 := newVerifier(t, true, false, 1<<30)
	v3.ScoreAll([]Request{{Tokens: tk, SpecTokens: spec, State: st, R: rng.New(4)}})
	if clk3.Now() != withoutSpec {
		t.Errorf("spec tokens charged despite LookAhead off: %.2e vs %.2e", clk3.Now(), withoutSpec)
	}
}

func TestCoveredSkipsEngineWork(t *testing.T) {
	v, clk := newVerifier(t, true, true, 1<<30)
	r := rng.New(5)
	st := &workload.PathState{}
	tk := seqTok(1, 300)
	before := clk.Now()
	scores := v.ScoreAll([]Request{{Tokens: tk, Covered: 300, State: st, R: r}})
	if clk.Now() != before {
		t.Errorf("fully covered request charged engine time")
	}
	if len(scores) != 1 || scores[0] < 0 || scores[0] > 1 {
		t.Errorf("covered request must still produce a score: %v", scores)
	}
	// Partial coverage charges only the uncovered suffix.
	v2, clk2 := newVerifier(t, true, true, 1<<30)
	v2.ScoreAll([]Request{{Tokens: tk, Covered: 250, State: st, R: rng.New(5)}})
	partial := clk2.Now()
	v3, clk3 := newVerifier(t, true, true, 1<<30)
	v3.ScoreAll([]Request{{Tokens: tk, State: st, R: rng.New(5)}})
	full := clk3.Now()
	if partial >= full {
		t.Errorf("partially covered %.2e not cheaper than uncovered %.2e", partial, full)
	}
}

func TestCoveredIgnoredWithoutPrefixCache(t *testing.T) {
	// The baseline pipeline has no score memoization: Covered is a
	// FastTTS-runtime concept and must not discount baseline charges.
	v, clk := newVerifier(t, false, false, 1<<30)
	st := &workload.PathState{}
	v.ScoreAll([]Request{{Tokens: seqTok(1, 300), Covered: 300, State: st, R: rng.New(6)}})
	if clk.Now() == 0 {
		t.Error("baseline verifier skipped work based on Covered")
	}
}

func TestTinyCacheStillScores(t *testing.T) {
	// A path larger than the whole verifier cache must still be scored
	// (streamed uncached).
	v, clk := newVerifier(t, true, false, 64*28672) // 64 tokens of cache
	st := &workload.PathState{}
	scores := v.ScoreAll([]Request{req(seqTok(1, 500), st, rng.New(7))})
	if len(scores) != 1 || clk.Now() == 0 {
		t.Error("oversized path was not scored")
	}
}

func TestScoreDrawsIndependentOfCharging(t *testing.T) {
	// Identical streams must yield identical scores regardless of cache
	// configuration (the equivalence property core relies on).
	st1 := &workload.PathState{Quality: 0.4}
	st2 := &workload.PathState{Quality: 0.4}
	v1, _ := newVerifier(t, true, true, 1<<30)
	v2, _ := newVerifier(t, false, false, 1<<30)
	s1 := v1.ScoreAll([]Request{{Tokens: seqTok(1, 100), SpecTokens: seqTok(2, 30), State: st1, R: rng.New(8)}})
	s2 := v2.ScoreAll([]Request{{Tokens: seqTok(1, 100), State: st2, R: rng.New(8)}})
	if s1[0] != s2[0] {
		t.Errorf("scores differ across configurations: %v vs %v", s1[0], s2[0])
	}
}

func TestBatchingBoundsBatches(t *testing.T) {
	v, _ := newVerifier(t, true, false, 1<<30)
	v.BatchSize = 4
	var reqs []Request
	r := rng.New(9)
	for i := 0; i < 10; i++ {
		reqs = append(reqs, req(seqTok(i+1, 50), &workload.PathState{}, r.Child(string(rune('a'+i)))))
	}
	scores := v.ScoreAll(reqs)
	if len(scores) != 10 {
		t.Fatalf("scores = %d", len(scores))
	}
	if v.Eng.PrefilledTokens != 500 {
		t.Errorf("prefilled = %d, want 500", v.Eng.PrefilledTokens)
	}
}

// When live requests pin the whole verifier cache mid-batch, further
// requests stream uncached instead of failing (the ErrPinned fallback).
func TestPinnedCacheFallsBackToStreaming(t *testing.T) {
	// Cache of 200 tokens; batch of 3 requests x 100 tokens: the third
	// cannot be pinned alongside the first two.
	v, clk := newVerifier(t, true, false, 200*28672)
	v.BatchSize = 3
	r := rng.New(11)
	var reqs []Request
	for i := 0; i < 3; i++ {
		reqs = append(reqs, req(seqTok(i+1, 100), &workload.PathState{}, r.Child(string(rune('a'+i)))))
	}
	scores := v.ScoreAll(reqs)
	if len(scores) != 3 {
		t.Fatalf("scores = %d", len(scores))
	}
	if clk.Now() <= 0 {
		t.Error("no engine time charged")
	}
	// All tokens were charged exactly once (two cached + one streamed).
	if v.Eng.PrefilledTokens != 300 {
		t.Errorf("prefilled = %d, want 300", v.Eng.PrefilledTokens)
	}
}
