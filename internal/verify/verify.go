// Package verify implements the discriminative Process Reward Model
// (PRM) side of the serving system (paper §2.2): batched scoring of
// reasoning paths on the verifier engine, with optional cross-request
// prefix caching and LookAhead Verification (§4.1.3).
//
// A discriminative PRM takes the full reasoning path as input and scores
// it in a single prefill pass. The engine cost of scoring is therefore
// the prefill of whatever part of the path is not already resident in the
// verifier's KV cache. LookAhead Verification concatenates the current
// step with the retained speculative step and scores them in one request,
// so the shared prefix is attended once instead of twice across
// iterations.
package verify

import (
	"errors"

	"fasttts/internal/engine"
	"fasttts/internal/kvcache"
	"fasttts/internal/rng"
	"fasttts/internal/trace"
	"fasttts/internal/workload"
)

// Verifier wraps the verifier engine with scoring policy.
type Verifier struct {
	Eng   *engine.Engine
	Skill workload.VerifierSkill
	// BatchSize is B_pre: requests per prefill batch (from the
	// asymmetric allocator, §4.3.1).
	BatchSize int
	// PrefixCache enables KV reuse across requests and iterations.
	// The vLLM-baseline PRM pipeline recomputes each request from
	// scratch (the paper's "naive but robust" §6.1 baseline); FastTTS
	// caches.
	PrefixCache bool
	// LookAhead co-verifies speculative tokens with the current step.
	LookAhead bool

	// Scored counts scoring requests served.
	Scored int64
}

// Request is one path to score.
type Request struct {
	// Tokens is the committed path: prompt plus all verified thinking
	// steps, including the step generated this iteration.
	Tokens []kvcache.Token
	// SpecTokens is the retained speculative continuation; co-verified
	// only when LookAhead is enabled.
	SpecTokens []kvcache.Token
	// Covered counts leading tokens already scored by an earlier
	// LookAhead pass (§4.1.3). A discriminative PRM emits per-step scores
	// in one forward pass, so covered steps need no further engine work;
	// a request whose tokens are fully covered skips the verifier
	// entirely. Only meaningful when PrefixCache is enabled.
	Covered int
	// State is the path's latent state; the score is a noisy observation
	// of it. Speculative tokens never influence the score (algorithmic
	// equivalence, §4.1).
	State *workload.PathState
	// R is the beam's private sampling stream.
	R *rng.Stream
}

// ScoreAll scores every request, charging the verifier engine for the
// prefill work, and returns the scores aligned with reqs.
func (v *Verifier) ScoreAll(reqs []Request) []float64 {
	scores := make([]float64, len(reqs))
	batch := v.BatchSize
	if batch < 1 {
		batch = 1
	}
	var items []engine.PrefillItem
	var held []*kvcache.Seq
	flush := func() {
		v.Eng.PrefillBatch(items, trace.PhaseVerify)
		items = items[:0]
		for _, s := range held {
			v.Eng.Cache.Release(s)
		}
		held = held[:0]
	}
	for i, req := range reqs {
		tk := req.Tokens
		if v.LookAhead && len(req.SpecTokens) > 0 {
			tk = append(append([]kvcache.Token(nil), tk...), req.SpecTokens...)
		}
		covered := 0
		if v.PrefixCache {
			covered = req.Covered
		}
		if it, needed := v.charge(tk, covered, &held); needed {
			items = append(items, it)
			if len(items) >= batch {
				flush()
			}
		}
		// The score observes the committed state only.
		scores[i] = workload.Score(req.State, v.Skill, req.R)
		v.Scored++
	}
	flush()
	return scores
}

// charge computes the prefill item for one request, using the cache when
// enabled. Covered tokens are charged at most once across the path's
// lifetime: their per-step scores were produced by an earlier merged
// pass, so the verifier only processes the uncovered suffix.
func (v *Verifier) charge(tk []kvcache.Token, covered int, held *[]*kvcache.Seq) (engine.PrefillItem, bool) {
	if !v.PrefixCache {
		return engine.PrefillItem{NewTokens: len(tk), CtxTokens: len(tk)}, true
	}
	uncovered := len(tk) - covered
	if uncovered <= 0 {
		// Fully covered by a previous LookAhead pass: no verifier call.
		return engine.PrefillItem{}, false
	}
	newTokens := uncovered
	seq, _, miss, err := v.Eng.Cache.Acquire(tk)
	switch {
	case err == nil:
		*held = append(*held, seq)
		if miss < newTokens {
			newTokens = miss
		}
	case errors.Is(err, kvcache.ErrPinned):
		// The running batch pins the whole cache; stream uncached.
	default: // ErrTooLarge: path exceeds the verifier cache entirely.
	}
	return engine.PrefillItem{NewTokens: newTokens, CtxTokens: len(tk)}, true
}
