package engine

import (
	"testing"

	"fasttts/internal/hw"
	"fasttts/internal/model"
	"fasttts/internal/sim"
	"fasttts/internal/trace"
)

func newTestEngine(t *testing.T, m model.Config, kv int64) (*Engine, *sim.Clock) {
	t.Helper()
	clk := &sim.Clock{}
	e, err := New("test", m, hw.RTX4090, kv, clk, nil)
	if err != nil {
		t.Fatal(err)
	}
	return e, clk
}

func TestNewRejectsOversizedWeights(t *testing.T) {
	clk := &sim.Clock{}
	huge := model.Config{Name: "huge", Params: 100_000_000_000, Layers: 1, Hidden: 1, Heads: 1, KVHeads: 1, HeadDim: 1}
	if _, err := New("x", huge, hw.RTX4090, 1<<30, clk, nil); err == nil {
		t.Error("expected weights-too-large error")
	}
	if _, err := New("x", model.Qwen25Math1_5B, hw.RTX4090, 0, clk, nil); err == nil {
		t.Error("expected non-positive KV error")
	}
}

func TestDecodeRoundAdvancesClock(t *testing.T) {
	e, clk := newTestEngine(t, model.Qwen25Math1_5B, 4<<30)
	dt := e.DecodeRound(8, 8*512, trace.PhaseGenerate)
	if dt <= 0 {
		t.Fatalf("dt = %v", dt)
	}
	if clk.Now() != dt {
		t.Errorf("clock %v != dt %v", clk.Now(), dt)
	}
	if e.DecodedTokens != 8 {
		t.Errorf("decoded = %d", e.DecodedTokens)
	}
	if e.BusyTime != dt {
		t.Errorf("busy = %v", e.BusyTime)
	}
}

func TestDecodeRoundWeightBoundAtSmallBatch(t *testing.T) {
	// The straggler phenomenon (§3.2.1): shrinking the batch from 64 to 1
	// barely reduces round latency because weights dominate reads.
	e, _ := newTestEngine(t, model.Qwen25Math1_5B, 8<<30)
	t64 := e.DecodeRound(64, 64*256, trace.PhaseGenerate)
	t1 := e.DecodeRound(1, 256, trace.PhaseGenerate)
	if t1 < 0.5*t64 {
		t.Errorf("single-beam round %.2e much faster than 64-beam %.2e: straggler effect lost", t1, t64)
	}
}

func TestDecodeZeroBatch(t *testing.T) {
	e, clk := newTestEngine(t, model.Qwen25Math1_5B, 1<<30)
	if dt := e.DecodeRound(0, 0, trace.PhaseGenerate); dt != 0 {
		t.Errorf("dt = %v", dt)
	}
	if clk.Now() != 0 {
		t.Error("clock moved for empty batch")
	}
}

func TestPrefillBatch(t *testing.T) {
	e, clk := newTestEngine(t, model.ShepherdPRM7B, 4<<30)
	items := []PrefillItem{{NewTokens: 512, CtxTokens: 512}, {NewTokens: 256, CtxTokens: 800}}
	dt := e.PrefillBatch(items, trace.PhaseVerify)
	if dt <= 0 || clk.Now() != dt {
		t.Fatalf("dt = %v, clock = %v", dt, clk.Now())
	}
	if e.PrefilledTokens != 768 {
		t.Errorf("prefilled = %d", e.PrefilledTokens)
	}
}

func TestPrefillBatchingAmortizesWeights(t *testing.T) {
	// Prefilling 8 sequences in one batch must be cheaper than 8
	// separate batches (weights stream once vs 8 times).
	e1, _ := newTestEngine(t, model.Qwen25Math1_5B, 8<<30)
	items := make([]PrefillItem, 8)
	for i := range items {
		items[i] = PrefillItem{NewTokens: 64, CtxTokens: 64}
	}
	batched := e1.PrefillBatch(items, trace.PhaseVerify)
	e2, _ := newTestEngine(t, model.Qwen25Math1_5B, 8<<30)
	var separate float64
	for _, it := range items {
		separate += e2.PrefillBatch([]PrefillItem{it}, trace.PhaseVerify)
	}
	if batched >= separate {
		t.Errorf("batched %.3e not cheaper than separate %.3e", batched, separate)
	}
}

func TestPrefillEmpty(t *testing.T) {
	e, clk := newTestEngine(t, model.Qwen25Math1_5B, 1<<30)
	if dt := e.PrefillBatch(nil, trace.PhaseVerify); dt != 0 {
		t.Errorf("dt = %v", dt)
	}
	if dt := e.PrefillBatch([]PrefillItem{{NewTokens: 0}}, trace.PhaseVerify); dt != 0 {
		t.Errorf("zero-token prefill dt = %v", dt)
	}
	if clk.Now() != 0 {
		t.Error("clock moved")
	}
}

func TestSwapTransfer(t *testing.T) {
	e, clk := newTestEngine(t, model.Qwen25Math1_5B, 1<<30)
	dt := e.SwapTransfer(1 << 30)
	if dt <= 0 || clk.Now() != dt {
		t.Fatalf("dt = %v", dt)
	}
	if e.TransferTime != dt {
		t.Errorf("transfer time = %v", e.TransferTime)
	}
	if e.SwapTransfer(0) != 0 {
		t.Error("zero-byte swap should be free")
	}
}

func TestRecorderIntegration(t *testing.T) {
	clk := &sim.Clock{}
	rec := &trace.Recorder{}
	e, err := New("gen", model.Qwen25Math1_5B, hw.RTX4090, 2<<30, clk, rec)
	if err != nil {
		t.Fatal(err)
	}
	e.DecodeRound(4, 4*100, trace.PhaseGenerate)
	e.PrefillBatch([]PrefillItem{{NewTokens: 100, CtxTokens: 100}}, trace.PhaseVerify)
	if len(rec.Samples) != 2 {
		t.Fatalf("samples = %d", len(rec.Samples))
	}
	if rec.Samples[0].Phase != trace.PhaseGenerate || rec.Samples[1].Phase != trace.PhaseVerify {
		t.Errorf("phases = %v, %v", rec.Samples[0].Phase, rec.Samples[1].Phase)
	}
	// Verification prefill is compute-dense: its utilization should beat
	// a small decode batch (Fig 4's contrast).
	if rec.Samples[1].Util <= rec.Samples[0].Util {
		t.Errorf("prefill util %.3f not above decode util %.3f",
			rec.Samples[1].Util, rec.Samples[0].Util)
	}
}

func TestResizeCache(t *testing.T) {
	e, _ := newTestEngine(t, model.Qwen25Math1_5B, 2<<30)
	if err := e.ResizeCache(1 << 30); err != nil {
		t.Fatal(err)
	}
	if got := e.Cache.CapacityTokens(); got != (1<<30)/e.Model.KVBytesPerToken() {
		t.Errorf("capacity = %d", got)
	}
}
