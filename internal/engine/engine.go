// Package engine simulates an LLM serving engine (one model instance) on
// a virtual clock: batched prefill and single-token decode rounds whose
// latency comes from the roofline model, backed by a prefix-sharing KV
// cache. Two engines — a generator and a verifier — collocated on one GPU
// form the paper's serving substrate (§2.3, §5).
//
// The engine is where the paper's core hardware phenomenon lives: a decode
// round streams the full weights regardless of batch size, so a batch that
// has shrunk to a few straggler beams runs barely faster than a full batch
// — the idle compute Speculative Beam Extension reclaims (§3.2.1).
package engine

import (
	"fmt"

	"fasttts/internal/hw"
	"fasttts/internal/kvcache"
	"fasttts/internal/model"
	"fasttts/internal/sim"
	"fasttts/internal/trace"
)

// Engine is one simulated model instance.
type Engine struct {
	Name  string
	Model model.Config
	GPU   hw.GPU
	Cache *kvcache.Cache
	Clock *sim.Clock
	Rec   *trace.Recorder

	// BusyTime accumulates the engine's total charged time (the paper's
	// generator/verifier latency breakdown in Fig 13).
	BusyTime float64
	// DecodedTokens and PrefilledTokens count work performed.
	DecodedTokens   int64
	PrefilledTokens int64
	// TransferTime accumulates offload PCIe time (§4.3.2).
	TransferTime float64
}

// New validates that the model's weights fit and returns an engine whose
// KV cache holds kvBytes.
func New(name string, m model.Config, g hw.GPU, kvBytes int64, clk *sim.Clock, rec *trace.Recorder) (*Engine, error) {
	if m.WeightBytes() > g.VRAMBytes {
		return nil, fmt.Errorf("engine %s: weights (%d B) exceed %s VRAM", name, m.WeightBytes(), g.Name)
	}
	if kvBytes <= 0 {
		return nil, fmt.Errorf("engine %s: non-positive KV budget %d", name, kvBytes)
	}
	return &Engine{
		Name:  name,
		Model: m,
		GPU:   g,
		Cache: kvcache.New(kvBytes, m.KVBytesPerToken()),
		Clock: clk,
		Rec:   rec,
	}, nil
}

// DecodeRound charges one decode step for a batch of `batch` sequences
// whose cached contexts total ctxTokens, attributing the sample to phase.
// realBatch is the number of non-speculative sequences (used only for the
// utilization attribution of speculative slots); pass batch when all work
// is standard. It returns the round latency.
func (e *Engine) DecodeRound(batch int, ctxTokens int64, phase trace.Phase) float64 {
	if batch <= 0 {
		return 0
	}
	avgCtx := int(ctxTokens / int64(batch))
	flops := float64(batch) * e.Model.DecodeFLOPsPerToken(avgCtx)
	bytes := e.Model.DecodeBytesPerStep(batch, ctxTokens)
	dt := e.GPU.Roofline(flops, bytes)
	start := e.Clock.Now()
	e.Clock.Advance(dt)
	e.BusyTime += dt
	e.DecodedTokens += int64(batch)
	e.Rec.Record(trace.Sample{
		Start: start, End: start + dt, Phase: phase,
		Util:  e.GPU.Utilization(flops, dt),
		Batch: batch, KVBytes: e.Cache.UsedBytes(),
	})
	return dt
}

// PrefillItem is one sequence's contribution to a prefill batch.
type PrefillItem struct {
	NewTokens int // tokens to prefill
	CtxTokens int // total context length the new tokens attend over
}

// PrefillBatch charges one batched prefill: weights stream once, each
// item contributes its attention FLOPs. Returns the batch latency.
func (e *Engine) PrefillBatch(items []PrefillItem, phase trace.Phase) float64 {
	var flops, bytes float64
	newTotal := 0
	for _, it := range items {
		if it.NewTokens <= 0 {
			continue
		}
		flops += e.Model.PrefillFLOPs(it.NewTokens, it.CtxTokens)
		newTotal += it.NewTokens
	}
	if newTotal == 0 {
		return 0
	}
	bytes = e.Model.PrefillBytes(newTotal)
	dt := e.GPU.Roofline(flops, bytes)
	start := e.Clock.Now()
	e.Clock.Advance(dt)
	e.BusyTime += dt
	e.PrefilledTokens += int64(newTotal)
	e.Rec.Record(trace.Sample{
		Start: start, End: start + dt, Phase: phase,
		Util:  e.GPU.Utilization(flops, dt),
		Batch: len(items), KVBytes: e.Cache.UsedBytes(),
	})
	return dt
}

// SwapTransfer charges a PCIe transfer of the given bytes (KV offload,
// §4.3.2) and returns the latency.
func (e *Engine) SwapTransfer(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	dt := e.GPU.TransferTime(float64(bytes))
	start := e.Clock.Now()
	e.Clock.Advance(dt)
	e.TransferTime += dt
	e.BusyTime += dt
	e.Rec.Record(trace.Sample{
		Start: start, End: start + dt, Phase: trace.PhaseTransfer,
		Util: 0, Batch: 0, KVBytes: e.Cache.UsedBytes(),
	})
	return dt
}

// ResizeCache re-partitions this engine's KV budget (invoked by the
// asymmetric allocator when system state changes).
func (e *Engine) ResizeCache(kvBytes int64) error {
	return e.Cache.Resize(kvBytes)
}
