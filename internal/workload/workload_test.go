package workload

import (
	"math"
	"testing"

	"fasttts/internal/rng"
)

func TestSpecByName(t *testing.T) {
	for _, name := range []string{"AIME24", "AMC23", "MATH500", "HumanEval"} {
		s, err := SpecByName(name)
		if err != nil {
			t.Fatalf("SpecByName(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("got %q", s.Name)
		}
	}
	if _, err := SpecByName("GSM8K"); err == nil {
		t.Error("expected error for unknown dataset")
	}
}

func TestDatasetDeterminism(t *testing.T) {
	a := NewDataset(AIME24, rng.New(11))
	b := NewDataset(AIME24, rng.New(11))
	if len(a.Problems) != len(b.Problems) {
		t.Fatal("sizes differ")
	}
	for i := range a.Problems {
		if a.Problems[i].Difficulty != b.Problems[i].Difficulty ||
			a.Problems[i].PromptTokens != b.Problems[i].PromptTokens {
			t.Fatalf("problem %d differs between identical seeds", i)
		}
	}
	c := NewDataset(AIME24, rng.New(12))
	same := 0
	for i := range a.Problems {
		if a.Problems[i].Difficulty == c.Problems[i].Difficulty {
			same++
		}
	}
	if same == len(a.Problems) {
		t.Error("different seeds produced identical dataset")
	}
}

func TestDatasetBounds(t *testing.T) {
	ds := NewDataset(AMC23, rng.New(3))
	if len(ds.Problems) != AMC23.Problems {
		t.Fatalf("problems = %d", len(ds.Problems))
	}
	for _, p := range ds.Problems {
		if p.Difficulty < AMC23.DiffLo || p.Difficulty > AMC23.DiffHi {
			t.Errorf("difficulty %v outside [%v,%v]", p.Difficulty, AMC23.DiffLo, AMC23.DiffHi)
		}
		if p.PromptTokens < AMC23.PromptLo || p.PromptTokens > AMC23.PromptHi {
			t.Errorf("prompt %d outside range", p.PromptTokens)
		}
	}
}

func TestAIMEHarderThanAMC(t *testing.T) {
	root := rng.New(5)
	aime := NewDataset(AIME24, root)
	amc := NewDataset(AMC23, root)
	ma, mb := 0.0, 0.0
	for _, p := range aime.Problems {
		ma += p.Difficulty
	}
	for _, p := range amc.Problems {
		mb += p.Difficulty
	}
	ma /= float64(len(aime.Problems))
	mb /= float64(len(amc.Problems))
	if ma <= mb {
		t.Errorf("mean difficulty AIME %.2f <= AMC %.2f", ma, mb)
	}
}

func TestSubset(t *testing.T) {
	ds := NewDataset(AIME24, rng.New(1))
	if got := len(ds.Subset(5)); got != 5 {
		t.Errorf("Subset(5) = %d", got)
	}
	if got := len(ds.Subset(10000)); got != AIME24.Problems {
		t.Errorf("oversized Subset = %d", got)
	}
}

// Step lengths must be heavy-tailed: the max over many samples should
// dwarf the mean (Fig 3 right shows ~200 avg vs >1000 max).
func TestStepLengthHeavyTail(t *testing.T) {
	ds := NewDataset(AIME24, rng.New(7))
	p := ds.Problems[0]
	r := rng.New(99)
	var sum float64
	maxLen := 0
	const n = 4000
	for i := 0; i < n; i++ {
		st := &PathState{}
		s := SampleStep(p, st, SkillQwen1_5B, 0, r)
		sum += float64(s.Tokens)
		if s.Tokens > maxLen {
			maxLen = s.Tokens
		}
	}
	mean := sum / n
	if mean < 80 || mean > 350 {
		t.Errorf("mean step length = %.0f, want ~120-250 (AIME calibration)", mean)
	}
	if float64(maxLen) < 3.5*mean {
		t.Errorf("max step %d not heavy-tailed vs mean %.0f", maxLen, mean)
	}
}

func TestStepCapAndNonTerminalWhenCapped(t *testing.T) {
	ds := NewDataset(AIME24, rng.New(7))
	p := ds.Problems[0]
	r := rng.New(3)
	for i := 0; i < 500; i++ {
		st := &PathState{}
		s := SampleStep(p, st, SkillQwen1_5B, 16, r)
		if s.Tokens > 16 {
			t.Fatalf("step %d exceeds cap", s.Tokens)
		}
		// A capped step may only be terminal via the MaxSteps guard,
		// which cannot fire at step 0 (MaxSteps is 10).
		if s.Tokens == 16 && s.Terminal {
			t.Fatal("capped step marked terminal")
		}
	}
}

func TestMaxStepsForcesTermination(t *testing.T) {
	ds := NewDataset(AIME24, rng.New(7))
	p := ds.Problems[0]
	r := rng.New(4)
	st := &PathState{Steps: p.spec.MaxSteps - 1}
	s := SampleStep(p, st, SkillQwen1_5B, 0, r)
	if !s.Terminal {
		t.Error("step at MaxSteps-1 must terminate")
	}
}

func TestApplyStep(t *testing.T) {
	st := &PathState{}
	ApplyStep(st, Step{Tokens: 40, QualityDelta: 0.2, Terminal: false})
	if st.Steps != 1 || st.Tokens != 40 || st.Quality != 0.2 || st.Terminated {
		t.Errorf("state = %+v", st)
	}
	ApplyStep(st, Step{Tokens: 10, QualityDelta: -0.1, Terminal: true})
	if st.Steps != 2 || st.Tokens != 50 || !st.Terminated {
		t.Errorf("state = %+v", st)
	}
	if math.Abs(st.Quality-0.1) > 1e-12 {
		t.Errorf("quality = %v", st.Quality)
	}
}

func TestSkillDriftOrdering(t *testing.T) {
	// On the same problems, the 7B generator should accumulate more
	// quality than the 1.5B one (it's the reason 7B models are stronger).
	ds := NewDataset(AMC23, rng.New(9))
	mean := func(g GeneratorSkill, seed uint64) float64 {
		r := rng.New(seed)
		total := 0.0
		for _, p := range ds.Problems {
			st := &PathState{}
			for i := 0; i < 6; i++ {
				s := SampleStep(p, st, g, 0, r)
				ApplyStep(st, s)
			}
			total += st.Quality
		}
		return total / float64(len(ds.Problems))
	}
	q15 := mean(SkillQwen1_5B, 21)
	q7 := mean(SkillQwen7B, 21)
	if q7 <= q15 {
		t.Errorf("7B quality %.3f <= 1.5B quality %.3f", q7, q15)
	}
}

func TestScoreInRangeAndTracksQuality(t *testing.T) {
	r := rng.New(13)
	good := &PathState{Quality: 1.5}
	bad := &PathState{Quality: -1.5}
	var sg, sb float64
	for i := 0; i < 300; i++ {
		sg += Score(good, SkillShepherd7B, r)
		sb += Score(bad, SkillShepherd7B, r)
	}
	sg /= 300
	sb /= 300
	if sg <= sb {
		t.Errorf("score of good path %.3f <= bad path %.3f", sg, sb)
	}
	for i := 0; i < 300; i++ {
		s := Score(good, SkillSkywork1_5B, r)
		if s < 0 || s > 1 {
			t.Fatalf("score %v outside [0,1]", s)
		}
	}
}

// Consecutive PRM scores of the same path must be positively correlated
// (the property §4.1.1's speculative-candidate heuristic relies on).
func TestScoreAutocorrelation(t *testing.T) {
	r := rng.New(17)
	var xs, ys []float64
	for path := 0; path < 400; path++ {
		st := &PathState{Quality: 0}
		s1 := Score(st, SkillShepherd7B, r)
		s2 := Score(st, SkillShepherd7B, r)
		xs = append(xs, s1)
		ys = append(ys, s2)
	}
	if rho := pearson(xs, ys); rho < 0.3 {
		t.Errorf("consecutive-score correlation = %.3f, want > 0.3", rho)
	}
}

func TestOracleVerifierNoiseless(t *testing.T) {
	r := rng.New(19)
	st := &PathState{Quality: 0.5}
	a := Score(st, SkillOracleExact, r)
	b := Score(st, SkillOracleExact, r)
	if a != b {
		t.Errorf("oracle scores differ: %v vs %v", a, b)
	}
}

func TestAnswerDistribution(t *testing.T) {
	ds := NewDataset(AMC23, rng.New(23))
	p := ds.Problems[0]
	r := rng.New(29)
	// A very high-quality path answers correctly almost always.
	correct := 0
	for i := 0; i < 500; i++ {
		if Answer(p, &PathState{Quality: 3}, r) == 0 {
			correct++
		}
	}
	if correct < 450 {
		t.Errorf("high-quality correct rate %d/500", correct)
	}
	// A terrible path almost never answers correctly, and wrong answers
	// scatter across the space.
	wrong := map[int]int{}
	correct = 0
	for i := 0; i < 500; i++ {
		a := Answer(p, &PathState{Quality: -3}, r)
		if a == 0 {
			correct++
		} else {
			wrong[a]++
		}
	}
	if correct > 50 {
		t.Errorf("low-quality correct rate %d/500", correct)
	}
	if len(wrong) < 3 {
		t.Errorf("wrong answers not scattered: %v", wrong)
	}
	for a := range wrong {
		if a < 1 || a >= p.AnswerSpace {
			t.Errorf("answer %d outside space", a)
		}
	}
}

func TestCorrectProbMonotoneInQuality(t *testing.T) {
	ds := NewDataset(AIME24, rng.New(31))
	p := ds.Problems[0]
	prev := -1.0
	for q := -2.0; q <= 2.0; q += 0.5 {
		pc := CorrectProb(p, &PathState{Quality: q})
		if pc <= prev {
			t.Fatalf("CorrectProb not monotone at q=%v", q)
		}
		prev = pc
	}
}

func TestHarderProblemsLowerCorrectProb(t *testing.T) {
	easy := &Problem{Difficulty: 0.3}
	hard := &Problem{Difficulty: 0.9}
	st := &PathState{Quality: 0.5}
	if CorrectProb(easy, st) <= CorrectProb(hard, st) {
		t.Error("difficulty should reduce correctness probability")
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var mx, my float64
	for i := range xs {
		mx += xs[i]
		my += ys[i]
	}
	mx /= n
	my /= n
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	return sxy / math.Sqrt(sxx*syy)
}

// HumanEval's coding steps are shorter and tighter than AIME's math
// steps (§6.4) — the workload property behind Fig 15's coding panel.
func TestHumanEvalShorterStepsThanAIME(t *testing.T) {
	root := rng.New(41)
	mean := func(spec DatasetSpec) (avg float64, max int) {
		ds := NewDataset(spec, root)
		r := rng.New(43).Child(spec.Name)
		sum, count := 0.0, 0
		for _, p := range ds.Subset(5) {
			for i := 0; i < 400; i++ {
				st := &PathState{}
				s := SampleStep(p, st, SkillQwen1_5B, 0, r)
				sum += float64(s.Tokens)
				count++
				if s.Tokens > max {
					max = s.Tokens
				}
			}
		}
		return sum / float64(count), max
	}
	hAvg, _ := mean(HumanEval)
	aAvg, _ := mean(AIME24)
	if hAvg >= aAvg {
		t.Errorf("HumanEval mean step %.0f not below AIME %.0f", hAvg, aAvg)
	}
}

// Datasets terminate within their MaxSteps bound for any generator.
func TestTerminationWithinMaxSteps(t *testing.T) {
	root := rng.New(47)
	for _, spec := range []DatasetSpec{AIME24, AMC23, MATH500, HumanEval} {
		ds := NewDataset(spec, root)
		r := rng.New(53).Child(spec.Name)
		for _, p := range ds.Subset(4) {
			st := &PathState{}
			for !st.Terminated {
				s := SampleStep(p, st, SkillQwen1_5B, 0, r)
				ApplyStep(st, s)
				if st.Steps > spec.MaxSteps {
					t.Fatalf("%s: path exceeded MaxSteps %d", spec.Name, spec.MaxSteps)
				}
			}
		}
	}
}
