package workload

import (
	"math"
	"testing"

	"fasttts/internal/rng"
)

func TestPoissonArrivalsShape(t *testing.T) {
	const n, rate = 4000, 2.0
	times := PoissonArrivals(n, rate, rng.New(7).Child("arr"))
	if len(times) != n {
		t.Fatalf("got %d arrivals, want %d", len(times), n)
	}
	prev := 0.0
	for i, ts := range times {
		if ts <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, ts, prev)
		}
		prev = ts
	}
	// Mean inter-arrival time converges to 1/rate.
	mean := times[n-1] / float64(n)
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Errorf("mean inter-arrival %v, want ≈ %v", mean, 1/rate)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(64, 1.5, rng.New(7).Child("arr"))
	b := PoissonArrivals(64, 1.5, rng.New(7).Child("arr"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across equal streams: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestUniformArrivals(t *testing.T) {
	times := UniformArrivals(5, 2.5)
	for i, ts := range times {
		if want := 2.5 * float64(i); ts != want {
			t.Errorf("arrival %d at %v, want %v", i, ts, want)
		}
	}
}

func TestBurstArrivals(t *testing.T) {
	times := BurstArrivals(7, 3, 10)
	want := []float64{0, 0, 0, 10, 10, 10, 20}
	for i := range times {
		if times[i] != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, times[i], want[i])
		}
	}
}
