package workload

import (
	"math"
	"testing"

	"fasttts/internal/rng"
)

func TestPoissonArrivalsShape(t *testing.T) {
	const n, rate = 4000, 2.0
	times := PoissonArrivals(n, rate, rng.New(7).Child("arr"))
	if len(times) != n {
		t.Fatalf("got %d arrivals, want %d", len(times), n)
	}
	prev := 0.0
	for i, ts := range times {
		if ts <= prev {
			t.Fatalf("arrival %d at %v not after %v", i, ts, prev)
		}
		prev = ts
	}
	// Mean inter-arrival time converges to 1/rate.
	mean := times[n-1] / float64(n)
	if math.Abs(mean-1/rate) > 0.05/rate {
		t.Errorf("mean inter-arrival %v, want ≈ %v", mean, 1/rate)
	}
}

func TestPoissonArrivalsDeterministic(t *testing.T) {
	a := PoissonArrivals(64, 1.5, rng.New(7).Child("arr"))
	b := PoissonArrivals(64, 1.5, rng.New(7).Child("arr"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across equal streams: %v vs %v", i, a[i], b[i])
		}
	}
	// Distinct seeds must give distinct traces (the trace really is
	// seed-driven, not hard-coded).
	c := PoissonArrivals(64, 1.5, rng.New(8).Child("arr"))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 produced identical Poisson traces")
	}
}

func TestPoissonArrivalsSingleRequest(t *testing.T) {
	times := PoissonArrivals(1, 0.25, rng.New(7).Child("arr"))
	if len(times) != 1 {
		t.Fatalf("got %d arrivals, want 1", len(times))
	}
	if times[0] <= 0 || math.IsInf(times[0], 0) || math.IsNaN(times[0]) {
		t.Errorf("single arrival at %v, want a positive finite time", times[0])
	}
}

func TestPoissonArrivalsEmpty(t *testing.T) {
	if times := PoissonArrivals(0, 1, rng.New(7).Child("arr")); len(times) != 0 {
		t.Errorf("got %d arrivals for n=0, want none", len(times))
	}
}

func TestPoissonArrivalsZeroRatePanics(t *testing.T) {
	for _, rate := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("rate %v did not panic", rate)
				}
			}()
			PoissonArrivals(4, rate, rng.New(7).Child("arr"))
		}()
	}
}

func TestUniformArrivals(t *testing.T) {
	times := UniformArrivals(5, 2.5)
	for i, ts := range times {
		if want := 2.5 * float64(i); ts != want {
			t.Errorf("arrival %d at %v, want %v", i, ts, want)
		}
	}
}

func TestBurstArrivals(t *testing.T) {
	times := BurstArrivals(7, 3, 10)
	want := []float64{0, 0, 0, 10, 10, 10, 20}
	for i := range times {
		if times[i] != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestBurstArrivalsEdgeCases(t *testing.T) {
	// A non-positive burst size is clamped to 1: evenly spaced arrivals.
	for _, burst := range []int{0, -3} {
		times := BurstArrivals(3, burst, 5)
		for i, ts := range times {
			if want := 5 * float64(i); ts != want {
				t.Errorf("burst %d: arrival %d at %v, want %v", burst, i, ts, want)
			}
		}
	}
	// A burst wider than the stream releases everything at t=0.
	for i, ts := range BurstArrivals(4, 10, 7) {
		if ts != 0 {
			t.Errorf("arrival %d at %v, want 0 for burst > n", i, ts)
		}
	}
	// A single request arrives at t=0 regardless of burst geometry.
	if times := BurstArrivals(1, 3, 10); len(times) != 1 || times[0] != 0 {
		t.Errorf("single-request burst arrivals %v, want [0]", times)
	}
	// Zero gap collapses all bursts onto t=0.
	for i, ts := range BurstArrivals(6, 2, 0) {
		if ts != 0 {
			t.Errorf("arrival %d at %v, want 0 with zero gap", i, ts)
		}
	}
	if times := BurstArrivals(0, 2, 1); len(times) != 0 {
		t.Errorf("got %d arrivals for n=0, want none", len(times))
	}
}

func TestSinusoidalArrivalsShape(t *testing.T) {
	const n, base, period = 6000, 2.0, 50.0
	times := SinusoidalArrivals(n, base, 0.8, period, rng.New(7).Child("arr"))
	if len(times) != n {
		t.Fatalf("got %d arrivals, want %d", len(times), n)
	}
	prev := 0.0
	for i, ts := range times {
		if ts < prev {
			t.Fatalf("arrival %d at %v before %v", i, ts, prev)
		}
		prev = ts
	}
	// The time-averaged rate of λ(t) = base·(1 + a·sin) is base.
	mean := times[n-1] / float64(n)
	if math.Abs(mean-1/base) > 0.1/base {
		t.Errorf("mean inter-arrival %v, want ≈ %v", mean, 1/base)
	}
	// Peak half-cycles ([0, T/2) mod T) must carry more arrivals than
	// trough half-cycles — the diurnal asymmetry the scenario exists for.
	peak, trough := 0, 0
	for _, ts := range times {
		if math.Mod(ts, period) < period/2 {
			peak++
		} else {
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("peak half-cycles got %d arrivals vs %d in troughs, want more", peak, trough)
	}
}

func TestSinusoidalArrivalsDeterministic(t *testing.T) {
	a := SinusoidalArrivals(64, 1.0, 0.5, 30, rng.New(7).Child("arr"))
	b := SinusoidalArrivals(64, 1.0, 0.5, 30, rng.New(7).Child("arr"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across equal streams: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSinusoidalArrivalsAmplitudeClamp(t *testing.T) {
	// Amplitudes outside [0, 1] are clamped, not rejected: 2 behaves as 1.
	a := SinusoidalArrivals(32, 1.0, 2.0, 30, rng.New(7).Child("arr"))
	b := SinusoidalArrivals(32, 1.0, 1.0, 30, rng.New(7).Child("arr"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d: amplitude 2 gave %v, clamped amplitude 1 gave %v", i, a[i], b[i])
		}
	}
}

func TestSinusoidalArrivalsPanics(t *testing.T) {
	for _, tc := range []struct{ base, amplitude, period float64 }{
		{0, 0.5, 10}, {-1, 0.5, 10}, {1, 0.5, 0}, {1, 0.5, -5}, {1, math.NaN(), 10},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("base %v amplitude %v period %v did not panic", tc.base, tc.amplitude, tc.period)
				}
			}()
			SinusoidalArrivals(4, tc.base, tc.amplitude, tc.period, rng.New(7).Child("arr"))
		}()
	}
}

func TestFlashCrowdArrivalsShape(t *testing.T) {
	const n, base, spikeStart, spikeDur, mult = 4000, 0.5, 100.0, 50.0, 10.0
	times := FlashCrowdArrivals(n, base, spikeStart, spikeDur, mult, rng.New(7).Child("arr"))
	if len(times) != n {
		t.Fatalf("got %d arrivals, want %d", len(times), n)
	}
	inSpike := 0
	prev := 0.0
	for i, ts := range times {
		if ts < prev {
			t.Fatalf("arrival %d at %v before %v", i, ts, prev)
		}
		prev = ts
		if ts >= spikeStart && ts < spikeStart+spikeDur {
			inSpike++
		}
	}
	// The spike window must be ≫ denser than the baseline: its arrival
	// rate is mult× base, so density per second should exceed 2× baseline
	// even with sampling noise.
	spikeDensity := float64(inSpike) / spikeDur
	baseDensity := float64(n-inSpike) / (times[n-1] - spikeDur)
	if spikeDensity < 2*baseDensity {
		t.Errorf("spike density %v vs baseline %v, want the flash crowd to dominate", spikeDensity, baseDensity)
	}
}

func TestFlashCrowdArrivalsDeterministic(t *testing.T) {
	a := FlashCrowdArrivals(64, 0.5, 20, 10, 8, rng.New(7).Child("arr"))
	b := FlashCrowdArrivals(64, 0.5, 20, 10, 8, rng.New(7).Child("arr"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs across equal streams: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFlashCrowdArrivalsZeroMultSkipsWindow(t *testing.T) {
	// mult 0 models an outage window: no arrival may land inside it.
	times := FlashCrowdArrivals(200, 2.0, 10, 5, 0, rng.New(7).Child("arr"))
	for i, ts := range times {
		if ts >= 10 && ts < 15 {
			t.Fatalf("arrival %d at %v inside the zero-rate window", i, ts)
		}
	}
}

func TestFlashCrowdArrivalsPanics(t *testing.T) {
	for _, tc := range []struct{ base, mult float64 }{{0, 2}, {-1, 2}, {1, -0.5}, {1, math.NaN()}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("base %v mult %v did not panic", tc.base, tc.mult)
				}
			}()
			FlashCrowdArrivals(4, tc.base, 10, 5, tc.mult, rng.New(7).Child("arr"))
		}()
	}
}

func TestUniformArrivalsEdgeCases(t *testing.T) {
	if times := UniformArrivals(0, 1); len(times) != 0 {
		t.Errorf("got %d arrivals for n=0, want none", len(times))
	}
	if times := UniformArrivals(1, 3); len(times) != 1 || times[0] != 0 {
		t.Errorf("single uniform arrival %v, want [0]", times)
	}
	// Zero spacing degenerates to one big burst at t=0.
	for i, ts := range UniformArrivals(4, 0) {
		if ts != 0 {
			t.Errorf("arrival %d at %v, want 0 with zero spacing", i, ts)
		}
	}
}
