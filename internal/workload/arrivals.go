package workload

// Arrival-process generators for the multi-tenant serving engine. An
// open-loop client population submits requests on its own schedule
// regardless of server progress (the EdgeReasoning-style characterization
// of concurrent edge traffic); a closed-loop population keeps a fixed
// number of requests outstanding, issuing the next one only after the
// previous completes.

import (
	"fmt"

	"fasttts/internal/rng"
)

// PoissonArrivals returns n non-decreasing arrival times of an open-loop
// Poisson process with the given mean rate in requests per second.
// Sampling is driven entirely by r, so equal streams give equal traces.
// It panics if rate is not positive (a zero-rate open loop never submits).
func PoissonArrivals(n int, rate float64, r *rng.Stream) []float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: Poisson arrival rate must be positive, got %v", rate))
	}
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += r.Exp(rate)
		out[i] = t
	}
	return out
}

// UniformArrivals returns n arrivals evenly spaced `spacing` seconds
// apart, starting at zero — the deterministic open-loop baseline.
func UniformArrivals(n int, spacing float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * spacing
	}
	return out
}

// BurstArrivals returns n arrivals in bursts of `burst` simultaneous
// requests, with `gap` seconds between bursts — the adversarial pattern
// for admission control.
func BurstArrivals(n, burst int, gap float64) []float64 {
	if burst < 1 {
		burst = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i/burst) * gap
	}
	return out
}

// ClosedLoop describes a fixed-concurrency closed-loop workload:
// Concurrency clients each keep exactly one request outstanding, issuing
// their next request Think seconds after the previous one completes.
// Arrival times therefore depend on server progress and are materialized
// by the serving engine, not precomputed.
type ClosedLoop struct {
	Concurrency int
	Think       float64
}
