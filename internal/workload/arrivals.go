package workload

// Arrival-process generators for the multi-tenant serving engine. An
// open-loop client population submits requests on its own schedule
// regardless of server progress (the EdgeReasoning-style characterization
// of concurrent edge traffic); a closed-loop population keeps a fixed
// number of requests outstanding, issuing the next one only after the
// previous completes.

import (
	"fmt"
	"math"

	"fasttts/internal/rng"
)

// PoissonArrivals returns n non-decreasing arrival times of an open-loop
// Poisson process with the given mean rate in requests per second.
// Sampling is driven entirely by r, so equal streams give equal traces.
// It panics if rate is not positive (a zero-rate open loop never submits).
func PoissonArrivals(n int, rate float64, r *rng.Stream) []float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("workload: Poisson arrival rate must be positive, got %v", rate))
	}
	out := make([]float64, n)
	t := 0.0
	for i := range out {
		t += r.Exp(rate)
		out[i] = t
	}
	return out
}

// UniformArrivals returns n arrivals evenly spaced `spacing` seconds
// apart, starting at zero — the deterministic open-loop baseline.
func UniformArrivals(n int, spacing float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * spacing
	}
	return out
}

// BurstArrivals returns n arrivals in bursts of `burst` simultaneous
// requests, with `gap` seconds between bursts — the adversarial pattern
// for admission control.
func BurstArrivals(n, burst int, gap float64) []float64 {
	if burst < 1 {
		burst = 1
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i/burst) * gap
	}
	return out
}

// SinusoidalArrivals returns n arrivals of a nonhomogeneous Poisson
// process whose rate follows a diurnal cycle:
//
//	λ(t) = base · (1 + amplitude·sin(2πt/period))
//
// sampled by Lewis–Shedler thinning, so the stream is a deterministic
// function of r. amplitude is clamped into [0, 1] (amplitude 1 means the
// rate dips to zero at the trough); it panics if base or period is not
// positive.
func SinusoidalArrivals(n int, base, amplitude, period float64, r *rng.Stream) []float64 {
	if base <= 0 {
		panic(fmt.Sprintf("workload: sinusoidal base rate must be positive, got %v", base))
	}
	if period <= 0 {
		panic(fmt.Sprintf("workload: sinusoidal period must be positive, got %v", period))
	}
	if math.IsNaN(amplitude) {
		// A NaN amplitude would poison every thinning acceptance test and
		// hang the sampler; fail fast like the other invalid parameters.
		panic("workload: sinusoidal amplitude must not be NaN")
	}
	amplitude = math.Min(math.Max(amplitude, 0), 1)
	rate := func(t float64) float64 {
		return base * (1 + amplitude*math.Sin(2*math.Pi*t/period))
	}
	return thinned(n, base*(1+amplitude), rate, r)
}

// FlashCrowdArrivals returns n arrivals of a piecewise-rate Poisson
// process: base requests/second everywhere except the flash-crowd window
// [spikeStart, spikeStart+spikeDur), where the rate is base·mult. Sampled
// by thinning, so the stream is a deterministic function of r. It panics
// if base is not positive or mult is negative (mult below 1 models a dip
// rather than a crowd, and mult 0 an outage window).
func FlashCrowdArrivals(n int, base, spikeStart, spikeDur, mult float64, r *rng.Stream) []float64 {
	if base <= 0 {
		panic(fmt.Sprintf("workload: flash-crowd base rate must be positive, got %v", base))
	}
	if mult < 0 || math.IsNaN(mult) {
		panic(fmt.Sprintf("workload: flash-crowd multiplier must be non-negative, got %v", mult))
	}
	rate := func(t float64) float64 {
		if t >= spikeStart && t < spikeStart+spikeDur {
			return base * mult
		}
		return base
	}
	return thinned(n, base*math.Max(1, mult), rate, r)
}

// thinned samples n arrivals of a nonhomogeneous Poisson process with the
// given instantaneous rate via Lewis–Shedler thinning: candidate arrivals
// are drawn at the envelope rate maxRate (≥ rate(t) everywhere) and
// accepted with probability rate(t)/maxRate.
func thinned(n int, maxRate float64, rate func(float64) float64, r *rng.Stream) []float64 {
	out := make([]float64, 0, n)
	t := 0.0
	for len(out) < n {
		t += r.Exp(maxRate)
		if r.Bool(rate(t) / maxRate) {
			out = append(out, t)
		}
	}
	return out
}

// ClosedLoop describes a fixed-concurrency closed-loop workload:
// Concurrency clients each keep exactly one request outstanding, issuing
// their next request Think seconds after the previous one completes.
// Arrival times therefore depend on server progress and are materialized
// by the serving engine, not precomputed.
type ClosedLoop struct {
	Concurrency int
	Think       float64
}
