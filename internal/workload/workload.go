// Package workload generates the synthetic reasoning workload that stands
// in for real LLM generation (see DESIGN.md §1 for the substitution
// argument).
//
// The model reproduces the distributional properties every FastTTS
// mechanism depends on:
//
//   - Step lengths are heavy-tailed (lognormal), reproducing the extreme
//     average-vs-max disparity of Fig 3 (right) that causes stragglers.
//   - Each path carries a latent quality that performs a random walk whose
//     drift depends on generator skill and problem difficulty; the PRM
//     score is a noisy AR(1) observation of quality, so consecutive scores
//     are correlated — the property §4.1.1's speculative candidate
//     selection exploits.
//   - Final answers are sampled from terminal quality, making Top-1
//     (majority-vote) and Pass@N accuracy measurable (Fig 14).
//
// All sampling is driven by rng.Stream, so runs are deterministic.
package workload

import (
	"fmt"
	"math"

	"fasttts/internal/rng"
)

// DatasetSpec parameterizes a benchmark dataset.
type DatasetSpec struct {
	Name     string
	Problems int
	// Difficulty range (uniform).
	DiffLo, DiffHi float64
	// Step-length lognormal parameters (of token count per thinking step).
	StepLogMu, StepLogSigma float64
	// MinStepTokens floors sampled steps.
	MinStepTokens int
	// MaxSteps bounds the reasoning depth.
	MaxSteps int
	// TypicalSteps is where termination probability reaches 1/2.
	TypicalSteps float64
	// PromptTokens is the question length range (uniform ints).
	PromptLo, PromptHi int
	// AnswerSpace is the number of distinct plausible answers (1 correct +
	// AnswerSpace-1 distractors).
	AnswerSpace int
	// QualityDriftScale scales per-step quality movement.
	QualityDriftScale float64
}

// Specs for the paper's benchmarks (§6.1, §6.4). Step-length parameters
// are calibrated so that on AIME the mean step is ≈200 tokens with
// outliers beyond 1000 (Fig 3 right).
var (
	AIME24 = DatasetSpec{
		Name: "AIME24", Problems: 30,
		DiffLo: 0.74, DiffHi: 0.95,
		StepLogMu: 5.05, StepLogSigma: 0.72, MinStepTokens: 12,
		MaxSteps: 10, TypicalSteps: 6.5,
		PromptLo: 80, PromptHi: 160,
		AnswerSpace: 250, QualityDriftScale: 1.0,
	}
	AMC23 = DatasetSpec{
		Name: "AMC23", Problems: 40,
		DiffLo: 0.50, DiffHi: 0.88,
		StepLogMu: 4.75, StepLogSigma: 0.65, MinStepTokens: 10,
		MaxSteps: 8, TypicalSteps: 5.0,
		PromptLo: 60, PromptHi: 130,
		AnswerSpace: 40, QualityDriftScale: 1.0,
	}
	MATH500 = DatasetSpec{
		Name: "MATH500", Problems: 500,
		DiffLo: 0.40, DiffHi: 0.88,
		StepLogMu: 4.60, StepLogSigma: 0.62, MinStepTokens: 8,
		MaxSteps: 8, TypicalSteps: 4.5,
		PromptLo: 50, PromptHi: 120,
		AnswerSpace: 20, QualityDriftScale: 1.0,
	}
	HumanEval = DatasetSpec{
		Name: "HumanEval", Problems: 164,
		DiffLo: 0.35, DiffHi: 0.72,
		StepLogMu: 4.45, StepLogSigma: 0.55, MinStepTokens: 8,
		MaxSteps: 6, TypicalSteps: 3.8,
		PromptLo: 100, PromptHi: 200,
		AnswerSpace: 6, QualityDriftScale: 0.9,
	}
)

// Few-shot serving variants: the same problems and reasoning dynamics,
// but each prompt carries a multi-shot chain-of-thought exemplar
// preamble, so prompts run thousands of tokens instead of ~100. This is
// the regime where prompt-prefix KV reuse has real economics — a prompt's
// KV state is ~100 MiB and its re-prefill costs real device time — which
// is what the memory-plane scenarios (cache-thrash, shared-prefix-storm)
// stress. Step parameters match the base datasets, so only prefill and
// cache behavior differ.
var (
	AIME24FewShot = func() DatasetSpec {
		s := AIME24
		s.Name = "AIME24-fewshot"
		s.PromptLo, s.PromptHi = 3600, 4800
		return s
	}()
	AMC23FewShot = func() DatasetSpec {
		s := AMC23
		s.Name = "AMC23-fewshot"
		s.PromptLo, s.PromptHi = 3000, 4000
		return s
	}()
	MATH500FewShot = func() DatasetSpec {
		s := MATH500
		s.Name = "MATH500-fewshot"
		s.PromptLo, s.PromptHi = 3200, 4200
		return s
	}()
)

// SpecByName returns the dataset spec with the given name.
func SpecByName(name string) (DatasetSpec, error) {
	for _, s := range []DatasetSpec{AIME24, AMC23, MATH500, HumanEval,
		AIME24FewShot, AMC23FewShot, MATH500FewShot} {
		if s.Name == name {
			return s, nil
		}
	}
	return DatasetSpec{}, fmt.Errorf("workload: unknown dataset %q", name)
}

// Problem is one benchmark question.
type Problem struct {
	Dataset      string
	Index        int
	Difficulty   float64
	PromptTokens int
	AnswerSpace  int
	spec         DatasetSpec
}

// Spec returns the dataset spec the problem was drawn from.
func (p *Problem) Spec() DatasetSpec { return p.spec }

// Dataset is a realized set of problems.
type Dataset struct {
	Spec     DatasetSpec
	Problems []*Problem
}

// NewDataset materializes the spec deterministically from the stream.
func NewDataset(spec DatasetSpec, root *rng.Stream) *Dataset {
	ds := &Dataset{Spec: spec}
	r := root.Child("dataset/" + spec.Name)
	for i := 0; i < spec.Problems; i++ {
		pr := r.ChildN("problem", i)
		ds.Problems = append(ds.Problems, &Problem{
			Dataset:      spec.Name,
			Index:        i,
			Difficulty:   spec.DiffLo + pr.Float64()*(spec.DiffHi-spec.DiffLo),
			PromptTokens: spec.PromptLo + pr.IntN(spec.PromptHi-spec.PromptLo+1),
			AnswerSpace:  spec.AnswerSpace,
			spec:         spec,
		})
	}
	return ds
}

// Subset returns the first n problems (or all if n is larger).
func (d *Dataset) Subset(n int) []*Problem {
	if n > len(d.Problems) {
		n = len(d.Problems)
	}
	return d.Problems[:n]
}

// GeneratorSkill captures a generator model's reasoning capability; used
// as the drift of the latent quality walk.
type GeneratorSkill struct {
	Name string
	// Skill in (0,1): expected per-step quality gain scale.
	Skill float64
	// Explore is the per-step quality noise (diversity across beams).
	Explore float64
}

// Skills for the paper's generators.
var (
	SkillQwen1_5B = GeneratorSkill{Name: "Qwen2.5-Math-1.5B", Skill: 0.50, Explore: 0.30}
	SkillQwen7B   = GeneratorSkill{Name: "Qwen2.5-Math-7B", Skill: 0.62, Explore: 0.26}
)

// VerifierSkill captures a PRM's scoring fidelity.
type VerifierSkill struct {
	Name string
	// Noise is the observation std of the PRM score.
	Noise float64
	// Rho is the AR(1) correlation of score noise between consecutive
	// steps of the same path (§4.1.1 relies on Rho > 0).
	Rho float64
}

var (
	SkillShepherd7B   = VerifierSkill{Name: "Math-Shepherd-Mistral-7B", Noise: 0.13, Rho: 0.70}
	SkillSkywork1_5B  = VerifierSkill{Name: "Skywork-o1-Open-PRM-1.5B", Noise: 0.18, Rho: 0.65}
	SkillOracleExact  = VerifierSkill{Name: "oracle", Noise: 0.0, Rho: 0.0}
	SkillRandomScores = VerifierSkill{Name: "random", Noise: 10.0, Rho: 0.0}
)

// PathState is the evolving latent state of one reasoning path. Children
// created by branching copy the parent's state (and then diverge).
type PathState struct {
	Quality    float64 // latent solution quality
	Noise      float64 // AR(1) PRM observation noise state
	Steps      int     // completed thinking steps
	Tokens     int     // generated tokens (excluding prompt)
	Terminated bool
	LastScore  float64 // most recent PRM score (set by Score)
}

// Step is the outcome of generating one thinking step.
type Step struct {
	Tokens       int
	QualityDelta float64
	Terminal     bool
}

// SampleStep draws the next thinking step for a path. maxTokens caps the
// step length (varying-granularity search sets this per step index); a
// capped step is never terminal — the thought was cut mid-stream and
// continues next step.
func SampleStep(p *Problem, st *PathState, g GeneratorSkill, maxTokens int, r *rng.Stream) Step {
	spec := p.spec
	n := int(r.LogNormal(spec.StepLogMu, spec.StepLogSigma))
	if n < spec.MinStepTokens {
		n = spec.MinStepTokens
	}
	capped := false
	if maxTokens > 0 && n > maxTokens {
		n = maxTokens
		capped = true
	}
	// Quality drift: skilled generators on easy problems improve; weak
	// generators on hard problems wander or regress.
	drift := (g.Skill - 0.60*p.Difficulty) * spec.QualityDriftScale * 0.25
	delta := drift + r.Norm(0, g.Explore*0.35)
	terminal := false
	if !capped {
		// Termination probability rises with depth and with quality
		// (confident solutions conclude sooner).
		x := (float64(st.Steps+1) - spec.TypicalSteps + st.Quality) / 1.5
		terminal = r.Bool(logistic(x))
	}
	if st.Steps+1 >= spec.MaxSteps {
		terminal = true
	}
	return Step{Tokens: n, QualityDelta: delta, Terminal: terminal}
}

// ApplyStep folds a sampled step into the path state.
func ApplyStep(st *PathState, s Step) {
	st.Quality += s.QualityDelta
	st.Steps++
	st.Tokens += s.Tokens
	if s.Terminal {
		st.Terminated = true
	}
}

// Score draws the PRM's score for the path's current state, advancing the
// AR(1) noise. Scores live in [0, 1]; higher is better.
func Score(st *PathState, v VerifierSkill, r *rng.Stream) float64 {
	innov := r.Norm(0, v.Noise)
	st.Noise = v.Rho*st.Noise + math.Sqrt(1-v.Rho*v.Rho)*innov
	s := logistic(1.6*st.Quality) + st.Noise
	if s < 0 {
		s = 0
	}
	if s > 1 {
		s = 1
	}
	st.LastScore = s
	return s
}

// Answer samples the final answer of a terminated path. Answer 0 is the
// correct one; wrong answers are Zipf-distributed over the distractors so
// that majority voting is meaningful.
func Answer(p *Problem, st *PathState, r *rng.Stream) int {
	pCorrect := logistic(4.0 * (st.Quality - answerBar(p)))
	if r.Bool(pCorrect) {
		return 0
	}
	return 1 + r.Zipf(p.AnswerSpace-1, 0.8)
}

// answerBar is the quality threshold at which a path answers correctly
// half the time; harder problems demand more.
func answerBar(p *Problem) float64 {
	return 5.1*p.Difficulty - 2.78
}

// CorrectProb exposes the probability a path with the given state would
// answer correctly (for tests and analytic calibration).
func CorrectProb(p *Problem, st *PathState) float64 {
	return logistic(4.0 * (st.Quality - answerBar(p)))
}

func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
