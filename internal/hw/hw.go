// Package hw models the edge GPUs the paper evaluates on and provides the
// roofline latency model used throughout the system (paper §3.2.3, §4.3.1).
//
// The roofline model estimates the latency of a kernel as
//
//	T = max(FLOPs / PeakFLOPS, Bytes / MemBW)
//
// scaled by empirical efficiency factors, since real kernels reach only a
// fraction of peak. All system-level phenomena FastTTS exploits (decode is
// bandwidth-bound, prefill is compute-bound, batch size amortizes weight
// reads) fall directly out of this model.
package hw

import "fmt"

// GPU describes an edge accelerator.
type GPU struct {
	Name string
	// VRAMBytes is the total device memory.
	VRAMBytes int64
	// PeakFLOPS is peak dense FP16 tensor throughput, FLOP/s.
	PeakFLOPS float64
	// MemBW is peak device memory bandwidth, bytes/s.
	MemBW float64
	// PCIeBW is host<->device transfer bandwidth, bytes/s (for KV
	// offloading, §4.3.2).
	PCIeBW float64
	// ComputeEff and MemEff are the fractions of peak that realistic
	// transformer kernels achieve for compute-bound (prefill) and
	// bandwidth-bound (decode) work respectively.
	ComputeEff float64
	MemEff     float64
	// KernelOverhead is fixed per-batch launch overhead in seconds.
	KernelOverhead float64
}

const (
	gb = 1 << 30
)

// The device table mirrors the paper's evaluation platforms (§6.1, §6.4).
var (
	// RTX4090 is the primary platform: 24 GB, Ada Lovelace.
	RTX4090 = GPU{
		Name:           "RTX 4090",
		VRAMBytes:      24 * gb,
		PeakFLOPS:      165e12, // dense FP16 tensor
		MemBW:          1008e9,
		PCIeBW:         25e9, // PCIe 4.0 x16 effective
		ComputeEff:     0.55,
		MemEff:         0.80,
		KernelOverhead: 120e-6,
	}
	// RTX4070Ti is the 12 GB mid-range platform (Fig 15).
	RTX4070Ti = GPU{
		Name:           "RTX 4070 Ti",
		VRAMBytes:      12 * gb,
		PeakFLOPS:      80e12,
		MemBW:          504e9,
		PCIeBW:         25e9,
		ComputeEff:     0.55,
		MemEff:         0.80,
		KernelOverhead: 120e-6,
	}
	// RTX3070Ti is the 8 GB low-end platform that requires KV offloading
	// (Fig 15).
	RTX3070Ti = GPU{
		Name:           "RTX 3070 Ti",
		VRAMBytes:      8 * gb,
		PeakFLOPS:      43e12,
		MemBW:          608e9,
		PCIeBW:         12e9, // PCIe 4.0 x8-class effective
		ComputeEff:     0.50,
		MemEff:         0.78,
		KernelOverhead: 150e-6,
	}
)

// ByName returns the GPU with the given name.
func ByName(name string) (GPU, error) {
	for _, g := range []GPU{RTX4090, RTX4070Ti, RTX3070Ti} {
		if g.Name == name {
			return g, nil
		}
	}
	return GPU{}, fmt.Errorf("hw: unknown GPU %q", name)
}

// Roofline returns the estimated latency in seconds of a kernel that
// executes flops floating-point operations and moves bytes through device
// memory.
func (g GPU) Roofline(flops, bytes float64) float64 {
	tc := flops / (g.PeakFLOPS * g.ComputeEff)
	tm := bytes / (g.MemBW * g.MemEff)
	t := tc
	if tm > t {
		t = tm
	}
	return t + g.KernelOverhead
}

// ComputeBound reports whether a kernel with the given intensity is
// compute-bound on this device.
func (g GPU) ComputeBound(flops, bytes float64) bool {
	return flops/(g.PeakFLOPS*g.ComputeEff) >= bytes/(g.MemBW*g.MemEff)
}

// Utilization returns achieved compute utilization (0..1] for a kernel
// that executed flops in elapsed seconds. Utilization is measured against
// raw peak, matching how Nsight reports tensor-core occupancy (Fig 4).
func (g GPU) Utilization(flops, elapsed float64) float64 {
	if elapsed <= 0 {
		return 0
	}
	u := flops / (g.PeakFLOPS * elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// TransferTime returns the host<->device transfer time for n bytes.
func (g GPU) TransferTime(bytes float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes/g.PCIeBW + g.KernelOverhead
}

func (g GPU) String() string {
	return fmt.Sprintf("%s (%.0f GB, %.0f TFLOPS, %.0f GB/s)",
		g.Name, float64(g.VRAMBytes)/gb, g.PeakFLOPS/1e12, g.MemBW/1e9)
}
