package hw

import (
	"math"
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"RTX 4090", "RTX 4070 Ti", "RTX 3070 Ti"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name != name {
			t.Errorf("got %q", g.Name)
		}
	}
	if _, err := ByName("H100"); err == nil {
		t.Error("expected error for unknown GPU")
	}
}

func TestRooflineIsMaxOfRegimes(t *testing.T) {
	g := RTX4090
	// Heavily compute-bound: tiny bytes.
	flops := 1e15
	tc := flops / (g.PeakFLOPS * g.ComputeEff)
	if got := g.Roofline(flops, 1); math.Abs(got-tc-g.KernelOverhead) > 1e-9 {
		t.Errorf("compute-bound roofline = %v, want %v", got, tc+g.KernelOverhead)
	}
	// Heavily memory-bound: tiny flops.
	bytes := 1e12
	tm := bytes / (g.MemBW * g.MemEff)
	if got := g.Roofline(1, bytes); math.Abs(got-tm-g.KernelOverhead) > 1e-9 {
		t.Errorf("memory-bound roofline = %v, want %v", got, tm+g.KernelOverhead)
	}
}

func TestRooflineMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		g := RTX4090
		fl, by := float64(a)+1, float64(b)+1
		base := g.Roofline(fl, by)
		return g.Roofline(fl*2, by) >= base && g.Roofline(fl, by*2) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeBoundConsistentWithRoofline(t *testing.T) {
	g := RTX4090
	cases := []struct{ flops, bytes float64 }{
		{1e15, 1e6}, {1e6, 1e12}, {1e12, 1e9},
	}
	for _, c := range cases {
		cb := g.ComputeBound(c.flops, c.bytes)
		tc := c.flops / (g.PeakFLOPS * g.ComputeEff)
		tm := c.bytes / (g.MemBW * g.MemEff)
		if cb != (tc >= tm) {
			t.Errorf("ComputeBound(%g,%g) = %v inconsistent", c.flops, c.bytes, cb)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	g := RTX4090
	if u := g.Utilization(0, 1); u != 0 {
		t.Errorf("zero flops utilization = %v", u)
	}
	if u := g.Utilization(1e30, 1); u != 1 {
		t.Errorf("utilization not capped: %v", u)
	}
	if u := g.Utilization(1, 0); u != 0 {
		t.Errorf("zero elapsed utilization = %v", u)
	}
	// A kernel that ran exactly at half of raw peak.
	u := g.Utilization(g.PeakFLOPS/2, 1)
	if math.Abs(u-0.5) > 1e-12 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestTransferTime(t *testing.T) {
	g := RTX4090
	if got := g.TransferTime(0); got != 0 {
		t.Errorf("zero-byte transfer = %v", got)
	}
	oneGB := g.TransferTime(1 << 30)
	twoGB := g.TransferTime(2 << 30)
	if twoGB <= oneGB {
		t.Error("transfer time not monotone in bytes")
	}
}

func TestDecodeIsBandwidthBoundPrefillComputeBound(t *testing.T) {
	// The premise of §3.2.3 / Fig 6: single-sequence decode is memory
	// bound; large prefill is compute bound. Use a 1.5B-scale kernel.
	g := RTX4090
	weights := 3.1e9
	decodeFLOPs := 2 * 1.5e9 // one token
	if g.ComputeBound(decodeFLOPs, weights) {
		t.Error("single-token decode should be bandwidth-bound")
	}
	prefillFLOPs := 2 * 1.5e9 * 4096 // 4096 tokens
	if !g.ComputeBound(prefillFLOPs, weights) {
		t.Error("long prefill should be compute-bound")
	}
}

func TestVRAMOrdering(t *testing.T) {
	if !(RTX3070Ti.VRAMBytes < RTX4070Ti.VRAMBytes && RTX4070Ti.VRAMBytes < RTX4090.VRAMBytes) {
		t.Error("device VRAM ordering wrong")
	}
}

func TestStringContainsName(t *testing.T) {
	s := RTX4090.String()
	if s == "" {
		t.Fatal("empty String()")
	}
}
