package scenario

import (
	"reflect"
	"strings"
	"testing"

	"fasttts/internal/workload"
)

func TestCatalogShape(t *testing.T) {
	all := All()
	if len(all) < 6 {
		t.Fatalf("catalog has %d scenarios, want >= 6", len(all))
	}
	seen := map[string]bool{}
	for _, s := range all {
		if s.Name == "" || s.Description == "" || s.Build == nil {
			t.Errorf("scenario %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate scenario name %q", s.Name)
		}
		seen[s.Name] = true
		if s.Name != strings.ToLower(s.Name) {
			t.Errorf("scenario name %q not lower-case", s.Name)
		}
	}
	if got, want := len(Names()), len(all); got != want {
		t.Errorf("Names() has %d entries, want %d", got, want)
	}
}

func TestBuildSpecs(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			spec := s.Build(Params{})
			if spec.Name != s.Name {
				t.Errorf("spec name %q, want %q", spec.Name, s.Name)
			}
			if len(spec.Requests) == 0 {
				t.Fatal("empty request stream")
			}
			reachable := len(spec.Devices)
			if spec.Autoscale != nil {
				reachable += len(spec.Autoscale.Warm)
			}
			if reachable < 3 {
				t.Errorf("%d reachable devices (founding + warm pool), want >= 3 for the cluster target", reachable)
			}
			if a := spec.Autoscale; a != nil {
				if a.Controller == "" || a.Interval <= 0 {
					t.Errorf("autoscale spec incomplete: %+v", a)
				}
			}
			if spec.Seed == 0 {
				t.Error("spec did not record its run seed")
			}
			prev := 0.0
			for i, rq := range spec.Requests {
				if rq.Arrival < prev {
					t.Fatalf("request %d arrives at %v before %v", i, rq.Arrival, prev)
				}
				prev = rq.Arrival
				ds, err := workload.SpecByName(rq.Dataset)
				if err != nil {
					t.Fatalf("request %d references dataset %q: %v", i, rq.Dataset, err)
				}
				if rq.Problem < 0 || rq.Problem >= ds.Problems {
					t.Fatalf("request %d problem index %d outside %s's %d problems",
						i, rq.Problem, rq.Dataset, ds.Problems)
				}
				if rq.Deadline != 0 && rq.Deadline < rq.Arrival {
					t.Fatalf("request %d deadline %v before arrival %v", i, rq.Deadline, rq.Arrival)
				}
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, s := range All() {
		a := s.Build(Params{Requests: 12, Seed: 7})
		b := s.Build(Params{Requests: 12, Seed: 7})
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: equal params built unequal specs", s.Name)
		}
		c := s.Build(Params{Requests: 12, Seed: 8})
		if reflect.DeepEqual(a.Requests, c.Requests) && s.Name != "steady" && s.Name != "burst-storm" {
			// steady and burst-storm have deterministic arrival grids, but
			// their problem mixes must still vary with the seed.
			t.Errorf("%s: seeds 7 and 8 built identical request streams", s.Name)
		}
	}
}

func TestParamsScaleStreamLength(t *testing.T) {
	for _, s := range All() {
		spec := s.Build(Params{Requests: 9, Seed: 3})
		if len(spec.Requests) != 9 {
			t.Errorf("%s: got %d requests, want 9", s.Name, len(spec.Requests))
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if s.Name != name {
			t.Errorf("ByName(%q) resolved %q", name, s.Name)
		}
	}
	// Case- and whitespace-insensitive.
	if s, err := ByName("  Diurnal "); err != nil || s.Name != "diurnal" {
		t.Errorf("ByName with case/space got (%v, %v)", s.Name, err)
	}
	for _, bad := range []string{"", "nope", "steady2", "Diurnal Cycle"} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) did not error", bad)
		}
	}
}

func TestFleetChurnInjectsFaults(t *testing.T) {
	spec := mustBuild(t, "fleet-churn")
	fails, stragglers := 0, 0
	for _, d := range spec.Devices {
		if d.FailAt > 0 {
			fails++
		}
		if d.Slowdown > 1 {
			stragglers++
		}
	}
	if fails < 2 {
		t.Errorf("%d fail-stops, want >= 2 (staggered churn)", fails)
	}
	if stragglers < 1 {
		t.Errorf("%d stragglers, want >= 1", stragglers)
	}
}

func TestTenantMixCarriesTenancy(t *testing.T) {
	spec := mustBuild(t, "tenant-mix")
	datasets := map[string]bool{}
	priorities, deadlines := 0, 0
	for _, rq := range spec.Requests {
		datasets[rq.Dataset] = true
		if rq.Priority > 0 {
			priorities++
		}
		if rq.Deadline > 0 {
			deadlines++
		}
	}
	if len(datasets) < 2 {
		t.Errorf("tenant-mix drew %d datasets, want a real mix", len(datasets))
	}
	if priorities == 0 || deadlines == 0 {
		t.Errorf("tenant-mix has %d prioritized and %d deadlined requests, want both > 0", priorities, deadlines)
	}
	algos := map[string]bool{}
	for _, d := range spec.Devices {
		algos[d.Algorithm] = true
	}
	if len(algos) < 2 {
		t.Errorf("tenant-mix fleet runs %d algorithms, want a multi-algorithm fleet", len(algos))
	}
}

func TestFlashCrowdSheds(t *testing.T) {
	spec := mustBuild(t, "flash-crowd")
	if spec.Serve.MaxInFlight <= 0 {
		t.Error("flash-crowd server has no admission limit")
	}
	for i, d := range spec.Devices {
		if d.MaxInFlight <= 0 {
			t.Errorf("flash-crowd device %d has no admission limit", i)
		}
	}
}

func mustBuild(t *testing.T, name string) Spec {
	t.Helper()
	s, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return s.Build(Params{})
}

// FuzzByName asserts the lookup is total: any input yields a scenario or
// an error, never a panic.
func FuzzByName(f *testing.F) {
	for _, name := range Names() {
		f.Add(name)
	}
	f.Add("")
	f.Add("  ")
	f.Add("no-such-scenario")
	f.Add("STEADY\x00")
	f.Fuzz(func(t *testing.T, name string) {
		s, err := ByName(name)
		if err == nil && s.Build == nil {
			t.Errorf("ByName(%q) returned a scenario without a builder", name)
		}
		if err != nil && s.Name != "" {
			t.Errorf("ByName(%q) returned both a scenario and an error", name)
		}
	})
}
