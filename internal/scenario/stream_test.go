package scenario

import (
	"math"
	"reflect"
	"testing"

	"fasttts/internal/metrics"
)

func TestMetricsStreamCatalogShape(t *testing.T) {
	streams := MetricsStreams()
	if len(streams) != 4 {
		t.Fatalf("catalog has %d streams, want 4", len(streams))
	}
	seen := map[string]bool{}
	for _, m := range streams {
		if m.Name == "" || m.Description == "" || m.Requests <= 0 {
			t.Errorf("stream %+v incomplete", m)
		}
		if seen[m.Name] {
			t.Errorf("duplicate stream name %q", m.Name)
		}
		seen[m.Name] = true
		got, err := MetricsStreamByName(m.Name)
		if err != nil || got.Name != m.Name {
			t.Errorf("MetricsStreamByName(%q) = %+v, %v", m.Name, got, err)
		}
	}
	if !seen["mega-steady"] {
		t.Error("catalog missing mega-steady")
	}
	if _, err := MetricsStreamByName("no-such-stream"); err == nil {
		t.Error("MetricsStreamByName accepted unknown name")
	}
}

func TestMetricsStreamDeterministicAndFinite(t *testing.T) {
	const n = 5_000
	for _, m := range MetricsStreams() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			collect := func(seed uint64) []metrics.ServeSample {
				out := make([]metrics.ServeSample, 0, n)
				m.Emit(seed, n, func(s metrics.ServeSample) { out = append(out, s) })
				return out
			}
			a, b := collect(7), collect(7)
			if len(a) != n {
				t.Fatalf("emitted %d samples, want %d", len(a), n)
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed produced different streams")
			}
			if reflect.DeepEqual(a, collect(8)) {
				t.Fatal("different seeds produced identical streams")
			}
			for i, s := range a {
				if s.Rejected {
					continue
				}
				wall := s.Finish - s.Arrival
				queue := s.Start - s.Arrival
				for _, v := range []float64{wall, queue} {
					if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
						t.Fatalf("sample %d: non-finite or negative telemetry %v", i, v)
					}
					// Stay inside the sketch's relative-accuracy range so the
					// bench harness's error-bound assertion is never vacuous.
					if v > 1e5 {
						t.Fatalf("sample %d: latency %v above sketch range", i, v)
					}
				}
				if s.Tokens <= 0 {
					t.Fatalf("sample %d: non-positive tokens %d", i, s.Tokens)
				}
			}
		})
	}
}
