package scenario

// Synthetic metrics streams: deterministic served-sample generators for
// exercising the metrics layer at request counts far beyond what the
// full serving simulation can produce. Unlike the catalog scenarios,
// nothing here routes, schedules, or solves — each stream emits
// ServeSamples one at a time through a callback, retaining nothing, so
// a 10M-request pass holds only the consumer's aggregation state in
// memory. That makes them the test bed for the streaming quantile
// sketch: the bench harness (fastttsbench -metrics) feeds each stream
// once into a constant-memory metrics.ServeAccum and once into the
// exact sort-based path, and asserts the sketch's p50/p95/p99 stay
// within the documented relative-error bound across distribution shapes
// an inference fleet actually produces (uniform plateaus, Pareto tails,
// bimodal fast/slow-path mixes, tight steady-state lognormals).

import (
	"fmt"
	"math"

	"fasttts/internal/metrics"
	"fasttts/internal/rng"
)

// MetricsStream is one named synthetic served-sample distribution.
type MetricsStream struct {
	Name        string
	Description string
	// Requests is the stream's default length.
	Requests int
}

// MetricsStreams is the catalog of synthetic distributions, mega-steady
// last (it is the expensive one).
func MetricsStreams() []MetricsStream {
	return []MetricsStream{
		{
			Name:        "metrics-uniform",
			Description: "wall latency uniform on [0.5, 60)s — flat density, every percentile mid-bucket",
			Requests:    200_000,
		},
		{
			Name:        "metrics-heavy-tail",
			Description: "Pareto(α=1.3) service tail capped at 9×10⁴s — p99 far from the body",
			Requests:    200_000,
		},
		{
			Name:        "metrics-bimodal",
			Description: "70% fast path N(8,2)s, 30% slow path N(120,15)s, 2% rejected — percentiles straddle the modes",
			Requests:    200_000,
		},
		{
			Name:        "mega-steady",
			Description: "10M-request steady state, lognormal service around 20s — the bounded-RSS scale proof",
			Requests:    10_000_000,
		},
	}
}

// MetricsStreamByName finds a stream in the catalog.
func MetricsStreamByName(name string) (MetricsStream, error) {
	for _, m := range MetricsStreams() {
		if m.Name == name {
			return m, nil
		}
	}
	return MetricsStream{}, fmt.Errorf("scenario: unknown metrics stream %q", name)
}

// Emit generates the stream deterministically from the seed and hands
// each sample to emit in arrival order, retaining nothing. requests
// overrides the stream's default length when positive (tests run scaled
// -down passes; the bench harness runs the full default).
func (m MetricsStream) Emit(seed uint64, requests int, emit func(metrics.ServeSample)) {
	n := m.Requests
	if requests > 0 {
		n = requests
	}
	r := rng.New(seed).Child("metrics-stream/" + m.Name)
	for i := 0; i < n; i++ {
		emit(m.sample(r, i))
	}
}

// sample draws one served sample. Every latency stays inside the
// sketch's relative-accuracy range [1µs, 10⁵s] so the error-bound
// assertion is exact, not vacuous at the clamped edges.
func (m MetricsStream) sample(r *rng.Stream, i int) metrics.ServeSample {
	const spacing = 1e-3 // arrival cadence; irrelevant to latency shape
	arrival := float64(i) * spacing
	var service, queue float64
	rejected := false
	switch m.Name {
	case "metrics-uniform":
		service = 0.5 + 59.5*r.Float64()
		queue = 3 * r.Float64()
	case "metrics-heavy-tail":
		// Pareto via inverse CDF: x_m / (1-u)^(1/α). α = 1.3 keeps the
		// mean finite but the variance infinite — the nastiest realistic
		// shape for a bucketed sketch.
		// Caps keep wall = queue + service under the sketch's 10⁵s range
		// ceiling so every sample carries the relative-error guarantee.
		service = math.Min(1.0/math.Pow(1-r.Float64(), 1/1.3), 9e4)
		queue = math.Min(0.2/math.Pow(1-r.Float64(), 1/1.5), 9e3)
	case "metrics-bimodal":
		if rejected = r.Float64() < 0.02; !rejected {
			if r.Float64() < 0.7 {
				service = r.Norm(8, 2)
			} else {
				service = r.Norm(120, 15)
			}
			service = math.Max(math.Abs(service), 1e-3)
			queue = math.Max(math.Abs(r.Norm(1, 0.5)), 1e-4)
		}
	case "mega-steady":
		service = r.LogNormal(math.Log(20), 0.4)
		queue = r.LogNormal(math.Log(0.5), 0.3)
	default:
		panic(fmt.Sprintf("scenario: metrics stream %q has no generator", m.Name))
	}
	if rejected {
		return metrics.ServeSample{Arrival: arrival, Rejected: true}
	}
	return metrics.ServeSample{
		Arrival: arrival,
		Start:   arrival + queue,
		Finish:  arrival + queue + service,
		Tokens:  int64(200 + r.IntN(400)),
	}
}
