// Package scenario is the library of composable, named workload
// scenarios for the serving and fleet stack. A Scenario turns Params
// (stream length, seed) into a Spec: a fully deterministic request
// stream — each request pinned to a benchmark problem, an arrival time,
// and optional priority/deadline metadata — plus the serving setup for
// the single-server target and a heterogeneous device topology (with
// straggler and fail-stop injection) for the cluster target. The same
// Spec is runnable against both fasttts.Server and fasttts.Cluster; the
// public fasttts.RunScenario entry point materializes and serves it.
//
// Because every request stream is a pure function of Params and the
// serving stack is a deterministic simulation, a scenario run is
// bit-identically reproducible; the golden-trace conformance harness
// (testdata/golden, internal/trace's record/replay) relies on exactly
// this to prove hot-path changes didn't alter behavior.
//
// The catalog (see All):
//
//	steady             uniform-spacing single-dataset baseline
//	diurnal            sinusoidal-rate arrivals over a day-like cycle
//	flash-crowd        low base rate with a sudden 8× arrival spike
//	heavy-tail         problem mix dominated by heavy-tailed AIME service demand
//	tenant-mix         multi-dataset tenants with priorities and SLO deadlines
//	fleet-churn        staggered device fail-stops plus a straggler
//	burst-storm        repeated synchronized bursts against admission limits
//	autoscale-diurnal  threshold controller scales a warm pool to a sinusoidal rate
//	flash-absorb       PID controller absorbs a flash crowd with warm-pool joins
//	budget-storm       compute-budget governor degrades search width under bursts
//	cache-thrash       repeated prompts against tight KV memory planes under cache-aware routing
//	shared-prefix-storm  bursts over a tiny hot prompt set under prefix-affinity routing
//	first-finish-mix   AIME-heavy mix served under the first-finish strategy
//	hedged-tail        straggler-skewed fleet where hedged replication buys the tail
//
// autoscale-diurnal, flash-absorb, and budget-storm attach the elastic
// control plane (internal/control) on the cluster target; cache-thrash
// and shared-prefix-storm enable the per-device KV-cache memory plane
// (internal/memplane); first-finish-mix and hedged-tail set a
// test-time-compute strategy (internal/search). On the server target
// every scenario serves the same stream on a fixed single device, which
// keeps the two targets comparable.
package scenario

import (
	"fmt"
	"strings"

	"fasttts/internal/rng"
	"fasttts/internal/workload"
)

// Request is one scenario request: a benchmark problem reference plus
// client-side metadata. Problem indexes into the named dataset as
// materialized from the run seed.
type Request struct {
	Dataset string
	Problem int
	Arrival float64
	// Priority orders requests under the "priority" policy; larger first.
	Priority int
	// Deadline is the absolute SLO deadline on the server clock; 0 none.
	Deadline float64
}

// Serve is the single-server serving setup of a scenario.
type Serve struct {
	// Policy names the admission/ordering discipline ("fcfs", "sjf",
	// "priority", "deadline"); empty means fcfs.
	Policy string
	// MaxInFlight, when positive, sheds arrivals beyond this many admitted
	// unfinished requests.
	MaxInFlight int
}

// Device is one member of the scenario's fleet topology, described by
// deployment names so the public API layer can materialize it.
type Device struct {
	// GPU is the device name ("RTX 4090", "RTX 4070 Ti", "RTX 3070 Ti").
	GPU string
	// Algorithm is the TTS search method; empty means Beam Search.
	Algorithm string
	// NumBeams is the search width; 0 means the deployment default.
	NumBeams int
	// Seed drives the device engine's randomness.
	Seed uint64
	// Policy names the device's serving discipline; empty means fcfs.
	Policy string
	// MaxInFlight, when positive, sheds arrivals beyond this limit.
	MaxInFlight int
	// Slowdown is the straggler factor (values below 1 mean none).
	Slowdown float64
	// FailAt, when positive, fail-stops the device at that fleet time.
	FailAt float64
	// KVPlaneBytes, when positive, enables the device's KV-cache memory
	// plane with this capacity in bytes; 0 leaves the plane off.
	KVPlaneBytes int64
}

// Autoscale is a scenario's elastic control plane: the controller
// policy, its cadence, and the warm pool it may scale into. It applies
// only to the cluster target (a single server has no fleet to scale).
type Autoscale struct {
	// Controller names the control policy ("static", "threshold", "pid",
	// "budget").
	Controller string
	// Interval is the control period in fleet seconds.
	Interval float64
	// WarmupDelay is the prefill/warm-up delay before a scale-up's device
	// becomes routable.
	WarmupDelay float64
	// Warm holds the warm-pool device templates.
	Warm []Device
	// MinDevices / MaxDevices bound the actuation range (0 = defaults).
	MinDevices, MaxDevices int
	// MaxTier is the deepest compute-budget degradation tier (0 = the
	// public-API default).
	MaxTier int
}

// Spec is one materializable scenario instance: everything needed to
// serve the stream on a Server or a Cluster.
type Spec struct {
	Name, Description string
	// Seed is the run seed the spec was built from; datasets and router
	// randomness derive from it.
	Seed uint64
	// Requests is the deterministic request stream, sorted by arrival.
	Requests []Request
	// Serve configures the single-server target.
	Serve Serve
	// Devices is the fleet topology for the cluster target (≥ 3 devices in
	// every built-in scenario).
	Devices []Device
	// Router names the fleet routing discipline; empty means rr.
	Router string
	// SLOLatency is the per-request wall-latency target in seconds used by
	// stats on both targets; 0 disables SLO accounting.
	SLOLatency float64
	// Strategy names the test-time-compute strategy ("full-beam",
	// "first-finish[:k]", "deadline", "hedged"); empty keeps the legacy
	// full-beam loop. On the server target "hedged" is a per-device no-op.
	Strategy string
	// Autoscale, when non-nil, attaches the elastic control plane on the
	// cluster target.
	Autoscale *Autoscale
}

// Params scales a scenario. The zero value selects scenario defaults.
type Params struct {
	// Requests is the stream length; 0 means the scenario default.
	Requests int
	// Seed drives all randomness (arrivals, problem mixes, router, device
	// engines); 0 means 42.
	Seed uint64
}

func (p Params) withDefaults(defaultRequests int) Params {
	if p.Requests <= 0 {
		p.Requests = defaultRequests
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	return p
}

// Scenario is one named, composable workload generator.
type Scenario struct {
	Name        string
	Description string
	Build       func(Params) Spec
}

// All returns the catalog in display order.
func All() []Scenario {
	return []Scenario{
		{
			Name:        "steady",
			Description: "uniform-spacing single-dataset baseline on a homogeneous fleet",
			Build:       buildSteady,
		},
		{
			Name:        "diurnal",
			Description: "sinusoidal-rate arrivals over a day-like cycle, MATH500/AMC23 mix",
			Build:       buildDiurnal,
		},
		{
			Name:        "flash-crowd",
			Description: "low base rate with a sudden 8x spike against admission limits",
			Build:       buildFlashCrowd,
		},
		{
			Name:        "heavy-tail",
			Description: "AIME-dominated problem mix with heavy-tailed service demand under SJF",
			Build:       buildHeavyTail,
		},
		{
			Name:        "tenant-mix",
			Description: "multi-dataset tenants with priorities and SLO deadlines on a multi-algorithm fleet",
			Build:       buildTenantMix,
		},
		{
			Name:        "fleet-churn",
			Description: "staggered device fail-stops plus a straggler under work-aware routing",
			Build:       buildFleetChurn,
		},
		{
			Name:        "burst-storm",
			Description: "repeated synchronized bursts against per-device admission limits",
			Build:       buildBurstStorm,
		},
		{
			Name:        "autoscale-diurnal",
			Description: "diurnal scale-to-fit: threshold controller tracks a sinusoidal rate with a warm pool",
			Build:       buildAutoscaleDiurnal,
		},
		{
			Name:        "flash-absorb",
			Description: "flash-crowd absorb: PID controller soaks an 8x spike with warm-pool joins",
			Build:       buildFlashAbsorb,
		},
		{
			Name:        "budget-storm",
			Description: "budget-degrade-under-storm: compute-budget governor narrows search width under bursts",
			Build:       buildBudgetStorm,
		},
		{
			Name:        "cache-thrash",
			Description: "repeated prompts against tight per-device KV memory planes under cache-aware routing",
			Build:       buildCacheThrash,
		},
		{
			Name:        "shared-prefix-storm",
			Description: "synchronized bursts over a tiny hot prompt set under prefix-affinity routing with KV planes",
			Build:       buildSharedPrefixStorm,
		},
		{
			Name:        "first-finish-mix",
			Description: "AIME-heavy problem mix served under the first-finish strategy: answer on the first converged chain",
			Build:       buildFirstFinishMix,
		},
		{
			Name:        "hedged-tail",
			Description: "straggler-skewed fleet where hedged cross-device replication cancels the slow copy and buys the tail",
			Build:       buildHedgedTail,
		},
	}
}

// Names lists the catalog's scenario names in display order.
func Names() []string {
	all := All()
	out := make([]string, len(all))
	for i, s := range all {
		out[i] = s.Name
	}
	return out
}

// ByName resolves a scenario from its CLI/config name. It returns an
// error — never panics — on unknown or empty names.
func ByName(name string) (Scenario, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	for _, s := range All() {
		if s.Name == key {
			return s, nil
		}
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (want one of %s)",
		name, strings.Join(Names(), ", "))
}

// --- builders ---

// defaultFleet is the 3-device heterogeneous fleet used by scenarios that
// don't inject faults: a fast 4090, a mid 4070 Ti running SJF, and a slow
// 3070 Ti. Device seeds derive from the run seed so distinct runs get
// distinct (but reproducible) engines.
func defaultFleet(seed uint64) []Device {
	return []Device{
		{GPU: "RTX 4090", NumBeams: 8, Seed: seed + 1},
		{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: seed + 2, Policy: "sjf"},
		{GPU: "RTX 3070 Ti", NumBeams: 8, Seed: seed + 3},
	}
}

// mixEntry is one weighted dataset in a tenant/problem mix.
type mixEntry struct {
	dataset string
	weight  float64
}

// mixProblems draws one problem reference per arrival from a weighted
// dataset mix, deterministically from the stream.
func mixProblems(arrivals []float64, mix []mixEntry, r *rng.Stream) []Request {
	total := 0.0
	for _, m := range mix {
		total += m.weight
	}
	out := make([]Request, len(arrivals))
	for i, at := range arrivals {
		x := r.Float64() * total
		pick := mix[len(mix)-1]
		for _, m := range mix {
			if x < m.weight {
				pick = m
				break
			}
			x -= m.weight
		}
		spec, err := workload.SpecByName(pick.dataset)
		if err != nil {
			panic(fmt.Sprintf("scenario: built-in mix references %s: %v", pick.dataset, err))
		}
		out[i] = Request{Dataset: pick.dataset, Problem: r.IntN(spec.Problems), Arrival: at}
	}
	return out
}

func singleDataset(name string) []mixEntry {
	return []mixEntry{{name, 1}}
}

func buildSteady(p Params) Spec {
	p = p.withDefaults(18)
	r := rng.New(p.Seed).Child("scenario/steady")
	arrivals := workload.UniformArrivals(p.Requests, 2.0)
	return Spec{
		Name:       "steady",
		Seed:       p.Seed,
		Requests:   mixProblems(arrivals, singleDataset("MATH500"), r.Child("mix")),
		Serve:      Serve{Policy: "fcfs"},
		Devices:    defaultFleet(p.Seed),
		Router:     "rr",
		SLOLatency: 120,
	}
}

func buildDiurnal(p Params) Spec {
	p = p.withDefaults(24)
	r := rng.New(p.Seed).Child("scenario/diurnal")
	arrivals := workload.SinusoidalArrivals(p.Requests, 0.5, 0.8, 60, r.Child("arrivals"))
	mix := []mixEntry{{"MATH500", 0.7}, {"AMC23", 0.3}}
	return Spec{
		Name:       "diurnal",
		Seed:       p.Seed,
		Requests:   mixProblems(arrivals, mix, r.Child("mix")),
		Serve:      Serve{Policy: "fcfs"},
		Devices:    defaultFleet(p.Seed),
		Router:     "least-work",
		SLOLatency: 150,
	}
}

func buildFlashCrowd(p Params) Spec {
	p = p.withDefaults(24)
	r := rng.New(p.Seed).Child("scenario/flash-crowd")
	arrivals := workload.FlashCrowdArrivals(p.Requests, 0.15, 20, 12, 8, r.Child("arrivals"))
	devices := defaultFleet(p.Seed)
	for i := range devices {
		devices[i].MaxInFlight = 3
	}
	return Spec{
		Name:       "flash-crowd",
		Seed:       p.Seed,
		Requests:   mixProblems(arrivals, singleDataset("MATH500"), r.Child("mix")),
		Serve:      Serve{Policy: "fcfs", MaxInFlight: 6},
		Devices:    devices,
		Router:     "jsq",
		SLOLatency: 90,
	}
}

func buildHeavyTail(p Params) Spec {
	p = p.withDefaults(16)
	r := rng.New(p.Seed).Child("scenario/heavy-tail")
	arrivals := workload.PoissonArrivals(p.Requests, 0.35, r.Child("arrivals"))
	mix := []mixEntry{{"AIME24", 0.7}, {"MATH500", 0.3}}
	return Spec{
		Name:       "heavy-tail",
		Seed:       p.Seed,
		Requests:   mixProblems(arrivals, mix, r.Child("mix")),
		Serve:      Serve{Policy: "sjf"},
		Devices:    defaultFleet(p.Seed),
		Router:     "least-work",
		SLOLatency: 240,
	}
}

func buildTenantMix(p Params) Spec {
	p = p.withDefaults(24)
	r := rng.New(p.Seed).Child("scenario/tenant-mix")
	arrivals := workload.PoissonArrivals(p.Requests, 0.5, r.Child("arrivals"))
	mix := []mixEntry{{"MATH500", 0.5}, {"AMC23", 0.3}, {"HumanEval", 0.2}}
	reqs := mixProblems(arrivals, mix, r.Child("mix"))
	for i := range reqs {
		switch reqs[i].Dataset {
		case "AMC23":
			// Interactive tenant: high priority, tight SLO deadline.
			reqs[i].Priority = 2
			reqs[i].Deadline = reqs[i].Arrival + 45
		case "HumanEval":
			// Code tenant: mid priority, loose deadline.
			reqs[i].Priority = 1
			reqs[i].Deadline = reqs[i].Arrival + 120
		}
	}
	return Spec{
		Name:     "tenant-mix",
		Seed:     p.Seed,
		Requests: reqs,
		Serve:    Serve{Policy: "priority"},
		Devices: []Device{
			{GPU: "RTX 4090", Algorithm: "Beam Search", NumBeams: 8, Seed: p.Seed + 1, Policy: "priority"},
			{GPU: "RTX 4070 Ti", Algorithm: "Best-of-N", NumBeams: 8, Seed: p.Seed + 2, Policy: "deadline"},
			{GPU: "RTX 3070 Ti", Algorithm: "DVTS", NumBeams: 8, Seed: p.Seed + 3, Policy: "fcfs"},
		},
		Router:     "prefix",
		SLOLatency: 120,
	}
}

func buildFleetChurn(p Params) Spec {
	p = p.withDefaults(24)
	r := rng.New(p.Seed).Child("scenario/fleet-churn")
	arrivals := workload.PoissonArrivals(p.Requests, 0.5, r.Child("arrivals"))
	return Spec{
		Name:     "fleet-churn",
		Seed:     p.Seed,
		Requests: mixProblems(arrivals, singleDataset("MATH500"), r.Child("mix")),
		Serve:    Serve{Policy: "fcfs"},
		Devices: []Device{
			{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 1},
			{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 2, Slowdown: 3},
			{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: p.Seed + 3, FailAt: 40},
			{GPU: "RTX 3070 Ti", NumBeams: 8, Seed: p.Seed + 4, FailAt: 80},
		},
		Router:     "least-work",
		SLOLatency: 180,
	}
}

func buildBurstStorm(p Params) Spec {
	p = p.withDefaults(24)
	r := rng.New(p.Seed).Child("scenario/burst-storm")
	arrivals := workload.BurstArrivals(p.Requests, 6, 30)
	reqs := mixProblems(arrivals, singleDataset("AMC23"), r.Child("mix"))
	for i := range reqs {
		reqs[i].Deadline = reqs[i].Arrival + 60
	}
	devices := defaultFleet(p.Seed)
	for i := range devices {
		devices[i].Policy = "deadline"
		devices[i].MaxInFlight = 4
	}
	return Spec{
		Name:       "burst-storm",
		Seed:       p.Seed,
		Requests:   reqs,
		Serve:      Serve{Policy: "deadline", MaxInFlight: 8},
		Devices:    devices,
		Router:     "p2c",
		SLOLatency: 90,
	}
}

// --- elastic (controller-driven) scenarios ---

func buildAutoscaleDiurnal(p Params) Spec {
	p = p.withDefaults(30)
	r := rng.New(p.Seed).Child("scenario/autoscale-diurnal")
	// Full-amplitude sinusoid: the rate swings from 0 to 2x base over a
	// 240s cycle — peaks overload the 2-device founding fleet, troughs
	// idle it, exactly the shape scale-to-fit should track.
	arrivals := workload.SinusoidalArrivals(p.Requests, 0.09, 1, 240, r.Child("arrivals"))
	return Spec{
		Name:     "autoscale-diurnal",
		Seed:     p.Seed,
		Requests: mixProblems(arrivals, singleDataset("MATH500"), r.Child("mix")),
		Serve:    Serve{Policy: "fcfs"},
		Devices: []Device{
			{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 1},
			{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: p.Seed + 2},
		},
		Router:     "least-work",
		SLOLatency: 300,
		Autoscale: &Autoscale{
			Controller:  "threshold",
			Interval:    30,
			WarmupDelay: 10,
			Warm: []Device{
				{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 10},
				{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 11},
			},
		},
	}
}

func buildFlashAbsorb(p Params) Spec {
	p = p.withDefaults(28)
	r := rng.New(p.Seed).Child("scenario/flash-absorb")
	// A quiet 0.05 req/s baseline with a 90s window at 8x: the spike
	// swamps the 2-device founding fleet until the controller joins warm
	// capacity, then the tail under-loads it back down.
	arrivals := workload.FlashCrowdArrivals(p.Requests, 0.05, 60, 90, 8, r.Child("arrivals"))
	mix := []mixEntry{{"MATH500", 0.8}, {"AMC23", 0.2}}
	return Spec{
		Name:     "flash-absorb",
		Seed:     p.Seed,
		Requests: mixProblems(arrivals, mix, r.Child("mix")),
		Serve:    Serve{Policy: "fcfs"},
		Devices: []Device{
			{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 1},
			{GPU: "RTX 3070 Ti", NumBeams: 8, Seed: p.Seed + 2},
		},
		Router:     "jsq",
		SLOLatency: 240,
		Autoscale: &Autoscale{
			Controller:  "pid",
			Interval:    15,
			WarmupDelay: 8,
			Warm: []Device{
				{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 10},
				{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: p.Seed + 11},
			},
		},
	}
}

func buildBudgetStorm(p Params) Spec {
	p = p.withDefaults(24)
	r := rng.New(p.Seed).Child("scenario/budget-storm")
	// Synchronized bursts of 8 against a fixed 3-device fleet: no warm
	// pool — the only lever is the vertical one, degrading per-request
	// search width while the storm's backlog drains.
	arrivals := workload.BurstArrivals(p.Requests, 8, 45)
	reqs := mixProblems(arrivals, singleDataset("MATH500"), r.Child("mix"))
	return Spec{
		Name:       "budget-storm",
		Seed:       p.Seed,
		Requests:   reqs,
		Serve:      Serve{Policy: "sjf"},
		Devices:    defaultFleet(p.Seed),
		Router:     "least-work",
		SLOLatency: 150,
		Autoscale: &Autoscale{
			Controller: "budget",
			Interval:   10,
			MaxTier:    2,
		},
	}
}

// --- KV memory-plane scenarios ---

// buildCacheThrash stresses capacity eviction: a Poisson stream cycles
// over a moderate pool of few-shot prompts (each ~4K tokens, ~110 MiB of
// KV state) across three tenant datasets, while each device's KV plane
// holds only a handful of prompt prefixes plus decode state. Repeats hit
// only if the prefix survived since its last use, so routing that
// concentrates a prompt's repeats on one device (cache-aware) keeps each
// plane's working set small enough that prefixes survive between
// repeats; routing that scatters them asks every plane to hold every
// prompt and thrashes.
func buildCacheThrash(p Params) Spec {
	p = p.withDefaults(36)
	r := rng.New(p.Seed).Child("scenario/cache-thrash")
	arrivals := workload.PoissonArrivals(p.Requests, 0.3, r.Child("arrivals"))
	datasets := []string{"MATH500-fewshot", "AMC23-fewshot", "AIME24-fewshot"}
	mx := r.Child("mix")
	reqs := make([]Request, len(arrivals))
	for i, at := range arrivals {
		// 3 tenants x 6 problems = 18 distinct prompts over a 36-request
		// default stream: every prompt repeats, but the full pool is ~2 GiB
		// of prefix state — far more than any one device's plane can hold.
		reqs[i] = Request{
			Dataset: datasets[mx.IntN(len(datasets))],
			Problem: mx.IntN(6),
			Arrival: at,
		}
	}
	devices := defaultFleet(p.Seed)
	for i := range devices {
		devices[i].KVPlaneBytes = 512 << 20
	}
	return Spec{
		Name:       "cache-thrash",
		Seed:       p.Seed,
		Requests:   reqs,
		Serve:      Serve{Policy: "fcfs"},
		Devices:    devices,
		Router:     "cache-aware",
		SLOLatency: 180,
	}
}

// buildSharedPrefixStorm is the memory plane's best case: synchronized
// bursts where every request shares one of three hot few-shot prompts.
// With prefix-affinity routing each prompt's repeats land where its
// prefix is resident and the prefill is served from cache; the generous
// plane capacity means eviction never steals the hot set.
func buildSharedPrefixStorm(p Params) Spec {
	p = p.withDefaults(30)
	r := rng.New(p.Seed).Child("scenario/shared-prefix-storm")
	arrivals := workload.BurstArrivals(p.Requests, 6, 25)
	mx := r.Child("mix")
	reqs := make([]Request, len(arrivals))
	for i, at := range arrivals {
		reqs[i] = Request{Dataset: "AMC23-fewshot", Problem: mx.IntN(3), Arrival: at}
	}
	devices := defaultFleet(p.Seed)
	for i := range devices {
		devices[i].KVPlaneBytes = 1 << 30
	}
	return Spec{
		Name:       "shared-prefix-storm",
		Seed:       p.Seed,
		Requests:   reqs,
		Serve:      Serve{Policy: "fcfs"},
		Devices:    devices,
		Router:     "prefix",
		SLOLatency: 120,
	}
}

// --- test-time-compute strategy scenarios ---

// buildFirstFinishMix is the first-finish strategy's home turf: an
// AIME-dominated mix whose heavy-tailed service demand comes almost
// entirely from beams that keep searching after the first chain has
// already converged. Returning on the first finished chain cuts decode
// tokens and the latency tail without touching the answer the full beam
// would have selected first.
func buildFirstFinishMix(p Params) Spec {
	p = p.withDefaults(16)
	r := rng.New(p.Seed).Child("scenario/first-finish-mix")
	arrivals := workload.PoissonArrivals(p.Requests, 0.3, r.Child("arrivals"))
	mix := []mixEntry{{"AIME24", 0.7}, {"MATH500", 0.3}}
	return Spec{
		Name:       "first-finish-mix",
		Seed:       p.Seed,
		Requests:   mixProblems(arrivals, mix, r.Child("mix")),
		Serve:      Serve{Policy: "fcfs"},
		Devices:    defaultFleet(p.Seed),
		Router:     "rr",
		SLOLatency: 240,
		Strategy:   "first-finish",
	}
}

// buildHedgedTail is the hedged strategy's home turf: a quiet stream on
// a fleet with one 4x straggler. Round-robin routing lands a third of
// the requests on the slow device; hedging replicates each arrival to a
// second device, takes whichever copy finishes first, and cancels the
// loser — so a straggler-routed request costs only the fast twin's
// latency, collapsing the tail for double the (otherwise idle) compute.
func buildHedgedTail(p Params) Spec {
	p = p.withDefaults(15)
	r := rng.New(p.Seed).Child("scenario/hedged-tail")
	arrivals := workload.PoissonArrivals(p.Requests, 0.05, r.Child("arrivals"))
	return Spec{
		Name:     "hedged-tail",
		Seed:     p.Seed,
		Requests: mixProblems(arrivals, singleDataset("MATH500"), r.Child("mix")),
		Serve:    Serve{Policy: "fcfs"},
		Devices: []Device{
			{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 1},
			{GPU: "RTX 4090", NumBeams: 8, Seed: p.Seed + 2, Slowdown: 8},
			{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: p.Seed + 3},
		},
		Router:     "rr",
		SLOLatency: 240,
		Strategy:   "hedged",
	}
}
