package control

import (
	"strings"
	"testing"

	"fasttts/internal/rng"
)

func r() *rng.Stream { return rng.New(1).Child("test") }

// base is a healthy mid-load observation: no policy should act on it.
func base() Signals {
	return Signals{
		Now: 30, Interval: 15,
		Routable: 3, WarmAvailable: 2,
		MinDevices: 1, MaxDevices: 6,
		Pending: 2, Utilization: 0.6,
		Arrivals: 4, Completions: 4,
		QueueDelay: 2, SLOAttainment: 1,
		MaxTier: 2,
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if c.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, c.Name())
		}
	}
	if c, err := ByName(""); err != nil || c.Name() != "static" {
		t.Errorf("empty name: got %v, %v; want static", c, err)
	}
	if c, err := ByName("  Threshold "); err != nil || c.Name() != "threshold" {
		t.Errorf("case/space-insensitive lookup failed: %v, %v", c, err)
	}
	if _, err := ByName("nope"); err == nil || !strings.Contains(err.Error(), "unknown controller") {
		t.Errorf("unknown name: err = %v, want descriptive error", err)
	}
}

func TestStaticNeverActs(t *testing.T) {
	c := Static{}
	sig := base()
	sig.QueueDelay, sig.Utilization, sig.Pending = 500, 1, 100
	for i := 0; i < 10; i++ {
		if acts := c.Decide(sig, r()); len(acts) != 0 {
			t.Fatalf("static acted: %v", acts)
		}
	}
}

func TestThresholdScalesUpOnHighDelay(t *testing.T) {
	c := NewThreshold()
	sig := base()
	sig.QueueDelay = c.HighDelay + 1
	acts := c.Decide(sig, r())
	if len(acts) != 1 || acts[0].Verb != ScaleUp || acts[0].N != 1 {
		t.Fatalf("got %v, want one ScaleUp", acts)
	}
	// Cooldown: the immediately following ticks hold even under pressure.
	for i := 0; i < c.Cooldown; i++ {
		if acts := c.Decide(sig, r()); len(acts) != 0 {
			t.Fatalf("tick %d during cooldown acted: %v", i, acts)
		}
	}
	if acts := c.Decide(sig, r()); len(acts) != 1 {
		t.Fatalf("post-cooldown tick did not act: %v", acts)
	}
}

func TestThresholdRespectsWarmPoolAndMax(t *testing.T) {
	c := NewThreshold()
	sig := base()
	sig.QueueDelay = c.HighDelay + 1
	sig.WarmAvailable = 0
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("scaled up with an empty warm pool: %v", acts)
	}
	sig.WarmAvailable = 2
	sig.Routable, sig.MaxDevices = 6, 6
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("scaled up past MaxDevices: %v", acts)
	}
}

func TestThresholdScalesDownWhenIdle(t *testing.T) {
	c := NewThreshold()
	sig := base()
	sig.Utilization, sig.QueueDelay, sig.Pending = 0.1, 0, 0
	acts := c.Decide(sig, r())
	if len(acts) != 1 || acts[0].Verb != ScaleDown {
		t.Fatalf("got %v, want one ScaleDown", acts)
	}
	// Never below MinDevices.
	c = NewThreshold()
	sig.Routable, sig.MinDevices = 1, 1
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("drained below MinDevices: %v", acts)
	}
}

func TestPIDTracksSetpoint(t *testing.T) {
	c := NewPID()
	sig := base()
	sig.QueueDelay = c.Target + 20
	acts := c.Decide(sig, r())
	if len(acts) != 1 || acts[0].Verb != ScaleUp {
		t.Fatalf("far above setpoint: got %v, want ScaleUp", acts)
	}
	// Sustained idleness eventually unwinds the integral into scale-down.
	sig.QueueDelay, sig.Utilization, sig.Pending = 0, 0.05, 0
	var sawDown bool
	for i := 0; i < 50; i++ {
		for _, a := range c.Decide(sig, r()) {
			if a.Verb == ScaleDown {
				sawDown = true
			}
			if a.Verb == ScaleUp {
				t.Fatalf("tick %d scaled up while idle", i)
			}
		}
	}
	if !sawDown {
		t.Fatal("PID never scaled down after load cleared (integral windup?)")
	}
	// At the setpoint with no history, it holds.
	c = NewPID()
	sig = base()
	sig.QueueDelay = c.Target
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("acted at the setpoint: %v", acts)
	}
}

func TestBudgetGovernorHysteresis(t *testing.T) {
	c := NewBudget()
	sig := base()
	sig.QueueDelay = c.Degrade + 1
	acts := c.Decide(sig, r())
	if len(acts) != 1 || acts[0].Verb != SetTier || acts[0].N != 1 {
		t.Fatalf("got %v, want SetTier 1", acts)
	}
	sig.Tier = 1
	if acts := c.Decide(sig, r()); len(acts) != 1 || acts[0].N != 2 {
		t.Fatalf("second overloaded tick: got %v, want SetTier 2", acts)
	}
	sig.Tier = sig.MaxTier
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("degraded past MaxTier: %v", acts)
	}
	// Inside the hysteresis band: hold.
	sig.QueueDelay = (c.Degrade + c.Restore) / 2
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("acted inside the hysteresis band: %v", acts)
	}
	// Load cleared: the restore waits for Calm consecutive calm ticks —
	// one quiet window mid-storm must not refill the budget.
	sig.QueueDelay, sig.Pending = 0, 0
	for i := 1; i < c.Calm; i++ {
		if acts := c.Decide(sig, r()); len(acts) != 0 {
			t.Fatalf("restored after %d calm ticks, want %d: %v", i, c.Calm, acts)
		}
	}
	if acts := c.Decide(sig, r()); len(acts) != 1 || acts[0].N != sig.MaxTier-1 {
		t.Fatalf("restore: got %v, want SetTier %d", acts, sig.MaxTier-1)
	}
	// A storm tick resets the calm streak.
	sig.QueueDelay = c.Degrade + 1
	sig.Tier = sig.MaxTier
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("acted at MaxTier: %v", acts)
	}
	sig.QueueDelay, sig.Tier = 0, 1
	if acts := c.Decide(sig, r()); len(acts) != 0 {
		t.Fatalf("restored on the first calm tick after a storm tick: %v", acts)
	}
	// Never acts on membership.
	for tier := 0; tier <= sig.MaxTier; tier++ {
		sig := base()
		sig.Tier = tier
		sig.QueueDelay = 100
		for _, a := range c.Decide(sig, r()) {
			if a.Verb != SetTier {
				t.Fatalf("budget governor emitted %v", a)
			}
		}
	}
}

func TestControllersDeterministic(t *testing.T) {
	// Equal signal sequences give equal action sequences.
	sigs := make([]Signals, 20)
	for i := range sigs {
		s := base()
		s.Now = float64(i+1) * s.Interval
		s.QueueDelay = float64((i * 7) % 23)
		s.Utilization = float64((i*13)%10) / 10
		s.Pending = (i * 3) % 11
		s.Tier = i % 3
		sigs[i] = s
	}
	for _, name := range Names() {
		a, _ := ByName(name)
		b, _ := ByName(name)
		ra, rb := rng.New(9).Child("ctl"), rng.New(9).Child("ctl")
		for i, s := range sigs {
			av, bv := a.Decide(s, ra), b.Decide(s, rb)
			if len(av) != len(bv) {
				t.Fatalf("%s tick %d: %v vs %v", name, i, av, bv)
			}
			for j := range av {
				if av[j] != bv[j] {
					t.Fatalf("%s tick %d action %d: %v vs %v", name, i, j, av[j], bv[j])
				}
			}
		}
	}
}

func TestRecordString(t *testing.T) {
	r1 := Record{Time: 30, Verb: ScaleUp, N: 2, Applied: 1, Devices: []int{4}}
	if s := r1.String(); !strings.Contains(s, "scale-up") || !strings.Contains(s, "1/2") {
		t.Errorf("Record.String() = %q", s)
	}
	r2 := Record{Time: 45, Verb: SetTier, N: 1, Applied: 1}
	if s := r2.String(); !strings.Contains(s, "set-tier 1") {
		t.Errorf("Record.String() = %q", s)
	}
}
