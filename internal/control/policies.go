package control

// The built-in control policies. All of them are deterministic functions
// of the observed Signals and their internal state; the rng stream is
// part of the contract (a policy may dither) but the built-ins do not
// consume randomness, which keeps their action logs independent of the
// router's draw sequence.

import "fasttts/internal/rng"

// Static is the fixed-fleet baseline: it never acts. Running a fleet
// under Static is bit-identical to running it with no controller at all
// (ticks observe, actions never fire).
type Static struct{}

func (Static) Name() string                         { return "static" }
func (Static) Decide(Signals, *rng.Stream) []Action { return nil }

// Threshold is hysteresis scaling on queue delay and utilization: scale
// up one device when the window's mean queue delay crosses HighDelay (or
// utilization crosses HighUtil with a backlog), scale down one when the
// fleet is demonstrably over-provisioned (low utilization, low delay).
// A cooldown of Cooldown ticks after every action damps oscillation.
type Threshold struct {
	// HighDelay triggers scale-up when the window mean queue delay
	// exceeds it (seconds).
	HighDelay float64
	// HighUtil triggers scale-up when window utilization exceeds it
	// while a backlog is pending.
	HighUtil float64
	// LowUtil permits scale-down when window utilization is below it and
	// queue delay is below HighDelay/4.
	LowUtil float64
	// Cooldown is how many ticks after an action the controller holds.
	Cooldown int

	cool int
}

// NewThreshold returns a Threshold controller with the default tuning.
func NewThreshold() *Threshold {
	return &Threshold{HighDelay: 10, HighUtil: 0.9, LowUtil: 0.35, Cooldown: 2}
}

func (t *Threshold) Name() string { return "threshold" }

func (t *Threshold) Decide(sig Signals, _ *rng.Stream) []Action {
	if t.cool > 0 {
		t.cool--
		return nil
	}
	overloaded := sig.QueueDelay > t.HighDelay ||
		(sig.Utilization > t.HighUtil && sig.Pending > 2*sig.Routable)
	if overloaded && sig.WarmAvailable > 0 && sig.Routable+sig.Warming < sig.MaxDevices {
		t.cool = t.Cooldown
		return []Action{{Verb: ScaleUp, N: 1}}
	}
	idle := sig.Utilization < t.LowUtil && sig.QueueDelay < t.HighDelay/4 &&
		sig.Pending <= sig.Routable
	if idle && sig.Warming == 0 && sig.Routable > sig.MinDevices {
		t.cool = t.Cooldown
		return []Action{{Verb: ScaleDown, N: 1}}
	}
	return nil
}

// PID tracks a queue-delay setpoint with a PID-style law: the control
// output is mapped to a per-tick device delta in {-1, 0, +1}. The
// integral term is clamped (anti-windup) so a long overload does not
// force the fleet to stay scaled up long after the load clears.
type PID struct {
	// Target is the queue-delay setpoint in seconds.
	Target float64
	// Kp, Ki, Kd are the usual gains over the delay error.
	Kp, Ki, Kd float64
	// Deadband suppresses actuation while |output| is below it.
	Deadband float64

	integral float64
	prevErr  float64
	primed   bool
}

// NewPID returns a PID controller with the default tuning.
func NewPID() *PID {
	return &PID{Target: 5, Kp: 0.4, Ki: 0.05, Kd: 0.1, Deadband: 1}
}

func (p *PID) Name() string { return "pid" }

func (p *PID) Decide(sig Signals, _ *rng.Stream) []Action {
	err := sig.QueueDelay - p.Target
	p.integral += err * sig.Interval
	// Anti-windup: the integral may demand at most a few devices' worth
	// of actuation in either direction.
	if lim := 4 / maxF(p.Ki, 1e-9); p.integral > lim {
		p.integral = lim
	} else if p.integral < -lim {
		p.integral = -lim
	}
	deriv := 0.0
	if p.primed && sig.Interval > 0 {
		deriv = (err - p.prevErr) / sig.Interval
	}
	p.prevErr, p.primed = err, true
	out := p.Kp*err + p.Ki*p.integral + p.Kd*deriv
	switch {
	case out > p.Deadband && sig.WarmAvailable > 0 && sig.Routable+sig.Warming < sig.MaxDevices:
		return []Action{{Verb: ScaleUp, N: 1}}
	case out < -p.Deadband && sig.Warming == 0 && sig.Routable > sig.MinDevices &&
		sig.Pending <= sig.Routable:
		return []Action{{Verb: ScaleDown, N: 1}}
	}
	return nil
}

// Budget is the vertical-only compute-budget governor: it never changes
// fleet membership, but degrades the per-request search budget (one tier
// per tick, each tier halving effective NumBeams) while queue delay sits
// above Degrade, and restores one tier per Calm consecutive calm ticks
// once delay falls below Restore with the backlog drained. The
// Degrade > Restore band plus the calm requirement keep the tier from
// chattering between bursts of a periodic storm — one quiet window while
// a burst's backlog drains must not hand the next burst a full budget.
//
// Paired with a horizontal policy the two would compose; the built-in
// governor is deliberately vertical-only so its effect on the
// SLO-vs-cost frontier is attributable to budget alone.
type Budget struct {
	// Degrade raises the tier while window queue delay exceeds it.
	Degrade float64
	// Restore lowers the tier while delay is below it and the backlog
	// has drained to at most one request per routable device.
	Restore float64
	// Calm is how many consecutive calm ticks a restore needs (values
	// below 1 mean 1).
	Calm int

	calm int
}

// NewBudget returns a Budget governor with the default tuning.
func NewBudget() *Budget {
	return &Budget{Degrade: 8, Restore: 2, Calm: 2}
}

func (b *Budget) Name() string { return "budget" }

func (b *Budget) Decide(sig Signals, _ *rng.Stream) []Action {
	need := b.Calm
	if need < 1 {
		need = 1
	}
	switch {
	case sig.QueueDelay > b.Degrade && sig.Tier < sig.MaxTier:
		b.calm = 0
		return []Action{{Verb: SetTier, N: sig.Tier + 1}}
	case sig.Tier > 0 && sig.QueueDelay < b.Restore && sig.Pending <= sig.Routable:
		if b.calm++; b.calm >= need {
			b.calm = 0
			return []Action{{Verb: SetTier, N: sig.Tier - 1}}
		}
	default:
		b.calm = 0
	}
	return nil
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
