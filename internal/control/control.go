// Package control is the elastic control plane of the fleet simulator: a
// deterministic, virtual-clock feedback loop that observes fleet signals
// at a fixed control interval and actuates two knobs —
//
//   - horizontal: add devices from a warm pool (with a prefill/warm-up
//     delay before the new device becomes routable) or drain-and-remove
//     devices (route away, let in-flight work finish);
//   - vertical: a compute-budget governor that degrades per-request
//     search budget (effective NumBeams) under pressure and restores it
//     when load clears.
//
// A Controller is a pure function of the observed Signals plus its own
// private deterministic random stream: equal seeds give bit-identical
// action sequences, which is what lets controller-driven fleet runs slot
// into the golden-trace regression harness. Controllers may carry
// internal state (hysteresis counters, PID integrals) but must not
// consult wall clocks, map iteration order, or any other source of
// nondeterminism.
//
// The built-in policies (see ByName):
//
//	static     never acts — the fixed-fleet baseline
//	threshold  hysteresis scaling on queue delay and utilization
//	pid        PID-style tracking of a queue-delay setpoint
//	budget     vertical-only compute-budget governor
//
// Control ticks are cross-shard barrier points of the sharded fleet
// engine (internal/cluster/shard.go): Observe runs on the driver
// goroutine against a fully merged fleet state, and the window
// aggregates feeding Signals are accumulated in the sequential engine's
// canonical result order even when devices were stepped on parallel
// workers — a controller therefore sees bit-identical Signals, and
// produces a bit-identical action log, on either engine. Controllers
// themselves are never called concurrently.
package control

import (
	"fmt"
	"strings"

	"fasttts/internal/rng"
)

// Signals is the controller's observation of fleet state at one control
// tick. Window quantities cover the interval since the previous tick.
type Signals struct {
	// Now is the fleet virtual time of this tick; Interval is the control
	// period (Now advances by Interval between ticks).
	Now, Interval float64
	// Routable counts devices accepting new requests (alive, warmed up,
	// not draining); Warming counts devices still in their warm-up delay;
	// WarmAvailable counts warm-pool slots a ScaleUp could still claim.
	Routable, Warming, WarmAvailable int
	// MinDevices / MaxDevices bound the actuation range: the fleet never
	// drains below MinDevices routable nor grows Routable+Warming beyond
	// MaxDevices.
	MinDevices, MaxDevices int
	// Pending is the fleet's outstanding population (admitted unfinished
	// plus queued, summed over routable devices); OutstandingWork is the
	// matching remaining-demand estimate in token units.
	Pending         int
	OutstandingWork float64
	// Utilization is the window's busy fraction: device busy-seconds
	// accrued during the window divided by Interval x Routable (clamped
	// to [0, 1]; 0 on the first tick of an idle fleet).
	Utilization float64
	// Arrivals and Completions count requests routed / finished during
	// the window; QueueDelay is the mean queueing delay of the window's
	// completions (0 when none completed).
	Arrivals, Completions int
	QueueDelay            float64
	// SLOAttainment is the fraction of the window's completions that met
	// the fleet SLO target (1 when no target is set or nothing completed).
	SLOAttainment float64
	// Tier is the current budget-degradation tier (0 = full search
	// budget); MaxTier is the deepest tier the governor may set.
	Tier, MaxTier int
}

// Verb is an actuation kind.
type Verb string

const (
	// ScaleUp claims warm-pool slots: N devices begin warming up and
	// become routable after the fleet's warm-up delay.
	ScaleUp Verb = "scale-up"
	// ScaleDown drains N devices: they stop receiving new requests,
	// finish their in-flight and queued work, and leave the fleet.
	ScaleDown Verb = "scale-down"
	// SetTier moves the compute-budget governor to tier N: new requests
	// are served with their search width halved N times (floored at the
	// policy's branch factor). Tier 0 restores the full budget.
	SetTier Verb = "set-tier"
)

// Action is one actuation decision returned by a controller.
type Action struct {
	Verb Verb
	// N is the device count for ScaleUp/ScaleDown and the target tier for
	// SetTier.
	N int
}

// Record is one applied (or clamped) action in a fleet's action log. The
// log is a deterministic function of the run seed, so equal seeds give
// bit-identical logs — the property the regression tests pin.
type Record struct {
	// Time is the control tick the action was decided at.
	Time float64
	Verb Verb
	// N is the requested magnitude; Applied is what the fleet actually
	// actuated after clamping to warm-pool capacity and the device
	// bounds (Applied <= N for scaling verbs; Applied is the resulting
	// tier for SetTier).
	N, Applied int
	// Devices lists the fleet indexes the action touched (joined or
	// draining devices); nil for SetTier.
	Devices []int
}

// String renders a record for logs and CLI output.
func (r Record) String() string {
	if r.Verb == SetTier {
		return fmt.Sprintf("t=%.1f %s %d", r.Time, r.Verb, r.Applied)
	}
	return fmt.Sprintf("t=%.1f %s %d/%d %v", r.Time, r.Verb, r.Applied, r.N, r.Devices)
}

// Controller decides actuations from observed fleet signals.
type Controller interface {
	// Name identifies the policy ("static", "threshold", ...).
	Name() string
	// Decide returns the actions for this tick (nil/empty = hold). r is
	// the controller's private deterministic random stream; Decide must
	// be deterministic given its call sequence and r.
	Decide(sig Signals, r *rng.Stream) []Action
}

// ByName resolves a fresh controller from its CLI/config name: "static",
// "threshold", "pid", or "budget". It returns an error — never panics —
// on unknown names; the empty name selects static.
func ByName(name string) (Controller, error) {
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "", "static", "none":
		return Static{}, nil
	case "threshold":
		return NewThreshold(), nil
	case "pid":
		return NewPID(), nil
	case "budget":
		return NewBudget(), nil
	}
	return nil, fmt.Errorf("control: unknown controller %q (want one of %s)",
		name, strings.Join(Names(), ", "))
}

// Names lists the built-in controller names in display order.
func Names() []string {
	return []string{"static", "threshold", "pid", "budget"}
}
