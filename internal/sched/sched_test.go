package sched

import (
	"testing"
	"testing/quick"

	"fasttts/internal/rng"
)

// randomTree builds a random reasoning-tree genealogy of nPaths paths.
func randomTree(r *rng.Stream, nPaths int) []Path {
	nodeID := 0
	newNode := func() NodeRef {
		nodeID++
		return NodeRef{Node: nodeID, Tokens: r.IntN(60) + 5}
	}
	lineages := [][]NodeRef{{{Node: 0, Tokens: 50}, newNode()}}
	for len(lineages) < nPaths {
		parent := lineages[r.IntN(len(lineages))]
		child := append(append([]NodeRef{}, parent...), newNode())
		lineages = append(lineages, child)
	}
	paths := make([]Path, len(lineages))
	for i, l := range lineages {
		paths[i] = Path{ID: i, Lineage: l}
	}
	return paths
}

func TestSharedPrefixBasics(t *testing.T) {
	a := Path{ID: 0, Lineage: []NodeRef{{0, 50}, {1, 10}, {2, 20}}}
	b := Path{ID: 1, Lineage: []NodeRef{{0, 50}, {1, 10}, {3, 30}}}
	c := Path{ID: 2, Lineage: []NodeRef{{0, 50}, {4, 5}}}
	if got := SharedPrefixTokens(a, b); got != 60 {
		t.Errorf("P(a,b) = %d, want 60", got)
	}
	if got := SharedPrefixTokens(a, c); got != 50 {
		t.Errorf("P(a,c) = %d, want 50", got)
	}
	if SharedPrefixTokens(a, b) != SharedPrefixTokens(b, a) {
		t.Error("shared prefix not symmetric")
	}
	if got := SharedPrefixTokens(a, a); got != a.TotalTokens() {
		t.Errorf("P(a,a) = %d, want %d", got, a.TotalTokens())
	}
}

// Shared prefix on a tree is an ultrametric-like similarity:
// P(a,c) >= min(P(a,b), P(b,c)).
func TestSharedPrefixUltrametric(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		paths := randomTree(r, 12)
		for i := 0; i < 30; i++ {
			a := paths[r.IntN(len(paths))]
			b := paths[r.IntN(len(paths))]
			c := paths[r.IntN(len(paths))]
			ab, bc, ac := SharedPrefixTokens(a, b), SharedPrefixTokens(b, c), SharedPrefixTokens(a, c)
			lo := ab
			if bc < lo {
				lo = bc
			}
			if ac < lo {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyInvariant(t *testing.T) {
	r := rng.New(3)
	paths := randomTree(r, 20)
	out := GreedyOrder(paths)
	if len(out) != len(paths) {
		t.Fatalf("greedy lost paths: %d != %d", len(out), len(paths))
	}
	scheduled := map[int]bool{out[0].ID: true}
	for k := 0; k+1 < len(out); k++ {
		share := SharedPrefixTokens(out[k], out[k+1])
		for _, p := range paths {
			if scheduled[p.ID] || p.ID == out[k+1].ID {
				continue
			}
			if SharedPrefixTokens(out[k], p) > share {
				t.Fatalf("greedy invariant violated at position %d", k)
			}
		}
		scheduled[out[k+1].ID] = true
	}
}

// On tree-structured paths the DFS grouping and the literal greedy both
// keep every subtree contiguous, so their surrogate scores coincide and
// equal the optimum.
func TestPrefixAwareMatchesGreedyScore(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		paths := randomTree(r, 14)
		return ScheduleScore(PrefixAwareOrder(paths)) == ScheduleScore(GreedyOrder(paths))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Brute-force optimality on tiny instances: the greedy score equals the
// max over all permutations (Appendix A.2's local optimality, checked
// globally at small scale).
func TestGreedyOptimalSmall(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 25; trial++ {
		paths := randomTree(r, 6)
		best := 0
		order := make([]Path, len(paths))
		used := make([]bool, len(paths))
		var dfs func(k int)
		dfs = func(k int) {
			if k == len(paths) {
				if s := ScheduleScore(order); s > best {
					best = s
				}
				return
			}
			for i := range paths {
				if used[i] {
					continue
				}
				used[i] = true
				order[k] = paths[i]
				dfs(k + 1)
				used[i] = false
			}
		}
		dfs(0)
		if got := ScheduleScore(GreedyOrder(paths)); got != best {
			t.Fatalf("trial %d: greedy score %d != optimal %d", trial, got, best)
		}
	}
}

// No single swap may improve the greedy schedule (Appendix A.2).
func TestGreedyLocallyOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		paths := randomTree(r, 10)
		out := GreedyOrder(paths)
		base := ScheduleScore(out)
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				out[i], out[j] = out[j], out[i]
				s := ScheduleScore(out)
				out[i], out[j] = out[j], out[i]
				if s > base {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestOrderingHierarchy(t *testing.T) {
	// prefix-aware >= random >= worst-case (in surrogate score), on
	// average and for nearly every instance.
	r := rng.New(11)
	winsPA, winsRnd := 0, 0
	const trials = 30
	for i := 0; i < trials; i++ {
		paths := randomTree(r.Child("tree"), 24)
		pa := ScheduleScore(PrefixAwareOrder(paths))
		rnd := ScheduleScore(RandomOrder(paths, r.Child("shuffle")))
		worst := ScheduleScore(WorstCaseOrder(paths))
		if pa >= rnd {
			winsPA++
		}
		if rnd >= worst {
			winsRnd++
		}
	}
	if winsPA < trials-2 {
		t.Errorf("prefix-aware beat random only %d/%d times", winsPA, trials)
	}
	if winsRnd < trials*2/3 {
		t.Errorf("random beat worst-case only %d/%d times", winsRnd, trials)
	}
}

func TestOrderingsPreserveMultiset(t *testing.T) {
	r := rng.New(13)
	paths := randomTree(r, 15)
	for name, ordered := range map[string][]Path{
		"prefix": PrefixAwareOrder(paths),
		"greedy": GreedyOrder(paths),
		"random": RandomOrder(paths, r),
		"worst":  WorstCaseOrder(paths),
	} {
		if len(ordered) != len(paths) {
			t.Fatalf("%s: length %d != %d", name, len(ordered), len(paths))
		}
		seen := map[int]bool{}
		for _, p := range ordered {
			if seen[p.ID] {
				t.Fatalf("%s: duplicate path %d", name, p.ID)
			}
			seen[p.ID] = true
		}
	}
}

func TestPrefixAwarePreservesParentOrder(t *testing.T) {
	// §4.2: relative order of parent beams is preserved. Two subtrees A
	// (first in queue) and B: all A-paths must precede all B-paths.
	mk := func(root, leaf int) Path {
		return Path{ID: leaf, Lineage: []NodeRef{{0, 10}, {root, 5}, {leaf, 5}}}
	}
	queue := []Path{mk(1, 100), mk(2, 200), mk(1, 101), mk(2, 201)}
	out := PrefixAwareOrder(queue)
	pos := map[int]int{}
	for i, p := range out {
		pos[p.ID] = i
	}
	if !(pos[100] < pos[200] && pos[101] < pos[200]) {
		t.Errorf("subtree order not preserved: %v", pos)
	}
	if pos[100]+1 != pos[101] && pos[101]+1 != pos[100] {
		t.Errorf("siblings not grouped: %v", pos)
	}
}

func TestPackTriesRespectsCapacity(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		paths := PrefixAwareOrder(randomTree(r, 16))
		capacity := 150 + r.IntN(400)
		tries := PackTries(paths, capacity)
		total := 0
		for _, tr := range tries {
			total += len(tr.Paths)
			if tr.UniqueTokens > capacity && len(tr.Paths) > 1 {
				return false // only singleton tries may overflow
			}
		}
		return total == len(paths)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPackTriesUniqueTokens(t *testing.T) {
	a := Path{ID: 0, Lineage: []NodeRef{{0, 50}, {1, 10}}}
	b := Path{ID: 1, Lineage: []NodeRef{{0, 50}, {2, 20}}}
	tries := PackTries([]Path{a, b}, 1000)
	if len(tries) != 1 {
		t.Fatalf("tries = %d, want 1", len(tries))
	}
	if tries[0].UniqueTokens != 80 {
		t.Errorf("UniqueTokens = %d, want 80 (50 shared + 10 + 20)", tries[0].UniqueTokens)
	}
}

// The Fig 8 worked example: capacity 4 beams, paths ABDG/ABDH/ABEI/ACFJ
// (every node 1 token). Prefix-aware order evicts 6; the suboptimal
// order shown evicts 8.
func TestFig8WorkedExample(t *testing.T) {
	// Node IDs: A=1 B=2 C=3 D=4 E=5 F=6 G=7 H=8 I=9 J=10.
	mk := func(ids ...int) Path {
		var l []NodeRef
		for _, id := range ids {
			l = append(l, NodeRef{Node: id, Tokens: 1})
		}
		return Path{ID: ids[len(ids)-1], Lineage: l}
	}
	abdg := mk(1, 2, 4, 7)
	abdh := mk(1, 2, 4, 8)
	abei := mk(1, 2, 5, 9)
	acfj := mk(1, 3, 6, 10)

	good := PackTries([]Path{abdg, abdh, abei, acfj}, 4)
	if got := EvictionCost(good); got != 6 {
		t.Errorf("prefix-aware eviction cost = %d, want 6", got)
	}
	bad := PackTries([]Path{abdh, abei, acfj, abdg}, 4)
	if got := EvictionCost(bad); got != 8 {
		t.Errorf("suboptimal eviction cost = %d, want 8", got)
	}
}

func TestEvictionCostPrefixAwareBeatsRandom(t *testing.T) {
	r := rng.New(17)
	wins := 0
	const trials = 30
	for i := 0; i < trials; i++ {
		paths := randomTree(r.Child("t"), 32)
		capacity := 300
		pa := EvictionCost(PackTries(PrefixAwareOrder(paths), capacity))
		rnd := EvictionCost(PackTries(RandomOrder(paths, r.Child("s")), capacity))
		if pa <= rnd {
			wins++
		}
	}
	if wins < trials-3 {
		t.Errorf("prefix-aware lower eviction cost only %d/%d times", wins, trials)
	}
}

func TestPairwiseSharedSymmetric(t *testing.T) {
	r := rng.New(19)
	paths := randomTree(r, 10)
	m := PairwiseShared(paths)
	for i := range m {
		for j := range m[i] {
			if m[i][j] != m[j][i] {
				t.Fatalf("matrix not symmetric at %d,%d", i, j)
			}
		}
		if m[i][i] != paths[i].TotalTokens() {
			t.Errorf("diagonal %d = %d, want %d", i, m[i][i], paths[i].TotalTokens())
		}
	}
}

func TestCumulativeUniqueTokens(t *testing.T) {
	a := Path{ID: 0, Lineage: []NodeRef{{0, 50}, {1, 10}}}
	b := Path{ID: 1, Lineage: []NodeRef{{0, 50}, {2, 20}}}
	c := Path{ID: 2, Lineage: []NodeRef{{9, 5}}}
	got := CumulativeUniqueTokens([]Path{a, b, c})
	want := []int{60, 80, 85}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// Prefix-aware ordering grows the KV footprint strictly no faster than the
// worst-case ordering at every batch-growth point (Fig 18 left).
func TestCumulativeGrowthOrdering(t *testing.T) {
	r := rng.New(23)
	paths := randomTree(r, 40)
	pa := CumulativeUniqueTokens(PrefixAwareOrder(paths))
	wc := CumulativeUniqueTokens(WorstCaseOrder(paths))
	// Same total (same multiset of nodes).
	if pa[len(pa)-1] != wc[len(wc)-1] {
		t.Fatalf("totals differ: %d vs %d", pa[len(pa)-1], wc[len(wc)-1])
	}
	// Area under the prefix-aware curve must be smaller.
	sum := func(xs []int) int {
		s := 0
		for _, x := range xs {
			s += x
		}
		return s
	}
	if sum(pa) >= sum(wc) {
		t.Errorf("prefix-aware growth area %d not below worst-case %d", sum(pa), sum(wc))
	}
}

func TestEmptyInputs(t *testing.T) {
	if out := GreedyOrder(nil); out != nil {
		t.Error("GreedyOrder(nil) != nil")
	}
	if out := WorstCaseOrder(nil); out != nil {
		t.Error("WorstCaseOrder(nil) != nil")
	}
	if out := PrefixAwareOrder(nil); len(out) != 0 {
		t.Error("PrefixAwareOrder(nil) not empty")
	}
	if cost := EvictionCost(nil); cost != 0 {
		t.Error("EvictionCost(nil) != 0")
	}
	if got := ScheduleScore(nil); got != 0 {
		t.Error("ScheduleScore(nil) != 0")
	}
}

func TestMaxGrowthOrderIsPermutation(t *testing.T) {
	r := rng.New(29)
	paths := randomTree(r, 20)
	out := MaxGrowthOrder(paths)
	if len(out) != len(paths) {
		t.Fatalf("length %d != %d", len(out), len(paths))
	}
	seen := map[int]bool{}
	for _, p := range out {
		if seen[p.ID] {
			t.Fatalf("duplicate %d", p.ID)
		}
		seen[p.ID] = true
	}
}

// MaxGrowthOrder's cumulative-unique curve dominates both prefix-aware
// and random orderings at every point (it is the adversary for Fig 18l).
func TestMaxGrowthDominatesGrowth(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		paths := randomTree(r, 24)
		mg := CumulativeUniqueTokens(MaxGrowthOrder(paths))
		pa := CumulativeUniqueTokens(PrefixAwareOrder(paths))
		rnd := CumulativeUniqueTokens(RandomOrder(paths, r.Child("s")))
		for i := range mg {
			if mg[i] < pa[i] || mg[i] < rnd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
