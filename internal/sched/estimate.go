package sched

import (
	"math"

	"fasttts/internal/workload"
)

// EstimateDemand predicts a request's total service demand in token
// units: prompt prefill plus the expected decode work of a width-wide
// search. Harder problems hold quality down, which delays the
// termination logistic, so expected depth rises with difficulty.
//
// It is the single remaining-work estimator of the serving stack: the
// per-device engine seeds each admitted request's RemainingWork from it
// (consumed by the SJF policy), and the cluster's least-outstanding-work
// router sums it over a device's queued requests.
func EstimateDemand(p *workload.Problem, width int) float64 {
	spec := p.Spec()
	meanStep := math.Exp(spec.StepLogMu + spec.StepLogSigma*spec.StepLogSigma/2)
	steps := spec.TypicalSteps + 3*(p.Difficulty-0.5)
	if steps < 1 {
		steps = 1
	}
	if m := float64(spec.MaxSteps); steps > m {
		steps = m
	}
	return float64(p.PromptTokens) + float64(width)*steps*meanStep
}
