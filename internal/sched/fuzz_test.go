package sched

import (
	"strings"
	"testing"
	"testing/quick"
)

// FuzzPolicyByName asserts the lookup is total: any input yields a policy
// or an error, never a panic, and the two outcomes are mutually
// exclusive.
func FuzzPolicyByName(f *testing.F) {
	for _, name := range []string{"", "fcfs", "sjf", "first-finish", "priority", "deadline", "edf",
		"FCFS", " sjf", "nope", "fcfs\x00", "deadline,"} {
		f.Add(name)
	}
	f.Fuzz(func(t *testing.T, name string) {
		pol, err := PolicyByName(name)
		if (pol == nil) == (err == nil) {
			t.Errorf("PolicyByName(%q) = (%v, %v): want exactly one of policy/error", name, pol, err)
		}
		if err == nil && pol.Name() == "" {
			t.Errorf("PolicyByName(%q) returned an unnamed policy", name)
		}
	})
}

// TestPolicyByNameQuick drives the lookup with arbitrary generated
// strings (quick-check style): unknown names must come back as errors
// naming the input, and case variants of known names must resolve.
func TestPolicyByNameQuick(t *testing.T) {
	total := func(name string) bool {
		pol, err := PolicyByName(name)
		if err != nil {
			return pol == nil && strings.Contains(err.Error(), "unknown serve policy")
		}
		return pol != nil
	}
	if err := quick.Check(total, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, name := range []string{"FCFS", "Sjf", "PRIORITY", "Deadline", "EDF"} {
		if _, err := PolicyByName(name); err != nil {
			t.Errorf("case variant %q did not resolve: %v", name, err)
		}
	}
}
