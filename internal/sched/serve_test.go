package sched

import (
	"flag"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

// The serve-policy property tests are randomized. Override the seed from
// the command line to reproduce a failure:
//
//	go test ./internal/sched -serve.seed=12345
var serveSeed = flag.Int("serve.seed", int(time.Now().UnixNano())%100000, "seed for serve-policy property tests")

// qc builds the testing/quick configuration from -serve.seed.
func qc(t *testing.T) *quick.Config {
	t.Helper()
	t.Logf("serve.seed=%d", *serveSeed)
	return &quick.Config{
		MaxCount: 250,
		Rand:     rand.New(rand.NewSource(int64(*serveSeed))),
	}
}

// requestSet generates a non-empty batch of runnable requests.
type requestSet []ServeRequest

func (requestSet) Generate(r *rand.Rand, _ int) reflect.Value {
	n := 1 + r.Intn(20)
	rs := make(requestSet, n)
	for i := range rs {
		rs[i] = ServeRequest{
			ID:            i,
			Arrival:       float64(r.Intn(40)), // coarse grid to exercise ties
			Priority:      r.Intn(4) - 1,
			RemainingWork: float64(1 + r.Intn(8)),
			Started:       r.Intn(2) == 0,
			WorkDone:      r.Float64() * 10,
		}
		if r.Intn(2) == 0 {
			rs[i].Deadline = float64(1 + r.Intn(50))
		}
	}
	return reflect.ValueOf(rs)
}

// allPolicies are the built-in ordering disciplines.
func allPolicies() []ServePolicy {
	return []ServePolicy{FCFS{}, SJF{}, Priority{}, Deadline{},
		AdmissionLimit{Inner: SJF{}, MaxInFlight: 4}}
}

// TestPickInRangeAndDeterministic: every policy returns a valid index and
// is a pure function of its inputs.
func TestPickInRangeAndDeterministic(t *testing.T) {
	for _, pol := range allPolicies() {
		prop := func(rs requestSet, now float64) bool {
			i := pol.Pick(rs, now)
			return i >= 0 && i < len(rs) && pol.Pick(rs, now) == i
		}
		if err := quick.Check(prop, qc(t)); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
	}
}

// TestFCFSPicksEarliestArrival: no other request arrived strictly before
// the picked one (ties broken by stream ID).
func TestFCFSPicksEarliestArrival(t *testing.T) {
	prop := func(rs requestSet) bool {
		p := rs[FCFS{}.Pick(rs, 0)]
		for _, r := range rs {
			if earlier(r, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t)); err != nil {
		t.Error(err)
	}
}

// TestSJFPicksShortestRemaining: no other request has strictly less
// estimated remaining work; equal-work ties fall back to arrival order.
func TestSJFPicksShortestRemaining(t *testing.T) {
	prop := func(rs requestSet) bool {
		p := rs[SJF{}.Pick(rs, 0)]
		for _, r := range rs {
			if r.RemainingWork < p.RemainingWork {
				return false
			}
			if r.RemainingWork == p.RemainingWork && earlier(r, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t)); err != nil {
		t.Error(err)
	}
}

// TestPriorityPicksHighest: nothing outranks the pick; within the level,
// FCFS.
func TestPriorityPicksHighest(t *testing.T) {
	prop := func(rs requestSet) bool {
		p := rs[Priority{}.Pick(rs, 0)]
		for _, r := range rs {
			if r.Priority > p.Priority {
				return false
			}
			if r.Priority == p.Priority && earlier(r, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t)); err != nil {
		t.Error(err)
	}
}

// TestDeadlinePicksEDF: the picked request's deadline is no later than
// any other deadlined request's, and deadlined requests always outrank
// deadline-free ones.
func TestDeadlinePicksEDF(t *testing.T) {
	prop := func(rs requestSet) bool {
		p := rs[Deadline{}.Pick(rs, 0)]
		for _, r := range rs {
			if deadlineBefore(r, p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, qc(t)); err != nil {
		t.Error(err)
	}
}

// TestAdmissionLimit: rejects exactly when the in-flight population is at
// the cap, and delegates ordering to the inner policy.
func TestAdmissionLimit(t *testing.T) {
	inner := SJF{}
	pol := AdmissionLimit{Inner: inner, MaxInFlight: 3}
	prop := func(rs requestSet, inFlight uint8) bool {
		n := int(inFlight % 8)
		admit := pol.Admit(rs[0], 0, n)
		if admit != (n < 3) {
			return false
		}
		return pol.Pick(rs, 0) == inner.Pick(rs, 0)
	}
	if err := quick.Check(prop, qc(t)); err != nil {
		t.Error(err)
	}
}

func TestPolicyByName(t *testing.T) {
	for name, want := range map[string]string{
		"":             "fcfs",
		"fcfs":         "fcfs",
		"SJF":          "sjf",
		"first-finish": "sjf",
		"priority":     "priority",
		"deadline":     "deadline",
		"edf":          "deadline",
	} {
		pol, err := PolicyByName(name)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", name, err)
			continue
		}
		if pol.Name() != want {
			t.Errorf("PolicyByName(%q) = %s, want %s", name, pol.Name(), want)
		}
	}
	if _, err := PolicyByName("lifo"); err == nil {
		t.Error("PolicyByName(lifo) did not fail")
	}
}
