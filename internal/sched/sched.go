// Package sched implements Dynamic Prefix-Aware Scheduling (paper §4.2,
// Fig 8, Appendix A) together with the Random and Worst-Case comparison
// orderings used in the evaluation (Fig 18 left), and the serving-level
// ServePolicy admission/ordering disciplines (FCFS, SJF, priority,
// deadline-SLO) used by the multi-tenant serving engine (serve.go).
//
// A reasoning path (CoT) is described by its lineage: the chain of
// radix-tree nodes from the root of the reasoning tree to the path's
// leaf, with a token count per node. The shared prefix P(a, b) of two
// paths is the token count along their common lineage prefix. The
// scheduler orders paths to maximize Σ P(cₖ, cₖ₊₁), which — given the
// constant-total-work assumption (Appendix A.1) — minimizes KV-cache
// evictions between consecutively executed groups.
package sched

import (
	"sort"

	"fasttts/internal/rng"
)

// NodeRef is one reasoning-tree node along a path's lineage.
type NodeRef struct {
	Node   int // globally unique node ID
	Tokens int // tokens stored at this node
}

// Path is a schedulable reasoning path.
type Path struct {
	ID      int
	Lineage []NodeRef // root → leaf
}

// TotalTokens returns the path's full length in tokens.
func (p Path) TotalTokens() int {
	total := 0
	for _, n := range p.Lineage {
		total += n.Tokens
	}
	return total
}

// SharedPrefixTokens returns P(a, b): tokens along the common lineage
// prefix of the two paths.
func SharedPrefixTokens(a, b Path) int {
	shared := 0
	for i := 0; i < len(a.Lineage) && i < len(b.Lineage); i++ {
		if a.Lineage[i].Node != b.Lineage[i].Node {
			break
		}
		shared += a.Lineage[i].Tokens
	}
	return shared
}

// ScheduleScore is the surrogate objective Σₖ P(cₖ, cₖ₊₁) from §4.2.
func ScheduleScore(ordered []Path) int {
	score := 0
	for i := 0; i+1 < len(ordered); i++ {
		score += SharedPrefixTokens(ordered[i], ordered[i+1])
	}
	return score
}

// PrefixAwareOrder is the production implementation of the greedy policy:
// beams spawned from the same parent are grouped adjacently while the
// relative order of parents is preserved across iterations (§4.2 final
// paragraph). This equals a DFS ordering of the reasoning tree where
// sibling order follows first appearance in the input queue, and runs in
// O(n·d·log n) rather than the O(n²) literal greedy.
func PrefixAwareOrder(paths []Path) []Path {
	// Rank nodes by first appearance so the sort preserves queue order.
	rank := map[int]int{}
	next := 0
	for _, p := range paths {
		for _, n := range p.Lineage {
			if _, ok := rank[n.Node]; !ok {
				rank[n.Node] = next
				next++
			}
		}
	}
	out := append([]Path(nil), paths...)
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Lineage, out[j].Lineage
		for k := 0; k < len(a) && k < len(b); k++ {
			ra, rb := rank[a[k].Node], rank[b[k].Node]
			if ra != rb {
				return ra < rb
			}
		}
		return len(a) < len(b)
	})
	return out
}

// GreedyOrder is the literal §4.2 invariant: starting from the first
// queued path, repeatedly schedule the unscheduled path with the maximum
// shared prefix with the previously scheduled one (ties broken by queue
// order). O(n²); used for validation and small inputs.
func GreedyOrder(paths []Path) []Path {
	if len(paths) == 0 {
		return nil
	}
	used := make([]bool, len(paths))
	out := make([]Path, 0, len(paths))
	out = append(out, paths[0])
	used[0] = true
	for len(out) < len(paths) {
		prev := out[len(out)-1]
		bestIdx, bestShare := -1, -1
		for i, p := range paths {
			if used[i] {
				continue
			}
			if s := SharedPrefixTokens(prev, p); s > bestShare {
				bestIdx, bestShare = i, s
			}
		}
		out = append(out, paths[bestIdx])
		used[bestIdx] = true
	}
	return out
}

// RandomOrder shuffles the paths (the vLLM-baseline behaviour: insertion
// order scrambled by beam replication, Fig 18 caption).
func RandomOrder(paths []Path, r *rng.Stream) []Path {
	out := append([]Path(nil), paths...)
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// WorstCaseOrder adversarially minimizes adjacent sharing: repeatedly
// schedule the unscheduled path with the minimum shared prefix with the
// previous one. Used as the lower baseline in Fig 18 (left).
func WorstCaseOrder(paths []Path) []Path {
	if len(paths) == 0 {
		return nil
	}
	used := make([]bool, len(paths))
	out := make([]Path, 0, len(paths))
	out = append(out, paths[0])
	used[0] = true
	for len(out) < len(paths) {
		prev := out[len(out)-1]
		worstIdx, worstShare := -1, int(^uint(0)>>1)
		for i, p := range paths {
			if used[i] {
				continue
			}
			if s := SharedPrefixTokens(prev, p); s < worstShare {
				worstIdx, worstShare = i, s
			}
		}
		out = append(out, paths[worstIdx])
		used[worstIdx] = true
	}
	return out
}

// MaxGrowthOrder is the adversarial ordering for KV *growth*: it
// repeatedly schedules the unscheduled path that adds the most new unique
// tokens given everything already scheduled (farthest-first traversal).
// This is the "Worst-Case" curve of Fig 18 (left): the batch's KV
// footprint grows as fast as possible.
func MaxGrowthOrder(paths []Path) []Path {
	if len(paths) == 0 {
		return nil
	}
	used := make([]bool, len(paths))
	seen := map[int]bool{}
	out := make([]Path, 0, len(paths))
	for len(out) < len(paths) {
		bestIdx, bestNew := -1, -1
		for i, p := range paths {
			if used[i] {
				continue
			}
			added := 0
			for _, n := range p.Lineage {
				if !seen[n.Node] {
					added += n.Tokens
				}
			}
			if added > bestNew {
				bestIdx, bestNew = i, added
			}
		}
		p := paths[bestIdx]
		used[bestIdx] = true
		for _, n := range p.Lineage {
			seen[n.Node] = true
		}
		out = append(out, p)
	}
	return out
}

// Trie is one memory-resident batch: the largest group of consecutively
// scheduled paths whose union of lineage nodes fits the KV budget (§4.2).
type Trie struct {
	Paths []Path
	// UniqueTokens is Nodes(T) in token units: the KV footprint of the
	// group with perfect prefix sharing.
	UniqueTokens int
	nodes        map[int]int // node ID → tokens
}

// PackTries partitions an ordered schedule into consecutive tries, each
// fitting capacityTokens of KV memory. A single path larger than the
// budget gets its own (oversized) trie; the engine streams it.
func PackTries(ordered []Path, capacityTokens int) []Trie {
	var tries []Trie
	cur := Trie{nodes: map[int]int{}}
	flush := func() {
		if len(cur.Paths) > 0 {
			tries = append(tries, cur)
			cur = Trie{nodes: map[int]int{}}
		}
	}
	for _, p := range ordered {
		added := 0
		for _, n := range p.Lineage {
			if _, ok := cur.nodes[n.Node]; !ok {
				added += n.Tokens
			}
		}
		if len(cur.Paths) > 0 && cur.UniqueTokens+added > capacityTokens {
			flush()
			added = p.TotalTokens()
		}
		for _, n := range p.Lineage {
			if _, ok := cur.nodes[n.Node]; !ok {
				cur.nodes[n.Node] = n.Tokens
			}
		}
		cur.Paths = append(cur.Paths, p)
		cur.UniqueTokens += added
	}
	flush()
	return tries
}

// SharedTokens returns the tokens of nodes present in both tries
// (P(Tᵢ, Tᵢ₊₁) in token units).
func SharedTokens(a, b Trie) int {
	shared := 0
	for node, tokens := range a.nodes {
		if _, ok := b.nodes[node]; ok {
			shared += tokens
		}
	}
	return shared
}

// EvictionCost is the §4.2 objective: Σᵢ (Nodes(Tᵢ) − P(Tᵢ, Tᵢ₊₁)), in
// tokens, summed over trie *switches* — matching the Fig 8 worked example,
// where the final resident trie pays no eviction.
func EvictionCost(tries []Trie) int {
	cost := 0
	for i := 0; i+1 < len(tries); i++ {
		cost += tries[i].UniqueTokens - SharedTokens(tries[i], tries[i+1])
	}
	return cost
}

// PairwiseShared returns the matrix of shared-prefix token counts for an
// ordered schedule — the Fig 5 (right) heatmap.
func PairwiseShared(ordered []Path) [][]int {
	m := make([][]int, len(ordered))
	for i := range ordered {
		m[i] = make([]int, len(ordered))
		for j := range ordered {
			m[i][j] = SharedPrefixTokens(ordered[i], ordered[j])
		}
	}
	return m
}

// CumulativeUniqueTokens returns, for each prefix of the schedule, the KV
// footprint (unique tokens) of the first k+1 paths — the Fig 18 (left)
// "KV cache size vs batch growth" curve.
func CumulativeUniqueTokens(ordered []Path) []int {
	seen := map[int]bool{}
	out := make([]int, len(ordered))
	total := 0
	for i, p := range ordered {
		for _, n := range p.Lineage {
			if !seen[n.Node] {
				seen[n.Node] = true
				total += n.Tokens
			}
		}
		out[i] = total
	}
	return out
}
