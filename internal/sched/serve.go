package sched

// This file implements serving-level scheduling: pluggable admission and
// device-slice ordering policies for the multi-tenant serving engine. The
// §4.1.2 two-phase preemptible scheduler of the paper is the FCFS special
// case; the other policies generalize it to the shortest-job
// (First-Finish style, arXiv:2505.18149), strict-priority, and
// deadline-SLO disciplines that heavy multi-user edge traffic calls for.

import (
	"fmt"
	"strings"
)

// ServeRequest is a policy's read-only view of one admitted request.
type ServeRequest struct {
	// ID is the request's position in the submitted stream (stable
	// tie-breaker).
	ID int
	// Arrival is the request's arrival time on the server clock.
	Arrival float64
	// Priority orders requests under the priority policy; larger runs
	// first.
	Priority int
	// Deadline is the absolute SLO deadline on the server clock; 0 means
	// no deadline.
	Deadline float64
	// Started reports whether the request has received any device slice;
	// Start is the time of its first slice.
	Started bool
	Start   float64
	// WorkDone is the device time (virtual seconds) consumed so far.
	WorkDone float64
	// RemainingWork is the server's estimate of the request's remaining
	// service demand. Units are arbitrary but consistent across requests,
	// so policies may compare but not interpret them.
	RemainingWork float64
}

// ServePolicy decides which requests enter the system and which runnable
// request receives the next device slice. Implementations must be
// deterministic functions of their arguments — the serving engine
// guarantees bit-identical runs for equal seeds, and a policy that
// consults wall clocks, map iteration order, or racy shared state breaks
// that property even if it spawns goroutines internally.
type ServePolicy interface {
	// Name identifies the policy ("fcfs", "sjf", ...).
	Name() string
	// Admit decides whether a newly arrived request enters the system.
	// inFlight counts admitted, unfinished requests. Rejected requests are
	// reported as shed load and never served.
	Admit(r ServeRequest, now float64, inFlight int) bool
	// Pick returns the index into runnable (non-empty) of the request that
	// receives the next device slice.
	Pick(runnable []ServeRequest, now float64) int
}

// FCFS serves in arrival order and admits everything: the §4.1.2
// semantics. Because the earliest-arrived unfinished request stays
// earliest until it completes, FCFS degenerates to run-to-completion and
// reproduces the sequential seed scheduler exactly.
type FCFS struct{}

func (FCFS) Name() string                          { return "fcfs" }
func (FCFS) Admit(ServeRequest, float64, int) bool { return true }
func (FCFS) Pick(rs []ServeRequest, _ float64) int {
	best := 0
	for i := 1; i < len(rs); i++ {
		if earlier(rs[i], rs[best]) {
			best = i
		}
	}
	return best
}

// SJF picks the request with the smallest estimated remaining work
// (shortest-remaining-processing-time; the First Finish Search discipline
// applied to serving). Ties fall back to arrival order.
type SJF struct{}

func (SJF) Name() string                          { return "sjf" }
func (SJF) Admit(ServeRequest, float64, int) bool { return true }
func (SJF) Pick(rs []ServeRequest, _ float64) int {
	best := 0
	for i := 1; i < len(rs); i++ {
		switch {
		case rs[i].RemainingWork < rs[best].RemainingWork:
			best = i
		case rs[i].RemainingWork == rs[best].RemainingWork && earlier(rs[i], rs[best]):
			best = i
		}
	}
	return best
}

// Priority serves the highest Priority value first, FCFS within a level.
type Priority struct{}

func (Priority) Name() string                          { return "priority" }
func (Priority) Admit(ServeRequest, float64, int) bool { return true }
func (Priority) Pick(rs []ServeRequest, _ float64) int {
	best := 0
	for i := 1; i < len(rs); i++ {
		switch {
		case rs[i].Priority > rs[best].Priority:
			best = i
		case rs[i].Priority == rs[best].Priority && earlier(rs[i], rs[best]):
			best = i
		}
	}
	return best
}

// Deadline is earliest-deadline-first: the request whose SLO deadline
// expires soonest runs next; requests without a deadline run after all
// deadlined ones, FCFS among themselves.
type Deadline struct{}

func (Deadline) Name() string                          { return "deadline" }
func (Deadline) Admit(ServeRequest, float64, int) bool { return true }
func (Deadline) Pick(rs []ServeRequest, _ float64) int {
	best := 0
	for i := 1; i < len(rs); i++ {
		if deadlineBefore(rs[i], rs[best]) {
			best = i
		}
	}
	return best
}

func deadlineBefore(a, b ServeRequest) bool {
	switch {
	case a.Deadline > 0 && b.Deadline > 0:
		if a.Deadline != b.Deadline {
			return a.Deadline < b.Deadline
		}
		return earlier(a, b)
	case a.Deadline > 0:
		return true
	case b.Deadline > 0:
		return false
	default:
		return earlier(a, b)
	}
}

// AdmissionLimit wraps a policy with a load-shedding admission rule:
// arrivals beyond MaxInFlight admitted, unfinished requests are rejected.
// Ordering is delegated to Inner.
type AdmissionLimit struct {
	Inner       ServePolicy
	MaxInFlight int
}

func (p AdmissionLimit) Name() string {
	return fmt.Sprintf("%s+limit%d", p.Inner.Name(), p.MaxInFlight)
}

func (p AdmissionLimit) Admit(r ServeRequest, now float64, inFlight int) bool {
	if p.MaxInFlight > 0 && inFlight >= p.MaxInFlight {
		return false
	}
	return p.Inner.Admit(r, now, inFlight)
}

func (p AdmissionLimit) Pick(rs []ServeRequest, now float64) int {
	return p.Inner.Pick(rs, now)
}

// earlier is the shared FCFS tie-break: arrival time, then stream ID.
func earlier(a, b ServeRequest) bool {
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// PolicyByName resolves a serving policy from its CLI/config name:
// "fcfs", "sjf", "priority", or "deadline".
func PolicyByName(name string) (ServePolicy, error) {
	switch strings.ToLower(name) {
	case "", "fcfs":
		return FCFS{}, nil
	case "sjf", "first-finish":
		return SJF{}, nil
	case "priority":
		return Priority{}, nil
	case "deadline", "edf":
		return Deadline{}, nil
	}
	return nil, fmt.Errorf("sched: unknown serve policy %q (want fcfs, sjf, priority, or deadline)", name)
}
