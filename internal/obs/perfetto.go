package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// perfettoEvent is one Chrome-trace-event object. Field order (and the
// struct-based args) keep the emitted JSON byte-deterministic for a
// given span stream.
type perfettoEvent struct {
	Name string        `json:"name"`
	Ph   string        `json:"ph"`
	Ts   float64       `json:"ts"`
	Dur  *float64      `json:"dur,omitempty"`
	Pid  int           `json:"pid"`
	Tid  int           `json:"tid"`
	S    string        `json:"s,omitempty"`
	Args *perfettoArgs `json:"args,omitempty"`
}

type perfettoArgs struct {
	Name string  `json:"name,omitempty"`
	Tag  *int    `json:"tag,omitempty"`
	V1   float64 `json:"v1,omitempty"`
	V2   float64 `json:"v2,omitempty"`
	N    int     `json:"n,omitempty"`
	Flag bool    `json:"flag,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// WritePerfetto serializes a span stream as Chrome trace-event JSON,
// loadable in Perfetto (ui.perfetto.dev) or chrome://tracing. Virtual
// seconds map to trace microseconds. Each device gets its own thread
// lane (tid = device+1); the control plane is tid 0. The output is
// byte-deterministic: identical span streams produce identical files.
func WritePerfetto(w io.Writer, spans []Span) error {
	tid := func(track int) int { return track + 1 } // ControlTrack (-1) -> 0

	// Thread-name metadata: control plane plus every device track seen.
	maxDev := -1
	seenControl := false
	for _, s := range spans {
		if s.Track == ControlTrack {
			seenControl = true
		} else if s.Track > maxDev {
			maxDev = s.Track
		}
	}
	events := make([]perfettoEvent, 0, len(spans)+maxDev+2)
	if seenControl {
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: 0,
			Args: &perfettoArgs{Name: "control plane"},
		})
	}
	for d := 0; d <= maxDev; d++ {
		events = append(events, perfettoEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid(d),
			Args: &perfettoArgs{Name: fmt.Sprintf("device %d", d)},
		})
	}

	for _, s := range spans {
		name := s.Kind.String()
		if s.Kind.requestScoped() {
			name = fmt.Sprintf("%s #%d", s.Kind, s.Tag)
		}
		tag := s.Tag
		ev := perfettoEvent{
			Name: name,
			Ts:   s.Start * 1e6,
			Pid:  0,
			Tid:  tid(s.Track),
			Args: &perfettoArgs{Tag: &tag, V1: s.V1, V2: s.V2, N: s.N, Flag: s.Flag},
		}
		if !s.Kind.requestScoped() {
			ev.Args.Tag = nil
		}
		if s.End > s.Start {
			dur := (s.End - s.Start) * 1e6
			ev.Ph = "X"
			ev.Dur = &dur
		} else {
			ev.Ph = "i"
			ev.S = "t"
		}
		events = append(events, ev)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(perfettoFile{TraceEvents: events, DisplayTimeUnit: "ms"})
}
