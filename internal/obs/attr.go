package obs

import (
	"fmt"
	"math"
	"sort"

	"fasttts/internal/metrics"
)

// RequestAttribution decomposes one finished request's wall latency
// into additive components:
//
//	Wall = Queue + Service + Reprefill + Straggler + Preemption
//
// (left-to-right; CheckSums enforces the identity to within 1 ulp of
// Wall). HedgeWaste and LostWork are device-time side channels — work
// burned by a hedge loser or lost to a fail-stop — that overlap the
// request's wall interval rather than extending it, so they sit outside
// the serial sum.
type RequestAttribution struct {
	Tag    int // original request tag (hedge twins fold into it)
	Device int // device that produced the winning finish

	Arrival float64 // first appearance anywhere in the fleet
	Finish  float64 // winning completion instant
	Wall    float64 // Finish - Arrival

	Queue      float64 // arrival -> first slice on the serving device
	Service    float64 // nominal solver time across serving slices
	Reprefill  float64 // nominal KV re-prefill penalty paid at admission
	Straggler  float64 // wall inflation of serving slices over nominal (stragglers)
	Preemption float64 // serving-device gaps between slices (preemption residual)

	HedgeWaste float64 // slice wall burned by the losing hedge copy
	LostWork   float64 // slice wall lost to fail-stops before requeue

	Slices      int
	Preemptions int // serving slices whose preemption probe fired
	Requeues    int
	Hedged      bool
}

// origTag folds a hedged twin's bit-complement tag back to its original.
func origTag(t int) int {
	if t < 0 {
		return ^t
	}
	return t
}

// Attribute runs the latency-attribution pass over a merged span
// stream, returning one record per finished request, sorted by tag.
// Requests that never finished (shed, rejected, cancelled before
// completion) are not attributed. With hedging, the copy producing the
// earliest finish (ties broken by lower track) is the winner; the
// loser's executed slices become HedgeWaste. The pass is deterministic:
// identical span streams yield identical attributions.
func Attribute(spans []Span) []RequestAttribution {
	groups := make(map[int][]Span)
	var order []int
	for _, s := range spans {
		if !s.Kind.requestScoped() {
			continue
		}
		o := origTag(s.Tag)
		if _, ok := groups[o]; !ok {
			order = append(order, o)
		}
		groups[o] = append(groups[o], s)
	}
	sort.Ints(order)

	var out []RequestAttribution
	for _, tag := range order {
		g := groups[tag]
		// Winning finish. A hedge resolution span names the copy the
		// fleet delivered (delivery order is device-index order within an
		// event window, so it can differ from the earliest finish);
		// without one — the server target, unhedged requests — the single
		// finish wins, earliest End and lower track breaking ties.
		var win *Span
		for i := range g {
			s := &g[i]
			if s.Kind != KindHedgeWin {
				continue
			}
			for j := range g {
				f := &g[j]
				if f.Kind == KindFinish && f.Tag == s.Tag && f.Track == int(s.V1) {
					win = f
					break
				}
			}
			break
		}
		if win == nil {
			for i := range g {
				s := &g[i]
				if s.Kind != KindFinish {
					continue
				}
				if win == nil || s.End < win.End || (s.End == win.End && s.Track < win.Track) {
					win = s
				}
			}
		}
		if win == nil {
			continue
		}
		a := RequestAttribution{Tag: tag, Device: win.Track, Finish: win.End}

		arrival := math.Inf(1)
		start := math.NaN()
		for _, s := range g {
			if s.Start < arrival {
				arrival = s.Start
			}
			switch s.Kind {
			case KindQueue:
				if s.Track == win.Track && s.Tag == win.Tag {
					start = s.End
				}
			case KindSlice:
				if s.Track == win.Track && s.Tag == win.Tag {
					a.Slices++
					a.Service += s.V1
					a.Reprefill += s.V2
					a.Straggler += s.End - s.Start
					if s.Flag {
						a.Preemptions++
					}
				} else if s.Tag == ^win.Tag {
					a.HedgeWaste += s.End - s.Start
				} else {
					a.LostWork += s.End - s.Start
				}
			case KindHedge:
				a.Hedged = true
			case KindRequeue:
				a.Requeues++
			}
		}
		a.Arrival = arrival
		a.Wall = a.Finish - arrival
		if math.IsNaN(start) {
			start = arrival // degenerate: no queue span recorded
		}
		a.Queue = start - arrival
		// Straggler currently holds the serving slices' total wall;
		// subtract the nominal parts to leave only straggler inflation.
		a.Straggler = a.Straggler - a.Service - a.Reprefill
		// Preemption is the closing residual of the left-to-right sum,
		// which pins the CheckSums identity to within 1 ulp of Wall.
		a.Preemption = a.Wall - (((a.Queue + a.Service) + a.Reprefill) + a.Straggler)
		out = append(out, a)
	}
	return out
}

// ComponentSum folds the serial components in the canonical
// left-to-right order used by CheckSums.
func (a RequestAttribution) ComponentSum() float64 {
	return (((a.Queue + a.Service) + a.Reprefill) + a.Straggler) + a.Preemption
}

// CheckSums verifies the attribution identity — components sum to the
// measured wall latency within 1 ulp of Wall — for every record,
// returning the first violation.
func CheckSums(attrs []RequestAttribution) error {
	for _, a := range attrs {
		sum := a.ComponentSum()
		tol := math.Nextafter(math.Abs(a.Wall), math.Inf(1)) - math.Abs(a.Wall)
		if diff := math.Abs(sum - a.Wall); diff > tol {
			return fmt.Errorf("obs: tag %d: components sum to %v but wall is %v (diff %v > 1 ulp %v)",
				a.Tag, sum, a.Wall, diff, tol)
		}
	}
	return nil
}

// Summarize rolls per-request attributions into fleet totals.
func Summarize(attrs []RequestAttribution) metrics.AttributionStats {
	var st metrics.AttributionStats
	for _, a := range attrs {
		st.Requests++
		if a.Hedged {
			st.Hedged++
		}
		st.Wall += a.Wall
		st.Queue += a.Queue
		st.Service += a.Service
		st.Reprefill += a.Reprefill
		st.Straggler += a.Straggler
		st.Preemption += a.Preemption
		st.HedgeWaste += a.HedgeWaste
		st.LostWork += a.LostWork
		st.Slices += a.Slices
		st.Preemptions += a.Preemptions
		st.Requeues += a.Requeues
	}
	return st
}
