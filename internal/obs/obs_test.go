package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

// TestDisabledPathZeroAllocs pins the flight recorder's disabled-path
// contract: emitting into a nil track — which is exactly what every
// instrumentation site in core and cluster does when no recorder is
// attached — allocates nothing. A regression here would put allocation
// pressure on the engines' hot paths for every run that never asked for
// tracing.
func TestDisabledPathZeroAllocs(t *testing.T) {
	var nilRec *Recorder
	if nilRec.Device(3) != nil || nilRec.Control() != nil {
		t.Fatal("nil recorder must hand out nil tracks")
	}
	span := Span{Kind: KindSlice, Tag: 7, Start: 1, End: 2, V1: 0.5, N: 4}
	allocs := testing.AllocsPerRun(1000, func() {
		var tr *Track
		tr.Emit(span)
		nilRec.Device(0).Emit(span)
		nilRec.Control().Emit(span)
	})
	if allocs != 0 {
		t.Fatalf("disabled emission path allocated %.1f allocs/op, want 0", allocs)
	}
	if nilRec.SpanCount() != 0 || nilRec.Spans() != nil {
		t.Fatal("nil recorder must report no spans")
	}
}

func TestRecorderMergeOrder(t *testing.T) {
	r := NewRecorder()
	d1 := r.Device(1) // grows devices 0 and 1; pointers must stay stable
	d0 := r.Device(0)
	if r.Device(0) != d0 || r.Device(1) != d1 {
		t.Fatal("Device pointers must be stable across growth")
	}
	r.Control().Emit(Span{Kind: KindRoute, Tag: 0, Start: 1, End: 1})
	d1.Emit(Span{Kind: KindAdmit, Tag: 0, Start: 1, End: 1})
	d0.Emit(Span{Kind: KindAdmit, Tag: 1, Start: 0.5, End: 0.5})
	r.Control().Emit(Span{Kind: KindRoute, Tag: 1, Start: 0.5, End: 0.5})

	got := r.Spans()
	want := []Span{
		{Kind: KindRoute, Track: ControlTrack, Tag: 1, Start: 0.5, End: 0.5},
		{Kind: KindAdmit, Track: 0, Tag: 1, Start: 0.5, End: 0.5},
		{Kind: KindRoute, Track: ControlTrack, Tag: 0, Start: 1, End: 1},
		{Kind: KindAdmit, Track: 1, Tag: 0, Start: 1, End: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("merged spans out of canonical order:\n got %+v\nwant %+v", got, want)
	}
	if r.SpanCount() != 4 {
		t.Fatalf("SpanCount = %d, want 4", r.SpanCount())
	}
	r.Reset()
	if r.SpanCount() != 0 {
		t.Fatalf("SpanCount after Reset = %d, want 0", r.SpanCount())
	}
}

// lifecycle emits one well-formed request lifecycle on track dev.
func lifecycle(tr *Track, tag int, arrive, admit, start, finish float64) {
	tr.Emit(Span{Kind: KindAdmit, Tag: tag, Start: arrive, End: admit})
	tr.Emit(Span{Kind: KindQueue, Tag: tag, Start: arrive, End: start})
	tr.Emit(Span{Kind: KindSlice, Tag: tag, Start: start, End: finish, V1: finish - start})
	tr.Emit(Span{Kind: KindFinish, Tag: tag, Start: finish, End: finish, N: 1})
}

func TestVerify(t *testing.T) {
	ok := NewRecorder()
	lifecycle(ok.Device(0), 0, 0, 0, 0, 2)
	lifecycle(ok.Device(0), 1, 1, 2, 2, 3)
	if err := Verify(ok.Spans()); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}

	cases := []struct {
		name  string
		spans []Span
		want  string
	}{
		{"overlapping slices", []Span{
			{Kind: KindAdmit, Track: 0, Tag: 0, Start: 0, End: 0},
			{Kind: KindAdmit, Track: 0, Tag: 1, Start: 0, End: 0},
			{Kind: KindSlice, Track: 0, Tag: 0, Start: 0, End: 2},
			{Kind: KindSlice, Track: 0, Tag: 1, Start: 1, End: 3},
		}, "overlaps"},
		{"double close", []Span{
			{Kind: KindAdmit, Track: 0, Tag: 0, Start: 0, End: 0},
			{Kind: KindFinish, Track: 0, Tag: 0, Start: 1, End: 1},
			{Kind: KindCancel, Track: 0, Tag: 0, Start: 2, End: 2},
		}, "closed 2 times"},
		{"never closed", []Span{
			{Kind: KindAdmit, Track: 0, Tag: 0, Start: 0, End: 0},
			{Kind: KindSlice, Track: 0, Tag: 0, Start: 0, End: 1},
		}, "closed 0 times"},
		{"backwards interval", []Span{
			{Kind: KindSlice, Track: 0, Tag: 0, Start: 2, End: 1},
		}, "before Start"},
		{"slice without admission", []Span{
			{Kind: KindSlice, Track: 0, Tag: 0, Start: 0, End: 1},
		}, "without admission"},
		{"double admission", []Span{
			{Kind: KindAdmit, Track: 0, Tag: 0, Start: 0, End: 0},
			{Kind: KindFinish, Track: 0, Tag: 0, Start: 1, End: 1},
			{Kind: KindAdmit, Track: 0, Tag: 0, Start: 2, End: 2},
		}, "admitted 2 times"},
	}
	for _, tc := range cases {
		err := Verify(tc.spans)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Verify = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestWritePerfettoDeterministicShape(t *testing.T) {
	r := NewRecorder()
	r.Control().Emit(Span{Kind: KindRoute, Tag: 0, Start: 0, End: 0, V1: 1, N: 2})
	lifecycle(r.Device(1), 0, 0, 0, 0.5, 2.0)

	var a, b bytes.Buffer
	if err := WritePerfetto(&a, r.Spans()); err != nil {
		t.Fatal(err)
	}
	if err := WritePerfetto(&b, r.Spans()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WritePerfetto must be byte-deterministic for identical span streams")
	}

	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   float64  `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  int      `json:"pid"`
			Tid  int      `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	// 3 thread_name metadata events (control + devices 0, 1) + 5 spans.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d trace events, want 8", len(doc.TraceEvents))
	}
	meta, complete, instant := 0, 0, 0
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			complete++
			if ev.Dur == nil {
				t.Errorf("complete event %q has no dur", ev.Name)
			}
		case "i":
			instant++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 3 || complete != 2 || instant != 3 {
		t.Fatalf("event mix meta/complete/instant = %d/%d/%d, want 3/2/3", meta, complete, instant)
	}
	// The device-1 slice runs on tid 2 (control is 0, device i is i+1),
	// with microsecond timestamps.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "slice #0" {
			found = true
			if ev.Tid != 2 || ev.Dur == nil || *ev.Dur != 1.5e6 {
				t.Errorf("slice event tid=%d dur=%v, want tid=2 dur=1.5e6", ev.Tid, ev.Dur)
			}
		}
	}
	if !found {
		t.Fatal("no slice complete event in trace")
	}
}

func TestAttributeDecomposition(t *testing.T) {
	r := NewRecorder()
	c := r.Control()
	// Request 0: plain lifecycle on device 0 — queue 1s, two slices with
	// a re-prefill penalty and straggler inflation, a preemption gap.
	c.Emit(Span{Kind: KindRoute, Tag: 0, Start: 0, End: 0, V1: 0, N: 2})
	d0 := r.Device(0)
	d0.Emit(Span{Kind: KindAdmit, Tag: 0, Start: 0, End: 0, V1: 0.25})
	d0.Emit(Span{Kind: KindQueue, Tag: 0, Start: 0, End: 1})
	// Slice 1: wall 2.25 = nominal 1.5 + reprefill 0.25 + straggler 0.5.
	d0.Emit(Span{Kind: KindSlice, Tag: 0, Start: 1, End: 3.25, V1: 1.5, V2: 0.25, N: 4, Flag: true})
	// Preemption gap [3.25, 4): another tenant held the device.
	d0.Emit(Span{Kind: KindSlice, Tag: 0, Start: 4, End: 5, V1: 1.0})
	d0.Emit(Span{Kind: KindFinish, Tag: 0, Start: 5, End: 5, N: 2})

	// Request 1: hedged; twin (^1 on device 1) wins, primary's work on
	// device 0 is hedge waste.
	c.Emit(Span{Kind: KindRoute, Tag: 1, Start: 0.5, End: 0.5, V1: 0, N: 2})
	c.Emit(Span{Kind: KindRoute, Tag: ^1, Start: 0.5, End: 0.5, V1: 1, N: 1})
	c.Emit(Span{Kind: KindHedge, Tag: 1, Start: 0.5, End: 0.5, V1: 0, V2: 1})
	d1 := r.Device(1)
	d1.Emit(Span{Kind: KindAdmit, Tag: ^1, Start: 0.5, End: 0.5})
	d1.Emit(Span{Kind: KindQueue, Tag: ^1, Start: 0.5, End: 0.5})
	d1.Emit(Span{Kind: KindSlice, Tag: ^1, Start: 0.5, End: 2.5, V1: 2.0})
	d1.Emit(Span{Kind: KindFinish, Tag: ^1, Start: 2.5, End: 2.5, N: 1})
	d0.Emit(Span{Kind: KindAdmit, Tag: 1, Start: 0.5, End: 0.5})
	d0.Emit(Span{Kind: KindQueue, Tag: 1, Start: 0.5, End: 5})
	d0.Emit(Span{Kind: KindSlice, Tag: 1, Start: 5, End: 6, V1: 1.0})
	d0.Emit(Span{Kind: KindCancel, Tag: 1, Start: 6, End: 6, Flag: true})

	attrs := Attribute(r.Spans())
	if len(attrs) != 2 {
		t.Fatalf("attributed %d requests, want 2", len(attrs))
	}
	a0 := attrs[0]
	if a0.Tag != 0 || a0.Device != 0 {
		t.Fatalf("request 0 attributed to tag %d device %d", a0.Tag, a0.Device)
	}
	checks := []struct {
		name      string
		got, want float64
	}{
		{"wall", a0.Wall, 5},
		{"queue", a0.Queue, 1},
		{"service", a0.Service, 2.5},
		{"reprefill", a0.Reprefill, 0.25},
		{"straggler", a0.Straggler, 0.5},
		{"preemption", a0.Preemption, 0.75},
	}
	for _, ck := range checks {
		if math.Abs(ck.got-ck.want) > 1e-12 {
			t.Errorf("request 0 %s = %v, want %v", ck.name, ck.got, ck.want)
		}
	}
	if a0.Slices != 2 || a0.Preemptions != 1 || a0.Hedged {
		t.Errorf("request 0 slices/preemptions/hedged = %d/%d/%v, want 2/1/false",
			a0.Slices, a0.Preemptions, a0.Hedged)
	}

	a1 := attrs[1]
	if a1.Tag != 1 || a1.Device != 1 || !a1.Hedged {
		t.Fatalf("request 1 attributed to tag %d device %d hedged %v, want 1/1/true", a1.Tag, a1.Device, a1.Hedged)
	}
	if a1.Wall != 2 || a1.Service != 2 || a1.HedgeWaste != 1 {
		t.Errorf("request 1 wall/service/hedgeWaste = %v/%v/%v, want 2/2/1", a1.Wall, a1.Service, a1.HedgeWaste)
	}

	if err := CheckSums(attrs); err != nil {
		t.Fatalf("components must sum to wall: %v", err)
	}
	st := Summarize(attrs)
	if st.Requests != 2 || st.Hedged != 1 || st.Wall != 7 || st.HedgeWaste != 1 {
		t.Fatalf("summary = %+v", st)
	}
}

// TestAttributeHedgeWinOverride pins the hedge-resolution contract: the
// fleet delivers completions in device-index order within an event
// window, so the copy it resolves as winner (the KindHedgeWin span) can
// have a LATER finish instant than its twin — attribution must follow
// the resolution, not the earlier clock reading.
func TestAttributeHedgeWinOverride(t *testing.T) {
	r := NewRecorder()
	c := r.Control()
	c.Emit(Span{Kind: KindRoute, Tag: 3, Start: 0, End: 0, V1: 0, N: 2})
	c.Emit(Span{Kind: KindRoute, Tag: ^3, Start: 0, End: 0, V1: 1, N: 1})
	c.Emit(Span{Kind: KindHedge, Tag: 3, Start: 0, End: 0, V1: 0, V2: 1})
	d0, d1 := r.Device(0), r.Device(1)
	// Twin on device 1 finishes first on the virtual clock...
	d1.Emit(Span{Kind: KindAdmit, Tag: ^3, Start: 0, End: 0})
	d1.Emit(Span{Kind: KindQueue, Tag: ^3, Start: 0, End: 0})
	d1.Emit(Span{Kind: KindSlice, Tag: ^3, Start: 0, End: 4, V1: 4})
	d1.Emit(Span{Kind: KindFinish, Tag: ^3, Start: 4, End: 4, N: 1})
	// ...but the primary on device 0, completing within the same event
	// window, was delivered first and won.
	d0.Emit(Span{Kind: KindAdmit, Tag: 3, Start: 0, End: 0})
	d0.Emit(Span{Kind: KindQueue, Tag: 3, Start: 0, End: 1})
	d0.Emit(Span{Kind: KindSlice, Tag: 3, Start: 1, End: 6, V1: 5})
	d0.Emit(Span{Kind: KindFinish, Tag: 3, Start: 6, End: 6, N: 1})
	c.Emit(Span{Kind: KindHedgeWin, Tag: 3, Start: 6, End: 6, V1: 0})

	attrs := Attribute(r.Spans())
	if len(attrs) != 1 {
		t.Fatalf("attributed %d requests, want 1", len(attrs))
	}
	a := attrs[0]
	if a.Device != 0 || a.Finish != 6 || a.Wall != 6 || !a.Hedged {
		t.Fatalf("device/finish/wall/hedged = %d/%v/%v/%v, want 0/6/6/true",
			a.Device, a.Finish, a.Wall, a.Hedged)
	}
	if a.Service != 5 || a.HedgeWaste != 4 {
		t.Fatalf("service/hedgeWaste = %v/%v, want 5/4 (the twin's work is waste)",
			a.Service, a.HedgeWaste)
	}
	if err := CheckSums(attrs); err != nil {
		t.Fatal(err)
	}
	if err := Verify(r.Spans()); err != nil {
		t.Fatal(err)
	}
}

// TestAttributeRequeueLostWork covers the fail-stop migration shape:
// slices executed on the failed device are LostWork, the serving copy on
// the survivor carries the decomposition, and the wait on the failed
// device folds into Queue (arrival is the original submission).
func TestAttributeRequeueLostWork(t *testing.T) {
	r := NewRecorder()
	c := r.Control()
	c.Emit(Span{Kind: KindRoute, Tag: 5, Start: 0, End: 0, V1: 0, N: 2})
	d0, d1 := r.Device(0), r.Device(1)
	d0.Emit(Span{Kind: KindAdmit, Tag: 5, Start: 0, End: 0})
	d0.Emit(Span{Kind: KindQueue, Tag: 5, Start: 0, End: 0})
	d0.Emit(Span{Kind: KindSlice, Tag: 5, Start: 0, End: 2, V1: 2})
	d0.Emit(Span{Kind: KindWithdraw, Tag: 5, Start: 2, End: 2, Flag: true})
	d0.Emit(Span{Kind: KindFailStop, Start: 2, End: 2, N: 1})
	c.Emit(Span{Kind: KindRequeue, Tag: 5, Start: 2, End: 2, V1: 0})
	c.Emit(Span{Kind: KindRoute, Tag: 5, Start: 2, End: 2, V1: 1, N: 1})
	d1.Emit(Span{Kind: KindAdmit, Tag: 5, Start: 2, End: 2})
	d1.Emit(Span{Kind: KindQueue, Tag: 5, Start: 2, End: 3})
	d1.Emit(Span{Kind: KindSlice, Tag: 5, Start: 3, End: 6, V1: 3})
	d1.Emit(Span{Kind: KindFinish, Tag: 5, Start: 6, End: 6, N: 1})

	attrs := Attribute(r.Spans())
	if len(attrs) != 1 {
		t.Fatalf("attributed %d requests, want 1", len(attrs))
	}
	a := attrs[0]
	if a.Device != 1 || a.Requeues != 1 {
		t.Fatalf("device/requeues = %d/%d, want 1/1", a.Device, a.Requeues)
	}
	if a.Wall != 6 || a.Queue != 3 || a.Service != 3 || a.LostWork != 2 {
		t.Fatalf("wall/queue/service/lostWork = %v/%v/%v/%v, want 6/3/3/2", a.Wall, a.Queue, a.Service, a.LostWork)
	}
	if err := CheckSums(attrs); err != nil {
		t.Fatal(err)
	}
	if err := Verify(r.Spans()); err != nil {
		t.Fatal(err)
	}
}
