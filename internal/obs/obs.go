// Package obs is the deterministic request-lifecycle span flight
// recorder: an allocation-disciplined observability layer the serving
// engines thread lifecycle spans through when — and only when — a
// Recorder is attached. Every emission site in core and cluster is
// nil-checked, so the disabled path (the default) adds zero allocations
// and zero behavioral difference; with a recorder attached, tracing
// observes scheduling but never perturbs it — the committed goldens
// replay byte-identically either way.
//
// The recorder is a set of tracks: one per device (the device's slice
// timeline, admissions, completions, withdrawals) plus one control-plane
// track (routing decisions, requeue hops, hedge placements, control
// ticks, joins, drains). Tracks are single-writer: a device track is
// written only by the goroutine stepping that device's loop (a shard
// worker in the sharded engine, the driver at event barriers), and the
// control track only by the fleet driver. The merged span stream
// (Recorder.Spans) is a pure function of per-track content, so the
// sequential and sharded fleet engines — which produce identical
// per-track sequences by the engines' bit-identity contract — produce
// bit-identical traces at every shard count.
package obs

import (
	"fmt"
	"math"
	"sort"
)

// Kind discriminates span types. Device-track kinds describe one
// request's lifecycle on the device that held it; control-track kinds
// describe fleet-level decisions.
type Kind uint8

const (
	KindNone Kind = iota

	// Device-track kinds.

	// KindAdmit marks an admission: Start is the request's arrival on
	// this device, End the admission instant; V1 is the KV memory-plane
	// re-prefill penalty charged at admission (nominal seconds, paid
	// into the first slice), V2 the demand estimate in token units.
	KindAdmit
	// KindReject marks an admission-control shed (instant at arrival).
	KindReject
	// KindQueue spans the request's wait: Start is its arrival on this
	// device, End the start of its first slice.
	KindQueue
	// KindSlice is one executed device slice: Start/End is the wall
	// interval; V1 the nominal solver service time of the slice, V2 the
	// nominal re-prefill penalty paid in it (first slice only); N the
	// effective search width; Flag whether the §4.1.2 preemption probe
	// fired during the slice.
	KindSlice
	// KindFinish marks a completion (instant); N is the slice count.
	KindFinish
	// KindCancel marks a mid-flight cancellation (instant); Flag
	// reports whether the request had started executing.
	KindCancel
	// KindWithdraw marks a fail-stop withdrawing the request (instant);
	// Flag reports whether it had started executing.
	KindWithdraw
	// KindFailStop marks the device's own fail-stop (instant, no Tag).
	KindFailStop

	// Control-track kinds.

	// KindRoute is one routing decision (instant at the arrival): V1 is
	// the chosen fleet device index, N the routable device count.
	KindRoute
	// KindRouteCand is one scored routing candidate, emitted before its
	// KindRoute for view-reading routers only (view-oblivious routers
	// never read load, and the sharded engine routes their spans against
	// intentionally stale views): N is the candidate's fleet index, V1
	// its outstanding work, V2 its pending population.
	KindRouteCand
	// KindHedge records a hedged twin placement: V1 the primary device,
	// V2 the twin device (the twin runs under the bit-complement tag).
	KindHedge
	// KindHedgeWin records hedge resolution: the copy whose completion
	// the fleet delivered first won the request. Delivery follows the
	// engines' canonical completion-merge order, which within one event
	// window is device-index order — not necessarily the earliest finish
	// instant — so the attribution pass keys its winner selection on
	// this span. Tag is the winning copy's tag (^orig when the twin
	// won), V1 the winning device.
	KindHedgeWin
	// KindRequeue is one failure-induced migration: V1 the failed device.
	KindRequeue
	// KindShed marks a request shed for lost capacity (no routable
	// device); N is the request's displacement count.
	KindShed
	// KindCancelReq is the fleet delivering a hedge-loser cancellation:
	// V1 the device, Flag whether the copy had started.
	KindCancelReq
	// KindFailDev marks the fleet retiring a failed device: V1 the
	// device, N the number of requests withdrawn onto the requeue heap.
	KindFailDev
	// KindTick is one control tick: N the routable count, V1 the
	// observed utilization, V2 the window mean queue delay.
	KindTick
	// KindJoin marks a warm-pool instance becoming routable: V1 the
	// device.
	KindJoin
	// KindDrain marks a scale-down drain decision: V1 the victim device.
	KindDrain
)

var kindNames = [...]string{
	KindNone: "none", KindAdmit: "admit", KindReject: "reject",
	KindQueue: "queue", KindSlice: "slice", KindFinish: "finish",
	KindCancel: "cancel", KindWithdraw: "withdraw", KindFailStop: "fail-stop",
	KindRoute: "route", KindRouteCand: "route-cand", KindHedge: "hedge",
	KindHedgeWin: "hedge-win",
	KindRequeue:  "requeue", KindShed: "shed", KindCancelReq: "cancel-req",
	KindFailDev: "fail-dev", KindTick: "tick", KindJoin: "join",
	KindDrain: "drain",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// requestScoped reports whether the kind carries a per-request Tag
// (attribution groups only these; fleet-scoped kinds reuse the Tag
// field for nothing and must not join tag groups).
func (k Kind) requestScoped() bool {
	switch k {
	case KindAdmit, KindReject, KindQueue, KindSlice, KindFinish,
		KindCancel, KindWithdraw, KindRoute, KindRouteCand, KindHedge,
		KindHedgeWin, KindRequeue, KindShed, KindCancelReq:
		return true
	}
	return false
}

// ControlTrack is the Track id of the fleet control plane.
const ControlTrack = -1

// Span is one recorded event: an interval (Start < End) or an instant
// (Start == End) on one track. V1, V2, N, and Flag are kind-specific
// payloads (see the Kind constants); Tag is the request's correlation
// tag for request-scoped kinds (a hedged twin runs under the
// bit-complement ^tag of its original).
type Span struct {
	Kind  Kind
	Track int // device fleet index, or ControlTrack
	Tag   int
	Start float64
	End   float64
	V1    float64
	V2    float64
	N     int
	Flag  bool
}

// Track is one single-writer span sequence. The nil Track swallows
// emissions, so every instrumentation site is a nil check plus a value
// append — no allocation, no branch beyond the check, when disabled.
type Track struct {
	id    int
	spans []Span
}

// Emit appends one span, stamping the track id. Safe on a nil Track
// (the disabled path): it returns immediately and allocates nothing.
func (t *Track) Emit(s Span) {
	if t == nil {
		return
	}
	s.Track = t.id
	t.spans = append(t.spans, s)
}

// Len returns the number of spans emitted to this track (0 for nil).
func (t *Track) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Recorder owns the track set of one run. The zero value is ready to
// use; a nil *Recorder is the disabled recorder — Control and Device
// return nil tracks that swallow every emission.
//
// Concurrency contract: Control, Device, Spans, SpanCount, and Reset
// must be called from the driving goroutine only (they may grow the
// track set); the *Track pointers they return are stable and may be
// written by whichever single goroutine owns that track at a time, as
// the fleet engines' barrier protocol guarantees.
type Recorder struct {
	control *Track
	devices []*Track
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Control returns the control-plane track (nil on a nil recorder).
func (r *Recorder) Control() *Track {
	if r == nil {
		return nil
	}
	if r.control == nil {
		r.control = &Track{id: ControlTrack}
	}
	return r.control
}

// Device returns device i's track, growing the track set as needed
// (nil on a nil recorder). Pointers are stable across growth.
func (r *Recorder) Device(i int) *Track {
	if r == nil {
		return nil
	}
	for len(r.devices) <= i {
		r.devices = append(r.devices, &Track{id: len(r.devices)})
	}
	return r.devices[i]
}

// SpanCount returns the total number of recorded spans.
func (r *Recorder) SpanCount() int {
	if r == nil {
		return 0
	}
	n := r.control.Len()
	for _, t := range r.devices {
		n += t.Len()
	}
	return n
}

// Reset drops every recorded span, keeping the track set (a recorder
// is otherwise single-run: attach a fresh or reset recorder per run).
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	if r.control != nil {
		r.control.spans = r.control.spans[:0]
	}
	for _, t := range r.devices {
		t.spans = t.spans[:0]
	}
}

// Spans merges every track into one canonically ordered stream: spans
// sort by Start, then by track (control plane first), preserving each
// track's emission order among equal keys. The result is a pure
// function of per-track content — engines that produce identical
// per-track sequences produce bit-identical merged traces, which is
// exactly the sequential-vs-sharded trace equivalence contract.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	out := make([]Span, 0, r.SpanCount())
	if r.control != nil {
		out = append(out, r.control.spans...)
	}
	for _, t := range r.devices {
		out = append(out, t.spans...)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Track < out[j].Track
	})
	return out
}

// Verify checks the span stream's lifecycle invariants — the flight
// recorder's conservation laws:
//
//   - every span's interval is well-formed (finite, End >= Start);
//   - device slice intervals never overlap (a device executes one
//     slice at a time);
//   - per (device, tag): at most one admission, and an admitted
//     request is closed exactly once — by a finish, a cancellation, or
//     a fail-stop withdrawal — with every slice inside the
//     [admission, close] window;
//   - slices, queue spans, and finishes never appear without an
//     admission (a queued-only request may still be cancelled or
//     withdrawn).
//
// It returns nil when every invariant holds.
func Verify(spans []Span) error {
	type lifeKey struct{ track, tag int }
	type life struct {
		admits, queues, finishes, cancels, withdraws, slices int
		admitEnd, closeAt                                    float64
		closed                                               bool
	}
	lives := make(map[lifeKey]*life)
	lastSliceEnd := make(map[int]float64)
	for i, s := range spans {
		if math.IsNaN(s.Start) || math.IsNaN(s.End) || math.IsInf(s.Start, 0) || math.IsInf(s.End, 0) {
			return fmt.Errorf("obs: span %d (%s, track %d, tag %d): non-finite interval [%v, %v]",
				i, s.Kind, s.Track, s.Tag, s.Start, s.End)
		}
		if s.End < s.Start {
			return fmt.Errorf("obs: span %d (%s, track %d, tag %d): End %v before Start %v",
				i, s.Kind, s.Track, s.Tag, s.End, s.Start)
		}
		if s.Track < 0 {
			continue // control-plane spans carry no device lifecycle
		}
		if s.Kind == KindSlice {
			if prev, ok := lastSliceEnd[s.Track]; ok && s.Start < prev {
				return fmt.Errorf("obs: device %d: slice [%v, %v] overlaps the previous slice ending %v",
					s.Track, s.Start, s.End, prev)
			}
			lastSliceEnd[s.Track] = s.End
		}
		k := lifeKey{s.Track, s.Tag}
		l := lives[k]
		if l == nil {
			l = &life{}
			lives[k] = l
		}
		switch s.Kind {
		case KindAdmit:
			l.admits++
			l.admitEnd = s.End
		case KindQueue:
			l.queues++
		case KindSlice:
			l.slices++
			if l.admits == 0 {
				return fmt.Errorf("obs: device %d, tag %d: slice without admission", s.Track, s.Tag)
			}
			if s.Start < l.admitEnd {
				return fmt.Errorf("obs: device %d, tag %d: slice starts %v before admission at %v",
					s.Track, s.Tag, s.Start, l.admitEnd)
			}
			if l.closed {
				return fmt.Errorf("obs: device %d, tag %d: slice after the request closed at %v",
					s.Track, s.Tag, l.closeAt)
			}
		case KindFinish:
			l.finishes++
			l.closed, l.closeAt = true, s.End
			if l.admits == 0 {
				return fmt.Errorf("obs: device %d, tag %d: finish without admission", s.Track, s.Tag)
			}
		case KindCancel:
			l.cancels++
			l.closed, l.closeAt = true, s.End
		case KindWithdraw:
			l.withdraws++
			l.closed, l.closeAt = true, s.End
		}
	}
	for k, l := range lives {
		if l.admits > 1 {
			return fmt.Errorf("obs: device %d, tag %d: admitted %d times", k.track, k.tag, l.admits)
		}
		if l.queues > 1 {
			return fmt.Errorf("obs: device %d, tag %d: %d queue spans", k.track, k.tag, l.queues)
		}
		if l.queues > 0 && l.admits == 0 {
			return fmt.Errorf("obs: device %d, tag %d: queue span without admission", k.track, k.tag)
		}
		closes := l.finishes + l.cancels + l.withdraws
		if l.admits == 1 && closes != 1 {
			return fmt.Errorf("obs: device %d, tag %d: admitted once but closed %d times (%d finish, %d cancel, %d withdraw)",
				k.track, k.tag, closes, l.finishes, l.cancels, l.withdraws)
		}
		if l.admits == 0 && closes > 1 {
			return fmt.Errorf("obs: device %d, tag %d: never admitted but closed %d times", k.track, k.tag, closes)
		}
	}
	return nil
}
