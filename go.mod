module fasttts

go 1.24
