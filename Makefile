# Mirrors the CI gates (.github/workflows/ci.yml) so contributors run
# the same checks locally before pushing.

GO ?= go

.PHONY: all build test lint bench cover scenarios bench-regress bench-perf bench-cache bench-metrics bench-strategy bench-trace golden

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 20

# Scenario-conformance: replay every named scenario on both targets and
# require bit-identical agreement with the committed golden traces. The
# TestGoldenScenarioTraces prefix also matches ...TracesSharded, which
# replays every cluster golden through the sharded engine (Parallelism 8
# and -1) against the same bytes.
scenarios:
	$(GO) test -count=1 -run 'TestGoldenScenarioTraces|TestGoldenTracesDecodable|TestScenarioRunDeterministic' -v .

# Regression sweep: run the full scenario matrix through fastttsbench,
# check it against the goldens, and emit BENCH_scenarios.json (the CI
# gate artifact). Fails on any mismatch or missing golden.
bench-regress:
	$(GO) run ./cmd/fastttsbench -scenarios -golden testdata/golden -out .

# Fleet-core perf smoke: a reduced fastttsbench -perf sweep emitting
# bench-smoke/BENCH_core.json (the CI bench-perf artifact; the directory
# is gitignored so the smoke run never clobbers the committed artifact),
# followed by the controller-overhead cells (fleet step cost with the
# elastic control plane on vs off) merged into the same file.
# The committed BENCH_core.json is the full {1..1024} x {1k..100k} sweep
# with the pre-refactor baseline merged via -perf-baseline, plus
# controller-overhead cells at 256/1024 devices from
#   fastttsbench -perf -perf-controller -perf-devices 256,1024 \
#       -perf-requests 10000 -perf-routers rr,least-work \
#       -perf-merge BENCH_core.json -out .
# plus the sharded-engine scaling cells (wall clock by shard count, with
# the measurement host's cores/gomaxprocs recorded) from
#   fastttsbench -perf -perf-parallel -perf-devices 1024 \
#       -perf-requests 100000 -perf-routers rr,least-work \
#       -perf-shards 1,2,4,8 -perf-merge BENCH_core.json -out .
# Refresh it when a PR claims a fleet-core speedup or touches the
# control plane's hot path or the shard layer.
bench-perf:
	$(GO) run ./cmd/fastttsbench -perf -perf-devices 8,64,256 \
		-perf-requests 1000 -perf-routers rr,least-work,jsq,p2c,prefix \
		-out bench-smoke
	$(GO) run ./cmd/fastttsbench -perf -perf-controller -perf-devices 8,64,256 \
		-perf-requests 1000 -perf-routers rr,least-work \
		-perf-merge bench-smoke/BENCH_core.json -out bench-smoke
	$(GO) run ./cmd/fastttsbench -perf -perf-parallel -perf-devices 256 \
		-perf-requests 1000 -perf-routers rr,least-work \
		-perf-shards 1,4,8 \
		-perf-merge bench-smoke/BENCH_core.json -out bench-smoke

# KV memory-plane cache sweep: serve the cache-thrash few-shot stream
# under every router × capacity regime (constrained / unconstrained /
# uncached) and emit BENCH_cache.json. Exits nonzero unless the plane's
# success metric holds: residency-aware routing (cache-aware, prefix)
# beats load-only jsq on p99 by more when cache-constrained than when
# capacity is plentiful. The run is deterministic, so the emitted cells
# match the committed BENCH_cache.json up to elapsed_ms timings.
bench-cache:
	$(GO) run ./cmd/fastttsbench -cache -out .

# Test-time-compute strategy sweep: serve the first-finish-mix and
# hedged-tail streams under each strategy override on the identical
# trace and emit BENCH_strategy.json. Exits nonzero unless both success
# metrics hold: first-finish strictly beats full-beam on p99 on
# first-finish-mix (accuracy recorded under the same majority-vote
# accounting), and hedged strictly beats full-beam on p99 on
# hedged-tail. The run is deterministic, so the emitted cells match the
# committed BENCH_strategy.json up to elapsed_ms timings.
bench-strategy:
	$(GO) run ./cmd/fastttsbench -strategy -out .

# Streaming-metrics sweep: feed every synthetic metrics stream —
# including the 10M-request mega-steady stream, run with no trace
# retention and its heap growth measured — plus every catalog scenario
# through both the streaming sketch and the exact sort path, and emit
# BENCH_metrics.json. Exits nonzero if any p50/p95/p99/mean relative
# error exceeds the documented bound (metrics.SketchRelErr = 1%) or the
# mega-steady pass retains more than a constant amount of heap.
bench-metrics:
	$(GO) run ./cmd/fastttsbench -metrics -out .

# Flight-recorder trace sweep: run every catalog scenario with the span
# recorder attached — span lifecycles must verify and every request's
# attribution components must sum to its measured wall latency within
# 1 ulp — then time recorder-off vs recorder-on on long streams
# (best-of-5, overhead gate <= 10%). Exits nonzero when either gate
# fails. Emits BENCH_trace.json plus trace.json, a representative
# Perfetto export of the fleet-churn scenario (load it at
# ui.perfetto.dev). The attribution cells are deterministic and match
# the committed BENCH_trace.json up to elapsed_ms and overhead timings.
bench-trace:
	$(GO) run ./cmd/fastttsbench -trace -out .

# Regenerate the golden traces after an *intentional* behavior change.
# Review the resulting diff like code before committing it.
golden:
	$(GO) test -count=1 -run TestGoldenScenarioTraces . -update
	@git --no-pager diff --stat -- testdata/golden 2>/dev/null || true
