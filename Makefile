# Mirrors the CI gates (.github/workflows/ci.yml) so contributors run
# the same checks locally before pushing.

GO ?= go

.PHONY: all build test lint bench cover scenarios bench-regress golden

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 20

# Scenario-conformance: replay every named scenario on both targets and
# require bit-identical agreement with the committed golden traces.
scenarios:
	$(GO) test -count=1 -run 'TestGoldenScenarioTraces|TestGoldenTracesDecodable|TestScenarioRunDeterministic' -v .

# Regression sweep: run the full scenario matrix through fastttsbench,
# check it against the goldens, and emit BENCH_scenarios.json (the CI
# gate artifact). Fails on any mismatch or missing golden.
bench-regress:
	$(GO) run ./cmd/fastttsbench -scenarios -golden testdata/golden -out .

# Regenerate the golden traces after an *intentional* behavior change.
# Review the resulting diff like code before committing it.
golden:
	$(GO) test -count=1 -run TestGoldenScenarioTraces . -update
	@git --no-pager diff --stat -- testdata/golden 2>/dev/null || true
