# Mirrors the CI gates (.github/workflows/ci.yml) so contributors run
# the same checks locally before pushing.

GO ?= go

.PHONY: all build test lint bench cover

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test -race ./...

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -n 20
