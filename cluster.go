package fasttts

import (
	"fmt"

	"fasttts/internal/cluster"
	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/sched"
)

// DeviceSpec describes one member of a heterogeneous edge fleet: a full
// deployment Config (GPU, model pair, search algorithm, seed) plus the
// device's serving policy and fault-injection knobs.
type DeviceSpec struct {
	Config
	// Policy names the device's admission/ordering discipline ("fcfs",
	// "sjf", "priority", "deadline"); empty means fcfs.
	Policy string
	// MaxInFlight, when positive, sheds arrivals beyond this many
	// admitted unfinished requests on this device.
	MaxInFlight int
	// Slowdown is the straggler factor: wall-clock stretch of every
	// device slice (thermal throttling, background load). Values below 1
	// mean none.
	Slowdown float64
	// FailAt, when positive, fail-stops the device at that fleet time:
	// it finishes its in-progress slice, then all its unfinished requests
	// are requeued to the surviving devices (partial work lost).
	FailAt float64
}

// ClusterConfig configures a fleet of heterogeneous edge devices serving
// one request stream behind a router.
type ClusterConfig struct {
	Devices []DeviceSpec
	// Router names the request-routing discipline:
	//
	//	single      pass-through to the first alive device
	//	rr          round-robin (default)
	//	least-work  smallest estimated outstanding work / device speed
	//	jsq         join the shortest queue
	//	p2c         power-of-two-choices on expected drain time
	//	prefix      prefix-affinity with load fallback (§4.2, inter-device)
	Router string
	// Seed drives the router's randomness (p2c); device engines draw from
	// their own Config seeds. Equal seeds give bit-identical fleet runs.
	Seed uint64
	// SLOLatency is the per-request wall-latency target in seconds used
	// by FleetRun.Stats; 0 disables SLO accounting.
	SLOLatency float64
}

// FleetResult is one fleet-served request: the usual ServedResult plus
// which device produced it and how often failures migrated it.
type FleetResult struct {
	ServedResult
	// Device is the fleet index of the serving (or rejecting) device; -1
	// for requests shed because no device survived to serve them.
	Device int
	// Requeues counts how many device failures displaced this request
	// before this outcome.
	Requeues int
}

// FleetDeviceStats aggregates one device's run.
type FleetDeviceStats struct {
	Device int
	Served int
	Tokens int64
	// BusyTime is wall-clock seconds spent executing slices (lost work
	// included); Utilization is BusyTime over the device's fleet
	// lifetime; Goodput is useful tokens per lifetime second.
	BusyTime    float64
	Utilization float64
	Goodput     float64
	Failed      bool
}

// FleetStats aggregates a fleet-served request stream: the server-level
// aggregates over the merged stream plus fleet-only metrics.
type FleetStats struct {
	ServeStats
	PerDevice []FleetDeviceStats
	// ImbalanceCV is the load-imbalance coefficient: the coefficient of
	// variation of per-device busy time (0 = perfectly balanced).
	ImbalanceCV float64
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHitRate is the fleet prompt-prefix KV hit rate in tokens (0
	// when no prefix traffic).
	PrefixHitRate float64
	FailedDevices int
}

// Cluster serves request streams with a fleet of heterogeneous edge
// devices. Each device runs its own multi-tenant serving engine (its own
// GPU, model pair, policy, and virtual clock); a pluggable router assigns
// every request to a device at its arrival instant; device fail-stops
// requeue unfinished work to the survivors. A 1-device cluster with the
// "single" router reproduces Server's results exactly. Clusters are
// reusable: every Run builds a fresh fleet, so equal seeds give
// bit-identical runs.
//
// The underlying fleet core dispatches arrivals and failures from event
// heaps and reads per-device load from O(1) incremental indexes, so
// Run scales to fleets of hundreds to thousands of devices — scheduling
// overhead grows with events·log(devices), not events·devices.
type Cluster struct {
	devices []cluster.Device
	router  string
	seed    uint64
	slo     float64
}

// FleetRun is the outcome of one Cluster.Run.
type FleetRun struct {
	// Results holds per-request outcomes in fleet event order (each
	// device's completions in completion order, interleaved at global
	// event granularity).
	Results []FleetResult
	stats   FleetStats
}

// Stats returns the fleet-level aggregates of the run, computed with the
// cluster's SLOLatency.
func (fr *FleetRun) Stats() FleetStats { return fr.stats }

// NewCluster validates the configuration and builds the cluster.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if len(cc.Devices) == 0 {
		return nil, fmt.Errorf("fasttts: cluster needs at least one device")
	}
	if _, err := cluster.RouterByName(cc.Router); err != nil {
		return nil, err
	}
	devices := make([]cluster.Device, len(cc.Devices))
	for i, spec := range cc.Devices {
		coreCfg, err := buildCoreConfig(spec.Config)
		if err != nil {
			return nil, fmt.Errorf("fasttts: device %d: %w", i, err)
		}
		pol, err := sched.PolicyByName(spec.Policy)
		if err != nil {
			return nil, fmt.Errorf("fasttts: device %d: %w", i, err)
		}
		if spec.MaxInFlight > 0 {
			pol = sched.AdmissionLimit{Inner: pol, MaxInFlight: spec.MaxInFlight}
		}
		devices[i] = cluster.Device{
			Config:   coreCfg,
			Policy:   pol,
			Slowdown: spec.Slowdown,
			FailAt:   spec.FailAt,
		}
	}
	c := &Cluster{devices: devices, router: cc.Router, seed: cc.Seed, slo: cc.SLOLatency}
	// Fail fast on anything fleet construction itself would reject.
	if _, err := c.newFleet(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cluster) newFleet() (*cluster.Fleet, error) {
	router, err := cluster.RouterByName(c.router)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{Devices: c.devices, Router: router, Seed: c.seed})
}

// Run serves an open-loop request stream across the fleet.
func (c *Cluster) Run(reqs []Request) (*FleetRun, error) {
	fleet, err := c.newFleet()
	if err != nil {
		return nil, err
	}
	inner := make([]core.Request, len(reqs))
	for i, r := range reqs {
		inner[i] = core.Request{
			Problem:  r.Problem.inner,
			Arrival:  r.ArrivalTime,
			Priority: r.Priority,
			Deadline: r.Deadline,
			Tag:      i,
		}
	}
	out, err := fleet.Run(inner)
	if err != nil {
		return nil, err
	}
	fr := &FleetRun{Results: make([]FleetResult, len(out.Results))}
	for i, r := range out.Results {
		var res *Result
		if r.Result != nil {
			res = wrapResult(r.Result)
		}
		fr.Results[i] = FleetResult{
			ServedResult: ServedResult{
				Result:       res,
				ArrivalTime:  r.Arrival,
				StartTime:    r.Start,
				FinishTime:   r.Finish,
				QueueDelay:   r.QueueDelay,
				WallLatency:  r.WallLatency,
				Slices:       r.Slices,
				UsefulTokens: r.UsefulTokens,
				Rejected:     r.Rejected,
				Tag:          r.Tag,
			},
			Device:   r.Device,
			Requeues: r.Requeues,
		}
	}
	fr.stats = wrapFleetStats(out.Stats(c.slo))
	return fr, nil
}

func wrapFleetStats(m metrics.FleetStats) FleetStats {
	st := FleetStats{
		ServeStats:    wrapServeStats(m.ServeStats),
		ImbalanceCV:   m.ImbalanceCV,
		Requeues:      m.Requeues,
		PrefixHitRate: m.PrefixHitRate,
		FailedDevices: m.FailedDevices,
	}
	for i, d := range m.Devices {
		st.PerDevice = append(st.PerDevice, FleetDeviceStats{
			Device:      i,
			Served:      d.Served,
			Tokens:      d.Tokens,
			BusyTime:    d.Busy,
			Utilization: d.Utilization,
			Goodput:     d.Goodput,
			Failed:      d.Failed,
		})
	}
	return st
}
