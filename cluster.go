package fasttts

import (
	"fmt"
	"math"

	"fasttts/internal/cluster"
	"fasttts/internal/control"
	"fasttts/internal/core"
	"fasttts/internal/metrics"
	"fasttts/internal/sched"
	"fasttts/internal/search"
)

// DeviceSpec describes one member (or a homogeneous group of members) of
// a heterogeneous edge fleet: a full deployment Config (GPU, model pair,
// search algorithm, seed) plus the device's serving policy and
// fault-injection knobs.
type DeviceSpec struct {
	Config
	// Name labels the device in telemetry and errors. Optional; non-empty
	// names must be unique across the fleet (and the warm pool). Unnamed
	// devices get "device-N" by fleet index; a Count > 1 group expands to
	// "name#0", "name#1", ...
	Name string
	// Count replicates this spec into that many identical fleet members
	// (each gets its own engine seeded from Config.Seed + replica). The
	// zero value means 1; negative counts are rejected.
	Count int
	// Policy names the device's admission/ordering discipline ("fcfs",
	// "sjf", "priority", "deadline"); empty means fcfs.
	Policy string
	// MaxInFlight, when positive, sheds arrivals beyond this many
	// admitted unfinished requests on this device.
	MaxInFlight int
	// Slowdown is the straggler factor: wall-clock stretch of every
	// device slice (thermal throttling, background load). 0 (the zero
	// value) and 1 mean none; negative or NaN values are rejected.
	Slowdown float64
	// FailAt, when positive, fail-stops the device at that fleet time:
	// it finishes its in-progress slice, then all its unfinished requests
	// are requeued to the surviving devices (partial work lost).
	FailAt float64
}

// AutoscaleConfig attaches the elastic control plane to a cluster: a
// feedback controller observes the fleet at a fixed interval and
// actuates warm-pool joins, drain-and-remove scale-downs, and
// compute-budget tiers. See the package docs' "Elastic serving" section.
type AutoscaleConfig struct {
	// Policy names the controller: "static" (observe only), "threshold"
	// (hysteresis scaling on queue delay and utilization), "pid"
	// (PID-style queue-delay tracking), or "budget" (vertical-only
	// compute-budget governor). Empty means static.
	Policy string
	// Interval is the control period in fleet seconds; required > 0.
	Interval float64
	// WarmPool holds device templates scale-ups instantiate (round-robin;
	// a drained instance returns its slot). Templates must not carry
	// FailAt. Count expands templates exactly like fleet devices.
	WarmPool []DeviceSpec
	// WarmupDelay is how long after a scale-up decision the new device
	// becomes routable (model load and cache prefill); 0 joins instantly.
	WarmupDelay float64
	// MinDevices floors the routable device count drains may reach
	// (default 1); MaxDevices caps routable+warming devices (default
	// fleet size + warm-pool size).
	MinDevices, MaxDevices int
	// MaxTier is the deepest compute-budget degradation tier (each tier
	// halves the effective search width); 0 selects the default of 2.
	MaxTier int
}

// ClusterConfig configures a fleet of heterogeneous edge devices serving
// one request stream behind a router.
type ClusterConfig struct {
	Devices []DeviceSpec
	// Router names the request-routing discipline:
	//
	//	single      pass-through to the first alive device
	//	rr          round-robin (default)
	//	least-work  smallest estimated outstanding work / device speed
	//	jsq         join the shortest queue
	//	p2c         power-of-two-choices on expected drain time
	//	prefix      prefix-affinity with load fallback (§4.2, inter-device)
	//	cache-aware drain time plus re-prefill debt of non-resident prompt
	//	            tokens (needs Config.KVPlane; degenerates to least-work
	//	            without it)
	Router string
	// Seed drives the router's randomness (p2c) and the controller's;
	// device engines draw from their own Config seeds. Equal seeds give
	// bit-identical fleet runs, controller actions included.
	Seed uint64
	// SLOLatency is the per-request wall-latency target in seconds used
	// by FleetRun.Stats and the controller's SLO-attainment signal; 0
	// disables SLO accounting. The "deadline" strategy also derives each
	// request's deadline from this target.
	SLOLatency float64
	// Strategy names the fleet-wide test-time-compute strategy:
	// "full-beam", "first-finish" (optionally "first-finish:k"),
	// "deadline" (early-terminate requests whose SLOLatency-derived
	// deadline passes mid-solve), or "hedged" (replicate every fresh
	// arrival to a second device and cancel the losing copy the instant
	// the first completes; needs at least 2 devices). Empty disables
	// strategies — runs are then bit-identical to pre-strategy builds.
	// The budget governor degrades the strategy to first-finish while its
	// tier is above 0, alongside the width degradation.
	Strategy string
	// Autoscale, when non-nil, attaches the elastic control plane.
	Autoscale *AutoscaleConfig
	// Parallelism selects the fleet execution engine: 0 or 1 runs the
	// sequential event loop (the default), >= 2 runs the deterministic
	// sharded engine with that many device shards (worker goroutines),
	// and any negative value uses one shard per available core
	// (runtime.GOMAXPROCS). Every setting produces bit-identical results
	// — Parallelism trades wall-clock time only. See
	// docs/ARCHITECTURE.md for the sharding protocol.
	Parallelism int
	// Metrics selects Stats's aggregation mode: MetricsExact (default)
	// retains every sample for exact percentiles; MetricsStreaming folds
	// completions into mergeable quantile sketches as they finish —
	// constant aggregation state, <1% relative error, and bit-identical
	// for every Parallelism setting. SLO attainment in streaming mode is
	// judged against SLOLatency at completion time. See the package
	// docs' "Streaming metrics".
	Metrics MetricsMode
	// Trace, when non-nil, attaches the span flight recorder: every Run
	// records request lifecycles on each device plus the fleet control
	// plane (routing decisions, hedge twins, requeues, ticks, joins,
	// drains) without perturbing the run, and FleetStats gains the
	// latency-attribution rollup. Traces are bit-identical at every
	// Parallelism setting. The recorder accumulates across Runs; call
	// Recorder.Reset between them for per-run traces. See Recorder.
	Trace *Recorder
}

// FleetResult is one fleet-served request: the usual ServedResult plus
// which device produced it and how often failures migrated it.
type FleetResult struct {
	ServedResult
	// Device is the fleet index of the serving (or rejecting) device; -1
	// for requests shed because no device survived to serve them.
	Device int
	// Requeues counts how many device failures displaced this request
	// before this outcome.
	Requeues int
}

// ScalingAction is one applied controller decision in a fleet run's
// action log.
type ScalingAction struct {
	// Time is the control tick the action was decided at.
	Time float64
	// Action is "scale-up", "scale-down", or "set-tier".
	Action string
	// Requested is the controller's asked-for magnitude; Applied is what
	// the fleet actuated after clamping (the resulting tier for
	// "set-tier").
	Requested, Applied int
	// Devices lists the fleet indexes the action touched.
	Devices []int
}

// ControlStats summarizes the elastic control plane's activity over a
// fleet run.
type ControlStats struct {
	// Ticks counts control intervals observed.
	Ticks int
	// ScaleUps / ScaleDowns count devices added from the warm pool /
	// drained out; TierChanges counts applied budget-tier moves.
	ScaleUps, ScaleDowns, TierChanges int
	// FinalTier is the budget tier in effect when the run ended;
	// PeakDevices the maximum concurrently routable device count;
	// DegradedRequests how many requests were served with a narrowed
	// search width.
	FinalTier, PeakDevices, DegradedRequests int
}

// FleetDeviceStats aggregates one device's run.
type FleetDeviceStats struct {
	Device int
	// Name is the device's label (DeviceSpec.Name, "device-N", or
	// "warm:name+J" for the controller's J-th warm-pool instance).
	Name   string
	Served int
	Tokens int64
	// BusyTime is wall-clock seconds spent executing slices (lost work
	// included); Utilization is BusyTime over the device's *live*
	// interval (join to fail/drain/makespan); Goodput is useful tokens
	// per live second.
	BusyTime    float64
	Utilization float64
	Goodput     float64
	// LiveStart is when the device became routable (0 for founding
	// members); LiveSeconds is the length of its live interval.
	LiveStart   float64
	LiveSeconds float64
	Failed      bool
	// Drained marks devices the control plane drained out mid-run.
	Drained bool
	// KV memory-plane telemetry (all zero when Config.KVPlane is off):
	// capacity and end-of-run usage in tokens, the occupancy fraction,
	// prompt-prefix hit/miss/evicted token counts, and the total
	// re-prefill latency the device charged for prompt misses.
	CacheCapacityTokens int64
	CacheUsedTokens     int64
	CacheOccupancy      float64
	CacheHitTokens      int64
	CacheMissTokens     int64
	CacheEvictedTokens  int64
	ReprefillSeconds    float64
}

// FleetStats aggregates a fleet-served request stream: the server-level
// aggregates over the merged stream plus fleet-only metrics.
type FleetStats struct {
	ServeStats
	PerDevice []FleetDeviceStats
	// ImbalanceCV is the load-imbalance coefficient: the coefficient of
	// variation of per-device busy time (0 = perfectly balanced),
	// time-weighted over each device's live interval so late joiners and
	// drained devices don't read as imbalance.
	ImbalanceCV float64
	// Requeues counts failure-induced request migrations.
	Requeues int
	// PrefixHitRate is the fleet prompt-prefix KV hit rate in tokens (0
	// when no prefix traffic).
	PrefixHitRate float64
	// CacheHitRate is the fleet KV memory-plane hit rate in tokens:
	// unlike PrefixHitRate (the routing directory's estimate), it
	// reflects actual residency after capacity eviction. Zero when
	// Config.KVPlane is off fleet-wide.
	CacheHitRate float64
	// CacheHitTokens / CacheMissTokens / CacheEvictedTokens sum the
	// per-device memory-plane counters; ReprefillSeconds is the fleet's
	// total re-prefill latency charged for prompt misses.
	CacheHitTokens     int64
	CacheMissTokens    int64
	CacheEvictedTokens int64
	ReprefillSeconds   float64
	FailedDevices      int
	// DeviceSeconds is the fleet's capacity cost: the summed live time of
	// every member. The SLO-vs-cost tradeoff compares it against
	// SLOAttainment across controllers.
	DeviceSeconds float64
	// Control summarizes the controller's activity; nil without one.
	Control *ControlStats
	// Attribution is the latency-attribution rollup over finished
	// requests; non-nil only when ClusterConfig.Trace attached a
	// recorder to the run.
	Attribution *AttributionStats
}

// Cluster serves request streams with a fleet of heterogeneous edge
// devices. Each device runs its own multi-tenant serving engine (its own
// GPU, model pair, policy, and virtual clock); a pluggable router assigns
// every request to a device at its arrival instant; device fail-stops
// requeue unfinished work to the survivors. With Autoscale configured,
// an elastic control plane additionally grows the fleet from a warm
// pool, drains it back down, and governs the per-request compute budget
// from observed load. A 1-device cluster with the "single" router
// reproduces Server's results exactly. Clusters are reusable: every Run
// builds a fresh fleet, so equal seeds give bit-identical runs.
//
// The underlying fleet core dispatches arrivals, failures, joins, and
// control ticks from event heaps and reads per-device load from O(1)
// incremental indexes, so Run scales to fleets of hundreds to thousands
// of devices — scheduling overhead grows with events·log(devices), not
// events·devices.
type Cluster struct {
	devices  []cluster.Device
	names    []string
	warm     []cluster.Device
	warmN    []string
	auto     *AutoscaleConfig
	router   string
	seed     uint64
	slo      float64
	shards   int
	mode     metrics.Mode
	strategy search.Strategy
	trace    *Recorder
}

// FleetRun is the outcome of one Cluster.Run.
type FleetRun struct {
	// Results holds per-request outcomes in fleet event order (each
	// device's completions in completion order, interleaved at global
	// event granularity).
	Results []FleetResult
	// Actions is the controller's applied-action log in decision order;
	// nil without Autoscale. Equal seeds give bit-identical logs.
	Actions []ScalingAction
	stats   FleetStats
}

// Stats returns the fleet-level aggregates of the run, computed with the
// cluster's SLOLatency.
func (fr *FleetRun) Stats() FleetStats { return fr.stats }

// expandDeviceSpecs validates a spec list and expands Count groups into
// concrete per-device configs and names. seen tracks explicit names
// across lists (fleet + warm pool).
func expandDeviceSpecs(specs []DeviceSpec, kind, defPrefix string, seen map[string]bool) ([]cluster.Device, []string, error) {
	var devices []cluster.Device
	var names []string
	for i, spec := range specs {
		if spec.Count < 0 {
			return nil, nil, fmt.Errorf("fasttts: %s %d (%s): Count must be positive, got %d (0 selects 1)",
				kind, i, describeSpec(spec, i), spec.Count)
		}
		if spec.Slowdown < 0 || math.IsNaN(spec.Slowdown) {
			return nil, nil, fmt.Errorf("fasttts: %s %d (%s): Slowdown must be non-negative, got %v (0 means none)",
				kind, i, describeSpec(spec, i), spec.Slowdown)
		}
		if spec.KVPlaneBytes < 0 {
			return nil, nil, fmt.Errorf("fasttts: %s %d (%s): KVPlaneBytes must be non-negative, got %d (0 disables the memory plane)",
				kind, i, describeSpec(spec, i), spec.KVPlaneBytes)
		}
		if math.IsNaN(spec.FailAt) {
			return nil, nil, fmt.Errorf("fasttts: %s %d (%s): FailAt is NaN", kind, i, describeSpec(spec, i))
		}
		if spec.Name != "" {
			if seen[spec.Name] {
				return nil, nil, fmt.Errorf("fasttts: duplicate device name %q: names identify devices in telemetry and must be unique",
					spec.Name)
			}
			seen[spec.Name] = true
		}
		count := spec.Count
		if count == 0 {
			count = 1
		}
		for rep := 0; rep < count; rep++ {
			cfg := spec.Config
			cfg.Seed = spec.Config.Seed + uint64(rep)
			coreCfg, err := buildCoreConfig(cfg)
			if err != nil {
				return nil, nil, fmt.Errorf("fasttts: %s %d (%s): %w", kind, i, describeSpec(spec, i), err)
			}
			pol, err := sched.PolicyByName(spec.Policy)
			if err != nil {
				return nil, nil, fmt.Errorf("fasttts: %s %d (%s): %w", kind, i, describeSpec(spec, i), err)
			}
			if spec.MaxInFlight > 0 {
				pol = sched.AdmissionLimit{Inner: pol, MaxInFlight: spec.MaxInFlight}
			}
			devices = append(devices, cluster.Device{
				Config:   coreCfg,
				Policy:   pol,
				Slowdown: spec.Slowdown,
				FailAt:   spec.FailAt,
			})
			name := spec.Name
			switch {
			case name == "":
				name = fmt.Sprintf("%s-%d", defPrefix, len(names))
			case count > 1:
				name = fmt.Sprintf("%s#%d", spec.Name, rep)
			}
			// Derived names (positional and replica-suffixed) share the
			// namespace with explicit ones: an explicit "device-1" next to
			// an unnamed second device, or "a#0" next to a Count group
			// named "a", would reproduce exactly the ambiguous telemetry
			// the uniqueness rule exists to prevent.
			if name != spec.Name && seen[name] {
				return nil, nil, fmt.Errorf("fasttts: device name %q collides with the derived name of %s %d (%s): names identify devices in telemetry and must be unique",
					name, kind, i, describeSpec(spec, i))
			}
			seen[name] = true
			names = append(names, name)
		}
	}
	return devices, names, nil
}

// describeSpec names a spec in errors without relying on validation
// having succeeded.
func describeSpec(spec DeviceSpec, i int) string {
	if spec.Name != "" {
		return spec.Name
	}
	if spec.GPU != "" {
		return spec.GPU
	}
	return fmt.Sprintf("spec %d", i)
}

// NewCluster validates the configuration and builds the cluster.
func NewCluster(cc ClusterConfig) (*Cluster, error) {
	if len(cc.Devices) == 0 {
		return nil, fmt.Errorf("fasttts: cluster needs at least one device")
	}
	if _, err := cluster.RouterByName(cc.Router); err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	devices, names, err := expandDeviceSpecs(cc.Devices, "device", "device", seen)
	if err != nil {
		return nil, err
	}
	mode, err := metrics.ParseMode(string(cc.Metrics))
	if err != nil {
		return nil, fmt.Errorf("fasttts: %w", err)
	}
	strat, err := search.ParseStrategy(cc.Strategy)
	if err != nil {
		return nil, fmt.Errorf("fasttts: %w", err)
	}
	c := &Cluster{devices: devices, names: names, router: cc.Router, seed: cc.Seed, slo: cc.SLOLatency, shards: cc.Parallelism, mode: mode, strategy: strat, trace: cc.Trace}
	if cc.Autoscale != nil {
		auto := *cc.Autoscale
		if _, err := control.ByName(auto.Policy); err != nil {
			return nil, err
		}
		c.warm, c.warmN, err = expandDeviceSpecs(auto.WarmPool, "warm-pool template", "tmpl", seen)
		if err != nil {
			return nil, err
		}
		if auto.MaxTier == 0 {
			auto.MaxTier = 2
		}
		c.auto = &auto
	}
	// Fail fast on anything fleet construction itself would reject.
	if _, err := c.newFleet(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Cluster) newFleet() (*cluster.Fleet, error) {
	router, err := cluster.RouterByName(c.router)
	if err != nil {
		return nil, err
	}
	cfg := cluster.Config{
		Devices: c.devices, Router: router, Seed: c.seed, Shards: c.shards,
		Metrics: c.mode, SLOLatency: c.slo, Strategy: c.strategy,
		Obs: c.trace.rec(),
	}
	if c.auto != nil {
		ctl, err := control.ByName(c.auto.Policy)
		if err != nil {
			return nil, err
		}
		cfg.Control = &cluster.ControlConfig{
			Controller:  ctl,
			Interval:    c.auto.Interval,
			Warm:        c.warm,
			WarmupDelay: c.auto.WarmupDelay,
			MinDevices:  c.auto.MinDevices,
			MaxDevices:  c.auto.MaxDevices,
			MaxTier:     c.auto.MaxTier,
			SLOLatency:  c.slo,
		}
	}
	return cluster.New(cfg)
}

// Run serves an open-loop request stream across the fleet.
func (c *Cluster) Run(reqs []Request) (*FleetRun, error) {
	fleet, err := c.newFleet()
	if err != nil {
		return nil, err
	}
	inner := make([]core.Request, len(reqs))
	for i, r := range reqs {
		inner[i] = core.Request{
			Problem:  r.Problem.inner,
			Arrival:  r.ArrivalTime,
			Priority: r.Priority,
			Deadline: r.Deadline,
			Tag:      i,
		}
	}
	out, err := fleet.Run(inner)
	if err != nil {
		return nil, err
	}
	fr := &FleetRun{Results: make([]FleetResult, len(out.Results))}
	for i, r := range out.Results {
		var res *Result
		if r.Result != nil {
			res = wrapResult(r.Result)
		}
		fr.Results[i] = FleetResult{
			ServedResult: ServedResult{
				Result:       res,
				ArrivalTime:  r.Arrival,
				StartTime:    r.Start,
				FinishTime:   r.Finish,
				QueueDelay:   r.QueueDelay,
				WallLatency:  r.WallLatency,
				Slices:       r.Slices,
				UsefulTokens: r.UsefulTokens,
				Width:        r.Width,
				Rejected:     r.Rejected,
				Tag:          r.Tag,
			},
			Device:   r.Device,
			Requeues: r.Requeues,
		}
	}
	for _, a := range out.Actions {
		fr.Actions = append(fr.Actions, ScalingAction{
			Time:      a.Time,
			Action:    string(a.Verb),
			Requested: a.N,
			Applied:   a.Applied,
			Devices:   a.Devices,
		})
	}
	fr.stats = c.wrapFleetStats(out.Stats(c.slo))
	return fr, nil
}

// deviceName resolves the display name of fleet index i: founding
// devices carry their expanded spec names; controller-added instances
// are labeled by their warm-pool template and join ordinal.
func (c *Cluster) deviceName(i int) string {
	if i < len(c.names) {
		return c.names[i]
	}
	j := i - len(c.names)
	if len(c.warmN) == 0 {
		return fmt.Sprintf("warm+%d", j)
	}
	return fmt.Sprintf("warm:%s+%d", c.warmN[j%len(c.warmN)], j)
}

func (c *Cluster) wrapFleetStats(m metrics.FleetStats) FleetStats {
	st := FleetStats{
		ServeStats:         wrapServeStats(m.ServeStats),
		ImbalanceCV:        m.ImbalanceCV,
		Requeues:           m.Requeues,
		PrefixHitRate:      m.PrefixHitRate,
		CacheHitRate:       m.CacheHitRate,
		CacheHitTokens:     m.CacheHitTokens,
		CacheMissTokens:    m.CacheMissTokens,
		CacheEvictedTokens: m.CacheEvictedTokens,
		ReprefillSeconds:   m.ReprefillSeconds,
		FailedDevices:      m.FailedDevices,
		DeviceSeconds:      m.DeviceSeconds,
	}
	if m.Attribution != nil {
		attr := wrapAttribution(*m.Attribution)
		st.Attribution = &attr
	}
	if m.Control != nil {
		st.Control = &ControlStats{
			Ticks:            m.Control.Ticks,
			ScaleUps:         m.Control.ScaleUps,
			ScaleDowns:       m.Control.ScaleDowns,
			TierChanges:      m.Control.TierChanges,
			FinalTier:        m.Control.FinalTier,
			PeakDevices:      m.Control.PeakDevices,
			DegradedRequests: m.Control.DegradedRequests,
		}
	}
	for i, d := range m.Devices {
		st.PerDevice = append(st.PerDevice, FleetDeviceStats{
			Device:              i,
			Name:                c.deviceName(i),
			Served:              d.Served,
			Tokens:              d.Tokens,
			BusyTime:            d.Busy,
			Utilization:         d.Utilization,
			Goodput:             d.Goodput,
			LiveStart:           d.LiveStart,
			LiveSeconds:         d.Lifetime,
			Failed:              d.Failed,
			Drained:             d.Drained,
			CacheCapacityTokens: d.CacheCapacityTokens,
			CacheUsedTokens:     d.CacheUsedTokens,
			CacheOccupancy:      d.CacheOccupancy,
			CacheHitTokens:      d.CacheHitTokens,
			CacheMissTokens:     d.CacheMissTokens,
			CacheEvictedTokens:  d.CacheEvictedTokens,
			ReprefillSeconds:    d.ReprefillSeconds,
		})
	}
	return st
}
