package fasttts_test

// Table tests for the public zero-value contract: Server.Stats and
// FleetRun.Stats on empty or all-rejected served streams return
// zero-valued aggregates with every field finite — no NaN/Inf
// percentiles, goodput, or utilization.

import (
	"math"
	"reflect"
	"testing"

	"fasttts"
)

func assertAllFloatsFinite(t *testing.T, label string, v any) {
	t.Helper()
	rv := reflect.ValueOf(v)
	for i := 0; i < rv.NumField(); i++ {
		f := rv.Field(i)
		name := rv.Type().Field(i).Name
		switch f.Kind() {
		case reflect.Float64:
			if x := f.Float(); math.IsNaN(x) || math.IsInf(x, 0) {
				t.Errorf("%s.%s = %v, want finite", label, name, x)
			}
		case reflect.Struct:
			assertAllFloatsFinite(t, label+"."+name, f.Interface())
		case reflect.Slice:
			for j := 0; j < f.Len(); j++ {
				if f.Index(j).Kind() == reflect.Struct {
					assertAllFloatsFinite(t, label+"."+name, f.Index(j).Interface())
				}
			}
		}
	}
}

func TestServerStatsDegenerateStreams(t *testing.T) {
	srv, err := fasttts.NewServerWith(fasttts.ServeConfig{
		Config:     fasttts.Config{NumBeams: 8, Seed: 1},
		SLOLatency: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	rej := func(at float64) fasttts.ServedResult {
		return fasttts.ServedResult{ArrivalTime: at, StartTime: at, FinishTime: at, Rejected: true}
	}
	cases := []struct {
		name     string
		served   []fasttts.ServedResult
		rejected int
		wantSLO  float64
	}{
		{name: "nil stream", wantSLO: 1},
		{name: "empty stream", served: []fasttts.ServedResult{}, wantSLO: 1},
		{name: "all rejected", served: []fasttts.ServedResult{rej(1), rej(2)}, rejected: 2, wantSLO: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			st := srv.Stats(tc.served)
			want := fasttts.ServeStats{Rejected: tc.rejected, SLOAttainment: tc.wantSLO}
			if st != want {
				t.Errorf("got %+v\nwant %+v", st, want)
			}
			assertAllFloatsFinite(t, "ServeStats", st)
		})
	}
}

func TestFleetStatsDegenerateStreams(t *testing.T) {
	// A cluster whose only devices fail before any request arrives sheds
	// the whole stream (Device -1); an empty stream exercises the
	// no-events path. Both must produce zero-valued, finite aggregates.
	cl, err := fasttts.NewCluster(fasttts.ClusterConfig{
		Devices: []fasttts.DeviceSpec{
			{Config: fasttts.Config{NumBeams: 8, Seed: 1}, FailAt: 0.001},
			{Config: fasttts.Config{GPU: "RTX 3070 Ti", NumBeams: 8, Seed: 2}, FailAt: 0.002},
		},
		SLOLatency: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fasttts.LoadDataset("AMC23", 3)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty stream", func(t *testing.T) {
		run, err := cl.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		st := run.Stats()
		if st.Served != 0 || st.Rejected != 0 {
			t.Errorf("served %d rejected %d, want 0/0", st.Served, st.Rejected)
		}
		if st.SLOAttainment != 1 {
			t.Errorf("SLOAttainment = %v, want 1 (vacuous) on an empty stream", st.SLOAttainment)
		}
		assertAllFloatsFinite(t, "FleetStats", st)
	})

	t.Run("all shed by dead fleet", func(t *testing.T) {
		run, err := cl.Run(fasttts.UniformRequests(ds.Subset(3), 1))
		if err != nil {
			t.Fatal(err)
		}
		st := run.Stats()
		if st.Served != 0 {
			t.Errorf("served %d, want 0 after whole-fleet failure", st.Served)
		}
		if st.Rejected == 0 {
			t.Error("no rejections recorded for a dead fleet")
		}
		if st.SLOAttainment != 0 {
			t.Errorf("SLOAttainment = %v, want 0 when submitted load was all shed", st.SLOAttainment)
		}
		for _, r := range run.Results {
			if !r.Rejected {
				t.Errorf("request %d served by a dead fleet", r.Tag)
			}
		}
		assertAllFloatsFinite(t, "FleetStats", st)
	})
}
