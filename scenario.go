package fasttts

import (
	"fmt"

	"fasttts/internal/scenario"
	"fasttts/internal/trace"
)

// ScenarioTarget selects which serving stack a scenario runs against.
type ScenarioTarget string

const (
	// ScenarioServer serves the stream on a single multi-tenant Server
	// built from the scenario's first device deployment.
	ScenarioServer ScenarioTarget = "server"
	// ScenarioCluster serves the stream across the scenario's full
	// heterogeneous fleet (≥ 3 devices in every built-in scenario).
	ScenarioCluster ScenarioTarget = "cluster"
)

// ScenarioInfo describes one named workload scenario.
type ScenarioInfo struct {
	Name        string
	Description string
}

// Scenarios lists the built-in workload scenario catalog (see
// internal/scenario): steady, diurnal, flash-crowd, heavy-tail,
// tenant-mix, fleet-churn, burst-storm, the controller-driven
// autoscale-diurnal, flash-absorb, and budget-storm, the KV
// memory-plane cache-thrash and shared-prefix-storm, and the
// test-time-compute-strategy first-finish-mix and hedged-tail.
func Scenarios() []ScenarioInfo {
	var out []ScenarioInfo
	for _, s := range scenario.All() {
		out = append(out, ScenarioInfo{Name: s.Name, Description: s.Description})
	}
	return out
}

// ScenarioNames lists the scenario names in display order.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioOptions scales a scenario run. The zero value selects the
// server target and the scenario's default stream length and seed.
type ScenarioOptions struct {
	// Target is the serving stack to run against; empty means server.
	Target ScenarioTarget
	// Requests is the stream length; 0 means the scenario default.
	Requests int
	// Seed drives all randomness (arrivals, problem mixes, device engines,
	// router); 0 means the scenario default (42). Equal options give
	// bit-identical runs and therefore bit-identical traces.
	Seed uint64
	// Parallelism selects the cluster target's execution engine, exactly
	// as ClusterConfig.Parallelism: 0 or 1 sequential, >= 2 that many
	// device shards, negative one shard per core. Traces are bit-identical
	// at every setting — the committed goldens replay unchanged — so this
	// only trades wall-clock time on large scenarios. Ignored by the
	// server target.
	Parallelism int
	// Router, when non-empty, overrides the scenario's fleet routing
	// discipline on the cluster target (the bench sweeps use it to
	// compare routers on one stream). Empty keeps the scenario's own
	// router, so goldens are unaffected.
	Router string
	// Strategy, when non-empty, overrides the scenario's test-time-compute
	// strategy on both targets (the bench uses it to compare strategies on
	// one stream): "full-beam", "first-finish[:k]", "deadline", or
	// "hedged". Empty keeps the scenario's own strategy, so goldens are
	// unaffected.
	Strategy string
	// KVPlaneBytes overrides the per-device KV memory-plane capacity on
	// every scenario device (warm-pool templates included): positive sets
	// that capacity in bytes, negative disables the plane entirely, and 0
	// keeps each device's scenario-defined setting.
	KVPlaneBytes int64
	// Trace, when non-nil, attaches the span flight recorder to the run
	// (either target) for Perfetto export and latency attribution.
	// Tracing never perturbs the run: the TraceJSONL goldens replay
	// byte-identically with or without it.
	Trace *Recorder
}

// ScenarioRun is the outcome of one RunScenario call.
type ScenarioRun struct {
	Name        string
	Description string
	Target      ScenarioTarget
	// Seed is the resolved run seed recorded in the trace.
	Seed uint64
	// Requests is the materialized stream in submission order.
	Requests []Request
	// Served holds per-request results on the server target; Fleet the
	// fleet outcome on the cluster target (exactly one is set).
	Served []ServedResult
	Fleet  *FleetRun
	// Stats is the server-level aggregate of the run (the fleet's merged
	// stream on the cluster target); FleetStats adds the fleet-only
	// aggregates and is non-nil only on the cluster target.
	Stats      ServeStats
	FleetStats *FleetStats
	tr         *trace.RunTrace
}

// TraceJSONL renders the run's canonical record/replay trace: one JSONL
// header, one line of queueing telemetry per request in result order, and
// a trailing aggregate-stats line. The serving stack is deterministic, so
// equal scenarios and options produce bit-identical trace bytes — the
// contract the golden-regression harness (testdata/golden, make golden)
// enforces.
func (r *ScenarioRun) TraceJSONL() ([]byte, error) { return r.tr.EncodeJSONL() }

// RunScenario builds the named workload scenario, serves its
// deterministic request stream on the selected target, and captures the
// full served stream as a replayable trace. See Scenarios for the
// catalog.
func RunScenario(name string, opts ScenarioOptions) (*ScenarioRun, error) {
	sc, err := scenario.ByName(name)
	if err != nil {
		return nil, err
	}
	spec := sc.Build(scenario.Params{Requests: opts.Requests, Seed: opts.Seed})
	if opts.Router != "" {
		spec.Router = opts.Router
	}
	if opts.Strategy != "" {
		spec.Strategy = opts.Strategy
	}
	if opts.KVPlaneBytes != 0 {
		capacity := opts.KVPlaneBytes
		if capacity < 0 {
			capacity = 0
		}
		for i := range spec.Devices {
			spec.Devices[i].KVPlaneBytes = capacity
		}
		if spec.Autoscale != nil {
			for i := range spec.Autoscale.Warm {
				spec.Autoscale.Warm[i].KVPlaneBytes = capacity
			}
		}
	}
	target := opts.Target
	if target == "" {
		target = ScenarioServer
	}
	reqs, err := materializeRequests(spec)
	if err != nil {
		return nil, err
	}
	run := &ScenarioRun{
		Name:        sc.Name,
		Description: sc.Description,
		Target:      target,
		Seed:        spec.Seed,
		Requests:    reqs,
	}
	switch target {
	case ScenarioServer:
		cfg := deviceConfig(spec.Devices[0])
		cfg.Strategy = spec.Strategy
		srv, err := NewServerWith(ServeConfig{
			Config:      cfg,
			Policy:      spec.Serve.Policy,
			MaxInFlight: spec.Serve.MaxInFlight,
			SLOLatency:  spec.SLOLatency,
			Trace:       opts.Trace,
		})
		if err != nil {
			return nil, err
		}
		served, err := srv.Run(reqs)
		if err != nil {
			return nil, err
		}
		run.Served = served
		run.Stats = srv.Stats(served)
		run.tr = serverTrace(spec, served, run.Stats)
	case ScenarioCluster:
		devices := make([]DeviceSpec, len(spec.Devices))
		for i, d := range spec.Devices {
			devices[i] = DeviceSpec{
				Config:      deviceConfig(d),
				Policy:      d.Policy,
				MaxInFlight: d.MaxInFlight,
				Slowdown:    d.Slowdown,
				FailAt:      d.FailAt,
			}
		}
		var auto *AutoscaleConfig
		if a := spec.Autoscale; a != nil {
			warm := make([]DeviceSpec, len(a.Warm))
			for i, d := range a.Warm {
				warm[i] = DeviceSpec{
					Config:      deviceConfig(d),
					Policy:      d.Policy,
					MaxInFlight: d.MaxInFlight,
					Slowdown:    d.Slowdown,
				}
			}
			auto = &AutoscaleConfig{
				Policy:      a.Controller,
				Interval:    a.Interval,
				WarmPool:    warm,
				WarmupDelay: a.WarmupDelay,
				MinDevices:  a.MinDevices,
				MaxDevices:  a.MaxDevices,
				MaxTier:     a.MaxTier,
			}
		}
		cl, err := NewCluster(ClusterConfig{
			Devices:     devices,
			Router:      spec.Router,
			Seed:        spec.Seed,
			SLOLatency:  spec.SLOLatency,
			Strategy:    spec.Strategy,
			Autoscale:   auto,
			Parallelism: opts.Parallelism,
			Trace:       opts.Trace,
		})
		if err != nil {
			return nil, err
		}
		fr, err := cl.Run(reqs)
		if err != nil {
			return nil, err
		}
		st := fr.Stats()
		run.Fleet = fr
		run.Stats = st.ServeStats
		run.FleetStats = &st
		run.tr = clusterTrace(spec, fr, st)
	default:
		return nil, fmt.Errorf("fasttts: unknown scenario target %q (want %q or %q)",
			target, ScenarioServer, ScenarioCluster)
	}
	return run, nil
}

// materializeRequests resolves a scenario spec's problem references
// against seed-pinned datasets.
func materializeRequests(spec scenario.Spec) ([]Request, error) {
	datasets := map[string]*Dataset{}
	out := make([]Request, len(spec.Requests))
	for i, rq := range spec.Requests {
		ds, ok := datasets[rq.Dataset]
		if !ok {
			var err error
			ds, err = LoadDataset(rq.Dataset, spec.Seed)
			if err != nil {
				return nil, fmt.Errorf("fasttts: scenario %s: %w", spec.Name, err)
			}
			datasets[rq.Dataset] = ds
		}
		if rq.Problem < 0 || rq.Problem >= len(ds.Problems) {
			return nil, fmt.Errorf("fasttts: scenario %s: request %d references %s problem %d of %d",
				spec.Name, i, rq.Dataset, rq.Problem, len(ds.Problems))
		}
		out[i] = Request{
			Problem:     ds.Problems[rq.Problem],
			ArrivalTime: rq.Arrival,
			Priority:    rq.Priority,
			Deadline:    rq.Deadline,
		}
	}
	return out, nil
}

// deviceConfig materializes one scenario device deployment.
func deviceConfig(d scenario.Device) Config {
	return Config{
		GPU:          d.GPU,
		Algorithm:    d.Algorithm,
		NumBeams:     d.NumBeams,
		Seed:         d.Seed,
		KVPlaneBytes: d.KVPlaneBytes,
	}
}

func serverTrace(spec scenario.Spec, served []ServedResult, st ServeStats) *trace.RunTrace {
	tr := newRunTrace(spec, ScenarioServer)
	for _, sv := range served {
		tr.Records = append(tr.Records, traceRecord(sv, 0, 0))
	}
	fillServeStats(&tr.Stats, st)
	return tr
}

func clusterTrace(spec scenario.Spec, fr *FleetRun, st FleetStats) *trace.RunTrace {
	tr := newRunTrace(spec, ScenarioCluster)
	for _, r := range fr.Results {
		tr.Records = append(tr.Records, traceRecord(r.ServedResult, r.Device, r.Requeues))
	}
	fillServeStats(&tr.Stats, st.ServeStats)
	tr.Stats.ImbalanceCV = st.ImbalanceCV
	tr.Stats.Requeues = st.Requeues
	tr.Stats.PrefixHitRate = st.PrefixHitRate
	tr.Stats.FailedDevices = st.FailedDevices
	return tr
}

func newRunTrace(spec scenario.Spec, target ScenarioTarget) *trace.RunTrace {
	return &trace.RunTrace{
		Scenario: spec.Name,
		Target:   string(target),
		Seed:     spec.Seed,
		Requests: len(spec.Requests),
	}
}

func traceRecord(sv ServedResult, device, requeues int) trace.Record {
	return trace.Record{
		ID:       sv.Tag,
		Arrival:  sv.ArrivalTime,
		Start:    sv.StartTime,
		Finish:   sv.FinishTime,
		Queue:    sv.QueueDelay,
		Wall:     sv.WallLatency,
		Slices:   sv.Slices,
		Tokens:   sv.UsefulTokens,
		Rejected: sv.Rejected,
		Device:   device,
		Requeues: requeues,
	}
}

func fillServeStats(dst *trace.RunStats, st ServeStats) {
	dst.Served = st.Served
	dst.Rejected = st.Rejected
	dst.Makespan = st.Makespan
	dst.MeanQueueDelay = st.MeanQueueDelay
	dst.MaxQueueDelay = st.MaxQueueDelay
	dst.MeanLatency = st.MeanLatency
	dst.P50Latency = st.P50Latency
	dst.P95Latency = st.P95Latency
	dst.P99Latency = st.P99Latency
	dst.Goodput = st.Goodput
	dst.SLOAttainment = st.SLOAttainment
}
