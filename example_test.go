package fasttts_test

import (
	"fmt"
	"log"

	"fasttts"
)

// The quickstart: build a FastTTS deployment and solve one problem.
func Example() {
	sys, err := fasttts.New(fasttts.Config{
		GPU:       "RTX 4090",
		Pair:      fasttts.Pair1_5B1_5B,
		Algorithm: "Beam Search",
		NumBeams:  16,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := fasttts.LoadDataset("AIME24", 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Solve(ds.Problems[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Goodput > 0, len(res.Paths) > 0, res.Iterations > 0)
	// Output: true true true
}

// Comparing the vLLM-style baseline against FastTTS on the same problem:
// the answers are identical (algorithmic equivalence), only speed changes.
func Example_baselineComparison() {
	ds, _ := fasttts.LoadDataset("AMC23", 7)
	run := func(mode fasttts.Mode) *fasttts.Result {
		sys, err := fasttts.New(fasttts.Config{NumBeams: 16, Mode: mode, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Solve(ds.Problems[0])
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(fasttts.ModeBaseline)
	fast := run(fasttts.ModeFastTTS)
	fmt.Println(fast.Latency < base.Latency)
	fmt.Println(base.Top1Correct() == fast.Top1Correct())
	// Output:
	// true
	// true
}

// Serving a request stream with the two-phase preemptible scheduler.
func ExampleServer() {
	ds, _ := fasttts.LoadDataset("AMC23", 7)
	srv, err := fasttts.NewServer(fasttts.Config{NumBeams: 16, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	out, err := srv.Run([]fasttts.Request{
		{Problem: ds.Problems[0], ArrivalTime: 0},
		{Problem: ds.Problems[1], ArrivalTime: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out), out[1].QueueDelay > 0)
	// Output: 2 true
}
