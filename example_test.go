package fasttts_test

import (
	"fmt"
	"io"
	"log"

	"fasttts"
)

// The quickstart: build a FastTTS deployment and solve one problem.
func Example() {
	sys, err := fasttts.New(fasttts.Config{
		GPU:       "RTX 4090",
		Pair:      fasttts.Pair1_5B1_5B,
		Algorithm: "Beam Search",
		NumBeams:  16,
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	ds, err := fasttts.LoadDataset("AIME24", 7)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Solve(ds.Problems[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Goodput > 0, len(res.Paths) > 0, res.Iterations > 0)
	// Output: true true true
}

// Comparing the vLLM-style baseline against FastTTS on the same problem:
// the answers are identical (algorithmic equivalence), only speed changes.
func Example_baselineComparison() {
	ds, _ := fasttts.LoadDataset("AMC23", 7)
	run := func(mode fasttts.Mode) *fasttts.Result {
		sys, err := fasttts.New(fasttts.Config{NumBeams: 16, Mode: mode, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Solve(ds.Problems[0])
		if err != nil {
			log.Fatal(err)
		}
		return res
	}
	base := run(fasttts.ModeBaseline)
	fast := run(fasttts.ModeFastTTS)
	fmt.Println(fast.Latency < base.Latency)
	fmt.Println(base.Top1Correct() == fast.Top1Correct())
	// Output:
	// true
	// true
}

// The parallel fleet engine: ClusterConfig.Parallelism shards a
// 64-device fleet across worker goroutines. The engines are
// bit-identical — same results, same stats, at any shard count — so
// parallelism is purely a wall-clock knob on large fleets.
func ExampleClusterConfig_parallelism() {
	ds, _ := fasttts.LoadDataset("MATH500", 7)
	reqs := make([]fasttts.Request, 256)
	for i := range reqs {
		reqs[i] = fasttts.Request{Problem: ds.Problems[i%32], ArrivalTime: float64(i) / 8}
	}
	run := func(parallelism int) fasttts.FleetStats {
		cl, err := fasttts.NewCluster(fasttts.ClusterConfig{
			Devices: []fasttts.DeviceSpec{
				{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 4, Seed: 1}, Count: 32},
				{Config: fasttts.Config{GPU: "RTX 4070 Ti", NumBeams: 4, Seed: 2}, Count: 32},
			},
			Router:      "least-work",
			Seed:        9,
			Parallelism: parallelism, // 0: sequential; >= 2: shards; < 0: one per core
		})
		if err != nil {
			log.Fatal(err)
		}
		fr, err := cl.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		return fr.Stats()
	}
	seq, par := run(0), run(8)
	fmt.Println(len(seq.PerDevice), seq.Served == par.Served, seq.P99Latency == par.P99Latency, seq.ImbalanceCV == par.ImbalanceCV)
	// Output: 64 true true true
}

// Serving a request stream with the two-phase preemptible scheduler.
func ExampleServer() {
	ds, _ := fasttts.LoadDataset("AMC23", 7)
	srv, err := fasttts.NewServer(fasttts.Config{NumBeams: 16, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	out, err := srv.Run([]fasttts.Request{
		{Problem: ds.Problems[0], ArrivalTime: 0},
		{Problem: ds.Problems[1], ArrivalTime: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(out), out[1].QueueDelay > 0)
	// Output: 2 true
}

// The span flight recorder: attach a Recorder to a fleet run and get a
// deterministic request-lifecycle trace — Perfetto-exportable, with
// per-request latency attribution. Tracing never perturbs the run, and
// equal seeds give bit-identical traces at every Parallelism setting,
// so the span count below is pinned.
func ExampleRecorder() {
	ds, _ := fasttts.LoadDataset("MATH500", 7)
	reqs := make([]fasttts.Request, 24)
	for i := range reqs {
		reqs[i] = fasttts.Request{Problem: ds.Problems[i%8], ArrivalTime: float64(i) * 2}
	}
	rec := fasttts.NewRecorder()
	cl, err := fasttts.NewCluster(fasttts.ClusterConfig{
		Devices: []fasttts.DeviceSpec{
			{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 4, Seed: 1}},
			{Config: fasttts.Config{GPU: "RTX 4070 Ti", NumBeams: 4, Seed: 2}},
			{Config: fasttts.Config{GPU: "RTX 4070 Ti", NumBeams: 4, Seed: 3}},
			{Config: fasttts.Config{GPU: "RTX 3070 Ti", NumBeams: 4, Seed: 4}},
		},
		Router: "least-work",
		Seed:   9,
		Trace:  rec,
	})
	if err != nil {
		log.Fatal(err)
	}
	run, err := cl.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	attr := rec.AttributionSummary()
	fmt.Println("spans:", rec.SpanCount())
	fmt.Println("verified:", rec.Verify() == nil)
	fmt.Println("attributed:", attr.Requests, "of", len(run.Results))
	fmt.Println("perfetto:", rec.WritePerfetto(io.Discard) == nil)
	// Output:
	// spans: 360
	// verified: true
	// attributed: 24 of 24
	// perfetto: true
}
