// codegen runs FastTTS on the HumanEval code-generation workload (paper
// §6.4, Fig 15 right): reasoning steps are shorter and more uniform than
// competition math, but the verifier-guided search pattern — and the
// FastTTS speedups — transfer.
//
//	go run ./examples/codegen [-problems 12]
package main

import (
	"flag"
	"fmt"
	"log"

	"fasttts"
)

func main() {
	problems := flag.Int("problems", 12, "HumanEval tasks to evaluate")
	flag.Parse()

	ds, err := fasttts.LoadDataset("HumanEval", 7)
	if err != nil {
		log.Fatal(err)
	}
	subset := ds.Subset(*problems)

	fmt.Println("HumanEval code generation on an RTX 4090, beam search, 1.5B+1.5B")
	fmt.Printf("%6s %12s %12s %10s %12s\n", "n", "baseline", "fasttts", "speedup", "pass@8")
	for _, n := range []int{8, 32, 128} {
		base, err := run(fasttts.ModeBaseline, n, subset)
		if err != nil {
			log.Fatal(err)
		}
		fast, err := run(fasttts.ModeFastTTS, n, subset)
		if err != nil {
			log.Fatal(err)
		}
		pass8 := 0
		for _, r := range fast {
			if r.PassAtN(8) {
				pass8++
			}
		}
		bg := fasttts.Summarize(base).MeanGoodput
		fg := fasttts.Summarize(fast).MeanGoodput
		fmt.Printf("%6d %8.2f t/s %8.2f t/s %9.2fx %10.1f%%\n",
			n, bg, fg, fg/bg, 100*float64(pass8)/float64(len(fast)))
	}
	fmt.Println("\nThe paper reports 1.3x-1.8x goodput speedups on HumanEval (Fig 15):")
	fmt.Println("the irregular-step and prefix-sharing structure FastTTS exploits is not")
	fmt.Println("specific to math reasoning.")
}

func run(mode fasttts.Mode, n int, problems []*fasttts.Problem) ([]*fasttts.Result, error) {
	sys, err := fasttts.New(fasttts.Config{
		Pair:      fasttts.Pair1_5B1_5B,
		Algorithm: "Beam Search",
		NumBeams:  n,
		Mode:      mode,
		Seed:      42,
	})
	if err != nil {
		return nil, err
	}
	var out []*fasttts.Result
	for _, p := range problems {
		res, err := sys.Solve(p)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
