// Quickstart: solve one AIME problem with FastTTS and with the vLLM-style
// baseline, and compare goodput, latency, and the answer.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"fasttts"
)

func main() {
	ds, err := fasttts.LoadDataset("AIME24", 7)
	if err != nil {
		log.Fatal(err)
	}
	problem := ds.Problems[0]
	fmt.Printf("Problem: %s #%d (difficulty %.2f)\n\n",
		problem.Dataset, problem.Index, problem.Difficulty)

	for _, mode := range []fasttts.Mode{fasttts.ModeBaseline, fasttts.ModeFastTTS} {
		sys, err := fasttts.New(fasttts.Config{
			GPU:       "RTX 4090",
			Pair:      fasttts.Pair1_5B1_5B,
			Algorithm: "Beam Search",
			NumBeams:  64,
			Mode:      mode,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Solve(problem)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s latency %6.1fs (gen %5.1fs, verify %5.1fs)  "+
			"goodput %6.2f tok/s  paths %d  top-1 correct: %v\n",
			mode, res.Latency, res.GenLatency, res.VerLatency,
			res.Goodput, len(res.Paths), res.Top1Correct())
		if mode == fasttts.ModeFastTTS {
			fmt.Printf("          speculative tokens: %d decoded, %d retained by surviving beams\n",
				res.SpecTokens, res.SpecRetained)
		}
	}
	fmt.Println("\nBoth modes produce identical answers (algorithmic equivalence, paper §4.1);")
	fmt.Println("FastTTS only changes how fast the search runs.")
}
