// scenarios sweeps the named workload-scenario catalog on both serving
// targets and prints each run's headline aggregates — the quickest way
// to see how the stack behaves under diurnal cycles, flash crowds,
// heavy-tailed mixes, tenancy, fleet churn, and burst storms. Every run
// is deterministic; add -trace to dump one scenario's canonical
// replayable JSONL trace instead.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"fasttts"
)

func main() {
	traceName := flag.String("trace", "", "dump this scenario's cluster trace as JSONL and exit")
	flag.Parse()

	if *traceName != "" {
		run, err := fasttts.RunScenario(*traceName, fasttts.ScenarioOptions{Target: fasttts.ScenarioCluster})
		if err != nil {
			log.Fatal(err)
		}
		data, err := run.TraceJSONL()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		return
	}

	fmt.Printf("%-12s %-8s %6s %6s %9s %9s %9s %9s %9s\n",
		"scenario", "target", "served", "shed", "makespan", "p99", "goodput", "slo", "requeues")
	for _, info := range fasttts.Scenarios() {
		for _, target := range []fasttts.ScenarioTarget{fasttts.ScenarioServer, fasttts.ScenarioCluster} {
			run, err := fasttts.RunScenario(info.Name, fasttts.ScenarioOptions{Target: target})
			if err != nil {
				log.Fatal(err)
			}
			requeues := "-"
			if run.FleetStats != nil {
				requeues = fmt.Sprintf("%d", run.FleetStats.Requeues)
			}
			fmt.Printf("%-12s %-8s %6d %6d %8.1fs %8.1fs %9.1f %8.0f%% %9s\n",
				run.Name, target, run.Stats.Served, run.Stats.Rejected,
				run.Stats.Makespan, run.Stats.P99Latency, run.Stats.Goodput,
				100*run.Stats.SLOAttainment, requeues)
		}
	}
}
