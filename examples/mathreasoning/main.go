// mathreasoning compares TTS search algorithms on AIME 2024 — the
// accuracy/latency trade-off of Fig 3 — and shows how test-time compute
// (the number of beams n) buys accuracy on hard math (the motivation of
// paper §1: matching cloud-model accuracy on an edge GPU).
//
//	go run ./examples/mathreasoning [-problems 12] [-n 128]
package main

import (
	"flag"
	"fmt"
	"log"

	"fasttts"
)

func main() {
	problems := flag.Int("problems", 10, "AIME problems to evaluate")
	maxN := flag.Int("n", 128, "largest beam count in the scaling sweep")
	flag.Parse()

	ds, err := fasttts.LoadDataset("AIME24", 7)
	if err != nil {
		log.Fatal(err)
	}
	subset := ds.Subset(*problems)

	fmt.Println("=== TTS algorithms at n=64 (FastTTS serving) ===")
	fmt.Printf("%-20s %10s %12s %10s\n", "algorithm", "latency", "goodput", "top-1")
	for _, alg := range []string{"Best-of-N", "Beam Search", "DVTS", "Dynamic Branching"} {
		sum, err := evaluate(alg, 64, subset)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %9.1fs %9.2f t/s %9.1f%%\n",
			alg, sum.MeanLatency, sum.MeanGoodput, sum.Top1Accuracy)
	}

	fmt.Printf("\n=== Test-time scaling: beam search accuracy vs n ===\n")
	fmt.Printf("%6s %10s %12s %10s\n", "n", "latency", "goodput", "top-1")
	for n := 8; n <= *maxN; n *= 4 {
		sum, err := evaluate("Beam Search", n, subset)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %9.1fs %9.2f t/s %9.1f%%\n",
			n, sum.MeanLatency, sum.MeanGoodput, sum.Top1Accuracy)
	}
	fmt.Println("\nMore parallel reasoning paths raise accuracy at the cost of latency —")
	fmt.Println("FastTTS's job is to push that latency down (see examples/quickstart).")
}

func evaluate(alg string, n int, problems []*fasttts.Problem) (fasttts.Summary, error) {
	sys, err := fasttts.New(fasttts.Config{
		Pair:      fasttts.Pair1_5B1_5B,
		Algorithm: alg,
		NumBeams:  n,
		Seed:      42,
	})
	if err != nil {
		return fasttts.Summary{}, err
	}
	var results []*fasttts.Result
	for _, p := range problems {
		res, err := sys.Solve(p)
		if err != nil {
			return fasttts.Summary{}, err
		}
		results = append(results, res)
	}
	return fasttts.Summarize(results), nil
}
