// autoscale demonstrates the elastic control plane: the same diurnal
// (sinusoidal-rate) request stream is served three ways and compared on
// the SLO-vs-cost plane.
//
//  1. A static fleet provisioned for the peak — four devices live for
//     the whole run — attains the SLO but pays for idle troughs.
//  2. An elastic fleet starts with two founders and a two-template warm
//     pool under the threshold controller: peaks trigger warm-pool
//     joins (after a warm-up delay), troughs drain them back out, and
//     the run attains the same SLO on far fewer device-seconds.
//  3. A fixed two-device fleet under the budget governor keeps
//     membership constant and instead narrows the per-request search
//     width (NumBeams) while the backlog is long.
//
// Every run is a deterministic simulation: equal seeds reproduce the
// controller's action log bit-for-bit.
//
//	go run ./examples/autoscale
package main

import (
	"fmt"
	"log"

	"fasttts"
)

const slo = 120 // wall-latency target, seconds

func main() {
	ds, err := fasttts.LoadDataset("MATH500", 7)
	if err != nil {
		log.Fatal(err)
	}
	probs := make([]*fasttts.Problem, 48)
	for i := range probs {
		probs[i] = ds.Problems[i%len(ds.Problems)]
	}
	// A day-like cycle compressed to 240s: the arrival rate swings from
	// zero to double the mean, so a fixed fleet is alternately swamped
	// and idle.
	reqs := fasttts.SinusoidalRequests(probs, 0.22, 1, 240, 11)

	founders := []fasttts.DeviceSpec{
		{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 8, Seed: 42}, Name: "edge-a"},
		{Config: fasttts.Config{GPU: "RTX 4070 Ti", NumBeams: 8, Seed: 43}, Name: "edge-b"},
	}
	warm := []fasttts.DeviceSpec{
		{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 8, Seed: 60}, Name: "warm", Count: 2},
	}

	fmt.Println("=== diurnal stream: static peak provisioning vs feedback scaling ===")
	fmt.Printf("%-12s %7s %7s %9s %9s %9s %8s\n",
		"fleet", "served", "reject", "p95(s)", "slo_att", "devsec", "actions")

	// 1. Static: founders + the whole warm pool, live from t=0.
	static := run(fasttts.ClusterConfig{
		Devices:    append(append([]fasttts.DeviceSpec{}, founders...), warm...),
		Router:     "least-work",
		Seed:       5,
		SLOLatency: slo,
	}, reqs, "static-peak")

	// 2. Elastic: threshold controller scales the warm pool to fit.
	elastic := run(fasttts.ClusterConfig{
		Devices:    founders,
		Router:     "least-work",
		Seed:       5,
		SLOLatency: slo,
		Autoscale: &fasttts.AutoscaleConfig{
			Policy:      "threshold",
			Interval:    30,
			WarmPool:    warm,
			WarmupDelay: 10,
		},
	}, reqs, "threshold")

	// 3. Budget governor: fixed membership, adaptive search width.
	run(fasttts.ClusterConfig{
		Devices:    founders,
		Router:     "least-work",
		Seed:       5,
		SLOLatency: slo,
		Autoscale: &fasttts.AutoscaleConfig{
			Policy:   "budget",
			Interval: 15,
		},
	}, reqs, "budget")

	ss, es := static.Stats(), elastic.Stats()
	fmt.Printf("\nthreshold scaling kept SLO attainment at %.0f%% (static: %.0f%%) using %.0f%% of the static fleet's device-seconds\n",
		100*es.SLOAttainment, 100*ss.SLOAttainment, 100*es.DeviceSeconds/ss.DeviceSeconds)

	fmt.Println("\n=== threshold controller action log (deterministic for equal seeds) ===")
	for _, a := range elastic.Actions {
		fmt.Printf("  t=%-7.1f %-10s requested %d, applied %d, devices %v\n",
			a.Time, a.Action, a.Requested, a.Applied, a.Devices)
	}
	fmt.Println("\nper-device live intervals (elastic run):")
	for _, d := range es.PerDevice {
		state := "ok"
		switch {
		case d.Failed:
			state = "failed"
		case d.Drained:
			state = "drained"
		}
		fmt.Printf("  %-14s live [%6.1f, %6.1f]s  busy %5.1fs  served %2d  %s\n",
			d.Name, d.LiveStart, d.LiveStart+d.LiveSeconds, d.BusyTime, d.Served, state)
	}
}

func run(cfg fasttts.ClusterConfig, reqs []fasttts.Request, label string) *fasttts.FleetRun {
	cl, err := fasttts.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fr, err := cl.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	st := fr.Stats()
	actions := "-"
	if st.Control != nil {
		actions = fmt.Sprintf("%du/%dd/%dt", st.Control.ScaleUps, st.Control.ScaleDowns, st.Control.TierChanges)
	}
	fmt.Printf("%-12s %7d %7d %9.1f %8.0f%% %9.0f %8s\n",
		label, st.Served, st.Rejected, st.P95Latency, 100*st.SLOAttainment, st.DeviceSeconds, actions)
	return fr
}
