// edgeserver demonstrates the two-phase preemptible scheduler (paper
// §4.1.2) serving a stream of interactive reasoning requests on an edge
// GPU, and the offloading path on an 8 GB device (paper §4.3.2, Fig 15).
//
//	go run ./examples/edgeserver
package main

import (
	"fmt"
	"log"

	"fasttts"
)

func main() {
	ds, err := fasttts.LoadDataset("AMC23", 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Two-phase scheduling under load (RTX 4090) ===")
	srv, err := fasttts.NewServer(fasttts.Config{
		Pair:     fasttts.Pair1_5B1_5B,
		NumBeams: 64,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Request 2 arrives while request 1 is mid-flight: request 1's
	// speculative phase is preempted from that moment. Request 3 arrives
	// long after, so request 2 speculates freely.
	served, err := srv.Run([]fasttts.Request{
		{Problem: ds.Problems[0], ArrivalTime: 0},
		{Problem: ds.Problems[1], ArrivalTime: 4},
		{Problem: ds.Problems[2], ArrivalTime: 500},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%4s %9s %8s %8s %9s %12s %14s\n",
		"req", "arrival", "start", "finish", "queued", "latency", "spec tokens")
	for i, sv := range served {
		fmt.Printf("%4d %8.1fs %7.1fs %7.1fs %8.1fs %11.1fs %14d\n",
			i+1, sv.ArrivalTime, sv.StartTime, sv.FinishTime,
			sv.QueueDelay, sv.Latency, sv.SpecTokens)
	}
	fmt.Println("\nRequest 1 stops speculating the moment request 2 arrives (preemption);")
	fmt.Println("request 3 faces an empty queue and speculates freely.")

	fmt.Println("\n=== Offloading on an 8 GB RTX 3070 Ti ===")
	for _, gpu := range []string{"RTX 4090", "RTX 4070 Ti", "RTX 3070 Ti"} {
		sys, err := fasttts.New(fasttts.Config{
			GPU:          gpu,
			Pair:         fasttts.Pair1_5B1_5B,
			NumBeams:     32,
			AllowOffload: true,
			Seed:         42,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Solve(ds.Problems[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s latency %7.1fs  goodput %6.2f tok/s  offload PCIe time %5.1fs\n",
			gpu, res.Latency, res.Goodput, res.TransferLatency)
	}
	fmt.Println("\nThe §4.3.2 dual-strategy allocator engages offloading only when the")
	fmt.Println("transfer cost beats partitioned batching; with the compact 1.5B pair,")
	fmt.Println("partitioning usually suffices even at 8 GB (zero PCIe time above).")
}
