// fleet demonstrates heterogeneous edge-fleet serving: a prefix-heavy
// Poisson stream (many users asking the same few questions) is spread
// across four unequal devices — two RTX 4090s, one of them throttled to
// quarter speed, a 4070 Ti, and a 3070 Ti — under each routing
// discipline. Load-aware routers flatten the straggler-induced imbalance
// that round-robin suffers, and prefix-affinity routing additionally
// concentrates repeated prompts so their KV prefixes are served from
// cache. A second run fail-stops a device mid-stream to show requeueing.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"

	"fasttts"
)

func main() {
	ds, err := fasttts.LoadDataset("AMC23", 7)
	if err != nil {
		log.Fatal(err)
	}
	// 32 requests cycling over 5 hot problems: the repeat-heavy pattern
	// of viral queries, where inter-device prefix locality pays.
	probs := make([]*fasttts.Problem, 32)
	for i := range probs {
		probs[i] = ds.Problems[i%5]
	}
	reqs := fasttts.PoissonRequests(probs, 0.6, 11)

	devices := []fasttts.DeviceSpec{
		{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 16, Seed: 42}},
		{Config: fasttts.Config{GPU: "RTX 4090", NumBeams: 16, Seed: 43}, Slowdown: 4},
		{Config: fasttts.Config{GPU: "RTX 4070 Ti", NumBeams: 16, Seed: 44}},
		{Config: fasttts.Config{GPU: "RTX 3070 Ti", NumBeams: 16, Seed: 45}},
	}

	fmt.Println("=== 4-device heterogeneous fleet, 32 requests over 5 hot prompts ===")
	fmt.Printf("%-11s %7s %9s %9s %9s %6s %6s\n",
		"router", "served", "p50(s)", "p95(s)", "goodput", "imb", "hit%")
	for _, router := range []string{"rr", "jsq", "p2c", "least-work", "prefix"} {
		st := run(devices, router, reqs).Stats()
		fmt.Printf("%-11s %7d %9.2f %9.2f %9.2f %6.2f %5.0f%%\n",
			router, st.Served, st.P50Latency, st.P95Latency,
			st.Goodput, st.ImbalanceCV, 100*st.PrefixHitRate)
	}

	// Fault injection: the fastest device fail-stops a minute in; its
	// unfinished requests are requeued to the three survivors.
	fmt.Println("\n=== Same fleet under p2c, device 0 fail-stops at t=60 ===")
	failing := append([]fasttts.DeviceSpec(nil), devices...)
	failing[0].FailAt = 60
	st := run(failing, "p2c", reqs).Stats()
	fmt.Printf("served %d of %d, %d requeued, %d device(s) failed, p95 %.2fs\n",
		st.Served, len(reqs), st.Requeues, st.FailedDevices, st.P95Latency)
	for _, d := range st.PerDevice {
		status := "alive"
		if d.Failed {
			status = "failed"
		}
		fmt.Printf("  device %d: served %2d, util %3.0f%%, %s\n",
			d.Device, d.Served, 100*d.Utilization, status)
	}
}

func run(devices []fasttts.DeviceSpec, router string, reqs []fasttts.Request) *fasttts.FleetRun {
	cl, err := fasttts.NewCluster(fasttts.ClusterConfig{
		Devices: devices,
		Router:  router,
		Seed:    9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fr, err := cl.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	return fr
}
