// multitenant demonstrates the multi-tenant serving engine: a Poisson
// stream of concurrent reasoning requests with heterogeneous service
// demands (long AIME24 plus short MATH500 queries) is served under each
// admission/ordering policy, and the server-level aggregates show how
// shortest-job scheduling cuts queueing delay while priorities and
// deadlines reorder who waits.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"fasttts"
)

func main() {
	aime, err := fasttts.LoadDataset("AIME24", 7)
	if err != nil {
		log.Fatal(err)
	}
	short, err := fasttts.LoadDataset("MATH500", 7)
	if err != nil {
		log.Fatal(err)
	}
	// A 16-request mixed tenant population: every other request is a long
	// AIME query, the rest are short MATH500 ones.
	var probs []*fasttts.Problem
	for i := 0; len(probs) < 16; i++ {
		probs = append(probs, aime.Problems[i%len(aime.Problems)])
		if len(probs) < 16 {
			probs = append(probs, short.Problems[i])
		}
	}
	reqs := fasttts.PoissonRequests(probs, 0.5, 11)

	cfg := fasttts.Config{Pair: fasttts.Pair1_5B1_5B, NumBeams: 16, Seed: 42}
	fmt.Println("=== Open loop: 16 mixed requests, Poisson 0.5 req/s ===")
	fmt.Printf("%-9s %10s %9s %9s %9s %9s\n",
		"policy", "mean_q(s)", "p50(s)", "p95(s)", "goodput", "slo_att")
	for _, policy := range []string{"fcfs", "sjf", "priority", "deadline"} {
		srv, err := fasttts.NewServerWith(fasttts.ServeConfig{
			Config: cfg, Policy: policy, SLOLatency: 60,
		})
		if err != nil {
			log.Fatal(err)
		}
		served, err := srv.Run(reqs)
		if err != nil {
			log.Fatal(err)
		}
		st := srv.Stats(served)
		fmt.Printf("%-9s %10.2f %9.2f %9.2f %9.2f %8.0f%%\n",
			policy, st.MeanQueueDelay, st.P50Latency, st.P95Latency,
			st.Goodput, 100*st.SLOAttainment)
	}
	fmt.Println("\nSJF (First-Finish style) runs short MATH500 requests ahead of queued")
	fmt.Println("AIME ones, cutting mean queue delay versus FCFS on the same trace.")

	fmt.Println("\n=== Closed loop: 4 clients, zero think time ===")
	srv, err := fasttts.NewServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	served, err := srv.RunClosedLoop(probs, 4, 0)
	if err != nil {
		log.Fatal(err)
	}
	st := srv.Stats(served)
	fmt.Printf("served %d requests, makespan %.1fs, goodput %.2f tok/s, mean wall latency %.1fs\n",
		st.Served, st.Makespan, st.Goodput, st.MeanLatency)

	fmt.Println("\n=== Admission control: 8-request burst, MaxInFlight 3 ===")
	srv, err = fasttts.NewServerWith(fasttts.ServeConfig{Config: cfg, MaxInFlight: 3})
	if err != nil {
		log.Fatal(err)
	}
	served, err = srv.Run(fasttts.BurstRequests(probs[:8], 8, 0))
	if err != nil {
		log.Fatal(err)
	}
	st = srv.Stats(served)
	fmt.Printf("admitted %d, shed %d — load shedding keeps the queue bounded.\n",
		st.Served, st.Rejected)
}
