package fasttts

// Direct table tests for dataset.go: catalog coverage, deterministic
// materialization, field invariants, and Subset edge cases.

import "testing"

func TestLoadDatasetCatalog(t *testing.T) {
	cases := []struct {
		name     string
		problems int
	}{
		{"AIME24", 30},
		{"AMC23", 40},
		{"MATH500", 500},
		{"HumanEval", 164},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := LoadDataset(tc.name, 7)
			if err != nil {
				t.Fatal(err)
			}
			if ds.Name != tc.name {
				t.Errorf("Name = %q, want %q", ds.Name, tc.name)
			}
			if len(ds.Problems) != tc.problems {
				t.Fatalf("%d problems, want %d", len(ds.Problems), tc.problems)
			}
			for i, p := range ds.Problems {
				if p.Dataset != tc.name || p.Index != i {
					t.Fatalf("problem %d labeled %s/%d", i, p.Dataset, p.Index)
				}
				if p.Difficulty < 0 || p.Difficulty > 1 {
					t.Fatalf("problem %d difficulty %v outside [0,1]", i, p.Difficulty)
				}
			}
		})
	}
}

func TestLoadDatasetUnknownNames(t *testing.T) {
	for _, name := range []string{"", "GSM8K", "aime24"} {
		if _, err := LoadDataset(name, 7); err == nil {
			t.Errorf("LoadDataset(%q) did not error", name)
		}
	}
}

func TestLoadDatasetDeterministic(t *testing.T) {
	a, err := LoadDataset("AMC23", 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := LoadDataset("AMC23", 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Problems {
		if a.Problems[i].Difficulty != b.Problems[i].Difficulty {
			t.Fatalf("problem %d differs across equal seeds", i)
		}
	}
	c, err := LoadDataset("AMC23", 8)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Problems {
		if a.Problems[i].Difficulty != c.Problems[i].Difficulty {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 7 and 8 materialized identical datasets")
	}
}

func TestDatasetSubset(t *testing.T) {
	ds, err := LoadDataset("AIME24", 7)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ n, want int }{
		{0, 0}, {1, 1}, {30, 30}, {1000, 30},
	}
	for _, tc := range cases {
		if got := len(ds.Subset(tc.n)); got != tc.want {
			t.Errorf("Subset(%d) = %d problems, want %d", tc.n, got, tc.want)
		}
	}
	// Subset is a prefix view, not a copy of different problems.
	if sub := ds.Subset(3); sub[0] != ds.Problems[0] || sub[2] != ds.Problems[2] {
		t.Error("Subset did not return the leading problems")
	}
}
