package fasttts

import (
	"fasttts/internal/core"
	"fasttts/internal/metrics"
)

// Path is one finished reasoning path.
type Path struct {
	Tokens      int     // generated tokens (prompt excluded)
	Steps       int     // thinking steps
	Answer      int     // 0 = correct answer
	Score       float64 // final verifier score
	CompletedAt float64 // completion time from request start, seconds
}

// Result reports one solved problem.
type Result struct {
	Problem *Problem
	Paths   []Path

	// Latency is the end-to-end time in (virtual) seconds; GenLatency,
	// VerLatency, and TransferLatency are its generator / verifier /
	// offload-PCIe components (they sum to Latency).
	Latency, GenLatency, VerLatency, TransferLatency float64
	// Goodput is the paper's Precise Goodput (§6.1) in tokens/s.
	Goodput float64

	Iterations int
	// SpecTokens counts speculatively decoded tokens; SpecRetained of
	// them were adopted by surviving beams. RecomputedTokens counts
	// evicted-prefix re-prefills on the generator.
	SpecTokens, SpecRetained, RecomputedTokens int64

	inner *core.Result
}

func wrapResult(res *core.Result) *Result {
	out := &Result{
		Latency:          res.Latency,
		GenLatency:       res.GenTime,
		VerLatency:       res.VerTime,
		TransferLatency:  res.TransferTime,
		Goodput:          res.Goodput,
		Iterations:       res.Iterations,
		SpecTokens:       res.SpecTokens,
		SpecRetained:     res.SpecRetained,
		RecomputedTokens: res.RecomputedTokens,
		inner:            res,
	}
	for _, f := range res.Finished {
		out.Paths = append(out.Paths, Path{
			Tokens:      f.Tokens,
			Steps:       f.Steps,
			Answer:      f.Answer,
			Score:       f.Score,
			CompletedAt: f.CompletedAt,
		})
	}
	return out
}

func (r *Result) pathResults() []metrics.PathResult {
	return r.inner.PathResults()
}

// Top1Correct reports whether majority voting over the finished paths
// selects the correct answer (§6.3).
func (r *Result) Top1Correct() bool {
	return metrics.Top1Correct(r.pathResults())
}

// PassAtN reports whether any of the top-n paths (ranked by verifier
// score) answered correctly (§6.3).
func (r *Result) PassAtN(n int) bool {
	return metrics.PassAtN(r.pathResults(), n)
}

// Summary aggregates results across problems.
type Summary struct {
	Problems      int
	Top1Accuracy  float64 // percent
	MeanLatency   float64 // seconds
	MeanGoodput   float64 // tokens/s
	MeanGenTime   float64
	MeanVerTime   float64
	TotalSpec     int64
	TotalRetained int64
}

// Summarize reduces a batch of results to the paper's headline metrics.
func Summarize(results []*Result) Summary {
	var s Summary
	var top1 []bool
	var lat, gp, gt, vt []float64
	for _, r := range results {
		top1 = append(top1, r.Top1Correct())
		lat = append(lat, r.Latency)
		gp = append(gp, r.Goodput)
		gt = append(gt, r.GenLatency)
		vt = append(vt, r.VerLatency)
		s.TotalSpec += r.SpecTokens
		s.TotalRetained += r.SpecRetained
	}
	s.Problems = len(results)
	s.Top1Accuracy = metrics.Accuracy(top1)
	s.MeanLatency = metrics.Mean(lat)
	s.MeanGoodput = metrics.Mean(gp)
	s.MeanGenTime = metrics.Mean(gt)
	s.MeanVerTime = metrics.Mean(vt)
	return s
}
