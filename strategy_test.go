package fasttts

// Public-surface contract for the test-time-compute strategy knob:
// malformed strategy strings fail fast at construction time — never
// mid-run — on every entry point that accepts one (ServeConfig via
// Config, ClusterConfig, ScenarioOptions), and well-formed ones serve
// the full stream.

import (
	"strings"
	"testing"
)

func TestStrategyConfigValidates(t *testing.T) {
	twoDevices := []DeviceSpec{fleetSpec("RTX 4090", 1), fleetSpec("RTX 4070 Ti", 2)}
	cases := []struct {
		name     string
		strategy string
		devices  []DeviceSpec
		wantErr  string // empty means the config must be accepted
	}{
		{name: "empty is full beam", strategy: "", devices: twoDevices},
		{name: "full-beam", strategy: "full-beam", devices: twoDevices},
		{name: "first-finish", strategy: "first-finish", devices: twoDevices},
		{name: "first-finish with cap", strategy: "first-finish:3", devices: twoDevices},
		{name: "deadline", strategy: "deadline", devices: twoDevices},
		{name: "hedged on two devices", strategy: "hedged", devices: twoDevices},
		{name: "unknown name", strategy: "bogus", devices: twoDevices,
			wantErr: "unknown strategy"},
		{name: "zero chain cap", strategy: "first-finish:0", devices: twoDevices,
			wantErr: "k >= 1"},
		{name: "negative chain cap", strategy: "first-finish:-2", devices: twoDevices,
			wantErr: "k >= 1"},
		{name: "non-integer cap", strategy: "first-finish:two", devices: twoDevices,
			wantErr: "not an integer"},
		{name: "parameter on full-beam", strategy: "full-beam:2", devices: twoDevices,
			wantErr: "takes no parameter"},
		{name: "hedged on one device", strategy: "hedged",
			devices: []DeviceSpec{fleetSpec("RTX 4090", 1)},
			wantErr: "at least 2 devices"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCluster(ClusterConfig{Devices: tc.devices, Strategy: tc.strategy})
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("NewCluster rejected %q: %v", tc.strategy, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("NewCluster accepted %q", tc.strategy)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("NewCluster(%q) error %q, want substring %q", tc.strategy, err, tc.wantErr)
			}
		})
	}
}

// TestStrategyServerValidates: the single-server entry point rejects the
// same malformed strings at construction (hedged is legal — a
// per-device no-op — since there is no second device to replicate to).
func TestStrategyServerValidates(t *testing.T) {
	for _, strategy := range []string{"bogus", "first-finish:0", "first-finish:two"} {
		if _, err := NewServer(Config{GPU: "RTX 4090", Strategy: strategy}); err == nil {
			t.Errorf("NewServer accepted strategy %q", strategy)
		}
	}
	for _, strategy := range []string{"", "full-beam", "first-finish:4", "deadline", "hedged"} {
		if _, err := NewServer(Config{GPU: "RTX 4090", Strategy: strategy}); err != nil {
			t.Errorf("NewServer rejected strategy %q: %v", strategy, err)
		}
	}
}

func TestStrategyScenarioOverrideValidates(t *testing.T) {
	if _, err := RunScenario("steady", ScenarioOptions{Target: ScenarioCluster, Strategy: "bogus"}); err == nil {
		t.Error("RunScenario accepted an unknown strategy override")
	}
}

// TestStrategyFirstFinishServesFullStream: a first-finish cluster still
// answers every request — early termination trims search compute, not
// the served stream — and spends strictly fewer useful tokens than the
// full beam on the same trace.
func TestStrategyFirstFinishServesFullStream(t *testing.T) {
	reqs := PoissonRequests(clusterProblems(t, 8, 4), 0.4, 11)
	tokens := func(strategy string) int64 {
		t.Helper()
		cl, err := NewCluster(ClusterConfig{
			Devices:  []DeviceSpec{fleetSpec("RTX 4090", 1), fleetSpec("RTX 4070 Ti", 2)},
			Router:   "rr",
			Strategy: strategy,
		})
		if err != nil {
			t.Fatal(err)
		}
		run, err := cl.Run(reqs)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(run.Results); got != len(reqs) {
			t.Fatalf("strategy %q served %d of %d requests", strategy, got, len(reqs))
		}
		var sum int64
		for _, r := range run.Results {
			if r.Rejected {
				t.Fatalf("strategy %q rejected request %d", strategy, r.Tag)
			}
			sum += r.UsefulTokens
		}
		return sum
	}
	full := tokens("full-beam")
	ff := tokens("first-finish")
	if ff >= full {
		t.Errorf("first-finish spent %d tokens, full beam %d — early termination saved nothing", ff, full)
	}
}

// TestStrategyHedgedServesEachRequestOnce: hedging replicates requests
// across devices internally, but the served stream still carries exactly
// one result per submitted tag.
func TestStrategyHedgedServesEachRequestOnce(t *testing.T) {
	reqs := PoissonRequests(clusterProblems(t, 8, 4), 0.2, 13)
	cl, err := NewCluster(ClusterConfig{
		Devices: []DeviceSpec{
			fleetSpec("RTX 4090", 1),
			{Config: Config{GPU: "RTX 4090", NumBeams: 8, Seed: 2}, Slowdown: 4},
			fleetSpec("RTX 4070 Ti", 3),
		},
		Router:   "rr",
		Strategy: "hedged",
	})
	if err != nil {
		t.Fatal(err)
	}
	run, err := cl.Run(reqs)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, r := range run.Results {
		seen[r.Tag]++
	}
	if len(run.Results) != len(reqs) {
		t.Fatalf("hedged run served %d results for %d requests", len(run.Results), len(reqs))
	}
	for tag := range reqs {
		if seen[tag] != 1 {
			t.Errorf("tag %d served %d times, want exactly once", tag, seen[tag])
		}
	}
}
