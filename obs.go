package fasttts

import (
	"io"

	"fasttts/internal/metrics"
	"fasttts/internal/obs"
)

// Recorder is the deterministic request-lifecycle span flight recorder.
// Attach one via ServeConfig.Trace, ClusterConfig.Trace, or
// ScenarioOptions.Trace and the serving engines record every request's
// lifecycle — arrival, queueing, admission (with its KV re-prefill
// penalty), each executed device slice, and the closing finish, cancel,
// or fail-stop withdrawal — plus the fleet's control plane: routing
// decisions with their scored candidates, hedge twin placements,
// failure requeues, control ticks, joins, and drains.
//
// Tracing is strictly observational: attaching a recorder never
// perturbs scheduling, and runs replay bit-identically with or without
// one (the golden-regression harness enforces this). Traces are
// deterministic too — equal seeds give byte-identical span streams, on
// the sequential and sharded fleet engines alike, at every Parallelism
// setting.
//
// A nil *Recorder is valid everywhere and means tracing off (the
// default, which costs the engines nothing). A recorder accumulates
// across runs; call Reset between runs for per-run traces.
type Recorder struct {
	inner *obs.Recorder
}

// NewRecorder returns an empty flight recorder.
func NewRecorder() *Recorder { return &Recorder{inner: obs.NewRecorder()} }

// rec unwraps the internal recorder; nil-safe (nil means tracing off).
func (r *Recorder) rec() *obs.Recorder {
	if r == nil {
		return nil
	}
	return r.inner
}

// SpanCount returns the number of spans recorded so far (0 on nil).
func (r *Recorder) SpanCount() int { return r.rec().SpanCount() }

// Reset drops every recorded span, keeping the recorder attached.
func (r *Recorder) Reset() { r.rec().Reset() }

// WritePerfetto serializes the recorded trace as Chrome trace-event
// JSON, loadable in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one lane per device plus a control-plane lane, virtual seconds mapped
// to trace microseconds. Output bytes are deterministic for a given
// trace.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	return obs.WritePerfetto(w, r.rec().Spans())
}

// Verify checks the recorded stream's lifecycle invariants — every
// admitted request closed exactly once, device slice intervals never
// overlapping, all intervals well-formed — returning nil when they
// hold. A non-nil error indicates an engine instrumentation bug, not a
// workload property.
func (r *Recorder) Verify() error { return obs.Verify(r.rec().Spans()) }

// RequestAttribution decomposes one finished request's wall latency
// into additive components: Wall = Queue + Service + Reprefill +
// Straggler + Preemption, exact to within 1 ulp. HedgeWaste and
// LostWork are device-time side channels (work burned by a losing
// hedge copy, or lost to a fail-stop before requeue) that overlap the
// wall interval rather than extending it.
type RequestAttribution struct {
	// Tag is the request's stream position; Device the fleet index that
	// produced the winning finish.
	Tag    int
	Device int
	// Arrival, Finish, and Wall bound the request's client-perceived
	// life: Wall = Finish - Arrival.
	Arrival, Finish, Wall float64
	// Queue is time from arrival to the first slice on the serving
	// device (waits on failed devices before a requeue included);
	// Service the nominal solver time across serving slices; Reprefill
	// the KV re-prefill penalty paid at admission; Straggler the wall
	// inflation of serving slices over nominal (slowdown factors);
	// Preemption the serving-device gaps between slices spent on other
	// tenants.
	Queue, Service, Reprefill, Straggler, Preemption float64
	// HedgeWaste is slice wall-time burned by the losing hedge copy;
	// LostWork slice wall-time lost to fail-stops before requeue.
	HedgeWaste, LostWork float64
	// Slices counts executed serving slices; Preemptions how many of
	// them had the speculation-preemption probe fire; Requeues how many
	// device failures displaced the request.
	Slices, Preemptions, Requeues int
	// Hedged marks requests that were replicated to a twin device.
	Hedged bool
}

// Attribution runs the latency-attribution pass over the recorded
// trace: one record per finished request, sorted by tag. Requests that
// never finished (shed, rejected, cancelled) are not attributed.
func (r *Recorder) Attribution() []RequestAttribution {
	inner := obs.Attribute(r.rec().Spans())
	out := make([]RequestAttribution, len(inner))
	for i, a := range inner {
		out[i] = RequestAttribution{
			Tag: a.Tag, Device: a.Device,
			Arrival: a.Arrival, Finish: a.Finish, Wall: a.Wall,
			Queue: a.Queue, Service: a.Service, Reprefill: a.Reprefill,
			Straggler: a.Straggler, Preemption: a.Preemption,
			HedgeWaste: a.HedgeWaste, LostWork: a.LostWork,
			Slices: a.Slices, Preemptions: a.Preemptions, Requeues: a.Requeues,
			Hedged: a.Hedged,
		}
	}
	return out
}

// AttributionStats rolls per-request latency attributions into fleet
// totals (sums over finished requests; see RequestAttribution for the
// component semantics).
type AttributionStats struct {
	Requests, Hedged int
	Wall, Queue, Service, Reprefill, Straggler,
	Preemption, HedgeWaste, LostWork float64
	Slices, Preemptions, Requeues int
}

// AttributionSummary aggregates the recorded trace's per-request
// attributions into fleet totals.
func (r *Recorder) AttributionSummary() AttributionStats {
	return wrapAttribution(obs.Summarize(obs.Attribute(r.rec().Spans())))
}

func wrapAttribution(st metrics.AttributionStats) AttributionStats {
	return AttributionStats{
		Requests: st.Requests, Hedged: st.Hedged,
		Wall: st.Wall, Queue: st.Queue, Service: st.Service,
		Reprefill: st.Reprefill, Straggler: st.Straggler,
		Preemption: st.Preemption, HedgeWaste: st.HedgeWaste,
		LostWork: st.LostWork,
		Slices:   st.Slices, Preemptions: st.Preemptions, Requeues: st.Requeues,
	}
}
