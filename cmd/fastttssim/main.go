// Command fastttssim runs a single TTS query on the simulated edge
// serving stack and prints the full result: latency breakdown, goodput,
// cache and speculation statistics, and the answer.
//
// Usage:
//
//	fastttssim -dataset AIME24 -problem 0 -n 64 -alg "Beam Search"
//	fastttssim -mode baseline -gpu "RTX 3070 Ti" -offload
package main

import (
	"flag"
	"fmt"
	"os"

	"fasttts"
)

func main() {
	var (
		gpu     = flag.String("gpu", "RTX 4090", "GPU: RTX 4090, RTX 4070 Ti, RTX 3070 Ti")
		pair    = flag.String("pair", "1.5B+1.5B", "model pair: 1.5B+1.5B, 1.5B+7B, 7B+1.5B")
		alg     = flag.String("alg", "Beam Search", "search algorithm")
		n       = flag.Int("n", 64, "number of beams")
		b       = flag.Int("b", 4, "branching factor")
		mode    = flag.String("mode", "fasttts", "fasttts or baseline")
		dataset = flag.String("dataset", "AIME24", "dataset: AIME24, AMC23, MATH500, HumanEval")
		problem = flag.Int("problem", 0, "problem index")
		seed    = flag.Uint64("seed", 42, "random seed")
		offload = flag.Bool("offload", false, "allow KV offloading to host memory")
		both    = flag.Bool("both", false, "run baseline and FastTTS and compare")
	)
	flag.Parse()

	ds, err := fasttts.LoadDataset(*dataset, 7)
	if err != nil {
		fatal(err)
	}
	if *problem < 0 || *problem >= len(ds.Problems) {
		fatal(fmt.Errorf("problem index %d outside [0,%d)", *problem, len(ds.Problems)))
	}
	p := ds.Problems[*problem]
	fmt.Printf("problem %s #%d  difficulty %.2f\n", p.Dataset, p.Index, p.Difficulty)

	modes := []fasttts.Mode{fasttts.Mode(*mode)}
	if *both {
		modes = []fasttts.Mode{fasttts.ModeBaseline, fasttts.ModeFastTTS}
	}
	var results []*fasttts.Result
	for _, m := range modes {
		sys, err := fasttts.New(fasttts.Config{
			GPU:          *gpu,
			Pair:         fasttts.Pair(*pair),
			Algorithm:    *alg,
			NumBeams:     *n,
			BranchFactor: *b,
			Mode:         m,
			AllowOffload: *offload,
			Seed:         *seed,
		})
		if err != nil {
			fatal(err)
		}
		res, err := sys.Solve(p)
		if err != nil {
			fatal(err)
		}
		results = append(results, res)
		fmt.Printf("\n=== %s ===\n", m)
		fmt.Printf("latency        %10.2f s  (generator %.2f, verifier %.2f, transfers %.2f)\n",
			res.Latency, res.GenLatency, res.VerLatency, res.TransferLatency)
		fmt.Printf("goodput        %10.2f tokens/s\n", res.Goodput)
		fmt.Printf("iterations     %10d\n", res.Iterations)
		fmt.Printf("paths          %10d  (top-1 correct: %v, pass@8: %v)\n",
			len(res.Paths), res.Top1Correct(), res.PassAtN(8))
		fmt.Printf("speculation    %10d tokens decoded, %d retained\n",
			res.SpecTokens, res.SpecRetained)
		fmt.Printf("recompute      %10d tokens re-prefilled after eviction\n",
			res.RecomputedTokens)
	}
	if len(results) == 2 {
		fmt.Printf("\nFastTTS vs baseline: %.2fx goodput, %.0f%% latency cut\n",
			results[1].Goodput/results[0].Goodput,
			100*(1-results[1].Latency/results[0].Latency))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastttssim:", err)
	os.Exit(1)
}
