package main

import (
	"encoding/json"
	"testing"

	"fasttts"
)

// TestReportJSONShape table-tests the -json document builders: fleet
// reports must carry the effective strategy name and a run-level cache
// hit rate so offline tooling can join them against Perfetto traces
// without digging into the stats blob.
func TestReportJSONShape(t *testing.T) {
	fleetStats := fasttts.FleetStats{CacheHitRate: 0.25}
	fleetStats.Served = 10
	cases := []struct {
		name    string
		report  reportJSON
		want    map[string]any // top-level key -> expected value (nil = just present)
		absent  []string       // top-level keys that must not serialize
		runWant map[string]any // first run's key -> expected value
		runskip []string       // first run keys that must not serialize
	}{
		{
			name:   "server open loop default strategy",
			report: withRun(serveReport("AMC23", 16, false, 0.5, 42, ""), runJSON{Policy: "fcfs", Stats: fasttts.ServeStats{Served: 16}}),
			want: map[string]any{
				"mode": "open", "dataset": "AMC23", "requests": 16.0,
				"rate": 0.5, "seed": 42.0, "strategy": "full-beam",
			},
			absent:  []string{"devices", "attribution"},
			runWant: map[string]any{"policy": "fcfs"},
			runskip: []string{"router", "cache_hit_rate"},
		},
		{
			name:   "server closed loop drops rate",
			report: withRun(serveReport("MATH500", 8, true, 0.5, 7, "first-finish:4"), runJSON{Policy: "sjf", Stats: fasttts.ServeStats{}}),
			want: map[string]any{
				"mode": "closed", "strategy": "first-finish:4",
			},
			absent: []string{"rate", "devices"},
		},
		{
			name: "fleet run lifts strategy and cache hit rate",
			report: withRun(
				fleetReport("AIME24", 24, 1.5, 9, []string{"RTX 4090", "RTX 3070 Ti"}, "hedged"),
				fleetRunJSON("least-work", fleetStats)),
			want: map[string]any{
				"mode": "fleet", "strategy": "hedged",
				"devices": []any{"RTX 4090", "RTX 3070 Ti"},
			},
			runWant: map[string]any{"router": "least-work", "cache_hit_rate": 0.25},
			runskip: []string{"policy"},
		},
		{
			name: "fleet zero cache hit rate still serializes",
			report: withRun(
				fleetReport("AMC23", 4, 0.5, 42, []string{"RTX 4090"}, ""),
				fleetRunJSON("rr", fasttts.FleetStats{})),
			want:    map[string]any{"strategy": "full-beam"},
			runWant: map[string]any{"cache_hit_rate": 0.0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw, err := json.Marshal(tc.report)
			if err != nil {
				t.Fatal(err)
			}
			var doc map[string]any
			if err := json.Unmarshal(raw, &doc); err != nil {
				t.Fatal(err)
			}
			for k, want := range tc.want {
				got, ok := doc[k]
				if !ok {
					t.Errorf("report missing key %q", k)
					continue
				}
				if want != nil && !equalJSON(got, want) {
					t.Errorf("report[%q] = %v, want %v", k, got, want)
				}
			}
			for _, k := range tc.absent {
				if _, ok := doc[k]; ok {
					t.Errorf("report key %q should be omitted", k)
				}
			}
			runs, ok := doc["runs"].([]any)
			if !ok || len(runs) == 0 {
				t.Fatalf("report runs missing: %v", doc["runs"])
			}
			run, ok := runs[0].(map[string]any)
			if !ok {
				t.Fatalf("run is not an object: %v", runs[0])
			}
			if _, ok := run["stats"]; !ok {
				t.Error("run missing stats blob")
			}
			for k, want := range tc.runWant {
				got, ok := run[k]
				if !ok {
					t.Errorf("run missing key %q", k)
					continue
				}
				if want != nil && got != want {
					t.Errorf("run[%q] = %v, want %v", k, got, want)
				}
			}
			for _, k := range tc.runskip {
				if _, ok := run[k]; ok {
					t.Errorf("run key %q should be omitted", k)
				}
			}
		})
	}
}

// TestEffectiveStrategy pins the empty-flag default.
func TestEffectiveStrategy(t *testing.T) {
	if got := effectiveStrategy(""); got != "full-beam" {
		t.Errorf(`effectiveStrategy("") = %q, want "full-beam"`, got)
	}
	if got := effectiveStrategy("hedged"); got != "hedged" {
		t.Errorf(`effectiveStrategy("hedged") = %q`, got)
	}
}

// TestFleetStatsBlobCarriesJoinKeys guards the join contract end to end:
// the marshalled stats blob itself exposes the cache-hit fields the
// run-level lift mirrors.
func TestFleetStatsBlobCarriesJoinKeys(t *testing.T) {
	st := fasttts.FleetStats{CacheHitRate: 0.5, CacheHitTokens: 100}
	raw, err := json.Marshal(fleetRunJSON("prefix", st))
	if err != nil {
		t.Fatal(err)
	}
	var run map[string]any
	if err := json.Unmarshal(raw, &run); err != nil {
		t.Fatal(err)
	}
	blob, ok := run["stats"].(map[string]any)
	if !ok {
		t.Fatalf("stats blob missing: %s", raw)
	}
	if blob["CacheHitRate"] != 0.5 {
		t.Errorf("stats blob CacheHitRate = %v, want 0.5", blob["CacheHitRate"])
	}
	if run["cache_hit_rate"] != 0.5 {
		t.Errorf("run cache_hit_rate = %v, want 0.5", run["cache_hit_rate"])
	}
}

func withRun(r reportJSON, run runJSON) reportJSON {
	r.Runs = append(r.Runs, run)
	return r
}

func equalJSON(got, want any) bool {
	g, _ := json.Marshal(got)
	w, _ := json.Marshal(want)
	return string(g) == string(w)
}
