// Command fastttsserve load-tests the serving stack: it generates an
// open-loop (Poisson) or closed-loop (fixed-concurrency) request stream
// over a benchmark dataset and serves it either on a single multi-tenant
// device under a chosen admission/ordering policy, or — with -devices —
// across a heterogeneous edge fleet under a chosen router, with optional
// straggler and fail-stop injection. It prints per-request telemetry plus
// the server- or fleet-level aggregates, or the full stats struct as JSON
// with -json. Aggregates default to the constant-memory streaming sketch
// (percentiles within 1% of exact); -exact restores the sort-based path.
//
// Usage:
//
//	fastttsserve -n 32 -rate 0.5 -policy sjf
//	fastttsserve -n 32 -rate 0.5 -exact
//	fastttsserve -n 16 -closed -concurrency 4 -think 1
//	fastttsserve -n 24 -policy fcfs -compare sjf -slo 120 -json
//	fastttsserve -n 32 -devices "RTX 4090,RTX 4090,RTX 4070 Ti,RTX 3070 Ti" \
//	    -router prefix -compare rr,p2c -slow 1:4 -fail 3:200
//	fastttsserve -n 48 -devices "RTX 4090,RTX 4070 Ti" -router least-work \
//	    -controller threshold -warm "RTX 4090,RTX 4090" -control-interval 20 -slo 120
//	fastttsserve -n 24 -strategy first-finish
//	fastttsserve -n 24 -devices "RTX 4090,RTX 4090,RTX 3070 Ti" \
//	    -strategy hedged -slow 2:4
//	fastttsserve -n 32 -devices "RTX 4090,RTX 4070 Ti" -kv-plane \
//	    -trace-out trace.json -attr
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"fasttts"
)

func main() {
	var (
		gpu         = flag.String("gpu", "RTX 4090", "GPU: RTX 4090, RTX 4070 Ti, RTX 3070 Ti")
		pair        = flag.String("pair", "1.5B+1.5B", "model pair: 1.5B+1.5B, 1.5B+7B, 7B+1.5B")
		alg         = flag.String("alg", "Beam Search", "search algorithm")
		beams       = flag.Int("beams", 16, "number of beams per request")
		mode        = flag.String("mode", "fasttts", "fasttts or baseline")
		dataset     = flag.String("dataset", "AMC23", "dataset: AIME24, AMC23, MATH500, HumanEval")
		n           = flag.Int("n", 16, "number of requests")
		seed        = flag.Uint64("seed", 42, "random seed (deployment and arrivals)")
		policy      = flag.String("policy", "fcfs", "serve policy: fcfs, sjf, priority, deadline")
		strategy    = flag.String("strategy", "", "test-time-compute strategy: full-beam, first-finish[:k], deadline, hedged (empty = full beam; hedged needs -devices with >= 2 GPUs)")
		compare     = flag.String("compare", "", "comma-separated extra policies (or, with -devices, routers) to run on the same trace")
		rate        = flag.Float64("rate", 0.5, "open-loop Poisson arrival rate, requests/s")
		closed      = flag.Bool("closed", false, "closed-loop (fixed-concurrency) instead of open-loop")
		concurrency = flag.Int("concurrency", 4, "closed-loop client count")
		think       = flag.Float64("think", 0, "closed-loop think time, seconds")
		maxInFlight = flag.Int("max-inflight", 0, "admission limit per device (0 = unlimited)")
		slo         = flag.Float64("slo", 0, "wall-latency SLO target in seconds (0 = none)")
		verbose     = flag.Bool("v", false, "print per-request (and per-device) telemetry")
		jsonOut     = flag.Bool("json", false, "emit the full stats struct as JSON instead of tables")
		traceOut    = flag.String("trace-out", "", "write a Perfetto/Chrome trace of the primary run (first -policy/-router) to this file")
		attr        = flag.Bool("attr", false, "report the primary run's latency attribution (wall = queue + service + re-prefill + straggler + preemption)")
		devices     = flag.String("devices", "", "comma-separated fleet GPU names; non-empty selects fleet mode")
		router      = flag.String("router", "rr", "fleet router: single, rr, least-work, jsq, p2c, prefix, cache-aware")
		kvPlane     = flag.Bool("kv-plane", false, "enable the per-device KV-cache memory plane (capacity auto-sized from the device's KV budget)")
		kvPlaneB    = flag.Int64("kv-plane-bytes", 0, "pin the KV memory-plane capacity in bytes (implies -kv-plane)")
		fail        = flag.String("fail", "", "fail-stop injections, dev:time pairs (e.g. 1:200,3:350)")
		slow        = flag.String("slow", "", "straggler factors, dev:factor pairs (e.g. 1:4)")
		controller  = flag.String("controller", "", "elastic control policy: static, threshold, pid, budget (empty = no controller)")
		warm        = flag.String("warm", "", "comma-separated warm-pool GPU names the controller may scale into")
		ctlInterval = flag.Float64("control-interval", 20, "control period in fleet seconds")
		warmup      = flag.Float64("warmup", 5, "warm-up delay before a scaled-up device becomes routable")
		minDevices  = flag.Int("min-devices", 0, "drain floor for scale-down (0 = default 1)")
		maxDevices  = flag.Int("max-devices", 0, "cap on routable+warming devices (0 = fleet + warm pool)")
		maxTier     = flag.Int("max-tier", 0, "deepest compute-budget degradation tier (0 = default 2)")
		exact       = flag.Bool("exact", false, "exact sort-based percentiles (O(requests) memory) instead of the default constant-memory streaming sketch (<1% relative error)")
	)
	flag.Parse()

	// The load-test tool defaults to the streaming sketch — the mode a
	// long-running harness would use — and -exact restores the sort path.
	// Library and scenario/golden defaults remain exact.
	metricsMode := fasttts.MetricsStreaming
	if *exact {
		metricsMode = fasttts.MetricsExact
	}

	if !*closed && *rate <= 0 {
		fatal(fmt.Errorf("open-loop -rate must be positive (got %v)", *rate))
	}
	if *closed && *concurrency < 1 {
		fatal(fmt.Errorf("closed-loop -concurrency must be at least 1 (got %d)", *concurrency))
	}
	ds, err := fasttts.LoadDataset(*dataset, 7)
	if err != nil {
		fatal(err)
	}
	// Tracing is opt-in: a recorder only exists when a trace or the
	// attribution report was asked for, and it is attached to the primary
	// run only so -compare runs don't interleave their spans.
	var rec *fasttts.Recorder
	if *traceOut != "" || *attr {
		rec = fasttts.NewRecorder()
	}
	probs := make([]*fasttts.Problem, *n)
	for i := range probs {
		probs[i] = ds.Problems[i%len(ds.Problems)]
	}

	baseCfg := func(seed uint64) fasttts.Config {
		return fasttts.Config{
			GPU:          *gpu,
			Pair:         fasttts.Pair(*pair),
			Algorithm:    *alg,
			NumBeams:     *beams,
			Mode:         fasttts.Mode(*mode),
			Seed:         seed,
			Strategy:     *strategy,
			KVPlane:      *kvPlane,
			KVPlaneBytes: *kvPlaneB,
		}
	}

	if *devices != "" {
		if *closed {
			fatal(fmt.Errorf("fleet mode is open-loop only; drop -closed"))
		}
		runFleet(fleetArgs{
			gpus: splitList(*devices), router: *router, compare: splitList(*compare),
			policy: *policy, strategy: *strategy, maxInFlight: *maxInFlight,
			fail: *fail, slow: *slow,
			controller: *controller, warm: splitList(*warm),
			ctlInterval: *ctlInterval, warmup: *warmup,
			minDevices: *minDevices, maxDevices: *maxDevices, maxTier: *maxTier,
			probs: probs, rate: *rate, seed: *seed, slo: *slo,
			dataset: *dataset, base: baseCfg, verbose: *verbose, jsonOut: *jsonOut,
			metrics: metricsMode, trace: rec, traceOut: *traceOut, attr: *attr,
		})
		return
	}

	policies := append([]string{*policy}, splitList(*compare)...)

	if !*jsonOut {
		if *closed {
			fmt.Printf("closed loop: %d requests, %d clients, think %.1fs, %s on %s\n",
				*n, *concurrency, *think, *dataset, *gpu)
		} else {
			fmt.Printf("open loop: %d requests, Poisson rate %.2f req/s, %s on %s\n",
				*n, *rate, *dataset, *gpu)
		}
		fmt.Printf("metrics: %s\n\n", describeMetrics(metricsMode))
		fmt.Printf("%-10s %9s %7s %7s %6s %9s %9s %9s %9s %9s %8s %6s\n",
			"policy", "metrics", "served", "reject", "nonfin", "mean_q(s)", "p50(s)", "p95(s)", "p99(s)", "goodput", "slo_att", "mksp")
	}
	report := serveReport(*dataset, *n, *closed, *rate, *seed, *strategy)
	for i, pol := range policies {
		var tr *fasttts.Recorder
		if i == 0 {
			tr = rec
		}
		srv, err := fasttts.NewServerWith(fasttts.ServeConfig{
			Config:      baseCfg(*seed),
			Policy:      pol,
			MaxInFlight: *maxInFlight,
			SLOLatency:  *slo,
			Metrics:     metricsMode,
			Trace:       tr,
		})
		if err != nil {
			fatal(err)
		}
		var served []fasttts.ServedResult
		if *closed {
			served, err = srv.RunClosedLoop(probs, *concurrency, *think)
		} else {
			served, err = srv.Run(fasttts.PoissonRequests(probs, *rate, *seed))
		}
		if err != nil {
			fatal(err)
		}
		st := srv.Stats(served)
		if *jsonOut {
			report.Runs = append(report.Runs, runJSON{Policy: pol, Stats: st})
			continue
		}
		fmt.Printf("%-10s %9s %7d %7d %6d %9.2f %9.2f %9.2f %9.2f %9.2f %7.0f%% %6.0f\n",
			pol, string(metricsMode), st.Served, st.Rejected, st.NonFinite, st.MeanQueueDelay,
			st.P50Latency, st.P95Latency, st.P99Latency,
			st.Goodput, 100*st.SLOAttainment, st.Makespan)
		if *verbose {
			fmt.Printf("\n%5s %9s %9s %9s %9s %9s %7s\n",
				"req", "arrival", "start", "finish", "queued", "service", "slices")
			for i, sv := range served {
				if sv.Rejected {
					fmt.Printf("%5d %9.2f %30s\n", i, sv.ArrivalTime, "rejected (admission)")
					continue
				}
				fmt.Printf("%5d %9.2f %9.2f %9.2f %9.2f %9.2f %7d\n",
					i, sv.ArrivalTime, sv.StartTime, sv.FinishTime,
					sv.QueueDelay, sv.Latency, sv.Slices)
			}
			fmt.Println()
		}
	}
	finishTrace(rec, *traceOut, *attr, *jsonOut, &report)
	if *jsonOut {
		emitJSON(report)
	}
}

type fleetArgs struct {
	gpus        []string
	router      string
	compare     []string
	policy      string
	strategy    string
	maxInFlight int
	fail, slow  string
	controller  string
	warm        []string
	ctlInterval float64
	warmup      float64
	minDevices  int
	maxDevices  int
	maxTier     int
	probs       []*fasttts.Problem
	rate        float64
	seed        uint64
	slo         float64
	dataset     string
	base        func(uint64) fasttts.Config
	verbose     bool
	jsonOut     bool
	metrics     fasttts.MetricsMode
	trace       *fasttts.Recorder
	traceOut    string
	attr        bool
}

// describeMetrics renders the aggregation mode for the preamble.
func describeMetrics(m fasttts.MetricsMode) string {
	if m == fasttts.MetricsStreaming {
		return "streaming (constant-memory sketch, <1% relative error; -exact for sort-based percentiles)"
	}
	return "exact (sort-based percentiles, O(requests) memory)"
}

func runFleet(a fleetArgs) {
	fails, err := parseDeviceVals(a.fail, len(a.gpus))
	if err != nil {
		fatal(fmt.Errorf("-fail: %w", err))
	}
	slows, err := parseDeviceVals(a.slow, len(a.gpus))
	if err != nil {
		fatal(fmt.Errorf("-slow: %w", err))
	}
	specs := make([]fasttts.DeviceSpec, len(a.gpus))
	for i, g := range a.gpus {
		cfg := a.base(a.seed + uint64(i))
		cfg.GPU = g
		// Fleet mode drives the strategy through the cluster-level knob so
		// hedging can replicate across devices; the per-device field stays
		// clear.
		cfg.Strategy = ""
		specs[i] = fasttts.DeviceSpec{
			Config:      cfg,
			Policy:      a.policy,
			MaxInFlight: a.maxInFlight,
			Slowdown:    slows[i],
			FailAt:      fails[i],
		}
	}
	var auto *fasttts.AutoscaleConfig
	if a.controller != "" {
		pool := make([]fasttts.DeviceSpec, len(a.warm))
		for i, g := range a.warm {
			cfg := a.base(a.seed + uint64(100+i))
			cfg.GPU = g
			cfg.Strategy = ""
			pool[i] = fasttts.DeviceSpec{Config: cfg, Policy: a.policy, MaxInFlight: a.maxInFlight}
		}
		auto = &fasttts.AutoscaleConfig{
			Policy:      a.controller,
			Interval:    a.ctlInterval,
			WarmPool:    pool,
			WarmupDelay: a.warmup,
			MinDevices:  a.minDevices,
			MaxDevices:  a.maxDevices,
			MaxTier:     a.maxTier,
		}
	}
	reqs := fasttts.PoissonRequests(a.probs, a.rate, a.seed)
	routers := append([]string{a.router}, a.compare...)
	clusters := make([]*fasttts.Cluster, len(routers))
	for i, rt := range routers {
		var tr *fasttts.Recorder
		if i == 0 {
			tr = a.trace
		}
		cl, err := fasttts.NewCluster(fasttts.ClusterConfig{
			Devices:    specs,
			Router:     rt,
			Seed:       a.seed,
			SLOLatency: a.slo,
			Strategy:   a.strategy,
			Autoscale:  auto,
			Metrics:    a.metrics,
			Trace:      tr,
		})
		if err != nil {
			fatal(err)
		}
		clusters[i] = cl
	}

	if !a.jsonOut {
		fmt.Printf("fleet: %d devices, %d requests, Poisson rate %.2f req/s, %s\n",
			len(a.gpus), len(a.probs), a.rate, a.dataset)
		for i, g := range a.gpus {
			note := ""
			if slows[i] > 1 {
				note += fmt.Sprintf("  slowdown %.1fx", slows[i])
			}
			if fails[i] > 0 {
				note += fmt.Sprintf("  fails at t=%.0f", fails[i])
			}
			fmt.Printf("  device %d: %s%s\n", i, g, note)
		}
		if a.controller != "" {
			fmt.Printf("  controller: %s, interval %.0fs, warm pool [%s], warm-up %.0fs\n",
				a.controller, a.ctlInterval, strings.Join(a.warm, ", "), a.warmup)
		}
		if a.strategy != "" {
			fmt.Printf("  strategy: %s\n", a.strategy)
		}
		fmt.Printf("  metrics: %s\n", describeMetrics(a.metrics))
		fmt.Printf("\n%-10s %9s %7s %7s %7s %9s %9s %9s %9s %6s %6s %6s %8s %8s %6s\n",
			"router", "metrics", "served", "reject", "requeue", "p50(s)", "p95(s)", "p99(s)", "goodput", "imb", "hit%", "cache%", "slo_att", "devsec", "mksp")
	}
	report := fleetReport(a.dataset, len(a.probs), a.rate, a.seed, a.gpus, a.strategy)
	for i, rt := range routers {
		run, err := clusters[i].Run(reqs)
		if err != nil {
			fatal(err)
		}
		st := run.Stats()
		if a.jsonOut {
			report.Runs = append(report.Runs, fleetRunJSON(rt, st))
			continue
		}
		fmt.Printf("%-10s %9s %7d %7d %7d %9.2f %9.2f %9.2f %9.2f %6.2f %5.0f%% %5.0f%% %7.0f%% %8.0f %6.0f\n",
			rt, string(a.metrics), st.Served, st.Rejected, st.Requeues,
			st.P50Latency, st.P95Latency, st.P99Latency,
			st.Goodput, st.ImbalanceCV, 100*st.PrefixHitRate, 100*st.CacheHitRate,
			100*st.SLOAttainment, st.DeviceSeconds, st.Makespan)
		if cs := st.Control; cs != nil && !a.jsonOut {
			fmt.Printf("  control: %d ticks, %d ups, %d downs, %d tier moves (final tier %d), peak %d devices, %d degraded\n",
				cs.Ticks, cs.ScaleUps, cs.ScaleDowns, cs.TierChanges, cs.FinalTier, cs.PeakDevices, cs.DegradedRequests)
			if a.verbose {
				for _, act := range run.Actions {
					fmt.Printf("    t=%-7.1f %-10s requested %d applied %d devices %v\n",
						act.Time, act.Action, act.Requested, act.Applied, act.Devices)
				}
			}
		}
		if a.verbose {
			fmt.Printf("\n%8s %18s %7s %9s %7s %9s %9s %7s %7s\n",
				"device", "name", "served", "busy(s)", "util", "goodput", "live(s)", "cache", "state")
			for _, d := range st.PerDevice {
				state := "ok"
				switch {
				case d.Failed:
					state = "failed"
				case d.Drained:
					state = "drained"
				}
				fmt.Printf("%8d %18s %7d %9.1f %6.0f%% %9.2f %9.1f %6.0f%% %7s\n",
					d.Device, d.Name, d.Served, d.BusyTime,
					100*d.Utilization, d.Goodput, d.LiveSeconds,
					100*d.CacheOccupancy, state)
			}
			fmt.Println()
		}
	}
	finishTrace(a.trace, a.traceOut, a.attr, a.jsonOut, &report)
	if a.jsonOut {
		emitJSON(report)
	}
}

type runJSON struct {
	Policy string `json:"policy,omitempty"`
	Router string `json:"router,omitempty"`
	// CacheHitRate surfaces the fleet KV memory-plane hit rate at the run
	// level (fleet mode only) so offline joins against traces don't have
	// to dig into the stats blob.
	CacheHitRate *float64 `json:"cache_hit_rate,omitempty"`
	Stats        any      `json:"stats"`
}

type reportJSON struct {
	Mode     string  `json:"mode"`
	Dataset  string  `json:"dataset"`
	Requests int     `json:"requests"`
	Rate     float64 `json:"rate,omitempty"`
	Seed     uint64  `json:"seed"`
	// Strategy is the effective test-time-compute strategy of every run
	// in the report ("full-beam" when the -strategy flag was empty).
	Strategy    string                    `json:"strategy"`
	Devices     []string                  `json:"devices,omitempty"`
	Runs        []runJSON                 `json:"runs"`
	Attribution *fasttts.AttributionStats `json:"attribution,omitempty"`
}

// serveReport builds the -json skeleton for single-device mode.
func serveReport(dataset string, n int, closed bool, rate float64, seed uint64, strategy string) reportJSON {
	r := reportJSON{Mode: "open", Dataset: dataset, Requests: n,
		Rate: rate, Seed: seed, Strategy: effectiveStrategy(strategy)}
	if closed {
		r.Mode, r.Rate = "closed", 0
	}
	return r
}

// fleetReport builds the -json skeleton for fleet mode.
func fleetReport(dataset string, n int, rate float64, seed uint64, devices []string, strategy string) reportJSON {
	return reportJSON{Mode: "fleet", Dataset: dataset, Requests: n,
		Rate: rate, Seed: seed, Strategy: effectiveStrategy(strategy),
		Devices: devices}
}

// fleetRunJSON wraps one fleet run for the report, lifting the cache
// hit rate beside the router name.
func fleetRunJSON(router string, st fasttts.FleetStats) runJSON {
	hit := st.CacheHitRate
	return runJSON{Router: router, CacheHitRate: &hit, Stats: st}
}

// effectiveStrategy resolves the -strategy flag's empty default to the
// name of the strategy it selects.
func effectiveStrategy(s string) string {
	if s == "" {
		return "full-beam"
	}
	return s
}

// finishTrace drains the primary run's recorder: it writes the Perfetto
// export when -trace-out was given and reports the latency-attribution
// rollup when -attr was — into the JSON report in -json mode, as a table
// otherwise. No-op when tracing is off (nil recorder).
func finishTrace(rec *fasttts.Recorder, traceOut string, attr, jsonOut bool, report *reportJSON) {
	if rec == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WritePerfetto(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if !attr {
		return
	}
	st := rec.AttributionSummary()
	if jsonOut {
		report.Attribution = &st
		return
	}
	fmt.Printf("\nattribution (primary run): %d requests, %d hedged, %d slices, %d preemptions, %d requeues\n",
		st.Requests, st.Hedged, st.Slices, st.Preemptions, st.Requeues)
	fmt.Printf("%-12s %12s %8s\n", "component", "seconds", "share")
	total := st.Wall
	for _, c := range []struct {
		name string
		val  float64
	}{
		{"queue", st.Queue}, {"service", st.Service}, {"re-prefill", st.Reprefill},
		{"straggler", st.Straggler}, {"preemption", st.Preemption},
	} {
		share := 0.0
		if total > 0 {
			share = 100 * c.val / total
		}
		fmt.Printf("%-12s %12.2f %7.1f%%\n", c.name, c.val, share)
	}
	fmt.Printf("%-12s %12.2f %7.1f%%\n", "wall", total, 100.0)
	if st.HedgeWaste > 0 || st.LostWork > 0 {
		fmt.Printf("side channels: hedge-waste %.2fs, lost-work %.2fs (overlap wall, not added)\n",
			st.HedgeWaste, st.LostWork)
	}
}

func emitJSON(r reportJSON) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fatal(err)
	}
}

// parseDeviceVals parses "dev:value" pairs ("1:200,3:4") into a dense
// per-device slice (unlisted devices get 0).
func parseDeviceVals(s string, n int) ([]float64, error) {
	out := make([]float64, n)
	for _, part := range splitList(s) {
		idxs, vals, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("%q is not a dev:value pair", part)
		}
		idx, err := strconv.Atoi(strings.TrimSpace(idxs))
		if err != nil || idx < 0 || idx >= n {
			return nil, fmt.Errorf("device index %q outside fleet of %d", idxs, n)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(vals), 64)
		if err != nil {
			return nil, fmt.Errorf("value %q: %w", vals, err)
		}
		out[idx] = v
	}
	return out, nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastttsserve:", err)
	os.Exit(1)
}
