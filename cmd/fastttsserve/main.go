// Command fastttsserve load-tests the multi-tenant serving engine: it
// generates an open-loop (Poisson) or closed-loop (fixed-concurrency)
// request stream over a benchmark dataset, serves it under a chosen
// admission/ordering policy, and prints per-request telemetry plus the
// server-level aggregates (latency percentiles, queue delay, goodput,
// SLO attainment).
//
// Usage:
//
//	fastttsserve -n 32 -rate 0.5 -policy sjf
//	fastttsserve -n 16 -closed -concurrency 4 -think 1
//	fastttsserve -n 24 -policy fcfs -compare sjf -slo 120
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"fasttts"
)

func main() {
	var (
		gpu         = flag.String("gpu", "RTX 4090", "GPU: RTX 4090, RTX 4070 Ti, RTX 3070 Ti")
		pair        = flag.String("pair", "1.5B+1.5B", "model pair: 1.5B+1.5B, 1.5B+7B, 7B+1.5B")
		alg         = flag.String("alg", "Beam Search", "search algorithm")
		beams       = flag.Int("beams", 16, "number of beams per request")
		mode        = flag.String("mode", "fasttts", "fasttts or baseline")
		dataset     = flag.String("dataset", "AMC23", "dataset: AIME24, AMC23, MATH500, HumanEval")
		n           = flag.Int("n", 16, "number of requests")
		seed        = flag.Uint64("seed", 42, "random seed (deployment and arrivals)")
		policy      = flag.String("policy", "fcfs", "serve policy: fcfs, sjf, priority, deadline")
		compare     = flag.String("compare", "", "comma-separated extra policies to run on the same trace")
		rate        = flag.Float64("rate", 0.5, "open-loop Poisson arrival rate, requests/s")
		closed      = flag.Bool("closed", false, "closed-loop (fixed-concurrency) instead of open-loop")
		concurrency = flag.Int("concurrency", 4, "closed-loop client count")
		think       = flag.Float64("think", 0, "closed-loop think time, seconds")
		maxInFlight = flag.Int("max-inflight", 0, "admission limit (0 = unlimited)")
		slo         = flag.Float64("slo", 0, "wall-latency SLO target in seconds (0 = none)")
		verbose     = flag.Bool("v", false, "print per-request telemetry")
	)
	flag.Parse()

	if !*closed && *rate <= 0 {
		fatal(fmt.Errorf("open-loop -rate must be positive (got %v)", *rate))
	}
	if *closed && *concurrency < 1 {
		fatal(fmt.Errorf("closed-loop -concurrency must be at least 1 (got %d)", *concurrency))
	}
	ds, err := fasttts.LoadDataset(*dataset, 7)
	if err != nil {
		fatal(err)
	}
	probs := make([]*fasttts.Problem, *n)
	for i := range probs {
		probs[i] = ds.Problems[i%len(ds.Problems)]
	}

	policies := []string{*policy}
	if *compare != "" {
		for _, p := range strings.Split(*compare, ",") {
			policies = append(policies, strings.TrimSpace(p))
		}
	}

	if *closed {
		fmt.Printf("closed loop: %d requests, %d clients, think %.1fs, %s on %s\n\n",
			*n, *concurrency, *think, *dataset, *gpu)
	} else {
		fmt.Printf("open loop: %d requests, Poisson rate %.2f req/s, %s on %s\n\n",
			*n, *rate, *dataset, *gpu)
	}
	fmt.Printf("%-10s %7s %7s %9s %9s %9s %9s %9s %8s %6s\n",
		"policy", "served", "reject", "mean_q(s)", "p50(s)", "p95(s)", "p99(s)", "goodput", "slo_att", "mksp")
	for _, pol := range policies {
		srv, err := fasttts.NewServerWith(fasttts.ServeConfig{
			Config: fasttts.Config{
				GPU:       *gpu,
				Pair:      fasttts.Pair(*pair),
				Algorithm: *alg,
				NumBeams:  *beams,
				Mode:      fasttts.Mode(*mode),
				Seed:      *seed,
			},
			Policy:      pol,
			MaxInFlight: *maxInFlight,
			SLOLatency:  *slo,
		})
		if err != nil {
			fatal(err)
		}
		var served []fasttts.ServedResult
		if *closed {
			served, err = srv.RunClosedLoop(probs, *concurrency, *think)
		} else {
			served, err = srv.Run(fasttts.PoissonRequests(probs, *rate, *seed))
		}
		if err != nil {
			fatal(err)
		}
		st := srv.Stats(served)
		fmt.Printf("%-10s %7d %7d %9.2f %9.2f %9.2f %9.2f %9.2f %7.0f%% %6.0f\n",
			pol, st.Served, st.Rejected, st.MeanQueueDelay,
			st.P50Latency, st.P95Latency, st.P99Latency,
			st.Goodput, 100*st.SLOAttainment, st.Makespan)
		if *verbose {
			fmt.Printf("\n%5s %9s %9s %9s %9s %9s %7s\n",
				"req", "arrival", "start", "finish", "queued", "service", "slices")
			for i, sv := range served {
				if sv.Rejected {
					fmt.Printf("%5d %9.2f %30s\n", i, sv.ArrivalTime, "rejected (admission)")
					continue
				}
				fmt.Printf("%5d %9.2f %9.2f %9.2f %9.2f %9.2f %7d\n",
					i, sv.ArrivalTime, sv.StartTime, sv.FinishTime,
					sv.QueueDelay, sv.Latency, sv.Slices)
			}
			fmt.Println()
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fastttsserve:", err)
	os.Exit(1)
}
