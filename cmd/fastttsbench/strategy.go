package main

// Strategy-sweep mode: quantify what the test-time-compute strategies
// buy on their home-turf scenarios. Each cell serves one scenario's
// stream on the cluster target under one strategy override — same
// arrivals, same problems, same fleet — and emits BENCH_strategy.json:
//
//   - first-finish-mix: the AIME-heavy stream where full-beam keeps
//     searching long after the first chain has converged. first-finish
//     must strictly beat full-beam on p99 wall latency, with both cells
//     carrying the same accuracy accounting (majority vote over
//     finished paths) so the compute saving is priced in answers.
//   - hedged-tail: the straggler-skewed quiet fleet. hedged replication
//     must strictly beat full-beam on p99 — the cross-device twin turns
//     straggler-routed tails into fast-device latencies.
//
// Per scenario the cells also feed metrics.StrategyFrontier, recording
// which strategies survive on the tokens-vs-p99 Pareto plane.
import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fasttts"
	"fasttts/internal/metrics"
)

// strategyArtifact is the BENCH_strategy.json filename.
const strategyArtifact = "BENCH_strategy.json"

// strategyCell is one scenario × strategy measurement.
type strategyCell struct {
	Scenario         string  `json:"scenario"`
	Strategy         string  `json:"strategy"`
	Requests         int     `json:"requests"`
	Served           int     `json:"served"`
	TokensPerRequest float64 `json:"tokens_per_request"`
	MeanLatency      float64 `json:"mean_latency"`
	P95Latency       float64 `json:"p95_latency"`
	P99Latency       float64 `json:"p99_latency"`
	Accuracy         float64 `json:"accuracy"`
	SLOAttainment    float64 `json:"slo_attainment"`
	ElapsedMS        int64   `json:"elapsed_ms"`
}

// strategyReport is the BENCH_strategy.json document.
type strategyReport struct {
	Schema   string         `json:"schema"`
	Seed     uint64         `json:"seed"`
	Requests int            `json:"requests"` // 0 = scenario defaults
	Cells    []strategyCell `json:"cells"`
	// Frontier lists, per scenario, the strategies surviving on the
	// tokens-vs-p99 Pareto plane (metrics.StrategyFrontier order).
	Frontier map[string][]string `json:"frontier"`
	Verdict  string              `json:"verdict"`
	OK       bool                `json:"ok"`
}

// runStrategySweep measures the scenario × strategy matrix and writes
// the report; it returns an error when a success metric does not hold.
func runStrategySweep(outDir string, requests int, seed uint64) error {
	sweeps := []struct {
		scenario   string
		strategies []string
	}{
		{"first-finish-mix", []string{"full-beam", "first-finish", "first-finish:4", "deadline"}},
		{"hedged-tail", []string{"full-beam", "first-finish", "hedged"}},
	}
	report := strategyReport{
		Schema:   "fasttts-bench-strategy/v1",
		Seed:     seed,
		Requests: requests,
		Frontier: map[string][]string{},
	}
	p99 := map[string]map[string]float64{}
	acc := map[string]map[string]float64{}
	for _, sw := range sweeps {
		p99[sw.scenario] = map[string]float64{}
		acc[sw.scenario] = map[string]float64{}
		var points []metrics.StrategyPoint
		for _, strategy := range sw.strategies {
			start := time.Now()
			run, err := fasttts.RunScenario(sw.scenario, fasttts.ScenarioOptions{
				Target:   fasttts.ScenarioCluster,
				Requests: requests,
				Seed:     seed,
				Strategy: strategy,
			})
			if err != nil {
				return fmt.Errorf("strategy sweep %s/%s: %w", sw.scenario, strategy, err)
			}
			cell := measureStrategyCell(run)
			cell.Strategy = strategy
			cell.ElapsedMS = time.Since(start).Milliseconds()
			report.Cells = append(report.Cells, cell)
			p99[sw.scenario][strategy] = cell.P99Latency
			acc[sw.scenario][strategy] = cell.Accuracy
			points = append(points, metrics.StrategyPoint{
				Strategy:         strategy,
				TokensPerRequest: cell.TokensPerRequest,
				P99Latency:       cell.P99Latency,
				Accuracy:         cell.Accuracy,
			})
		}
		for _, pt := range metrics.StrategyFrontier(points) {
			report.Frontier[sw.scenario] = append(report.Frontier[sw.scenario], pt.Strategy)
		}
	}

	// Success metrics: each strategy must strictly win the tail on its
	// home-turf scenario against the full beam on the identical stream.
	ffGain := p99["first-finish-mix"]["full-beam"] - p99["first-finish-mix"]["first-finish"]
	hedgeGain := p99["hedged-tail"]["full-beam"] - p99["hedged-tail"]["hedged"]
	accDelta := acc["first-finish-mix"]["first-finish"] - acc["first-finish-mix"]["full-beam"]
	report.OK = ffGain > 0 && hedgeGain > 0
	report.Verdict = fmt.Sprintf(
		"first-finish p99 gain over full-beam: %.2fs (accuracy delta %+.3f); hedged p99 gain: %.2fs (want both gains > 0)",
		ffGain, accDelta, hedgeGain)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, strategyArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	} else {
		os.Stdout.Write(data)
	}
	if !report.OK {
		return fmt.Errorf("strategy sweep: success metric failed — %s", report.Verdict)
	}
	return nil
}

// measureStrategyCell reduces one cluster run to a sweep cell. Accuracy
// is majority vote over each served request's finished paths — the same
// accounting for every strategy, so cheaper cells can't hide wrong
// answers.
func measureStrategyCell(run *fasttts.ScenarioRun) strategyCell {
	st := run.FleetStats
	var tokens int64
	served, correct := 0, 0
	for _, r := range run.Fleet.Results {
		if r.Rejected {
			continue
		}
		served++
		tokens += r.UsefulTokens
		if r.Top1Correct() {
			correct++
		}
	}
	cell := strategyCell{
		Scenario:      run.Name,
		Requests:      len(run.Requests),
		Served:        st.Served,
		MeanLatency:   st.MeanLatency,
		P95Latency:    st.P95Latency,
		P99Latency:    st.P99Latency,
		SLOAttainment: st.SLOAttainment,
	}
	if served > 0 {
		cell.TokensPerRequest = float64(tokens) / float64(served)
		cell.Accuracy = float64(correct) / float64(served)
	}
	return cell
}
