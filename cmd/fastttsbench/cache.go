package main

// Cache-sweep mode: quantify what the KV memory plane buys. The sweep
// serves the cache-thrash scenario's few-shot stream (prompts of ~4K
// tokens, ~110 MiB of KV state each) on the cluster target under each
// router × capacity regime and emits BENCH_cache.json:
//
//   - constrained: the scenario's own tight per-device planes, where the
//     18-prompt working set (~2 GiB) cannot fit scattered, so eviction
//     makes prompt re-prefill a real, recurring cost;
//   - unconstrained: planes big enough that every prompt stays resident
//     on a device after first touch;
//   - uncached: the plane disabled — reuse is unmodeled and free, the
//     pure load-balancing baseline.
//
// The success metric: residency-aware routing (cache-aware, prefix) must
// beat load-only jsq on tail latency by MORE when cache-constrained than
// when capacity is plentiful — locality only matters when memory is
// scarce. least-work cells ride along as the load-only twin of
// cache-aware (same cost shape, no residency term).
import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"fasttts"
)

// cacheArtifact is the BENCH_cache.json filename.
const cacheArtifact = "BENCH_cache.json"

// cacheSweepRequests is the default stream length: long enough that the
// unconstrained regime reaches its all-resident steady state (every
// device has seen every prompt) while the constrained regime keeps
// thrashing — that contrast is what the sweep exists to show.
const cacheSweepRequests = 72

// cacheConstrainedBytes pins the constrained regime to the cache-thrash
// scenario's own per-device plane capacity (~4-5 resident prompts);
// cacheUnconstrainedBytes is large enough that nothing is ever evicted.
const (
	cacheConstrainedBytes   = 512 << 20
	cacheUnconstrainedBytes = 8 << 30
)

// cacheCell is one router × capacity-regime measurement.
type cacheCell struct {
	Scenario         string  `json:"scenario"`
	Router           string  `json:"router"`
	Regime           string  `json:"regime"` // constrained, unconstrained, uncached
	KVPlaneBytes     int64   `json:"kv_plane_bytes"`
	Requests         int     `json:"requests"`
	Served           int     `json:"served"`
	MeanLatency      float64 `json:"mean_latency"`
	P95Latency       float64 `json:"p95_latency"`
	P99Latency       float64 `json:"p99_latency"`
	CacheHitRate     float64 `json:"cache_hit_rate"`
	ReprefillSeconds float64 `json:"reprefill_seconds"`
	ImbalanceCV      float64 `json:"imbalance_cv"`
	ElapsedMS        int64   `json:"elapsed_ms"`
}

// cacheReport is the BENCH_cache.json document.
type cacheReport struct {
	Schema   string      `json:"schema"`
	Scenario string      `json:"scenario"`
	Seed     uint64      `json:"seed"`
	Requests int         `json:"requests"`
	Cells    []cacheCell `json:"cells"`
	// ConstrainedP99 / UnconstrainedP99 index p99 latency by router for
	// the two plane-on regimes; Verdict summarizes the success metric.
	ConstrainedP99   map[string]float64 `json:"constrained_p99"`
	UnconstrainedP99 map[string]float64 `json:"unconstrained_p99"`
	Verdict          string             `json:"verdict"`
	OK               bool               `json:"ok"`
}

// runCacheSweep measures the router × capacity matrix and writes the
// report; it returns an error when the success metric does not hold.
func runCacheSweep(outDir string, requests int, seed uint64) error {
	const scenarioName = "cache-thrash"
	if requests <= 0 {
		requests = cacheSweepRequests
	}
	routers := []string{"jsq", "least-work", "prefix", "cache-aware"}
	regimes := []struct {
		name  string
		bytes int64
	}{
		{"constrained", cacheConstrainedBytes},
		{"unconstrained", cacheUnconstrainedBytes},
		{"uncached", -1},
	}
	report := cacheReport{
		Schema:           "fasttts-bench-cache/v1",
		Scenario:         scenarioName,
		Seed:             seed,
		Requests:         requests,
		ConstrainedP99:   map[string]float64{},
		UnconstrainedP99: map[string]float64{},
	}
	for _, regime := range regimes {
		for _, router := range routers {
			start := time.Now()
			run, err := fasttts.RunScenario(scenarioName, fasttts.ScenarioOptions{
				Target:       fasttts.ScenarioCluster,
				Requests:     requests,
				Seed:         seed,
				Router:       router,
				KVPlaneBytes: regime.bytes,
			})
			if err != nil {
				return fmt.Errorf("cache sweep %s/%s: %w", router, regime.name, err)
			}
			st := run.FleetStats
			report.Cells = append(report.Cells, cacheCell{
				Scenario:         scenarioName,
				Router:           router,
				Regime:           regime.name,
				KVPlaneBytes:     regime.bytes,
				Requests:         len(run.Requests),
				Served:           st.Served,
				MeanLatency:      st.MeanLatency,
				P95Latency:       st.P95Latency,
				P99Latency:       st.P99Latency,
				CacheHitRate:     st.CacheHitRate,
				ReprefillSeconds: st.ReprefillSeconds,
				ImbalanceCV:      st.ImbalanceCV,
				ElapsedMS:        time.Since(start).Milliseconds(),
			})
			switch regime.name {
			case "constrained":
				report.ConstrainedP99[router] = st.P99Latency
			case "unconstrained":
				report.UnconstrainedP99[router] = st.P99Latency
			}
		}
	}

	// Success metric: under cache pressure, residency-aware routing wins
	// the tail; with plentiful capacity its edge over jsq must shrink —
	// otherwise the cost model isn't what's driving the win.
	bestAware := report.ConstrainedP99["cache-aware"]
	if p := report.ConstrainedP99["prefix"]; p < bestAware {
		bestAware = p
	}
	conGain := report.ConstrainedP99["jsq"] - bestAware
	bestAwareUn := report.UnconstrainedP99["cache-aware"]
	if p := report.UnconstrainedP99["prefix"]; p < bestAwareUn {
		bestAwareUn = p
	}
	unGain := report.UnconstrainedP99["jsq"] - bestAwareUn
	report.OK = conGain > 0 && conGain > unGain
	report.Verdict = fmt.Sprintf(
		"constrained p99 gain over jsq: %.2fs; unconstrained: %.2fs (want constrained > 0 and > unconstrained)",
		conGain, unGain)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outDir != "" {
		path := filepath.Join(outDir, cacheArtifact)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	} else {
		os.Stdout.Write(data)
	}
	if !report.OK {
		return fmt.Errorf("cache sweep: success metric failed — %s", report.Verdict)
	}
	return nil
}
